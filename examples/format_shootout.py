"""Format shootout: float16 / bfloat16 / posit16 / LNS on edge kernels.

Two kernels with opposite arithmetic profiles:

* a *product chain* (gain stages, log-domain friendly) — LNS multiplies
  exactly, floats and posits accumulate rounding;
* an *accumulation* (dot product / neuron) — LNS pays for every add
  through the Gaussian-log table, floats/posits add natively.

Plus the information-per-bit view of Section V on both workload
distributions.

Run:  python examples/format_shootout.py
"""

import math
import random

import numpy as np

from repro.analysis import format_information_comparison
from repro.fixedpoint import QFormat
from repro.floats import BFLOAT16, BINARY16, SoftFloat
from repro.lns import LNS, LNSFormat
from repro.posit import POSIT16, Posit

LNS16 = LNSFormat(5, 8)  # 15-bit LNS with ~19 decades of range


def product_chain(values):
    """Computation error only: each format's reference is the exact product
    of its own *quantized* inputs, so input-representation error (a fixed
    per-format constant) does not mask how error grows per operation."""
    f = SoftFloat.from_float(BINARY16, 1.0)
    bf = SoftFloat.from_float(BFLOAT16, 1.0)
    p = Posit.from_float(POSIT16, 1.0)
    l = LNS.from_float(LNS16, 1.0)
    exact = {"f": 1.0, "bf": 1.0, "p": 1.0, "l": 1.0}
    for v in values:
        qf = SoftFloat.from_float(BINARY16, v)
        qbf = SoftFloat.from_float(BFLOAT16, v)
        qp = Posit.from_float(POSIT16, v)
        ql = LNS.from_float(LNS16, v)
        exact["f"] *= qf.to_float()
        exact["bf"] *= qbf.to_float()
        exact["p"] *= qp.to_float()
        exact["l"] *= ql.to_float()
        f, bf, p, l = f * qf, bf * qbf, p * qp, l * ql

    def rel(x, key):
        return abs(x - exact[key]) / abs(exact[key])

    return (
        rel(f.to_float(), "f"),
        rel(bf.to_float(), "bf"),
        rel(p.to_float(), "p"),
        rel(l.to_float(), "l"),
    )


def accumulation(values):
    exact = sum(values)
    f = SoftFloat.zero(BINARY16)
    bf = SoftFloat.zero(BFLOAT16)
    p = Posit.zero(POSIT16)
    l = LNS.zero(LNS16)
    for v in values:
        f = f + SoftFloat.from_float(BINARY16, v)
        bf = bf + SoftFloat.from_float(BFLOAT16, v)
        p = p + Posit.from_float(POSIT16, v)
        l = l + LNS.from_float(LNS16, v)

    def rel(x):
        return abs(x - exact) / abs(exact)

    return rel(f.to_float()), rel(bf.to_float()), rel(p.to_float()), rel(l.to_float())


def main():
    rng = random.Random(0)

    print("product chain of 24 gains in [0.7, 1.4]:")
    errs = [0.0] * 4
    for seed in range(6):
        r = random.Random(seed)
        vals = [r.uniform(0.7, 1.4) for _ in range(24)]
        errs = [a + b for a, b in zip(errs, product_chain(vals))]
    names = ("binary16", "bfloat16", "posit16", f"{LNS16}")
    for name, e in zip(names, errs):
        print(f"  {name:<10} mean rel err {e / 6:.2e}")

    print("\naccumulation of 64 positive terms in [0.1, 2]:")
    errs = [0.0] * 4
    for seed in range(6):
        r = random.Random(100 + seed)
        vals = [r.uniform(0.1, 2.0) for _ in range(64)]
        errs = [a + b for a, b in zip(errs, accumulation(vals))]
    for name, e in zip(names, errs):
        print(f"  {name:<10} mean rel err {e / 6:.2e}")

    print("\ninformation per bit (unit-normal samples):")
    samples = np.random.default_rng(0).normal(0, 1, 2500)
    res = format_information_comparison(
        samples,
        {"posit16": POSIT16, "binary16": BINARY16, "bfloat16": BFLOAT16, "Q7.8": QFormat(7, 8)},
    )
    for name, bits in sorted(res.items(), key=lambda kv: -kv[1]):
        print(f"  {name:<10} {bits:.3f}")
    print("\nLNS wins multiplicative chains (exact log-domain adds); posits win")
    print("mixed workloads near unit magnitude; bfloat16 only wins on range.")


if __name__ == "__main__":
    main()

"""Quickstart: a tour of the number systems in this library.

Run:  python examples/quickstart.py
"""

from fractions import Fraction

from repro.floats import BFLOAT16, BINARY16, BINARY32, FP19, RoundingMode, SoftFloat
from repro.fixedpoint import FixedPoint, QFormat
from repro.posit import POSIT8, POSIT16, Posit, Quire


def floats_demo():
    print("=== Parametric softfloat ===")
    for fmt in (BINARY16, BFLOAT16, FP19, BINARY32):
        x = SoftFloat.from_float(fmt, 3.14159265)
        print(f"{fmt!s:22} pi ~ {x.to_float():<12.8g} pattern {x.pattern:#x}")

    a = SoftFloat.from_float(BINARY16, 1.0)
    b = SoftFloat.from_float(BINARY16, 3.0)
    q = a / b
    print(f"1/3 in binary16 (RNE): {q.to_float()}")
    print(f"1/3 toward zero:       {a.div(b, RoundingMode.TOWARD_ZERO).to_float()}")

    # The IEEE trap regions of Fig. 6: subnormals exist and are slow in HW.
    tiny = SoftFloat.min_subnormal(BINARY16)
    print(f"smallest subnormal:    {tiny.to_float():.3e} ({tiny.classify().value})")


def fixed_demo():
    print("\n=== Fixed point ===")
    q44 = QFormat(4, 4)
    x = FixedPoint.from_float(q44, 1.3)
    print(f"1.3 in {q44}: {x.to_float()} (error {abs(x.to_float() - 1.3):.4f})")
    y = x * x
    print(f"square, exact widened result in {y.fmt}: {y.to_float()}")
    print(f"resized back to {q44}: {y.resize(q44).to_float()}")


def posit_demo():
    print("\n=== Posits (Section V) ===")
    x = Posit.from_float(POSIT16, 3.0)
    y = Posit.from_float(POSIT16, 1.5)
    print(f"3.0 * 1.5 = {(x * y).to_float()}  (pattern {(x * y).pattern:#06x})")

    # Two's-complement negation is exact; NaR is the single exception value.
    print(f"-x pattern = two's complement: {x.negate().pattern:#06x}")
    print(f"1/0 -> {Posit.one(POSIT16) / Posit.zero(POSIT16)!r}")

    # Posit ordering is plain integer ordering (Fig. 7).
    vals = [Posit.from_float(POSIT16, v) for v in (-2.5, 0.0, 1e-4, 7.0)]
    ordered = sorted(vals, key=lambda p: p._int_key())
    print("integer-sorted:", [round(p.to_float(), 5) for p in ordered])

    # No underflow/overflow: saturation instead.
    print(f"maxpos^2 = {(Posit.maxpos(POSIT16) * Posit.maxpos(POSIT16)).to_float():.3e}")

    # The quire: exact dot products (the 58-bit fixed-point observation).
    q = Quire(POSIT16)
    xs = [Posit.from_float(POSIT16, v) for v in (1e-3, 1e3, -1e3, 1.0)]
    ones = [Posit.one(POSIT16)] * 4
    print(f"quire dot  (1e-3 + 1e3 - 1e3 + 1): {q.dot(xs, ones).to_float()}")
    s = Posit.zero(POSIT16)
    for v in xs:
        s = s + v
    print(f"naive sum  (same terms):           {s.to_float()}")


def accuracy_demo():
    print("\n=== Tapered accuracy (Fig. 9) ===")
    from repro.analysis import decimal_accuracy_float, decimal_accuracy_posit

    probe = Fraction(10007, 9973)
    for mag in (-4, -2, 0, 2, 4):
        x = probe * Fraction(10) ** mag
        f = decimal_accuracy_float(BINARY16, x)
        p = decimal_accuracy_posit(POSIT16, x)
        marker = "posit" if p > f else "float"
        print(f"|x| ~ 1e{mag:+d}: float16 {f:4.2f} digits, posit16 {p:4.2f} digits -> {marker} wins")


if __name__ == "__main__":
    floats_demo()
    fixed_demo()
    posit_demo()
    accuracy_demo()

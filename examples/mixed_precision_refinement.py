"""Transprecision linear solves: low-precision LU + iterative refinement.

The paper's introduction lists "transprecision/mixed-precision computing"
among the active directions.  The classic instance: factorize A in a cheap
16-bit format, then recover full accuracy with float64 residual
corrections.  The storage format's accuracy profile (Fig. 9) decides how
many refinement sweeps are needed — posit16's extra digits near unit
magnitude buy faster convergence than binary16/bfloat16 on well-scaled
systems.

Run:  python examples/mixed_precision_refinement.py
"""

import numpy as np

from repro.posit import POSIT16, POSIT8
from repro.posit.tensor import PositCodec


def quantize_binary16(a):
    return np.float16(a).astype(np.float64)  # bit-exact binary16 grid


def quantize_bfloat16(a):
    # Truncate float32 to bfloat16 with RNE on the stored pattern.
    x = np.asarray(a, dtype=np.float32)
    u = x.view(np.uint32)
    rounded = (u + 0x7FFF + ((u >> 16) & 1)) >> 16
    return (rounded.astype(np.uint32) << 16).view(np.float32).astype(np.float64)


_P16 = PositCodec(POSIT16)


def quantize_posit16(a):
    return _P16.quantize(np.asarray(a, dtype=np.float64))


def lu_solve_quantized(a, b, quantize):
    """LU factorization carried out *on the quantized grid* (no piv､ growth
    control beyond partial pivoting), then forward/back substitution."""
    n = len(b)
    lu = quantize(a.copy())
    piv = np.arange(n)
    for k in range(n - 1):
        p = k + np.argmax(np.abs(lu[k:, k]))
        if p != k:
            lu[[k, p]] = lu[[p, k]]
            piv[[k, p]] = piv[[p, k]]
        if lu[k, k] == 0:
            continue
        lu[k + 1 :, k] = quantize(lu[k + 1 :, k] / lu[k, k])
        lu[k + 1 :, k + 1 :] = quantize(
            lu[k + 1 :, k + 1 :] - np.outer(lu[k + 1 :, k], lu[k, k + 1 :])
        )

    def solve(rhs):
        y = quantize(rhs[piv].copy())
        for i in range(1, n):
            y[i] = quantize(y[i] - lu[i, :i] @ y[:i])
        x = y.copy()
        for i in range(n - 1, -1, -1):
            x[i] = quantize((x[i] - lu[i, i + 1 :] @ x[i + 1 :]) / lu[i, i])
        return x

    return solve


def refine(a, b, quantize, max_iters=20, tol=1e-12):
    """Iterative refinement: low-precision solves + float64 residuals.

    The residual is normalized before each correction solve — the standard
    trick that keeps tiny corrections out of the low-precision format's
    underflow region (16-bit formats bottom out around 1e-8).
    """
    solve = lu_solve_quantized(a, b, quantize)
    x = solve(b / np.linalg.norm(b)) * np.linalg.norm(b)
    history = []
    for it in range(max_iters):
        r = b - a @ x  # float64 residual
        err = np.linalg.norm(r) / np.linalg.norm(b)
        history.append(err)
        if err < tol:
            break
        nr = np.linalg.norm(r)
        x = x + solve(r / nr) * nr
    return x, history


def main():
    rng = np.random.default_rng(3)
    n = 40
    a = rng.normal(0, 1, (n, n)) + n * np.eye(n) / 4  # well-conditioned
    x_true = rng.normal(0, 1, n)
    b = a @ x_true

    print(f"solving a {n}x{n} system with 16-bit LU + float64 refinement\n")
    print(f"{'format':<10} {'iters to 1e-12':>14}  residual trajectory (first 5)")
    for name, q in (
        ("binary16", quantize_binary16),
        ("bfloat16", quantize_bfloat16),
        ("posit16", quantize_posit16),
    ):
        x, hist = refine(a, b, q)
        traj = "  ".join(f"{h:.1e}" for h in hist[:5])
        iters = len(hist) if hist[-1] < 1e-12 else f">{len(hist)}"
        print(f"{name:<10} {iters!s:>14}  {traj}")
    print("\neach refinement sweep multiplies the error by ~(precision of the")
    print("storage format); more digits per iteration = fewer iterations.")


if __name__ == "__main__":
    main()

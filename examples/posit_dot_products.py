"""Posits in a numerical kernel: dot products with and without the quire.

A realistic edge workload: accumulate many small products (a dot product /
neuron activation) in 16-bit arithmetic.  Compares binary16, bfloat16,
posit16 with naive accumulation, and posit16 with the quire, against an
exact reference.

Run:  python examples/posit_dot_products.py
"""

import math
import random
from fractions import Fraction

from repro.floats import BFLOAT16, BINARY16, SoftFloat
from repro.posit import POSIT16, Posit, Quire


def dot_float(fmt, xs, ys):
    acc = SoftFloat.zero(fmt)
    for x, y in zip(xs, ys):
        acc = acc + SoftFloat.from_float(fmt, x) * SoftFloat.from_float(fmt, y)
    return acc.to_float()


def dot_posit(xs, ys):
    acc = Posit.zero(POSIT16)
    for x, y in zip(xs, ys):
        acc = acc + Posit.from_float(POSIT16, x) * Posit.from_float(POSIT16, y)
    return acc.to_float()


def dot_quire(xs, ys):
    q = Quire(POSIT16)
    return q.dot(
        [Posit.from_float(POSIT16, x) for x in xs],
        [Posit.from_float(POSIT16, y) for y in ys],
    ).to_float()


def relative_error(got, want):
    if want == 0:
        return abs(got)
    return abs(got - want) / abs(want)


def run_trial(n, scale, seed):
    rng = random.Random(seed)
    xs = [rng.gauss(0, scale) for _ in range(n)]
    ys = [rng.gauss(0, 1) for _ in range(n)]
    exact = float(sum(Fraction(x) * Fraction(y) for x, y in zip(xs, ys)))
    return {
        "binary16": relative_error(dot_float(BINARY16, xs, ys), exact),
        "bfloat16": relative_error(dot_float(BFLOAT16, xs, ys), exact),
        "posit16": relative_error(dot_posit(xs, ys), exact),
        "posit16+quire": relative_error(dot_quire(xs, ys), exact),
    }


def main():
    print(f"{'n':>5} {'scale':>7} | {'binary16':>10} {'bfloat16':>10} {'posit16':>10} {'quire':>10}")
    for n, scale in [(16, 1.0), (64, 1.0), (256, 1.0), (64, 30.0)]:
        # Average over a few trials to smooth the comparison.
        sums = {k: 0.0 for k in ("binary16", "bfloat16", "posit16", "posit16+quire")}
        trials = 5
        for seed in range(trials):
            errs = run_trial(n, scale, seed)
            for k, v in errs.items():
                sums[k] += v
        avg = {k: v / trials for k, v in sums.items()}
        print(
            f"{n:>5} {scale:>7.1f} | {avg['binary16']:>10.2e} {avg['bfloat16']:>10.2e} "
            f"{avg['posit16']:>10.2e} {avg['posit16+quire']:>10.2e}"
        )
    print(
        "\nposit16 beats both 16-bit float formats near unit magnitude "
        "(Fig. 9's accuracy peak), and the quire removes accumulation error "
        "entirely (single final rounding)."
    )


if __name__ == "__main__":
    main()

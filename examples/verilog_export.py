"""Export verified arithmetic datapaths as synthesizable Verilog.

The FloPoCo workflow the paper describes ends in HDL; this script emits
the exhaustively verified posit and float datapaths (and a bit-heap
generated multiplier) as structural Verilog-2001 into ``generated_rtl/``.

Run:  python examples/verilog_export.py
"""

from pathlib import Path

from repro.bitheap import build_bitheap_multiplier
from repro.circuits import to_verilog
from repro.floats import FP8_E4M3
from repro.hwcost import (
    build_float_adder,
    build_float_multiplier,
    build_integer_comparator,
    build_posit_adder,
    build_posit_multiplier,
)
from repro.posit import POSIT8


def main():
    out_dir = Path("generated_rtl")
    out_dir.mkdir(exist_ok=True)

    designs = [
        build_posit_multiplier(POSIT8),
        build_posit_adder(POSIT8),
        build_float_multiplier(FP8_E4M3, full_ieee=True),
        build_float_multiplier(FP8_E4M3, full_ieee=False),
        build_float_adder(FP8_E4M3, full_ieee=True),
        build_integer_comparator(8),
        build_bitheap_multiplier(6, 6),
    ]
    print(f"writing {len(designs)} modules to {out_dir}/\n")
    for circ in designs:
        path = out_dir / f"{circ.name}.v"
        verilog = to_verilog(circ)
        path.write_text(verilog)
        print(
            f"  {path}  ({len(circ.gates)} gates, depth {circ.depth()}, "
            f"{len(verilog.splitlines())} lines)"
        )
    print("\nevery module was verified bit-exactly against its software model")
    print("before emission (see tests/test_hwcost_*.py and tests/test_circuits_emit.py)")


if __name__ == "__main__":
    main()

"""FloPoCo-style operator generation (Section II).

Shows operator specialization (constant multiplier, squarer), table-based
function approximation "computing just right", the Fig. 1 sine/cosine
generator reporting every internal bit width, and operator fusion.

Run:  python examples/operator_generation.py
"""

from fractions import Fraction

from repro.bitheap import compress_greedy, multiplier_heap, squarer_heap
from repro.generators import (
    BipartiteTable,
    ConstantMultiplier,
    FusedNorm,
    MultipleConstantMultiplier,
    PiecewisePolynomial,
    PlainTable,
    SinCosGenerator,
    Squarer,
)


def specialization():
    print("=== Operator specialization ===")
    cm = ConstantMultiplier(1234, input_bits=16)
    print(f"x * 1234 as shift-adds: {cm}")
    print(f"  adders: {cm.adders} vs generic multiplier rows: {cm.generic_multiplier_cost}")

    mcm = MultipleConstantMultiplier([45, 90, 105, 75])
    print(
        f"MCM {{45, 90, 105, 75}}: {mcm.adder_count()} adders shared "
        f"vs {mcm.naive_adder_count()} unshared"
    )

    sq = Squarer(8)
    print(
        f"8-bit squarer: {sq.partial_products()} partial products "
        f"vs {sq.generic_partial_products()} for a generic multiplier "
        f"({sq.savings():.0%} saved)"
    )


def tables():
    print("\n=== Computing just right: 1/(1+x) on [0,1) ===")
    f = lambda x: 1 / (1 + x)
    plain = PlainTable(f, in_bits=12, out_frac_bits=10)
    bi = BipartiteTable(f, in_bits=12, out_frac_bits=10)
    poly = PiecewisePolynomial(f, in_bits=12, out_frac_bits=10, degree=2)
    print(f"plain table:      {plain.table_bits():>7} bits (correctly rounded)")
    print(
        f"bipartite table:  {bi.table_bits():>7} bits "
        f"(faithful, max err {bi.max_error_ulps():.2f} ulp, split a/b/g = "
        f"{bi.alpha}/{bi.beta}/{bi.gamma})"
    )
    print(
        f"poly degree 2:    {poly.table_bits():>7} bits + {poly.multiplier_count()} "
        f"multipliers ({1 << poly.seg_bits} segments, max err {poly.max_error_ulps():.2f} ulp)"
    )


def sincos():
    print("\n=== Fig. 1: parametric sin/cos generator ===")
    for p in (8, 12):
        g = SinCosGenerator(out_frac_bits=p)
        g.verify_faithful(step=11)
        print(g.report)
        print()


def fusion():
    print("=== Operator fusion: x / sqrt(x^2 + y^2) ===")
    fn = FusedNorm(in_frac_bits=6, out_frac_bits=10)
    print(f"fused max error:    {fn.max_error_ulps(fused=True, limit=24):.2f} ulp (faithful)")
    print(f"composed max error: {fn.max_error_ulps(fused=False, limit=24):.2f} ulp")


def bitheaps():
    print("\n=== Fig. 2: bit-heap compression ===")
    for w in (8, 12):
        h = multiplier_heap(w, w)
        r = compress_greedy(h)
        print(
            f"{w}x{w} multiplier heap: {h.total_bits()} bits, height {h.max_height()} "
            f"-> {r.stage_count} stages, area {r.total_area():.0f} LUT-eq"
        )
    h = squarer_heap(8)
    print(f"8-bit squarer heap:  {h.total_bits()} bits (specialization, Sec. II-A)")


if __name__ == "__main__":
    specialization()
    tables()
    sincos()
    fusion()
    bitheaps()

"""Approximate DNN inference and retraining (Section IV, Fig. 5 in miniature).

Trains a small CNN on the synthetic image task, quantizes it to 8 bits,
swaps in approximate multipliers of increasing error, and shows how STE
retraining recovers the lost accuracy.

Run:  python examples/approximate_dnn.py
"""

import copy

import numpy as np

from repro.approx import TABLE2_SET, characterize, signed_lut
from repro.datasets import synthetic_images
from repro.nn import Adam, QuantizedNetwork, evaluate_accuracy, train
from repro.nn.zoo import resnet_mini


def main():
    rng = np.random.default_rng(0)
    x, y = synthetic_images(160, classes=10, size=16, seed=0)
    xtr, ytr = x[:1200], y[:1200]
    xte, yte = x[1200:1500], y[1200:1500]

    print("training float resnet-mini ...")
    net = resnet_mini()
    train(net, xtr, ytr, epochs=4, batch=64, lr=2e-3, seed=0)
    float_acc = evaluate_accuracy(net.predict, xte, yte)

    qn = QuantizedNetwork(net, xtr[:128])
    q8_acc = evaluate_accuracy(lambda v: qn.predict(v, None), xte, yte)
    print(f"float accuracy: {float_acc:.3f}   8-bit accuracy: {q8_acc:.3f}")
    tolerance = q8_acc - 0.01  # the paper's 1% image-classification budget

    print(f"\n{'multiplier':<12} {'MRE%':>6} {'approx':>7} {'retrained':>9} {'ok?':>4}")
    for mult in (TABLE2_SET[1], TABLE2_SET[4], TABLE2_SET[7]):
        metrics = characterize(mult)
        lut = signed_lut(mult)
        approx_acc = evaluate_accuracy(lambda v: qn.predict(v, lut), xte, yte)

        retrain_net = copy.deepcopy(net)
        rqn = QuantizedNetwork(retrain_net, xtr[:128])
        opt = Adam(retrain_net.params(), lr=5e-4)
        for _ in range(40):
            idx = rng.integers(0, len(xtr), size=64)
            rqn.train_step(xtr[idx], ytr[idx], opt, lut)
        retrained_acc = evaluate_accuracy(lambda v: rqn.predict(v, lut), xte, yte)
        ok = "yes" if retrained_acc >= tolerance else "no"
        print(
            f"{metrics.name:<12} {metrics.mre_percent:6.2f} {approx_acc:7.3f} "
            f"{retrained_acc:9.3f} {ok:>4}"
        )


if __name__ == "__main__":
    main()

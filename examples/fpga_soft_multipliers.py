"""FPGA soft-logic arithmetic (Section III).

Walks through the 3x3 multiplier regularization of Figs. 3-4,
fractal-synthesis-style carry-chain packing, and the Agilex DSP model.

Run:  python examples/fpga_soft_multipliers.py
"""

from repro.bitheap import partial_product_table
from repro.fpga import (
    AGILEX_MODES,
    BRAINWAVE,
    TYPICAL_SOFT_ARITHMETIC,
    CarrySegment,
    agilex_device,
    fractal_pack,
    naive_mapping_stats,
    pack_segments,
    regularize_3x3,
)


def figures_3_and_4():
    print("=== Fig. 3: the pencil-and-paper 3x3 multiplier ===")
    for col, pps in partial_product_table(3, 3).items():
        print(f"  column {col}: {', '.join(pps)}")
    naive = naive_mapping_stats()
    print(
        f"  -> {naive.rows} rows, column height up to {naive.max_column_height}, "
        f"independent inputs {naive.min_column_inputs}..{naive.max_column_inputs} per column"
    )

    print("\n=== Fig. 4: regularized two-level form ===")
    mul = regularize_3x3()
    ok = all(mul.multiply(a, b) == a * b for a in range(8) for b in range(8))
    stats = mul.stats()
    print(f"  exhaustive 64-case equivalence: {'PASS' if ok else 'FAIL'}")
    print(
        f"  {stats.rows} rows -> {stats.chain_alms}-ALM carry chain + "
        f"{stats.out_of_band_alms} out-of-band ALM, "
        f"{stats.independent_inputs} independent inputs over {stats.total_alms} ALMs"
    )


def packing():
    print("\n=== Fractal-synthesis-style carry-chain packing ===")
    # A soft-multiplier array: many short segments of mixed lengths.
    segments = [CarrySegment(f"mul{i}", 3 + (i * 5) % 11) for i in range(60)]
    demand = sum(s.length for s in segments)
    capacity, chains = 16, 34  # just enough physical room: packing is tight
    print(f"  {len(segments)} segments, {demand} positions into {chains} chains of {capacity}")
    first_fit = pack_segments(segments, capacity, chains, seed=0)
    best = fractal_pack(segments, capacity, chains, seeds=48)
    print(f"  seed 0   : unplaced {first_fit.unplaced}, chains {first_fit.chains_used}, "
          f"splits {first_fit.splits}, utilization {first_fit.utilization:.1%}")
    print(f"  best seed: unplaced {best.unplaced}, chains {best.chains_used}, "
          f"splits {best.splits}, utilization {best.utilization:.1%} (seed {best.seed})")
    print(f"  typical soft arithmetic packs {TYPICAL_SOFT_ARITHMETIC.overall_packing():.0%}; "
          f"Brainwave-style reaches {BRAINWAVE.overall_packing():.1%}")


def dsp():
    print("\n=== Agilex DSP-block model ===")
    dev = agilex_device()
    for name, mode in AGILEX_MODES.items():
        fits = "2 lanes" if mode.lanes == 2 else "1 lane "
        print(
            f"  {name:<9} {fits}  -> {dev.peak_tflops(mode):5.1f} TFLOPs peak "
            f"({mode.fmt})"
        )
    print(
        f"  soft logic at low precision: "
        f"{dev.soft_logic_tflops(alms=900_000, alms_per_op=10, clock_hz=600e6):.0f} TFLOPs+"
    )


if __name__ == "__main__":
    figures_3_and_4()
    packing()
    dsp()

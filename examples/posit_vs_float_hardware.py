"""Gate-level posit vs float multipliers (Section V, Fig. 8).

Builds the Yonemoto-style posit8 multiplier and the two float multipliers
(normals-only and full IEEE), verifies them bit-exactly against the
software models, and prints the cost comparison.

Run:  python examples/posit_vs_float_hardware.py
"""

import numpy as np

from repro.floats import FP8_E4M3, SoftFloat
from repro.hwcost import build_float_multiplier, build_posit_multiplier, hardware_comparison
from repro.posit import POSIT8, Posit


def verify_posit_multiplier():
    print("verifying posit8 multiplier over all 65536 operand pairs ...")
    circ = build_posit_multiplier(POSIT8)
    pa, pb = np.meshgrid(np.arange(256), np.arange(256))
    pa, pb = pa.ravel(), pb.ravel()
    got = circ.evaluate_vector(a=pa, b=pb)["p"]
    table = np.empty((256, 256), dtype=np.int64)
    for i in range(256):
        a = Posit(POSIT8, i)
        for j in range(256):
            table[i, j] = (a * Posit(POSIT8, j)).pattern
    assert np.array_equal(got, table[pa, pb])
    print(f"  bit-exact: yes   ({circ})")


def verify_float_multiplier():
    print("verifying full-IEEE fp8 multiplier over all 65536 pairs ...")
    circ = build_float_multiplier(FP8_E4M3, full_ieee=True)
    pa, pb = np.meshgrid(np.arange(256), np.arange(256))
    pa, pb = pa.ravel(), pb.ravel()
    got = circ.evaluate_vector(a=pa, b=pb)["p"]
    mismatches = 0
    for i in range(len(pa)):
        want = SoftFloat(FP8_E4M3, int(pa[i])).mul(SoftFloat(FP8_E4M3, int(pb[i])))
        if want.is_nan():
            ok = SoftFloat(FP8_E4M3, int(got[i])).is_nan()
        else:
            ok = got[i] == want.pattern
        mismatches += not ok
    assert mismatches == 0
    print(f"  bit-exact: yes   ({circ})")


def cost_table():
    print("\ncost comparison (8-bit storage width):")
    print(f"{'design':<24} {'gates':>6} {'sig-mult':>9} {'overhead':>9} {'depth':>6} {'LUT6':>6}")
    for row in hardware_comparison(POSIT8, FP8_E4M3):
        print(
            f"{row.design:<24} {row.gates:>6} {row.sig_mult_gates:>9} "
            f"{row.overhead_gates:>9} {row.depth:>6} {row.luts:>6}"
        )
    print(
        "\nNote: the posit's significand array is genuinely wider (tapered\n"
        "precision carries up to 8 significand bits vs the float's 4), so the\n"
        "fair comparison is the overhead column — decode, exponent/regime\n"
        "handling, rounding and exception logic."
    )


if __name__ == "__main__":
    verify_posit_multiplier()
    verify_float_multiplier()
    cost_table()

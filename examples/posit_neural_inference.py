"""Posit-quantized neural inference vs int8 (Section V meets Section IV).

The paper positions posits as the edge-arithmetic contender; this example
runs the same trained CNN through three low-precision pipelines:

* int8 linear quantization (needs a calibration batch for per-layer scales),
* posit8 quantization (calibration-free: tapered range absorbs the scales),
* posit16 quantization (essentially lossless at these magnitudes).

Run:  python examples/posit_neural_inference.py
"""

from repro.datasets import synthetic_images
from repro.nn import QuantizedNetwork, evaluate_accuracy, train
from repro.nn.posit_inference import PositQuantizedNetwork
from repro.nn.zoo import resnet_mini
from repro.posit import POSIT8, POSIT16


def main():
    x, y = synthetic_images(160, classes=10, size=16, seed=0)
    xtr, ytr = x[:1200], y[:1200]
    xte, yte = x[1200:1600], y[1200:1600]

    print("training float resnet-mini ...")
    net = resnet_mini()
    train(net, xtr, ytr, epochs=4, batch=64, lr=2e-3, seed=0)

    float_acc = evaluate_accuracy(net.predict, xte, yte)
    int8 = QuantizedNetwork(net, xtr[:96])
    int8_acc = evaluate_accuracy(lambda v: int8.predict(v, None), xte, yte)
    p8 = PositQuantizedNetwork(net, POSIT8)
    p8_acc = evaluate_accuracy(p8.predict, xte, yte)
    p16 = PositQuantizedNetwork(net, POSIT16)
    p16_acc = evaluate_accuracy(p16.predict, xte, yte)

    print(f"\n{'pipeline':<22} {'accuracy':>9} {'notes'}")
    print(f"{'float64':<22} {float_acc:>9.3f}")
    print(f"{'int8 (calibrated)':<22} {int8_acc:>9.3f}  per-layer scales from a calibration batch")
    print(f"{'posit8':<22} {p8_acc:>9.3f}  no calibration; worst weight rel. err "
          f"{p8.weight_quantization_error():.3f}")
    print(f"{'posit16':<22} {p16_acc:>9.3f}  no calibration; worst weight rel. err "
          f"{p16.weight_quantization_error():.5f}")


if __name__ == "__main__":
    main()

"""Wide-codec correctness: exhaustive small-format parity + 32-bit plumbing.

The wide strategy's bit-parallel kernels (:mod:`repro.posit.vector`,
:mod:`repro.floats.vector`) are format-generic: the same shift/mask code
runs a 6-bit posit and posit<32,2>.  That makes exhaustive verification on
small formats a real proof of the shared datapath — every branch (regime
clamps, guard/sticky rounding, sticky-subtract, subnormal encode, overflow
to infinity) is reachable at 10 bits — while 32-bit coverage is sampled
(and hammered nightly by ``tests/test_differential_fuzz.py``).

Also pinned here: strategy auto-selection and code dtypes, fault injection
on 32-bit code words, and the BatchedRunner / PositQuantizedNetwork stack
running posit32 end-to-end.
"""

import numpy as np
import pytest

from repro.engine import BatchedRunner, FaultPlan, PositBackend, SoftFloatBackend
from repro.engine.wide import WideFloatCodec, WidePositCodec
from repro.floats import BINARY16, BINARY32, FP8_E4M3, FP8_E5M2, FloatFormat, SoftFloat
from repro.floats import vector as fvec
from repro.posit import POSIT8, POSIT16, POSIT32, Posit, PositFormat
from repro.posit import vector as pvec

SMALL_POSITS = [
    pytest.param(PositFormat(6, 0), id="posit6_0"),
    pytest.param(PositFormat(8, 1), id="posit8_1"),
    pytest.param(PositFormat(9, 2), id="posit9_2"),
    pytest.param(PositFormat(10, 1), id="posit10_1"),
]

SMALL_FLOATS = [
    pytest.param(FP8_E4M3, id="fp8_e4m3"),
    pytest.param(FP8_E5M2, id="fp8_e5m2"),
    pytest.param(BINARY16, id="binary16"),
]


def _assert_codes_equal(got, want, a, b, what):
    got = np.asarray(got, dtype=np.int64)
    want = np.asarray(want, dtype=np.int64)
    bad = np.nonzero(got != want)[0]
    if bad.size:
        i = int(bad[0])
        pytest.fail(
            f"{what}: {bad.size}/{got.size} mismatches; first at "
            f"(a={int(a[i]):#x}, b={int(b[i]):#x}): wide={int(got[i]):#x} "
            f"scalar={int(want[i]):#x}"
        )


# ----------------------------------------------------------------------
# Exhaustive posit parity on small formats
# ----------------------------------------------------------------------
class TestWidePositExhaustive:
    @pytest.mark.parametrize("fmt", SMALL_POSITS)
    def test_decode_all_codes(self, fmt):
        codes = np.arange(1 << fmt.nbits)
        got = pvec.vector_decode(fmt, codes)
        want = np.array(
            [
                np.nan if Posit(fmt, int(c)).is_nar() else Posit(fmt, int(c)).to_float()
                for c in codes
            ]
        )
        assert np.array_equal(got, want, equal_nan=True)

    @pytest.mark.parametrize("fmt", SMALL_POSITS)
    def test_encode_roundtrips_all_codes(self, fmt):
        codes = np.arange(1 << fmt.nbits)
        values = pvec.vector_decode(fmt, codes)
        finite = ~np.isnan(values)
        assert np.array_equal(pvec.vector_encode(fmt, values[finite]), codes[finite])
        # Non-finite inputs encode to NaR like the scalar model.
        nonfin = pvec.vector_encode(fmt, np.array([np.nan, np.inf, -np.inf]))
        assert np.all(nonfin == fmt.pattern_nar)

    @pytest.mark.parametrize("fmt", SMALL_POSITS)
    def test_encode_midpoints_and_clamps(self, fmt):
        """Ties and out-of-range magnitudes, checked against scalar encode.

        Midpoints between adjacent grid values exercise ties-to-even on
        the code; 2x maxpos and 0.5x minpos exercise the posit
        clamp-no-overflow rule.
        """
        codes = np.arange(1 << fmt.nbits)
        values = pvec.vector_decode(fmt, codes)
        grid = np.unique(values[~np.isnan(values)])
        mids = (grid[:-1] + grid[1:]) / 2.0
        minpos = float(pvec.vector_decode(fmt, np.array([1]))[0])
        probe = np.concatenate(
            [mids, grid * 1.0000001, grid * 0.9999999,
             np.array([grid[-1] * 2, grid[0] * 2, minpos / 2, -minpos / 2])]
        )
        got = pvec.vector_encode(fmt, probe)
        want = np.array([Posit.from_float(fmt, float(x)).pattern for x in probe])
        _assert_codes_equal(got, want, probe, probe, f"{fmt} encode midpoints")

    @pytest.mark.parametrize("fmt", SMALL_POSITS)
    def test_add_mul_all_pairs(self, fmt):
        n = 1 << fmt.nbits
        a, b = map(np.ravel, np.meshgrid(np.arange(n), np.arange(n)))
        posits = [Posit(fmt, int(c)) for c in range(n)]
        _assert_codes_equal(
            pvec.add_codes(fmt, a, b),
            [(posits[int(x)] + posits[int(y)]).pattern for x, y in zip(a, b)],
            a, b, f"{fmt} exhaustive add",
        )
        _assert_codes_equal(
            pvec.mul_codes(fmt, a, b),
            [(posits[int(x)] * posits[int(y)]).pattern for x, y in zip(a, b)],
            a, b, f"{fmt} exhaustive mul",
        )

    def test_format_guards(self):
        with pytest.raises(ValueError):
            pvec.check_wide_format(PositFormat(33, 2))
        with pytest.raises(ValueError):
            WidePositCodec(PositFormat(16, 4))  # es above the int64-safe bound


# ----------------------------------------------------------------------
# Exhaustive float parity on small formats
# ----------------------------------------------------------------------
class TestWideFloatExhaustive:
    @pytest.mark.parametrize("fmt", SMALL_FLOATS)
    def test_decode_all_codes(self, fmt):
        codes = np.arange(1 << fmt.width)
        got = fvec.vector_decode(fmt, codes)
        want = np.array([SoftFloat(fmt, int(c)).to_float() for c in codes])
        assert np.array_equal(got, want, equal_nan=True)
        real = ~np.isnan(want)
        assert np.array_equal(np.signbit(got[real]), np.signbit(want[real]))

    @pytest.mark.parametrize("fmt", SMALL_FLOATS)
    def test_encode_roundtrips_and_rounds(self, fmt):
        codes = np.arange(1 << fmt.width)
        values = fvec.vector_decode(fmt, codes)
        finite = np.isfinite(values)
        # Exact grid values (drop -0 whose roundtrip is the +0 code only
        # when the sign is lost — it isn't: signbit survives decode).
        assert np.array_equal(fvec.vector_encode(fmt, values[finite]), codes[finite])
        # Midpoints between adjacent finite grid magnitudes: ties-to-even,
        # subnormal boundaries, and overflow-to-inf at max_finite + ulp/2.
        grid = np.unique(values[finite])
        mids = (grid[:-1] + grid[1:]) / 2.0
        probe = np.concatenate(
            [mids, grid * 1.0000001, grid * 0.9999999,
             np.array([grid[-1] * 2, grid[0] * 2, np.inf, -np.inf, np.nan])]
        )
        got = fvec.vector_encode(fmt, probe)
        want = np.array([SoftFloat.from_float(fmt, float(x)).pattern for x in probe])
        _assert_codes_equal(got, want, probe, probe, f"{fmt} encode midpoints")

    def test_format_guards(self):
        with pytest.raises(ValueError):
            fvec.check_wide_format(FloatFormat("fp35", exp_bits=8, frac_bits=26))
        with pytest.raises(ValueError):
            # 12 exponent bits outrange float64's normals/subnormals.
            fvec.check_wide_format(FloatFormat("fp14e12", exp_bits=12, frac_bits=1))
        assert WideFloatCodec(BINARY32).exact_via_float64


# ----------------------------------------------------------------------
# 32-bit backend plumbing
# ----------------------------------------------------------------------
class TestWideBackendPlumbing:
    def test_strategy_auto_selection_and_dtype(self):
        assert PositBackend(POSIT8).strategy == "pairwise"
        assert PositBackend(POSIT16).strategy == "via-float"
        p32 = PositBackend(POSIT32)
        assert p32.strategy == "wide"
        assert p32._code_dtype is np.uint32
        assert p32.code_bits == 32
        f32 = SoftFloatBackend(BINARY32)
        assert f32.strategy == "wide"
        assert f32._code_dtype is np.uint32
        # Codes come back as uint32 from every op.
        x = np.linspace(-3, 3, 7)
        a = p32.encode(x)
        assert a.dtype == np.uint32
        assert p32.add(a, a).dtype == np.uint32
        assert p32.mul(a, a).dtype == np.uint32
        b = f32.encode(x)
        assert b.dtype == np.uint32
        assert f32.add(b, b).dtype == np.uint32

    def test_wide_on_narrow_format_matches_tables(self):
        """The wide kernels, forced onto 16-bit formats, agree with the
        tabulated strategies — same datapath, independent implementations."""
        rng = np.random.default_rng(7)
        a = rng.integers(0, 1 << 16, size=4000)
        b = rng.integers(0, 1 << 16, size=4000)
        wide = PositBackend(POSIT16, strategy="wide")
        tab = PositBackend(POSIT16, strategy="via-float")
        assert np.array_equal(wide.add(a, b), tab.add(a, b))
        assert np.array_equal(wide.mul(a, b), tab.mul(a, b))
        assert np.array_equal(wide.decode(a), tab.decode(a))
        fwide = SoftFloatBackend(BINARY16, strategy="wide")
        ftab = SoftFloatBackend(BINARY16, strategy="via-float")
        assert np.array_equal(fwide.add(a, b), ftab.add(a, b))
        assert np.array_equal(fwide.mul(a, b), ftab.mul(a, b))

    def test_posit32_matmul_matches_quire_on_grid_values(self):
        """float64 accumulation vs the exact quire on a small posit32 matmul.

        Operand magnitudes are kept within a few octaves so the 53-bit
        accumulator holds every partial sum exactly — then both paths must
        round identically.
        """
        backend = PositBackend(POSIT32)
        rng = np.random.default_rng(11)
        a = backend.encode(rng.uniform(-2, 2, size=(3, 4)))
        b = backend.encode(rng.uniform(-2, 2, size=(4, 2)))
        via_f64 = backend.matmul(a, b, accumulate="float64")
        via_quire = backend.matmul(a, b, accumulate="quire")
        # posit32 products need 56 bits, so float64 accumulation may differ
        # from the quire in the last ulp; decode and compare values.
        got = backend.decode(via_f64)
        want = backend.decode(via_quire)
        assert np.allclose(got, want, rtol=1e-7)

    def test_fault_injection_reaches_bit_31(self):
        plan = FaultPlan(seed=5, op_rate=1.0)
        backend = PositBackend(POSIT32, fault_plan=plan)
        a = backend.encode(np.full(512, 1.0))
        out = backend.add(a, np.zeros(512, dtype=np.uint32))
        clean = PositBackend(POSIT32).add(a, np.zeros(512, dtype=np.uint32))
        flipped = np.bitwise_xor(out.astype(np.int64), clean.astype(np.int64))
        assert np.all(flipped > 0)  # rate 1.0: every element corrupted
        # Flips land across the full 32-bit word, including the top byte —
        # code_bits=32 exposes all positions to the fault model.
        top_hits = np.nonzero(flipped >> 24)[0]
        assert top_hits.size > 0

    def test_batched_runner_posit32_end_to_end(self):
        from repro.nn.layers import Dense, ReLU
        from repro.nn.network import Sequential
        from repro.nn.posit_inference import PositQuantizedNetwork

        rng = np.random.default_rng(13)
        net = Sequential(
            [Dense(6, 8, rng, "h"), ReLU(), Dense(8, 3, rng, "out")], (6,)
        )
        qnet = PositQuantizedNetwork(net, POSIT32)
        x = rng.standard_normal((32, 6))
        runner = BatchedRunner(qnet, batch_size=8)
        y = runner.run(x)
        assert y.shape == (32, 3)
        assert np.all(np.isfinite(y))
        # posit32's grid is dense enough that quantized inference sits on
        # top of the float64 reference.
        y_ref = net.forward(x)
        assert np.allclose(y, y_ref, rtol=1e-5, atol=1e-6)
        assert qnet.weight_quantization_error() < 1e-7


class TestDecodeOutBuffer:
    """In-place buffer reuse on the wide decode path (the fused plan's
    scratch-buffer hook): ``out=`` must be exact, alias-safe, and strict
    about shape/dtype."""

    @pytest.mark.parametrize("fmt", [POSIT16, POSIT32], ids=str)
    def test_out_buffer_receives_exact_values(self, fmt):
        codec = WidePositCodec(fmt)
        codes = codec.encode(np.random.default_rng(3).normal(size=301))
        buf = np.empty(codes.shape, dtype=np.float64)
        out = codec.decode(codes, out=buf)
        assert out is buf
        assert np.array_equal(out, codec.decode(codes), equal_nan=True)

    def test_out_may_alias_the_codes_storage(self):
        """Decoding into the buffer that *holds* the codes (reinterpreted
        as float64) must still be exact: every field is extracted before
        the first write."""
        codec = WidePositCodec(POSIT32)
        values = np.random.default_rng(4).normal(size=256)
        codes = codec.encode(values).astype(np.uint64)
        want = codec.decode(codes.astype(np.uint32))
        alias = codes.view(np.float64)  # same 8-byte storage, float view
        got = pvec.vector_decode(POSIT32, codes, out=alias)
        assert got is alias
        assert np.array_equal(got, want, equal_nan=True)

    def test_strided_codes_decode_into_contiguous_out(self):
        codec = WidePositCodec(POSIT32)
        codes = codec.encode(np.random.default_rng(5).normal(size=200))
        strided = codes[::2]
        buf = np.empty(strided.shape, dtype=np.float64)
        out = codec.decode(strided, out=buf)
        assert np.array_equal(out, codec.decode(np.ascontiguousarray(strided)))

    def test_out_shape_and_dtype_are_validated(self):
        codec = WidePositCodec(POSIT32)
        codes = codec.encode(np.zeros(10))
        with pytest.raises(ValueError, match="out"):
            codec.decode(codes, out=np.empty(11, dtype=np.float64))
        with pytest.raises(ValueError, match="out"):
            codec.decode(codes, out=np.empty(10, dtype=np.float32))

    def test_elementwise_ops_tolerate_aliased_operands(self):
        """add/mul with both operands the same array (a += a patterns)."""
        codec = WidePositCodec(POSIT32)
        a = codec.encode(np.random.default_rng(6).normal(size=128))
        doubled = codec.add(a, a)
        squared = codec.mul(a, a)
        vals = codec.decode(a)
        assert np.array_equal(codec.decode(doubled), codec.quantize(vals + vals))
        assert np.array_equal(codec.decode(squared), codec.quantize(vals * vals))

    def test_overlapping_views_decode_identically(self):
        codec = WidePositCodec(POSIT32)
        codes = codec.encode(np.random.default_rng(7).normal(size=64))
        head, tail = codes[:48], codes[16:]
        ref = codec.decode(codes)
        assert np.array_equal(codec.decode(head), ref[:48])
        assert np.array_equal(codec.decode(tail), ref[16:])

"""Fused code-space inference: kernel parity, plan identity, sharding.

The contract under test is the strongest the repo makes: a
:class:`repro.engine.fused.FusedPlan` is a pure *execution strategy* —
for any input, any model, any supported format, its output is
``array_equal`` (bytes, not tolerances) with the unfused
:class:`PositQuantizedNetwork` built over the same backend, whether run
single-process, split at the code boundary, or sharded across worker
processes through shared memory.

The encode-LUT parity tests are the foundation: the fused path's direct
float64-bits encode table must agree with the boundary-searchsorted codec
on *every* adversarial float — grid points, rounding boundaries, their
one-ulp neighbours, ties, signed zeros, infinities, NaN, denormals, and
magnitudes far outside the posit range — because one wrong code anywhere
breaks the whole bit-identity chain.
"""

import multiprocessing

import numpy as np
import pytest

from repro.engine import BatchedRunner, CodecKernels, ParallelRunner
from repro.engine.fused import FusedPlan
from repro.engine.posit_backend import PositBackend
from repro.engine.registry import (
    ENCODE_TABLE_MAX_BITS,
    KernelRegistry,
    get_codec,
    get_encode_table,
)
from repro.nn.posit_inference import PositQuantizedNetwork
from repro.nn.zoo import kws_cnn1, kws_cnn2, resnet_mini
from repro.posit import POSIT8, POSIT16, POSIT32, STD_POSIT8
from repro.posit.format import PositFormat

LUT_FORMATS = [POSIT8, STD_POSIT8, PositFormat(6, 1), PositFormat(5, 1)]


def _adversarial_floats(fmt: PositFormat) -> np.ndarray:
    """Every float class that could distinguish the LUT from the codec."""
    codec = get_codec(fmt)
    grid = codec.values[np.isfinite(codec.values)]
    bounds = codec.boundaries[np.isfinite(codec.boundaries)]
    near = np.concatenate(
        [np.nextafter(bounds, -np.inf), bounds, np.nextafter(bounds, np.inf)]
    )
    rng = np.random.default_rng(20260808)
    randoms = rng.normal(scale=4.0, size=512)
    extremes = np.array(
        [0.0, -0.0, np.inf, -np.inf, np.nan, 5e-324, -5e-324, 1e-308,
         -1e-308, 1e308, -1e308, 0.5, -0.5, 1.0, -1.0]
    )
    return np.concatenate([grid, near, randoms, extremes])


class TestEncodeLUT:
    @pytest.mark.parametrize("fmt", LUT_FORMATS, ids=str)
    def test_lut_matches_codec_on_adversarial_floats(self, fmt):
        codec = get_codec(fmt)
        x = _adversarial_floats(fmt)
        lut = get_encode_table(fmt)
        bits = x.view(np.uint64)
        key = (bits >> np.uint64(52 - 8)) << np.uint64(1)
        key |= (bits & np.uint64((1 << (52 - 8)) - 1)) != 0
        got = np.take(lut, key)
        want = codec.encode(x)
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("fmt", LUT_FORMATS, ids=str)
    def test_backend_lut_kernel_matches_codec(self, fmt):
        """The backend's packaged encode kernel (keying + gather included)."""
        backend = PositBackend(fmt)
        kernels = backend.codec_kernels()
        x = _adversarial_floats(fmt)
        assert np.array_equal(kernels.encode(x), backend.encode(x))

    def test_lut_rejects_wide_formats(self):
        with pytest.raises(ValueError, match="encode tables"):
            get_encode_table(PositFormat(9, 1))
        with pytest.raises(ValueError, match="encode tables"):
            get_encode_table(POSIT16)

    def test_lut_is_registry_cached(self, tmp_path):
        reg = KernelRegistry(cache_dir=tmp_path)
        first = get_encode_table(POSIT8, reg)
        again = get_encode_table(POSIT8, reg)
        assert first is again
        reg.flush_to_disk(tmp_path)
        fresh = KernelRegistry(cache_dir=tmp_path)
        loaded = get_encode_table(POSIT8, fresh)
        assert np.array_equal(first, loaded)
        assert fresh.stats()["disk_loads"] >= 1


class TestCodecKernels:
    def test_kernel_kinds_by_width(self):
        cases = {
            POSIT8: ("table-lut", "table-gather"),
            STD_POSIT8: ("table-lut", "table-gather"),
            POSIT16: ("wide-bitparallel", "table-gather"),
            POSIT32: ("wide-bitparallel", "wide-bitparallel"),
        }
        for fmt, (enc, dec) in cases.items():
            kernels = PositBackend(fmt).codec_kernels()
            assert isinstance(kernels, CodecKernels)
            assert (kernels.encode_kind, kernels.decode_kind) == (enc, dec), fmt

    @pytest.mark.parametrize("fmt", [POSIT8, POSIT16, POSIT32], ids=str)
    def test_kernels_round_trip_matches_backend(self, fmt):
        backend = PositBackend(fmt)
        kernels = backend.codec_kernels()
        x = np.random.default_rng(5).normal(size=257)
        codes = kernels.encode(x)
        assert codes.dtype == np.dtype(kernels.code_dtype)
        assert np.array_equal(codes, backend.encode(x))
        assert np.array_equal(
            kernels.decode(codes), backend.decode(codes), equal_nan=True
        )

    def test_decode_out_buffer_is_used_and_exact(self):
        backend = PositBackend(POSIT8)
        kernels = backend.codec_kernels()
        codes = kernels.encode(np.linspace(-8, 8, 100))
        buf = np.empty(codes.shape, dtype=np.float64)
        out = kernels.decode(codes, out=buf)
        assert out is buf
        assert np.array_equal(out, backend.decode(codes))


MODELS = [
    (kws_cnn1, (1, 31, 20)),
    (kws_cnn2, (1, 31, 20)),
    (resnet_mini, (3, 16, 16)),
]
FORMATS = [POSIT8, STD_POSIT8, POSIT16, POSIT32]


class TestFusedPlanIdentity:
    @pytest.mark.parametrize("build,shape", MODELS, ids=lambda m: getattr(m, "__name__", ""))
    @pytest.mark.parametrize("fmt", FORMATS, ids=str)
    def test_forward_bit_identical_to_unfused(self, build, shape, fmt):
        net = build(seed=11)
        qnet = PositQuantizedNetwork(net, fmt)
        plan = FusedPlan.compile(net, fmt, backend=qnet.engine)
        x = np.random.default_rng(3).normal(size=(5,) + shape)
        assert np.array_equal(plan.forward(x), qnet.forward(x), equal_nan=True)

    def test_codes_split_equals_forward(self):
        net = kws_cnn1(seed=2)
        plan = FusedPlan.compile(net, POSIT8)
        x = np.random.default_rng(4).normal(size=(7, 1, 31, 20))
        codes = plan.encode_input(x)
        assert codes.dtype == plan.code_dtype
        assert np.array_equal(plan.forward_codes(codes), plan.forward(x))

    def test_codes_slicing_is_elementwise(self):
        """encode(x)[s:e] == encode(x[s:e]) — the sharding precondition."""
        net = kws_cnn1(seed=2)
        plan = FusedPlan.compile(net, POSIT8)
        x = np.random.default_rng(9).normal(size=(10, 1, 31, 20))
        whole = plan.encode_input(x)
        assert np.array_equal(whole[3:7], plan.encode_input(x[3:7]))

    def test_nan_inputs_propagate_identically(self):
        net = kws_cnn1(seed=6)
        qnet = PositQuantizedNetwork(net, POSIT8)
        plan = FusedPlan.compile(net, POSIT8, backend=qnet.engine)
        x = np.random.default_rng(8).normal(size=(4, 1, 31, 20))
        x[1, 0, 5, 5] = np.nan
        x[3, 0, 0, 0] = np.inf
        assert np.array_equal(plan.forward(x), qnet.forward(x), equal_nan=True)

    def test_scratch_reuse_across_batch_sizes(self):
        """Repeated calls with changing batch sizes (scratch buffers grow,
        shrink, and get reused) never change a byte."""
        net = kws_cnn1(seed=3)
        qnet = PositQuantizedNetwork(net, POSIT8)
        plan = FusedPlan.compile(net, POSIT8, backend=qnet.engine)
        for bs in (4, 9, 4, 1, 16, 2):
            x = np.random.default_rng(bs).normal(size=(bs, 1, 31, 20))
            assert np.array_equal(plan.forward(x), qnet.forward(x))

    def test_residual_shortcut_uses_unquantized_input(self):
        """resnet's residual stages take a float entry: the shortcut adds
        the raw block input, which code-space entry would have rounded."""
        net = resnet_mini(seed=7)
        plan = FusedPlan.compile(net, STD_POSIT8)
        kinds = [s.kind for s in plan.stages]
        assert "residual" in kinds
        res = plan.stages[kinds.index("residual")]
        assert res.entry == "float"
        qnet = PositQuantizedNetwork(net, STD_POSIT8)
        x = np.random.default_rng(1).normal(size=(3, 3, 16, 16))
        assert np.array_equal(plan.forward(x), qnet.forward(x))

    def test_stable_contractions_flag_is_adopted(self):
        backend = PositBackend(POSIT8, stable_contractions=True)
        plan = FusedPlan.compile(kws_cnn1(seed=0), POSIT8, backend=backend)
        assert plan.stable_contractions is True

    def test_describe_names_kernels_and_boundaries(self):
        plan = FusedPlan.compile(kws_cnn1(seed=0), POSIT8)
        desc = plan.describe()
        assert [d["kind"] for d in desc].count("encode") == 3  # c1, c2, head
        assert all("table" in d["name"] for d in desc if d["kind"] == "encode")
        assert plan.input_rep == "codes"
        assert plan.output_shape == (8,)


class TestFusedRefusesFaults:
    def test_compile_rejects_backend_fault_plan(self):
        from repro.engine.faults import FaultPlan

        backend = PositBackend(POSIT8, fault_plan=FaultPlan(seed=1, lut_rate=1.0))
        with pytest.raises(ValueError, match="fault"):
            FusedPlan.compile(kws_cnn1(seed=0), POSIT8, backend=backend)

    def test_compile_rejects_registry_fault_plan(self, tmp_path):
        from repro.engine.faults import FaultPlan

        reg = KernelRegistry(cache_dir=tmp_path)
        reg.fault_plan = FaultPlan(seed=1, lut_rate=1.0)
        with pytest.raises(ValueError, match="fault"):
            FusedPlan.compile(kws_cnn1(seed=0), POSIT8, registry=reg)

    def test_predict_fused_rejects_fault_plan(self):
        from repro.engine.faults import FaultPlan

        qnet = PositQuantizedNetwork(
            kws_cnn1(seed=0), POSIT8, fault_plan=FaultPlan(seed=1, activation_rate=0.5)
        )
        with pytest.raises(ValueError, match="fused"):
            qnet.predict(np.zeros((2, 1, 31, 20)), fused=True)

    def test_predict_fused_rejects_poison_audit(self):
        qnet = PositQuantizedNetwork(kws_cnn1(seed=0), POSIT8, poison_audit=True)
        with pytest.raises(ValueError, match="fused"):
            qnet.fused_plan()


class TestPredictFused:
    def test_predict_fused_equals_unfused(self):
        qnet = PositQuantizedNetwork(kws_cnn1(seed=5), POSIT8)
        x = np.random.default_rng(2).normal(size=(21, 1, 31, 20))
        ref = qnet.predict(x, batch=8)
        assert np.array_equal(qnet.predict(x, batch=8, fused=True), ref)

    def test_predict_fused_workers_equals_unfused(self):
        qnet = PositQuantizedNetwork(kws_cnn1(seed=5), POSIT8)
        x = np.random.default_rng(2).normal(size=(30, 1, 31, 20))
        ref = qnet.predict(x, batch=8)
        got = qnet.predict(x, batch=8, workers=2, fused=True)
        assert np.array_equal(got, ref)
        assert multiprocessing.active_children() == []

    def test_batched_runner_over_plan(self):
        qnet = PositQuantizedNetwork(kws_cnn1(seed=5), POSIT8)
        x = np.random.default_rng(2).normal(size=(17, 1, 31, 20))
        runner = BatchedRunner(qnet.fused_plan(), batch_size=4)
        assert np.array_equal(runner.run(x), qnet.predict(x, batch=4))
        stats = runner.stats()
        assert stats["items"] == 17


class TestFusedSharedMemory:
    def test_parallel_bit_identity_and_stats(self):
        qnet = PositQuantizedNetwork(kws_cnn1(seed=5), POSIT8)
        plan = qnet.fused_plan()
        x = np.random.default_rng(2).normal(size=(40, 1, 31, 20))
        ref = qnet.predict(x, batch=8)
        with ParallelRunner(plan, workers=2, batch_size=8) as runner:
            got = runner.run(x)
            stats = runner.stats()
        assert np.array_equal(got, ref)
        assert stats["items"] == 40
        assert stats["fallbacks"] == 0

    def test_float_entry_plan_uses_pickling_transport(self):
        """A plan whose first layer is unquantized cannot pre-encode the
        input; ParallelRunner must fall back to the pickling transport and
        stay bit-identical."""
        from repro.nn.layers import Dense, Flatten, ReLU
        from repro.nn.network import Sequential

        rng = np.random.default_rng(0)
        net = Sequential(
            [Flatten(), Dense(12, 6, rng, "d1"), ReLU(), Dense(6, 4, rng, "d2")],
            input_shape=(12,),
            name="flat-first",
        )
        plan = FusedPlan.compile(net, POSIT8)
        assert plan.input_rep == "float"
        x = np.random.default_rng(1).normal(size=(12, 12))
        single = plan.forward(x)
        with ParallelRunner(plan, workers=2, batch_size=4) as runner:
            got = runner.run(x)
        assert np.array_equal(got, single)

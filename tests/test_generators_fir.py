"""FIR filter generator tests (the [1]-style 'computing just right' filter)."""

from fractions import Fraction

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.generators import FIRFilter
from repro.generators.errors import ulp

LOWPASS = [0.0625, 0.25, 0.375, 0.25, 0.0625]  # binomial smoother
EDGE = [0.5, 0.0, -0.5]

samples_strategy = st.lists(
    st.integers(min_value=-255, max_value=255), min_size=1, max_size=60
)


class TestConstruction:
    def test_coefficient_grid_from_budget(self):
        f = FIRFilter(LOWPASS, in_frac_bits=8, out_frac_bits=8)
        assert f.coeff_frac_bits >= 8
        # Budget must not be blown.
        b = f.error_budget()
        assert b.remaining() > 0

    def test_sharing_not_worse_than_naive(self):
        f = FIRFilter([0.1, 0.3, 0.5, 0.3, 0.1], in_frac_bits=8, out_frac_bits=8)
        assert f.adder_cost() <= f.naive_adder_cost() + 2

    def test_zero_coefficients_skipped(self):
        f = FIRFilter(EDGE, in_frac_bits=6, out_frac_bits=8)
        assert f.apply([64]) and f.taps == 3


class TestBehaviour:
    def test_impulse_response_is_coefficients(self):
        f = FIRFilter(LOWPASS, in_frac_bits=8, out_frac_bits=10)
        impulse = [1 << 8] + [0] * (f.taps - 1)
        got = f.apply(impulse)
        for g, c in zip(got, f.coeff_codes):
            want = Fraction(c, 1 << f.coeff_frac_bits)
            assert abs(Fraction(g, 1 << 10) - want) <= ulp(10)

    def test_dc_gain(self):
        f = FIRFilter(LOWPASS, in_frac_bits=8, out_frac_bits=10)
        dc = [1 << 8] * 20
        out = f.apply(dc)
        # Steady-state output ~ sum(coeffs) = 1.0.
        assert abs(out[-1] / (1 << 10) - 1.0) < 0.01

    def test_linearity(self):
        f = FIRFilter(EDGE, in_frac_bits=6, out_frac_bits=12)
        xs = [10, -20, 30, 5, 0, -7]
        double = [2 * x for x in xs]
        y1 = f.reference(xs)
        y2 = f.reference(double)
        assert all(b == 2 * a for a, b in zip(y1, y2))

    @given(samples_strategy)
    def test_faithful_vs_quantized_reference(self, xs):
        f = FIRFilter(LOWPASS, in_frac_bits=8, out_frac_bits=8)
        assert f.max_error_ulps(xs) < 1.0

    @given(samples_strategy)
    def test_faithful_high_precision(self, xs):
        f = FIRFilter(EDGE, in_frac_bits=8, out_frac_bits=12)
        assert f.max_error_ulps(xs) < 1.0

    def test_lowpass_smooths_noise(self):
        rng = np.random.default_rng(0)
        noise = rng.integers(-128, 128, size=300).tolist()
        f = FIRFilter(LOWPASS, in_frac_bits=8, out_frac_bits=8)
        out = f.apply(noise)
        assert np.std(out[10:]) < np.std(noise[10:])

    def test_edge_detector_on_step(self):
        f = FIRFilter(EDGE, in_frac_bits=6, out_frac_bits=10)
        step = [0] * 10 + [64] * 10
        out = f.apply(step)
        peak = max(out, key=abs)
        assert abs(peak / (1 << 10) - 0.5) < 0.02  # responds at the step
        assert abs(out[-1]) <= 1  # flat regions -> ~0

"""The serving layer's coalescing contract: batch composition is invisible.

A request's result must be **byte-equal** whether it is served solo,
coalesced with arbitrary batch mates, or sharded across a chaos-crashed
worker pool.  These tests pin that contract at three levels: the
row-stable kernel itself, the executor's coalescing, and a golden-vector
replay (so a regression is caught even if both sides of a same-process
comparison drift together).
"""

import pathlib

import numpy as np
import pytest

from repro.engine import ChaosPlan, stable_matmul
from repro.engine.observe import Metrics
from repro.nn.posit_inference import PositQuantizedNetwork
from repro.nn.zoo import kws_cnn1
from repro.posit import STD_POSIT8
from repro.serve.executor import EngineExecutor
from repro.serve.protocol import Request

GOLDEN = pathlib.Path(__file__).parent / "golden" / "serve_kws1_posit8.npz"

# Chaos segments spin up worker pools; a hung pool must fail fast in CI.
pytestmark = pytest.mark.timeout(120)


def assert_bitexact(a: np.ndarray, b: np.ndarray, label: str) -> None:
    a = np.asarray(a)
    b = np.asarray(b)
    assert a.shape == b.shape and a.dtype == b.dtype, label
    assert a.tobytes() == b.tobytes(), f"{label}: outputs differ bytewise"


def nn_request(req_id: str, x: np.ndarray) -> Request:
    return Request(
        id=req_id,
        workload="nn_predict",
        tenant="t",
        bits=8,
        es=2,
        model="kws1",
        x=np.asarray(x, dtype=np.float64),
        rows=len(x),
    )


def run_executor(executor: EngineExecutor, requests) -> list:
    key = requests[0].batch_key()
    results = executor.execute(key, list(requests))
    for r in results:
        assert not isinstance(r, Exception), f"request failed: {r!r}"
    return results


# ----------------------------------------------------------------------
# Level 1: the kernel
# ----------------------------------------------------------------------
class TestStableMatmul:
    def test_row_stable_under_any_batching(self):
        """Each output row depends only on its own input row — bytewise."""
        rng = np.random.default_rng(7)
        x = rng.normal(size=(17, 64))
        w = rng.normal(size=(64, 32))
        full = stable_matmul(x, w)
        for i in range(len(x)):
            assert_bitexact(full[i : i + 1], stable_matmul(x[i : i + 1], w), f"row {i}")
        # Arbitrary sub-batches too, not just singletons.
        assert_bitexact(full[3:11], stable_matmul(x[3:11], w), "slice 3:11")

    def test_matches_matmul_values_closely(self):
        rng = np.random.default_rng(8)
        a = rng.normal(size=(5, 9))
        b = rng.normal(size=(9, 4))
        np.testing.assert_allclose(stable_matmul(a, b), a @ b, rtol=1e-13)


# ----------------------------------------------------------------------
# Level 2: executor coalescing (in-process)
# ----------------------------------------------------------------------
class TestCoalescingIdentity:
    def test_solo_vs_coalesced_byte_equal(self):
        rng = np.random.default_rng(101)
        samples = rng.normal(size=(6, 1, 1, 31, 20))
        solo_exec = EngineExecutor(metrics=Metrics())
        solo = [
            run_executor(solo_exec, [nn_request(f"s{i}", samples[i])])[0]
            for i in range(len(samples))
        ]
        # Same samples, one coalesced batch through a *fresh* executor.
        batch_exec = EngineExecutor(metrics=Metrics())
        coalesced = run_executor(
            batch_exec, [nn_request(f"c{i}", samples[i]) for i in range(len(samples))]
        )
        for i, (lone, joined) in enumerate(zip(solo, coalesced)):
            assert_bitexact(lone, joined, f"sample {i} solo vs coalesced")

    def test_multi_row_requests_split_correctly(self):
        rng = np.random.default_rng(102)
        xa = rng.normal(size=(2, 1, 31, 20))
        xb = rng.normal(size=(3, 1, 31, 20))
        executor = EngineExecutor(metrics=Metrics())
        ra, rb = run_executor(executor, [nn_request("a", xa), nn_request("b", xb)])
        assert ra.shape[0] == 2 and rb.shape[0] == 3
        solo_a = run_executor(executor, [nn_request("a2", xa)])[0]
        solo_b = run_executor(executor, [nn_request("b2", xb)])[0]
        assert_bitexact(ra, solo_a, "multi-row request a")
        assert_bitexact(rb, solo_b, "multi-row request b")

    def test_posit_matmul_coalesced_identity(self):
        rng = np.random.default_rng(103)
        executor = EngineExecutor(metrics=Metrics())
        reqs = []
        for i in range(4):
            a = rng.normal(size=(3, 5))
            b = rng.normal(size=(5, 2))
            reqs.append(
                Request(
                    id=f"m{i}", workload="posit_matmul", tenant="t",
                    bits=8, es=2, a=a, b=b, rows=3,
                )
            )
        coalesced = run_executor(executor, reqs)
        for i, req in enumerate(reqs):
            solo = run_executor(
                executor,
                [Request(id="solo", workload="posit_matmul", tenant="t",
                         bits=8, es=2, a=req.a, b=req.b, rows=3)],
            )[0]
            assert_bitexact(coalesced[i], solo, f"posit_matmul request {i}")


# ----------------------------------------------------------------------
# Level 3: golden replay + chaos-crashed worker pool
# ----------------------------------------------------------------------
class TestGoldenReplay:
    @pytest.fixture(scope="class")
    def golden(self):
        with np.load(GOLDEN) as data:
            return data["x"].copy(), data["y"].copy()

    def test_golden_solo_reference_is_current(self, golden):
        """The checked-in solo outputs match today's stable-contraction net."""
        x, y = golden
        qnet = PositQuantizedNetwork(
            kws_cnn1(seed=0), STD_POSIT8, stable_contractions=True
        )
        now = np.concatenate([qnet.forward(x[i : i + 1]) for i in range(len(x))])
        assert_bitexact(now, y, "golden solo reference")

    def test_coalesced_executor_matches_golden(self, golden):
        x, y = golden
        executor = EngineExecutor(metrics=Metrics())
        results = run_executor(
            executor, [nn_request(f"g{i}", x[i : i + 1]) for i in range(len(x))]
        )
        assert_bitexact(np.concatenate(results), y, "coalesced vs golden")

    def test_chaos_worker_pool_matches_golden(self, golden):
        """workers=2 under crash_rate=0.3: degraded paths stay byte-exact.

        The chaos plan deterministically kills workers mid-task; the
        runner's degradation ladder (retry -> pool rebuild -> in-process
        fallback) must deliver the same bytes as the golden solo replay —
        resilience is only acceptable if it is invisible in the output.
        """
        x, y = golden
        executor = EngineExecutor(
            workers=2,
            # Seed 2 deterministically crashes chunk 0 on its first attempt
            # and recovers on retry, so the degraded path definitely runs.
            chaos=ChaosPlan(seed=2, crash_rate=0.3),
            task_timeout=60.0,
            metrics=Metrics(),
        )
        try:
            results = run_executor(
                executor, [nn_request(f"w{i}", x[i : i + 1]) for i in range(len(x))]
            )
            assert_bitexact(np.concatenate(results), y, "workers=2 chaos vs golden")
            # Zero-drop at the executor level: every request resolved.
            assert len(results) == len(x)
            stats = executor.stats()["runners"]["kws1/8/2"]
            assert stats["task_retries"] + stats["fallbacks"] > 0, (
                f"chaos never fired: {stats}"
            )
        finally:
            executor.close()

"""Process-kill chaos: SIGKILL and SIGSTOP real fabric nodes mid-load.

The failure repertoire a method-call simulator cannot produce, run for
real: node processes are SIGKILLed between (and racing with) interests,
SIGSTOPed to fake a stall, and driven from a seeded
:class:`~repro.engine.faults.ChaosPlan` via ``apply_to_process``.  The
invariants under all of it are the fabric's whole point:

* **zero wrong answers** — every completed interest is byte-exact against
  the direct backend result, kill timing notwithstanding;
* **zero silent drops** — every interest either completes or raises a
  typed error (``FogUnavailable`` / ``DeadlineExceeded``);
* **supervised recovery** — killed processes are restarted with backoff
  and their content stores re-seeded through digest-verified carries;
* **stalls are not deaths** — a SIGSTOPed node is marked suspect and
  routed around, then welcomed back on SIGCONT without a restart.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.engine.faults import ChaosPlan
from repro.engine.observe import Metrics
from repro.fog import FogFabric, FogUnavailable
from repro.serve.executor import DeadlineExceeded, EngineExecutor
from repro.serve.protocol import Request

pytestmark = pytest.mark.timeout(300)


def matmul_request(req_id, a, b):
    return Request(
        id=req_id, workload="posit_matmul", tenant="chaos", bits=8, es=2,
        a=np.asarray(a, dtype=np.float64), b=np.asarray(b, dtype=np.float64),
        rows=len(a),
    )


def direct_results(pairs):
    """The reject-or-exact reference: the same engine executor the node
    processes run, executed directly in this process."""
    executor = EngineExecutor(metrics=Metrics())
    try:
        out = []
        for a, b in pairs:
            req = matmul_request("ref", a, b)
            result = executor.execute(req.batch_key(), [req])[0]
            if isinstance(result, Exception):
                raise result
            out.append(np.asarray(result).tobytes())
        return out
    finally:
        executor.close()


def working_set(seed, count=6):
    rng = np.random.default_rng(seed)
    return [(rng.normal(size=(3, 4)), rng.normal(size=(4, 2))) for _ in range(count)]


# ----------------------------------------------------------------------
# SIGKILL mid-load
# ----------------------------------------------------------------------
class TestKillMidLoad:
    def test_kills_between_interests_never_produce_wrong_answers(self):
        pairs = working_set(seed=11)
        want = direct_results(pairs)
        metrics = Metrics()
        fab = FogFabric(
            nodes=3, replicas=2, heartbeat_ms=40.0, miss_budget=2,
            metrics=metrics, retry_backoff_base_ms=5.0,
            restart_backoff_base_s=0.02,
        )
        wrong = completed = rejected = 0
        kills = 0
        try:
            assert fab.wait_all_serving(timeout_s=30.0)
            for step in range(12):
                if step in (3, 7):  # kill a live node mid-sequence
                    serving = fab.supervisor.serving_names()
                    if len(serving) > 1:
                        assert fab.kill(serving[step % len(serving)]) is not None
                        kills += 1
                for j, (a, b) in enumerate(pairs):
                    try:
                        got = fab.submit(matmul_request(f"k{step}j{j}", a, b))
                    except (FogUnavailable, DeadlineExceeded):
                        rejected += 1
                        continue
                    completed += 1
                    if got.tobytes() != want[j]:
                        wrong += 1
            assert kills == 2, "both kill steps must have fired"
            assert wrong == 0, f"{wrong} wrong answers under kill churn"
            assert completed + rejected == 12 * len(pairs), "silent drop"
            assert completed > 0
            # The supervisor must restore full capability (poll: a freshly
            # killed process can read as alive until reaped).
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline and not (
                metrics.counters.get("fabric.restarts", 0) >= kills
                and fab.supervisor.all_serving()
            ):
                time.sleep(0.02)
            assert metrics.counters.get("fabric.restarts", 0) >= kills
            assert fab.supervisor.all_serving(), (
                f"supervisor never recovered: {fab.supervisor.stats()}"
            )
            # Post-recovery the fabric still answers exactly.
            for j, (a, b) in enumerate(pairs):
                got = fab.submit(matmul_request(f"post{j}", a, b))
                assert got.tobytes() == want[j]
        finally:
            fab.close()

    def test_warm_restart_reseeds_the_fresh_store(self):
        """A killed node comes back with its hot results carried in —
        each carry digest-verified — so replay hits resume immediately."""
        pairs = working_set(seed=13, count=4)
        want = direct_results(pairs)
        metrics = Metrics()
        fab = FogFabric(
            nodes=2, replicas=2, heartbeat_ms=40.0, metrics=metrics,
            restart_backoff_base_s=0.02,
        )
        try:
            assert fab.wait_all_serving(timeout_s=30.0)
            for j, (a, b) in enumerate(pairs):  # warm every store
                fab.submit(matmul_request(f"warm{j}", a, b))
            victim = fab.supervisor.serving_names()[0]
            old_pid = fab.kill(victim)
            assert old_pid is not None
            # Wait for the respawn proper (a freshly SIGKILLed process can
            # linger as "alive" until reaped, so pid change is the signal).
            deadline = time.monotonic() + 30.0
            while fab.supervisor.pid(victim) == old_pid and time.monotonic() < deadline:
                time.sleep(0.02)
            assert fab.supervisor.pid(victim) != old_pid, "node never respawned"
            assert fab.wait_all_serving(timeout_s=30.0)
            assert metrics.counters.get("fabric.warm_restarts", 0) >= 1
            assert metrics.counters.get("fabric.warm_carries", 0) >= 1, (
                "restart must replay the hot journal into the fresh store"
            )
            # The revived node really holds verified entries.
            client = fab.supervisor.client(victim)
            hb = client.heartbeat(seq=999)
            assert hb["store_entries"] >= 1
            for j, (a, b) in enumerate(pairs):
                got = fab.submit(matmul_request(f"after{j}", a, b))
                assert got.tobytes() == want[j]
        finally:
            fab.close()

    def test_restart_budget_exhaustion_routes_around_for_good(self):
        """Past max_restarts the node stays down; the fabric keeps serving
        through the surviving replica (or counted local degradation)."""
        pairs = working_set(seed=17, count=2)
        want = direct_results(pairs)
        metrics = Metrics()
        fab = FogFabric(
            nodes=2, replicas=2, heartbeat_ms=30.0, metrics=metrics,
            max_restarts=1, restart_backoff_base_s=0.01,
        )
        try:
            assert fab.wait_all_serving(timeout_s=30.0)
            victim = fab.node_names[0]
            deadline = time.monotonic() + 60.0
            while (
                not fab.supervisor._nodes[victim].gave_up
                and time.monotonic() < deadline
            ):
                if fab.supervisor.serving(victim):
                    fab.kill(victim)
                time.sleep(0.05)
            assert fab.supervisor._nodes[victim].gave_up, "budget never exhausted"
            assert metrics.counters.get("fabric.restart_budget_exhausted", 0) >= 1
            for j, (a, b) in enumerate(pairs):
                got = fab.submit(matmul_request(f"rb{j}", a, b))
                assert got.tobytes() == want[j]
        finally:
            fab.close()


# ----------------------------------------------------------------------
# SIGSTOP: a stall is suspect, not dead
# ----------------------------------------------------------------------
class TestStall:
    def test_sigstop_marks_suspect_and_sigcont_recovers_without_restart(self):
        metrics = Metrics()
        fab = FogFabric(
            nodes=2, replicas=2, heartbeat_ms=40.0, miss_budget=2,
            metrics=metrics,
        )
        try:
            assert fab.wait_all_serving(timeout_s=30.0)
            victim = fab.node_names[0]
            pid = fab.supervisor.pid(victim)
            restarts_before = fab.supervisor._nodes[victim].restarts
            os.kill(pid, signal.SIGSTOP)
            try:
                deadline = time.monotonic() + 30.0
                while fab.supervisor.serving(victim) and time.monotonic() < deadline:
                    time.sleep(0.02)
                assert not fab.supervisor.serving(victim), "stall never suspected"
                assert metrics.counters.get("fabric.heartbeat.suspects", 0) >= 1
                # Still routable overall: the other node carries the load.
                got = fab.submit(
                    matmul_request("stall", [[1.0, 2.0]], [[3.0], [4.0]])
                )
                assert got.tobytes() == np.array([[11.0]]).tobytes()
            finally:
                os.kill(pid, signal.SIGCONT)
            deadline = time.monotonic() + 30.0
            while not fab.supervisor.serving(victim) and time.monotonic() < deadline:
                time.sleep(0.02)
            assert fab.supervisor.serving(victim), "resumed node never welcomed back"
            assert metrics.counters.get("fabric.heartbeat.recoveries", 0) >= 1
            assert fab.supervisor._nodes[victim].restarts == restarts_before, (
                "a stall must not burn a restart — the process never died"
            )
            assert fab.supervisor.pid(victim) == pid
        finally:
            fab.close()


# ----------------------------------------------------------------------
# Hedged interests: a silent primary races a duplicate to the replica
# ----------------------------------------------------------------------
class TestHedging:
    def test_stalled_primary_loses_to_hedged_secondary(self):
        """With the failure detector too slow to notice (huge heartbeat
        interval), a SIGSTOPped primary owner still looks routable — the
        hedge is what saves the request's latency, not the supervisor."""
        pairs = working_set(seed=23, count=1)
        want = direct_results(pairs)
        metrics = Metrics()
        fab = FogFabric(
            nodes=3, replicas=2, heartbeat_ms=10_000.0, hedge_ms=50.0,
            default_budget_ms=10_000.0, request_timeout_s=3.0,
            metrics=metrics,
        )
        stalled_pid = None
        try:
            assert fab.wait_all_serving(timeout_s=30.0)
            a, b = pairs[0]
            req = matmul_request("hedge", a, b)
            owners = fab.owners(req.batch_key())
            primary = owners[0]
            bystander = next(n for n in fab.node_names if n not in owners)
            stalled_pid = fab.supervisor.pid(primary)
            os.kill(stalled_pid, signal.SIGSTOP)
            # Route hop 1 through the non-owner so the walk reaches the
            # owner loop (where hedging lives) with the budget intact.
            candidates = [n for n in fab.node_names if fab.routable(n)]
            fab._ingress_counter = candidates.index(bystander)
            t0 = time.monotonic()
            got = fab.submit(req)
            elapsed = time.monotonic() - t0
            assert got.tobytes() == want[0], "hedged answer must be byte-exact"
            assert metrics.counters.get("fabric.hedges", 0) >= 1, (
                "the silent primary must have triggered a hedge"
            )
            assert metrics.counters.get("fabric.hedge_wins", 0) >= 1
            assert fab.degraded == 0, "hedging served it — no degradation"
            assert elapsed < 3.0, (
                f"hedge should beat the primary's timeout, took {elapsed:.2f}s"
            )
        finally:
            if stalled_pid is not None:
                os.kill(stalled_pid, signal.SIGCONT)
            fab.close()


# ----------------------------------------------------------------------
# ChaosPlan drives real processes
# ----------------------------------------------------------------------
def _sleep_forever():
    time.sleep(3600)


class TestChaosPlanProcesses:
    def test_apply_to_process_crash_sigkills(self):
        import multiprocessing

        ctx = multiprocessing.get_context("spawn")
        proc = ctx.Process(target=_sleep_forever, daemon=True)
        proc.start()
        try:
            plan = ChaosPlan(seed=0, crash_rate=1.0)
            assert plan.apply_to_process(proc.pid, chunk_idx=0) == "crash"
            proc.join(timeout=10.0)
            assert not proc.is_alive(), "crash decision must SIGKILL the pid"
            assert proc.exitcode == -signal.SIGKILL
        finally:
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)

    def test_apply_to_process_slow_stalls_then_resumes(self):
        import multiprocessing

        ctx = multiprocessing.get_context("spawn")
        proc = ctx.Process(target=_sleep_forever, daemon=True)
        proc.start()
        try:
            plan = ChaosPlan(seed=0, slow_rate=1.0, slow_s=0.05)
            assert plan.apply_to_process(proc.pid, chunk_idx=0) == "slow"
            assert proc.is_alive(), "a stall must not kill the process"
        finally:
            proc.kill()
            proc.join(timeout=5.0)

    def test_apply_to_process_dead_pid_is_noop(self):
        import multiprocessing

        ctx = multiprocessing.get_context("spawn")
        proc = ctx.Process(target=_sleep_forever, daemon=True)
        proc.start()
        proc.kill()
        proc.join(timeout=10.0)
        plan = ChaosPlan(seed=0, crash_rate=1.0)
        assert plan.apply_to_process(proc.pid, chunk_idx=0) is None

    def test_decisions_match_decide(self):
        """apply_to_process executes exactly what decide announced."""
        import multiprocessing

        plan = ChaosPlan(seed=5, crash_rate=0.0, slow_rate=0.3, slow_s=0.01)
        ctx = multiprocessing.get_context("spawn")
        proc = ctx.Process(target=_sleep_forever, daemon=True)
        proc.start()
        try:
            for chunk in range(20):
                got = plan.apply_to_process(proc.pid, chunk, 0)
                assert got == plan.decide(chunk, 0)
        finally:
            proc.kill()
            proc.join(timeout=5.0)

    def test_attempts_gate_applies_to_processes_too(self):
        plan = ChaosPlan(seed=1, crash_rate=1.0, attempts=(0,))
        # attempt 1 is outside the gate: no decision, no signal sent —
        # safe even against our own pid.
        assert plan.apply_to_process(os.getpid(), chunk_idx=0, attempt=1) is None

    def test_chaos_plan_driven_fabric_kills(self):
        """The seeded plan SIGKILLs fabric nodes; the fabric absorbs it."""
        pairs = working_set(seed=19, count=3)
        want = direct_results(pairs)
        metrics = Metrics()
        plan = ChaosPlan(seed=7, crash_rate=0.5)
        fab = FogFabric(
            nodes=3, replicas=2, heartbeat_ms=40.0, metrics=metrics,
            restart_backoff_base_s=0.02,
        )
        wrong = completed = rejected = 0
        crashes = 0
        try:
            assert fab.wait_all_serving(timeout_s=30.0)
            for step in range(6):
                serving = fab.supervisor.serving_names()
                if len(serving) > 1:
                    for idx, name in enumerate(serving[1:]):
                        action = plan.apply_to_process(
                            fab.supervisor.pid(name), step * 8 + idx
                        )
                        if action == "crash":
                            crashes += 1
                for j, (a, b) in enumerate(pairs):
                    try:
                        got = fab.submit(matmul_request(f"p{step}j{j}", a, b))
                    except (FogUnavailable, DeadlineExceeded):
                        rejected += 1
                        continue
                    completed += 1
                    if got.tobytes() != want[j]:
                        wrong += 1
            assert wrong == 0
            assert completed + rejected == 6 * len(pairs)
            assert crashes >= 1, "seed 7 must fire at least one crash decision"
            assert fab.wait_all_serving(timeout_s=60.0) or (
                fab.supervisor.serving_names()
            ), "fabric lost every node for good"
        finally:
            fab.close()


# ----------------------------------------------------------------------
# Pipelined transport under fire: 16 in-flight rids across a SIGKILL
# ----------------------------------------------------------------------
class TestPipelinedChaos:
    def test_sixteen_in_flight_survive_a_kill_without_wrong_answers(self):
        """16 concurrent interests ride the multiplexed connections while a
        node is SIGKILLed mid-flight.  The rid demux plus digest checks
        must keep the usual pair of invariants: every submission either
        returns bytes exact against the direct backend or raises a typed
        error — no crossed responses, no hangs, no silent drops."""
        import threading

        pairs = working_set(seed=29, count=16)
        want = direct_results(pairs)
        metrics = Metrics()
        fab = FogFabric(
            nodes=3, replicas=2, heartbeat_ms=40.0, miss_budget=2,
            metrics=metrics, retry_backoff_base_ms=5.0,
            restart_backoff_base_s=0.02, default_budget_ms=60_000.0,
        )
        outcomes = [None] * len(pairs)
        try:
            assert fab.wait_all_serving(timeout_s=30.0)
            barrier = threading.Barrier(len(pairs) + 1)

            def fire(i):
                a, b = pairs[i]
                barrier.wait()
                try:
                    outcomes[i] = ("ok", fab.submit(
                        matmul_request(f"pc{i}", a, b)
                    ).tobytes())
                except (FogUnavailable, DeadlineExceeded) as err:
                    outcomes[i] = ("rejected", type(err).__name__)
                except Exception as err:  # noqa: BLE001 — graded below
                    outcomes[i] = ("wrong_error", repr(err))

            threads = [
                threading.Thread(target=fire, args=(i,))
                for i in range(len(pairs))
            ]
            for t in threads:
                t.start()
            barrier.wait()  # all 16 in flight together...
            victim = fab.supervisor.serving_names()[0]
            assert fab.kill(victim) is not None  # ...then the axe falls
            for t in threads:
                t.join(120.0)
                assert not t.is_alive(), "an in-flight interest hung"
            completed = rejected = 0
            for i, outcome in enumerate(outcomes):
                assert outcome is not None, f"interest {i} silently dropped"
                kind, detail = outcome
                assert kind != "wrong_error", (
                    f"interest {i} leaked an untyped error: {detail}"
                )
                if kind == "ok":
                    completed += 1
                    assert detail == want[i], f"interest {i} returned wrong bytes"
                else:
                    rejected += 1
            assert completed + rejected == len(pairs)
            assert completed > 0, "a single kill cannot reject the whole batch"
            # Recovery: the fabric heals and the full set replays exactly.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline and not fab.supervisor.all_serving():
                time.sleep(0.02)
            for i, (a, b) in enumerate(pairs):
                got = fab.submit(matmul_request(f"pc-after{i}", a, b))
                assert got.tobytes() == want[i]
        finally:
            fab.close()

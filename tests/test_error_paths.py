"""API-contract and failure-injection tests across the library.

Production libraries fail loudly and precisely; these tests pin the error
behaviour of every package's entry points.
"""

import numpy as np
import pytest

from repro.bitheap import BitHeap, FULL_ADDER
from repro.bitheap.compress import _apply
from repro.circuits import Circuit
from repro.fixedpoint import FixedPoint, Overflow, QFormat
from repro.floats import BINARY16, BINARY32, SoftFloat
from repro.fpga import CarrySegment, PhysicalChain
from repro.generators import ConstantMultiplier, Squarer
from repro.lns import LNS, LNSFormat
from repro.posit import POSIT8, POSIT16, Posit, PositFormat, Quire


class TestFloatsErrors:
    def test_pattern_out_of_range(self):
        with pytest.raises(ValueError):
            SoftFloat(BINARY16, 1 << 16)
        with pytest.raises(ValueError):
            SoftFloat(BINARY16, -1)

    def test_format_mismatch_rejected(self):
        a = SoftFloat.from_float(BINARY16, 1.0)
        b = SoftFloat.from_float(BINARY32, 1.0)
        with pytest.raises(ValueError):
            a.add(b)

    def test_nan_has_no_fraction_value(self):
        with pytest.raises(ValueError):
            SoftFloat.nan(BINARY16).to_fraction()

    def test_immutability(self):
        x = SoftFloat.from_float(BINARY16, 1.0)
        with pytest.raises(AttributeError):
            x.pattern = 0

    def test_repr_roundtrips_value(self):
        x = SoftFloat.from_float(BINARY16, 1.5)
        assert "1.5" in repr(x)


class TestPositErrors:
    def test_pattern_out_of_range(self):
        with pytest.raises(ValueError):
            Posit(POSIT8, 256)

    def test_format_mismatch(self):
        with pytest.raises(ValueError):
            Posit.one(POSIT8).add(Posit.one(POSIT16))

    def test_nar_to_fraction_raises(self):
        with pytest.raises(ValueError):
            Posit.nar(POSIT8).to_fraction()

    def test_immutability(self):
        with pytest.raises(AttributeError):
            Posit.one(POSIT8).pattern = 3

    def test_quire_nar_to_fraction_raises(self):
        q = Quire(POSIT8)
        q.add_posit(Posit.nar(POSIT8))
        with pytest.raises(ValueError):
            q.to_fraction()

    def test_degenerate_format_rejected(self):
        with pytest.raises(ValueError):
            PositFormat(2, 0)


class TestFixedPointErrors:
    def test_error_overflow_policy(self):
        with pytest.raises(OverflowError):
            FixedPoint(QFormat(2, 2), 1000)

    def test_saturate_policy_clamps(self):
        fp = FixedPoint(QFormat(2, 2), 1000, Overflow.SATURATE)
        assert fp.raw == QFormat(2, 2).max_raw

    def test_immutability(self):
        fp = FixedPoint.from_float(QFormat(2, 2), 1.0)
        with pytest.raises(AttributeError):
            fp.raw = 0


class TestCircuitErrors:
    def test_undriven_output(self):
        c = Circuit("u")
        (a,) = c.inputs("a")
        orphan = c.new_net("orphan")
        c.outputs(o=orphan)
        with pytest.raises(RuntimeError):
            c.evaluate(a=1)

    def test_unknown_input_name(self):
        c = Circuit("t")
        (a,) = c.inputs("a")
        c.outputs(o=c.buf(a))
        with pytest.raises(KeyError):
            c.evaluate(a=1, bogus=0)

    def test_unknown_bus_in_vector_eval(self):
        c = Circuit("t")
        x = c.input_bus("x", 2)
        c.output_bus("o", x)
        with pytest.raises(KeyError):
            c.evaluate_vector(bogus=np.array([1]))

    def test_wrong_arity(self):
        from repro.circuits import GateKind

        c = Circuit("t")
        a, b = c.inputs("a", "b")
        with pytest.raises(ValueError):
            c._gate(GateKind.NOT, a, b)
        with pytest.raises(ValueError):
            c.and_(a)


class TestBitHeapErrors:
    def test_compressor_underfed(self):
        heap = BitHeap()
        heap.add_word(1, 1)
        with pytest.raises(ValueError):
            _apply(heap, FULL_ADDER, 0)  # column has 1 bit, FA needs 3

    def test_value_of_symbolic_heap(self):
        heap = BitHeap()
        heap.add_symbolic_word(4)
        with pytest.raises(ValueError):
            heap.value()


class TestFpgaErrors:
    def test_zero_length_segment(self):
        with pytest.raises(ValueError):
            CarrySegment("s", 0)

    def test_chain_overflow_guarded(self):
        chain = PhysicalChain(0, capacity=4)
        chain.place("a", 4)
        with pytest.raises(ValueError):
            chain.place("b", 1)


class TestGeneratorErrors:
    def test_squarer_range_check(self):
        with pytest.raises(ValueError):
            Squarer(4).apply(16)

    def test_constant_multiplier_handles_zero(self):
        cm = ConstantMultiplier(0, 8)
        assert cm.apply(123) == 0
        assert cm.adders == 0


class TestLNSErrors:
    def test_exponent_out_of_range(self):
        fmt = LNSFormat(3, 2)
        with pytest.raises(ValueError):
            LNS(fmt, 0, fmt.e_max + 1)

    def test_division_by_zero(self):
        fmt = LNSFormat(3, 2)
        with pytest.raises(ZeroDivisionError):
            LNS.one(fmt) / LNS.zero(fmt)

    def test_mixed_format_rejected(self):
        a = LNS.one(LNSFormat(3, 2))
        b = LNS.one(LNSFormat(4, 2))
        with pytest.raises(ValueError):
            a + b

    def test_nan_input_becomes_zero(self):
        import math

        fmt = LNSFormat(3, 2)
        assert LNS.from_float(fmt, math.nan).is_zero()

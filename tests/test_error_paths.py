"""API-contract and failure-injection tests across the library.

Production libraries fail loudly and precisely; these tests pin the error
behaviour of every package's entry points.
"""

import numpy as np
import pytest

from repro.bitheap import BitHeap, FULL_ADDER
from repro.bitheap.compress import _apply
from repro.circuits import Circuit
from repro.fixedpoint import FixedPoint, Overflow, QFormat
from repro.floats import BINARY16, BINARY32, SoftFloat
from repro.fpga import CarrySegment, PhysicalChain
from repro.generators import ConstantMultiplier, Squarer
from repro.lns import LNS, LNSFormat
from repro.posit import POSIT8, POSIT16, Posit, PositFormat, Quire


class TestFloatsErrors:
    def test_pattern_out_of_range(self):
        with pytest.raises(ValueError):
            SoftFloat(BINARY16, 1 << 16)
        with pytest.raises(ValueError):
            SoftFloat(BINARY16, -1)

    def test_format_mismatch_rejected(self):
        a = SoftFloat.from_float(BINARY16, 1.0)
        b = SoftFloat.from_float(BINARY32, 1.0)
        with pytest.raises(ValueError):
            a.add(b)

    def test_nan_has_no_fraction_value(self):
        with pytest.raises(ValueError):
            SoftFloat.nan(BINARY16).to_fraction()

    def test_immutability(self):
        x = SoftFloat.from_float(BINARY16, 1.0)
        with pytest.raises(AttributeError):
            x.pattern = 0

    def test_repr_roundtrips_value(self):
        x = SoftFloat.from_float(BINARY16, 1.5)
        assert "1.5" in repr(x)


class TestPositErrors:
    def test_pattern_out_of_range(self):
        with pytest.raises(ValueError):
            Posit(POSIT8, 256)

    def test_format_mismatch(self):
        with pytest.raises(ValueError):
            Posit.one(POSIT8).add(Posit.one(POSIT16))

    def test_nar_to_fraction_raises(self):
        with pytest.raises(ValueError):
            Posit.nar(POSIT8).to_fraction()

    def test_immutability(self):
        with pytest.raises(AttributeError):
            Posit.one(POSIT8).pattern = 3

    def test_quire_nar_to_fraction_raises(self):
        q = Quire(POSIT8)
        q.add_posit(Posit.nar(POSIT8))
        with pytest.raises(ValueError):
            q.to_fraction()

    def test_degenerate_format_rejected(self):
        with pytest.raises(ValueError):
            PositFormat(2, 0)


class TestFixedPointErrors:
    def test_error_overflow_policy(self):
        with pytest.raises(OverflowError):
            FixedPoint(QFormat(2, 2), 1000)

    def test_saturate_policy_clamps(self):
        fp = FixedPoint(QFormat(2, 2), 1000, Overflow.SATURATE)
        assert fp.raw == QFormat(2, 2).max_raw

    def test_immutability(self):
        fp = FixedPoint.from_float(QFormat(2, 2), 1.0)
        with pytest.raises(AttributeError):
            fp.raw = 0


class TestCircuitErrors:
    def test_undriven_output(self):
        c = Circuit("u")
        (a,) = c.inputs("a")
        orphan = c.new_net("orphan")
        c.outputs(o=orphan)
        with pytest.raises(RuntimeError):
            c.evaluate(a=1)

    def test_unknown_input_name(self):
        c = Circuit("t")
        (a,) = c.inputs("a")
        c.outputs(o=c.buf(a))
        with pytest.raises(KeyError):
            c.evaluate(a=1, bogus=0)

    def test_unknown_bus_in_vector_eval(self):
        c = Circuit("t")
        x = c.input_bus("x", 2)
        c.output_bus("o", x)
        with pytest.raises(KeyError):
            c.evaluate_vector(bogus=np.array([1]))

    def test_wrong_arity(self):
        from repro.circuits import GateKind

        c = Circuit("t")
        a, b = c.inputs("a", "b")
        with pytest.raises(ValueError):
            c._gate(GateKind.NOT, a, b)
        with pytest.raises(ValueError):
            c.and_(a)


class TestBitHeapErrors:
    def test_compressor_underfed(self):
        heap = BitHeap()
        heap.add_word(1, 1)
        with pytest.raises(ValueError):
            _apply(heap, FULL_ADDER, 0)  # column has 1 bit, FA needs 3

    def test_value_of_symbolic_heap(self):
        heap = BitHeap()
        heap.add_symbolic_word(4)
        with pytest.raises(ValueError):
            heap.value()


class TestFpgaErrors:
    def test_zero_length_segment(self):
        with pytest.raises(ValueError):
            CarrySegment("s", 0)

    def test_chain_overflow_guarded(self):
        chain = PhysicalChain(0, capacity=4)
        chain.place("a", 4)
        with pytest.raises(ValueError):
            chain.place("b", 1)


class TestGeneratorErrors:
    def test_squarer_range_check(self):
        with pytest.raises(ValueError):
            Squarer(4).apply(16)

    def test_constant_multiplier_handles_zero(self):
        cm = ConstantMultiplier(0, 8)
        assert cm.apply(123) == 0
        assert cm.adders == 0


class TestLNSErrors:
    def test_exponent_out_of_range(self):
        fmt = LNSFormat(3, 2)
        with pytest.raises(ValueError):
            LNS(fmt, 0, fmt.e_max + 1)

    def test_division_by_zero(self):
        fmt = LNSFormat(3, 2)
        with pytest.raises(ZeroDivisionError):
            LNS.one(fmt) / LNS.zero(fmt)

    def test_mixed_format_rejected(self):
        a = LNS.one(LNSFormat(3, 2))
        b = LNS.one(LNSFormat(4, 2))
        with pytest.raises(ValueError):
            a + b

    def test_nan_input_becomes_zero(self):
        import math

        fmt = LNSFormat(3, 2)
        assert LNS.from_float(fmt, math.nan).is_zero()


class TestRegistryCacheErrors:
    """Corrupt-cache recovery: every bad disk state rebuilds cleanly,
    quarantines the offender, and increments an integrity metric."""

    KEY = ("posit", 8, 0, "errtest")

    @staticmethod
    def _tables():
        return {
            "add": (np.arange(256, dtype=np.uint8)[:, None]
                    + np.arange(256, dtype=np.uint8)[None, :]),
        }

    def _seed_cache(self, tmp_path):
        from repro.engine.registry import KernelRegistry

        reg = KernelRegistry(cache_dir=tmp_path)
        tables = reg.get(self.KEY, self._tables)
        path = reg._path(self.KEY)
        assert path.exists()
        return reg, tables, path

    def _reload(self, tmp_path):
        """A fresh registry (cold memo) reading the same cache dir."""
        from repro.engine.registry import KernelRegistry

        return KernelRegistry(cache_dir=tmp_path)

    def test_truncated_npz_recovers(self, tmp_path):
        from repro.engine.observe import METRICS

        _, tables, path = self._seed_cache(tmp_path)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        before = METRICS.counters.get("registry.disk_integrity_failures", 0)
        reg2 = self._reload(tmp_path)
        rebuilt = reg2.get(self.KEY, self._tables)
        assert np.array_equal(rebuilt["add"], tables["add"])
        assert reg2.stats()["integrity_failures"] == 1
        assert METRICS.counters["registry.disk_integrity_failures"] == before + 1
        assert path.with_suffix(".npz.corrupt").exists()
        assert path.exists()  # rebuilt entry re-persisted

    def test_checksum_mismatch_recovers(self, tmp_path):
        from repro.engine.observe import METRICS

        _, tables, path = self._seed_cache(tmp_path)
        # Tamper with one payload byte, keeping the zip container valid.
        bad = {name: arr.copy() for name, arr in tables.items()}
        bad["add"][17, 3] ^= 0x40
        with np.load(path) as data:
            original_digest = data["__sha256__"]  # contents will no longer match
        with open(path, "wb") as fh:
            np.savez_compressed(fh, __sha256__=original_digest, **bad)
        before = METRICS.counters.get(
            "registry.disk_integrity_failures.checksum", 0
        )
        reg2 = self._reload(tmp_path)
        rebuilt = reg2.get(self.KEY, self._tables)
        assert np.array_equal(rebuilt["add"], tables["add"])  # not the tampered bytes
        assert reg2.stats()["integrity_failures"] == 1
        assert (
            METRICS.counters["registry.disk_integrity_failures.checksum"]
            == before + 1
        )

    def test_stale_file_without_checksum_recovers(self, tmp_path):
        _, tables, path = self._seed_cache(tmp_path)
        with open(path, "wb") as fh:  # pre-integrity format: no digest entry
            np.savez_compressed(fh, **tables)
        reg2 = self._reload(tmp_path)
        rebuilt = reg2.get(self.KEY, self._tables)
        assert np.array_equal(rebuilt["add"], tables["add"])
        assert reg2.stats()["integrity_failures"] == 1

    def test_wrong_shape_table_recovers(self, tmp_path):
        from repro.engine.registry import DIGEST_KEY, _digest

        _, tables, path = self._seed_cache(tmp_path)
        # Valid checksum over structurally wrong data: only the validate
        # hook can catch this.
        bad = {"add": tables["add"][:17]}
        payload = dict(bad)
        payload[DIGEST_KEY] = np.frombuffer(_digest(bad), dtype=np.uint8)
        with open(path, "wb") as fh:
            np.savez_compressed(fh, **payload)
        reg2 = self._reload(tmp_path)
        rebuilt = reg2.get(
            self.KEY,
            self._tables,
            validate=lambda t: t["add"].shape == (256, 256),
        )
        assert rebuilt["add"].shape == (256, 256)
        assert np.array_equal(rebuilt["add"], tables["add"])
        assert reg2.stats()["integrity_failures"] == 1

    def test_unreadable_cache_dir_degrades_to_memory(self, tmp_path, monkeypatch):
        import os

        from repro.engine.observe import METRICS
        from repro.engine.registry import KernelRegistry

        if os.geteuid() == 0:
            pytest.skip("chmod 000 does not bar root; permission test is moot")
        locked = tmp_path / "locked"
        locked.mkdir()
        reg = KernelRegistry(cache_dir=locked)
        locked.chmod(0o000)
        try:
            tables = reg.get(self.KEY, self._tables)  # write fails, run continues
            assert np.array_equal(tables["add"], self._tables()["add"])
            assert reg.stats()["disk_errors"] >= 1
            assert METRICS.counters.get("registry.disk_errors", 0) >= 1
        finally:
            locked.chmod(0o700)

    def test_unwritable_write_counts_disk_error(self, tmp_path, monkeypatch):
        """Root-safe variant: force the atomic replace itself to fail."""
        import os

        from repro.engine.registry import KernelRegistry

        reg = KernelRegistry(cache_dir=tmp_path)

        def boom(src, dst):
            raise OSError("disk on fire")

        monkeypatch.setattr(os, "replace", boom)
        tables = reg.get(self.KEY, self._tables)
        assert np.array_equal(tables["add"], self._tables()["add"])
        assert reg.stats()["disk_errors"] == 1
        assert not reg._path(self.KEY).exists()

    def test_quarantined_file_not_reloaded(self, tmp_path):
        _, tables, path = self._seed_cache(tmp_path)
        path.write_bytes(b"not a zip at all")
        reg2 = self._reload(tmp_path)
        reg2.get(self.KEY, self._tables)
        # A second cold registry sees the rebuilt (valid) file, not the junk.
        reg3 = self._reload(tmp_path)
        reg3.get(self.KEY, lambda: pytest.fail("should load from disk"))
        assert reg3.stats()["disk_loads"] == 1
        assert reg3.stats()["integrity_failures"] == 0

    def test_deflate_corruption_quarantined_not_raised(self, tmp_path):
        """A byte flip inside the compressed stream raises zlib.error on
        read — that must quarantine and rebuild, never escape."""
        _, tables, path = self._seed_cache(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        reg2 = self._reload(tmp_path)
        rebuilt = reg2.get(self.KEY, self._tables)
        assert np.array_equal(rebuilt["add"], tables["add"])
        assert reg2.stats()["integrity_failures"] == 1
        assert path.with_suffix(".npz.corrupt").exists()

    def test_codec_tables_round_trip_disk_validation(self, tmp_path):
        """The codec validate hook must accept its own flushed tables
        (boundaries span *finite* values only — NaR stores as NaN)."""
        from repro.engine.registry import KernelRegistry, get_codec

        get_codec(POSIT8, KernelRegistry(cache_dir=tmp_path))
        reg2 = KernelRegistry(cache_dir=tmp_path)
        codec = get_codec(POSIT8, reg2)
        assert reg2.stats()["disk_loads"] == 1
        assert reg2.stats()["integrity_failures"] == 0
        assert codec.encode(np.array([1.0]))[0] == 0x40  # posit8 1.0


class TestFaultPlanErrors:
    def test_rates_validated(self):
        from repro.engine.faults import ChaosPlan, FaultPlan

        with pytest.raises(ValueError):
            FaultPlan(lut_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(op_rate=-0.1)
        with pytest.raises(ValueError):
            ChaosPlan(crash_rate=0.7, slow_rate=0.7)  # sum > 1

    def test_runner_retry_budgets_validated(self):
        from repro.engine.parallel import ParallelRunner

        with pytest.raises(ValueError):
            ParallelRunner(model=object(), workers=1, task_retries=-1)
        with pytest.raises(ValueError):
            ParallelRunner(model=object(), workers=1, pool_restarts=-1)

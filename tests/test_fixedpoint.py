"""Fixed-point format and arithmetic tests."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fixedpoint import FixedPoint, Overflow, QFormat, Rounding


class TestQFormat:
    def test_width(self):
        assert QFormat(4, 4).width == 9  # sign + 4 + 4
        assert QFormat(4, 4, signed=False).width == 8

    def test_ranges(self):
        q = QFormat(3, 4)
        assert q.max_value == 7.9375
        assert q.min_value == -8.0
        assert q.ulp == 0.0625

    def test_negative_int_bits(self):
        # Purely fractional format: MSB weight 2^-2.
        q = QFormat(-1, 6, signed=False)
        assert q.width == 5
        assert q.max_value < 0.5

    def test_negative_frac_bits(self):
        # Coarse grid: LSB weight 4.
        q = QFormat(6, -2, signed=False)
        assert q.ulp == 4.0

    def test_empty_format_rejected(self):
        with pytest.raises(ValueError):
            QFormat(0, 0, signed=False)

    def test_str(self):
        assert str(QFormat(4, 4)) == "Q4.4"
        assert str(QFormat(4, 4, signed=False)) == "UQ4.4"


class TestQuantization:
    def test_exact_value(self):
        q = QFormat(4, 4)
        assert FixedPoint.from_float(q, 1.25).to_float() == 1.25

    def test_rne(self):
        q = QFormat(4, 1)
        assert FixedPoint.from_float(q, 1.25).to_float() == 1.0  # tie to even
        assert FixedPoint.from_float(q, 1.75).to_float() == 2.0

    def test_truncate_is_floor(self):
        q = QFormat(4, 0)
        assert FixedPoint.from_float(q, -1.5, Rounding.TRUNCATE).to_float() == -2.0
        assert FixedPoint.from_float(q, 1.5, Rounding.TRUNCATE).to_float() == 1.0

    def test_toward_zero(self):
        q = QFormat(4, 0)
        assert FixedPoint.from_float(q, -1.7, Rounding.TOWARD_ZERO).to_float() == -1.0
        assert FixedPoint.from_float(q, 1.7, Rounding.TOWARD_ZERO).to_float() == 1.0

    def test_saturation(self):
        q = QFormat(3, 4)
        assert FixedPoint.from_float(q, 100.0).to_float() == q.max_value
        assert FixedPoint.from_float(q, -100.0).to_float() == q.min_value

    def test_wrap(self):
        q = QFormat(3, 0)  # range -8..7
        fp = FixedPoint.from_float(q, 9.0, overflow=Overflow.WRAP)
        assert fp.to_float() == -7.0

    def test_error_policy_raises(self):
        q = QFormat(3, 0)
        with pytest.raises(OverflowError):
            FixedPoint(q, 100)

    def test_nonbinary_fraction(self):
        q = QFormat(2, 8)
        fp = FixedPoint.from_fraction(q, Fraction(1, 3))
        assert abs(fp.to_float() - 1 / 3) <= q.ulp / 2

    @given(st.floats(min_value=-7.9, max_value=7.9))
    def test_quantization_error_bound(self, x):
        q = QFormat(3, 6)
        fp = FixedPoint.from_float(q, x)
        assert abs(fp.to_float() - x) <= q.ulp / 2


class TestArithmetic:
    def test_add_widens(self):
        q = QFormat(3, 4)
        a = FixedPoint.from_float(q, 7.9375)
        s = a + a
        assert s.to_float() == 15.875  # no overflow: result format is wider
        assert s.fmt.int_bits == 4

    def test_mul_exact(self):
        q = QFormat(3, 4)
        a = FixedPoint.from_float(q, 1.0625)
        b = FixedPoint.from_float(q, 2.125)
        assert (a * b).to_fraction() == a.to_fraction() * b.to_fraction()

    @given(
        st.integers(min_value=-128, max_value=127),
        st.integers(min_value=-128, max_value=127),
    )
    def test_addition_is_exact(self, ra, rb):
        q = QFormat(4, 3)
        a, b = FixedPoint(q, ra), FixedPoint(q, rb)
        assert (a + b).to_fraction() == a.to_fraction() + b.to_fraction()

    @given(
        st.integers(min_value=-128, max_value=127),
        st.integers(min_value=-128, max_value=127),
    )
    def test_multiplication_is_exact(self, ra, rb):
        q = QFormat(4, 3)
        a, b = FixedPoint(q, ra), FixedPoint(q, rb)
        assert (a * b).to_fraction() == a.to_fraction() * b.to_fraction()

    def test_negate(self):
        q = QFormat(3, 4)
        a = FixedPoint.from_float(q, 1.5)
        assert (-a).to_float() == -1.5

    def test_resize_rounds(self):
        wide = QFormat(4, 8)
        narrow = QFormat(4, 2)
        a = FixedPoint.from_float(wide, 1.3125)
        assert a.resize(narrow).to_float() == 1.25

    def test_resize_saturates(self):
        wide = QFormat(8, 2)
        narrow = QFormat(2, 2)
        a = FixedPoint.from_float(wide, 100.0)
        assert a.resize(narrow).to_float() == narrow.max_value

    def test_comparison_across_formats(self):
        a = FixedPoint.from_float(QFormat(4, 2), 1.25)
        b = FixedPoint.from_float(QFormat(4, 6), 1.25)
        assert a == b
        assert FixedPoint.from_float(QFormat(4, 2), 1.5) > b

    def test_pattern_is_twos_complement(self):
        q = QFormat(3, 4)
        a = FixedPoint.from_float(q, -0.0625)  # raw -1
        assert a.pattern == (1 << q.width) - 1

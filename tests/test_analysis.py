"""Analysis-package tests: the quantitative claims of Figs. 6, 7, 9, 10."""

from fractions import Fraction

import pytest

from repro.analysis import (
    accuracy_vs_bitstring,
    accuracy_vs_magnitude,
    decimal_accuracy_fixed,
    decimal_accuracy_float,
    decimal_accuracy_posit,
    dynamic_range_decades,
    float_ring,
    format_summary,
    monotone_runs,
    posit_ring,
    trap_fraction,
    two_regime_fraction,
)
from repro.fixedpoint import QFormat
from repro.floats import BFLOAT16, BINARY16, SoftFloat
from repro.posit import POSIT16, POSIT8, Posit


class TestFloatRing:
    """Fig. 6."""

    @pytest.fixture(scope="class")
    def ring(self):
        return float_ring(BINARY16)

    def test_trap_fraction_about_6_percent(self, ring):
        # "calculations run orders of magnitude slower for about 6 percent
        # of the possible values"
        assert 0.055 <= trap_fraction(ring) <= 0.07

    def test_two_monotone_runs(self, ring):
        # "floats increase monotonically on the right half of the ring but
        # reverse direction for the negative values"
        assert monotone_runs(ring) == 2

    def test_kind_census(self, ring):
        kinds = {}
        for e in ring:
            kinds[e.kind] = kinds.get(e.kind, 0) + 1
        assert kinds["zero"] == 2  # +0 and -0
        assert kinds["inf"] == 2
        assert kinds["nan"] == 2 * (1 << BINARY16.frac_bits) - 2
        assert kinds["subnormal"] == 2 * ((1 << BINARY16.frac_bits) - 1)


class TestPositRing:
    """Fig. 7."""

    @pytest.fixture(scope="class")
    def ring(self):
        return posit_ring(POSIT16)

    def test_exactly_two_exceptions(self, ring):
        specials = [e for e in ring if e.kind in ("zero", "nar")]
        assert len(specials) == 2
        # "both exceptions have all 0 bits after the first bit"
        for e in specials:
            assert e.pattern & (POSIT16.pattern_nar - 1) == 0

    def test_single_monotone_run(self, ring):
        assert monotone_runs(ring) == 1

    def test_trap_fraction_negligible(self, ring):
        assert trap_fraction(ring) == 1 / (1 << 16)

    def test_two_regime_arcs_cover_half(self):
        # The shaded fast-decode arcs of Fig. 7 (regimes '01' and '10')
        # cover half of all patterns.
        assert abs(two_regime_fraction(POSIT8) - 0.5) < 0.02
        assert abs(two_regime_fraction(POSIT16) - 0.5) < 0.001

    def test_order_is_integer_order(self, ring):
        real = sorted((e for e in ring if e.value is not None), key=lambda e: e.ring_position)
        values = [e.value for e in real]
        assert values == sorted(values)


class TestDecimalAccuracy:
    """Fig. 9."""

    def test_posit_peak_at_unit_magnitude(self):
        near_one = decimal_accuracy_posit(POSIT16, Fraction(10007, 9973))
        far = decimal_accuracy_posit(POSIT16, Fraction(10007 * 10**6, 9973))
        assert near_one > far

    def test_posit_beats_float16_near_one(self):
        # "For the most common values in the range of about 0.01 to 100,
        # posits have higher accuracy than IEEE floats and bfloats"
        for mag in (Fraction(1), Fraction(10), Fraction(1, 10)):
            x = mag * Fraction(10007, 9973)
            assert decimal_accuracy_posit(POSIT16, x) > decimal_accuracy_float(BFLOAT16, x)
            assert decimal_accuracy_posit(POSIT16, x) >= decimal_accuracy_float(BINARY16, x) - 0.05

    def test_float_beats_posit_far_out(self):
        # "but less accuracy outside this dynamic range"
        x = Fraction(10007, 9973) * Fraction(10) ** 4
        assert decimal_accuracy_float(BINARY16, x) > decimal_accuracy_posit(POSIT16, x)

    def test_float_zero_outside_range(self):
        assert decimal_accuracy_float(BINARY16, Fraction(10) ** 6) == 0.0
        assert decimal_accuracy_float(BINARY16, Fraction(1, 10**9)) == 0.0

    def test_fixed_point_ramp(self):
        q = QFormat(7, 8)
        accs = [
            decimal_accuracy_fixed(q, Fraction(10007, 9973) * Fraction(10) ** k)
            for k in (-3, -1, 0, 1)
        ]
        assert accs == sorted(accs)  # triangular ramp upward
        assert decimal_accuracy_fixed(q, Fraction(1000)) == 0.0  # out of range

    def test_curve_shapes(self):
        f16 = accuracy_vs_magnitude(
            lambda x: decimal_accuracy_float(BINARY16, x), -8, 8, 17
        )
        p16 = accuracy_vs_magnitude(
            lambda x: decimal_accuracy_posit(POSIT16, x), -8, 8, 17
        )
        mid = 8  # index of magnitude 1
        # Posit triangle peaks at the center and dominates there.
        assert p16[mid][1] == max(v for _, v in p16)
        assert p16[mid][1] > f16[mid][1]
        # Roughly symmetric posit accuracy (isosceles).
        for k in range(1, 6):
            assert abs(p16[mid - k][1] - p16[mid + k][1]) < 0.8


class TestBitstringAccuracy:
    """Fig. 10."""

    def test_posit_vs_float_bitstring_curves(self):
        def posit_value(pat):
            p = Posit(POSIT16, pat)
            return None if p.is_nar() else p.to_fraction()

        def float_value(pat):
            sf = SoftFloat(BINARY16, pat)
            return sf.to_fraction() if sf.is_finite() else None

        pc = dict(accuracy_vs_bitstring(posit_value, range(1, 0x8000)))
        fc = dict(accuracy_vs_bitstring(float_value, range(1, 0x7C00)))
        # Mid-scale posits (patterns near 0x4000 = 1.0) reach the format's
        # best accuracy, higher than the float's flat level.
        assert pc[0x4000] > fc[0x3C00]

    def test_dynamic_ranges_match_paper(self):
        # Fig. 10's quoted ranges: posit16 ~17 decades, binary16 normals 9,
        # bfloat16 ~76, fixed < 5.
        assert 16.5 <= dynamic_range_decades(POSIT16) <= 17.0
        assert round(dynamic_range_decades(BINARY16)) == 9
        assert 75 <= dynamic_range_decades(BFLOAT16) <= 78
        assert dynamic_range_decades(QFormat(7, 8)) < 5


class TestFormatSummary:
    def test_posit_summary(self):
        s = format_summary(POSIT16)
        assert s.exception_patterns == 2
        assert s.width == 16

    def test_float_summary(self):
        s = format_summary(BINARY16)
        assert s.exception_patterns == 2 * (1 << 11)
        assert 3.0 < s.max_decimal_accuracy < 3.6

    def test_fixed_summary(self):
        s = format_summary(QFormat(7, 8))
        assert s.exception_patterns == 0


class TestInformationPerBit:
    """Section V: 'posits often maximize information-per-bit in the Shannon sense'."""

    @pytest.fixture(scope="class")
    def samples(self):
        import numpy as np

        rng = np.random.default_rng(0)
        return rng.normal(0, 1, size=2500)

    def test_posit_wins_on_unit_normal(self, samples):
        from repro.analysis import format_information_comparison

        res = format_information_comparison(
            samples,
            {
                "posit16": POSIT16,
                "binary16": BINARY16,
                "bfloat16": BFLOAT16,
                "fixed": QFormat(7, 8),
            },
        )
        assert res["posit16"] == max(res.values())
        assert res["posit16"] > res["bfloat16"]

    def test_entropy_positive_and_bounded(self, samples):
        from repro.analysis import code_entropy

        h = code_entropy(POSIT16, samples)
        assert 0 < h <= 16

    def test_constant_samples_zero_entropy(self):
        import numpy as np

        from repro.analysis import code_entropy

        assert code_entropy(POSIT16, np.full(100, 1.5)) == 0.0

    def test_wide_distribution_favors_wide_formats(self):
        import numpy as np

        from repro.analysis import information_per_bit

        rng = np.random.default_rng(1)
        # Log-uniform over 40 decades: far beyond posit16/binary16 range.
        wide = 10.0 ** rng.uniform(-20, 20, size=2000)
        assert information_per_bit(BFLOAT16, wide) > information_per_bit(BINARY16, wide)

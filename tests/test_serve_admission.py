"""Unit tests for the serving layer's protocol and admission control."""

import numpy as np
import pytest

pytestmark = pytest.mark.timeout(60)

from repro.engine.observe import Metrics
from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.protocol import (
    ProtocolError,
    Rejected,
    decode_line,
    encode_line,
    error_response,
    ok_response,
    parse_request,
)


# ----------------------------------------------------------------------
# Protocol parsing
# ----------------------------------------------------------------------
class TestParseRequest:
    def test_posit_matmul_roundtrip(self):
        req = parse_request(
            {
                "id": "r1",
                "workload": "posit_matmul",
                "bits": 8,
                "es": 2,
                "a": [[1.0, 2.0]],
                "b": [[3.0], [4.0]],
            }
        )
        assert req.batch_key() == ("posit_matmul", 8, 2)
        assert req.rows == 1
        assert req.tenant == "default"

    def test_nn_predict_single_sample_gets_batch_dim(self):
        x = np.zeros((1, 31, 20))
        req = parse_request(
            {"id": "r", "workload": "nn_predict", "model": "kws1", "x": x.tolist()}
        )
        assert req.x.shape == (1, 1, 31, 20)
        assert req.rows == 1
        assert req.batch_key() == ("nn_predict", "kws1", 8, 2)

    def test_nn_predict_multi_sample(self):
        x = np.zeros((3, 1, 31, 20))
        req = parse_request(
            {"id": "r", "workload": "nn_predict", "model": "kws1", "x": x.tolist()}
        )
        assert req.rows == 3

    def test_approx_matmul_requires_int8_values(self):
        base = {"id": "r", "workload": "approx_matmul", "b": [[1], [1]]}
        parse_request({**base, "a": [[127, -128]]})
        with pytest.raises(ProtocolError, match="int8"):
            parse_request({**base, "a": [[1.5, 2.0]]})
        with pytest.raises(ProtocolError, match="int8"):
            parse_request({**base, "a": [[400, 0]]})

    @pytest.mark.parametrize(
        "mutation, match",
        [
            ({"id": ""}, "id"),
            ({"workload": "nope"}, "unknown workload"),
            ({"bits": 99}, "unsupported format"),
            ({"bits": "x"}, "integers"),
            ({"a": [[1.0, np.inf]]}, "non-finite"),
            ({"a": [[]]}, "empty"),
            ({"b": [[1.0, 2.0]]}, "shape mismatch"),
            ({"deadline_ms": -5}, "positive"),
            ({"deadline_ms": "soon"}, "number"),
        ],
    )
    def test_validation_errors(self, mutation, match):
        good = {
            "id": "r1",
            "workload": "posit_matmul",
            "a": [[1.0, 2.0]],
            "b": [[3.0], [4.0]],
        }
        with pytest.raises(ProtocolError, match=match):
            parse_request({**good, **mutation})

    def test_oversized_payload_rejected(self):
        with pytest.raises(ProtocolError, match="limit") as exc:
            parse_request(
                {
                    "id": "r",
                    "workload": "posit_matmul",
                    "a": np.zeros((2048, 1024)).tolist(),
                    "b": np.zeros((1024, 1)).tolist(),
                }
            )
        assert exc.value.code == "too_large"

    def test_line_codec_roundtrip(self):
        obj = ok_response("r1", np.array([[1.5]]), ms=2.0, batch_rows=4)
        again = decode_line(encode_line(obj))
        assert again == {
            "id": "r1",
            "ok": True,
            "result": [[1.5]],
            "ms": 2.0,
            "batch_rows": 4,
        }
        err = error_response("r2", "rejected", "full", retry_after_ms=50.0)
        assert decode_line(encode_line(err))["retry_after_ms"] == 50.0
        with pytest.raises(ProtocolError):
            decode_line(b"{nope")


# ----------------------------------------------------------------------
# Token bucket
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        t0 = 100.0
        assert bucket.take(t0) == 0.0
        assert bucket.take(t0) == 0.0
        wait = bucket.take(t0)
        assert wait == pytest.approx(0.1)
        # After the hinted wait (plus float-rounding slack), a token is
        # available again.
        assert bucket.take(t0 + wait + 1e-9) == 0.0

    def test_capacity_is_capped_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=1.0)
        bucket.take(0.0)
        # A long idle period still accrues only ``burst`` tokens.
        assert bucket.take(1e6) == 0.0
        assert bucket.take(1e6) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


# ----------------------------------------------------------------------
# Admission controller
# ----------------------------------------------------------------------
class TestAdmission:
    def test_queue_full_backpressure(self):
        metrics = Metrics()
        adm = AdmissionController(queue_limit=2, metrics=metrics)
        adm.admit("t")
        adm.admit("t")
        with pytest.raises(Rejected) as exc:
            adm.admit("t")
        assert exc.value.reason == "queue_full"
        assert exc.value.retry_after_s > 0
        adm.release()
        adm.admit("t")  # a slot freed up
        assert metrics.counters["serve.rejected.queue_full"] == 1
        assert metrics.counters["serve.admitted"] == 3
        assert metrics.gauges["serve.queue_depth"] == 2

    def test_tenant_quota_isolated_per_tenant(self):
        now = 50.0
        adm = AdmissionController(
            queue_limit=100, tenant_rate=5.0, tenant_burst=1.0, metrics=Metrics()
        )
        adm.admit("a", now=now)
        with pytest.raises(Rejected) as exc:
            adm.admit("a", now=now)
        assert exc.value.reason == "quota"
        assert exc.value.retry_after_s == pytest.approx(0.2)
        # Tenant b has its own bucket.
        adm.admit("b", now=now)

    def test_release_floors_at_zero(self):
        adm = AdmissionController(queue_limit=1, metrics=Metrics())
        adm.release()
        assert adm.inflight == 0

    def test_stats_shape(self):
        metrics = Metrics()
        adm = AdmissionController(queue_limit=3, metrics=metrics)
        adm.admit("t")
        stats = adm.stats()
        assert stats == {
            "inflight": 1,
            "admitted": 1,
            "rejected": 0,
            "queue_limit": 3,
        }
        assert metrics.counters["serve.tenant.t.requests"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(queue_limit=0)

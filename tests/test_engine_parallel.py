"""Parallel sharded execution: bit-identity, crash/timeout fallback, cache.

The invariant under test is absolute: sharding across processes must never
change a single bit of the output.  Chunk boundaries are batch-aligned, so
each worker runs exactly the micro-batches the single-process
:class:`BatchedRunner` would, and the merged result is ``array_equal`` —
not merely ``allclose`` — with the in-process path.  Robustness tests then
kill or stall workers and require the runner to degrade gracefully to
in-process execution with identical numerics.

All worker pools use the ``spawn`` context: workers import the repo fresh
and share kernel tables only through the registry's ``.npz`` disk cache,
which is what the table-sharing test asserts (``disk_loads`` > 0 instead
of worker-side rebuilds).
"""

import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.engine import BatchedRunner, ParallelRunner, KernelRegistry
from repro.engine.kernels import lut_matmul, shard_rows
from repro.engine.parallel import ModelHandle, PositNetworkSpec, shard_lut_matmul
from repro.nn.posit_inference import PositQuantizedNetwork
from repro.nn.zoo import kws_cnn1
from repro.posit import POSIT8


def _in_worker() -> bool:
    return multiprocessing.parent_process() is not None


class Posit8PairwiseModel:
    """Maps (N, 2) posit8 code pairs to their (add, mul) result codes.

    Picklable by construction: workers rebuild the backend (and its
    tables) from the registry on first use instead of shipping it.
    """

    def __init__(self):
        self._backend = None

    def forward(self, pairs):
        if self._backend is None:
            from repro.engine.posit_backend import PositBackend

            self._backend = PositBackend(POSIT8, strategy="pairwise")
        a, b = pairs[:, 0], pairs[:, 1]
        return np.stack(
            [self._backend.add(a, b), self._backend.mul(a, b)], axis=1
        )

    def __getstate__(self):
        return {}

    def __setstate__(self, state):
        self._backend = None


class TinyModel:
    """Deterministic picklable model: ``forward(x) = x @ W``."""

    def __init__(self, seed: int = 0):
        rng = np.random.default_rng(seed)
        self.w = rng.normal(size=(6, 3))

    def forward(self, x):
        return np.asarray(x) @ self.w


class CrashInWorker(TinyModel):
    """Dies hard inside worker processes, works fine in the parent."""

    def forward(self, x):
        if _in_worker():
            os._exit(13)
        return super().forward(x)


class StallInWorker(TinyModel):
    """Sleeps past any reasonable task timeout inside worker processes."""

    def forward(self, x):
        if _in_worker():
            time.sleep(3.0)
        return super().forward(x)


# ----------------------------------------------------------------------
# Deterministic sharding primitives
# ----------------------------------------------------------------------
class TestShardRows:
    def test_partition_covers_exactly(self):
        for total in (1, 2, 7, 64, 100):
            for shards in (1, 2, 3, 8, 200):
                spans = shard_rows(total, shards)
                assert spans[0][0] == 0 and spans[-1][1] == total
                for (a, b), (c, d) in zip(spans, spans[1:]):
                    assert b == c and a < b
                assert len(spans) == min(shards, total)

    def test_empty_and_invalid(self):
        assert shard_rows(0, 4) == []
        with pytest.raises(ValueError):
            shard_rows(-1, 2)
        with pytest.raises(ValueError):
            shard_rows(4, 0)


class TestSpans:
    def test_spans_are_batch_aligned(self):
        runner = ParallelRunner(TinyModel(), workers=3, batch_size=4)
        for total in (1, 4, 10, 37, 64):
            spans = runner._spans(total)
            assert spans[0][0] == 0 and spans[-1][1] == total
            for start, stop in spans[:-1]:
                assert start % 4 == 0 and stop % 4 == 0
        runner.close()

    def test_chunk_size_rounds_up_to_batch(self):
        runner = ParallelRunner(TinyModel(), workers=2, batch_size=4, chunk_size=5)
        spans = runner._spans(32)
        # chunk_size=5 rounds up to 8 (two batches per chunk)
        assert spans == [(0, 8), (8, 16), (16, 24), (24, 32)]
        runner.close()

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            ParallelRunner(TinyModel(), batch_size=0)
        with pytest.raises(ValueError):
            ParallelRunner(TinyModel(), chunk_size=0)
        with pytest.raises(ValueError):
            ParallelRunner()


# ----------------------------------------------------------------------
# Bit-identity with the single-process path
# ----------------------------------------------------------------------
class TestBitIdentity:
    def test_tiny_model_parallel_equals_single(self):
        model = TinyModel(seed=1)
        rng = np.random.default_rng(2)
        x = rng.normal(size=(26, 6))
        y_single = BatchedRunner(model, batch_size=4).run(x)
        with ParallelRunner(model, workers=2, batch_size=4) as runner:
            y_par = runner.run(x)
            stats = runner.stats()
        assert np.array_equal(y_single, y_par)
        assert stats["items"] == 26
        assert stats["fallbacks"] == 0

    def test_posit_network_parallel_equals_single(self, tmp_path):
        net = kws_cnn1(seed=0)
        qnet = PositQuantizedNetwork(net, POSIT8)
        rng = np.random.default_rng(3)
        x = rng.normal(size=(8, 1, 31, 20))
        y_single = BatchedRunner(qnet, batch_size=4).run(x)
        with ParallelRunner(
            qnet, workers=2, batch_size=4, cache_dir=tmp_path
        ) as runner:
            y_par = runner.run(x)
        assert np.array_equal(y_single, y_par)

    def test_exhaustive_posit8_parity_suite(self, tmp_path):
        """Every 8-bit (a, b) code pair through the parallel path.

        The acceptance bar for sharded execution: all 65536 posit8 operand
        pairs produce bit-identical add/mul codes whether executed in one
        process or sharded across spawn workers.
        """
        a, b = map(np.ravel, np.meshgrid(np.arange(256), np.arange(256)))
        pairs = np.stack([a, b], axis=1)
        model = Posit8PairwiseModel()
        y_single = BatchedRunner(model, batch_size=8192).run(pairs)
        with ParallelRunner(
            model, workers=2, batch_size=8192, cache_dir=tmp_path
        ) as runner:
            y_par = runner.run(pairs)
            stats = runner.stats()
        assert stats["fallbacks"] == 0
        assert np.array_equal(y_single, y_par)
        # And both agree with the bit-exact scalar model on a spot lattice.
        from repro.posit import Posit

        for i in range(0, 65536, 4111):
            pa, pb = Posit(POSIT8, int(a[i])), Posit(POSIT8, int(b[i]))
            assert y_par[i, 0] == (pa + pb).pattern
            assert y_par[i, 1] == (pa * pb).pattern

    def test_workers_one_stays_in_process(self):
        model = TinyModel(seed=4)
        rng = np.random.default_rng(5)
        x = rng.normal(size=(9, 6))
        runner = ParallelRunner(model, workers=1, batch_size=2)
        assert np.array_equal(runner.run(x), BatchedRunner(model, batch_size=2).run(x))
        assert runner.stats()["per_worker"] == []
        runner.close()

    def test_empty_input(self):
        with ParallelRunner(TinyModel(), workers=2, batch_size=4) as runner:
            out = runner.run(np.empty((0, 6)))
        assert out.shape == (0, 3)

    def test_batched_runner_workers_knob(self):
        model = TinyModel(seed=6)
        rng = np.random.default_rng(7)
        x = rng.normal(size=(17, 6))
        plain = BatchedRunner(model, batch_size=4)
        with BatchedRunner(model, batch_size=4, workers=2) as sharded:
            y = sharded.run(x)
            stats = sharded.stats()
        assert np.array_equal(plain.run(x), y)
        assert stats["workers"] == 2 and "per_worker" in stats

    def test_batched_runner_rejects_orphan_parallel_opts(self):
        with pytest.raises(TypeError):
            BatchedRunner(TinyModel(), batch_size=4, mp_context="spawn")


# ----------------------------------------------------------------------
# Robustness: crashes and timeouts degrade to in-process execution
# ----------------------------------------------------------------------
class TestFallback:
    def test_worker_crash_falls_back_in_process(self):
        model = CrashInWorker(seed=8)
        rng = np.random.default_rng(9)
        x = rng.normal(size=(12, 6))
        with ParallelRunner(model, workers=2, batch_size=4) as runner:
            y = runner.run(x)
            stats = runner.stats()
        assert np.array_equal(y, TinyModel(seed=8).forward(x))
        assert stats["fallbacks"] >= 1

    def test_broken_pool_stays_in_process_afterwards(self):
        model = CrashInWorker(seed=10)
        rng = np.random.default_rng(11)
        x = rng.normal(size=(8, 6))
        with ParallelRunner(model, workers=2, batch_size=4) as runner:
            runner.run(x)  # breaks the pool
            y = runner.run(x)  # second call must go straight in-process
        assert np.array_equal(y, TinyModel(seed=10).forward(x))

    def test_crash_raises_when_fallback_disabled(self):
        model = CrashInWorker(seed=12)
        rng = np.random.default_rng(13)
        x = rng.normal(size=(8, 6))
        with ParallelRunner(
            model, workers=2, batch_size=4, fallback=False
        ) as runner:
            with pytest.raises(Exception):
                runner.run(x)

    def test_task_timeout_falls_back_in_process(self):
        model = StallInWorker(seed=14)
        rng = np.random.default_rng(15)
        x = rng.normal(size=(8, 6))
        with ParallelRunner(
            model, workers=2, batch_size=4, task_timeout=0.2
        ) as runner:
            y = runner.run(x)
            stats = runner.stats()
        assert np.array_equal(y, TinyModel(seed=14).forward(x))
        assert stats["fallbacks"] >= 1


# ----------------------------------------------------------------------
# Registry table sharing across spawn workers
# ----------------------------------------------------------------------
class TestTableSharing:
    def test_workers_load_tables_from_disk_cache(self, tmp_path):
        # A private registry keeps this test independent of global state:
        # the parent builds the posit8 codec + pairwise tables, flushes
        # them to the cache dir, and the spawned worker must *load* them
        # (disk_loads > 0 in its registry stats) instead of rebuilding.
        reg = KernelRegistry(cache_dir=tmp_path)
        net = kws_cnn1(seed=1)
        from repro.engine.posit_backend import PositBackend

        engine = PositBackend(POSIT8, registry=reg)
        qnet = PositQuantizedNetwork(net, POSIT8, engine=engine)
        rng = np.random.default_rng(16)
        x = rng.normal(size=(8, 1, 31, 20))
        with ParallelRunner(
            qnet, workers=2, batch_size=4, cache_dir=tmp_path, registry=reg
        ) as runner:
            y = runner.run(x)
            stats = runner.stats()
        assert list(tmp_path.glob("*.npz")), "parent did not flush tables"
        assert stats["fallbacks"] == 0, "parallel path did not run"
        assert stats["table_disk_loads"] >= 1, "workers rebuilt tables"
        assert np.array_equal(y, BatchedRunner(qnet, batch_size=4).run(x))

    def test_flush_to_disk_writes_resident_tables(self, tmp_path):
        reg = KernelRegistry()
        reg.get(("a",), lambda: {"t": np.arange(4)})
        reg.get(("b",), lambda: {"t": np.arange(8)})
        assert reg.flush_to_disk(tmp_path) == 2
        assert len(list(tmp_path.glob("*.npz"))) == 2
        # Idempotent: existing entries are not rewritten.
        assert reg.flush_to_disk(tmp_path) == 0

    def test_flush_without_cache_dir_raises(self):
        reg = KernelRegistry()
        with pytest.raises(ValueError):
            reg.flush_to_disk()


# ----------------------------------------------------------------------
# Sharded LUT matmul
# ----------------------------------------------------------------------
class TestShardedLutMatmul:
    def test_bit_identical_to_in_process_kernel(self):
        n = 16
        idx = np.arange(n)
        lut = np.multiply.outer(idx, idx).astype(np.int64)
        rng = np.random.default_rng(17)
        a = rng.integers(0, n, size=(11, 9))
        b = rng.integers(0, n, size=(9, 5))
        want = lut_matmul(lut, a, b)
        got = shard_lut_matmul(lut, a, b, workers=2, chunk=3)
        assert np.array_equal(want, got)
        assert np.array_equal(want, a @ b)

    def test_single_worker_short_circuits(self):
        lut = np.arange(16).reshape(4, 4).astype(np.int64)
        a = np.ones((3, 2), dtype=np.int64)
        b = np.ones((2, 2), dtype=np.int64)
        assert np.array_equal(
            shard_lut_matmul(lut, a, b, workers=1), lut_matmul(lut, a, b)
        )

    def test_approx_matmul_workers_knob(self):
        from repro.approx import TruncatedMultiplier
        from repro.approx.simulate import approx_matmul, signed_lut

        lut = signed_lut(TruncatedMultiplier(cut=4))
        rng = np.random.default_rng(18)
        a = rng.integers(-127, 128, size=(10, 7))
        b = rng.integers(-127, 128, size=(7, 4))
        assert np.array_equal(
            approx_matmul(a, b, lut), approx_matmul(a, b, lut, workers=2)
        )


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
class TestParallelStats:
    def test_stats_shape_and_worker_throughput(self):
        model = TinyModel(seed=19)
        rng = np.random.default_rng(20)
        x = rng.normal(size=(24, 6))
        with ParallelRunner(model, workers=2, batch_size=4) as runner:
            runner.run(x)
            stats = runner.stats()
        assert stats["items"] == 24 and stats["batches"] == 6
        assert stats["wall_s"] > 0 and stats["items_per_s"] > 0
        assert stats["fallbacks"] == 0
        assert stats["per_worker"], "no worker reported stats"
        total_worker_items = sum(w["items"] for w in stats["per_worker"])
        assert total_worker_items == 24
        for w in stats["per_worker"]:
            assert w["pid"] != os.getpid()
            assert w["items_per_s"] > 0

    def test_worker_op_counters_merged_into_parent(self, tmp_path):
        net = kws_cnn1(seed=2)
        qnet = PositQuantizedNetwork(net, POSIT8)
        rng = np.random.default_rng(21)
        x = rng.normal(size=(8, 1, 31, 20))
        with ParallelRunner(
            qnet, workers=2, batch_size=4, cache_dir=tmp_path
        ) as runner:
            runner.run(x)
            stats = runner.stats()
        assert stats["fallbacks"] == 0
        assert stats["ops"]["quantize"]["elements"] > 0
        assert stats["ops"]["matmul[values]"]["calls"] > 0

    def test_reset_clears_everything(self):
        model = TinyModel(seed=22)
        rng = np.random.default_rng(23)
        with ParallelRunner(model, workers=2, batch_size=4) as runner:
            runner.run(rng.normal(size=(8, 6)))
            runner.reset()
            stats = runner.stats()
        assert stats["items"] == 0 and stats["per_worker"] == []
        assert stats["ops"] == {}

    def test_factory_spec_roundtrip(self):
        net = kws_cnn1(seed=3)
        spec = PositNetworkSpec(net, POSIT8)
        rebuilt = spec()
        assert isinstance(rebuilt, PositQuantizedNetwork)
        handle = ModelHandle(TinyModel(seed=24))
        assert handle() is handle.model


# ----------------------------------------------------------------------
# Lifecycle: close/restart must be leak-free and idempotent
# ----------------------------------------------------------------------
class TestRunnerLifecycle:
    def test_ten_runners_open_close_leak_no_children(self):
        """Serving churn: repeatedly built-and-closed pools must join every
        worker — a leaked spawn process per server restart is a slow OOM."""
        x = np.arange(24, dtype=np.float64).reshape(4, 6)
        for i in range(10):
            runner = ParallelRunner(TinyModel(), workers=2, batch_size=2)
            runner.run(x)
            runner.close()
        assert multiprocessing.active_children() == []

    def test_close_is_idempotent(self):
        runner = ParallelRunner(TinyModel(), workers=2, batch_size=2)
        runner.run(np.zeros((2, 6)))
        runner.close()
        runner.close()
        runner.close()
        assert multiprocessing.active_children() == []

    def test_reopen_after_close_is_bit_identical(self):
        """A closed runner must rebuild its pool (and owned cache dir) on
        the next run, and the reopened pool's output must not drift."""
        x = np.arange(36, dtype=np.float64).reshape(6, 6)
        runner = ParallelRunner(TinyModel(), workers=2, batch_size=2)
        first = runner.run(x)
        runner.close()
        second = runner.run(x)  # transparently reopens
        runner.close()
        assert first.tobytes() == second.tobytes()
        assert multiprocessing.active_children() == []

    def test_restart_resets_crash_budget(self):
        """After chaos breaks a pool into in-process fallback, restart()
        must hand back a working pool with a fresh crash budget."""
        x = np.zeros((4, 6))
        runner = ParallelRunner(
            CrashInWorker(), workers=2, batch_size=2,
            task_retries=0, pool_restarts=0,
        )
        runner.run(x)  # crash -> broken -> in-process fallback
        assert runner._broken
        runner.restart()
        assert not runner._broken
        # The model still crashes workers, but the budget is fresh: the
        # runner degrades again instead of raising.
        out = runner.run(x)
        assert out.shape == (4, 3)
        runner.close()
        assert multiprocessing.active_children() == []

    def test_batched_runner_close_and_restart_delegate(self):
        runner = BatchedRunner(TinyModel(), batch_size=2, workers=2)
        x = np.ones((4, 6))
        first = runner.run(x)
        runner.close()
        runner.restart()
        second = runner.run(x)
        runner.close()
        assert first.tobytes() == second.tobytes()
        assert multiprocessing.active_children() == []


class TestFusedSharedMemoryLifecycle:
    """The fused transport's shared-memory segments must never outlive a
    run: the parent both closes and *unlinks* everything it creates, even
    across crashes, timeouts, and repeated runner churn."""

    @staticmethod
    def _plan():
        from repro.engine.fused import FusedPlan

        return FusedPlan.compile(kws_cnn1(seed=0), POSIT8)

    def test_ten_fused_cycles_leak_nothing(self):
        """Serving churn with the shared-memory transport: ten runners
        opened, run, and closed must leave no spawn children and no
        tracked segments."""
        plan = self._plan()
        x = np.random.default_rng(0).normal(size=(20, 1, 31, 20))
        ref = None
        for i in range(10):
            runner = ParallelRunner(plan, workers=2, batch_size=4)
            out = runner.run(x)
            assert runner._shm_segments == [], f"cycle {i} leaked a segment"
            runner.close()
            if ref is None:
                ref = out
            assert np.array_equal(out, ref), f"cycle {i} drifted"
        assert multiprocessing.active_children() == []

    def test_segments_are_unlinked_after_run(self):
        """The segment *names* must be gone from the OS after a run — a
        re-attach by name has to fail, or /dev/shm fills up over time."""
        from multiprocessing import shared_memory

        plan = self._plan()
        runner = ParallelRunner(plan, workers=2, batch_size=4)
        created = []
        original = runner._create_segment

        def spying_create(size):
            seg = original(size)
            created.append(seg.name)
            return seg

        runner._create_segment = spying_create
        runner.run(np.random.default_rng(1).normal(size=(12, 1, 31, 20)))
        runner.close()
        assert len(created) == 2  # codes + out
        for name in created:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        assert multiprocessing.active_children() == []

    def test_close_sweeps_segments_left_by_an_interrupted_run(self):
        """A segment created outside a completed run (simulating an
        interrupt between creation and the finally) is released by
        close() — and close() stays idempotent."""
        from multiprocessing import shared_memory

        plan = self._plan()
        runner = ParallelRunner(plan, workers=2, batch_size=4)
        seg = runner._create_segment(4096)
        name = seg.name
        assert runner._shm_segments  # tracked
        runner.close()
        runner.close()
        assert runner._shm_segments == []
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_fused_timeout_falls_back_bit_identically(self):
        """A stalled worker (chaos slowdown past the task timeout) must
        not lose the span: the parent recomputes it into the shared
        output buffer and the merged result is exact."""
        from repro.engine.faults import ChaosPlan

        plan = self._plan()
        x = np.random.default_rng(2).normal(size=(16, 1, 31, 20))
        ref = BatchedRunner(plan, batch_size=4).run(x)
        chaos = ChaosPlan(slow_rate=1.0, slow_s=5.0)
        runner = ParallelRunner(
            plan,
            workers=2,
            batch_size=4,
            chaos=chaos,
            task_timeout=0.5,
            task_retries=0,
            pool_restarts=0,
        )
        out = runner.run(x)
        stats = runner.stats()
        runner.close()
        assert np.array_equal(out, ref)
        assert stats["fallbacks"] > 0
        assert runner._shm_segments == []

"""Bit-heap to netlist synthesis (the full Fig. 2 pipeline)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bitheap import (
    FULL_ADDER,
    HALF_ADDER,
    build_bitheap_multiplier,
    build_bitheap_squarer,
    compress_greedy,
    compress_heuristic,
)
from repro.circuits import gate_cost, to_verilog


class TestSynthesizedMultipliers:
    @pytest.mark.parametrize("backend", [compress_greedy, compress_heuristic])
    def test_exhaustive_5x5(self, backend):
        c = build_bitheap_multiplier(5, 5, backend)
        for x in range(32):
            for y in range(32):
                assert c.evaluate_buses(a=x, b=y)["p"] == x * y

    def test_rectangular(self):
        c = build_bitheap_multiplier(6, 3)
        for x in range(0, 64, 5):
            for y in range(8):
                assert c.evaluate_buses(a=x, b=y)["p"] == x * y

    def test_restricted_library(self):
        c = build_bitheap_multiplier(
            4, 4, lambda h: compress_greedy(h, compressors=[FULL_ADDER, HALF_ADDER])
        )
        for x in range(16):
            for y in range(16):
                assert c.evaluate_buses(a=x, b=y)["p"] == x * y

    @given(st.integers(min_value=0, max_value=127), st.integers(min_value=0, max_value=127))
    def test_7x7_random(self, x, y):
        c = _MUL7X7
        assert c.evaluate_buses(a=x, b=y)["p"] == x * y


_MUL7X7 = build_bitheap_multiplier(7, 7)


class TestSynthesizedSquarers:
    @pytest.mark.parametrize("backend", [compress_greedy, compress_heuristic])
    def test_exhaustive(self, backend):
        c = build_bitheap_squarer(6, backend)
        for x in range(64):
            assert c.evaluate_buses(a=x)["p"] == x * x

    def test_squarer_cheaper_than_multiplier(self):
        sq = build_bitheap_squarer(6)
        mul = build_bitheap_multiplier(6, 6)
        assert gate_cost(sq) < gate_cost(mul)


class TestPipelineToVerilog:
    def test_generated_multiplier_emits(self):
        c = build_bitheap_multiplier(4, 4)
        v = to_verilog(c)
        assert "module bitheap_mul4x4 (" in v
        assert v.count("assign") >= len(c.gates)

    def test_vectorized_agreement(self):
        import numpy as np

        c = build_bitheap_multiplier(5, 4)
        xs = np.arange(32).repeat(16)
        ys = np.tile(np.arange(16), 32)
        out = c.evaluate_vector(a=xs, b=ys)["p"]
        assert np.array_equal(out, xs * ys)

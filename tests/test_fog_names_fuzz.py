"""Property-based fuzz for :class:`repro.fog.names.ComputationName`.

Names arrive off the wire, so the parser's contract is API: **totality**
(anything that is not a well-formed name raises ``ValueError`` — never an
incidental ``AttributeError``/``TypeError``/``IndexError`` from parsing
internals) and **round-trip bit-identity** (``parse(uri()).uri() == uri``
for every constructible name, and ``parse(s).uri() == s`` for every
string the parser accepts).

Hypothesis generates both directions: structured names built from the
grammar, and adversarial byte-soup aimed at the parser.
"""

import string

import pytest
from hypothesis import given, strategies as st

from repro.fog.names import ComputationName

pytestmark = pytest.mark.timeout(120)

# ----------------------------------------------------------------------
# Grammar-directed generators (valid names)
# ----------------------------------------------------------------------
_HEX = "0123456789abcdef"
# Segment alphabets exclude the structural separators "/" and ";" (and
# "=" for param keys): the uri grammar cannot escape them.
_workloads = st.text(
    alphabet=string.ascii_lowercase + string.digits + "_-.",
    min_size=1,
    max_size=12,
).filter(lambda s: s != "-")
_param_keys = st.text(
    alphabet=string.ascii_lowercase + string.digits + "_", min_size=1, max_size=8
)
_param_values = st.text(
    alphabet=string.ascii_letters + string.digits + "_-.=", max_size=8
)
_digests = st.text(alphabet=_HEX, min_size=64, max_size=64)

_names = st.builds(
    ComputationName,
    workload=_workloads,
    params=st.lists(st.tuples(_param_keys, _param_values), max_size=4).map(tuple),
    inputs=st.lists(_digests, min_size=1, max_size=3).map(tuple),
)


class TestRoundTrip:
    @given(_names)
    def test_uri_parse_uri_is_identity(self, name):
        uri = name.uri()
        parsed = ComputationName.parse(uri)
        assert parsed == name
        assert parsed.uri() == uri, "round-trip must be bit-identical"

    @given(_names)
    def test_parse_is_deterministic(self, name):
        uri = name.uri()
        assert ComputationName.parse(uri) == ComputationName.parse(uri)

    @given(_names, _names)
    def test_distinct_names_have_distinct_uris(self, x, y):
        if x != y:
            assert x.uri() != y.uri(), "the uri must be injective on names"


# ----------------------------------------------------------------------
# Totality: only ValueError may escape, ever
# ----------------------------------------------------------------------
class TestTotality:
    @given(st.text(max_size=200))
    def test_arbitrary_text_parses_or_raises_valueerror(self, s):
        try:
            parsed = ComputationName.parse(s)
        except ValueError:
            return
        # Accepted strings must round-trip to the exact same bytes.
        assert parsed.uri() == s

    @given(
        st.text(alphabet=st.characters(min_codepoint=0, max_codepoint=0x2FF),
                max_size=120).map(lambda s: "/fog/exec/" + s)
    )
    def test_prefix_adjacent_soup_is_total(self, s):
        """Byte soup behind the real prefix hits every internal branch."""
        try:
            parsed = ComputationName.parse(s)
        except ValueError:
            return
        assert parsed.uri() == s

    @given(_names, st.integers(min_value=0, max_value=200))
    def test_truncations_of_valid_names_are_total(self, name, cut):
        """Every prefix of a real name either parses or raises ValueError
        — truncation mid-frame is the normal wire failure mode."""
        uri = name.uri()
        s = uri[: min(cut, len(uri))]
        try:
            parsed = ComputationName.parse(s)
        except ValueError:
            return
        assert parsed.uri() == s

    @given(
        st.one_of(
            st.none(),
            st.integers(),
            st.floats(allow_nan=False),
            st.binary(max_size=40),
            st.lists(st.text(max_size=5), max_size=3),
            st.dictionaries(st.text(max_size=3), st.text(max_size=3), max_size=2),
        )
    )
    def test_type_confusion_raises_valueerror(self, junk):
        """Whatever json.loads may have produced, the contract holds."""
        with pytest.raises(ValueError):
            ComputationName.parse(junk)

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "/",
            "/fog",
            "/fog/exec",
            "/fog/exec/",
            "/fog/exec/w",
            "/fog/exec/w/-",
            "/fog/exec/w/-/",
            "/fog/exec/w/-/sha256:",
            "/fog/exec/w/-/sha256:" + "a" * 63,
            "/fog/exec/w/-/sha256:" + "a" * 65,
            "/fog/exec/w/-/md5:" + "a" * 64,
            "/fog/exec/w/=v/sha256:" + "a" * 64,
            "/fog/exec/w/;/sha256:" + "a" * 64,
            "/FOG/exec/w/-/sha256:" + "a" * 64,
            " /fog/exec/w/-/sha256:" + "a" * 64,
        ],
    )
    def test_known_malformations_raise_valueerror(self, bad):
        with pytest.raises(ValueError):
            ComputationName.parse(bad)

"""Golden replay: the fused path must reproduce frozen unfused bytes.

``tests/golden/fused_posit8_mlp.npz`` holds a posit<8,0> MLP prediction
produced by the *unfused* per-layer executors at generation time.  Every
fused configuration — the single-process plan, the split code boundary,
and shared-memory sharding across two workers — must reproduce those
bytes exactly.  Pinning the bytes on disk (rather than comparing fused
against unfused live) catches the failure mode a live comparison cannot:
a change that alters fused and unfused numerics *together*.
"""

from pathlib import Path

import multiprocessing

import numpy as np
import pytest

from repro.engine import ParallelRunner
from repro.engine.fused import FusedPlan
from repro.nn.layers import Dense, ReLU
from repro.nn.network import Sequential
from repro.nn.posit_inference import PositQuantizedNetwork
from repro.posit import POSIT8

GOLDEN = Path(__file__).parent / "golden" / "fused_posit8_mlp.npz"


@pytest.fixture(scope="module")
def golden():
    with np.load(GOLDEN) as data:
        return {k: data[k] for k in data.files}


#: Mirrors ``tests/golden/generate.py``'s ``ENCODE_SEED + 7000`` — the
#: weight-drift assertion below fails loudly if the two ever diverge.
_GOLDEN_SEED = 20260806 + 7000


@pytest.fixture(scope="module")
def net(golden):
    """The golden MLP, rebuilt by the generator's exact recipe."""
    rng = np.random.default_rng(_GOLDEN_SEED)
    net = Sequential(
        [Dense(24, 32, rng, "fc1"), ReLU(), Dense(32, 8, rng, "fc2")],
        input_shape=(24,),
        name="fused-golden-mlp",
    )
    # The rebuilt weights must match the frozen ones bit for bit, or the
    # replay below would be testing a different network.
    for i, p in enumerate(net.params()):
        assert np.array_equal(p.data, golden[f"w{i}"]), f"param {i} drifted"
    return net


def test_unfused_predict_still_matches_golden(golden, net):
    qnet = PositQuantizedNetwork(net, POSIT8)
    y = qnet.predict(golden["x"], batch=4)
    assert y.tobytes() == golden["y"].tobytes()


def test_fused_forward_matches_golden(golden, net):
    plan = FusedPlan.compile(net, POSIT8)
    outs = [plan.forward(golden["x"][s : s + 4]) for s in range(0, 12, 4)]
    assert np.concatenate(outs, axis=0).tobytes() == golden["y"].tobytes()


def test_fused_code_boundary_matches_golden(golden, net):
    plan = FusedPlan.compile(net, POSIT8)
    codes = plan.encode_input(golden["x"])
    outs = [plan.forward_codes(codes[s : s + 4]) for s in range(0, 12, 4)]
    assert np.concatenate(outs, axis=0).tobytes() == golden["y"].tobytes()


def test_fused_workers_shared_memory_matches_golden(golden, net):
    plan = FusedPlan.compile(net, POSIT8)
    with ParallelRunner(plan, workers=2, batch_size=4) as runner:
        y = runner.run(golden["x"])
    assert y.tobytes() == golden["y"].tobytes()
    assert multiprocessing.active_children() == []


def test_predict_fused_flag_matches_golden(golden, net):
    qnet = PositQuantizedNetwork(net, POSIT8)
    y = qnet.predict(golden["x"], batch=4, fused=True)
    assert y.tobytes() == golden["y"].tobytes()

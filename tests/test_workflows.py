"""CI configuration stays well-formed: workflow YAML + regression gate.

A dry parse (``yaml.safe_load``) of every workflow file plus structural
assertions on the jobs the ISSUE adds — the ``lint`` and
``bench-regression`` jobs in ``ci.yml`` and the scheduled nightly fuzz
workflow — so a malformed edit fails locally instead of silently
disabling CI.  Also unit-tests ``benchmarks/check_regression.py``, the
script the bench-regression job runs.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml")

REPO_ROOT = Path(__file__).resolve().parent.parent
WORKFLOW_DIR = REPO_ROOT / ".github" / "workflows"
CHECK_SCRIPT = REPO_ROOT / "benchmarks" / "check_regression.py"


def _load(name):
    return yaml.safe_load((WORKFLOW_DIR / name).read_text())


def _triggers(doc):
    # YAML 1.1 parses the bare key ``on`` as boolean True.
    return doc.get("on", doc.get(True))


def _run_steps(job):
    return [s.get("run", "") for s in job["steps"] if "run" in s]


class TestWorkflowFiles:
    def test_all_workflows_parse(self):
        paths = sorted(WORKFLOW_DIR.glob("*.yml"))
        assert paths, "no workflow files found"
        for path in paths:
            doc = yaml.safe_load(path.read_text())
            assert isinstance(doc, dict), f"{path.name} did not parse to a mapping"
            assert _triggers(doc), f"{path.name} has no trigger"
            assert doc.get("jobs"), f"{path.name} defines no jobs"
            for job_name, job in doc["jobs"].items():
                assert job.get("runs-on"), f"{path.name}:{job_name} has no runs-on"
                assert job.get("steps"), f"{path.name}:{job_name} has no steps"

    def test_ci_has_lint_job(self):
        job = _load("ci.yml")["jobs"]["lint"]
        runs = " ".join(_run_steps(job))
        assert "ruff check" in runs
        assert "ruff format --check" in runs

    def test_ci_has_bench_regression_job(self):
        job = _load("ci.yml")["jobs"]["bench-regression"]
        runs = _run_steps(job)
        assert any("benchmarks/check_regression.py" in r for r in runs)
        assert any("--max-regression 0.30" in r for r in runs)
        assert any("REPRO_QUICK=1" in r for r in runs)
        # Fresh results are uploaded even when the gate fails.
        uploads = [s for s in job["steps"] if "upload-artifact" in s.get("uses", "")]
        assert uploads and uploads[0].get("if") == "always()"

    def test_ci_has_chaos_job(self):
        job = _load("ci.yml")["jobs"]["chaos"]
        runs = _run_steps(job)
        assert any("tests/test_chaos.py" in r for r in runs)
        assert any("tests/test_engine_parallel.py" in r for r in runs)
        envs = [s.get("env", {}) for s in job["steps"]]
        rates = next(e for e in envs if "REPRO_CHAOS_CRASH_RATE" in e)
        assert float(rates["REPRO_CHAOS_CRASH_RATE"]) > 0.0
        assert float(rates["REPRO_CHAOS_LUT_RATE"]) == 0.01  # the 1% flip bar

    def test_nightly_is_scheduled_with_fuzz_volume(self):
        doc = _load("nightly.yml")
        trig = _triggers(doc)
        assert "schedule" in trig and trig["schedule"][0]["cron"]
        assert "workflow_dispatch" in trig
        fuzz = doc["jobs"]["fuzz"]
        envs = [s.get("env", {}) for s in fuzz["steps"]]
        assert any(e.get("REPRO_FUZZ_PAIRS") == "20000" for e in envs)
        assert any("REPRO_FUZZ_FAILURE_FILE" in e for e in envs)
        # Failure seeds are only uploaded on red runs.
        uploads = [s for s in fuzz["steps"] if "upload-artifact" in s.get("uses", "")]
        assert uploads and uploads[0].get("if") == "failure()"
        assert uploads[0]["with"]["path"] == "fuzz_failures.json"


class TestCheckRegression:
    """The gate script itself: ratio math, skip conditions, exit codes."""

    @staticmethod
    def _write(dirpath, name, payload):
        (dirpath / name).write_text(json.dumps(payload))

    def _gate(self, baseline_dir, current_dir, max_regression=0.30):
        proc = subprocess.run(
            [
                sys.executable,
                str(CHECK_SCRIPT),
                "--baseline-dir",
                str(baseline_dir),
                "--current-dir",
                str(current_dir),
                "--max-regression",
                str(max_regression),
            ],
            capture_output=True,
            text=True,
        )
        return proc.returncode, proc.stdout

    def test_within_budget_passes(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        base.mkdir(), cur.mkdir()
        self._write(base, "BENCH_engine.json", {"speedup": 100.0})
        self._write(cur, "BENCH_engine.json", {"speedup": 80.0})  # -20%
        code, out = self._gate(base, cur)
        assert code == 0
        assert "engine" in out and "OK" in out

    def test_regression_fails(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        base.mkdir(), cur.mkdir()
        self._write(base, "BENCH_engine.json", {"speedup": 100.0})
        self._write(cur, "BENCH_engine.json", {"speedup": 60.0})  # -40%
        code, out = self._gate(base, cur)
        assert code == 1
        assert "REGRESSION" in out

    def test_parallel_skipped_when_bar_not_asserted(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        base.mkdir(), cur.mkdir()
        self._write(base, "BENCH_parallel.json", {"speedup": 3.0, "bar_asserted": True})
        # Current host < 4 CPUs: huge apparent regression, but skipped.
        self._write(
            cur,
            "BENCH_parallel.json",
            {"speedup": 0.5, "bar_asserted": False, "cpu_count": 2},
        )
        code, out = self._gate(base, cur)
        assert code == 0
        assert "skipped" in out

    def test_parallel_enforced_when_bar_asserted(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        base.mkdir(), cur.mkdir()
        self._write(base, "BENCH_parallel.json", {"speedup": 3.0, "bar_asserted": True})
        self._write(cur, "BENCH_parallel.json", {"speedup": 1.0, "bar_asserted": True})
        code, _ = self._gate(base, cur)
        assert code == 1

    def test_missing_current_file_fails(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        base.mkdir(), cur.mkdir()
        self._write(base, "BENCH_engine.json", {"speedup": 100.0})
        code, out = self._gate(base, cur)
        assert code == 1
        assert "FAIL" in out

    def test_missing_baseline_skips(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        base.mkdir(), cur.mkdir()
        self._write(cur, "BENCH_engine.json", {"speedup": 100.0})
        code, out = self._gate(base, cur)
        assert code == 0
        assert "no baseline" in out

    def test_threshold_is_configurable(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        base.mkdir(), cur.mkdir()
        self._write(base, "BENCH_engine.json", {"speedup": 100.0})
        self._write(cur, "BENCH_engine.json", {"speedup": 80.0})
        code, _ = self._gate(base, cur, max_regression=0.10)
        assert code == 1

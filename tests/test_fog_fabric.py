"""Cross-process fabric: identity, breakers, budgets, degradation.

The fabric's contract stacks three promises on top of the in-process
fog's: (1) **byte-identity across the process boundary** — a result is
bit-exact against the PR 7 golden vectors whether executed in a node
process, replayed from its content store over the wire, or served by the
degradation rung; (2) **bounded failure cost** — circuit breakers and
deadline budgets mean a dead peer costs fail-fast time, not a timeout per
request; (3) **counted degradation** — when every owner is unreachable
the fabric answers locally and says so in its metrics, never silently.

Process-free classes (breaker state machine, backoff purity, node-server
frame handling, wire codec) run the logic in-process; the golden class
spawns one real fabric per module and drives it over sockets.
"""

import pathlib
import time

import numpy as np
import pytest

from repro.engine.observe import Metrics
from repro.engine.registry import array_digest
from repro.fog import CircuitBreaker, FogFabric, FogUnavailable, name_request
from repro.fog.fabric import retry_backoff_ms
from repro.fog.node import FogNode
from repro.fog.peer import _NodeServer
from repro.fog.supervisor import restart_backoff_s
from repro.serve.executor import DeadlineExceeded, EngineExecutor
from repro.serve.protocol import (
    Request,
    decode_array,
    encode_array,
    interest_frame,
    request_from_wire,
    request_to_wire,
)

GOLDEN = pathlib.Path(__file__).parent / "golden" / "fog_posit8_matmul.npz"

pytestmark = pytest.mark.timeout(300)


def matmul_request(req_id, a, b):
    return Request(
        id=req_id,
        workload="posit_matmul",
        tenant="t",
        bits=8,
        es=2,
        a=np.asarray(a, dtype=np.float64),
        b=np.asarray(b, dtype=np.float64),
        rows=len(a),
    )


def assert_bitexact(got, want, label):
    got = np.asarray(got)
    want = np.asarray(want)
    assert got.shape == want.shape and got.dtype == want.dtype, label
    assert got.tobytes() == want.tobytes(), f"{label}: outputs differ bytewise"


@pytest.fixture(scope="module")
def golden():
    with np.load(GOLDEN) as data:
        return data["a"].copy(), data["b"].copy(), data["y"].copy()


# ----------------------------------------------------------------------
# Deterministic jittered backoff (pure functions)
# ----------------------------------------------------------------------
class TestBackoff:
    def test_retry_backoff_is_deterministic(self):
        a = retry_backoff_ms(10.0, 2, "uri-x")
        b = retry_backoff_ms(10.0, 2, "uri-x")
        assert a == b

    def test_retry_backoff_grows_and_jitters_within_envelope(self):
        for attempt in range(4):
            delay = retry_backoff_ms(10.0, attempt, "uri-y", cap_ms=1e9)
            base = 10.0 * 2**attempt
            assert 0.5 * base <= delay < 1.5 * base

    def test_retry_backoff_respects_cap(self):
        assert retry_backoff_ms(10.0, 30, "uri-z", cap_ms=250.0) == 250.0

    def test_retry_backoff_decorrelates_tokens(self):
        delays = {retry_backoff_ms(10.0, 1, f"uri-{i}") for i in range(16)}
        assert len(delays) > 1, "every interest retried in lockstep"

    def test_restart_backoff_same_shape(self):
        assert restart_backoff_s(0.05, 1, "n0") == restart_backoff_s(0.05, 1, "n0")
        assert restart_backoff_s(0.05, 0, "n0") != restart_backoff_s(0.05, 0, "n1")
        assert restart_backoff_s(0.05, 99, "n0", cap_s=5.0) == 5.0


# ----------------------------------------------------------------------
# Circuit breaker state machine (injectable clock, no sockets)
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def make(self, **kw):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=3, reset_after_s=1.0, clock=clock,
            metrics=Metrics(), name="t", **kw,
        )
        return breaker, clock

    def test_closed_allows_and_failures_below_threshold_stay_closed(self):
        breaker, _ = self.make()
        assert breaker.allow()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_threshold_failures_open_the_circuit(self):
        breaker, _ = self.make()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow(), "open circuit must fail fast"

    def test_success_resets_the_failure_count(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_cooldown_admits_exactly_one_probe(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.now += 1.5  # past reset_after_s
        assert breaker.allow(), "first caller after cooldown is the probe"
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow(), "second caller must wait for the probe"

    def test_probe_success_closes(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.now += 1.5
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.now += 1.5
        assert breaker.allow()
        breaker.record_failure()  # one failed probe is enough
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        clock.now += 1.5
        assert breaker.allow(), "cooldown restarted from the failed probe"

    def test_before_cooldown_stays_open(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.now += 0.5  # < reset_after_s
        assert not breaker.allow()

    def test_force_open_and_reset(self):
        breaker, _ = self.make()
        breaker.force_open()
        assert breaker.state == CircuitBreaker.OPEN
        breaker.reset()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()


# ----------------------------------------------------------------------
# Wire format (arrays + requests round-trip bit-identically)
# ----------------------------------------------------------------------
class TestWireFormat:
    def test_array_roundtrip_is_bitexact(self):
        rng = np.random.default_rng(7)
        for arr in (
            rng.normal(size=(3, 4)),
            rng.integers(-100, 100, size=(5,), dtype=np.int64),
            np.array([np.nan, np.inf, -0.0]),
        ):
            back = decode_array(encode_array(arr))
            assert back.dtype == arr.dtype and back.shape == arr.shape
            assert back.tobytes() == arr.tobytes()

    def test_request_roundtrip_preserves_operand_bytes(self):
        rng = np.random.default_rng(9)
        req = matmul_request("w1", rng.normal(size=(2, 3)), rng.normal(size=(3, 2)))
        back = request_from_wire(request_to_wire(req))
        assert back.batch_key() == req.batch_key()
        assert back.a.tobytes() == req.a.tobytes()
        assert back.b.tobytes() == req.b.tobytes()
        assert name_request(back).uri() == name_request(req).uri()


# ----------------------------------------------------------------------
# Node-server frame handling (in-process, no sockets)
# ----------------------------------------------------------------------
class TestNodeServer:
    def make(self):
        node = FogNode(
            "srv", executor=EngineExecutor(metrics=Metrics()), metrics=Metrics()
        )
        return node, _NodeServer(node)

    def test_spent_budget_is_refused_without_executing(self):
        node, server = self.make()
        req = matmul_request("b0", [[1.0, 2.0]], [[3.0], [4.0]])
        node.advertise(req.batch_key())
        resp = server.handle(interest_frame(req, budget_ms=0.0))
        assert not resp["ok"] and resp["error"] == "deadline"
        assert node.executions == 0, "a spent budget must never reach the engine"

    def test_interest_executes_when_owner(self):
        node, server = self.make()
        req = matmul_request("b1", [[1.0, 2.0]], [[3.0], [4.0]])
        node.advertise(req.batch_key())
        resp = server.handle(interest_frame(req, budget_ms=1000.0))
        assert resp["ok"] and resp["source"] == "exec"
        result = decode_array(resp["result"])
        assert resp["digest"] == array_digest(result)
        assert_bitexact(result, [[11.0]], "node-server exec")

    def test_interest_cache_hit_after_exec(self):
        node, server = self.make()
        req = matmul_request("b2", [[1.0, 2.0]], [[3.0], [4.0]])
        node.advertise(req.batch_key())
        first = server.handle(interest_frame(req, budget_ms=1000.0))
        second = server.handle(interest_frame(req, budget_ms=1000.0))
        assert second["source"] == "cache"
        assert second["digest"] == first["digest"]

    def test_non_owner_cant_serve(self):
        _, server = self.make()
        req = matmul_request("b3", [[1.0, 2.0]], [[3.0], [4.0]])
        resp = server.handle(interest_frame(req, budget_ms=1000.0))
        assert not resp["ok"] and resp["error"] == "cant_serve"

    def test_carry_with_good_digest_is_accepted(self):
        node, server = self.make()
        req = matmul_request("b4", [[1.0, 2.0]], [[3.0], [4.0]])
        result = np.array([[11.0]])
        uri = name_request(req).uri()
        from repro.serve.protocol import carry_frame

        resp = server.handle(carry_frame(uri, result, array_digest(result)))
        assert resp["ok"] and resp["accepted"]
        assert node.store.get(uri) is not None

    def test_carry_with_bad_digest_is_refused_and_counted(self):
        node, server = self.make()
        req = matmul_request("b5", [[1.0, 2.0]], [[3.0], [4.0]])
        result = np.array([[11.0]])
        uri = name_request(req).uri()
        from repro.serve.protocol import carry_frame

        frame = carry_frame(uri, result, "0" * 64)  # wrong pinned digest
        before = node.store.integrity_failures
        resp = server.handle(frame)
        assert resp["ok"] and not resp["accepted"]
        assert node.store.integrity_failures == before + 1
        assert node.store.get(uri) is None, "tampered carry must not be cached"

    def test_heartbeat_echoes_seq(self):
        _, server = self.make()
        resp = server.handle({"op": "heartbeat", "seq": 42})
        assert resp["ok"] and resp["seq"] == 42

    def test_unknown_op_is_a_bad_request(self):
        _, server = self.make()
        resp = server.handle({"op": "nonsense"})
        assert not resp["ok"] and resp["error"] == "bad_request"


# ----------------------------------------------------------------------
# Degradation ladder + budget exhaustion (fabric logic, processes down)
# ----------------------------------------------------------------------
class TestDegradation:
    def test_unreachable_owners_degrade_to_counted_local_execution(self, golden):
        """With every node unreachable the fabric answers locally — the
        answer is byte-exact and the degradation is counted, not silent."""
        a, b, y = golden
        metrics = Metrics()
        fab = FogFabric(nodes=2, metrics=metrics, start=False)
        try:
            for i in range(len(a)):
                got = fab.submit(matmul_request(f"deg{i}", a[i], b[i]))
                assert_bitexact(got, y[i], f"degraded pair {i}")
            assert fab.degraded == len(a)
            assert metrics.counters.get("fabric.degraded_local") == len(a)
        finally:
            fab.close()

    def test_degradation_disabled_raises_unavailable(self):
        fab = FogFabric(nodes=2, degrade_local=False, metrics=Metrics(), start=False)
        try:
            with pytest.raises(FogUnavailable):
                fab.submit(matmul_request("nd", [[1.0, 2.0]], [[3.0], [4.0]]))
            assert fab.unavailable == 1
        finally:
            fab.close()

    def test_spent_budget_raises_deadline_not_degrades(self):
        fab = FogFabric(nodes=2, metrics=Metrics(), start=False)
        try:
            with pytest.raises(DeadlineExceeded):
                fab.submit(
                    matmul_request("sp", [[1.0, 2.0]], [[3.0], [4.0]]),
                    budget_ms=0.0,
                )
            assert fab.degraded == 0, "a spent budget must not burn local compute"
        finally:
            fab.close()

    def test_owner_assignment_matches_in_process_topology(self):
        """Rendezvous owners are a pure function of roster + capability —
        the fabric and the topology must agree on them."""
        from repro.fog import FogTopology

        req = matmul_request("own", [[1.0, 2.0]], [[3.0], [4.0]])
        fab = FogFabric(nodes=4, replicas=2, metrics=Metrics(), start=False)
        try:
            fabric_owners = fab.owners(req.batch_key())
        finally:
            fab.close()
        with FogTopology(nodes=4, replicas=2, metrics=Metrics()) as topo:
            topo_owners = [n.name for n in topo.owners(req.batch_key())]
        assert fabric_owners == topo_owners


# ----------------------------------------------------------------------
# The real thing: spawned node processes behind sockets
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fabric():
    metrics = Metrics()
    fab = FogFabric(
        nodes=3, replicas=2, heartbeat_ms=50.0, metrics=metrics,
        retry_backoff_base_ms=5.0,
    )
    try:
        assert fab.wait_all_serving(timeout_s=30.0), "fabric never came up"
        yield fab
    finally:
        fab.close()


class TestFabricGolden:
    def test_results_match_golden_across_the_process_boundary(self, fabric, golden):
        a, b, y = golden
        for i in range(len(a)):
            got = fabric.submit(matmul_request(f"g{i}", a[i], b[i]))
            assert_bitexact(got, y[i], f"fabric pair {i}")
        assert fabric.degraded == 0, "healthy fabric must not degrade"

    def test_replay_is_cached_not_reexecuted(self, fabric, golden):
        a, b, y = golden
        execs_before = fabric.remote_execs
        hits_before = fabric.cache_hits
        for i in range(len(a)):
            got = fabric.submit(matmul_request(f"g2-{i}", a[i], b[i]))
            assert_bitexact(got, y[i], f"fabric replay pair {i}")
        assert fabric.cache_hits > hits_before, "second pass must hit stores"
        assert fabric.remote_execs == execs_before, "replay must not re-execute"

    def test_stats_shape(self, fabric):
        stats = fabric.stats()
        assert set(stats["nodes"]) == {"n0", "n1", "n2"}
        assert stats["serving"] == ["n0", "n1", "n2"]
        for breaker in stats["breakers"].values():
            assert breaker["state"] == "closed"
        assert stats["submitted"] >= stats["completed"] > 0


# ----------------------------------------------------------------------
# Pipelined transport: one multiplexed connection, many in-flight rids
# ----------------------------------------------------------------------
class TestPipelinedTransport:
    def test_responses_echo_request_ids(self, fabric):
        client = fabric.supervisor.client("n0")
        resp = client.call({"op": "stats"})
        assert resp["ok"] and isinstance(resp.get("rid"), int)

    def test_concurrent_calls_demux_to_their_own_callers(self, fabric):
        """16 interests in flight on ONE connection: every caller gets the
        result for *its* operands, byte-exact — rid demux cannot cross
        wires without this failing."""
        import threading

        client = fabric.supervisor.client("n0")
        rng = np.random.default_rng(21)
        pairs = [
            (rng.normal(size=(2, 3)), rng.normal(size=(3, 2))) for _ in range(16)
        ]
        reqs = [matmul_request(f"mux{i}", a, b) for i, (a, b) in enumerate(pairs)]
        for req in reqs:
            client.call({"op": "advertise", "batch_key": list(req.batch_key())})
        results = [None] * len(reqs)
        barrier = threading.Barrier(len(reqs))

        def fire(i):
            barrier.wait()
            results[i] = client.call(
                interest_frame(reqs[i], budget_ms=30000.0, binary=True),
                timeout_s=30.0,
            )

        threads = [
            threading.Thread(target=fire, args=(i,)) for i in range(len(reqs))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)
        from repro.engine.posit_backend import PositBackend
        from repro.posit.format import PositFormat

        backend = PositBackend(PositFormat(8, 2), stable_contractions=True)
        for i, (a, b) in enumerate(pairs):
            resp = results[i]
            assert resp is not None and resp["ok"], f"call {i} failed: {resp}"
            want = backend.decode(
                backend.matmul(backend.encode(a), backend.encode(b))
            )
            got = decode_array(resp["result"])
            assert_bitexact(got, want, f"pipelined call {i}")
            assert resp["digest"] == array_digest(got)
        assert client.pending() == 0, "every rid must be retired"

    def test_binary_frames_carry_raw_arrays(self, fabric):
        """The pipelined wire ships tensors as raw bytes: a binary interest
        response decodes its result via the frame assembler, not base64."""
        client = fabric.supervisor.client("n1")
        req = matmul_request("bin0", [[1.0, 2.0]], [[3.0], [4.0]])
        client.call({"op": "advertise", "batch_key": list(req.batch_key())})
        resp = client.call(interest_frame(req, budget_ms=30000.0, binary=True))
        assert resp["ok"]
        assert isinstance(resp["result"], np.ndarray), (
            "binary framing must restore ndarrays at the assembler, "
            f"got {type(resp['result'])}"
        )
        assert_bitexact(decode_array(resp["result"]), [[11.0]], "binary result")

    def test_timeout_abandons_rid_but_keeps_connection(self, fabric):
        """A timed-out call must not tear the multiplexed connection down:
        the rid is abandoned (late reply counted as orphan) and the very
        next call reuses the same connection generation."""
        client = fabric.supervisor.client("n2")
        rng = np.random.default_rng(33)
        # Big enough that a posit8 matmul cannot finish in 1ms.
        req = matmul_request("slow", rng.normal(size=(48, 48)), rng.normal(size=(48, 48)))
        client.call({"op": "advertise", "batch_key": list(req.batch_key())})
        gen_before = client._generation
        from repro.fog import PeerError

        with pytest.raises(PeerError):
            # A zero wait cannot beat even a loopback round trip, so the
            # timeout is deterministic.
            client.call(
                interest_frame(req, budget_ms=30000.0, binary=True),
                timeout_s=0.0,
            )
        resp = client.call({"op": "stats"}, timeout_s=30.0)
        assert resp["ok"]
        assert client._generation == gen_before, (
            "a slow peer response must not cost a reconnect"
        )
        assert client.pending() == 0


# ----------------------------------------------------------------------
# Singleflight interest collapsing
# ----------------------------------------------------------------------
class TestSingleflight:
    def test_duplicate_in_flight_interests_collapse(self, fabric):
        """8 threads submit the same fresh interest at once: one leader
        executes, followers attach and get byte-identical results, and the
        collapse is counted."""
        import threading

        rng = np.random.default_rng(55)
        a, b = rng.normal(size=(48, 48)), rng.normal(size=(48, 48))
        n = 8
        results = [None] * n
        errors = [None] * n
        barrier = threading.Barrier(n)
        collapsed_before = fabric.collapsed
        execs_before = fabric.remote_execs

        def fire(i):
            barrier.wait()
            try:
                results[i] = fabric.submit(matmul_request(f"sf{i}", a, b))
            except Exception as err:  # noqa: BLE001 — surfaced below
                errors[i] = err

        threads = [threading.Thread(target=fire, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120.0)
        assert all(e is None for e in errors), f"singleflight errors: {errors}"
        baseline = results[0].tobytes()
        for i, got in enumerate(results):
            assert got is not None and got.tobytes() == baseline, (
                f"collapsed waiter {i} saw different bytes"
            )
        assert fabric.collapsed > collapsed_before, (
            "concurrent duplicates must collapse, not fan out"
        )
        assert fabric.remote_execs - execs_before < n, (
            "collapsing must save executions"
        )

    def test_topology_collapses_duplicates_too(self):
        """The in-process topology honors the same singleflight contract."""
        import threading

        from repro.fog import FogTopology

        rng = np.random.default_rng(77)
        a, b = rng.normal(size=(48, 48)), rng.normal(size=(48, 48))
        metrics = Metrics()
        n = 6
        with FogTopology(nodes=3, replicas=2, metrics=metrics) as topo:
            results = [None] * n
            barrier = threading.Barrier(n)

            def fire(i):
                barrier.wait()
                results[i] = topo.submit(matmul_request(f"tsf{i}", a, b))

            threads = [
                threading.Thread(target=fire, args=(i,)) for i in range(n)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60.0)
            baseline = results[0].tobytes()
            assert all(r is not None and r.tobytes() == baseline for r in results)
            assert topo.stats()["collapsed"] >= 1
            assert metrics.counters.get("fog.collapsed", 0) >= 1

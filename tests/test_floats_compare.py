"""IEEE comparison predicate semantics (the 22 operations of Section V)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.floats import (
    ALL_PREDICATES,
    BINARY16,
    SoftFloat,
    compare_quiet_equal,
    compare_quiet_unordered,
    compare_signaling_less,
    total_order,
)
from repro.floats.compare import relation

patterns16 = st.integers(min_value=0, max_value=0xFFFF)


class TestPredicateTable:
    def test_there_are_22_predicates(self):
        # The paper: "The IEEE 754 Standard requires 22 different kinds of
        # comparison operations because of the NaN exceptions".
        assert len(ALL_PREDICATES) == 22

    def test_nan_not_equal_to_itself(self):
        nan = SoftFloat.nan(BINARY16)
        assert not compare_quiet_equal(nan, nan)
        assert ALL_PREDICATES["compareQuietNotEqual"](nan, nan)

    def test_nan_unordered_to_everything(self):
        nan = SoftFloat.nan(BINARY16)
        one = SoftFloat.from_float(BINARY16, 1.0)
        assert compare_quiet_unordered(nan, one)
        assert compare_quiet_unordered(one, nan)
        assert compare_quiet_unordered(nan, nan)

    def test_signed_zeros_compare_equal(self):
        pz = SoftFloat.zero(BINARY16, 0)
        nz = SoftFloat.zero(BINARY16, 1)
        assert compare_quiet_equal(pz, nz)
        assert relation(pz, nz) == "eq"

    def test_signaling_raises_on_nan(self):
        nan = SoftFloat.nan(BINARY16)
        one = SoftFloat.from_float(BINARY16, 1.0)
        with pytest.raises(FloatingPointError):
            compare_signaling_less(nan, one)

    def test_quiet_less_false_on_nan(self):
        nan = SoftFloat.nan(BINARY16)
        one = SoftFloat.from_float(BINARY16, 1.0)
        assert not ALL_PREDICATES["compareQuietLess"](nan, one)
        assert ALL_PREDICATES["compareQuietLessUnordered"](nan, one)

    @given(patterns16, patterns16)
    def test_exactly_one_relation_holds(self, pa, pb):
        a, b = SoftFloat(BINARY16, pa), SoftFloat(BINARY16, pb)
        rel = relation(a, b)
        assert rel in ("lt", "eq", "gt", "un")
        # Quiet predicates partition accordingly.
        holds = [
            ALL_PREDICATES["compareQuietLess"](a, b),
            ALL_PREDICATES["compareQuietEqual"](a, b),
            ALL_PREDICATES["compareQuietGreater"](a, b),
            ALL_PREDICATES["compareQuietUnordered"](a, b),
        ]
        assert sum(holds) == 1

    @given(patterns16, patterns16)
    def test_antisymmetry(self, pa, pb):
        a, b = SoftFloat(BINARY16, pa), SoftFloat(BINARY16, pb)
        if relation(a, b) == "lt":
            assert relation(b, a) == "gt"


class TestFloatOrderIsNotPatternOrder:
    def test_negative_floats_reverse_direction(self):
        # Fig. 6: "floats increase monotonically on the right half of the
        # ring but reverse direction for the negative values".
        a = SoftFloat(BINARY16, 0x8400)  # small negative magnitude pattern
        b = SoftFloat(BINARY16, 0xC400)  # larger negative magnitude pattern
        assert b.pattern > a.pattern
        assert b.to_float() < a.to_float()  # pattern order != value order

    @given(patterns16, patterns16)
    def test_total_order_is_total_and_antisymmetric(self, pa, pb):
        a, b = SoftFloat(BINARY16, pa), SoftFloat(BINARY16, pb)
        assert total_order(a, b) or total_order(b, a)

    def test_total_order_places_nans_at_ends(self):
        nan = SoftFloat.nan(BINARY16)
        neg_nan = nan.negate()
        inf = SoftFloat.inf(BINARY16)
        assert total_order(inf, nan)
        assert total_order(neg_nan, inf.negate())

    def test_total_order_negative_zero_before_positive(self):
        pz = SoftFloat.zero(BINARY16, 0)
        nz = SoftFloat.zero(BINARY16, 1)
        assert total_order(nz, pz)
        assert not total_order(pz, nz)

"""Tests for float format descriptors and landmark values."""


import pytest

from repro.floats import (
    BFLOAT16,
    BINARY16,
    BINARY32,
    BINARY64,
    FP19,
    FloatFormat,
    SoftFloat,
)


class TestFormatConstants:
    def test_binary16_layout(self):
        assert BINARY16.width == 16
        assert BINARY16.bias == 15
        assert BINARY16.emin == -14
        assert BINARY16.emax == 15
        assert BINARY16.precision == 11

    def test_binary32_layout(self):
        assert BINARY32.width == 32
        assert BINARY32.bias == 127

    def test_binary64_layout(self):
        assert BINARY64.width == 64
        assert BINARY64.bias == 1023

    def test_bfloat16_is_truncated_binary32(self):
        # bfloat16 = binary32 with 16 fraction bits dropped (paper, Sec. V).
        assert BFLOAT16.width == 16
        assert BFLOAT16.exp_bits == BINARY32.exp_bits
        assert BINARY32.frac_bits - BFLOAT16.frac_bits == 16

    def test_fp19_agilex_format(self):
        # FP19 {1,8,10}: binary32 range with binary16 precision (Sec. III).
        assert FP19.width == 19
        assert FP19.exp_bits == 8
        assert FP19.frac_bits == 10

    def test_invalid_formats_rejected(self):
        with pytest.raises(ValueError):
            FloatFormat("bad", exp_bits=1, frac_bits=4)
        with pytest.raises(ValueError):
            FloatFormat("bad", exp_bits=5, frac_bits=0)


class TestLandmarkValues:
    def test_binary16_max(self):
        assert BINARY16.max_finite == 65504.0

    def test_binary16_min_normal(self):
        assert BINARY16.min_normal == 2.0**-14

    def test_binary16_min_subnormal(self):
        assert BINARY16.min_subnormal == 2.0**-24

    def test_binary16_range_matches_paper(self):
        # "about 6e-5 to 7e4" for 16-bit floats.
        assert 5e-5 < BINARY16.min_normal < 7e-5
        assert 6e4 < BINARY16.max_finite < 7e4

    def test_binary16_dynamic_range_9_decades(self):
        # Fig. 10: "only 9 orders of magnitude for IEEE 16-bit floats in the
        # normal range".
        assert round(BINARY16.dynamic_range_decades()) == 9

    def test_bfloat16_dynamic_range_76_decades(self):
        # Fig. 10: "about 76 orders of magnitude" for bfloat16.
        assert 75 <= BFLOAT16.dynamic_range_decades() <= 78

    def test_patterns(self):
        assert BINARY16.pattern_inf == 0x7C00
        assert BINARY16.pattern_quiet_nan == 0x7E00
        assert BINARY16.pattern_max_finite == 0x7BFF
        assert BINARY16.pattern_min_normal == 0x0400
        assert BINARY16.pattern_min_subnormal == 0x0001


class TestLandmarkPatternsDecode:
    @pytest.mark.parametrize("fmt", [BINARY16, BFLOAT16, FP19, BINARY32])
    def test_max_finite_value(self, fmt):
        sf = SoftFloat(fmt, fmt.pattern_max_finite)
        assert sf.to_float() == fmt.max_finite

    @pytest.mark.parametrize("fmt", [BINARY16, BFLOAT16, FP19, BINARY32])
    def test_min_subnormal_value(self, fmt):
        sf = SoftFloat(fmt, fmt.pattern_min_subnormal)
        assert sf.to_float() == fmt.min_subnormal

    @pytest.mark.parametrize("fmt", [BINARY16, BFLOAT16, FP19])
    def test_inf_and_nan_classify(self, fmt):
        assert SoftFloat(fmt, fmt.pattern_inf).is_inf()
        assert SoftFloat(fmt, fmt.pattern_quiet_nan).is_nan()

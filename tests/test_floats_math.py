"""Correctly rounded float elementary functions and FMA-based division."""

import math
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.floats import (
    BINARY16,
    BINARY32,
    FP8_E4M3,
    SoftFloat,
    float_atan,
    float_cos,
    float_exp,
    float_log,
    float_log2,
    float_sin,
    float_tanh,
    iterations_needed,
    newton_raphson_divide,
    reciprocal_seed,
)

patterns8 = st.integers(min_value=0, max_value=255)
patterns16 = st.integers(min_value=0, max_value=0xFFFF)


class TestExhaustiveFP8:
    """Every fp8 input vs an exact-rational reference rounding."""

    def test_exp(self):
        for pat in range(256):
            x = SoftFloat(FP8_E4M3, pat)
            if x.is_nan() or x.is_inf():
                continue
            got = float_exp(x)
            want = SoftFloat.from_fraction(FP8_E4M3, Fraction(math.exp(x.to_float())))
            assert got.pattern == want.pattern, hex(pat)

    def test_log(self):
        for pat in range(256):
            x = SoftFloat(FP8_E4M3, pat)
            if x.is_nan() or x.is_inf():
                continue
            v = x.to_float()
            if v < 0:
                assert float_log(x).is_nan()
                continue
            if v == 0:
                r = float_log(x)
                assert r.is_inf() and r.sign == 1
                continue
            want = SoftFloat.from_fraction(FP8_E4M3, Fraction(math.log(v)))
            assert float_log(x).pattern == want.pattern, hex(pat)

    @pytest.mark.parametrize(
        "fn,ref",
        [(float_sin, math.sin), (float_cos, math.cos), (float_atan, math.atan), (float_tanh, math.tanh)],
        ids=["sin", "cos", "atan", "tanh"],
    )
    def test_trig_tanh(self, fn, ref):
        for pat in range(256):
            x = SoftFloat(FP8_E4M3, pat)
            if x.is_nan() or x.is_inf():
                continue
            want = SoftFloat.from_fraction(FP8_E4M3, Fraction(ref(x.to_float())))
            assert fn(x).pattern == want.pattern, hex(pat)


class TestSpecials:
    def test_exp_specials(self):
        inf = SoftFloat.inf(BINARY16)
        assert float_exp(inf).is_inf()
        assert float_exp(inf.negate()).is_zero()
        assert float_exp(SoftFloat.nan(BINARY16)).is_nan()
        assert float_exp(SoftFloat.zero(BINARY16)).to_float() == 1.0

    def test_exp_overflow_underflow(self):
        big = SoftFloat.from_float(BINARY16, 100.0)
        assert float_exp(big).is_inf()
        assert float_exp(big.negate()).is_zero()

    def test_log_specials(self):
        assert float_log(SoftFloat.from_float(BINARY16, -1.0)).is_nan()
        r = float_log(SoftFloat.zero(BINARY16))
        assert r.is_inf() and r.sign == 1
        assert float_log(SoftFloat.inf(BINARY16)).is_inf()

    def test_log2_powers_exact(self):
        for k in range(-10, 11):
            x = SoftFloat.from_float(BINARY16, 2.0**k)
            assert float_log2(x).to_float() == float(k)

    def test_tanh_saturates(self):
        assert float_tanh(SoftFloat.inf(BINARY16)).to_float() == 1.0
        assert float_tanh(SoftFloat.from_float(BINARY16, 1e4)).to_float() == 1.0


class TestNewtonRaphsonDivision:
    """Section II: the FMA enables division — correctly rounded via
    Markstein's final-correction step."""

    @given(patterns16, patterns16)
    def test_matches_datapath_divide(self, pa, pb):
        a, b = SoftFloat(BINARY16, pa), SoftFloat(BINARY16, pb)
        if a.is_nan() or b.is_nan() or a.is_inf() or b.is_inf() or a.is_zero() or b.is_zero():
            return
        if a.is_subnormal() or b.is_subnormal():
            return  # seed table covers normal operands (hardware does too)
        q, _ = newton_raphson_divide(a, b)
        want = a.div(b)
        if want.is_nan():
            assert q.is_nan()
        else:
            assert q.pattern == want.pattern, (a.to_float(), b.to_float())

    def test_quadratic_convergence(self):
        a = SoftFloat.from_float(BINARY32, 1.0)
        b = SoftFloat.from_float(BINARY32, 3.0)
        _, trace = newton_raphson_divide(a, b, trace=True)
        # Each refinement roughly squares the error until precision-bound.
        assert trace[0] < 2.0**-5
        assert trace[1] < trace[0] ** 2 * 8

    def test_iteration_count_scales_with_precision(self):
        assert iterations_needed(BINARY32) > iterations_needed(FP8_E4M3)

    def test_seed_accuracy(self):
        for v in (1.0, 1.37, 7.5, 100.0, 0.02, -3.3):
            b = SoftFloat.from_float(BINARY32, v)
            seed = reciprocal_seed(BINARY32, b)
            rel = abs(seed.to_float() - 1.0 / v) / abs(1.0 / v)
            assert rel < 2.0**-4, v

    def test_specials_fall_back(self):
        a = SoftFloat.from_float(BINARY16, 1.0)
        z = SoftFloat.zero(BINARY16)
        q, _ = newton_raphson_divide(a, z)
        assert q.is_inf()
        q, _ = newton_raphson_divide(z, z)
        assert q.is_nan()

"""Gate-level posit and float adders: exhaustive verification + cost table."""

from fractions import Fraction

import numpy as np
import pytest

from repro.floats import FP8_E4M3, SoftFloat
from repro.hwcost import adder_comparison, build_float_adder, build_posit_adder
from repro.posit import POSIT8, Posit, PositFormat
from repro.posit.format import STD_POSIT8


def _all_pairs(n=8):
    pa, pb = np.meshgrid(np.arange(1 << n), np.arange(1 << n))
    return pa.ravel(), pb.ravel()


class TestPositAdderCircuit:
    @pytest.mark.parametrize("fmt", [POSIT8, STD_POSIT8], ids=["es0", "es2"])
    def test_exhaustive_vs_software(self, fmt):
        circ = build_posit_adder(fmt)
        pa, pb = _all_pairs()
        out = circ.evaluate_vector(a=pa, b=pb)["s"]
        table = np.empty((256, 256), dtype=np.int64)
        for i in range(256):
            a = Posit(fmt, i)
            for j in range(256):
                table[i, j] = (a + Posit(fmt, j)).pattern
        assert np.array_equal(out, table[pa, pb])

    def test_small_format_exhaustive(self):
        fmt = PositFormat(6, 1)
        circ = build_posit_adder(fmt)
        pa, pb = _all_pairs(6)
        out = circ.evaluate_vector(a=pa, b=pb)["s"]
        for i in range(len(pa)):
            want = (Posit(fmt, int(pa[i])) + Posit(fmt, int(pb[i]))).pattern
            assert out[i] == want, (hex(int(pa[i])), hex(int(pb[i])))

    def test_subtraction_is_negate_then_add(self):
        # The paper: "negation with 2's complement also works without
        # exception" — a subtractor is the adder plus an input negation.
        circ = build_posit_adder(POSIT8)
        for pa, pb in [(0x55, 0x13), (0x20, 0x60), (0x81, 0x7F), (0x40, 0x40)]:
            nb = (-pb) & 0xFF
            got = circ.evaluate_buses(a=pa, b=nb)["s"]
            want = (Posit(POSIT8, pa) - Posit(POSIT8, pb)).pattern
            assert got == want

    def test_exact_cancellation_gives_zero(self):
        circ = build_posit_adder(POSIT8)
        for pa in (0x01, 0x40, 0x7F, 0x23):
            got = circ.evaluate_buses(a=pa, b=(-pa) & 0xFF)["s"]
            assert got == 0


class TestFloatAdderCircuit:
    def test_full_ieee_exhaustive(self):
        circ = build_float_adder(FP8_E4M3, full_ieee=True)
        pa, pb = _all_pairs()
        out = circ.evaluate_vector(a=pa, b=pb)["s"]
        for i in range(len(pa)):
            A = SoftFloat(FP8_E4M3, int(pa[i]))
            B = SoftFloat(FP8_E4M3, int(pb[i]))
            want = A.add(B)
            if want.is_nan():
                assert SoftFloat(FP8_E4M3, int(out[i])).is_nan()
            else:
                assert out[i] == want.pattern, (hex(int(pa[i])), hex(int(pb[i])))

    def test_normals_only_on_normal_domain(self):
        circ = build_float_adder(FP8_E4M3, full_ieee=False)
        pa, pb = _all_pairs()
        out = circ.evaluate_vector(a=pa, b=pb)["s"]
        mn = Fraction(FP8_E4M3.min_normal)
        checked = 0
        for i in range(len(pa)):
            A = SoftFloat(FP8_E4M3, int(pa[i]))
            B = SoftFloat(FP8_E4M3, int(pb[i]))
            if not (A.is_finite() and B.is_finite()):
                continue
            if A.is_subnormal() or B.is_subnormal():
                continue
            exact = A.to_fraction() + B.to_fraction()
            if exact != 0 and abs(exact) < mn:
                continue
            want = A.add(B)
            assert out[i] == want.pattern
            checked += 1
        assert checked > 45_000

    def test_signed_zero_rules(self):
        circ = build_float_adder(FP8_E4M3, full_ieee=True)
        pz, nz = 0, FP8_E4M3.sign_bit
        assert circ.evaluate_buses(a=pz, b=nz)["s"] == pz  # +0 + -0 = +0
        assert circ.evaluate_buses(a=nz, b=nz)["s"] == nz  # -0 + -0 = -0

    def test_inf_cases(self):
        circ = build_float_adder(FP8_E4M3, full_ieee=True)
        inf = FP8_E4M3.pattern_inf
        ninf = inf | FP8_E4M3.sign_bit
        one = SoftFloat.from_float(FP8_E4M3, 1.0).pattern
        assert circ.evaluate_buses(a=inf, b=one)["s"] == inf
        nan_out = circ.evaluate_buses(a=inf, b=ninf)["s"]
        assert SoftFloat(FP8_E4M3, nan_out).is_nan()


class TestAdderCostComparison:
    def test_table(self):
        rows = adder_comparison(POSIT8, FP8_E4M3)
        normal, posit, full = rows
        assert normal.design.endswith("_normal")
        assert posit.design.startswith("posit")
        # Direction checks (see EXPERIMENTS.md for the discussion).
        assert posit.gates > normal.gates
        assert full.gates > normal.gates
        assert all(r.sig_mult_gates == 0 for r in rows)

"""Unit and property tests for the shared bit utilities."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._bits import (
    bits_of,
    count_leading_signs,
    count_leading_zeros,
    from_bits,
    from_twos_complement,
    isqrt_rem,
    mask,
    round_to_nearest_even,
    shift_right_sticky,
    to_twos_complement,
)


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_small(self):
        assert mask(1) == 1
        assert mask(8) == 0xFF

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestBitsOf:
    def test_msb_first(self):
        assert bits_of(0b1010, 4) == [1, 0, 1, 0]

    def test_round_trip(self):
        assert from_bits(bits_of(0xAB, 8)) == 0xAB

    @given(st.integers(min_value=0, max_value=2**20 - 1))
    def test_round_trip_property(self, v):
        assert from_bits(bits_of(v, 20)) == v


class TestTwosComplement:
    @given(st.integers(min_value=-(2**15), max_value=2**15 - 1))
    def test_round_trip(self, v):
        assert from_twos_complement(to_twos_complement(v, 16), 16) == v

    def test_negative_pattern(self):
        assert to_twos_complement(-5, 8) == 0b11111011  # the paper's -5 example

    def test_overflow_raises(self):
        with pytest.raises(OverflowError):
            to_twos_complement(128, 8)
        with pytest.raises(OverflowError):
            to_twos_complement(-129, 8)

    def test_negation_is_complement_plus_one(self):
        for v in range(-128, 128):
            if v == -128:
                continue
            p = to_twos_complement(v, 8)
            n = to_twos_complement(-v, 8)
            assert n == ((~p + 1) & 0xFF)


class TestLeadingCounts:
    def test_clz(self):
        assert count_leading_zeros(0, 8) == 8
        assert count_leading_zeros(1, 8) == 7
        assert count_leading_zeros(0x80, 8) == 0

    def test_cls_ones(self):
        assert count_leading_signs(0b11100000, 8) == 3

    def test_cls_zeros(self):
        assert count_leading_signs(0b00010000, 8) == 3

    def test_cls_all(self):
        assert count_leading_signs(0, 8) == 8
        assert count_leading_signs(0xFF, 8) == 8

    @given(st.integers(min_value=0, max_value=255))
    def test_cls_matches_definition(self, v):
        bits = bits_of(v, 8)
        run = 0
        for b in bits:
            if b == bits[0]:
                run += 1
            else:
                break
        assert count_leading_signs(v, 8) == run


class TestIsqrt:
    @given(st.integers(min_value=0, max_value=10**12))
    def test_invariant(self, v):
        s, r = isqrt_rem(v)
        assert s * s + r == v
        assert 0 <= r <= 2 * s

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            isqrt_rem(-1)


class TestShiftSticky:
    def test_exact_shift(self):
        assert shift_right_sticky(0b1000, 3) == (1, 0)

    def test_sticky_set(self):
        assert shift_right_sticky(0b1001, 3) == (1, 1)

    def test_left_shift(self):
        assert shift_right_sticky(3, -2) == (12, 0)

    def test_all_shifted_out(self):
        assert shift_right_sticky(7, 10) == (0, 1)
        assert shift_right_sticky(0, 10) == (0, 0)

    @given(st.integers(min_value=0, max_value=2**40), st.integers(min_value=0, max_value=48))
    def test_value_preserved(self, v, k):
        shifted, sticky = shift_right_sticky(v, k)
        assert shifted == v >> k
        assert sticky == int(v & ((1 << k) - 1) != 0)


class TestRNE:
    def test_ties_to_even(self):
        assert round_to_nearest_even(0b101, 1) == 0b10  # 2.5 -> 2
        assert round_to_nearest_even(0b111, 1) == 0b100  # 3.5 -> 4

    def test_above_half_rounds_up(self):
        assert round_to_nearest_even(0b1011, 2) == 0b11

    def test_below_half_rounds_down(self):
        assert round_to_nearest_even(0b1001, 2) == 0b10

    @given(st.integers(min_value=0, max_value=2**30), st.integers(min_value=1, max_value=20))
    def test_error_at_most_half_ulp(self, v, cut):
        r = round_to_nearest_even(v, cut)
        assert abs(r * (1 << cut) - v) <= (1 << cut) // 2

"""Correctness of SoftFloat arithmetic.

numpy's float16/float32 implementations serve as the hardware oracle: every
operation must be bit-exact against them, including subnormals, signed
zeros, infinities and overflow behaviour.
"""

import math

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.floats import (
    BFLOAT16,
    BINARY16,
    BINARY32,
    FP8_E4M3,
    RoundingMode,
    SoftFloat,
)

patterns16 = st.integers(min_value=0, max_value=0xFFFF)


def _np16(pattern: int) -> np.float16:
    return np.uint16(pattern).view(np.float16)


def _assert_matches(got: SoftFloat, ref) -> None:
    if math.isnan(float(ref)):
        assert got.is_nan()
    else:
        assert got.pattern == int(np.asarray(ref).view(np.uint16)), (
            got.to_float(),
            float(ref),
        )


class TestVsNumpyFloat16:
    @given(patterns16, patterns16)
    def test_add(self, pa, pb):
        with np.errstate(all="ignore"):
            ref = _np16(pa) + _np16(pb)
        _assert_matches(SoftFloat(BINARY16, pa) + SoftFloat(BINARY16, pb), ref)

    @given(patterns16, patterns16)
    def test_sub(self, pa, pb):
        with np.errstate(all="ignore"):
            ref = _np16(pa) - _np16(pb)
        _assert_matches(SoftFloat(BINARY16, pa) - SoftFloat(BINARY16, pb), ref)

    @given(patterns16, patterns16)
    def test_mul(self, pa, pb):
        with np.errstate(all="ignore"):
            ref = _np16(pa) * _np16(pb)
        _assert_matches(SoftFloat(BINARY16, pa) * SoftFloat(BINARY16, pb), ref)

    @given(patterns16, patterns16)
    def test_div(self, pa, pb):
        with np.errstate(all="ignore"):
            ref = _np16(pa) / _np16(pb)
        _assert_matches(SoftFloat(BINARY16, pa) / SoftFloat(BINARY16, pb), ref)

    @given(patterns16)
    def test_sqrt(self, pa):
        with np.errstate(all="ignore"):
            ref = np.sqrt(_np16(pa))
        _assert_matches(SoftFloat(BINARY16, pa).sqrt(), ref)

    @given(patterns16)
    def test_float_round_trip(self, pa):
        sf = SoftFloat(BINARY16, pa)
        back = SoftFloat.from_float(BINARY16, sf.to_float())
        if sf.is_nan():
            assert back.is_nan()
        else:
            assert back.pattern == pa


class TestSpecialCases:
    def test_inf_minus_inf_is_nan(self):
        inf = SoftFloat.inf(BINARY16)
        assert (inf - inf).is_nan()

    def test_inf_plus_inf(self):
        inf = SoftFloat.inf(BINARY16)
        assert (inf + inf).is_inf()
        assert (inf + inf).sign == 0

    def test_zero_times_inf_is_nan(self):
        z = SoftFloat.zero(BINARY16)
        assert (z * SoftFloat.inf(BINARY16)).is_nan()

    def test_divide_by_zero_is_inf(self):
        one = SoftFloat.from_float(BINARY16, 1.0)
        r = one / SoftFloat.zero(BINARY16)
        assert r.is_inf() and r.sign == 0

    def test_negative_divide_by_zero(self):
        one = SoftFloat.from_float(BINARY16, -1.0)
        r = one / SoftFloat.zero(BINARY16)
        assert r.is_inf() and r.sign == 1

    def test_zero_div_zero_is_nan(self):
        z = SoftFloat.zero(BINARY16)
        assert (z / z).is_nan()

    def test_sqrt_of_negative_is_nan(self):
        assert SoftFloat.from_float(BINARY16, -4.0).sqrt().is_nan()

    def test_sqrt_of_negative_zero_is_negative_zero(self):
        nz = SoftFloat.zero(BINARY16, sign=1)
        r = nz.sqrt()
        assert r.is_zero() and r.sign == 1

    def test_nan_propagates(self):
        nan = SoftFloat.nan(BINARY16)
        one = SoftFloat.from_float(BINARY16, 1.0)
        for op in ("add", "sub", "mul", "div"):
            assert getattr(nan, op)(one).is_nan()
            assert getattr(one, op)(nan).is_nan()

    def test_signed_zero_sum(self):
        pz = SoftFloat.zero(BINARY16, 0)
        nz = SoftFloat.zero(BINARY16, 1)
        assert (pz + nz).sign == 0  # RNE: +0
        assert (nz + nz).sign == 1  # -0 + -0 = -0
        assert pz.add(nz, RoundingMode.TOWARD_NEGATIVE).sign == 1

    def test_exact_cancellation_sign(self):
        one = SoftFloat.from_float(BINARY16, 1.0)
        r = one - one
        assert r.is_zero() and r.sign == 0
        r = one.sub(one, RoundingMode.TOWARD_NEGATIVE)
        assert r.is_zero() and r.sign == 1

    def test_overflow_to_inf(self):
        big = SoftFloat.max_finite(BINARY16)
        assert (big + big).is_inf()

    def test_overflow_saturates_toward_zero(self):
        big = SoftFloat.max_finite(BINARY16)
        r = big.add(big, RoundingMode.TOWARD_ZERO)
        assert r.pattern == BINARY16.pattern_max_finite

    def test_underflow_to_zero(self):
        tiny = SoftFloat.min_subnormal(BINARY16)
        half = SoftFloat.from_float(BINARY16, 0.5)
        r = tiny * half  # 2^-25 rounds to zero under RNE (tie to even)
        assert r.is_zero()

    def test_subnormal_arithmetic_exact(self):
        tiny = SoftFloat.min_subnormal(BINARY16)
        two = SoftFloat.from_float(BINARY16, 2.0)
        assert (tiny * two).pattern == 2


class TestRoundingModes:
    def test_directed_rounding_brackets_rne(self):
        a = SoftFloat.from_float(BINARY16, 1.0)
        b = SoftFloat.from_float(BINARY16, 3.0)
        down = a.div(b, RoundingMode.TOWARD_NEGATIVE)
        up = a.div(b, RoundingMode.TOWARD_POSITIVE)
        near = a.div(b, RoundingMode.NEAREST_EVEN)
        assert down.to_float() < up.to_float()
        assert up.pattern - down.pattern == 1
        assert near.pattern in (down.pattern, up.pattern)

    def test_rtz_truncates_both_signs(self):
        a = SoftFloat.from_float(BINARY16, 1.0)
        b = SoftFloat.from_float(BINARY16, 3.0)
        pos = a.div(b, RoundingMode.TOWARD_ZERO)
        neg = a.negate().div(b, RoundingMode.TOWARD_ZERO)
        assert abs(pos.to_float()) == abs(neg.to_float())
        assert abs(pos.to_float()) < 1 / 3

    @given(patterns16, patterns16)
    def test_rna_vs_rne_differ_at_most_one_ulp(self, pa, pb):
        a, b = SoftFloat(BINARY16, pa), SoftFloat(BINARY16, pb)
        rne = a.add(b, RoundingMode.NEAREST_EVEN)
        rna = a.add(b, RoundingMode.NEAREST_AWAY)
        if rne.is_nan() or rna.is_nan():
            assert rne.is_nan() and rna.is_nan()
        elif rne.is_finite() and rna.is_finite():
            assert abs(rne.pattern - rna.pattern) <= 1


class TestFMA:
    def test_fma_single_rounding(self):
        # a = 1 + 2^-10, b = 1 - 2^-11: a*b = 1 + 2^-11 - 2^-21, which RNE
        # rounds to exactly 1.0 at binary16 precision.  The fused form keeps
        # the full product and returns 2^-11 - 2^-21 (representable exactly).
        a = SoftFloat(BINARY16, 0x3C01)
        b = SoftFloat(BINARY16, 0x3BFF)
        c = SoftFloat.from_float(BINARY16, -1.0)
        fused = a.fma(b, c)
        unfused = (a * b) + c
        assert fused.to_float() == 2.0**-11 - 2.0**-21
        assert unfused.to_float() == 0.0  # a*b rounded to exactly 1.0 first

    def test_fma_matches_exact_rational_binary32(self):
        from fractions import Fraction

        rng = np.random.default_rng(7)
        for _ in range(200):
            af, bf, cf = (float(np.float32(x)) for x in rng.normal(size=3))
            a = SoftFloat.from_float(BINARY32, af)
            b = SoftFloat.from_float(BINARY32, bf)
            c = SoftFloat.from_float(BINARY32, cf)
            got = a.fma(b, c).pattern
            exact = Fraction(af) * Fraction(bf) + Fraction(cf)
            want = SoftFloat.from_fraction(BINARY32, exact).pattern
            assert got == want

    def test_fma_infinity_cases(self):
        inf = SoftFloat.inf(BINARY16)
        one = SoftFloat.from_float(BINARY16, 1.0)
        zero = SoftFloat.zero(BINARY16)
        assert inf.fma(zero, one).is_nan()
        assert inf.fma(one, inf.negate()).is_nan()
        assert one.fma(one, inf).is_inf()


class TestConversions:
    @given(patterns16)
    def test_widen_then_narrow_is_identity(self, pa):
        sf = SoftFloat(BINARY16, pa)
        wide = sf.convert(BINARY32)
        back = wide.convert(BINARY16)
        if sf.is_nan():
            assert back.is_nan()
        else:
            assert back.pattern == pa

    def test_bfloat16_conversion_truncates_binary32(self):
        # Rounding binary32 -> bfloat16 is dropping 16 fraction bits with RNE.
        v = SoftFloat.from_float(BINARY32, math.pi)
        b = v.convert(BFLOAT16)
        # numpy has no bfloat16; verify against manual RNE on the pattern.
        pat32 = v.pattern
        rounded = (pat32 + 0x7FFF + ((pat32 >> 16) & 1)) >> 16
        assert b.pattern == rounded

    def test_fp8_small_format_roundtrip(self):
        for pat in range(1 << FP8_E4M3.width):
            sf = SoftFloat(FP8_E4M3, pat)
            if sf.is_nan():
                continue
            back = SoftFloat.from_float(FP8_E4M3, sf.to_float())
            assert back.pattern == pat

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_from_fraction_agrees_with_from_float(self, x):
        from fractions import Fraction

        a = SoftFloat.from_float(BINARY16, x)
        b = SoftFloat.from_fraction(BINARY16, Fraction(x))
        if x == 0.0:
            # Fraction cannot carry the sign of -0.0; values agree, signs may not.
            assert b.is_zero() and a.is_zero()
        else:
            assert a.pattern == b.pattern

"""Chaos suite: graceful degradation under crashes, stalls and bit flips.

The CI ``chaos`` job runs this file (plus the parallel suite) with failure
injection turned up via environment variables::

    REPRO_CHAOS_CRASH_RATE=0.3 REPRO_CHAOS_LUT_RATE=0.01 \
        pytest tests/test_chaos.py tests/test_engine_parallel.py

The invariant under test is that injected infrastructure failures (worker
crashes, slowdowns) never change the numerics — every chunk is retried,
the pool restarted, or the chunk recomputed in-process with identical
math — while injected *data* corruption (LUT / activation bit flips) stays
bit-deterministic under its seed.  Rates default to mild values so the
file is also meaningful in a plain local run.
"""

import os

import numpy as np

from repro.engine import (
    BatchedRunner,
    ChaosPlan,
    FaultPlan,
    KernelRegistry,
    ParallelRunner,
    PositBackend,
)
from repro.posit import POSIT8

CRASH_RATE = float(os.environ.get("REPRO_CHAOS_CRASH_RATE", "0.25"))
SLOW_RATE = float(os.environ.get("REPRO_CHAOS_SLOW_RATE", "0.0"))
LUT_RATE = float(os.environ.get("REPRO_CHAOS_LUT_RATE", "0.01"))
SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

CAUSES = {"crash", "timeout", "retry_exhausted"}


class TinyModel:
    """Picklable float model: y = x @ w (deterministic per seed)."""

    def __init__(self, seed=0):
        rng = np.random.default_rng(seed)
        self.w = rng.normal(size=(6, 3))

    def forward(self, x):
        return x @ self.w


def _chaos():
    return ChaosPlan(seed=SEED, crash_rate=CRASH_RATE, slow_rate=SLOW_RATE, slow_s=0.1)


class TestParallelUnderChaos:
    def test_results_survive_injected_crashes(self, tmp_path):
        x = np.random.default_rng(SEED).normal(size=(24, 6))
        with ParallelRunner(
            TinyModel(seed=1),
            workers=2,
            batch_size=4,
            cache_dir=tmp_path,
            chaos=_chaos(),
            task_retries=1,
            pool_restarts=2,
        ) as runner:
            y = runner.run(x)
            stats = runner.stats()
        assert np.array_equal(y, TinyModel(seed=1).forward(x))
        assert sum(stats["fallback_causes"].values()) == stats["fallbacks"]
        assert set(stats["fallback_causes"]) <= CAUSES

    def test_chaos_plus_activation_faults_stay_bit_identical(self, tmp_path):
        """Crashes must not perturb *where* the seeded bit flips land."""
        plan = FaultPlan(seed=SEED + 1, activation_rate=0.05)
        x = np.random.default_rng(SEED + 1).normal(size=(24, 6))
        want = BatchedRunner(TinyModel(seed=2), batch_size=4, fault_plan=plan).run(x)
        with ParallelRunner(
            TinyModel(seed=2),
            workers=2,
            batch_size=4,
            cache_dir=tmp_path,
            chaos=_chaos(),
            fault_plan=plan,
            task_retries=1,
            pool_restarts=2,
        ) as runner:
            got = runner.run(x)
        assert np.array_equal(got, want, equal_nan=True)

    def test_repeated_runs_degrade_gracefully(self, tmp_path):
        """Even once the restart budget is spent, runs keep answering."""
        x = np.random.default_rng(SEED + 2).normal(size=(16, 6))
        with ParallelRunner(
            TinyModel(seed=3),
            workers=2,
            batch_size=4,
            cache_dir=tmp_path,
            chaos=ChaosPlan(seed=SEED, crash_rate=max(CRASH_RATE, 0.5)),
            task_retries=1,
            pool_restarts=1,
        ) as runner:
            for _ in range(3):
                y = runner.run(x)
                assert np.array_equal(y, TinyModel(seed=3).forward(x))
            stats = runner.stats()
        assert stats["pool_restarts"] <= 1
        assert set(stats["fallback_causes"]) <= CAUSES


class TestLUTFlipsUnderChaos:
    def test_lut_corruption_is_deterministic(self):
        plan = FaultPlan(seed=SEED, lut_rate=LUT_RATE)
        rng = np.random.default_rng(SEED)
        a = rng.integers(0, 256, size=1024).astype(np.uint8)
        b = rng.integers(0, 256, size=1024).astype(np.uint8)
        be1 = PositBackend(POSIT8, strategy="pairwise", registry=KernelRegistry(fault_plan=plan))
        be2 = PositBackend(POSIT8, strategy="pairwise", registry=KernelRegistry(fault_plan=plan))
        assert np.array_equal(be1.add(a, b), be2.add(a, b))
        assert np.array_equal(be1.mul(a, b), be2.mul(a, b))

    def test_corruption_rate_tracks_configured_rate(self):
        plan = FaultPlan(seed=SEED, lut_rate=LUT_RATE)
        clean = PositBackend(POSIT8, strategy="pairwise", registry=KernelRegistry())
        faulty = PositBackend(
            POSIT8, strategy="pairwise", registry=KernelRegistry(fault_plan=plan)
        )
        a, bb = map(np.ravel, np.meshgrid(np.arange(256), np.arange(256)))
        a, bb = a.astype(np.uint8), bb.astype(np.uint8)
        frac = np.mean(faulty.add(a, bb) != clean.add(a, bb))
        if LUT_RATE == 0.0:
            assert frac == 0.0
        else:
            # One flip per hit entry of the 256x256 table; allow generous
            # slack for the binomial draw.
            assert 0.1 * LUT_RATE < frac < 10 * LUT_RATE

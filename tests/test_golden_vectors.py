"""Replay the checked-in golden vectors against scalar models and engine.

The ``.npz`` files in ``tests/golden/`` were produced by
``tests/golden/generate.py`` from the bit-exact scalar models.  These tests
replay them against **both** implementations:

* scalar (:class:`repro.posit.Posit`, :class:`repro.floats.SoftFloat`) —
  detects semantic drift in the reference models themselves;
* vectorized (:class:`repro.engine` backends) — detects divergence of the
  fast path from the frozen reference behaviour.

Everything is compared bit-exactly.  If a golden replay fails, either the
numerics regressed (fix the code) or the semantics changed deliberately
(re-run the generator and justify the diff in review).
"""

import math
import pathlib

import numpy as np
import pytest

from repro.engine.posit_backend import PositBackend
from repro.engine.softfloat_backend import SoftFloatBackend
from repro.floats import FP8_E4M3, FP8_E5M2, SoftFloat
from repro.posit import POSIT8, Posit

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"

FP8_FORMATS = {
    "fp8_e4m3": FP8_E4M3,
    "fp8_e5m2": FP8_E5M2,
}


def _load(name):
    path = GOLDEN_DIR / f"{name}.npz"
    assert path.exists(), (
        f"missing golden file {path}; regenerate with "
        f"'PYTHONPATH=src python tests/golden/generate.py'"
    )
    return np.load(path)


def assert_bitexact(got, want, label, show=10):
    """Bit-exact comparison that names the diverging vector indices.

    ``np.array_equal`` alone fails with an opaque boolean; this reports the
    first ``show`` flat indices where the replay diverged, with both
    values, so a golden failure pinpoints the offending operands.  NaN ==
    NaN for float arrays (golden NaN patterns decode to NaN by design).
    """
    got, want = np.asarray(got), np.asarray(want)
    assert got.shape == want.shape, (
        f"{label}: shape mismatch {got.shape} vs golden {want.shape}"
    )
    if got.dtype.kind == "f" or want.dtype.kind == "f":
        mismatch = ~((got == want) | (np.isnan(got) & np.isnan(want)))
    else:
        mismatch = got != want
    bad = np.flatnonzero(mismatch)
    if bad.size == 0:
        return
    detail = ", ".join(
        f"[{i}] got={got.ravel()[i]!r} want={want.ravel()[i]!r}"
        for i in bad[:show]
    )
    raise AssertionError(
        f"{label}: {bad.size}/{got.size} vectors diverged from golden; "
        f"first {min(show, bad.size)}: {detail}"
    )


@pytest.fixture(scope="module")
def posit8():
    return _load("posit8")


class TestPosit8Goldens:
    def test_value_table(self, posit8):
        want = posit8["values"]
        got = np.array(
            [
                math.nan if Posit(POSIT8, p).is_nar() else Posit(POSIT8, p).to_float()
                for p in range(256)
            ]
        )
        assert_bitexact(got, want, "posit8 value table")

    def test_scalar_add_mul_full_square(self, posit8):
        add, mul = posit8["add"], posit8["mul"]
        posits = [Posit(POSIT8, p) for p in range(256)]
        # Sample the full 256x256 square on a fixed stride grid plus the
        # special rows; exhaustive scalar replay is done by the engine test
        # below at numpy speed.
        idx = sorted(set(range(0, 256, 7)) | {0, 1, 127, 128, 129, 255})
        for i in idx:
            for j in idx:
                assert (posits[i] + posits[j]).pattern == add[i, j]
                assert (posits[i] * posits[j]).pattern == mul[i, j]

    def test_engine_add_mul_exhaustive(self, posit8):
        backend = PositBackend(POSIT8, strategy="pairwise")
        a, b = map(np.ravel, np.meshgrid(np.arange(256), np.arange(256)))
        assert_bitexact(backend.add(a, b), posit8["add"][a, b], "posit8 pairwise add")
        assert_bitexact(backend.mul(a, b), posit8["mul"][a, b], "posit8 pairwise mul")

    def test_engine_via_float_exhaustive(self, posit8):
        backend = PositBackend(POSIT8, strategy="via-float")
        a, b = map(np.ravel, np.meshgrid(np.arange(256), np.arange(256)))
        assert_bitexact(backend.add(a, b), posit8["add"][a, b], "posit8 via-float add")
        assert_bitexact(backend.mul(a, b), posit8["mul"][a, b], "posit8 via-float mul")

    def test_encode(self, posit8):
        x = posit8["encode_in"]
        want = posit8["encode_out"]
        got_scalar = np.array([Posit.from_float(POSIT8, float(v)).pattern for v in x])
        assert_bitexact(got_scalar, want, "posit8 scalar encode")
        backend = PositBackend(POSIT8)
        assert_bitexact(backend.encode(x), want, "posit8 engine encode")


@pytest.mark.parametrize("name", sorted(FP8_FORMATS))
class TestFP8Goldens:
    def test_value_table(self, name):
        fmt, g = FP8_FORMATS[name], _load(name)
        want = g["values"]
        got = np.array([SoftFloat(fmt, p).to_float() for p in range(256)])
        assert_bitexact(got, want, f"{name} value table")
        real = ~np.isnan(want)
        assert np.array_equal(np.signbit(got[real]), np.signbit(want[real]))

    def test_engine_add_mul_exhaustive(self, name):
        fmt, g = FP8_FORMATS[name], _load(name)
        a, b = map(np.ravel, np.meshgrid(np.arange(256), np.arange(256)))
        for strategy in ("pairwise", "via-float"):
            backend = SoftFloatBackend(fmt, strategy=strategy)
            assert_bitexact(backend.add(a, b), g["add"][a, b], f"{name} {strategy} add")
            assert_bitexact(backend.mul(a, b), g["mul"][a, b], f"{name} {strategy} mul")

    def test_scalar_add_mul_sampled(self, name):
        fmt, g = FP8_FORMATS[name], _load(name)
        floats = [SoftFloat(fmt, p) for p in range(256)]
        idx = sorted(set(range(0, 256, 11)) | {0, 1, 127, 128, 129, 255})
        for i in idx:
            for j in idx:
                assert floats[i].add(floats[j]).pattern == g["add"][i, j]
                assert floats[i].mul(floats[j]).pattern == g["mul"][i, j]

    def test_encode(self, name):
        fmt, g = FP8_FORMATS[name], _load(name)
        x, want = g["encode_in"], g["encode_out"]
        got_scalar = np.array([SoftFloat.from_float(fmt, float(v)).pattern for v in x])
        assert_bitexact(got_scalar, want, f"{name} scalar encode")
        backend = SoftFloatBackend(fmt)
        assert_bitexact(backend.encode(x), want, f"{name} engine encode")


class TestDivergenceReporting:
    """The replay helper itself: failures must name the diverging indices."""

    def test_reports_diverging_indices(self):
        want = np.arange(10, dtype=np.uint8)
        got = want.copy()
        got[3] = 99
        got[7] = 42
        with pytest.raises(AssertionError) as exc:
            assert_bitexact(got, want, "demo")
        msg = str(exc.value)
        assert "demo" in msg
        assert "2/10" in msg
        assert "[3]" in msg and "[7]" in msg
        assert "99" in msg and "42" in msg

    def test_nan_matches_nan(self):
        a = np.array([1.0, np.nan, -np.inf])
        assert_bitexact(a, a.copy(), "nan-aware")

    def test_float_divergence_reported(self):
        want = np.array([1.0, np.nan, 2.0])
        got = np.array([1.0, np.nan, 2.5])
        with pytest.raises(AssertionError, match=r"\[2\]"):
            assert_bitexact(got, want, "float")

"""Gate-level netlist framework tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._bits import count_leading_signs, count_leading_zeros
from repro.circuits import (
    Circuit,
    alm_estimate,
    array_multiplier,
    barrel_shifter,
    carry_positions,
    conditional_negate,
    cost_report,
    equality_comparator,
    gate_cost,
    leading_sign_counter,
    leading_zero_counter,
    lut_cost,
    ripple_carry_adder,
    twos_complement,
)


class TestNetlistBasics:
    def test_gates_and_eval(self):
        c = Circuit("t")
        a, b = c.inputs("a", "b")
        c.outputs(x=c.xor(a, b), n=c.nand(a, b))
        out = c.evaluate(a=1, b=1)
        assert out == {"x": 0, "n": 0}

    def test_mux(self):
        c = Circuit("m")
        s, a, b = c.inputs("s", "a", "b")
        c.outputs(o=c.mux(s, a, b))
        assert c.evaluate(s=0, a=1, b=0)["o"] == 1
        assert c.evaluate(s=1, a=1, b=0)["o"] == 0

    def test_maj_is_carry(self):
        c = Circuit("maj")
        a, b, d = c.inputs("a", "b", "d")
        c.outputs(m=c.maj(a, b, d))
        for x in range(8):
            bits = [(x >> i) & 1 for i in range(3)]
            got = c.evaluate(a=bits[0], b=bits[1], d=bits[2])["m"]
            assert got == int(sum(bits) >= 2)

    def test_missing_input_raises(self):
        c = Circuit("t")
        a, b = c.inputs("a", "b")
        c.outputs(o=c.and_(a, b))
        with pytest.raises(KeyError):
            c.evaluate(a=1)

    def test_foreign_net_rejected(self):
        c1, c2 = Circuit("one"), Circuit("two")
        (a,) = c1.inputs("a")
        with pytest.raises(ValueError):
            c2.not_(a)

    def test_const_cached(self):
        c = Circuit("k")
        assert c.const(0) is c.const(0)
        assert c.const(1) is c.const(1)

    def test_depth(self):
        c = Circuit("d")
        a, b = c.inputs("a", "b")
        x = c.xor(a, b)
        y = c.and_(x, a)
        c.outputs(o=y)
        assert c.depth() == 2


class TestAdders:
    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
    def test_ripple_adder(self, x, y):
        c = Circuit("add8")
        a = c.input_bus("a", 8)
        b = c.input_bus("b", 8)
        s, cout = ripple_carry_adder(c, a, b)
        c.output_bus("s", s)
        c.outputs(cout=cout)
        out = c.evaluate_buses(a=x, b=y)
        assert out["s"] | (out["cout"] << 8) == x + y

    def test_adder_with_carry_in(self):
        c = Circuit("addc")
        a = c.input_bus("a", 4)
        b = c.input_bus("b", 4)
        (ci,) = c.inputs("ci")
        s, cout = ripple_carry_adder(c, a, b, ci)
        c.output_bus("s", s)
        c.outputs(cout=cout)
        out = c.evaluate_buses(a=7, b=8, ci=1)
        assert out["s"] | (out["cout"] << 4) == 16

    def test_adder_carry_chain_length(self):
        c = Circuit("add8")
        a = c.input_bus("a", 8)
        b = c.input_bus("b", 8)
        s, cout = ripple_carry_adder(c, a, b)
        c.output_bus("s", s)
        assert carry_positions(c) == 8  # one MAJ per bit position


class TestMultiplier:
    def test_exhaustive_4x4(self):
        c = Circuit("mul4")
        a = c.input_bus("a", 4)
        b = c.input_bus("b", 4)
        c.output_bus("p", array_multiplier(c, a, b))
        for x in range(16):
            for y in range(16):
                assert c.evaluate_buses(a=x, b=y)["p"] == x * y

    @given(st.integers(min_value=0, max_value=127), st.integers(min_value=0, max_value=31))
    def test_rectangular(self, x, y):
        c = Circuit("mul75")
        a = c.input_bus("a", 7)
        b = c.input_bus("b", 5)
        c.output_bus("p", array_multiplier(c, a, b))
        assert c.evaluate_buses(a=x, b=y)["p"] == x * y


class TestTwosComplementUnits:
    @given(st.integers(min_value=0, max_value=255))
    def test_negate(self, x):
        c = Circuit("neg")
        a = c.input_bus("a", 8)
        c.output_bus("n", twos_complement(c, a))
        assert c.evaluate_buses(a=x)["n"] == (-x) & 0xFF

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=1))
    def test_conditional_negate(self, x, neg):
        c = Circuit("cneg")
        a = c.input_bus("a", 8)
        (s,) = c.inputs("s")
        c.output_bus("o", conditional_negate(c, a, s))
        want = ((-x) & 0xFF) if neg else x
        assert c.evaluate_buses(a=x, s=neg)["o"] == want


class TestCounters:
    def test_lzc_exhaustive(self):
        c = Circuit("lzc")
        w = c.input_bus("w", 8)
        c.output_bus("n", leading_zero_counter(c, w))
        for x in range(256):
            assert c.evaluate_buses(w=x)["n"] == count_leading_zeros(x, 8)

    def test_lsc_exhaustive(self):
        c = Circuit("lsc")
        w = c.input_bus("w", 8)
        c.output_bus("n", leading_sign_counter(c, w))
        for x in range(256):
            assert c.evaluate_buses(w=x)["n"] == count_leading_signs(x, 8)


class TestShifter:
    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=7))
    def test_logical_right(self, x, k):
        c = Circuit("shr")
        w = c.input_bus("w", 8)
        amt = c.input_bus("s", 3)
        c.output_bus("o", barrel_shifter(c, w, amt))
        assert c.evaluate_buses(w=x, s=k)["o"] == x >> k

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=7))
    def test_arithmetic_right(self, x, k):
        c = Circuit("sar")
        w = c.input_bus("w", 8)
        amt = c.input_bus("s", 3)
        c.output_bus("o", barrel_shifter(c, w, amt, arithmetic=True))
        signed = x - 256 if x & 0x80 else x
        assert c.evaluate_buses(w=x, s=k)["o"] == (signed >> k) & 0xFF

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=7))
    def test_left(self, x, k):
        c = Circuit("shl")
        w = c.input_bus("w", 8)
        amt = c.input_bus("s", 3)
        c.output_bus("o", barrel_shifter(c, w, amt, left=True))
        assert c.evaluate_buses(w=x, s=k)["o"] == (x << k) & 0xFF


class TestComparators:
    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
    def test_equality(self, x, y):
        c = Circuit("eq")
        a = c.input_bus("a", 8)
        b = c.input_bus("b", 8)
        c.outputs(e=equality_comparator(c, a, b))
        assert c.evaluate_buses(a=x, b=y)["e"] == int(x == y)


class TestCostModels:
    def test_gate_cost_positive(self):
        c = Circuit("cost")
        a = c.input_bus("a", 4)
        b = c.input_bus("b", 4)
        c.output_bus("p", array_multiplier(c, a, b))
        assert gate_cost(c) > 0
        assert lut_cost(c) > 0
        assert alm_estimate(c) > 0

    def test_bigger_circuit_costs_more(self):
        costs = []
        for w in (4, 8):
            c = Circuit(f"mul{w}")
            a = c.input_bus("a", w)
            b = c.input_bus("b", w)
            c.output_bus("p", array_multiplier(c, a, b))
            costs.append((gate_cost(c), lut_cost(c)))
        assert costs[1][0] > costs[0][0]
        assert costs[1][1] > costs[0][1]

    def test_lut_cost_at_most_gate_count(self):
        c = Circuit("pack")
        a = c.input_bus("a", 6)
        b = c.input_bus("b", 6)
        s, _ = ripple_carry_adder(c, a, b)
        c.output_bus("s", s)
        # Clustering can only merge gates, never split them.
        assert lut_cost(c) <= sum(
            1 for g in c.gates if g.kind.value not in ("const0", "const1")
        )

    def test_cost_report_fields(self):
        c = Circuit("rpt")
        a = c.input_bus("a", 4)
        b = c.input_bus("b", 4)
        s, _ = ripple_carry_adder(c, a, b)
        c.output_bus("s", s)
        rpt = cost_report(c)
        assert rpt.name == "rpt"
        assert rpt.carry_positions == 4
        assert "xor" in rpt.by_kind


class TestVectorizedEvaluation:
    """Scalar and vectorized evaluation must agree on arbitrary circuits."""

    @staticmethod
    def _random_circuit(seed):
        import random

        rng = random.Random(seed)
        c = Circuit(f"fuzz{seed}")
        nets = list(c.inputs(*(f"i{k}" for k in range(rng.randint(2, 6)))))
        n_inputs = len(nets)
        for _ in range(rng.randint(3, 40)):
            kind = rng.choice(["and", "or", "xor", "nand", "nor", "xnor", "not", "maj", "mux"])
            if kind == "not":
                nets.append(c.not_(rng.choice(nets)))
            elif kind == "maj":
                nets.append(c.maj(*(rng.choice(nets) for _ in range(3))))
            elif kind == "mux":
                nets.append(c.mux(*(rng.choice(nets) for _ in range(3))))
            else:
                ins = [rng.choice(nets) for _ in range(rng.randint(2, 4))]
                method = {"and": "and_", "or": "or_"}.get(kind, kind)
                nets.append(getattr(c, method)(*ins))
        c.outputs(o=nets[-1], p=nets[len(nets) // 2])
        return c, n_inputs

    @pytest.mark.parametrize("seed", range(8))
    def test_scalar_matches_vector(self, seed):
        import numpy as np

        c, n_inputs = self._random_circuit(seed)
        cases = 1 << n_inputs
        arrays = {
            f"i{k}": np.array([(v >> k) & 1 for v in range(cases)]) for k in range(n_inputs)
        }
        vec = c.evaluate_vector(**arrays)
        for v in range(cases):
            scalar = c.evaluate(**{f"i{k}": (v >> k) & 1 for k in range(n_inputs)})
            assert vec["o"][v] == scalar["o"], (seed, v)
            assert vec["p"][v] == scalar["p"], (seed, v)

"""Approximate multiplier and characterization tests (Table II machinery)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.approx import (
    TABLE2_SET,
    BrokenArrayMultiplier,
    DRUMMultiplier,
    ExactMultiplier,
    MitchellLogMultiplier,
    ORCompressorMultiplier,
    TruncatedMultiplier,
    approx_conv2d,
    approx_matmul,
    characterize,
    energy_saving,
    signed_lut,
    table2,
)

operands = st.integers(min_value=0, max_value=255)


class TestExact:
    @given(operands, operands)
    def test_is_exact(self, a, b):
        assert int(ExactMultiplier()(a, b)) == a * b

    def test_zero_metrics(self):
        m = characterize(ExactMultiplier())
        assert m.mre_percent == 0.0
        assert m.mae == 0.0
        assert m.error_rate == 0.0


class TestDesignProperties:
    @given(operands, operands)
    def test_truncation_underestimates(self, a, b):
        assert int(TruncatedMultiplier(cut=5)(a, b)) <= a * b

    @given(operands, operands)
    def test_truncation_error_bounded(self, a, b):
        cut = 6
        got = int(TruncatedMultiplier(cut=cut)(a, b))
        # Worst case: all partial-product bits below the cut were ones.
        assert 0 <= a * b - got < (1 << cut) * 8

    @given(operands, operands)
    def test_broken_array_bounded(self, a, b):
        got = int(BrokenArrayMultiplier(break_col=7)(a, b))
        assert abs(got - a * b) < 1 << 10

    @given(operands, operands)
    def test_mitchell_exact_on_powers_of_two(self, a, b):
        m = MitchellLogMultiplier()
        pa, pb = 1 << (a % 8), 1 << (b % 8)
        assert int(m(pa, pb)) == pa * pb

    @given(operands, operands)
    def test_mitchell_never_overestimates_uncompensated(self, a, b):
        # Mitchell's error is one-sided (log interpolation is concave).
        got = int(MitchellLogMultiplier(compensate=False)(a, b))
        assert got <= a * b

    @given(operands, operands)
    def test_drum_small_operands_exact(self, a, b):
        m = DRUMMultiplier(k=4)
        sa, sb = a % 16, b % 16  # both fit in k bits: no truncation
        assert int(m(sa, sb)) == sa * sb

    @given(operands, operands)
    def test_orcomp_lower_bits_only(self, a, b):
        got = int(ORCompressorMultiplier(cut=8)(a, b))
        exact = a * b
        # High columns exact, so the error is bounded by the OR'd low part.
        assert abs(got - exact) < (1 << 8) * 8

    def test_zero_operand_gives_zero(self):
        for m in TABLE2_SET + [MitchellLogMultiplier(), ExactMultiplier()]:
            assert int(m(0, 137)) == 0
            assert int(m(137, 0)) == 0


class TestTable2Set:
    @pytest.fixture(scope="class")
    def rows(self):
        return table2()

    def test_ten_multipliers(self, rows):
        assert len(rows) == 10

    def test_sorted_by_mre(self, rows):
        mres = [r.mre_percent for r in rows]
        assert mres == sorted(mres)

    def test_mre_range_covers_paper(self, rows):
        # Paper: 0.03% .. 19.45%.  Ours: ~0.08% .. ~25%.
        assert rows[0].mre_percent < 0.5
        assert rows[-1].mre_percent > 15.0

    def test_energy_savings_ladder(self, rows):
        # Energy saving grows (near-)monotonically with error, as in Table II.
        savings = [r.energy_saving_percent for r in rows]
        assert savings[0] < 10.0
        assert savings[-1] > 60.0
        # Allow the small documented dips of the diverse designs.
        violations = sum(1 for a, b in zip(savings, savings[1:]) if b < a)
        assert violations <= 2

    def test_mae_grows_with_mre_roughly(self, rows):
        assert rows[-1].mae > rows[0].mae * 50

    def test_all_names_unique(self, rows):
        names = [r.name for r in rows]
        assert len(set(names)) == len(names)


class TestEnergyModel:
    def test_exact_saves_nothing(self):
        assert energy_saving(ExactMultiplier()) == 0.0

    def test_deeper_truncation_saves_more(self):
        s = [energy_saving(TruncatedMultiplier(cut=c)) for c in range(2, 11)]
        assert s == sorted(s)

    def test_savings_in_unit_interval(self):
        for m in TABLE2_SET:
            assert 0.0 <= energy_saving(m) < 1.0


class TestSimulation:
    def test_signed_lut_symmetry(self):
        lut = signed_lut(TruncatedMultiplier(cut=6))
        a = np.arange(-128, 128)
        # The sign-magnitude envelope: lut = sign(a)*sign(b) * core(|a|,|b|).
        av, bv = np.meshgrid(a, a, indexing="ij")
        mag = TruncatedMultiplier(cut=6).multiply(np.abs(av), np.abs(bv))
        want = np.where((av < 0) ^ (bv < 0), -mag, mag)
        assert np.array_equal(lut, want)

    def test_exact_lut_matmul(self):
        rng = np.random.default_rng(1)
        lut = signed_lut(ExactMultiplier())
        a = rng.integers(-128, 128, size=(7, 33))
        b = rng.integers(-128, 128, size=(33, 5))
        assert np.array_equal(approx_matmul(a, b, lut), a @ b)

    def test_matmul_none_is_exact(self):
        rng = np.random.default_rng(2)
        a = rng.integers(-128, 128, size=(4, 9))
        b = rng.integers(-128, 128, size=(9, 3))
        assert np.array_equal(approx_matmul(a, b, None), a @ b)

    def test_chunking_invariant(self):
        rng = np.random.default_rng(3)
        lut = signed_lut(TruncatedMultiplier(cut=7))
        a = rng.integers(-128, 128, size=(5, 40))
        b = rng.integers(-128, 128, size=(40, 6))
        assert np.array_equal(
            approx_matmul(a, b, lut, chunk=7), approx_matmul(a, b, lut, chunk=64)
        )

    def test_exact_conv_matches_tensordot(self):
        rng = np.random.default_rng(4)
        lut = signed_lut(ExactMultiplier())
        x = rng.integers(-128, 128, size=(2, 3, 6, 6))
        w = rng.integers(-128, 128, size=(4, 3, 3, 3))
        got = approx_conv2d(x, w, lut, stride=1, pad=1)
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        want = np.zeros_like(got)
        for i in range(6):
            for j in range(6):
                patch = xp[:, :, i : i + 3, j : j + 3]
                want[:, :, i, j] = np.tensordot(patch, w, axes=([1, 2, 3], [1, 2, 3]))
        assert np.array_equal(got, want)

    def test_approx_matmul_uses_lut_values(self):
        # A constant-output "multiplier" should make matmul sum constants.
        class Weird(ExactMultiplier):
            def multiply(self, a, b):
                return np.full(np.broadcast(a, b).shape, 3, dtype=np.int64)

        lut = signed_lut(Weird())
        a = np.ones((2, 5), dtype=np.int64)
        b = np.ones((5, 2), dtype=np.int64)
        out = approx_matmul(a, b, lut)
        assert np.all(out == 15)

    def test_shape_mismatch_raises(self):
        lut = signed_lut(ExactMultiplier())
        with pytest.raises(ValueError):
            approx_matmul(np.ones((2, 3)), np.ones((4, 2)), lut)

"""Unit tests for the fog layer: names, content store, node, routing.

The properties that make the fog *trustworthy* rather than merely
plumbed: computation names are canonical and collision-honest, the
content store never serves bytes that fail their own digest, and the
topology's rendezvous routing is deterministic, cache-transparent and
metric-observable.
"""

import numpy as np
import pytest

from repro.engine import REGISTRY, array_digest
from repro.engine.observe import Metrics
from repro.engine.posit_backend import PositBackend
from repro.fog import (
    ComputationName,
    ContentStore,
    FogNode,
    FogTopology,
    FogUnavailable,
    NodeDown,
    name_request,
)
from repro.posit.format import PositFormat
from repro.serve.protocol import parse_request

pytestmark = pytest.mark.timeout(120)


def matmul_request(a, b, req_id="r", bits=8, es=2, tenant="t"):
    return parse_request(
        {
            "id": req_id,
            "workload": "posit_matmul",
            "tenant": tenant,
            "bits": bits,
            "es": es,
            "a": np.asarray(a).tolist(),
            "b": np.asarray(b).tolist(),
        }
    )


def direct_posit_matmul(a, b, bits=8, es=2):
    backend = PositBackend(PositFormat(bits, es), stable_contractions=True)
    return backend.decode(backend.matmul(backend.encode(a), backend.encode(b)))


# ----------------------------------------------------------------------
# Content naming
# ----------------------------------------------------------------------
class TestComputationName:
    def test_name_is_content_not_identity(self):
        """Same payload, different id/tenant -> same name; different
        payload -> different name."""
        a = [[1.0, 2.0]]
        b = [[3.0], [4.0]]
        n1 = name_request(matmul_request(a, b, req_id="x", tenant="t1"))
        n2 = name_request(matmul_request(a, b, req_id="y", tenant="t2"))
        assert n1 == n2 and n1.uri() == n2.uri()
        n3 = name_request(matmul_request([[1.0, 2.5]], b))
        assert n3 != n1
        n4 = name_request(matmul_request(a, b, bits=16))
        assert n4 != n1

    def test_uri_round_trips(self):
        req = matmul_request([[1.0, 2.0]], [[3.0], [4.0]])
        name = name_request(req)
        assert ComputationName.parse(name.uri()) == name
        assert name.uri().startswith("/fog/exec/posit_matmul/bits=8;es=2/sha256:")

    def test_all_workloads_nameable(self):
        nn = parse_request(
            {
                "id": "n",
                "workload": "nn_predict",
                "model": "kws1",
                "x": np.zeros((1, 31, 20)).tolist(),
            }
        )
        ax = parse_request(
            {
                "id": "a",
                "workload": "approx_matmul",
                "mult": "trunc6",
                "a": [[1, 2]],
                "b": [[3], [4]],
            }
        )
        assert "model=kws1" in name_request(nn).uri()
        assert "mult=trunc6" in name_request(ax).uri()
        # nn names hash the sample tensor; approx names hash both operands.
        assert len(name_request(nn).inputs) == 1
        assert len(name_request(ax).inputs) == 2

    def test_parse_rejects_malformed(self):
        for bad in (
            "/not/fog",
            "/fog/exec/op",
            "/fog/exec/op/bits=8/sha256:short",
            "/fog/exec/op/noequals/sha256:" + "0" * 64,
        ):
            with pytest.raises(ValueError):
                ComputationName.parse(bad)

    def test_digest_matches_registry_scheme(self):
        arr = np.arange(12, dtype=np.float64).reshape(3, 4)
        req = matmul_request(arr, np.ones((4, 2)))
        assert name_request(req).inputs[0] == array_digest(arr)


# ----------------------------------------------------------------------
# Content store
# ----------------------------------------------------------------------
class TestContentStore:
    def test_put_get_replays_exact_bytes(self):
        store = ContentStore()
        y = np.random.default_rng(0).normal(size=(4, 3))
        assert store.put("/fog/exec/x", y)
        got = store.get("/fog/exec/x")
        assert got.tobytes() == y.tobytes()
        assert not got.flags.writeable, "cached results must be immutable"
        assert store.hits == 1 and store.misses == 0

    def test_insertion_copies_source(self):
        store = ContentStore()
        y = np.ones((2, 2))
        store.put("n", y)
        y[:] = 7.0  # mutate the caller's array after insertion
        assert store.get("n").tobytes() == np.ones((2, 2)).tobytes()

    def test_lru_eviction_respects_budget(self):
        one_kb = np.zeros(128)  # 1024 bytes of float64
        store = ContentStore(capacity_bytes=3 * 1024)
        for i in range(4):
            store.put(f"n{i}", one_kb)
        assert len(store) == 3 and store.evictions == 1
        assert store.get("n0") is None, "oldest entry evicted"
        # Recency refresh: touching n1 makes n2 the next victim.
        store.get("n1")
        store.put("n4", one_kb)
        assert store.get("n2") is None and store.get("n1") is not None

    def test_oversized_result_not_cached(self):
        store = ContentStore(capacity_bytes=64)
        assert not store.put("big", np.zeros(1000))
        assert len(store) == 0

    def test_corrupt_entry_detected_never_served(self):
        store = ContentStore()
        store.put("n", np.ones(8))
        entry = store._entries["n"]
        tampered = np.array(entry.result)
        tampered[0] = -1.0  # bit rot after insertion
        entry.result = tampered
        assert store.get("n") is None
        assert store.integrity_failures == 1 and "n" not in store

    def test_clear_loses_entries_keeps_stats(self):
        store = ContentStore()
        store.put("n", np.ones(4))
        store.get("n")
        store.clear()
        assert len(store) == 0 and store.resident_bytes == 0
        assert store.hits == 1 and store.insertions == 1


# ----------------------------------------------------------------------
# Node behaviour
# ----------------------------------------------------------------------
class TestFogNode:
    def test_execute_caches_under_name(self):
        metrics = Metrics()
        req = matmul_request([[1.0, 2.0]], [[3.0], [4.0]])
        node = FogNode("n0", capabilities={req.batch_key()}, metrics=metrics)
        y = node.execute(req)
        assert y.tobytes() == direct_posit_matmul([[1.0, 2.0]], [[3.0], [4.0]]).tobytes()
        cached = node.lookup(name_request(req))
        assert cached is not None and cached.tobytes() == y.tobytes()
        assert metrics.counters["fog.node.n0.executions"] == 1
        assert metrics.counters["fog.node.n0.cache_hits"] == 1

    def test_cached_result_records_kernel_provenance(self):
        req = matmul_request([[1.0, 2.0]], [[3.0], [4.0]])
        node = FogNode("n0", capabilities={req.batch_key()}, metrics=Metrics())
        node.execute(req)
        kernel = node.store.kernel_digest(name_request(req).uri())
        # Execution makes the posit<8,2> codec tables resident, so the
        # entry names the exact kernel bytes it ran over.
        assert kernel == REGISTRY.content_digest(("posit", 8, 2, "values"))
        assert kernel is not None and len(kernel) == 64

    def test_dead_node_serves_nothing_and_loses_cache(self):
        req = matmul_request([[1.0, 2.0]], [[3.0], [4.0]])
        node = FogNode("n0", capabilities={req.batch_key()}, metrics=Metrics())
        node.execute(req)
        node.crash()
        with pytest.raises(NodeDown):
            node.lookup(name_request(req))
        with pytest.raises(NodeDown):
            node.execute(req)
        node.revive()
        assert node.lookup(name_request(req)) is None, "crash wipes the store"


# ----------------------------------------------------------------------
# Topology routing
# ----------------------------------------------------------------------
class TestFogTopologyRouting:
    def test_owner_assignment_deterministic_and_replicated(self):
        t1 = FogTopology(nodes=5, replicas=2, metrics=Metrics())
        t2 = FogTopology(nodes=5, replicas=2, metrics=Metrics())
        key = ("posit_matmul", 8, 2)
        assert [n.name for n in t1.owners(key)] == [n.name for n in t2.owners(key)]
        assert len(t1.owners(key)) == 2
        for owner in t1.owners(key):
            assert owner.serves(key)

    def test_forward_to_owner_and_cache_hit_scaling(self):
        metrics = Metrics()
        topo = FogTopology(nodes=4, replicas=1, metrics=metrics)
        rng = np.random.default_rng(5)
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 2))
        req = matmul_request(a, b)
        want = direct_posit_matmul(a, b).tobytes()
        # One full round-robin of ingress nodes: exactly one execution,
        # every later submission a cache hit (owner store or repopulated
        # reverse path), all byte-identical.
        results = [topo.submit(req) for _ in range(8)]
        assert all(r.tobytes() == want for r in results)
        total_execs = sum(n.executions for n in topo.nodes)
        assert total_execs == 1, "the name must execute once, then replay"
        assert topo.cache_hits == 7
        assert topo.forwards >= 1 and metrics.counters["fog.forwards"] >= 1

    def test_reverse_path_caching_repopulates_ingress(self):
        topo = FogTopology(nodes=3, replicas=1, metrics=Metrics())
        req = matmul_request([[1.0, 2.0]], [[3.0], [4.0]])
        name = name_request(req)
        owner = topo.owners(req.batch_key())[0]
        ingress = next(n for n in topo.nodes if n.name != owner.name)
        topo.submit(req, ingress=ingress.name)
        # The result rode the reverse path: the ingress now holds it too.
        assert ingress.store.get(name.uri()) is not None

    def test_explicit_ingress_local_execution_no_forward(self):
        topo = FogTopology(nodes=3, replicas=1, metrics=Metrics())
        req = matmul_request([[1.0, 2.0]], [[3.0], [4.0]])
        owner = topo.owners(req.batch_key())[0]
        topo.submit(req, ingress=owner.name)
        assert topo.forwards == 0 and owner.executions == 1

    def test_reroute_on_owner_loss_and_repopulation(self):
        metrics = Metrics()
        topo = FogTopology(nodes=4, replicas=2, metrics=metrics)
        rng = np.random.default_rng(6)
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(3, 2))
        req = matmul_request(a, b)
        want = direct_posit_matmul(a, b).tobytes()
        primary, secondary = topo.owners(req.batch_key())
        ingress = next(
            n for n in topo.nodes if n.name not in (primary.name, secondary.name)
        )
        assert topo.submit(req, ingress=ingress.name).tobytes() == want
        # Kill the primary (cache and all); the same interest reroutes to
        # the surviving replica and still answers bit-identically.
        topo.crash(primary.name)
        assert topo.submit(req, ingress=ingress.name).tobytes() == want
        # The ingress was repopulated on the first walk, so that submission
        # hit its local store; force a fresh walk from a cold node.
        cold = secondary if ingress.name != secondary.name else primary
        topo.node(ingress.name).store.clear()
        assert topo.submit(req, ingress=ingress.name).tobytes() == want
        assert topo.reroutes >= 1 and metrics.counters["fog.reroutes"] >= 1
        # Revive: the primary comes back empty and repopulates from traffic.
        topo.revive(primary.name)
        assert primary.store.stats()["entries"] == 0
        assert topo.submit(req, ingress=primary.name).tobytes() == want

    def test_all_owners_down_rejects_never_fabricates(self):
        topo = FogTopology(nodes=3, replicas=1, metrics=Metrics())
        req = matmul_request([[1.0, 2.0]], [[3.0], [4.0]])
        owner = topo.owners(req.batch_key())[0]
        topo.crash(owner.name)
        with pytest.raises(FogUnavailable):
            topo.submit(req)
        assert topo.unavailable == 1

    def test_distinct_formats_route_independently(self):
        topo = FogTopology(nodes=4, replicas=1, metrics=Metrics())
        rng = np.random.default_rng(7)
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(3, 2))
        for bits in (6, 8, 10):
            req = matmul_request(a, b, bits=bits)
            got = topo.submit(req)
            assert got.tobytes() == direct_posit_matmul(a, b, bits=bits).tobytes()
        assert len(topo.stats()["capabilities"]) == 3

    def test_stats_shape(self):
        topo = FogTopology(nodes=2, replicas=1, metrics=Metrics())
        req = matmul_request([[1.0]], [[1.0]])
        topo.submit(req)
        s = topo.stats()
        assert s["submitted"] == s["completed"] == 1
        assert set(s["nodes"]) == {"n0", "n1"}
        for node_stats in s["nodes"].values():
            assert {"alive", "executions", "store", "capabilities"} <= set(node_stats)


# ----------------------------------------------------------------------
# Serve integration: the FogExecutor adapter
# ----------------------------------------------------------------------
class TestFogExecutor:
    def test_matches_direct_engine_executor(self):
        from repro.fog import FogExecutor
        from repro.serve.executor import EngineExecutor

        rng = np.random.default_rng(17)
        reqs = [
            matmul_request(rng.normal(size=(2, 3)), rng.normal(size=(3, 2)), f"r{i}")
            for i in range(4)
        ]
        key = reqs[0].batch_key()
        fog = FogExecutor(nodes=3, metrics=Metrics())
        direct = EngineExecutor(metrics=Metrics())
        try:
            got = fog.execute(key, reqs)
            want = direct.execute(key, reqs)
            for g, w in zip(got, want):
                assert not isinstance(g, Exception), g
                assert g.tobytes() == w.tobytes()
            assert fog.stats()["executed"] == 4
            assert fog.stats()["fog"]["submitted"] == 4
        finally:
            fog.close()
            direct.close()

    def test_unavailable_resolves_not_raises(self):
        """Dead owners resolve a request to a coded error; batch mates
        keep their results — the resolve-don't-drop contract."""
        from repro.fog import FogExecutor
        from repro.serve.protocol import ProtocolError

        fog = FogExecutor(nodes=2, replicas=1, metrics=Metrics())
        try:
            req8 = matmul_request([[1.0, 2.0]], [[3.0], [4.0]], "a", bits=8)
            req6 = matmul_request([[1.0, 2.0]], [[3.0], [4.0]], "b", bits=6)
            # Kill only posit<6,2>'s owner (crash both if they coincide
            # with posit<8,2>'s — then revive the posit8 one).
            owner6 = fog.topology.owners(req6.batch_key())[0]
            owner8 = fog.topology.owners(req8.batch_key())[0]
            fog.topology.crash(owner6.name)
            if owner6.name == owner8.name:
                results = fog.execute(req6.batch_key(), [req6])
                assert isinstance(results[0], ProtocolError)
                assert results[0].code == "unavailable"
            else:
                results = fog.execute(req6.batch_key(), [req6]) + fog.execute(
                    req8.batch_key(), [req8]
                )
                assert isinstance(results[0], ProtocolError)
                assert results[0].code == "unavailable"
                assert not isinstance(results[1], Exception)
        finally:
            fog.close()

    def test_serve_config_fog_nodes_end_to_end(self):
        """A fog-backed server answers over real sockets, byte-for-byte."""
        import asyncio

        from repro.serve import ReproServer, ServeClient, ServeConfig

        async def go():
            rng = np.random.default_rng(19)
            a, b = rng.normal(size=(2, 3)), rng.normal(size=(3, 2))
            config = ServeConfig(fog_nodes=3, fog_replicas=1)
            async with ReproServer(config, metrics=Metrics()) as server:
                async with await ServeClient.connect(*server.address) as client:
                    first = await client.request(
                        workload="posit_matmul", a=a.tolist(), b=b.tolist()
                    )
                    again = await client.request(
                        workload="posit_matmul", a=a.tolist(), b=b.tolist()
                    )
                stats = server.describe()
            assert first["ok"], first
            assert first["result"] == direct_posit_matmul(a, b).tolist()
            assert again["result"] == first["result"]
            fog_stats = stats["executor"]["fog"]
            assert fog_stats["submitted"] == 2
            assert fog_stats["cache_hits"] >= 1, "repeat must replay from cache"

        asyncio.run(go())

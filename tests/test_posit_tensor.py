"""Vectorized posit codec and posit-quantized inference."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.posit import POSIT8, POSIT16, Posit, PositFormat
from repro.posit.tensor import PositCodec


_CODEC8 = PositCodec(POSIT8)


@pytest.fixture(scope="module")
def codec8():
    return _CODEC8


@pytest.fixture(scope="module")
def codec16():
    return PositCodec(POSIT16)


class TestCodec:
    def test_decode_matches_posit(self, codec8):
        for pattern in range(256):
            p = Posit(POSIT8, pattern)
            v = codec8.decode(np.array([pattern]))[0]
            if p.is_nar():
                assert np.isnan(v)
            else:
                assert v == p.to_float()

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_encode_matches_from_float(self, x):
        got = int(_CODEC8.encode(np.array([x]))[0])
        want = Posit.from_float(POSIT8, float(x)).pattern
        assert got == want, (x, hex(got), hex(want))

    def test_encode_special_values(self, codec16):
        codes = codec16.encode(np.array([0.0, np.nan, 1e300, -1e300, 1e-300]))
        assert codes[0] == 0
        assert codes[1] == POSIT16.pattern_nar
        assert codes[2] == POSIT16.pattern_maxpos
        assert codes[3] == (-POSIT16.pattern_maxpos) & 0xFFFF
        assert codes[4] == POSIT16.pattern_minpos  # no underflow to zero

    def test_round_trip_exact_on_grid(self, codec16):
        patterns = np.arange(0, 1 << 16, 97)
        patterns = patterns[patterns != POSIT16.pattern_nar]
        values = codec16.decode(patterns)
        assert np.array_equal(codec16.encode(values), patterns)

    def test_quantize_idempotent(self, codec8):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(64,))
        q = codec8.quantize(x)
        assert np.array_equal(codec8.quantize(q), q)

    def test_quantization_error_bounded_mid_range(self, codec16):
        rng = np.random.default_rng(1)
        x = rng.uniform(0.5, 2.0, size=500)
        # posit16 carries ~12 fraction bits near 1: relative error < 2^-12.
        assert codec16.quantization_error(x) < 2.0**-12

    def test_wide_formats_rejected(self):
        with pytest.raises(ValueError):
            PositCodec(PositFormat(24, 2))


class TestPositInference:
    @pytest.fixture(scope="class")
    def trained(self):
        from repro.datasets import synthetic_images
        from repro.nn import Sequential, ReLU, Dense, train
        from repro.nn.layers import Conv2D, Flatten

        x, y = synthetic_images(60, classes=4, size=8, seed=1)
        net = Sequential(
            [Conv2D(3, 6, 3, 1, 1), ReLU(), Flatten(), Dense(6 * 64, 4)],
            input_shape=(3, 8, 8),
        )
        train(net, x[:200], y[:200], epochs=6, batch=32, lr=2e-3, seed=0)
        return net, x, y

    def test_posit16_matches_float(self, trained):
        from repro.nn import evaluate_accuracy
        from repro.nn.posit_inference import PositQuantizedNetwork

        net, x, y = trained
        f_acc = evaluate_accuracy(net.predict, x[200:], y[200:])
        p_acc = evaluate_accuracy(
            PositQuantizedNetwork(net, POSIT16).predict, x[200:], y[200:]
        )
        assert p_acc >= f_acc - 0.02

    def test_posit8_close_to_float(self, trained):
        from repro.nn import evaluate_accuracy
        from repro.nn.posit_inference import PositQuantizedNetwork

        net, x, y = trained
        f_acc = evaluate_accuracy(net.predict, x[200:], y[200:])
        p_acc = evaluate_accuracy(
            PositQuantizedNetwork(net, POSIT8).predict, x[200:], y[200:]
        )
        assert p_acc >= f_acc - 0.15

    def test_weight_error_shrinks_with_width(self, trained):
        from repro.nn.posit_inference import PositQuantizedNetwork

        net, _, _ = trained
        e8 = PositQuantizedNetwork(net, POSIT8).weight_quantization_error()
        e16 = PositQuantizedNetwork(net, POSIT16).weight_quantization_error()
        assert e16 < e8 / 10


class TestPositTable8:
    @pytest.fixture(scope="class")
    def table(self):
        from repro.posit.tensor import PositTable8

        return PositTable8(POSIT8)

    def test_tables_match_model(self, table):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 256, 200)
        b = rng.integers(0, 256, 200)
        adds = table.add(a, b)
        muls = table.mul(a, b)
        for i in range(200):
            A, B = Posit(POSIT8, int(a[i])), Posit(POSIT8, int(b[i]))
            assert int(adds[i]) == (A + B).pattern
            assert int(muls[i]) == (A * B).pattern

    def test_commutative_tables(self, table):
        assert np.array_equal(table.add_table, table.add_table.T)
        assert np.array_equal(table.mul_table, table.mul_table.T)

    def test_quire_dot_at_least_as_accurate(self, table):
        rng = np.random.default_rng(4)
        xs = rng.normal(0, 1, 48)
        ys = rng.normal(0, 1, 48)
        a = table.codec.encode(xs).astype(np.uint8)
        b = table.codec.encode(ys).astype(np.uint8)
        exact = float(np.dot(table.codec.decode(a), table.codec.decode(b)))
        q = Posit(POSIT8, table.dot(a, b)).to_float()
        s = Posit(POSIT8, table.dot_sequential(a, b)).to_float()
        assert abs(q - exact) <= abs(s - exact) + 1e-12

    def test_wrong_width_rejected(self):
        from repro.posit.tensor import PositTable8

        with pytest.raises(ValueError):
            PositTable8(POSIT16)


class TestExplain:
    def test_positive(self):
        text = Posit(POSIT8, 0x50).explain()
        assert "regime  10" in text and "1.5" in text

    def test_nar_and_zero(self):
        assert "NaR" in Posit.nar(POSIT8).explain()
        assert "zero" in Posit.zero(POSIT8).explain()

    def test_negative_decodes_magnitude(self):
        text = Posit(POSIT8, (-0x50) & 0xFF).explain()
        assert "-1.5" in text

    def test_every_posit8_explains(self):
        for pattern in range(256):
            text = Posit(POSIT8, pattern).explain()
            assert text  # no crashes, always some description

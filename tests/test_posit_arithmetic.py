"""Posit arithmetic: exhaustive oracle checks on posit8, properties on larger formats."""

import bisect
import math
from fractions import Fraction

from hypothesis import given
from hypothesis import strategies as st

from repro.posit import POSIT8, POSIT16, POSIT32, Posit


def _build_oracle(fmt):
    """All representable values of a format, sorted, plus a nearest() closure."""
    entries = []
    for pattern in range(1 << fmt.nbits):
        p = Posit(fmt, pattern)
        if p.is_nar():
            continue
        entries.append((p.to_fraction(), pattern))
    entries.sort()
    keys = [v for v, _ in entries]

    def nearest(x: Fraction) -> int:
        if x == 0:
            return 0
        if x >= entries[-1][0]:
            return entries[-1][1]
        if x <= entries[0][0]:
            return entries[0][1]
        i = bisect.bisect_left(keys, x)
        if keys[i] == x:
            return entries[i][1]
        lo, hi = entries[i - 1], entries[i]
        # Posits never round a nonzero value to zero.
        candidates = [c for c in (lo, hi) if c[1] != 0]
        if len(candidates) == 1:
            return candidates[0][1]
        dlo, dhi = x - lo[0], hi[0] - x
        if dlo < dhi:
            return lo[1]
        if dhi < dlo:
            return hi[1]
        return lo[1] if lo[1] % 2 == 0 else hi[1]

    return entries, nearest


_ORACLE8, _NEAREST8 = _build_oracle(POSIT8)


def _high_precision_sqrt(x: Fraction, bits: int = 128) -> Fraction:
    """sqrt(x) to ~2**-bits relative error, via integer isqrt.

    Far more than enough to separate any posit8 value from a rounding
    midpoint (sqrt of a non-square rational is irrational, so exact ties
    cannot occur).
    """
    scaled = (x.numerator << (2 * bits)) // x.denominator
    return Fraction(math.isqrt(scaled), 1 << bits)

patterns8 = st.integers(min_value=0, max_value=255)
patterns16 = st.integers(min_value=0, max_value=0xFFFF)


class TestPosit8VsOracle:
    """Randomized-pair coverage here; the benchmark suite re-runs these
    exhaustively (65k pairs) as a correctness gate."""

    @given(patterns8, patterns8)
    def test_add(self, pa, pb):
        a, b = Posit(POSIT8, pa), Posit(POSIT8, pb)
        if a.is_nar() or b.is_nar():
            assert (a + b).is_nar()
            return
        assert (a + b).pattern == _NEAREST8(a.to_fraction() + b.to_fraction())

    @given(patterns8, patterns8)
    def test_mul(self, pa, pb):
        a, b = Posit(POSIT8, pa), Posit(POSIT8, pb)
        if a.is_nar() or b.is_nar():
            assert (a * b).is_nar()
            return
        assert (a * b).pattern == _NEAREST8(a.to_fraction() * b.to_fraction())

    @given(patterns8, patterns8)
    def test_div(self, pa, pb):
        a, b = Posit(POSIT8, pa), Posit(POSIT8, pb)
        if a.is_nar() or b.is_nar() or b.is_zero():
            assert (a / b).is_nar()
            return
        assert (a / b).pattern == _NEAREST8(a.to_fraction() / b.to_fraction())

    @given(patterns8)
    def test_sqrt(self, pa):
        a = Posit(POSIT8, pa)
        if a.is_nar() or (a.sign and not a.is_zero()):
            assert a.sqrt().is_nar()
            return
        if a.is_zero():
            assert a.sqrt().is_zero()
            return
        fa = a.to_fraction()
        assert a.sqrt().pattern == _NEAREST8(_high_precision_sqrt(fa))


class TestExceptionSemantics:
    def test_nar_propagates(self):
        nar = Posit.nar(POSIT16)
        one = Posit.one(POSIT16)
        for op in ("add", "sub", "mul", "div"):
            assert getattr(nar, op)(one).is_nar()
            assert getattr(one, op)(nar).is_nar()
        assert nar.sqrt().is_nar()
        assert nar.fma(one, one).is_nar()

    def test_divide_by_zero_is_nar(self):
        # No infinity in posits: x/0 -> NaR.
        assert (Posit.one(POSIT16) / Posit.zero(POSIT16)).is_nar()

    def test_sqrt_of_negative_is_nar(self):
        assert Posit.from_float(POSIT16, -1.0).sqrt().is_nar()

    def test_exactly_two_exception_values(self):
        # The paper: "With only two exception values ... both exceptions
        # have all 0 bits after the first bit."
        specials = [0, POSIT16.pattern_nar]
        for pattern in specials:
            assert pattern & (POSIT16.pattern_nar - 1) == 0

    def test_no_overflow(self):
        m = Posit.maxpos(POSIT16)
        assert (m * m).pattern == POSIT16.pattern_maxpos

    def test_no_underflow(self):
        tiny = Posit.minpos(POSIT16)
        assert (tiny * tiny).pattern == POSIT16.pattern_minpos


class TestAlgebraicProperties:
    @given(patterns16)
    def test_negation_involution(self, pa):
        a = Posit(POSIT16, pa)
        assert a.negate().negate().pattern == pa

    @given(patterns16)
    def test_negation_exact(self, pa):
        a = Posit(POSIT16, pa)
        if a.is_nar():
            assert a.negate().is_nar()
            return
        assert a.negate().to_fraction() == -a.to_fraction()

    @given(patterns16, patterns16)
    def test_addition_commutes(self, pa, pb):
        a, b = Posit(POSIT16, pa), Posit(POSIT16, pb)
        assert (a + b).pattern == (b + a).pattern

    @given(patterns16, patterns16)
    def test_multiplication_commutes(self, pa, pb):
        a, b = Posit(POSIT16, pa), Posit(POSIT16, pb)
        assert (a * b).pattern == (b * a).pattern

    @given(patterns16)
    def test_multiply_by_one_is_identity(self, pa):
        a = Posit(POSIT16, pa)
        assert (a * Posit.one(POSIT16)).pattern == pa

    @given(patterns16)
    def test_add_zero_is_identity(self, pa):
        a = Posit(POSIT16, pa)
        assert (a + Posit.zero(POSIT16)).pattern == pa

    @given(patterns16)
    def test_x_minus_x_is_zero(self, pa):
        a = Posit(POSIT16, pa)
        if a.is_nar():
            return
        assert (a - a).is_zero()

    def test_reciprocal_of_powers_of_two_exact(self):
        # The paper: "Reciprocation is symmetric for posits" — for powers of
        # the useed/2 structure the reciprocal is exactly representable.
        for k in range(-10, 11):
            p = Posit.from_float(POSIT16, 2.0**k)
            r = p.reciprocal()
            assert r.to_fraction() == Fraction(2) ** -k

    @given(patterns8)
    def test_sqrt_square_within_one_step(self, pa):
        a = Posit(POSIT8, pa)
        if a.is_nar() or a.sign:
            return
        s = a.sqrt()
        back = s * s
        # sqrt then square may move by a rounding step but not more.
        idx_a = a._int_key()
        idx_b = back._int_key()
        assert abs(idx_a - idx_b) <= 1


class TestOrdering:
    @given(patterns16, patterns16)
    def test_order_is_integer_order(self, pa, pb):
        # Fig. 7 / the paper: "There is no need for a posit comparison unit
        # separate from the one used for integers."
        a, b = Posit(POSIT16, pa), Posit(POSIT16, pb)
        if a.is_nar() or b.is_nar():
            return
        assert (a < b) == (a.to_fraction() < b.to_fraction())

    def test_nar_less_than_everything(self):
        nar = Posit.nar(POSIT16)
        assert nar == nar
        for v in (-1e6, -1.0, 0.0, 1.0, 1e6):
            assert nar < Posit.from_float(POSIT16, v)

    def test_no_signed_zero(self):
        z = Posit.zero(POSIT16)
        assert z.negate().pattern == 0


class TestFMA:
    @given(patterns8, patterns8, patterns8)
    def test_fma_single_rounding(self, pa, pb, pc):
        a, b, c = (Posit(POSIT8, p) for p in (pa, pb, pc))
        if a.is_nar() or b.is_nar() or c.is_nar():
            assert a.fma(b, c).is_nar()
            return
        exact = a.to_fraction() * b.to_fraction() + c.to_fraction()
        assert a.fma(b, c).pattern == _NEAREST8(exact)


class TestConversions:
    @given(patterns16)
    def test_float_round_trip(self, pa):
        p = Posit(POSIT16, pa)
        if p.is_nar():
            assert math.isnan(p.to_float())
            return
        assert Posit.from_float(POSIT16, p.to_float()).pattern == pa

    @given(patterns8)
    def test_widening_is_exact(self, pa):
        p = Posit(POSIT8, pa)
        wide = p.convert(POSIT32)
        if p.is_nar():
            assert wide.is_nar()
            return
        assert wide.to_fraction() == p.to_fraction()

    @given(patterns8)
    def test_widen_narrow_round_trip(self, pa):
        p = Posit(POSIT8, pa)
        back = p.convert(POSIT32).convert(POSIT8)
        assert back.pattern == pa

    @given(st.integers(min_value=-1000, max_value=1000))
    def test_from_int(self, n):
        p = Posit.from_int(POSIT32, n)
        assert p.to_fraction() == n  # posit32 holds small ints exactly

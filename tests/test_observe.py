"""repro.engine.observe: tracer spans, metrics, and the OpCounters shim.

Covers the observability acceptance bars: span nesting and JSONL
round-trips, the disabled-tracer hot-loop overhead (< 5% of one LUT
matmul), histogram bucketing and cross-process metric merging (a real
``workers=2`` run whose trace must contain spans from both worker
processes and whose merged metrics must match the parent's ``stats()``),
plus the ``flush_to_disk`` idempotence bugfix asserted through the new
``disk_writes`` metric.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.engine import (
    BatchedRunner,
    Histogram,
    KernelRegistry,
    Metrics,
    OpCounters,
    ParallelRunner,
    Tracer,
    load_jsonl,
    report,
)
from repro.engine.kernels import lut_matmul
from repro.engine.observe import TRACER, disable_tracing, enable_tracing
from repro.engine.registry import get_posit_tables
from repro.posit import POSIT8


@pytest.fixture
def global_tracer():
    """Enable the process-wide tracer for one test, then restore it."""
    enable_tracing()
    TRACER.clear()
    yield TRACER
    disable_tracing()
    TRACER.clear()


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_span_is_shared_noop(self):
        t = Tracer(enabled=False)
        s1 = t.span("a", x=1)
        s2 = t.span("b")
        assert s1 is s2  # no allocation on the disabled path
        with s1:
            pass
        assert t.events() == []

    def test_span_records_event(self):
        t = Tracer(enabled=True)
        with t.span("op", fmt="posit<8,0>", elements=64):
            time.sleep(0.001)
        (event,) = t.events()
        assert event["name"] == "op"
        assert event["attrs"] == {"fmt": "posit<8,0>", "elements": 64}
        assert event["dur"] >= 0.001
        assert event["pid"] == os.getpid()
        assert event["depth"] == 0 and event["parent"] is None

    def test_span_nesting_depth_and_parent(self):
        t = Tracer(enabled=True)
        with t.span("outer"):
            with t.span("inner"):
                with t.span("leaf"):
                    pass
            with t.span("sibling"):
                pass
        by_name = {e["name"]: e for e in t.events()}
        assert by_name["outer"]["depth"] == 0
        assert by_name["inner"]["depth"] == 1
        assert by_name["leaf"]["depth"] == 2
        assert by_name["sibling"]["depth"] == 1
        assert by_name["inner"]["parent"] == by_name["outer"]["seq"]
        assert by_name["leaf"]["parent"] == by_name["inner"]["seq"]
        assert by_name["sibling"]["parent"] == by_name["outer"]["seq"]
        # Events complete innermost-first.
        assert [e["name"] for e in t.events()] == ["leaf", "inner", "sibling", "outer"]

    def test_ring_buffer_caps_events(self):
        t = Tracer(capacity=4, enabled=True)
        for i in range(10):
            with t.span(f"s{i}"):
                pass
        names = [e["name"] for e in t.events()]
        assert names == ["s6", "s7", "s8", "s9"]

    def test_jsonl_round_trip(self, tmp_path):
        t = Tracer(enabled=True)
        with t.span("a", shape=(2, 3), fmt="x"):
            with t.span("b", hit=True):
                pass
        path = tmp_path / "trace.jsonl"
        n = t.export_jsonl(path)
        assert n == 2
        assert load_jsonl(path) == t.events()
        # every line is standalone JSON
        lines = path.read_text().strip().split("\n")
        assert all(json.loads(line)["pid"] == os.getpid() for line in lines)

    def test_numpy_attrs_are_jsonable(self, tmp_path):
        t = Tracer(enabled=True)
        arr = np.zeros((3, 4))
        with t.span("np", shape=arr.shape, n=np.int64(7), arr=arr):
            pass
        (event,) = t.events()
        json.dumps(event)  # must not raise
        assert event["attrs"]["n"] == 7
        assert event["attrs"]["arr"] == [3, 4]

    def test_drain_and_absorb(self):
        src, dst = Tracer(enabled=True), Tracer(enabled=True)
        with src.span("shipped"):
            pass
        events = src.drain()
        assert src.events() == [] and len(events) == 1
        dst.absorb(events)
        assert [e["name"] for e in dst.events()] == ["shipped"]

    def test_disabled_overhead_under_5pct_of_lut_matmul(self):
        """Acceptance bar: tracing off must cost < 5% of the hot loop."""
        tables = get_posit_tables(POSIT8)
        rng = np.random.default_rng(0)
        a_idx = rng.integers(0, 256, size=(64, 128))
        b_idx = rng.integers(0, 256, size=(128, 64))
        assert not TRACER.enabled
        # lut_matmul is instrumented: its timing below already *includes*
        # the disabled-path span call it makes internally.
        t_matmul = min(
            _timed(lambda: lut_matmul(tables.mul_table, a_idx, b_idx))
            for _ in range(5)
        )
        # Cost of the disabled span machinery itself, amortized.
        n = 10_000
        t0 = time.perf_counter()
        for _ in range(n):
            with TRACER.span("kernel.lut_matmul", shape=(64, 128, 64), chunk=64):
                pass
        per_span = (time.perf_counter() - t0) / n
        # One span per kernel call: its share of the kernel's runtime.
        assert per_span < 0.05 * t_matmul, (
            f"disabled span costs {per_span * 1e6:.2f}us vs "
            f"{t_matmul * 1e3:.3f}ms matmul ({per_span / t_matmul:.2%})"
        )


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


# ----------------------------------------------------------------------
# Histogram / Metrics
# ----------------------------------------------------------------------
class TestHistogram:
    def test_bucketing(self):
        h = Histogram(bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 3.0, 100.0):
            h.observe(v)
        # <=1: {0.5, 1.0}; <=2: {1.5}; <=4: {3.0}; overflow: {100.0}
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(106.0)
        assert h.min == 0.5 and h.max == 100.0
        assert h.mean() == pytest.approx(21.2)

    def test_merge(self):
        a, b = Histogram(bounds=(1.0, 10.0)), Histogram(bounds=(1.0, 10.0))
        a.observe(0.5)
        b.observe(5.0)
        b.observe(50.0)
        a.merge(b.snapshot())
        assert a.counts == [1, 1, 1]
        assert a.count == 3 and a.min == 0.5 and a.max == 50.0

    def test_merge_rejects_mismatched_bounds(self):
        a, b = Histogram(bounds=(1.0,)), Histogram(bounds=(2.0,))
        with pytest.raises(ValueError, match="bounds"):
            a.merge(b.snapshot())

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))


class TestMetrics:
    def test_counters_gauges_histograms(self):
        m = Metrics()
        m.inc("reads")
        m.inc("reads", 4)
        m.set_gauge("resident", 12)
        m.observe("latency", 0.5)
        snap = m.snapshot()
        assert snap["counters"] == {"reads": 5}
        assert snap["gauges"] == {"resident": 12}
        assert snap["histograms"]["latency"]["count"] == 1

    def test_record_op_feeds_table_and_histogram(self):
        m = Metrics()
        m.record_op("mul", 100, 0.25)
        m.record_op("mul", 50, 0.05)
        assert m.op_table() == {"mul": {"calls": 2, "elements": 150, "seconds": 0.3}}
        assert m.snapshot()["histograms"]["op.mul.seconds"]["count"] == 2

    def test_merge_full_snapshot(self):
        a, b = Metrics(), Metrics()
        a.inc("n", 1)
        a.set_gauge("g", 1)
        a.record_op("add", 10, 0.1)
        b.inc("n", 2)
        b.set_gauge("g", 9)
        b.record_op("add", 5, 0.2)
        b.observe("queue", 0.01)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"] == {"n": 3}
        assert snap["gauges"] == {"g": 9}  # gauges take the incoming value
        assert snap["ops"]["add"] == {
            "calls": 2,
            "elements": 15,
            "seconds": pytest.approx(0.3),
        }
        assert snap["histograms"]["op.add.seconds"]["count"] == 2
        assert snap["histograms"]["queue"]["count"] == 1

    def test_clear_ops_keeps_other_metrics(self):
        m = Metrics()
        m.record_op("mul", 1, 0.1)
        m.inc("kept")
        m.observe("kept_hist", 1.0)
        m.clear_ops()
        snap = m.snapshot()
        assert snap["ops"] == {}
        assert "op.mul.seconds" not in snap["histograms"]
        assert snap["counters"] == {"kept": 1}
        assert "kept_hist" in snap["histograms"]


class TestOpCountersShim:
    """The original OpCounters API must keep working over Metrics."""

    def test_record_snapshot_total(self):
        c = OpCounters()
        c.record("mul", 5, 0.25)
        c.record("mul", 5, 0.25)
        c.record("add", 7, 0.1)
        assert c.ops["mul"] == {"calls": 2, "elements": 10, "seconds": 0.5}
        assert c.snapshot() == c.ops
        assert c.total() == 17
        assert c.total("calls") == 3

    def test_merge_legacy_snapshot_shape(self):
        c = OpCounters()
        c.record("mul", 5, 0.5)
        c.merge({"mul": {"calls": 2, "elements": 10, "seconds": 0.5}})
        assert c.ops["mul"] == {"calls": 3, "elements": 15, "seconds": 1.0}

    def test_clear(self):
        c = OpCounters()
        c.record("mul", 5, 0.5)
        c.clear()
        assert c.ops == {}
        assert c.snapshot() == {}

    def test_repr(self):
        c = OpCounters()
        c.record("encode", 64, 0.01)
        assert "encode: 1 calls / 64 elems" in repr(c)

    def test_metrics_extension_is_exposed(self):
        c = OpCounters()
        c.record("mul", 100, 0.2)
        # The shim's richer substrate: per-op latency histograms.
        assert c.metrics.snapshot()["histograms"]["op.mul.seconds"]["count"] == 1


# ----------------------------------------------------------------------
# flush_to_disk idempotence (bugfix) via the disk_writes metric
# ----------------------------------------------------------------------
class TestFlushIdempotence:
    @staticmethod
    def _builder():
        return {"t": np.arange(16, dtype=np.uint8)}

    def test_second_flush_writes_nothing(self, tmp_path):
        reg = KernelRegistry()
        reg.get(("obs-flush", 1), self._builder)
        assert reg.flush_to_disk(tmp_path) == 1
        assert reg.stats()["disk_writes"] == 1
        # Same registry, same dir, no new tables: complete no-op.
        assert reg.flush_to_disk(tmp_path) == 0
        assert reg.stats()["disk_writes"] == 1

    def test_existing_files_are_never_rewritten(self, tmp_path):
        reg1 = KernelRegistry()
        reg1.get(("obs-flush", 2), self._builder)
        reg1.flush_to_disk(tmp_path)
        mtimes = {p.name: p.stat().st_mtime_ns for p in tmp_path.glob("*.npz")}
        # A different process's registry flushing the same tables: the
        # file already on disk short-circuits the write.
        reg2 = KernelRegistry()
        reg2.get(("obs-flush", 2), self._builder)
        assert reg2.flush_to_disk(tmp_path) == 0
        assert reg2.stats()["disk_writes"] == 0
        assert {p.name: p.stat().st_mtime_ns for p in tmp_path.glob("*.npz")} == mtimes

    def test_new_tables_still_flush(self, tmp_path):
        reg = KernelRegistry()
        reg.get(("obs-flush", 3), self._builder)
        assert reg.flush_to_disk(tmp_path) == 1
        reg.get(("obs-flush", 4), self._builder)
        assert reg.flush_to_disk(tmp_path) == 1  # only the new entry
        assert reg.stats()["disk_writes"] == 2


# ----------------------------------------------------------------------
# Cross-process: spans from both workers, metrics merged into stats()
# ----------------------------------------------------------------------
class BothWorkersModel:
    """Picklable model that stalls until two distinct worker pids exist.

    Each forward writes this process's pid into ``sync_dir`` and waits for
    a second pid to appear (workers=2 guarantees the second task can only
    run on the other worker while this one is blocked), so both workers
    demonstrably execute work — no scheduling luck involved.
    """

    def __init__(self, sync_dir: str):
        self.sync_dir = sync_dir
        self._backend = None

    @property
    def engine(self):
        if self._backend is None:
            from repro.engine.posit_backend import PositBackend

            self._backend = PositBackend(POSIT8, strategy="pairwise")
        return self._backend

    def forward(self, pairs):
        import multiprocessing

        if multiprocessing.parent_process() is not None:
            with open(os.path.join(self.sync_dir, f"{os.getpid()}.pid"), "w") as fh:
                fh.write("1")
            deadline = time.time() + 30.0
            while time.time() < deadline:
                if len(os.listdir(self.sync_dir)) >= 2:
                    break
                time.sleep(0.01)
        be = self.engine
        a, b = pairs[:, 0], pairs[:, 1]
        return np.stack([be.add(a, b), be.mul(a, b)], axis=1)

    def __getstate__(self):
        return {"sync_dir": self.sync_dir}

    def __setstate__(self, state):
        self.sync_dir = state["sync_dir"]
        self._backend = None


class TestParallelObservability:
    def test_two_worker_trace_and_merged_metrics(self, tmp_path, global_tracer):
        rng = np.random.default_rng(3)
        x = rng.integers(0, 256, size=(64, 2)).astype(np.uint8)
        sync_dir = tmp_path / "sync"
        sync_dir.mkdir()
        model = BothWorkersModel(str(sync_dir))
        with ParallelRunner(
            model,
            workers=2,
            batch_size=32,
            chunk_size=32,
            cache_dir=tmp_path / "cache",
            task_timeout=120.0,
        ) as runner:
            runner.run(x)
            stats = runner.stats()

        worker_pids = {w["pid"] for w in stats["per_worker"]}
        assert len(worker_pids) == 2, "both workers must have executed chunks"

        # The parent's ring buffer holds spans shipped home from BOTH
        # workers, exported as one JSONL trace.
        trace_path = tmp_path / "trace.jsonl"
        global_tracer.export_jsonl(trace_path)
        events = load_jsonl(trace_path)
        chunk_pids = {e["pid"] for e in events if e["name"] == "worker.chunk"}
        assert chunk_pids == worker_pids
        # Worker-side backend ops made it into the trace too.
        op_pids = {e["pid"] for e in events if e["name"] in ("add", "mul")}
        assert op_pids == worker_pids

        # Merged metrics match the parent's stats(): 64 pairs through add
        # and mul exactly once each, summed across both workers.
        assert stats["ops"]["add"]["elements"] == 64
        assert stats["ops"]["mul"]["elements"] == 64
        assert stats["metrics"]["ops"] == stats["ops"]
        # Per-op latency histograms merged from the workers' metrics.
        assert stats["metrics"]["histograms"]["op.mul.seconds"]["count"] == (
            stats["ops"]["mul"]["calls"]
        )
        # Queue-wait histogram: one observation per collected chunk.
        assert stats["metrics"]["histograms"]["parallel.queue_wait_s"]["count"] == 2

    def test_runner_stats_include_metrics(self):
        class Identity:
            def forward(self, x):
                return x

        runner = BatchedRunner(Identity(), batch_size=8)
        runner.run(np.zeros((16, 2)))
        stats = runner.stats()
        assert stats["metrics"]["histograms"]["runner.batch_s"]["count"] == 2
        assert "table_disk_writes" in stats
        runner.reset()
        assert "runner.batch_s" not in runner.stats()["metrics"]["histograms"]


# ----------------------------------------------------------------------
# report()
# ----------------------------------------------------------------------
class TestReport:
    def test_report_renders_stats(self):
        class Identity:
            def forward(self, x):
                return x

        runner = BatchedRunner(Identity(), batch_size=4)
        runner.counters.record("mul", 128, 0.25)
        runner.run(np.zeros((8, 2)))
        text = report(runner.stats())
        assert "engine run report" in text
        assert "8 items in 2 batches" in text
        assert "mul" in text and "128" in text
        assert "kernel tables" in text

    def test_report_without_stats(self):
        assert "engine run report" in report()


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
class TestPrometheusExport:
    def test_counters_and_gauges(self):
        metrics = Metrics()
        metrics.inc("serve.admitted", 3)
        metrics.set_gauge("serve.queue_depth", 7)
        body = metrics.to_prometheus()
        assert "# TYPE repro_serve_admitted_total counter" in body
        assert "repro_serve_admitted_total 3" in body
        assert "# TYPE repro_serve_queue_depth gauge" in body
        assert "repro_serve_queue_depth 7" in body
        assert body.endswith("\n")

    def test_histogram_buckets_are_cumulative(self):
        metrics = Metrics()
        bounds = (1.0, 10.0, 100.0)
        for v in (0.5, 0.6, 5.0, 50.0, 5000.0):
            metrics.observe("lat", v, bounds=bounds)
        body = metrics.to_prometheus()
        lines = body.splitlines()
        assert 'repro_lat_bucket{le="1"} 2' in lines
        assert 'repro_lat_bucket{le="10"} 3' in lines
        assert 'repro_lat_bucket{le="100"} 4' in lines
        # +Inf equals the total count (cumulative, overflow included).
        assert 'repro_lat_bucket{le="+Inf"} 5' in lines
        assert "repro_lat_count 5" in lines
        assert f"repro_lat_sum {0.5 + 0.6 + 5.0 + 50.0 + 5000.0}" in body
        # Bucket counts never decrease as le grows.
        counts = [
            int(ln.rsplit(" ", 1)[1])
            for ln in lines
            if ln.startswith("repro_lat_bucket")
        ]
        assert counts == sorted(counts)

    def test_op_table_exports_labelled_counters(self):
        metrics = Metrics()
        metrics.record_op("mul", elements=64, seconds=0.5)
        metrics.record_op("matmul[values]", elements=128, seconds=1.5)
        body = metrics.to_prometheus()
        assert 'repro_op_calls_total{op="mul"} 1' in body
        assert 'repro_op_elements_total{op="mul"} 64' in body
        assert 'repro_op_seconds_total{op="mul"} 0.5' in body
        # Op labels keep their raw name; only metric names are sanitized.
        assert 'repro_op_elements_total{op="matmul[values]"} 128' in body

    def test_metric_names_are_sanitized(self):
        metrics = Metrics()
        metrics.inc("serve.tenant.acme-eu.requests")
        metrics.observe("op.matmul[values].seconds", 0.1)
        body = metrics.to_prometheus(prefix="x_")
        assert "x_serve_tenant_acme_eu_requests_total 1" in body
        assert 'x_op_matmul_values__seconds_bucket{le="+Inf"} 1' in body

    def test_integer_valued_floats_render_as_ints(self):
        metrics = Metrics()
        metrics.inc("n", 2.0)
        metrics.set_gauge("g", 1.5)
        body = metrics.to_prometheus()
        assert "repro_n_total 2\n" in body
        assert "repro_g 1.5" in body

    def test_empty_registry_renders_empty(self):
        assert Metrics().to_prometheus() == "\n"

"""Correctly rounded posit elementary functions."""

import bisect
import math
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.posit import (
    POSIT8,
    POSIT16,
    Posit,
    posit_atan,
    posit_cos,
    posit_exp,
    posit_log,
    posit_log2,
    posit_sin,
    posit_sqrt,
    posit_tanh,
)


def _nearest_factory(fmt):
    entries = sorted(
        (Posit(fmt, p).to_fraction(), p)
        for p in range(1 << fmt.nbits)
        if not Posit(fmt, p).is_nar()
    )
    keys = [v for v, _ in entries]

    def nearest(x: Fraction) -> int:
        if x == 0:
            return 0
        if x >= entries[-1][0]:
            return entries[-1][1]
        if x <= entries[0][0]:
            return entries[0][1]
        i = bisect.bisect_left(keys, x)
        if keys[i] == x:
            return entries[i][1]
        lo, hi = entries[i - 1], entries[i]
        candidates = [c for c in (lo, hi) if c[1] != 0]
        if len(candidates) == 1:
            return candidates[0][1]
        dlo, dhi = x - lo[0], hi[0] - x
        if dlo < dhi:
            return lo[1]
        if dhi < dlo:
            return hi[1]
        return lo[1] if lo[1] % 2 == 0 else hi[1]

    return nearest


_NEAREST8 = _nearest_factory(POSIT8)

patterns8 = st.integers(min_value=0, max_value=255)


class TestExhaustivePosit8:
    """Every posit8 input, each function vs an independent float reference.

    posit8 spacing is coarse enough that binary64 references decide the
    rounding unambiguously away from exact ties.
    """

    def test_exp(self):
        for pattern in range(256):
            p = Posit(POSIT8, pattern)
            if p.is_nar():
                assert posit_exp(p).is_nar()
                continue
            x = float(p.to_fraction())
            got = posit_exp(p).pattern
            assert got == _NEAREST8(Fraction(math.exp(x))), hex(pattern)

    def test_log(self):
        for pattern in range(256):
            p = Posit(POSIT8, pattern)
            if p.is_nar():
                continue
            x = float(p.to_fraction())
            if x <= 0:
                assert posit_log(p).is_nar()
                continue
            assert posit_log(p).pattern == _NEAREST8(Fraction(math.log(x))), hex(pattern)

    @pytest.mark.parametrize(
        "fn,ref",
        [(posit_sin, math.sin), (posit_cos, math.cos), (posit_atan, math.atan), (posit_tanh, math.tanh)],
        ids=["sin", "cos", "atan", "tanh"],
    )
    def test_trig_and_tanh(self, fn, ref):
        for pattern in range(256):
            p = Posit(POSIT8, pattern)
            if p.is_nar():
                assert fn(p).is_nar()
                continue
            x = float(p.to_fraction())
            assert fn(p).pattern == _NEAREST8(Fraction(ref(x))), hex(pattern)


class TestIdentities:
    def test_exp_zero_is_one(self):
        assert posit_exp(Posit.zero(POSIT16)).to_float() == 1.0

    def test_cos_zero_is_one(self):
        assert posit_cos(Posit.zero(POSIT16)).to_float() == 1.0

    def test_sin_zero_is_zero(self):
        assert posit_sin(Posit.zero(POSIT16)).is_zero()

    def test_log2_powers_of_two_exact(self):
        for k in range(-20, 21):
            p = Posit.from_float(POSIT16, 2.0**k)
            assert posit_log2(p).to_fraction() == k

    def test_log_of_one_is_zero(self):
        assert posit_log(Posit.one(POSIT16)).is_zero()

    def test_exp_saturates_not_nar(self):
        assert posit_exp(Posit.maxpos(POSIT16)).pattern == POSIT16.pattern_maxpos
        assert posit_exp(Posit.maxpos(POSIT16).negate()).pattern == POSIT16.pattern_minpos

    def test_tanh_saturation(self):
        big = Posit.from_float(POSIT16, 1e6)
        assert posit_tanh(big).to_float() == 1.0
        assert posit_tanh(big.negate()).to_float() == -1.0

    @given(patterns8)
    def test_exp_log_round_trip_within_step(self, pattern):
        p = Posit(POSIT8, pattern)
        if p.is_nar() or p.sign or p.is_zero():
            return
        back = posit_exp(posit_log(p))
        assert abs(back._int_key() - p._int_key()) <= 1

    @given(patterns8)
    def test_sin_cos_pythagorean(self, pattern):
        p = Posit(POSIT8, pattern)
        if p.is_nar():
            return
        s = posit_sin(p).to_float()
        c = posit_cos(p).to_float()
        assert abs(s * s + c * c - 1.0) < 0.1  # posit8 is coarse

    def test_sqrt_alias(self):
        p = Posit.from_float(POSIT16, 9.0)
        assert posit_sqrt(p).to_float() == 3.0

    def test_log_negative_is_nar(self):
        assert posit_log(Posit.from_float(POSIT16, -1.0)).is_nar()
        assert posit_log2(Posit.from_float(POSIT16, -2.0)).is_nar()
        assert posit_log(Posit.zero(POSIT16)).is_nar()

"""Dedicated tests for :class:`repro.serve.client.ServeClient`.

The client is the reference implementation of the wire contract's caller
side: request/response correlation by ``id`` over one pipelined NDJSON
connection.  These tests pin its lifecycle (connect, request, close),
its failure surfacing (connection loss, timeouts, rejection hints,
deadline overruns), and its concurrency behaviour (out-of-order
responses land on the right futures).
"""

import asyncio
import time

import numpy as np
import pytest

from repro.engine.observe import Metrics
from repro.serve import EngineExecutor, ReproServer, ServeClient, ServeConfig
from repro.serve.protocol import decode_line, encode_line

pytestmark = pytest.mark.timeout(60)


def run(coro):
    return asyncio.run(coro)


class SlowExecutor(EngineExecutor):
    """Deterministic dispatch-thread stall (same trick as the server tests)."""

    def __init__(self, delay_s: float, **kwargs):
        super().__init__(**kwargs)
        self.delay_s = delay_s

    def execute(self, key, requests):
        time.sleep(self.delay_s)
        return super().execute(key, requests)


MATMUL = dict(workload="posit_matmul", a=[[1.0, 2.0]], b=[[3.0], [4.0]])


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_connect_request_close(self):
        async def go():
            async with ReproServer(ServeConfig(), metrics=Metrics()) as server:
                client = await ServeClient.connect(*server.address)
                resp = await client.request(**MATMUL)
                await client.close()
            assert resp["ok"] and resp["id"] == "c1"
            assert resp["result"] == [[11.0]]

        run(go())

    def test_context_manager_closes(self):
        async def go():
            async with ReproServer(ServeConfig(), metrics=Metrics()) as server:
                async with await ServeClient.connect(*server.address) as client:
                    resp = await client.request(**MATMUL)
                assert resp["ok"]
                with pytest.raises(ConnectionError, match="closed"):
                    await client.request(**MATMUL)

        run(go())

    def test_request_after_close_raises(self):
        async def go():
            async with ReproServer(ServeConfig(), metrics=Metrics()) as server:
                client = await ServeClient.connect(*server.address)
                await client.close()
                with pytest.raises(ConnectionError, match="closed"):
                    await client.request(**MATMUL)

        run(go())

    def test_close_is_idempotent(self):
        async def go():
            async with ReproServer(ServeConfig(), metrics=Metrics()) as server:
                client = await ServeClient.connect(*server.address)
                await client.close()
                await client.close()

        run(go())

    def test_ids_auto_increment_but_caller_ids_win(self):
        async def go():
            async with ReproServer(ServeConfig(), metrics=Metrics()) as server:
                async with await ServeClient.connect(*server.address) as client:
                    first = await client.request(**MATMUL)
                    second = await client.request(**MATMUL)
                    named = await client.request(id="mine", **MATMUL)
            assert first["id"] == "c1" and second["id"] == "c2"
            assert named["id"] == "mine"

        run(go())


# ----------------------------------------------------------------------
# Correlation under pipelining
# ----------------------------------------------------------------------
class TestCorrelation:
    def test_concurrent_requests_land_on_right_futures(self):
        async def go():
            rng = np.random.default_rng(21)
            pairs = [
                (rng.normal(size=(2, 3)), rng.normal(size=(3, 2))) for _ in range(6)
            ]
            async with ReproServer(
                ServeConfig(max_batch=8, max_delay_ms=20.0), metrics=Metrics()
            ) as server:
                async with await ServeClient.connect(*server.address) as client:
                    resps = await asyncio.gather(
                        *[
                            client.request(
                                id=f"p{i}",
                                workload="posit_matmul",
                                a=a.tolist(),
                                b=b.tolist(),
                            )
                            for i, (a, b) in enumerate(pairs)
                        ]
                    )
            for i, resp in enumerate(resps):
                assert resp["id"] == f"p{i}", "responses must correlate by id"
                assert resp["ok"]
            # Distinct operands -> distinct results; a cross-wired future
            # would collide here.
            distinct = {str(r["result"]) for r in resps}
            assert len(distinct) == len(pairs)

        run(go())


# ----------------------------------------------------------------------
# Failure surfacing
# ----------------------------------------------------------------------
class TestFailureSurfacing:
    def test_server_closing_connection_fails_pending_futures(self):
        """A server that goes away mid-request -> ConnectionError, not a hang."""

        async def go():
            async def mute_handler(reader, writer):
                await reader.readline()  # swallow one request...
                writer.close()  # ...and hang up without replying

            server = await asyncio.start_server(mute_handler, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                client = await ServeClient.connect(host, port)
                with pytest.raises(ConnectionError, match="server closed"):
                    await client.request(timeout=10.0, **MATMUL)
                await client.close()
            finally:
                server.close()
                await server.wait_closed()

        run(go())

    def test_request_timeout_raises_timeout_error(self):
        """A silent server -> TimeoutError after the caller's budget."""

        async def go():
            async def silent_handler(reader, writer):
                await reader.read()  # consume forever, never answer

            server = await asyncio.start_server(silent_handler, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                client = await ServeClient.connect(host, port)
                with pytest.raises(asyncio.TimeoutError):
                    await client.request(timeout=0.2, **MATMUL)
                await client.close()
            finally:
                server.close()
                await server.wait_closed()

        run(go())

    def test_rejection_carries_retry_after_hint(self):
        """Tenant-quota rejection surfaces ``retry_after_ms`` to the caller."""

        async def go():
            config = ServeConfig(tenant_rate=1.0, tenant_burst=1.0)
            async with ReproServer(config, metrics=Metrics()) as server:
                async with await ServeClient.connect(*server.address) as client:
                    ok = await client.request(tenant="hog", **MATMUL)
                    throttled = await client.request(tenant="hog", **MATMUL)
            assert ok["ok"]
            assert not throttled["ok"] and throttled["error"] == "rejected"
            assert throttled["retry_after_ms"] > 0
            return throttled

        resp = run(go())
        # The hint is actionable: waiting that long restores admission.
        assert resp["retry_after_ms"] <= 1000.0

    def test_deadline_exceeded_surfaces_as_error_response(self):
        async def go():
            metrics = Metrics()
            executor = SlowExecutor(0.1, metrics=metrics)
            async with ReproServer(
                ServeConfig(max_delay_ms=0.0), executor=executor, metrics=metrics
            ) as server:
                async with await ServeClient.connect(*server.address) as client:
                    resp = await client.request(deadline_ms=10, **MATMUL)
            assert not resp["ok"]
            assert resp["error"] == "deadline_exceeded"

        run(go())

    def test_malformed_response_line_fails_cleanly(self):
        """Garbage from the server kills the read loop -> pending futures
        get ConnectionError instead of waiting forever."""

        async def go():
            async def garbage_handler(reader, writer):
                await reader.readline()
                writer.write(b"this is not json\n")
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(garbage_handler, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                client = await ServeClient.connect(host, port)
                with pytest.raises(ConnectionError):
                    await client.request(timeout=10.0, **MATMUL)
                await client.close()
            finally:
                server.close()
                await server.wait_closed()

        run(go())

    def test_timeout_does_not_leak_pending_entry(self):
        """A timed-out request must remove its future from the pending map.

        The leak mode: ``asyncio.wait_for`` cancels the future but the
        ``_pending`` entry survived, so every timeout grew the map by one
        cancelled future for the connection's lifetime — and a late
        response would try to resolve a dead future.
        """

        async def go():
            async def silent_handler(reader, writer):
                await reader.read()

            server = await asyncio.start_server(silent_handler, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                client = await ServeClient.connect(host, port)
                for _ in range(5):
                    with pytest.raises(asyncio.TimeoutError):
                        await client.request(timeout=0.05, **MATMUL)
                assert not client._pending, (
                    f"timed-out requests leaked {len(client._pending)} "
                    "pending entries"
                )
                await client.close()
            finally:
                server.close()
                await server.wait_closed()

        run(go())

    def test_send_failure_does_not_leak_pending_entry(self):
        """A request whose write fails must not stay pending forever."""

        async def go():
            async def hangup_handler(reader, writer):
                writer.close()  # refuse service immediately

            server = await asyncio.start_server(hangup_handler, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                client = await ServeClient.connect(host, port)
                await asyncio.sleep(0.05)  # let the hangup land
                for _ in range(3):
                    with pytest.raises((ConnectionError, asyncio.TimeoutError)):
                        await client.request(timeout=0.5, **MATMUL)
                assert not client._pending
                await client.close()
            finally:
                server.close()
                await server.wait_closed()

        run(go())

    def test_late_response_after_timeout_is_dropped(self):
        """A response that arrives after its request timed out is ignored,
        and the connection keeps serving later requests."""

        async def go():
            async def slow_then_fast(reader, writer):
                line1 = await reader.readline()
                req1 = decode_line(line1)
                line2 = await reader.readline()
                req2 = decode_line(line2)
                # Answer the second request first, then the (timed-out)
                # first one late.
                writer.write(
                    encode_line({"id": req2["id"], "ok": True, "result": [[2.0]]})
                )
                await writer.drain()
                await asyncio.sleep(0.1)
                writer.write(
                    encode_line({"id": req1["id"], "ok": True, "result": [[1.0]]})
                )
                await writer.drain()

            server = await asyncio.start_server(slow_then_fast, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                client = await ServeClient.connect(host, port)
                first = asyncio.ensure_future(
                    client.request(id="slow", timeout=0.02, **MATMUL)
                )
                await asyncio.sleep(0)  # let the first write go out
                second = await client.request(id="fast", timeout=5.0, **MATMUL)
                with pytest.raises(asyncio.TimeoutError):
                    await first
                assert second["result"] == [[2.0]]
                assert "slow" not in client._pending
                await asyncio.sleep(0.15)  # late response lands harmlessly
                assert not client._pending
                await client.close()
            finally:
                server.close()
                await server.wait_closed()

        run(go())

    def test_unsolicited_response_id_is_ignored(self):
        """A response for an id the client never sent must not wedge the
        read loop or misdeliver; the real response still arrives."""

        async def go():
            async def chatty_handler(reader, writer):
                line = await reader.readline()
                req = decode_line(line)
                writer.write(encode_line({"id": "ghost", "ok": True, "result": []}))
                writer.write(
                    encode_line(
                        {"id": req["id"], "ok": True, "result": [[11.0]], "ms": 0.1}
                    )
                )
                await writer.drain()

            server = await asyncio.start_server(chatty_handler, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                client = await ServeClient.connect(host, port)
                resp = await client.request(timeout=10.0, **MATMUL)
                assert resp["ok"] and resp["result"] == [[11.0]]
                await client.close()
            finally:
                server.close()
                await server.wait_closed()

        run(go())

"""Deterministic fault injection: FaultPlan, ChaosPlan, poison audit.

The load-bearing property under test is *determinism*: every injection
site derives its RNG from ``(plan.seed, site, content hash of the data)``,
never from call order or process identity.  The acceptance bar is the
parallel bit-identity tests — the same plan must corrupt identically
in-process, across runs, and across ``workers=N`` sharding.

Chaos tests exercise the graceful-degradation ladder of
:class:`repro.engine.parallel.ParallelRunner`: pool retry, pool restart,
and only then the in-process fallback, with every terminal fallback
classified by cause.
"""

import numpy as np

from repro.engine import (
    METRICS,
    BatchedRunner,
    ChaosPlan,
    FaultPlan,
    FormatFaultModel,
    KernelRegistry,
    ParallelRunner,
    PositBackend,
    SoftFloatBackend,
    apply_code_faults,
)
from repro.floats import FP8_E4M3
from repro.nn.posit_inference import PositQuantizedNetwork
from repro.nn.zoo import kws_cnn1
from repro.posit import POSIT8


class TinyModel:
    """Picklable float model: y = x @ w (deterministic per seed)."""

    def __init__(self, seed=0):
        rng = np.random.default_rng(seed)
        self.w = rng.normal(size=(6, 3))

    def forward(self, x):
        return x @ self.w


class PairwisePositModel:
    """Posit add/mul over code pairs through the *process-wide* registry.

    Workers build the backend against their own REGISTRY, whose fault plan
    arrives via the pool initializer — the LUT-corruption sharing path.
    """

    def forward(self, codes):
        be = PositBackend(POSIT8, strategy="pairwise")
        a, b = codes[:, 0], codes[:, 1]
        return np.stack([be.add(a, b), be.mul(a, b)], axis=1)


# ----------------------------------------------------------------------
# FaultPlan primitives
# ----------------------------------------------------------------------
class TestFlipBits:
    def test_deterministic_across_plan_instances(self):
        arr = np.arange(4096, dtype=np.uint8)
        a = FaultPlan(seed=7).flip_bits(arr, 8, 0.25, "site")
        b = FaultPlan(seed=7).flip_bits(arr, 8, 0.25, "site")
        assert np.array_equal(a, b)
        assert not np.array_equal(a, arr)

    def test_different_seeds_differ(self):
        arr = np.arange(4096, dtype=np.uint8)
        a = FaultPlan(seed=1).flip_bits(arr, 8, 0.25, "site")
        b = FaultPlan(seed=2).flip_bits(arr, 8, 0.25, "site")
        assert not np.array_equal(a, b)

    def test_different_sites_are_independent_streams(self):
        arr = np.arange(4096, dtype=np.uint8)
        plan = FaultPlan(seed=7)
        a = plan.flip_bits(arr, 8, 0.25, "site-a")
        b = plan.flip_bits(arr, 8, 0.25, "site-b")
        assert not np.array_equal(a, b)

    def test_zero_rate_returns_input_unchanged(self):
        arr = np.arange(64, dtype=np.uint8)
        out = FaultPlan(seed=0).flip_bits(arr, 8, 0.0, "site")
        assert out is arr

    def test_flips_stay_below_width(self):
        arr = np.random.default_rng(0).integers(0, 16, size=4096).astype(np.uint8)
        out = FaultPlan(seed=3).flip_bits(arr, 4, 0.5, "site")
        assert not np.array_equal(out, arr)
        assert int(out.max()) < 16  # only bits 0..3 ever flip

    def test_signed_dtype_supported(self):
        arr = np.random.default_rng(0).integers(-100, 100, size=2048).astype(np.int8)
        out = FaultPlan(seed=5).flip_bits(arr, 8, 0.25, "site")
        assert out.dtype == np.int8
        assert not np.array_equal(out, arr)

    def test_flip_metric_counted(self):
        before = METRICS.counters.get("faults.bits_flipped", 0)
        FaultPlan(seed=7).flip_bits(np.arange(4096, dtype=np.uint8), 8, 0.25, "m")
        assert METRICS.counters.get("faults.bits_flipped", 0) > before


class TestRegistryLUTFaults:
    KEY = ("posit", 8, 0, "faulttest")

    @staticmethod
    def _build():
        grid = np.add.outer(np.arange(256), np.arange(256)) % 256
        return {"add": grid.astype(np.uint8)}

    def test_memo_and_disk_stay_pristine(self, tmp_path):
        plan = FaultPlan(seed=3, lut_rate=0.02)
        reg = KernelRegistry(cache_dir=tmp_path, fault_plan=plan)
        t1 = reg.get(self.KEY, self._build)
        t2 = reg.get(self.KEY, self._build)
        pristine = self._build()
        # Deterministic corruption, re-derived identically per call...
        assert np.array_equal(t1["add"], t2["add"])
        assert not np.array_equal(t1["add"], pristine["add"])
        # ...while the memo and the flushed .npz keep the pristine bytes.
        fresh = KernelRegistry(cache_dir=tmp_path).get(self.KEY, self._build)
        assert np.array_equal(fresh["add"], pristine["add"])

    def test_only_eligible_tables_corrupted(self):
        plan = FaultPlan(seed=3, lut_rate=0.05)
        tables = {
            "add": np.arange(4096, dtype=np.uint8).reshape(64, 64),
            "other": np.arange(4096, dtype=np.uint8).reshape(64, 64),
            "values": np.linspace(-4, 4, 256),
            "boundaries": np.linspace(-4, 4, 255),
        }
        out = plan.corrupt_tables("slug", tables)
        assert not np.array_equal(out["add"], tables["add"])
        assert out["other"] is tables["other"]  # not in lut_tables
        assert out["values"] is tables["values"]  # float codec tables stay exact
        assert out["boundaries"] is tables["boundaries"]

    def test_float_tables_never_flipped(self):
        plan = FaultPlan(seed=3, lut_rate=1.0)
        arr = np.linspace(-1, 1, 128)
        assert plan.corrupt_table("s", "add", arr) is arr


class TestBackendOpFaults:
    def _codes(self):
        rng = np.random.default_rng(0)
        return rng.integers(0, 256, size=2048).astype(np.uint8), rng.integers(
            0, 256, size=2048
        ).astype(np.uint8)

    def test_posit_op_faults_deterministic(self):
        a, b = self._codes()
        clean = PositBackend(POSIT8, strategy="pairwise")
        plan = FaultPlan(seed=1, op_rate=0.05)
        f1 = PositBackend(POSIT8, strategy="pairwise", fault_plan=plan)
        f2 = PositBackend(POSIT8, strategy="pairwise", fault_plan=plan)
        y1, y2, y0 = f1.add(a, b), f2.add(a, b), clean.add(a, b)
        assert np.array_equal(y1, y2)
        assert not np.array_equal(y1, y0)
        assert y1.dtype == y0.dtype  # still valid posit8 codes

    def test_ops_filter_restricts_injection(self):
        a, b = self._codes()
        clean = PositBackend(POSIT8, strategy="pairwise")
        plan = FaultPlan(seed=1, op_rate=0.05, ops=("mul",))
        faulty = PositBackend(POSIT8, strategy="pairwise", fault_plan=plan)
        assert np.array_equal(faulty.add(a, b), clean.add(a, b))
        assert not np.array_equal(faulty.mul(a, b), clean.mul(a, b))

    def test_softfloat_op_faults(self):
        a, b = self._codes()
        clean = SoftFloatBackend(FP8_E4M3, strategy="pairwise")
        plan = FaultPlan(seed=4, op_rate=0.05)
        faulty = SoftFloatBackend(FP8_E4M3, strategy="pairwise", fault_plan=plan)
        y = faulty.mul(a, b)
        assert not np.array_equal(y, clean.mul(a, b))
        assert np.array_equal(y, faulty.mul(a, b))

    def test_apply_code_faults_none_safe(self):
        codes = np.arange(16, dtype=np.uint8)
        assert apply_code_faults(None, "be", "add", codes, 8) is codes
        assert apply_code_faults(FaultPlan(seed=0), "be", "add", codes, 8) is codes


# ----------------------------------------------------------------------
# Activation faults + poison audit
# ----------------------------------------------------------------------
class TestActivationFaults:
    def test_posit_network_faults_deterministic(self):
        net = kws_cnn1(seed=0)
        x = np.random.default_rng(1).normal(size=(4, 1, 31, 20))
        plan = FaultPlan(seed=11, activation_rate=0.01)
        clean = PositQuantizedNetwork(net, POSIT8).forward(x)
        y1 = PositQuantizedNetwork(net, POSIT8, fault_plan=plan).forward(x)
        y2 = PositQuantizedNetwork(net, POSIT8, fault_plan=plan).forward(x)
        # Flips can land on NaR codes, which decode to NaN — equal_nan keeps
        # the bit-identity comparison honest for those elements.
        assert np.array_equal(y1, y2, equal_nan=True)
        assert not np.array_equal(y1, clean, equal_nan=True)

    def test_corrupt_floats_deterministic(self):
        x = np.random.default_rng(2).normal(size=(64, 6))
        plan = FaultPlan(seed=9, activation_rate=0.05)
        a = plan.corrupt_floats(x, "runner.batch")
        b = plan.corrupt_floats(x, "runner.batch")
        assert np.array_equal(a, b, equal_nan=True)
        assert a.shape == x.shape and a.dtype == x.dtype
        assert not np.array_equal(a, x, equal_nan=True)

    def test_corrupt_floats_ignores_integer_arrays(self):
        codes = np.arange(64, dtype=np.uint8)
        plan = FaultPlan(seed=9, activation_rate=0.5)
        assert plan.corrupt_floats(codes, "s") is codes


class TestPoisonAudit:
    def test_nan_propagation_counted_per_layer(self):
        net = kws_cnn1(seed=0)
        qnet = PositQuantizedNetwork(net, POSIT8, poison_audit=True)
        x = np.random.default_rng(0).normal(size=(2, 1, 31, 20))
        x[0, 0, 0, 0] = np.nan
        before = METRICS.counters.get("poison.nonfinite", 0)
        qnet.forward(x)
        report = qnet.poison_report()
        assert len(report) == len(net.layers)
        assert all(e["nonfinite"] > 0 for e in report)  # NaR reaches the head
        assert report[-1]["name"] == "layer.Dense"
        assert METRICS.counters.get("poison.nonfinite", 0) > before
        qnet.reset_poison()
        assert qnet.poison_report() == []

    def test_clean_input_reports_zero(self):
        net = kws_cnn1(seed=0)
        qnet = PositQuantizedNetwork(net, POSIT8, poison_audit=True)
        qnet.forward(np.random.default_rng(0).normal(size=(2, 1, 31, 20)))
        assert all(e["nonfinite"] == 0 for e in qnet.poison_report())


# ----------------------------------------------------------------------
# The acceptance bar: bit-identical faults across worker counts
# ----------------------------------------------------------------------
class TestParallelBitIdentity:
    def test_activation_faults_identical_across_worker_counts(self, tmp_path):
        net = kws_cnn1(seed=0)
        plan = FaultPlan(seed=21, activation_rate=0.01)
        qnet = PositQuantizedNetwork(net, POSIT8, fault_plan=plan)
        x = np.random.default_rng(3).normal(size=(16, 1, 31, 20))

        y_inproc = BatchedRunner(qnet, batch_size=4).run(x)
        with ParallelRunner(
            qnet, workers=2, batch_size=4, cache_dir=tmp_path
        ) as runner:
            y_par = runner.run(x)
            y_par2 = runner.run(x)
            stats = runner.stats()
        assert stats["fallbacks"] == 0  # genuinely computed on workers
        assert np.array_equal(y_inproc, y_par, equal_nan=True)
        assert np.array_equal(y_par, y_par2, equal_nan=True)  # run-to-run determinism

    def test_float_batch_faults_identical_across_worker_counts(self, tmp_path):
        plan = FaultPlan(seed=17, activation_rate=0.05)
        x = np.random.default_rng(4).normal(size=(16, 6))
        y_inproc = BatchedRunner(TinyModel(seed=2), batch_size=4, fault_plan=plan).run(x)
        with ParallelRunner(
            TinyModel(seed=2),
            workers=2,
            batch_size=4,
            cache_dir=tmp_path,
            fault_plan=plan,
        ) as runner:
            y_par = runner.run(x)
            stats = runner.stats()
        assert stats["fallbacks"] == 0
        assert np.array_equal(y_inproc, y_par, equal_nan=True)

    def test_lut_faults_identical_across_processes(self, tmp_path):
        plan = FaultPlan(seed=9, lut_rate=0.01)
        rng = np.random.default_rng(5)
        pairs = rng.integers(0, 256, size=(32, 2)).astype(np.uint8)

        # Expected: a private registry applying the same plan in-process.
        reg = KernelRegistry(fault_plan=plan)
        be = PositBackend(POSIT8, strategy="pairwise", registry=reg)
        want = np.stack([be.add(pairs[:, 0], pairs[:, 1]), be.mul(pairs[:, 0], pairs[:, 1])], axis=1)

        with ParallelRunner(
            PairwisePositModel(),
            workers=2,
            batch_size=8,
            cache_dir=tmp_path,
            fault_plan=plan,
        ) as runner:
            got = runner.run(pairs)
            stats = runner.stats()
        assert stats["fallbacks"] == 0
        assert np.array_equal(got, want)


# ----------------------------------------------------------------------
# Chaos: crashes, slowdowns, and the degradation ladder
# ----------------------------------------------------------------------
class TestChaosPlan:
    def test_decide_is_deterministic(self):
        a = ChaosPlan(seed=5, crash_rate=0.5, slow_rate=0.2)
        b = ChaosPlan(seed=5, crash_rate=0.5, slow_rate=0.2)
        decisions = [a.decide(c, t) for c in range(20) for t in range(3)]
        assert decisions == [b.decide(c, t) for c in range(20) for t in range(3)]
        assert "crash" in decisions and None in decisions

    def test_attempt_filter(self):
        plan = ChaosPlan(seed=0, crash_rate=1.0, attempts=(0,))
        assert plan.decide(3, 0) == "crash"
        assert plan.decide(3, 1) is None

    def test_crash_once_then_retry_succeeds(self, tmp_path):
        chaos = ChaosPlan(seed=0, crash_rate=1.0, attempts=(0,))
        x = np.random.default_rng(6).normal(size=(16, 6))
        with ParallelRunner(
            TinyModel(seed=3),
            workers=2,
            batch_size=4,
            cache_dir=tmp_path,
            chaos=chaos,
            task_retries=1,
            pool_restarts=2,
        ) as runner:
            y = runner.run(x)
            stats = runner.stats()
        assert np.array_equal(y, TinyModel(seed=3).forward(x))
        assert stats["fallbacks"] == 0  # recovered on the pool, not in-process
        assert stats["pool_restarts"] >= 1
        assert stats["task_retries"] >= 1

    def test_persistent_crashes_exhaust_retries_then_fall_back(self, tmp_path):
        chaos = ChaosPlan(seed=0, crash_rate=1.0)  # every attempt crashes
        x = np.random.default_rng(7).normal(size=(16, 6))
        with ParallelRunner(
            TinyModel(seed=4),
            workers=2,
            batch_size=4,
            cache_dir=tmp_path,
            chaos=chaos,
            task_retries=1,
            pool_restarts=3,
        ) as runner:
            y = runner.run(x)
            stats = runner.stats()
        assert np.array_equal(y, TinyModel(seed=4).forward(x))
        assert stats["fallbacks"] >= 1
        assert sum(stats["fallback_causes"].values()) == stats["fallbacks"]
        assert stats["fallback_causes"].get("retry_exhausted", 0) >= 1

    def test_slowdown_trips_timeout_cause(self, tmp_path):
        chaos = ChaosPlan(seed=0, slow_rate=1.0, slow_s=5.0)
        x = np.random.default_rng(8).normal(size=(8, 6))
        with ParallelRunner(
            TinyModel(seed=5),
            workers=2,
            batch_size=4,
            cache_dir=tmp_path,
            chaos=chaos,
            task_timeout=0.25,
            task_retries=0,
        ) as runner:
            y = runner.run(x)
            stats = runner.stats()
        assert np.array_equal(y, TinyModel(seed=5).forward(x))
        assert stats["fallbacks"] >= 1
        assert stats["fallback_causes"].get("timeout", 0) >= 1


# ----------------------------------------------------------------------
# FormatFaultModel (the resilience-benchmark harness)
# ----------------------------------------------------------------------
class TestFormatFaultModel:
    def _setup(self):
        net = kws_cnn1(seed=0)
        x = np.random.default_rng(10).normal(size=(4, 1, 31, 20))
        return net, x

    def test_zero_rate_is_plain_quantization(self):
        net, x = self._setup()
        be = SoftFloatBackend(FP8_E4M3, strategy="via-float")
        baseline = FormatFaultModel(net, be).forward(x)
        zero = FormatFaultModel(net, be, FaultPlan(seed=1, activation_rate=0.0)).forward(x)
        assert np.array_equal(baseline, zero, equal_nan=True)

    def test_faults_deterministic_and_visible(self):
        net, x = self._setup()
        be = PositBackend(POSIT8, strategy="via-float")
        plan = FaultPlan(seed=2, activation_rate=0.02)
        y1 = FormatFaultModel(net, be, plan).forward(x)
        y2 = FormatFaultModel(net, be, plan).forward(x)
        clean = FormatFaultModel(net, be).forward(x)
        assert np.array_equal(y1, y2, equal_nan=True)
        assert not np.array_equal(y1, clean, equal_nan=True)

"""Deterministic jittered backoff for the kernel registry's disk I/O.

A herd of worker processes hitting one locked cache file used to sleep in
lockstep (fixed ``_IO_BACKOFF_S * 2**attempt``), retrying simultaneously
forever.  The jittered variant decorrelates them while staying a pure
function of ``(attempt, token)`` — no RNG state, so a given process's
retry schedule is reproducible.
"""

import os
import threading

import pytest

from repro.engine.registry import _IO_BACKOFF_S, _io_backoff_s, _io_token

pytestmark = pytest.mark.timeout(30)


class TestIoBackoff:
    def test_deterministic(self):
        for attempt in range(5):
            assert _io_backoff_s(attempt, "tok") == _io_backoff_s(attempt, "tok")

    def test_envelope_is_half_to_three_halves_of_exponential(self):
        for attempt in range(6):
            base = _IO_BACKOFF_S * (2 ** attempt)
            got = _io_backoff_s(attempt, "worker-7")
            assert 0.5 * base <= got < 1.5 * base, (attempt, got, base)

    def test_grows_with_attempt(self):
        # Exponential growth dominates the [0.5, 1.5) jitter band from
        # two attempts apart: 2**(n+2) * 0.5 >= 2**n * 1.5.
        for attempt in range(4):
            assert _io_backoff_s(attempt + 2, "t") > _io_backoff_s(attempt, "t")

    def test_tokens_decorrelate(self):
        delays = {_io_backoff_s(2, f"pid{i}.tid{i}") for i in range(16)}
        assert len(delays) > 1, "every process sleeping identically: herd intact"

    def test_token_identifies_process_and_thread(self):
        token = _io_token()
        assert token == f"{os.getpid()}.{threading.get_ident()}"

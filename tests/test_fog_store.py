"""Content-store accounting invariants and cost-aware admission.

The store is the fog's only stateful cache, and two properties make it
safe to trust under churn:

1. **Byte accounting is exact** — ``resident_bytes`` equals the sum of
   the resident entries' ``nbytes`` after *any* interleaving of puts,
   evictions, refreshes, tampering and clears, and never exceeds the
   budget.  A drifting byte counter would silently shrink (or unbound)
   every node's cache.
2. **Admission is deterministic** — :class:`CostAwareAdmission` sees only
   the access sequence, so two stores driven identically must agree on
   every admit/reject and end bit-identical.  That is what makes the
   policy replayable in tests and benchmarks.
"""

import numpy as np
import pytest

from repro.fog import AdmitAll, ContentStore, CostAwareAdmission, make_admission

pytestmark = pytest.mark.timeout(120)


def payload(kilobytes: int, fill: float = 0.0) -> np.ndarray:
    return np.full(128 * kilobytes, fill)  # 128 float64 = 1 KiB


def assert_accounting_exact(store: ContentStore) -> None:
    """The invariants every mutation must preserve."""
    entries = store._entries
    assert store.resident_bytes == sum(e.nbytes for e in entries.values())
    assert store.resident_bytes <= store.capacity_bytes
    assert len(store) == len(entries)
    stats = store.stats()
    assert stats["resident_bytes"] == store.resident_bytes
    assert stats["entries"] == len(entries)


# ----------------------------------------------------------------------
# 1. Byte accounting under storms
# ----------------------------------------------------------------------
class TestByteAccounting:
    def test_eviction_storm_keeps_books_exact(self):
        store = ContentStore(capacity_bytes=8 * 1024)
        rng = np.random.default_rng(7)
        for i in range(200):
            kb = int(rng.integers(1, 5))
            store.put(f"n{int(rng.integers(0, 40))}", payload(kb, fill=float(i)))
            if rng.random() < 0.3:
                store.get(f"n{int(rng.integers(0, 40))}")
            assert_accounting_exact(store)
        assert store.evictions > 0, "the storm must actually evict"

    def test_refresh_same_name_frees_old_bytes_first(self):
        store = ContentStore(capacity_bytes=4 * 1024)
        store.put("n", payload(3))
        assert store.put("n", payload(4)), "refresh fits: old bytes freed first"
        assert len(store) == 1 and store.resident_bytes == 4 * 1024
        assert_accounting_exact(store)

    def test_clear_zeroes_bytes_keeps_counters(self):
        store = ContentStore(capacity_bytes=8 * 1024)
        for i in range(4):
            store.put(f"n{i}", payload(1))
        store.clear()
        assert store.resident_bytes == 0 and len(store) == 0
        assert store.insertions == 4
        assert_accounting_exact(store)
        # The store is still usable after a wipe.
        assert store.put("again", payload(1))
        assert_accounting_exact(store)

    def test_tampered_entry_eviction_updates_bytes(self):
        store = ContentStore(capacity_bytes=8 * 1024)
        store.put("good", payload(2))
        store.put("bad", payload(2))
        entry = store._entries["bad"]
        tampered = np.array(entry.result)
        tampered[0] = -1.0
        entry.result = tampered
        assert store.get("bad") is None
        assert store.integrity_failures == 1
        assert_accounting_exact(store)
        assert store.get("good") is not None

    def test_oversized_never_perturbs_books(self):
        store = ContentStore(capacity_bytes=1024)
        store.put("n", payload(1))
        before = store.stats()
        assert not store.put("big", payload(2))
        after = store.stats()
        assert after["resident_bytes"] == before["resident_bytes"]
        assert after["entries"] == before["entries"]
        assert after["evictions"] == before["evictions"]


# ----------------------------------------------------------------------
# 2. Cost-aware admission
# ----------------------------------------------------------------------
class TestCostAwareAdmission:
    def test_one_hit_wonder_cannot_evict_hot_expensive_entry(self):
        store = ContentStore(capacity_bytes=2 * 1024, admission="costaware")
        store.put("hot", payload(2), cost=50.0)
        for _ in range(10):
            store.get("hot")  # build frequency for the incumbent
        assert not store.put("wonder", payload(1), cost=0.1)
        assert store.admission_rejections == 1
        assert "hot" in store and "wonder" not in store
        assert_accounting_exact(store)

    def test_frequent_expensive_candidate_displaces_cold_entry(self):
        store = ContentStore(capacity_bytes=2 * 1024, admission="costaware")
        store.put("cold", payload(2), cost=1.0)
        for _ in range(8):
            store.get("contender")  # misses, but the sketch learns the name
        assert store.put("contender", payload(2), cost=5.0)
        assert "contender" in store and "cold" not in store
        assert store.evictions == 1

    def test_lru_policy_is_bit_for_bit_classic(self):
        """AdmitAll must reproduce the historical always-evict LRU."""
        plain = ContentStore(capacity_bytes=3 * 1024)
        lru = ContentStore(capacity_bytes=3 * 1024, admission="lru")
        for store in (plain, lru):
            for i in range(5):
                store.put(f"n{i}", payload(1, fill=float(i)))
        assert list(plain._entries) == list(lru._entries)
        assert plain.admission_rejections == lru.admission_rejections == 0

    def test_admission_is_deterministic_across_stores(self):
        """Identical drive sequences -> bit-identical stores and stats."""

        def drive(store: ContentStore) -> None:
            rng = np.random.default_rng(11)
            for i in range(300):
                name = f"n{int(rng.integers(0, 12))}"
                if rng.random() < 0.5:
                    store.get(name)
                else:
                    kb = int(rng.integers(1, 3))
                    store.put(name, payload(kb, fill=float(i % 7)), cost=float(i % 5))

        a = ContentStore(capacity_bytes=6 * 1024, admission="costaware")
        b = ContentStore(capacity_bytes=6 * 1024, admission="costaware")
        drive(a)
        drive(b)
        assert a.stats() == b.stats()
        assert list(a._entries) == list(b._entries)
        for name in a._entries:
            assert a._entries[name].result.tobytes() == b._entries[name].result.tobytes()

    def test_sketch_ages_by_halving(self):
        policy = CostAwareAdmission(sample_size=10)
        for _ in range(9):
            policy.record_get("x")
        assert policy.frequency("x") == 9 and policy.ages == 0
        policy.record_get("x")  # 10th touch triggers the halving
        assert policy.ages == 1
        assert policy.frequency("x") == 5

    def test_make_admission_resolves_names_and_instances(self):
        assert isinstance(make_admission(None), AdmitAll)
        assert isinstance(make_admission("lru"), AdmitAll)
        assert isinstance(make_admission("costaware"), CostAwareAdmission)
        sentinel = CostAwareAdmission(sample_size=3)
        assert make_admission(sentinel) is sentinel
        with pytest.raises(ValueError):
            make_admission("mru")
        # Fresh instance per store: no shared sketch between nodes.
        assert make_admission("costaware") is not make_admission("costaware")

    def test_policy_visible_in_stats(self):
        assert ContentStore().stats()["policy"] == "lru"
        assert ContentStore(admission="costaware").stats()["policy"] == "costaware"


# ----------------------------------------------------------------------
# 3. reverify_every
# ----------------------------------------------------------------------
class TestReverifyKnob:
    def test_default_verifies_every_hit(self):
        store = ContentStore()
        store.put("n", payload(1))
        for _ in range(5):
            store.get("n")
        assert store.reverifications == 5 and store.reverify_skipped == 0

    def test_every_nth_hit_reverifies(self):
        store = ContentStore(reverify_every=3)
        store.put("n", payload(1))
        for _ in range(7):
            store.get("n")
        assert store.reverifications == 2  # hits 3 and 6
        assert store.reverify_skipped == 5
        assert store.hits == 7

    def test_zero_disables_reverification(self):
        store = ContentStore(reverify_every=0)
        store.put("n", payload(1))
        for _ in range(4):
            store.get("n")
        assert store.reverifications == 0 and store.reverify_skipped == 4

    def test_nth_hit_still_catches_tampering(self):
        store = ContentStore(reverify_every=2)
        store.put("n", payload(1))
        entry = store._entries["n"]
        tampered = np.array(entry.result)
        tampered[0] = 9.0
        entry.result = tampered
        assert store.get("n") is not None, "hit 1 skips the re-hash"
        assert store.get("n") is None, "hit 2 re-hashes and quarantines"
        assert store.integrity_failures == 1 and "n" not in store
        assert_accounting_exact(store)

    def test_negative_reverify_rejected(self):
        with pytest.raises(ValueError):
            ContentStore(reverify_every=-1)

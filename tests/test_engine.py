"""repro.engine: backends, kernel registry, codec edge semantics, parity.

The exhaustive tests drive both op strategies of each backend against the
bit-exact scalar models: ``pairwise`` tables are built *from* the scalar
model (so their parity check guards the plumbing), while the ``via-float``
strategy recomputes every op through decode/float64/encode — an independent
path whose exhaustive agreement validates the vectorized codecs.
"""

import numpy as np
import pytest

from repro.engine import (
    ApproxMultiplierBackend,
    KernelRegistry,
    LNSBackend,
    OpCounters,
    PositBackend,
    SoftFloatBackend,
    backend_for,
    get_codec,
    get_posit_tables,
    get_signed_lut,
)
from repro.engine.kernels import lut_matmul, pairwise_lut, rounded_matmul
from repro.floats import FP8_E4M3, SoftFloat
from repro.lns import LNS, LNSFormat
from repro.posit import POSIT8, POSIT16, STD_POSIT8, Posit, PositFormat
from repro.posit.tensor import PositTable8


# ----------------------------------------------------------------------
# Codec edge semantics through the engine
# ----------------------------------------------------------------------
class TestPositEdgeSemantics:
    @pytest.mark.parametrize("fmt", [POSIT8, POSIT16], ids=str)
    def test_nar_nan_round_trip(self, fmt):
        be = PositBackend(fmt)
        codes = be.encode(np.array([np.nan, np.inf, -np.inf]))
        assert np.all(codes == fmt.pattern_nar)
        assert np.all(np.isnan(be.decode(codes)))

    @pytest.mark.parametrize("fmt", [POSIT8, POSIT16], ids=str)
    def test_nar_poisons_arithmetic(self, fmt):
        be = PositBackend(fmt)
        nar = np.array([fmt.pattern_nar])
        one = be.encode(np.array([1.0]))
        assert be.add(nar, one)[0] == fmt.pattern_nar
        assert be.mul(nar, one)[0] == fmt.pattern_nar
        assert be.mul(nar, np.array([0]))[0] == fmt.pattern_nar

    @pytest.mark.parametrize("fmt", [POSIT8, POSIT16], ids=str)
    def test_never_round_to_zero(self, fmt):
        be = PositBackend(fmt)
        tiny = np.array([1e-300, -1e-300])
        codes = be.encode(tiny)
        minpos_neg = (-fmt.pattern_minpos) & ((1 << fmt.nbits) - 1)
        assert codes[0] == fmt.pattern_minpos
        assert codes[1] == minpos_neg
        # Products far below minpos**1 clamp to minpos, never to zero.
        minpos = np.array([fmt.pattern_minpos])
        assert be.mul(minpos, minpos)[0] == fmt.pattern_minpos

    @pytest.mark.parametrize("fmt", [POSIT8, POSIT16], ids=str)
    def test_minpos_maxpos_clamping(self, fmt):
        be = PositBackend(fmt)
        huge = np.array([1e300, -1e300])
        codes = be.encode(huge)
        maxpos_neg = (-fmt.pattern_maxpos) & ((1 << fmt.nbits) - 1)
        assert codes[0] == fmt.pattern_maxpos
        assert codes[1] == maxpos_neg
        # maxpos * maxpos saturates at maxpos: no overflow to NaR.
        maxpos = np.array([fmt.pattern_maxpos])
        assert be.mul(maxpos, maxpos)[0] == fmt.pattern_maxpos
        assert be.add(maxpos, maxpos)[0] == fmt.pattern_maxpos

    def test_zero_round_trip(self):
        be = PositBackend(POSIT8)
        assert be.encode(np.array([0.0]))[0] == 0
        assert be.decode(np.array([0]))[0] == 0.0


# ----------------------------------------------------------------------
# Exhaustive parity against the scalar models
# ----------------------------------------------------------------------
class TestExhaustivePositParity:
    @pytest.mark.parametrize("fmt", [POSIT8, STD_POSIT8], ids=str)
    def test_all_pairs_both_strategies(self, fmt):
        """Engine add/mul match the scalar Posit model on all 256x256 pairs.

        The pairwise tables are the tabulated scalar model; the via-float
        strategy recomputes every pair independently through the vectorized
        codec.  Both must agree with the scalar reference everywhere.
        """
        table = get_posit_tables(fmt)  # built from the scalar model
        pairwise = PositBackend(fmt, strategy="pairwise")
        viafloat = PositBackend(fmt, strategy="via-float")
        codes = np.arange(256)
        a, b = np.meshgrid(codes, codes, indexing="ij")
        assert np.array_equal(pairwise.add(a, b), table.add_table)
        assert np.array_equal(pairwise.mul(a, b), table.mul_table)
        assert np.array_equal(viafloat.add(a, b), table.add_table)
        assert np.array_equal(viafloat.mul(a, b), table.mul_table)

    def test_scalar_spot_checks(self):
        """Direct scalar-Posit spot checks (guards the table builder too)."""
        be = PositBackend(POSIT8)
        rng = np.random.default_rng(0)
        i = rng.integers(0, 256, 100)
        j = rng.integers(0, 256, 100)
        adds, muls = be.add(i, j), be.mul(i, j)
        for x, y, s, m in zip(i, j, adds, muls):
            a, b = Posit(POSIT8, int(x)), Posit(POSIT8, int(y))
            assert (a + b).pattern == int(s)
            assert (a * b).pattern == int(m)

    def test_posit16_sample_parity(self):
        """via-float is bit-exact at 16 bits too (sampled, scalar is slow)."""
        be = PositBackend(POSIT16)
        assert be.strategy == "via-float"
        rng = np.random.default_rng(1)
        i = rng.integers(0, 1 << 16, 300)
        j = rng.integers(0, 1 << 16, 300)
        adds, muls = be.add(i, j), be.mul(i, j)
        for x, y, s, m in zip(i, j, adds, muls):
            a, b = Posit(POSIT16, int(x)), Posit(POSIT16, int(y))
            assert (a + b).pattern == int(s)
            assert (a * b).pattern == int(m)


class TestExhaustiveSoftFloatParity:
    def test_fp8_all_pairs_both_strategies(self):
        """Engine FP8 add/mul match scalar SoftFloat on all 256x256 pairs."""
        pairwise = SoftFloatBackend(FP8_E4M3, strategy="pairwise")
        viafloat = SoftFloatBackend(FP8_E4M3, strategy="via-float")
        codes = np.arange(256)
        a, b = np.meshgrid(codes, codes, indexing="ij")
        # pairwise tables are the tabulated scalar model; via-float must agree
        assert np.array_equal(viafloat.add(a, b), pairwise.add(a, b))
        assert np.array_equal(viafloat.mul(a, b), pairwise.mul(a, b))

    def test_fp8_scalar_spot_checks(self):
        be = SoftFloatBackend(FP8_E4M3)
        rng = np.random.default_rng(2)
        i = rng.integers(0, 256, 100)
        j = rng.integers(0, 256, 100)
        adds, muls = be.add(i, j), be.mul(i, j)
        for x, y, s, m in zip(i, j, adds, muls):
            a, b = SoftFloat(FP8_E4M3, int(x)), SoftFloat(FP8_E4M3, int(y))
            assert a.add(b).pattern == int(s)
            assert a.mul(b).pattern == int(m)


# ----------------------------------------------------------------------
# Contractions
# ----------------------------------------------------------------------
class TestPositContractions:
    def test_quire_matmul_matches_dot_exact(self):
        be = PositBackend(POSIT8)
        rng = np.random.default_rng(3)
        a = be.encode(rng.normal(size=(3, 5)))
        b = be.encode(rng.normal(size=(5, 2)))
        out = be.matmul(a, b, accumulate="quire")
        for i in range(3):
            for j in range(2):
                assert out[i, j] == be.dot_exact(a[i], b[:, j])

    def test_rounded_matmul_matches_sequential_dot(self):
        be = PositBackend(POSIT8)
        table = PositTable8(POSIT8, tables=(be.tables.add_table, be.tables.mul_table))
        rng = np.random.default_rng(4)
        a = be.encode(rng.normal(size=(4, 6)))
        b = be.encode(rng.normal(size=(6, 3)))
        out = be.matmul(a, b, accumulate="rounded")
        for i in range(4):
            for j in range(3):
                assert out[i, j] == table.dot_sequential(a[i], b[:, j])

    def test_float64_matmul_close_to_real(self):
        be = PositBackend(POSIT8)
        rng = np.random.default_rng(5)
        x = rng.normal(size=(4, 8))
        y = rng.normal(size=(8, 4))
        out = be.decode(be.matmul(be.encode(x), be.encode(y)))
        assert np.allclose(out, x @ y, rtol=0.2, atol=0.2)


# ----------------------------------------------------------------------
# LNS backend
# ----------------------------------------------------------------------
class TestLNSBackend:
    FMT = LNSFormat(3, 4)

    def test_round_trip_and_zero(self):
        be = LNSBackend(self.FMT)
        x = np.array([1.0, -2.0, 0.0, 0.75])
        q = be.decode(be.encode(x))
        assert q[2] == 0.0
        nz = x != 0
        assert np.all(np.abs(q[nz] - x[nz]) / np.abs(x[nz]) < 0.05)

    def test_mul_parity_with_scalar(self):
        be = LNSBackend(self.FMT)
        fmt = self.FMT
        rng = np.random.default_rng(6)
        codes = rng.integers(0, 1 << fmt.width, size=(2, 200))
        got = be.mul(codes[0], codes[1])
        e_mask = (1 << fmt.e_bits) - 1
        for i, j, g in zip(codes[0], codes[1], got):
            a = LNS(fmt, int(i) >> fmt.e_bits, (int(i) & e_mask) + fmt.zero_code)
            b = LNS(fmt, int(j) >> fmt.e_bits, (int(j) & e_mask) + fmt.zero_code)
            s = a.mul(b)
            want = 0 if s.is_zero() else (s.sign << fmt.e_bits) | ((s.e_code - fmt.zero_code) & e_mask)
            assert int(g) == want

    def test_add_strategies_agree(self):
        tab = LNSBackend(self.FMT)
        phi = LNSBackend(self.FMT, table_bits=0)
        assert tab.strategy == "pairwise" and phi.strategy == "via-phi"
        rng = np.random.default_rng(7)
        a = rng.integers(0, 1 << self.FMT.width, 500)
        b = rng.integers(0, 1 << self.FMT.width, 500)
        assert np.array_equal(tab.add(a, b), phi.add(a, b))


# ----------------------------------------------------------------------
# Approximate-multiplier backend
# ----------------------------------------------------------------------
class TestApproxBackend:
    def test_exact_core_matches_integer_matmul(self):
        from repro.approx import ExactMultiplier

        be = ApproxMultiplierBackend(ExactMultiplier())
        rng = np.random.default_rng(8)
        a = rng.integers(-127, 128, size=(5, 9))
        b = rng.integers(-127, 128, size=(9, 4))
        assert np.array_equal(be.matmul(a, b), a @ b)
        assert be.dot_exact(a[0], b[:, 0]) == int(a[0] @ b[:, 0])

    def test_signed_lut_memoized(self):
        from repro.approx import TruncatedMultiplier

        l1 = get_signed_lut(TruncatedMultiplier(cut=4))
        l2 = get_signed_lut(TruncatedMultiplier(cut=4))
        assert l1 is l2
        l3 = get_signed_lut(TruncatedMultiplier(cut=5))
        assert l3 is not l1


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------
class TestKernels:
    def test_lut_matmul_equals_exact_for_product_table(self):
        n = 16
        idx = np.arange(n)
        lut = np.multiply.outer(idx, idx).astype(np.int64)
        rng = np.random.default_rng(9)
        a = rng.integers(0, n, size=(3, 10))
        b = rng.integers(0, n, size=(10, 2))
        assert np.array_equal(lut_matmul(lut, a, b, chunk=3), a @ b)

    def test_pairwise_lut_broadcasts(self):
        table = np.arange(16).reshape(4, 4)
        out = pairwise_lut(table, np.array([[0], [1]]), np.array([2, 3]))
        assert out.shape == (2, 2)
        assert out[1, 1] == table[1, 3]

    def test_rounded_matmul_shape_mismatch(self):
        t = np.zeros((4, 4), dtype=np.uint8)
        with pytest.raises(ValueError):
            rounded_matmul(t, t, np.zeros((2, 3), int), np.zeros((4, 2), int))


# ----------------------------------------------------------------------
# Kernel registry: memoization and disk persistence
# ----------------------------------------------------------------------
class TestRegistry:
    def test_codec_cache_shared_per_format(self):
        assert get_codec(POSIT8) is get_codec(POSIT8)
        assert get_posit_tables(POSIT8) is get_posit_tables(POSIT8)
        assert get_codec(POSIT8) is not get_codec(POSIT16)
        # Backends constructed independently share the cached codec.
        assert PositBackend(POSIT8).codec is PositBackend(POSIT8).codec

    def test_memoization_counts_hits(self):
        reg = KernelRegistry()
        calls = []

        def build():
            calls.append(1)
            return {"t": np.arange(4)}

        t1 = reg.get(("k",), build)
        t2 = reg.get(("k",), build)
        assert t1 is t2 and len(calls) == 1
        assert reg.stats()["hits"] == 1 and reg.stats()["misses"] == 1

    def test_disk_persistence_round_trip(self, tmp_path):
        fmt = PositFormat(6, 0)
        reg1 = KernelRegistry(cache_dir=tmp_path)
        t1 = get_posit_tables(fmt, registry=reg1)
        files = list(tmp_path.glob("*.npz"))
        assert files, "tables were not persisted"
        # A fresh registry (fresh process, conceptually) loads from disk.
        reg2 = KernelRegistry(cache_dir=tmp_path)
        t2 = get_posit_tables(fmt, registry=reg2)
        assert reg2.disk_loads >= 1
        assert np.array_equal(t1.add_table, t2.add_table)
        assert np.array_equal(t1.mul_table, t2.mul_table)

    def test_no_disk_writes_by_default(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        reg = KernelRegistry()
        assert reg.cache_dir is None or str(reg.cache_dir)  # env may set it
        reg.get(("ephemeral",), lambda: {"t": np.arange(2)})
        assert not list(tmp_path.glob("*.npz"))


# ----------------------------------------------------------------------
# Counters and factory
# ----------------------------------------------------------------------
class TestObservability:
    def test_counters_record_ops(self):
        counters = OpCounters()
        be = PositBackend(POSIT8, counters=counters)
        x = be.encode(np.ones(10))
        be.add(x, x)
        be.mul(x, x)
        snap = counters.snapshot()
        assert snap["encode"]["calls"] == 1 and snap["encode"]["elements"] == 10
        assert snap["add"]["calls"] == 1 and snap["mul"]["calls"] == 1
        assert counters.total("elements") >= 30

    def test_backend_for_dispatch(self):
        from repro.approx import ExactMultiplier

        assert isinstance(backend_for(POSIT8), PositBackend)
        assert isinstance(backend_for(FP8_E4M3), SoftFloatBackend)
        assert isinstance(backend_for(LNSFormat(3, 4)), LNSBackend)
        assert isinstance(backend_for(ExactMultiplier()), ApproxMultiplierBackend)
        with pytest.raises(TypeError):
            backend_for("posit8")

"""Property/fuzz tests for the NDJSON wire format.

Two invariants, attacked with generated inputs rather than examples:

1. **Round-trip**: any valid request object survives
   ``encode_line`` -> ``decode_line`` bit-identically, and parses into
   the same :class:`Request` twice (parsing is deterministic).
2. **Totality**: no byte sequence — truncated lines, random garbage,
   type-confused JSON — makes the decoder or validator raise anything
   but :class:`ProtocolError`.  The server answers malformed input with
   an error response; a stray ``KeyError`` would instead kill the
   connection handler.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.serve.protocol import (
    MAX_ELEMENTS,
    ProtocolError,
    decode_line,
    encode_line,
    parse_request,
)

pytestmark = pytest.mark.timeout(120)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
finite = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6
)


def matrix(rows, cols, elements=finite):
    return st.lists(
        st.lists(elements, min_size=cols, max_size=cols),
        min_size=rows,
        max_size=rows,
    )


@st.composite
def posit_matmul_requests(draw):
    m = draw(st.integers(1, 4))
    k = draw(st.integers(1, 4))
    n = draw(st.integers(1, 4))
    return {
        "id": draw(st.text(min_size=1, max_size=8)),
        "workload": "posit_matmul",
        "tenant": draw(st.sampled_from(["default", "acme", "edge-7"])),
        "bits": draw(st.integers(3, 32)),
        "es": draw(st.integers(0, 4)),
        "a": draw(matrix(m, k)),
        "b": draw(matrix(k, n)),
    }


@st.composite
def approx_matmul_requests(draw):
    int8 = st.integers(-128, 127).map(float)
    m = draw(st.integers(1, 3))
    k = draw(st.integers(1, 3))
    n = draw(st.integers(1, 3))
    return {
        "id": draw(st.text(min_size=1, max_size=8)),
        "workload": "approx_matmul",
        "mult": draw(st.sampled_from(["exact", "trunc6"])),
        "a": draw(matrix(m, k, int8)),
        "b": draw(matrix(k, n, int8)),
    }


@st.composite
def nn_predict_requests(draw):
    samples = draw(st.integers(1, 2))
    # One kws1 sample is (1, 31, 20); a stack of them is (n, 1, 31, 20).
    x = draw(
        st.lists(
            st.lists(matrix(31, 20), min_size=1, max_size=1),
            min_size=samples,
            max_size=samples,
        )
    )
    req = {
        "id": draw(st.text(min_size=1, max_size=8)),
        "workload": "nn_predict",
        "model": "kws1",
        "x": x if samples > 1 else x[0],
    }
    if draw(st.booleans()):
        req["deadline_ms"] = draw(st.floats(min_value=1.0, max_value=1e6))
    return req


valid_requests = st.one_of(
    posit_matmul_requests(), approx_matmul_requests(), nn_predict_requests()
)


# ----------------------------------------------------------------------
# 1. Round-trip
# ----------------------------------------------------------------------
class TestRoundTrip:
    @given(valid_requests)
    def test_line_codec_bit_identical(self, req):
        line = encode_line(req)
        assert line.endswith(b"\n") and line.count(b"\n") == 1
        assert decode_line(line) == req
        # Idempotent: re-encoding the decode yields the same bytes.
        assert encode_line(decode_line(line)) == line

    @given(valid_requests)
    def test_parse_accepts_and_is_deterministic(self, req):
        r1 = parse_request(decode_line(encode_line(req)))
        r2 = parse_request(req)
        assert r1.id == r2.id == str(req["id"])
        assert r1.batch_key() == r2.batch_key()
        assert r1.rows == r2.rows
        for name in ("a", "b", "x"):
            v1, v2 = getattr(r1, name), getattr(r2, name)
            assert (v1 is None) == (v2 is None)
            if v1 is not None:
                assert v1.tobytes() == v2.tobytes()

    @given(posit_matmul_requests())
    def test_wire_floats_parse_exactly(self, req):
        """JSON float round-trips are exact: the parsed operand bytes
        equal a direct float64 conversion of the payload lists."""
        parsed = parse_request(decode_line(encode_line(req)))
        assert parsed.a.tobytes() == np.asarray(req["a"], dtype=np.float64).tobytes()
        assert parsed.b.tobytes() == np.asarray(req["b"], dtype=np.float64).tobytes()


# ----------------------------------------------------------------------
# 2. Totality: garbage never escapes as a non-ProtocolError
# ----------------------------------------------------------------------
def assert_rejects_cleanly(obj):
    try:
        parse_request(obj)
    except ProtocolError:
        pass  # the one acceptable exception type


class TestMalformedNeverCrashes:
    @given(st.binary(max_size=256))
    def test_random_bytes_decode_or_protocol_error(self, blob):
        try:
            decode_line(blob)
        except ProtocolError:
            pass

    @given(valid_requests, st.integers(min_value=0))
    def test_truncated_lines_never_crash(self, req, cut):
        """Every proper prefix of a valid line is rejected, not crashed on."""
        line = encode_line(req)
        cut = cut % len(line)
        prefix = line[:cut]
        try:
            obj = decode_line(prefix)
        except ProtocolError:
            return  # truncation broke the JSON: the common case
        # A cut at a lucky boundary can still be valid JSON (e.g. cutting
        # after a closing brace is impossible, but an empty prefix decodes
        # to nothing only via error; numbers can truncate to numbers).
        assert_rejects_cleanly(obj)

    @given(
        st.recursive(
            st.one_of(
                st.none(),
                st.booleans(),
                st.integers(),
                finite,
                st.text(max_size=10),
            ),
            lambda children: st.one_of(
                st.lists(children, max_size=4),
                st.dictionaries(st.text(max_size=8), children, max_size=4),
            ),
            max_leaves=12,
        )
    )
    def test_arbitrary_json_rejected_cleanly(self, obj):
        assert_rejects_cleanly(obj)

    @given(valid_requests, st.sampled_from(["id", "workload", "a", "b", "x"]))
    def test_dropped_field_rejected_cleanly(self, req, victim):
        mutated = {k: v for k, v in req.items() if k != victim}
        try:
            parsed = parse_request(mutated)
        except ProtocolError:
            return
        # Dropping an optional-with-default field can still parse; the
        # result must then be internally consistent.
        assert parsed.workload in ("posit_matmul", "nn_predict", "approx_matmul")

    @given(
        valid_requests,
        st.sampled_from(["workload", "bits", "es", "a", "b", "x", "deadline_ms"]),
        st.one_of(
            st.none(),
            st.booleans(),
            st.text(max_size=6),
            st.floats(allow_nan=True, allow_infinity=True),
            st.lists(st.integers(), max_size=3),
            st.dictionaries(st.text(max_size=4), st.integers(), max_size=2),
        ),
    )
    def test_type_confused_field_rejected_cleanly(self, req, victim, junk):
        try:
            parse_request({**req, victim: junk})
        except ProtocolError:
            pass

    def test_examples_from_the_wild(self):
        """Deterministic regression pins for specific nasty shapes."""
        for line in (
            b"",
            b"\n",
            b"null\n",
            b"[]\n",
            b'"posit_matmul"\n',
            b"{\n",
            b'{"id": 1}\n',
            b"\xff\xfe\x00\x01",
        ):
            try:
                obj = decode_line(line)
            except ProtocolError:
                continue
            assert_rejects_cleanly(obj)

    def test_oversized_rejected_with_code(self):
        cols = MAX_ELEMENTS // 4 + 1
        with pytest.raises(ProtocolError) as exc:
            parse_request(
                {
                    "id": "big",
                    "workload": "posit_matmul",
                    "a": {"__big__": True},  # placeholder, replaced below
                    "b": [[0.0]],
                }
            )
        assert exc.value.code in ("bad_request", "too_large")
        # The real oversized case, built without materializing the JSON.
        big = np.zeros((4, cols))
        with pytest.raises(ProtocolError) as exc:
            parse_request(
                {"id": "big", "workload": "posit_matmul", "a": big, "b": [[0.0]]}
            )
        assert exc.value.code == "too_large"

"""End-to-end tests for the asyncio serving front end.

Every test spins up a real :class:`ReproServer` on an ephemeral port and
talks to it over real sockets — the NDJSON data plane through
:class:`ServeClient`, the scrape plane through :func:`http_get`.  The
suite ends with the chaos smoke the CI serve job runs: 200 mixed
requests against a crash-injected worker pool, with the zero-drop ledger
(``accepted == responded``) as the pass condition.
"""

import asyncio
import json
import time

import numpy as np
import pytest

from repro.engine import ChaosPlan
from repro.engine.observe import Metrics
from repro.engine.posit_backend import PositBackend
from repro.nn.posit_inference import PositQuantizedNetwork
from repro.nn.zoo import kws_cnn1
from repro.posit import STD_POSIT8, PositFormat
from repro.serve import EngineExecutor, ReproServer, ServeClient, ServeConfig, http_get
from repro.serve.executor import MULTIPLIERS
from repro.approx.simulate import approx_matmul, signed_lut

# Real sockets + a real event loop per test: a wedged server must fail
# fast in CI, not stall the suite (see the timeout hook in conftest.py).
pytestmark = pytest.mark.timeout(120)


def run(coro):
    return asyncio.run(coro)


class SlowExecutor(EngineExecutor):
    """Deterministic dispatch-thread stall for backpressure/deadline tests."""

    def __init__(self, delay_s: float, **kwargs):
        super().__init__(**kwargs)
        self.delay_s = delay_s

    def execute(self, key, requests):
        time.sleep(self.delay_s)
        return super().execute(key, requests)


# ----------------------------------------------------------------------
# Data plane correctness
# ----------------------------------------------------------------------
class TestDataPlane:
    def test_posit_matmul_matches_direct_engine(self):
        async def go():
            rng = np.random.default_rng(11)
            a = rng.normal(size=(3, 4))
            b = rng.normal(size=(4, 2))
            async with ReproServer(ServeConfig(), metrics=Metrics()) as server:
                async with await ServeClient.connect(*server.address) as client:
                    resp = await client.request(
                        workload="posit_matmul",
                        bits=8,
                        es=2,
                        a=a.tolist(),
                        b=b.tolist(),
                    )
            assert resp["ok"], resp
            backend = PositBackend(PositFormat(8, 2), stable_contractions=True)
            want = backend.decode(
                backend.matmul(backend.encode(a), backend.encode(b))
            )
            # JSON float round-trips are exact, so equality is exact.
            assert resp["result"] == want.tolist()
            assert resp["ms"] >= 0
            assert resp["batch_rows"] >= 3

        run(go())

    def test_nn_predict_matches_direct_network(self):
        async def go():
            rng = np.random.default_rng(12)
            x = rng.normal(size=(1, 31, 20))
            async with ReproServer(ServeConfig(), metrics=Metrics()) as server:
                async with await ServeClient.connect(*server.address) as client:
                    resp = await client.request(
                        workload="nn_predict", model="kws1", x=x.tolist()
                    )
            assert resp["ok"], resp
            qnet = PositQuantizedNetwork(
                kws_cnn1(seed=0), STD_POSIT8, stable_contractions=True
            )
            want = qnet.forward(x[None])
            assert resp["result"] == want.tolist()

        run(go())

    def test_approx_matmul_matches_direct_lut(self):
        async def go():
            rng = np.random.default_rng(13)
            a = rng.integers(-128, 128, size=(2, 6))
            b = rng.integers(-128, 128, size=(6, 3))
            async with ReproServer(ServeConfig(), metrics=Metrics()) as server:
                async with await ServeClient.connect(*server.address) as client:
                    resp = await client.request(
                        workload="approx_matmul",
                        mult="trunc6",
                        a=a.tolist(),
                        b=b.tolist(),
                    )
            assert resp["ok"], resp
            want = approx_matmul(a, b, signed_lut(MULTIPLIERS["trunc6"]))
            assert resp["result"] == want.tolist()

        run(go())

    def test_concurrent_requests_coalesce(self):
        """Simultaneous same-key requests share one batch (batch_rows > 1)."""

        async def go():
            rng = np.random.default_rng(14)
            config = ServeConfig(max_batch=64, max_delay_ms=50.0)
            async with ReproServer(config, metrics=Metrics()) as server:
                async with await ServeClient.connect(*server.address) as client:
                    resps = await asyncio.gather(
                        *[
                            client.request(
                                workload="nn_predict",
                                model="kws1",
                                x=rng.normal(size=(1, 31, 20)).tolist(),
                            )
                            for _ in range(4)
                        ]
                    )
                stats = server.describe()
            assert all(r["ok"] for r in resps)
            # All four fit one 50 ms window, so at least one response saw
            # batch mates.
            assert max(r["batch_rows"] for r in resps) > 1
            assert stats["batcher"]["batches"] < 4

        run(go())

    def test_bad_requests_get_error_responses(self):
        async def go():
            async with ReproServer(ServeConfig(), metrics=Metrics()) as server:
                async with await ServeClient.connect(*server.address) as client:
                    bad_workload = await client.request(workload="nope")
                    bad_model = await client.request(
                        workload="nn_predict",
                        model="not_a_model",
                        x=np.zeros((1, 31, 20)).tolist(),
                    )
                    bad_shape = await client.request(
                        workload="nn_predict",
                        model="kws1",
                        x=np.zeros((1, 5, 5)).tolist(),
                    )
                stats = server.describe()
            assert bad_workload == {
                "id": bad_workload["id"],
                "ok": False,
                "error": "bad_request",
                "message": bad_workload["message"],
            }
            assert not bad_model["ok"] and bad_model["error"] == "bad_request"
            assert "not_a_model" in bad_model["message"]
            assert not bad_shape["ok"] and "sample shape" in bad_shape["message"]
            # bad_model/bad_shape were *accepted* (they fail in the engine),
            # so the ledger still balances.
            assert stats["accepted"] == stats["responded"]

        run(go())


# ----------------------------------------------------------------------
# Admission behaviour over the wire
# ----------------------------------------------------------------------
class TestAdmissionOverWire:
    def test_queue_full_rejects_with_retry_after(self):
        async def go():
            metrics = Metrics()
            config = ServeConfig(queue_limit=1, max_delay_ms=0.0)
            executor = SlowExecutor(0.5, metrics=metrics)
            async with ReproServer(config, executor=executor, metrics=metrics) as server:
                async with await ServeClient.connect(*server.address) as client:
                    first = asyncio.create_task(
                        client.request(
                            workload="posit_matmul", a=[[1.0]], b=[[1.0]]
                        )
                    )
                    await asyncio.sleep(0.1)  # first is admitted + dispatching
                    second = await client.request(
                        workload="posit_matmul", a=[[1.0]], b=[[1.0]]
                    )
                    first = await first
            assert first["ok"]
            assert not second["ok"] and second["error"] == "rejected"
            assert "queue_full" in second["message"]
            assert second["retry_after_ms"] > 0
            assert metrics.counters["serve.rejected.queue_full"] == 1

        run(go())

    def test_tenant_quota_rejects_over_rate(self):
        async def go():
            config = ServeConfig(tenant_rate=1.0, tenant_burst=1.0)
            async with ReproServer(config, metrics=Metrics()) as server:
                async with await ServeClient.connect(*server.address) as client:
                    ok = await client.request(
                        workload="posit_matmul", tenant="hog",
                        a=[[1.0]], b=[[1.0]],
                    )
                    throttled = await client.request(
                        workload="posit_matmul", tenant="hog",
                        a=[[1.0]], b=[[1.0]],
                    )
                    other = await client.request(
                        workload="posit_matmul", tenant="quiet",
                        a=[[1.0]], b=[[1.0]],
                    )
            assert ok["ok"]
            assert not throttled["ok"] and "quota" in throttled["message"]
            assert throttled["retry_after_ms"] > 0
            assert other["ok"], "one tenant's quota must not throttle another"

        run(go())

    def test_deadline_exceeded_is_answered_not_dropped(self):
        async def go():
            metrics = Metrics()
            executor = SlowExecutor(0.1, metrics=metrics)
            async with ReproServer(
                ServeConfig(max_delay_ms=0.0), executor=executor, metrics=metrics
            ) as server:
                async with await ServeClient.connect(*server.address) as client:
                    resp = await client.request(
                        workload="posit_matmul",
                        a=[[1.0]],
                        b=[[1.0]],
                        deadline_ms=10,
                    )
                stats = server.describe()
            assert not resp["ok"] and resp["error"] == "deadline_exceeded"
            assert stats["accepted"] == stats["responded"] == 1
            assert metrics.counters["serve.deadline_exceeded"] == 1

        run(go())


# ----------------------------------------------------------------------
# HTTP scrape plane
# ----------------------------------------------------------------------
class TestScrapePlane:
    def test_healthz_metrics_stats_and_404(self):
        async def go():
            metrics = Metrics()
            async with ReproServer(ServeConfig(), metrics=metrics) as server:
                async with await ServeClient.connect(*server.address) as client:
                    await client.request(
                        workload="posit_matmul", a=[[1.0, 2.0]], b=[[3.0], [4.0]]
                    )
                health = await http_get(*server.address, "/healthz")
                prom = await http_get(*server.address, "/metrics")
                stats = await http_get(*server.address, "/stats")
                missing = await http_get(*server.address, "/nope")
            assert health == (200, "ok\n")
            assert prom[0] == 200
            body = prom[1]
            assert "repro_serve_admitted_total 1" in body
            assert "repro_serve_queue_depth 0" in body
            # Latency histogram: bucket lines plus sum/count.
            assert 'repro_serve_latency_s_bucket{le="+Inf"} 1' in body
            assert "repro_serve_latency_s_count 1" in body
            assert stats[0] == 200
            doc = json.loads(stats[1])
            assert doc["accepted"] == doc["responded"] == 1
            assert doc["config"]["max_batch"] == 16
            assert missing[0] == 404

        run(go())


# ----------------------------------------------------------------------
# The CI chaos smoke: 200 mixed requests, crash-injected pool, zero drops
# ----------------------------------------------------------------------
class TestChaosSmoke:
    def test_200_mixed_requests_zero_drops_under_chaos(self):
        """The acceptance smoke: a chaos-crashed worker pool (crash_rate
        0.35) serving 200 mixed requests from 10 concurrent clients must
        answer every accepted request — degraded execution is fine,
        silence is not."""

        async def go():
            metrics = Metrics()
            config = ServeConfig(
                max_batch=16,
                max_delay_ms=2.0,
                queue_limit=256,
                workers=2,
                # Seed 2 deterministically crashes chunk 0 on its first
                # attempt (and recovers on retry), so the degradation
                # ladder is guaranteed to engage whatever the batch shapes.
                chaos=ChaosPlan(seed=2, crash_rate=0.35),
                default_deadline_ms=120_000.0,
            )
            rng = np.random.default_rng(2026)

            def payloads():
                out = []
                for i in range(200):
                    kind = i % 3
                    if kind == 0:
                        out.append(
                            dict(
                                workload="nn_predict",
                                model="kws1",
                                tenant=f"t{i % 4}",
                                x=rng.normal(size=(1, 31, 20)).tolist(),
                            )
                        )
                    elif kind == 1:
                        out.append(
                            dict(
                                workload="posit_matmul",
                                tenant=f"t{i % 4}",
                                a=rng.normal(size=(4, 6)).tolist(),
                                b=rng.normal(size=(6, 3)).tolist(),
                            )
                        )
                    else:
                        out.append(
                            dict(
                                workload="approx_matmul",
                                mult="trunc6",
                                tenant=f"t{i % 4}",
                                a=rng.integers(-128, 128, size=(3, 5)).tolist(),
                                b=rng.integers(-128, 128, size=(5, 2)).tolist(),
                            )
                        )
                return out

            async def client_run(requests):
                client = await ServeClient.connect(*server.address)
                try:
                    return await asyncio.gather(
                        *[client.request(timeout=120.0, **p) for p in requests]
                    )
                finally:
                    await client.close()

            async with ReproServer(config, metrics=metrics) as server:
                work = payloads()
                shards = [work[i::10] for i in range(10)]
                replies = await asyncio.gather(
                    *[client_run(shard) for shard in shards]
                )
                stats = server.describe()

            flat = [r for shard in replies for r in shard]
            assert len(flat) == 200, "every request must get a response"
            # The zero-drop ledger: whatever chaos did to the pool, every
            # accepted request was answered.
            assert stats["accepted"] == stats["responded"]
            assert stats["accepted"] == 200  # queue_limit 256 -> no rejects
            assert all(r["ok"] for r in flat), [
                r for r in flat if not r["ok"]
            ][:3]
            # Chaos actually fired: the pool degraded at least once.
            runners = stats["executor"]["runners"]
            degraded = sum(
                r.get("task_retries", 0)
                + r.get("fallbacks", 0)
                + r.get("pool_restarts", 0)
                for r in runners.values()
            )
            assert degraded > 0, f"chaos never fired: {runners}"

        run(go())

"""Layer-level tests: every backward pass is checked against numerical
gradients, the bedrock of the Section IV training stack."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2D,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool,
    MaxPool2D,
    ReLU,
    ResidualBlock,
    Sequential,
)
from repro.nn.layers import col2im, im2col


def numeric_grad(f, x, eps=1e-6):
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        up = f()
        x[idx] = orig - eps
        down = f()
        x[idx] = orig
        g[idx] = (up - down) / (2 * eps)
        it.iternext()
    return g


def check_input_grad(layer, x, training=True, tol=1e-5):
    rng = np.random.default_rng(0)
    out = layer.forward(x, training)
    w = rng.normal(size=out.shape)  # random projection to a scalar loss
    grad_in = layer.backward(w)

    def loss():
        return float((layer.forward(x, training) * w).sum())

    num = numeric_grad(loss, x)
    assert np.allclose(grad_in, num, atol=tol), np.abs(grad_in - num).max()


def check_param_grads(layer, x, training=True, tol=1e-5):
    rng = np.random.default_rng(1)
    out = layer.forward(x, training)
    w = rng.normal(size=out.shape)
    for p in layer.params():
        p.grad[...] = 0.0
    layer.backward(w)

    for p in layer.params():
        def loss():
            return float((layer.forward(x, training) * w).sum())

        num = numeric_grad(loss, p.data)
        assert np.allclose(p.grad, num, atol=tol), (p.name, np.abs(p.grad - num).max())


class TestIm2Col:
    def test_adjoint_property(self):
        # <im2col(x), y> == <x, col2im(y)> defines a correct adjoint pair.
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 6, 6))
        cols, oh, ow = im2col(x, 3, 3, 1, 1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, 3, 3, 1, 1)).sum())
        assert abs(lhs - rhs) < 1e-9

    def test_patch_contents(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        cols, oh, ow = im2col(x, 2, 2, 2, 0)
        assert (oh, ow) == (2, 2)
        assert cols[0].tolist() == [0, 1, 4, 5]
        assert cols[3].tolist() == [10, 11, 14, 15]


class TestDense:
    def test_gradients(self):
        rng = np.random.default_rng(2)
        layer = Dense(5, 4, rng)
        x = rng.normal(size=(3, 5))
        check_input_grad(layer, x)
        check_param_grads(layer, x)

    def test_macs(self):
        assert Dense(10, 7).macs((10,)) == 70


class TestConv2D:
    @pytest.mark.parametrize("stride,pad", [(1, 1), (2, 0), (2, 1)])
    def test_gradients(self, stride, pad):
        rng = np.random.default_rng(3)
        layer = Conv2D(2, 3, 3, stride, pad, rng)
        x = rng.normal(size=(2, 2, 6, 6))
        check_input_grad(layer, x)
        check_param_grads(layer, x)

    def test_known_convolution(self):
        layer = Conv2D(1, 1, 3, 1, 1)
        layer.w.data = np.zeros((1, 1, 3, 3))
        layer.w.data[0, 0, 1, 1] = 1.0  # identity kernel
        layer.b.data[:] = 0.0
        x = np.random.default_rng(4).normal(size=(1, 1, 5, 5))
        assert np.allclose(layer.forward(x), x)

    def test_macs_formula(self):
        layer = Conv2D(3, 8, 3, 1, 1)
        assert layer.macs((3, 16, 16)) == 16 * 16 * 8 * 3 * 9

    def test_output_shape(self):
        layer = Conv2D(3, 8, 3, 2, 1)
        assert layer.output_shape((3, 16, 16)) == (8, 8, 8)


class TestActivationsAndPooling:
    def test_relu_gradients(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(4, 7)) + 0.1  # keep away from the kink
        check_input_grad(ReLU(), x)

    def test_maxpool_gradients(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(2, 2, 4, 4))
        check_input_grad(MaxPool2D(2), x, tol=1e-4)

    def test_maxpool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = MaxPool2D(2).forward(x)
        assert out[0, 0].tolist() == [[5, 7], [13, 15]]

    def test_gap_gradients(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(2, 3, 4, 4))
        check_input_grad(GlobalAvgPool(), x)

    def test_flatten_roundtrip(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(2, 3, 4, 4))
        f = Flatten()
        y = f.forward(x)
        assert y.shape == (2, 48)
        assert np.array_equal(f.backward(y), x)


class TestBatchNorm:
    def test_normalizes(self):
        rng = np.random.default_rng(9)
        bn = BatchNorm2D(3)
        x = rng.normal(2.0, 3.0, size=(8, 3, 5, 5))
        y = bn.forward(x, training=True)
        assert np.allclose(y.mean(axis=(0, 2, 3)), 0, atol=1e-7)
        assert np.allclose(y.std(axis=(0, 2, 3)), 1, atol=1e-2)

    def test_gradients(self):
        rng = np.random.default_rng(10)
        bn = BatchNorm2D(2)
        x = rng.normal(size=(4, 2, 3, 3))
        check_input_grad(bn, x, training=True, tol=1e-4)
        check_param_grads(bn, x, training=True, tol=1e-4)

    def test_fold_into_conv(self):
        rng = np.random.default_rng(11)
        conv = Conv2D(2, 3, 3, 1, 1, rng)
        bn = BatchNorm2D(3)
        bn.running_mean = rng.normal(size=3)
        bn.running_var = rng.uniform(0.5, 2.0, size=3)
        bn.gamma.data = rng.uniform(0.5, 1.5, size=3)
        bn.beta.data = rng.normal(size=3)
        x = rng.normal(size=(2, 2, 5, 5))
        want = bn.forward(conv.forward(x), training=False)
        bn.fold_into(conv)
        got = bn.forward(conv.forward(x), training=False)
        assert np.allclose(got, want, atol=1e-9)


class TestResidualBlock:
    def test_gradients(self):
        rng = np.random.default_rng(12)
        block = ResidualBlock(2, rng)
        x = rng.normal(size=(2, 2, 4, 4))
        check_input_grad(block, x, tol=1e-4)
        check_param_grads(block, x, tol=1e-4)

    def test_macs_sum_of_convs(self):
        block = ResidualBlock(4)
        shape = (4, 8, 8)
        assert block.macs(shape) == 2 * block.conv1.macs(shape)


class TestSequential:
    def test_param_and_mac_counting(self):
        net = Sequential(
            [Conv2D(1, 2, 3, 1, 1), ReLU(), Flatten(), Dense(2 * 4 * 4, 3)],
            input_shape=(1, 4, 4),
        )
        assert net.param_count() == (2 * 9 + 2) + (32 * 3 + 3)
        assert net.macs() == 4 * 4 * 2 * 9 + 32 * 3

    def test_end_to_end_gradients(self):
        rng = np.random.default_rng(13)
        net = Sequential(
            [Conv2D(1, 2, 3, 1, 1, rng), ReLU(), Flatten(), Dense(2 * 16, 3, rng)],
            input_shape=(1, 4, 4),
        )
        x = rng.normal(size=(2, 1, 4, 4))
        w = rng.normal(size=(2, 3))
        out = net.forward(x, training=True)
        gin = net.backward(w)

        def loss():
            return float((net.forward(x, training=True) * w).sum())

        num = numeric_grad(loss, x)
        assert np.allclose(gin, num, atol=1e-5)

"""Operator-generator tests (Section II): specialization, fusion, tables, Fig. 1."""

import math
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.generators import (
    BipartiteTable,
    ConstantMultiplier,
    FusedNorm,
    MultipartiteTable,
    MultipleConstantMultiplier,
    PiecewisePolynomial,
    PlainTable,
    SinCosGenerator,
    Squarer,
    csd_digits,
    shift_add_cost,
)
from repro.generators.errors import ErrorBudget, is_faithful, ulp


def _recip(x: Fraction) -> Fraction:
    return 1 / (1 + x)


def _sqrt1p(x: Fraction) -> Fraction:
    scaled = ((1 + x).numerator << 160) // (1 + x).denominator
    return Fraction(math.isqrt(scaled), 1 << 80)


class TestCSD:
    @given(st.integers(min_value=-(2**24), max_value=2**24))
    def test_value_preserved(self, c):
        assert sum(s * (1 << sh) for sh, s in csd_digits(c)) == c

    @given(st.integers(min_value=1, max_value=2**24))
    def test_no_adjacent_nonzeros(self, c):
        shifts = sorted(sh for sh, _ in csd_digits(c))
        assert all(b - a >= 2 for a, b in zip(shifts, shifts[1:]))

    def test_classic_examples(self):
        assert csd_digits(15) == [(0, -1), (4, 1)]  # 16 - 1
        assert shift_add_cost(255) == 1  # 256 - 1
        assert shift_add_cost(0) == 0
        assert shift_add_cost(1) == 0

    @given(st.integers(min_value=1, max_value=2**20))
    def test_csd_never_worse_than_binary(self, c):
        assert len(csd_digits(c)) <= bin(c).count("1") + 1


class TestConstantMultiplier:
    @given(st.integers(min_value=1, max_value=2**16), st.integers(min_value=0, max_value=2**16))
    def test_exact(self, c, x):
        assert ConstantMultiplier(c, 16).apply(x) == c * x

    def test_specialization_beats_generic(self):
        # Section II: a constant multiplier is (much) cheaper than a
        # generic one for sparse constants.
        m = ConstantMultiplier(1025, 16)  # 1024 + 1
        assert m.adders == 1
        assert m.adders < m.generic_multiplier_cost

    @given(st.integers(min_value=-(2**12), max_value=-1), st.integers(min_value=0, max_value=255))
    def test_negative_constants(self, c, x):
        assert ConstantMultiplier(c, 8).apply(x) == c * x


class TestMCM:
    @given(
        st.lists(st.integers(min_value=1, max_value=4095), min_size=2, max_size=6),
        st.integers(min_value=0, max_value=4095),
    )
    def test_all_products_exact(self, consts, x):
        m = MultipleConstantMultiplier(consts)
        assert m.apply(x) == [c * x for c in consts]

    def test_sharing_reduces_adders(self):
        # 45 = 101101_csd-ish, 90 = 45*2, 105: heavy digit overlap.
        m = MultipleConstantMultiplier([45, 90, 105, 75])
        assert m.adder_count() < m.naive_adder_count()

    def test_shared_terms_found(self):
        m = MultipleConstantMultiplier([45, 90])  # same digits, shifted
        assert len(m.shared_terms) >= 1


class TestSquarer:
    @given(st.integers(min_value=0, max_value=1023))
    def test_exact(self, x):
        assert Squarer(10).apply(x) == x * x

    def test_half_the_partial_products(self):
        sq = Squarer(8)
        assert sq.partial_products() == 36  # n(n+1)/2
        assert sq.generic_partial_products() == 64
        assert 0.40 <= sq.savings() <= 0.5

    def test_compressed_area_smaller(self):
        sq = Squarer(8)
        assert sq.compressed_area() < sq.generic_compressed_area()


class TestErrorBudget:
    def test_spend_within_budget(self):
        b = ErrorBudget(output_frac_bits=8)
        b.spend("table", Fraction(1, 1024)).spend("round", Fraction(1, 1024))
        assert b.remaining() > 0

    def test_blown_budget_raises(self):
        b = ErrorBudget(output_frac_bits=8)
        with pytest.raises(ValueError):
            b.spend("too much", Fraction(1, 256))

    def test_ulp(self):
        assert ulp(8) == Fraction(1, 256)


class TestTables:
    def test_plain_table_correctly_rounded(self):
        t = PlainTable(_recip, in_bits=8, out_frac_bits=8)
        for x in range(256):
            exact = _recip(Fraction(x, 256))
            assert abs(Fraction(t.lookup(x), 256) - exact) <= Fraction(1, 512)

    def test_bipartite_faithful(self):
        t = BipartiteTable(_recip, in_bits=10, out_frac_bits=8)
        assert t.verify_faithful()

    def test_bipartite_smaller_than_plain(self):
        # [11]: table size reduction is the whole point.
        plain = PlainTable(_recip, in_bits=12, out_frac_bits=10)
        bi = BipartiteTable(_recip, in_bits=12, out_frac_bits=10)
        assert bi.table_bits() < plain.table_bits() / 2

    def test_bipartite_on_sqrt(self):
        t = BipartiteTable(_sqrt1p, in_bits=10, out_frac_bits=8)
        assert t.verify_faithful()

    def test_multipartite_faithful(self):
        t = MultipartiteTable(_recip, in_bits=12, out_frac_bits=10)
        assert t.verify_faithful()

    def test_multipartite_smaller_than_bipartite_at_scale(self):
        bi = BipartiteTable(_recip, in_bits=14, out_frac_bits=11)
        mu = MultipartiteTable(_recip, in_bits=14, out_frac_bits=11)
        assert mu.verify_faithful()
        assert mu.table_bits() <= bi.table_bits()

    def test_split_covers_input(self):
        t = BipartiteTable(_recip, in_bits=10, out_frac_bits=8)
        assert t.alpha + t.beta + t.gamma == 10


class TestPiecewisePolynomial:
    def test_faithful_reciprocal(self):
        p = PiecewisePolynomial(_recip, in_bits=12, out_frac_bits=10, degree=2)
        assert p.verify_faithful()

    def test_faithful_exp(self):
        import math as m

        def f(x: Fraction) -> Fraction:
            return Fraction(m.exp(float(x))).limit_denominator(10**15) / 3

        p = PiecewisePolynomial(f, in_bits=11, out_frac_bits=9, degree=2)
        assert p.verify_faithful()

    def test_higher_degree_needs_fewer_segments(self):
        p1 = PiecewisePolynomial(_sqrt1p, in_bits=12, out_frac_bits=10, degree=1)
        p2 = PiecewisePolynomial(_sqrt1p, in_bits=12, out_frac_bits=10, degree=2)
        assert p2.seg_bits <= p1.seg_bits

    def test_multiplier_count_is_degree(self):
        p = PiecewisePolynomial(_recip, in_bits=10, out_frac_bits=8, degree=2)
        assert p.multiplier_count() == 2


class TestSinCos:
    @pytest.mark.parametrize("p", [8, 10, 12])
    def test_faithful(self, p):
        g = SinCosGenerator(out_frac_bits=p)
        assert g.max_error_ulps(step=5) < 1.0

    def test_exact_axes(self):
        g = SinCosGenerator(out_frac_bits=10)
        one = 1 << 10
        w = g.w
        assert g.evaluate(0) == (0, one)  # angle 0
        s, c = g.evaluate(1 << (w - 1))  # x = 1/2: angle pi/2
        assert (s, c) == (one, 0)
        s, c = g.evaluate(1 << w)  # x = 1: angle pi
        assert (s, c) == (0, -one)
        s, c = g.evaluate(3 << (w - 1))  # x = 3/2: angle 3pi/2
        assert (s, c) == (-one, 0)

    def test_pythagorean_identity_close(self):
        g = SinCosGenerator(out_frac_bits=10)
        one = 1 << 10
        for x in range(0, 1 << (g.w + 1), 97):
            s, c = g.evaluate(x)
            assert abs(s * s + c * c - one * one) <= 4 * one  # within ~2 ulp each

    def test_report_widths_derived(self):
        g = SinCosGenerator(out_frac_bits=12)
        widths = g.report.widths()
        # "very few signals have the same bit width"
        assert widths["working"] == 12 + g.g
        assert widths["table_address(A)"] < widths["working"]
        assert g.report.taylor_terms_sin >= 1

    def test_bigger_output_needs_bigger_tables(self):
        g8 = SinCosGenerator(out_frac_bits=8)
        g14 = SinCosGenerator(out_frac_bits=14)
        assert g14.report.table_address_bits >= g8.report.table_address_bits

    def test_symmetry_sin_negation(self):
        g = SinCosGenerator(out_frac_bits=10)
        w1 = 1 << g.w  # x = 1 (half turn)
        for x in range(1, 1 << (g.w - 2), 131):
            s1, _ = g.evaluate(x)
            s2, _ = g.evaluate(w1 + x)  # sin(pi + t) = -sin(t)
            assert s1 == -s2


class TestFusedNorm:
    def test_fused_is_faithful(self):
        fn = FusedNorm(in_frac_bits=6, out_frac_bits=10)
        assert fn.max_error_ulps(fused=True, limit=20) < 1.0

    def test_composed_is_much_worse(self):
        # Operator fusion motivation: composing rounded sub-operators
        # destroys accuracy.
        fn = FusedNorm(in_frac_bits=6, out_frac_bits=10)
        assert fn.max_error_ulps(fused=False, limit=20) > 2.0

    def test_result_in_unit_range(self):
        fn = FusedNorm(in_frac_bits=4, out_frac_bits=8)
        one = 1 << 8
        for x in range(-16, 17):
            for y in range(1, 17):
                assert -one <= fn.apply(x, y) <= one

    def test_diagonal_value(self):
        fn = FusedNorm(in_frac_bits=4, out_frac_bits=12)
        got = Fraction(fn.apply(5, 5), 1 << 12)
        assert abs(got - Fraction(math.isqrt(2 << 48), 2 << 24)) < Fraction(1, 1 << 11)

    def test_origin_rejected(self):
        fn = FusedNorm(in_frac_bits=4, out_frac_bits=8)
        with pytest.raises(ZeroDivisionError):
            fn.apply(0, 0)


class TestFaithfulPredicate:
    def test_is_faithful_boundary(self):
        # An operator off by exactly one ULP is NOT faithful.
        ref = lambda x: Fraction(x, 256)
        good = lambda x: x
        off = lambda x: x + 1
        assert is_faithful(good, ref, range(16), 8)
        assert not is_faithful(off, ref, range(16), 8)

"""Logarithmic number system tests."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lns import LNS, LNSAdderTable, LNSFormat

FMT = LNSFormat(5, 8)

floats_pos = st.floats(min_value=0.01, max_value=50.0)


class TestFormat:
    def test_widths(self):
        assert FMT.e_bits == 14
        assert FMT.width == 15

    def test_zero_code_reserved(self):
        assert FMT.zero_code < FMT.e_min

    def test_dynamic_range(self):
        # +-2^(~32/..): 2 * e_max octaves of range.
        assert FMT.dynamic_range_decades() > 15

    def test_invalid(self):
        with pytest.raises(ValueError):
            LNSFormat(0, 4)


class TestCodec:
    @given(floats_pos)
    def test_round_trip_error_bounded(self, x):
        v = LNS.from_float(FMT, x).to_float()
        # Half an exponent ULP of relative error.
        assert abs(v - x) / x <= 2.0 ** (1 / (1 << FMT.frac_bits)) - 1

    def test_zero(self):
        z = LNS.from_float(FMT, 0.0)
        assert z.is_zero() and z.to_float() == 0.0

    def test_negative(self):
        v = LNS.from_float(FMT, -3.5)
        assert v.sign == 1 and v.to_float() < 0

    def test_saturation(self):
        big = LNS.from_float(FMT, 1e30)
        assert big.e_code == FMT.e_max
        tiny = LNS.from_float(FMT, 1e-30)
        assert tiny.e_code == FMT.e_min
        assert not tiny.is_zero()  # like posits: no underflow to zero


class TestMultiplicative:
    @given(floats_pos, floats_pos)
    def test_mul_exact_in_log_domain(self, x, y):
        a, b = LNS.from_float(FMT, x), LNS.from_float(FMT, y)
        got = (a * b).to_float()
        want = a.to_float() * b.to_float()
        assert abs(got - want) / want < 1e-9

    @given(floats_pos, floats_pos)
    def test_div_exact(self, x, y):
        a, b = LNS.from_float(FMT, x), LNS.from_float(FMT, y)
        got = (a / b).to_float()
        want = a.to_float() / b.to_float()
        assert abs(got - want) / abs(want) < 1e-9

    def test_mul_sign_rules(self):
        a = LNS.from_float(FMT, -2.0)
        b = LNS.from_float(FMT, 3.0)
        assert (a * b).sign == 1
        assert (a * a).sign == 0

    def test_zero_propagation(self):
        z = LNS.zero(FMT)
        a = LNS.from_float(FMT, 5.0)
        assert (a * z).is_zero()
        with pytest.raises(ZeroDivisionError):
            a / z

    def test_sqrt_halves_exponent(self):
        assert LNS.from_float(FMT, 16.0).sqrt().to_float() == pytest.approx(4.0, rel=1e-6)
        with pytest.raises(ValueError):
            LNS.from_float(FMT, -4.0).sqrt()

    @given(floats_pos)
    def test_sqrt_squares_back(self, x):
        a = LNS.from_float(FMT, x)
        s = a.sqrt()
        assert (s * s).to_float() == pytest.approx(a.to_float(), rel=0.01)


class TestAdditive:
    @given(floats_pos, floats_pos)
    def test_add_within_one_ulp(self, x, y):
        a, b = LNS.from_float(FMT, x), LNS.from_float(FMT, y)
        got = (a + b).to_float()
        want = a.to_float() + b.to_float()
        ulp_rel = 2.0 ** (1 / (1 << FMT.frac_bits)) - 1
        assert abs(got - want) / want <= ulp_rel

    @given(floats_pos)
    def test_x_minus_x_is_zero(self, x):
        a = LNS.from_float(FMT, x)
        assert (a - a).is_zero()

    @given(floats_pos)
    def test_add_zero_identity(self, x):
        a = LNS.from_float(FMT, x)
        assert (a + LNS.zero(FMT)) == a

    def test_subtraction(self):
        a, b = LNS.from_float(FMT, 5.0), LNS.from_float(FMT, 3.0)
        assert (a - b).to_float() == pytest.approx(2.0, rel=0.01)

    def test_opposite_sign_addition(self):
        a, b = LNS.from_float(FMT, -5.0), LNS.from_float(FMT, 3.0)
        assert (a + b).to_float() == pytest.approx(-2.0, rel=0.01)

    def test_commutative(self):
        a, b = LNS.from_float(FMT, 1.7), LNS.from_float(FMT, 42.0)
        assert (a + b) == (b + a)


class TestAdderTable:
    @pytest.fixture(scope="class")
    def table(self):
        return LNSAdderTable(FMT)

    def test_faithful_vs_direct(self, table):
        # Table-driven addition stays within one exponent ULP of real.
        ulp_rel = 2.0 ** (1 / (1 << FMT.frac_bits)) - 1
        assert table.max_error_vs_direct(samples=800) <= ulp_rel

    def test_far_operands_passthrough(self, table):
        a = LNS.from_float(FMT, 1e6)
        b = LNS.from_float(FMT, 1e-6)
        assert table.add(a, b) == a

    def test_equal_operands_add_one_octave(self, table):
        a = LNS.from_float(FMT, 3.0)
        got = table.add(a, a).to_float()
        assert got == pytest.approx(6.0, rel=0.01)

    def test_rejects_mixed_signs(self, table):
        a = LNS.from_float(FMT, 1.0)
        with pytest.raises(ValueError):
            table.add(a, a.negate())

    def test_table_smaller_than_plain_equivalent(self):

        bi = LNSAdderTable(FMT, bipartite=True)
        plain = LNSAdderTable(FMT, bipartite=False)
        assert bi.table_bits() < plain.table_bits()

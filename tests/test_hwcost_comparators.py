"""Comparison-unit circuits and the Kulisch accumulator."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits import gate_cost
from repro.floats import BINARY16, FP8_E4M3, KulischAccumulator, SoftFloat
from repro.floats.compare import relation
from repro.hwcost import build_float_comparator, build_integer_comparator
from repro.posit import POSIT8, Posit


_INT_CMP = build_integer_comparator(8)


@pytest.fixture(scope="module")
def int_cmp():
    return _INT_CMP


@pytest.fixture(scope="module")
def float_cmp():
    return build_float_comparator(FP8_E4M3)


class TestIntegerComparator:
    def test_exhaustive_signed(self, int_cmp):
        pa, pb = np.meshgrid(np.arange(256), np.arange(256))
        pa, pb = pa.ravel(), pb.ravel()
        out = int_cmp.evaluate_vector(a=pa, b=pb)
        sa = np.where(pa > 127, pa - 256, pa)
        sb = np.where(pb > 127, pb - 256, pb)
        assert np.array_equal(out["lt"], (sa < sb).astype(np.int64))
        assert np.array_equal(out["eq"], (sa == sb).astype(np.int64))

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
    def test_orders_posits_for_free(self, pa, pb):
        a, b = Posit(POSIT8, pa), Posit(POSIT8, pb)
        got = _INT_CMP.evaluate_buses(a=pa, b=pb)
        assert got["lt"] == int(a < b)
        assert got["eq"] == int(a == b)

    def test_nar_needs_no_special_case(self, int_cmp):
        nar = POSIT8.pattern_nar
        assert int_cmp.evaluate_buses(a=nar, b=nar)["eq"] == 1
        for other in (0, 1, 0x40, 0x7F, 0xFF):
            assert int_cmp.evaluate_buses(a=nar, b=other)["lt"] == 1


class TestFloatComparator:
    def test_exhaustive_relations(self, float_cmp):
        pa, pb = np.meshgrid(np.arange(256), np.arange(256))
        pa, pb = pa.ravel(), pb.ravel()
        out = float_cmp.evaluate_vector(a=pa, b=pb)
        for i in range(0, len(pa), 7):
            a = SoftFloat(FP8_E4M3, int(pa[i]))
            b = SoftFloat(FP8_E4M3, int(pb[i]))
            rel = relation(a, b)
            assert out["lt"][i] == int(rel == "lt")
            assert out["eq"][i] == int(rel == "eq")
            assert out["unordered"][i] == int(rel == "un")

    def test_signed_zeros_equal(self, float_cmp):
        pz, nz = 0, FP8_E4M3.sign_bit
        got = float_cmp.evaluate_buses(a=pz, b=nz)
        assert got["eq"] == 1 and got["lt"] == 0

    def test_nan_unordered(self, float_cmp):
        nan = FP8_E4M3.pattern_quiet_nan
        got = float_cmp.evaluate_buses(a=nan, b=nan)
        assert got["unordered"] == 1 and got["eq"] == 0

    def test_float_costs_more_than_integer(self, int_cmp, float_cmp):
        # Section V: "Substantial circuit logic is needed for the comparison
        # of two floats" vs reusing the integer unit for posits.
        assert gate_cost(float_cmp) > 1.5 * gate_cost(int_cmp)
        assert len(float_cmp.gates) > 1.5 * len(int_cmp.gates)


class TestKulisch:
    def test_exact_dot(self):
        k = KulischAccumulator(BINARY16)
        xs = [SoftFloat.from_float(BINARY16, v) for v in (1e-3, 1e3, -1e3, 1.0)]
        ones = [SoftFloat.from_float(BINARY16, 1.0)] * 4
        result = k.dot(xs, ones)
        exact = sum(x.to_fraction() for x in xs)
        assert result.to_fraction() == SoftFloat.from_fraction(BINARY16, exact).to_fraction()

    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF), min_size=1, max_size=12))
    def test_accumulation_exact(self, patterns):
        from fractions import Fraction

        k = KulischAccumulator(BINARY16)
        one = SoftFloat.from_float(BINARY16, 1.0)
        exact = Fraction(0)
        for p in patterns:
            sf = SoftFloat(BINARY16, p)
            if not sf.is_finite():
                continue
            k.add_product(sf, one)
            exact += sf.to_fraction()
        assert k.to_fraction() == exact

    def test_special_values(self):
        k = KulischAccumulator(BINARY16)
        inf = SoftFloat.inf(BINARY16)
        one = SoftFloat.from_float(BINARY16, 1.0)
        k.add_product(inf, one)
        assert k.to_float().is_inf()
        k.add_product(inf.negate(), one)  # opposing infinities -> NaN
        assert k.to_float().is_nan()

    def test_inf_times_zero_is_nan(self):
        k = KulischAccumulator(BINARY16)
        k.add_product(SoftFloat.inf(BINARY16), SoftFloat.zero(BINARY16))
        assert k.to_float().is_nan()

    def test_register_width_vs_quire(self):
        from repro.posit import POSIT16

        # binary16's Kulisch register is narrower than the posit16 quire:
        # posits buy their extra dynamic range with a wider accumulator.
        assert KulischAccumulator.register_width(BINARY16) < POSIT16.quire_width()

    def test_clear(self):
        k = KulischAccumulator(BINARY16)
        k.add_product(SoftFloat.from_float(BINARY16, 2.0), SoftFloat.from_float(BINARY16, 3.0))
        k.clear()
        assert k.to_float().is_zero()

"""Gate-level posit/float datapath verification (Fig. 8 and the Section V cost table).

The 8-bit multipliers are verified exhaustively (all 65536 operand pairs)
through the vectorized circuit evaluator.
"""

import numpy as np
import pytest

from repro.floats import FP8_E4M3, SoftFloat
from repro.hwcost import (
    build_float_decoder,
    build_float_multiplier,
    build_posit_decoder,
    build_posit_multiplier,
    hardware_comparison,
)
from repro.posit import POSIT8, Posit, PositFormat
from repro.posit.format import STD_POSIT8


def _all_pairs(n=8):
    pa, pb = np.meshgrid(np.arange(1 << n), np.arange(1 << n))
    return pa.ravel(), pb.ravel()


class TestPositMultiplierCircuit:
    @pytest.mark.parametrize("fmt", [POSIT8, STD_POSIT8], ids=["es0", "es2"])
    def test_exhaustive_vs_software(self, fmt):
        circ = build_posit_multiplier(fmt)
        pa, pb = _all_pairs()
        out = circ.evaluate_vector(a=pa, b=pb)["p"]
        want = np.empty(len(pa), dtype=np.int64)
        # Software reference via 256x256 table built from the oracle-checked model.
        table = np.empty((256, 256), dtype=np.int64)
        for i in range(256):
            A = Posit(fmt, i)
            for j in range(256):
                table[i, j] = (A * Posit(fmt, j)).pattern
        want = table[pa, pb]
        assert np.array_equal(out, want)

    def test_small_format_exhaustive(self):
        fmt = PositFormat(6, 1)
        circ = build_posit_multiplier(fmt)
        pa, pb = _all_pairs(6)
        out = circ.evaluate_vector(a=pa, b=pb)["p"]
        for i in range(len(pa)):
            want = (Posit(fmt, int(pa[i])) * Posit(fmt, int(pb[i]))).pattern
            assert out[i] == want, (hex(int(pa[i])), hex(int(pb[i])))

    def test_decoder_outputs(self):
        circ = build_posit_decoder(POSIT8)
        for pattern in range(256):
            got = circ.evaluate_buses(x=pattern)
            p = Posit(POSIT8, pattern)
            assert got["is_nar"] == int(p.is_nar())
            assert got["is_zero"] == int(p.is_zero())
            if not p.is_nar():
                assert got["sign"] == p.sign


class TestFloatMultiplierCircuit:
    def test_full_ieee_exhaustive(self):
        circ = build_float_multiplier(FP8_E4M3, full_ieee=True)
        pa, pb = _all_pairs()
        out = circ.evaluate_vector(a=pa, b=pb)["p"]
        for i in range(0, len(pa), 1):
            A = SoftFloat(FP8_E4M3, int(pa[i]))
            B = SoftFloat(FP8_E4M3, int(pb[i]))
            want = A.mul(B)
            if want.is_nan():
                assert SoftFloat(FP8_E4M3, int(out[i])).is_nan()
            else:
                assert out[i] == want.pattern, (hex(int(pa[i])), hex(int(pb[i])))

    def test_normals_only_on_normal_domain(self):
        from fractions import Fraction

        circ = build_float_multiplier(FP8_E4M3, full_ieee=False)
        pa, pb = _all_pairs()
        out = circ.evaluate_vector(a=pa, b=pb)["p"]
        mn = Fraction(FP8_E4M3.min_normal)
        checked = 0
        for i in range(len(pa)):
            A = SoftFloat(FP8_E4M3, int(pa[i]))
            B = SoftFloat(FP8_E4M3, int(pb[i]))
            if not (A.is_finite() and B.is_finite()):
                continue
            if A.is_subnormal() or B.is_subnormal():
                continue
            exact = A.to_fraction() * B.to_fraction()
            if exact != 0 and abs(exact) < mn:
                continue  # flush-to-zero territory
            want = A.mul(B)
            assert out[i] == want.pattern
            checked += 1
        assert checked > 40_000

    def test_normals_only_flushes_subnormal_results(self):
        circ = build_float_multiplier(FP8_E4M3, full_ieee=False)
        # min_normal * 0.5 underflows: normals-only must flush to zero.
        a = SoftFloat(FP8_E4M3, FP8_E4M3.pattern_min_normal).pattern
        b = SoftFloat.from_float(FP8_E4M3, 0.25).pattern
        out = circ.evaluate_buses(a=a, b=b)["p"]
        assert out == 0

    def test_decoder_classification(self):
        circ = build_float_decoder(FP8_E4M3)
        for pattern in range(256):
            got = circ.evaluate_buses(x=pattern)
            sf = SoftFloat(FP8_E4M3, pattern)
            assert got["is_zero"] == int(sf.is_zero())
            assert got["is_inf"] == int(sf.is_inf())
            assert got["is_nan"] == int(sf.is_nan())
            assert got["is_sub"] == int(sf.is_subnormal())


class TestCostComparison:
    @pytest.fixture(scope="class")
    def rows(self):
        return hardware_comparison(POSIT8, FP8_E4M3)

    def test_three_design_points(self, rows):
        assert [r.design for r in rows] == [
            "fp8_e4m3_mul_normal",
            "posit8e0_mul",
            "fp8_e4m3_mul_full",
        ]

    def test_posit_more_than_normals_only(self, rows):
        # Section V: "Posit hardware is slightly more expensive than
        # normals-only float hardware".
        normal, posit, full = rows
        assert posit.gates > normal.gates
        assert posit.overhead_gates > normal.overhead_gates

    def test_full_ieee_more_than_normals_only(self, rows):
        # Full compliance pays for subnormals/NaN/inf: Fig. 6's trap regions.
        normal, _, full = rows
        assert full.gates > 1.5 * normal.gates

    def test_posit_significand_is_wider(self, rows):
        # Tapered precision: the posit's max significand beats the float's.
        normal, posit, _ = rows
        assert posit.sig_bits > normal.sig_bits

    def test_posit_decode_uses_no_multiplier(self):

        dec = build_posit_decoder(POSIT8)
        assert len(dec.gates) < 400

"""FPGA package tests: regularization (Figs. 3-4), packing, DSP, utilization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fpga import (
    AGILEX_MODES,
    BRAINWAVE,
    RANDOM_LOGIC,
    TYPICAL_SOFT_ARITHMETIC,
    ALM,
    ALMBudget,
    CarrySegment,
    DSPBlock,
    UtilizationModel,
    agilex_device,
    fractal_pack,
    naive_mapping_stats,
    pack_segments,
    regularize_3x3,
)
from repro.floats import BINARY16, SoftFloat


class TestALM:
    def test_single_function_limit(self):
        alm = ALM()
        alm.add("f", frozenset("abcdef"))
        assert alm.input_count == 6

    def test_seven_inputs_rejected(self):
        alm = ALM()
        assert not alm.can_add(frozenset("abcdefg"))

    def test_fracturable_sharing(self):
        alm = ALM()
        alm.add("f", frozenset("abcd"))
        assert alm.can_add(frozenset("abce"))  # shared support fits
        alm.add("g", frozenset("abce"))
        with pytest.raises(ValueError):
            alm.add("h", frozenset("xy"))  # already two functions

    def test_budget_packs_shared(self):
        budget = ALMBudget()
        a1 = budget.place("f", {"a", "b", "c", "d"})
        a2 = budget.place("g", {"a", "b", "c", "d"})
        assert a1 is a2
        assert budget.count == 1


class TestRegularized3x3:
    def test_exhaustive_equivalence(self):
        # The Fig. 4 two-level form must equal a*b for all 64 cases.
        mul = regularize_3x3()
        for a in range(8):
            for b in range(8):
                assert mul.multiply(a, b) == a * b, (a, b)

    def test_two_rows(self):
        mul = regularize_3x3()
        stats = mul.stats()
        assert stats.rows == 2
        assert stats.balanced

    def test_three_chain_alms_one_out_of_band(self):
        # "a single 3 ALM carry chain, with a single out of band ALM"
        stats = regularize_3x3().stats()
        assert stats.chain_alms == 3
        assert stats.out_of_band_alms == 1
        assert stats.total_alms == 4

    def test_six_independent_inputs(self):
        # "with 6 independent inputs over the 4 ALMs"
        assert regularize_3x3().stats().independent_inputs == 6

    def test_naive_mapping_is_unbalanced(self):
        # Fig. 3: "The number of independent inputs per column is grossly
        # unbalanced, varying from two to six bits."
        stats = naive_mapping_stats()
        assert stats.rows == 3
        assert stats.max_column_height == 3  # three inputs after column 2
        assert stats.min_column_inputs == 2
        assert stats.max_column_inputs == 6
        assert not stats.balanced

    def test_regularized_uses_fewer_alms(self):
        assert regularize_3x3().stats().total_alms < naive_mapping_stats().total_alms

    def test_aux_functions_share_one_alm(self):
        budget = regularize_3x3().alm_budget()
        out_of_band = [a for a in budget.alms if not a.on_chain]
        assert len(out_of_band) == 1
        assert out_of_band[0].input_count <= 6


class TestPacking:
    def test_single_segment_fits(self):
        r = pack_segments([CarrySegment("s", 5)], chain_capacity=10, chain_count=1)
        assert r.unplaced == 0
        assert r.chains_used == 1

    def test_separation_enforced(self):
        # Two 5-long segments + 1 separator do not fit an 10-ALM chain.
        r = pack_segments(
            [CarrySegment("a", 5), CarrySegment("b", 5)], chain_capacity=10, chain_count=2
        )
        assert r.unplaced == 0
        assert r.chains_used == 2

    def test_decomposition_when_fragmented(self):
        # A 12-long segment cannot fit any single 8-ALM chain: must split.
        r = pack_segments([CarrySegment("big", 12)], chain_capacity=8, chain_count=2)
        assert r.unplaced == 0
        assert r.splits >= 1

    def test_unplaceable_reported(self):
        r = pack_segments([CarrySegment("big", 100)], chain_capacity=4, chain_count=1)
        assert r.unplaced >= 1

    def test_hard_depopulation_fills_chains(self):
        r = pack_segments([CarrySegment("s", 3)], chain_capacity=10, chain_count=1)
        assert r.chains[0].used == 10  # padded to capacity

    def test_deterministic_given_seed(self):
        segs = [CarrySegment(f"s{i}", 3 + i % 5) for i in range(20)]
        r1 = pack_segments(segs, 16, 8, seed=7)
        r2 = pack_segments(segs, 16, 8, seed=7)
        assert r1.metric() == r2.metric()
        assert [c.placements for c in r1.chains] == [c.placements for c in r2.chains]

    def test_fractal_pack_not_worse_than_seed_zero(self):
        segs = [CarrySegment(f"s{i}", 2 + (i * 7) % 9) for i in range(40)]
        base = pack_segments(segs, 20, 10, seed=0)
        best = fractal_pack(segs, 20, 10, seeds=16)
        assert best.metric() <= base.metric()

    def test_recreated_from_seed(self):
        # fractal_pack keeps only metrics, then re-creates the winner.
        segs = [CarrySegment(f"s{i}", 2 + (i * 3) % 7) for i in range(30)]
        best = fractal_pack(segs, 16, 10, seeds=8)
        again = pack_segments(segs, 16, 10, seed=best.seed)
        assert again.metric() == best.metric()

    @given(st.lists(st.integers(min_value=1, max_value=12), min_size=1, max_size=30))
    def test_all_placed_or_reported(self, lengths):
        segs = [CarrySegment(f"s{i}", ln) for i, ln in enumerate(lengths)]
        r = pack_segments(segs, chain_capacity=16, chain_count=len(segs), seed=1)
        # With one chain per segment everything must place without loss.
        assert r.unplaced == 0

    def test_utilization_bounds(self):
        segs = [CarrySegment(f"s{i}", 4) for i in range(10)]
        r = pack_segments(segs, 16, 8)
        assert 0.0 <= r.utilization <= 1.0


class TestDSP:
    def test_agilex_25_tflops(self):
        # Section III: "almost 9000 DSPs; at a clock rate of 750MHz this
        # provides up to 25 TFLOPs".
        dev = agilex_device()
        tflops = dev.peak_tflops(AGILEX_MODES["fp16"])
        assert 25.0 <= tflops <= 28.0

    def test_fp32_half_rate(self):
        dev = agilex_device()
        assert dev.peak_tflops(AGILEX_MODES["fp32"]) == pytest.approx(
            dev.peak_tflops(AGILEX_MODES["bfloat16"]) / 2
        )

    def test_small_formats_fit_split_array(self):
        for name in ("fp16", "bfloat16", "fp19"):
            assert AGILEX_MODES[name].significand_fits_half_array(), name
        assert not AGILEX_MODES["fp32"].significand_fits_half_array()

    def test_dsp_block_computes(self):
        block = DSPBlock(AGILEX_MODES["fp16"])
        a = SoftFloat.from_float(BINARY16, 1.5).pattern
        b = SoftFloat.from_float(BINARY16, 2.0).pattern
        cc = SoftFloat.from_float(BINARY16, 0.25).pattern
        out = block.multiply_add([a, a], [b, b], [cc, cc])
        assert all(SoftFloat(BINARY16, o).to_float() == 3.25 for o in out)

    def test_lane_count_enforced(self):
        block = DSPBlock(AGILEX_MODES["fp16"])
        with pytest.raises(ValueError):
            block.multiply_add([0], [0], [0])

    def test_soft_logic_100_tflops_claim(self):
        # "new FPGA EDA flows can implement 100 TFLOPs+ of soft logic-based
        # compute power" for tiny-precision operators.
        dev = agilex_device()
        # ~900k ALMs, ~12 ALMs per tiny multiply-add operator, 600 MHz.
        assert dev.soft_logic_tflops(alms=900_000, alms_per_op=10, clock_hz=600e6) >= 100.0


class TestUtilization:
    def test_brainwave_92_percent(self):
        # 0.2 * 0.80 + 0.8 * 0.97 = 0.936 — the paper quotes 92%.
        assert 0.92 <= BRAINWAVE.overall_packing() <= 0.94

    def test_typical_soft_arithmetic_60_70(self):
        assert 0.60 <= TYPICAL_SOFT_ARITHMETIC.overall_packing() <= 0.70

    def test_random_logic_80(self):
        assert RANDOM_LOGIC.overall_packing() == pytest.approx(0.80)

    def test_brainwave_beats_typical(self):
        assert BRAINWAVE.overall_packing() > RANDOM_LOGIC.overall_packing()
        assert RANDOM_LOGIC.overall_packing() > TYPICAL_SOFT_ARITHMETIC.overall_packing()

    def test_area_needed_inverse_of_packing(self):
        assert TYPICAL_SOFT_ARITHMETIC.area_needed(65.0) == pytest.approx(100.0)

    def test_shares_must_sum_to_one(self):
        with pytest.raises(ValueError):
            UtilizationModel("bad", components=(("x", 0.5, 0.9),))

    def test_fits(self):
        assert BRAINWAVE.fits(90.0, 100.0)
        assert not BRAINWAVE.fits(99.0, 100.0)


class TestRegularizedHeap:
    def test_concrete_heap_sums_to_product(self):
        # The Fig. 4 two-row heap, with values bound, must sum to a*b.
        mul = regularize_3x3()
        for a in range(8):
            for b in range(8):
                assert mul.heap(a, b).value() == a * b

    def test_symbolic_heap_shape(self):
        heap = regularize_3x3().heap()
        assert heap.max_height() == 2
        assert heap.total_bits() == 9  # 5 PP0 bits + 4 PP1 bits

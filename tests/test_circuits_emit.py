"""Verilog emission tests.

No Verilog simulator is available offline, so correctness is checked two
ways: structural invariants on the emitted text, and a miniature
interpreter for the emitted assignment subset that re-simulates the module
and must agree with the Python evaluator.
"""

import re


from repro.circuits import Circuit, array_multiplier, ripple_carry_adder, to_verilog
from repro.hwcost import build_posit_multiplier
from repro.posit import POSIT8


def _interpret(verilog: str, inputs: dict) -> dict:
    """Evaluate the emitted single-bit assign subset of Verilog."""
    wires = {}

    # Seed ports.
    def port_bit(expr):
        m = re.fullmatch(r"(\w+)\[(\d+)\]", expr)
        if m:
            return (inputs[m.group(1)] >> int(m.group(2))) & 1
        return inputs[expr] & 1

    assigns = []
    for line in verilog.splitlines():
        line = line.strip().rstrip(";")
        m = re.fullmatch(r"wire (n\d+) = (.+)", line)
        if m:
            wires[m.group(1)] = port_bit(m.group(2))
            continue
        m = re.fullmatch(r"assign (.+?) = (.+)", line)
        if m:
            assigns.append((m.group(1), m.group(2)))

    def ev(expr):
        expr = expr.strip()
        if expr.startswith("(") and expr.endswith(")"):
            # Only strip if the parens match across the whole expression.
            depth = 0
            for i, ch in enumerate(expr):
                depth += ch == "("
                depth -= ch == ")"
                if depth == 0 and i < len(expr) - 1:
                    break
            else:
                return ev(expr[1:-1])
        if "?" in expr:
            s, rest = expr.split("?", 1)
            w1, w0 = rest.split(":", 1)
            return ev(w1) if ev(s) else ev(w0)
        for op, fn in (("|", lambda a, b: a | b), ("^", lambda a, b: a ^ b), ("&", lambda a, b: a & b)):
            parts = _split_top(expr, op)
            if len(parts) > 1:
                acc = ev(parts[0])
                for p in parts[1:]:
                    acc = fn(acc, ev(p))
                return acc
        if expr.startswith("~"):
            return 1 - ev(expr[1:])
        if expr == "1'b0":
            return 0
        if expr == "1'b1":
            return 1
        return wires[expr]

    outputs = {}
    for dst, rhs in assigns:
        value = ev(rhs)
        if dst.startswith("n") and dst[1:].isdigit():
            wires[dst] = value
        else:
            m = re.fullmatch(r"(\w+)\[(\d+)\]", dst)
            if m:
                outputs.setdefault(m.group(1), 0)
                outputs[m.group(1)] |= value << int(m.group(2))
            else:
                outputs[dst] = value
    return outputs


def _split_top(expr, op):
    parts, depth, cur = [], 0, ""
    for ch in expr:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == op and depth == 0:
            parts.append(cur)
            cur = ""
        else:
            cur += ch
    parts.append(cur)
    return [p for p in (s.strip() for s in parts) if p]


class TestStructure:
    def test_module_header_and_ports(self):
        c = Circuit("add4")
        a = c.input_bus("a", 4)
        b = c.input_bus("b", 4)
        s, cout = ripple_carry_adder(c, a, b)
        c.output_bus("s", s)
        c.outputs(cout=cout)
        v = to_verilog(c)
        assert v.startswith("module add4 (")
        assert "input  [3:0] a;" in v
        assert "output [3:0] s;" in v
        assert "output cout;" in v
        assert v.rstrip().endswith("endmodule")

    def test_one_assign_per_gate(self):
        c = Circuit("t")
        x, y = c.inputs("x", "y")
        c.outputs(o=c.xor(x, y))
        v = to_verilog(c)
        gate_assigns = [l for l in v.splitlines() if l.strip().startswith("assign n")]
        assert len(gate_assigns) == len(c.gates)

    def test_deterministic(self):
        c = Circuit("t2")
        a = c.input_bus("a", 3)
        b = c.input_bus("b", 3)
        c.output_bus("p", array_multiplier(c, a, b))
        assert to_verilog(c) == to_verilog(c)

    def test_name_sanitization(self):
        c = Circuit("weird name!")
        (x,) = c.inputs("x")
        c.outputs(o=c.buf(x))
        v = to_verilog(c)
        assert "module weird_name_ (" in v


class TestReSimulation:
    def test_adder_matches_python(self):
        c = Circuit("add4")
        a = c.input_bus("a", 4)
        b = c.input_bus("b", 4)
        s, cout = ripple_carry_adder(c, a, b)
        c.output_bus("s", s)
        c.outputs(cout=cout)
        v = to_verilog(c)
        for x in range(16):
            for y in range(16):
                got = _interpret(v, {"a": x, "b": y})
                assert got["s"] | (got["cout"] << 4) == x + y

    def test_multiplier_matches_python(self):
        c = Circuit("mul3")
        a = c.input_bus("a", 3)
        b = c.input_bus("b", 3)
        c.output_bus("p", array_multiplier(c, a, b))
        v = to_verilog(c)
        for x in range(8):
            for y in range(8):
                assert _interpret(v, {"a": x, "b": y})["p"] == x * y

    def test_posit_multiplier_emits_and_resimulates(self):
        from repro.posit import Posit

        circ = build_posit_multiplier(POSIT8)
        v = to_verilog(circ)
        assert "module posit8e0_mul (" in v
        for pa, pb in [(0x50, 0x60), (0x01, 0x7F), (0x80, 0x40), (0xC0, 0x30)]:
            got = _interpret(v, {"a": pa, "b": pb})["p"]
            want = (Posit(POSIT8, pa) * Posit(POSIT8, pb)).pattern
            assert got == want, (hex(pa), hex(pb), hex(got), hex(want))

"""Bit-heap construction and compression tests (Fig. 2 and Fig. 3)."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bitheap import (
    COMPRESSORS,
    BitHeap,
    FULL_ADDER,
    HALF_ADDER,
    compress_greedy,
    compress_heuristic,
    final_adder_width,
    multiplier_heap,
    partial_product_array,
    partial_product_table,
    squarer_heap,
)


class TestHeapBasics:
    def test_add_word_value(self):
        h = BitHeap()
        h.add_word(0b1011, 4)
        assert h.value() == 0b1011

    def test_shifted_word(self):
        h = BitHeap()
        h.add_word(0b11, 2, shift=3)
        assert h.value() == 0b11000

    def test_constant_folding(self):
        h = BitHeap()
        h.add_word(5, 3)
        h.add_constant(-2)
        assert h.value() == 3

    def test_histogram(self):
        h = BitHeap()
        h.add_word(0, 3)
        h.add_word(0, 3, shift=1)
        assert h.histogram() == {0: 1, 1: 2, 2: 2, 3: 1}

    def test_unbound_bit_raises_on_value(self):
        h = BitHeap()
        h.add_symbolic_word(3)
        with pytest.raises(ValueError):
            h.value()

    def test_signed_word_trick(self):
        # Sign extension via complemented MSB + constant must preserve the
        # two's-complement value once the MSB bit is bound appropriately.
        h = BitHeap()
        bits = h.add_signed_word(4)
        value = -3  # 0b1101
        pattern = value & 0xF
        for i, b in enumerate(bits):
            raw = (pattern >> i) & 1
            bound = raw if i < 3 else 1 - raw  # MSB stored complemented
            h.columns[b.column][h.columns[b.column].index(b)] = type(b)(
                b.column, b.source, value=bound
            )
        assert h.value() == value

    def test_ascii_art(self):
        h = partial_product_array(3, 3)
        art = h.ascii_art()
        assert "x" in art and len(art.splitlines()) >= 3

    def test_copy_independent(self):
        h = BitHeap()
        h.add_word(7, 3)
        c = h.copy()
        c.add_word(1, 1)
        assert h.total_bits() == 3
        assert c.total_bits() == 4


class TestPartialProducts:
    def test_fig3_table(self):
        # Fig. 3: the 3x3 table, column 2 holds p[0,2], p[1,1], p[2,0].
        table = partial_product_table(3, 3)
        assert table[0] == ["p[0,0]"]
        assert table[2] == ["p[0,2]", "p[1,1]", "p[2,0]"]
        assert table[4] == ["p[2,2]"]

    def test_fig3_column_heights_unbalanced(self):
        # "The number of independent inputs per column is grossly
        # unbalanced, varying from two to six bits" — heights run 1..3.
        h = multiplier_heap(3, 3)
        heights = [h.height(c) for c in h.occupied_columns()]
        assert heights == [1, 2, 3, 2, 1]

    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=2, max_value=6),
        st.data(),
    )
    def test_concrete_array_value(self, wa, wb, data):
        a = data.draw(st.integers(min_value=0, max_value=(1 << wa) - 1))
        b = data.draw(st.integers(min_value=0, max_value=(1 << wb) - 1))
        assert partial_product_array(wa, wb, a, b).value() == a * b

    @given(st.integers(min_value=2, max_value=8), st.data())
    def test_squarer_value(self, w, data):
        a = data.draw(st.integers(min_value=0, max_value=(1 << w) - 1))
        assert squarer_heap(w, a).value() == a * a

    def test_squarer_specialization_saves_bits(self):
        # Section II-A: "a square requires fewer bit-level operations".
        assert squarer_heap(8).total_bits() < multiplier_heap(8, 8).total_bits()
        assert squarer_heap(8).total_bits() == 36  # n + n(n-1)/2


class TestCompressors:
    def test_full_adder_shape(self):
        assert FULL_ADDER.input_count == 3
        assert FULL_ADDER.output_count == 2

    def test_all_compressors_valid(self):
        for comp in COMPRESSORS:
            comp.check()

    def test_strength_ordering(self):
        assert FULL_ADDER.strength > HALF_ADDER.strength


class TestCompression:
    @pytest.mark.parametrize("backend", [compress_greedy, compress_heuristic])
    def test_height_target_met(self, backend):
        h = multiplier_heap(8, 8)
        r = backend(h)
        assert r.final_heap.max_height() <= 2

    @pytest.mark.parametrize("backend", [compress_greedy, compress_heuristic])
    @given(st.data())
    def test_value_preserved(self, backend, data):
        wa = data.draw(st.integers(min_value=2, max_value=6))
        wb = data.draw(st.integers(min_value=2, max_value=6))
        a = data.draw(st.integers(min_value=0, max_value=(1 << wa) - 1))
        b = data.draw(st.integers(min_value=0, max_value=(1 << wb) - 1))
        heap = partial_product_array(wa, wb, a, b)
        r = backend(heap)
        assert r.final_heap.value() == a * b

    def test_original_heap_untouched(self):
        h = multiplier_heap(6, 6)
        before = h.total_bits()
        compress_greedy(h)
        assert h.total_bits() == before

    def test_fa_ha_only_matches_dadda_flavor(self):
        # Restricting to {FA, HA} reproduces the classical compressor tree.
        h = multiplier_heap(8, 8)
        r = compress_greedy(h, compressors=[FULL_ADDER, HALF_ADDER])
        assert r.final_heap.max_height() <= 2
        assert r.stage_count >= 4  # h=8 needs >= ceil chain 8->6->4->3->2

    def test_heuristic_not_worse_than_greedy_fa_ha(self):
        # The ILP-flavoured backend with the full GPC library should not
        # lose to plain FA/HA greedy (the claim of [12]).
        h = multiplier_heap(8, 8)
        base = compress_greedy(h, compressors=[FULL_ADDER, HALF_ADDER])
        best = compress_heuristic(h)
        assert best.total_area() <= base.total_area() * 1.05

    def test_final_adder_width(self):
        h = BitHeap()
        h.add_word(0, 4)
        assert final_adder_width(h) == 0  # height 1: no adder needed
        h2 = BitHeap()
        h2.add_word(0, 4)
        h2.add_word(0, 4)
        assert final_adder_width(h2) == 4

    def test_empty_heap(self):
        h = BitHeap()
        r = compress_greedy(h)
        assert r.stage_count == 0
        assert r.final_adder_bits == 0

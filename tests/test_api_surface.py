"""Cross-cutting API-surface tests: batching, shapes, reprs, secondary paths."""

import numpy as np

from repro.approx import ExactMultiplier, signed_lut
from repro.datasets import spectrogram_features, synthetic_keywords
from repro.floats import BINARY16, SoftFloat
from repro.fpga import AGILEX_MODES, ALMBudget, DSPBlock
from repro.nn import Dense, ReLU, Sequential, train
from repro.nn.layers import Conv2D, Flatten
from repro.posit import POSIT8, POSIT16, Posit
from repro.posit.tensor import PositCodec


class TestSequentialBatching:
    def test_predict_batching_invariant(self):
        rng = np.random.default_rng(0)
        net = Sequential(
            [Conv2D(1, 2, 3, 1, 1, rng), ReLU(), Flatten(), Dense(2 * 16, 3, rng)],
            input_shape=(1, 4, 4),
        )
        x = rng.normal(size=(25, 1, 4, 4))
        full = net.predict(x, batch=256)
        chunked = net.predict(x, batch=7)
        assert np.allclose(full, chunked)

    def test_repr_mentions_counts(self):
        net = Sequential([Dense(4, 2)], input_shape=(4,))
        assert "params" in repr(net) and "MACs" in repr(net)


class TestDSPBlockDot:
    def test_dot2_matches_softfloat(self):
        block = DSPBlock(AGILEX_MODES["fp16"])
        vals = [(1.5, 2.0), (-0.75, 4.0)]
        a = [SoftFloat.from_float(BINARY16, x).pattern for x, _ in vals]
        b = [SoftFloat.from_float(BINARY16, y).pattern for _, y in vals]
        got = SoftFloat(BINARY16, block.dot2(a, b)).to_float()
        assert got == 1.5 * 2.0 + (-0.75) * 4.0


class TestALMBudget:
    def test_total_inputs_deduplicates(self):
        budget = ALMBudget()
        budget.place("f", {"a", "b"})
        budget.place("g", {"b", "c"})
        assert budget.total_inputs == 3

    def test_chain_placement_never_shared(self):
        budget = ALMBudget()
        a1 = budget.place("c0", {"a"}, on_chain=True)
        a2 = budget.place("c1", {"a"}, on_chain=True)
        assert a1 is not a2
        assert budget.chain_count == 2


class TestPositCodecShapes:
    def test_shape_preserved(self):
        codec = PositCodec(POSIT8)
        x = np.random.default_rng(1).normal(size=(3, 4, 5))
        codes = codec.encode(x)
        assert codes.shape == x.shape
        assert codec.decode(codes).shape == x.shape

    def test_empty_array(self):
        codec = PositCodec(POSIT8)
        out = codec.encode(np.array([]))
        assert out.shape == (0,)

    def test_quantization_error_of_zeros(self):
        codec = PositCodec(POSIT16)
        assert codec.quantization_error(np.zeros(4)) == 0.0


class TestDatasetDeterminism:
    def test_audio_deterministic(self):
        a1 = synthetic_keywords(3, classes=2, seed=9)
        a2 = synthetic_keywords(3, classes=2, seed=9)
        assert np.array_equal(a1[0], a2[0])
        assert np.array_equal(a1[1], a2[1])

    def test_different_seeds_differ(self):
        a1, _ = synthetic_keywords(3, classes=2, seed=1)
        a2, _ = synthetic_keywords(3, classes=2, seed=2)
        assert not np.array_equal(a1, a2)

    def test_spectrogram_feature_count_scales(self):
        wav, _ = synthetic_keywords(2, classes=2, samples=1024, seed=0)
        f1 = spectrogram_features(wav, frame=128, hop=64, bins=10)
        f2 = spectrogram_features(wav, frame=128, hop=64, bins=20)
        assert f1.shape[3] == 10 and f2.shape[3] == 20


class TestSignedLutProperties:
    def test_exact_lut_antisymmetry(self):
        lut = signed_lut(ExactMultiplier())
        # lut[a, b] == -lut[-a, b] wherever -a is representable.
        a = np.arange(-127, 128)
        av, bv = np.meshgrid(a, a, indexing="ij")
        assert np.array_equal(lut[av + 128, bv + 128], -lut[-av + 128, bv + 128])


class TestPositMiscellany:
    def test_regime_values(self):
        assert Posit.from_float(POSIT16, 1.0).regime() == 0
        assert Posit.from_float(POSIT16, 16.0).regime() == 2
        assert Posit.from_float(POSIT16, 0.1).regime() == -2
        assert Posit.zero(POSIT16).regime() is None

    def test_abs(self):
        p = Posit.from_float(POSIT16, -2.5)
        assert abs(p).to_float() == 2.5
        assert abs(Posit.nar(POSIT16)).is_nar()

    def test_repr_forms(self):
        assert "NaR" in repr(Posit.nar(POSIT8))
        assert "0x" in repr(Posit.one(POSIT8))


class TestTrainReturnsHistory:
    def test_history_length_and_decrease(self):
        from repro.datasets import synthetic_images

        x, y = synthetic_images(30, classes=3, size=8, seed=5)
        net = Sequential(
            [Conv2D(3, 4, 3, 1, 1), ReLU(), Flatten(), Dense(4 * 64, 3)],
            input_shape=(3, 8, 8),
        )
        hist = train(net, x, y, epochs=3, batch=32, lr=2e-3, seed=0)
        assert len(hist) == 3
        assert hist[-1] < hist[0]

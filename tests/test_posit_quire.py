"""Quire (exact accumulator) tests."""

from fractions import Fraction

from hypothesis import given
from hypothesis import strategies as st

from repro.posit import POSIT8, POSIT16, Posit, Quire

patterns16 = st.integers(min_value=0, max_value=0xFFFF)


class TestQuireExactness:
    def test_dot_product_exact_until_final_rounding(self):
        # Classic cancellation: naive sequential sums lose the small term.
        xs = [Posit.from_float(POSIT16, v) for v in (1e-3, 1e3, -1e3, 1.0)]
        ones = [Posit.one(POSIT16)] * 4
        q = Quire(POSIT16)
        result = q.dot(xs, ones)
        expected = sum(x.to_fraction() for x in xs)
        assert result.to_fraction() == Posit.from_fraction(POSIT16, expected).to_fraction()

    def test_sequential_sum_loses_precision(self):
        values = (1e-3, 1e3, -1e3, 1.0)
        s = Posit.zero(POSIT16)
        for v in values:
            s = s + Posit.from_float(POSIT16, v)
        q = Quire(POSIT16).dot(
            [Posit.from_float(POSIT16, v) for v in values], [Posit.one(POSIT16)] * 4
        )
        # The quire result is strictly more accurate here.
        exact = sum(Posit.from_float(POSIT16, v).to_fraction() for v in values)
        assert abs(q.to_fraction() - exact) < abs(s.to_fraction() - exact)

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=24))
    def test_accumulation_matches_fraction_sum(self, pats):
        q = Quire(POSIT8)
        exact = Fraction(0)
        for p in pats:
            x = Posit(POSIT8, p)
            if x.is_nar():
                continue
            q.add_posit(x)
            exact += x.to_fraction()
        assert q.to_fraction() == exact

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=255),
                st.integers(min_value=0, max_value=255),
            ),
            min_size=1,
            max_size=16,
        )
    )
    def test_products_accumulate_exactly(self, pairs):
        q = Quire(POSIT8)
        exact = Fraction(0)
        for pa, pb in pairs:
            a, b = Posit(POSIT8, pa), Posit(POSIT8, pb)
            if a.is_nar() or b.is_nar():
                continue
            q.add_product(a, b)
            exact += a.to_fraction() * b.to_fraction()
        assert q.to_fraction() == exact

    def test_minpos_squared_representable(self):
        q = Quire(POSIT16)
        tiny = Posit.minpos(POSIT16)
        q.add_product(tiny, tiny)
        assert q.to_fraction() == Fraction(2) ** (-56)

    def test_sub_product(self):
        q = Quire(POSIT16)
        a = Posit.from_float(POSIT16, 3.0)
        q.add_product(a, a).sub_product(a, a)
        assert q.to_posit().is_zero()


class TestQuireSpecials:
    def test_nar_poisons_quire(self):
        q = Quire(POSIT16)
        q.add_posit(Posit.one(POSIT16))
        q.add_product(Posit.nar(POSIT16), Posit.one(POSIT16))
        assert q.is_nar()
        assert q.to_posit().is_nar()

    def test_clear(self):
        q = Quire(POSIT16)
        q.add_posit(Posit.one(POSIT16))
        q.clear()
        assert q.to_posit().is_zero()
        assert not q.is_nar()

    def test_zero_products_ignored(self):
        q = Quire(POSIT16)
        q.add_product(Posit.zero(POSIT16), Posit.maxpos(POSIT16))
        assert q.to_posit().is_zero()

    def test_overflow_detection(self):
        q = Quire(POSIT16)
        # Force the accumulator past the hardware guard-bit capacity.
        q._acc = 1 << (POSIT16.quire_width() - 1)
        assert q.overflowed
        q._acc = (1 << (POSIT16.quire_width() - 1)) - 1
        assert not q.overflowed

    def test_paper_58_bit_fixed_point_claim(self):
        # Sec. V: a 16-bit posit (range 2^-28 .. 2^28) "can thus be converted
        # to a signed fixed-point representation with 58 bits": scale by
        # 2^28 and every posit16 is an integer of magnitude < 2^57.
        for pattern in range(0, 1 << 16, 37):
            p = Posit(POSIT16, pattern)
            if p.is_nar():
                continue
            scaled = p.to_fraction() * Fraction(2) ** 28
            assert scaled.denominator == 1
            assert abs(scaled.numerator) < 1 << 57

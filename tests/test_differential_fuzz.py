"""Differential fuzzing: vectorized engine backends vs the scalar models.

The engine's backends (:mod:`repro.engine`) are fast reimplementations of
the bit-exact scalar models in :mod:`repro.posit`, :mod:`repro.floats` and
:mod:`repro.lns`.  Every test here samples thousands of seeded random
operand pairs per format, runs both implementations, and requires the code
patterns to agree **bit-exactly** — not approximately.

Special values are deliberately oversampled (~25% of operands): NaR for
posits; ±0, ±inf, NaN patterns, subnormals and max-finite for IEEE-style
floats; the reserved zero code and saturation extremes for LNS.  Uniform
sampling alone would almost never hit these, and they are exactly where a
vectorized reimplementation diverges first.

Pair counts scale with ``REPRO_FUZZ_PAIRS`` (default 2000) so CI can crank
the volume without touching the test code.  All RNGs are seeded per format
— failures reproduce deterministically.
"""

import math
import os

import numpy as np
import pytest

from repro.engine.lns_backend import LNSBackend
from repro.engine.posit_backend import PositBackend
from repro.engine.softfloat_backend import SoftFloatBackend
from repro.floats import BFLOAT16, BINARY16, BINARY32, FP8_E4M3, FP8_E5M2, FP19, SoftFloat
from repro.lns import LNS, LNSFormat
from repro.posit import POSIT8, POSIT16, POSIT32, Posit, PositFormat

N_PAIRS = int(os.environ.get("REPRO_FUZZ_PAIRS", "2000"))

POSIT_FORMATS = [
    pytest.param(PositFormat(6, 0), id="posit6_0"),
    pytest.param(POSIT8, id="posit8_0"),
    pytest.param(PositFormat(10, 1), id="posit10_1"),
    pytest.param(POSIT16, id="posit16_1"),
]

FLOAT_FORMATS = [
    pytest.param(BINARY16, id="binary16"),
    pytest.param(BFLOAT16, id="bfloat16"),
    pytest.param(FP19, id="fp19"),
]

LNS_FORMATS = [
    pytest.param(LNSFormat(2, 3), id="lns2_3"),
    pytest.param(LNSFormat(3, 4), id="lns3_4"),
]


def _sample_pairs(rng, n_codes, specials, n_pairs=N_PAIRS):
    """Uniform code pairs with ~25% of operands forced to special values."""
    a = rng.integers(0, n_codes, size=n_pairs)
    b = rng.integers(0, n_codes, size=n_pairs)
    specials = np.asarray(specials, dtype=np.int64)
    for arr in (a, b):
        pos = rng.integers(0, n_pairs, size=max(1, n_pairs // 4))
        arr[pos] = rng.choice(specials, size=pos.size)
    return a, b


def _first_mismatch(got, want, a, b, what):
    bad = np.nonzero(np.asarray(got, dtype=np.int64) != np.asarray(want, dtype=np.int64))[0]
    if bad.size:
        i = int(bad[0])
        pytest.fail(
            f"{what}: {bad.size}/{len(got)} mismatches; first at pair "
            f"(a={int(a[i]):#x}, b={int(b[i]):#x}): engine={int(got[i]):#x} "
            f"scalar={int(want[i]):#x}"
        )


# ----------------------------------------------------------------------
# Posits
# ----------------------------------------------------------------------
def _posit_specials(fmt):
    nar = fmt.pattern_nar
    # zero, NaR, minpos, maxpos, -minpos, -maxpos
    return [0, nar, 1, nar - 1, (1 << fmt.nbits) - 1, nar + 1]


class TestPositDifferential:
    @pytest.mark.parametrize("fmt", POSIT_FORMATS)
    def test_decode_matches_scalar(self, fmt):
        backend = PositBackend(fmt, strategy="via-float")
        n = 1 << fmt.nbits
        if fmt.nbits <= 10:
            codes = np.arange(n)
        else:
            rng = np.random.default_rng(fmt.nbits * 1000 + fmt.es)
            codes = np.unique(
                np.concatenate([rng.integers(0, n, size=4096), _posit_specials(fmt)])
            )
        got = backend.decode(codes)
        want = np.array(
            [
                math.nan if Posit(fmt, int(c)).is_nar() else Posit(fmt, int(c)).to_float()
                for c in codes
            ]
        )
        assert np.array_equal(got, want, equal_nan=True)

    @pytest.mark.parametrize("fmt", POSIT_FORMATS)
    def test_via_float_add_mul_match_scalar(self, fmt):
        backend = PositBackend(fmt, strategy="via-float")
        rng = np.random.default_rng(fmt.nbits * 100 + fmt.es)
        a, b = _sample_pairs(rng, 1 << fmt.nbits, _posit_specials(fmt))
        pa = [Posit(fmt, int(x)) for x in a]
        pb = [Posit(fmt, int(y)) for y in b]
        _first_mismatch(
            backend.add(a, b),
            [(x + y).pattern for x, y in zip(pa, pb)],
            a, b, f"{backend.name} via-float add",
        )
        _first_mismatch(
            backend.mul(a, b),
            [(x * y).pattern for x, y in zip(pa, pb)],
            a, b, f"{backend.name} via-float mul",
        )

    @pytest.mark.parametrize(
        "fmt", [pytest.param(PositFormat(6, 0), id="posit6_0"),
                pytest.param(POSIT8, id="posit8_0")]
    )
    def test_pairwise_tables_match_scalar(self, fmt):
        backend = PositBackend(fmt, strategy="pairwise")
        rng = np.random.default_rng(fmt.nbits * 101 + fmt.es)
        a, b = _sample_pairs(rng, 1 << fmt.nbits, _posit_specials(fmt))
        pa = [Posit(fmt, int(x)) for x in a]
        pb = [Posit(fmt, int(y)) for y in b]
        _first_mismatch(
            backend.add(a, b),
            [(x + y).pattern for x, y in zip(pa, pb)],
            a, b, f"{backend.name} pairwise add",
        )
        _first_mismatch(
            backend.mul(a, b),
            [(x * y).pattern for x, y in zip(pa, pb)],
            a, b, f"{backend.name} pairwise mul",
        )

    def test_nar_is_absorbing(self):
        backend = PositBackend(POSIT8, strategy="via-float")
        rng = np.random.default_rng(42)
        b = rng.integers(0, 256, size=256)
        nar = np.full_like(b, POSIT8.pattern_nar)
        assert np.all(backend.add(nar, b) == POSIT8.pattern_nar)
        assert np.all(backend.mul(nar, b) == POSIT8.pattern_nar)


# ----------------------------------------------------------------------
# Wide posits (table-free bit-parallel codecs; exhaustive is impossible
# at 32 bits, so these sample pairs like everything else here)
# ----------------------------------------------------------------------
class TestWidePositDifferential:
    def test_decode_encode_match_scalar(self):
        backend = PositBackend(POSIT32)
        assert backend.strategy == "wide"
        rng = np.random.default_rng(32_001)
        n = 1 << POSIT32.nbits
        codes = np.unique(
            np.concatenate(
                [rng.integers(0, n, size=N_PAIRS), _posit_specials(POSIT32)]
            )
        )
        got = backend.decode(codes)
        want = np.array(
            [
                math.nan
                if Posit(POSIT32, int(c)).is_nar()
                else Posit(POSIT32, int(c)).to_float()
                for c in codes
            ]
        )
        assert np.array_equal(got, want, equal_nan=True)
        # Encode round-trips every decoded value back to its code (decoded
        # values sit exactly on the grid), plus scalar-encode parity on
        # values that need rounding.
        finite = ~np.isnan(want)
        assert np.array_equal(backend.encode(want[finite]), codes[finite])
        xs = rng.standard_normal(N_PAIRS) * np.exp2(rng.uniform(-130, 130, N_PAIRS))
        _first_mismatch(
            backend.encode(xs),
            [Posit.from_float(POSIT32, float(x)).pattern for x in xs],
            xs, xs, f"{backend.name} wide encode",
        )

    def test_wide_add_mul_match_scalar(self):
        backend = PositBackend(POSIT32)
        rng = np.random.default_rng(32_002)
        a, b = _sample_pairs(rng, 1 << POSIT32.nbits, _posit_specials(POSIT32))
        pa = [Posit(POSIT32, int(x)) for x in a]
        pb = [Posit(POSIT32, int(y)) for y in b]
        _first_mismatch(
            backend.add(a, b),
            [(x + y).pattern for x, y in zip(pa, pb)],
            a, b, f"{backend.name} wide add",
        )
        _first_mismatch(
            backend.mul(a, b),
            [(x * y).pattern for x, y in zip(pa, pb)],
            a, b, f"{backend.name} wide mul",
        )

    def test_close_scale_subtraction(self):
        """Near-cancellation: operands within a few ulps, opposite signs.

        Uniform code sampling almost never exercises the sticky-subtract
        path where the guarded significands differ only far below the
        guard bits — build such pairs directly.
        """
        backend = PositBackend(POSIT32)
        rng = np.random.default_rng(32_003)
        base = rng.integers(1, POSIT32.pattern_nar - 8, size=N_PAIRS)
        delta = rng.integers(0, 8, size=N_PAIRS)
        a = base
        # -b with b a few codes away from a: pattern of -x is (2**n - x).
        b = ((1 << POSIT32.nbits) - (base + delta)) & ((1 << POSIT32.nbits) - 1)
        pa = [Posit(POSIT32, int(x)) for x in a]
        pb = [Posit(POSIT32, int(y)) for y in b]
        _first_mismatch(
            backend.add(a, b),
            [(x + y).pattern for x, y in zip(pa, pb)],
            a, b, f"{backend.name} near-cancellation add",
        )


# ----------------------------------------------------------------------
# IEEE-style softfloats
# ----------------------------------------------------------------------
def _float_specials(fmt):
    """±0, ±inf, NaN patterns, min/max subnormal, min normal, max finite."""
    sign = 1 << (fmt.width - 1)
    exp_shift = fmt.frac_bits
    inf = ((1 << fmt.exp_bits) - 1) << exp_shift
    qnan = inf | (1 << (fmt.frac_bits - 1))
    snan_ish = inf | 1
    max_finite = inf - 1
    min_normal = 1 << exp_shift
    max_subnormal = min_normal - 1
    out = [0, sign, inf, sign | inf, qnan, sign | qnan, snan_ish,
           1, sign | 1, max_subnormal, min_normal, max_finite, sign | max_finite]
    return out


class TestSoftFloatDifferential:
    @pytest.mark.parametrize("fmt", FLOAT_FORMATS)
    def test_decode_matches_scalar(self, fmt):
        backend = SoftFloatBackend(fmt, strategy="via-float")
        n = 1 << fmt.width
        if fmt.width <= 16:
            codes = np.arange(n)
        else:
            rng = np.random.default_rng(fmt.width * 2000)
            codes = np.unique(
                np.concatenate([rng.integers(0, n, size=8192), _float_specials(fmt)])
            )
        got = backend.decode(codes)
        want = np.array([SoftFloat(fmt, int(c)).to_float() for c in codes])
        assert np.array_equal(got, want, equal_nan=True)
        # Signed zeros must keep their sign through the value table.
        real = ~np.isnan(want)
        assert np.array_equal(np.signbit(got[real]), np.signbit(want[real]))

    @pytest.mark.parametrize("fmt", FLOAT_FORMATS)
    def test_via_float_add_mul_match_scalar(self, fmt):
        backend = SoftFloatBackend(fmt, strategy="via-float")
        rng = np.random.default_rng(fmt.width * 200 + fmt.exp_bits)
        a, b = _sample_pairs(rng, 1 << fmt.width, _float_specials(fmt))
        fa = [SoftFloat(fmt, int(x)) for x in a]
        fb = [SoftFloat(fmt, int(y)) for y in b]
        _first_mismatch(
            backend.add(a, b),
            [x.add(y).pattern for x, y in zip(fa, fb)],
            a, b, f"{backend.name} via-float add",
        )
        _first_mismatch(
            backend.mul(a, b),
            [x.mul(y).pattern for x, y in zip(fa, fb)],
            a, b, f"{backend.name} via-float mul",
        )

    @pytest.mark.parametrize(
        "fmt", [pytest.param(FP8_E4M3, id="fp8_e4m3"),
                pytest.param(FP8_E5M2, id="fp8_e5m2")]
    )
    def test_pairwise_tables_match_scalar(self, fmt):
        backend = SoftFloatBackend(fmt, strategy="pairwise")
        rng = np.random.default_rng(fmt.width * 201 + fmt.exp_bits)
        a, b = _sample_pairs(rng, 1 << fmt.width, _float_specials(fmt))
        fa = [SoftFloat(fmt, int(x)) for x in a]
        fb = [SoftFloat(fmt, int(y)) for y in b]
        _first_mismatch(
            backend.add(a, b),
            [x.add(y).pattern for x, y in zip(fa, fb)],
            a, b, f"{backend.name} pairwise add",
        )
        _first_mismatch(
            backend.mul(a, b),
            [x.mul(y).pattern for x, y in zip(fa, fb)],
            a, b, f"{backend.name} pairwise mul",
        )

    @pytest.mark.parametrize("fmt", FLOAT_FORMATS)
    def test_special_square(self, fmt):
        """Every special x special pair, both op orders — the corner matrix."""
        backend = SoftFloatBackend(fmt, strategy="via-float")
        specials = _float_specials(fmt)
        a, b = map(np.ravel, np.meshgrid(specials, specials))
        fa = [SoftFloat(fmt, int(x)) for x in a]
        fb = [SoftFloat(fmt, int(y)) for y in b]
        _first_mismatch(
            backend.add(a, b),
            [x.add(y).pattern for x, y in zip(fa, fb)],
            a, b, f"{backend.name} special add",
        )
        _first_mismatch(
            backend.mul(a, b),
            [x.mul(y).pattern for x, y in zip(fa, fb)],
            a, b, f"{backend.name} special mul",
        )


# ----------------------------------------------------------------------
# Wide floats (binary32 through the table-free codec)
# ----------------------------------------------------------------------
class TestWideSoftFloatDifferential:
    def test_decode_encode_match_scalar(self):
        backend = SoftFloatBackend(BINARY32)
        assert backend.strategy == "wide"
        rng = np.random.default_rng(32_004)
        n = 1 << BINARY32.width
        codes = np.unique(
            np.concatenate(
                [rng.integers(0, n, size=N_PAIRS), _float_specials(BINARY32)]
            )
        )
        got = backend.decode(codes)
        want = np.array([SoftFloat(BINARY32, int(c)).to_float() for c in codes])
        assert np.array_equal(got, want, equal_nan=True)
        real = ~np.isnan(want)
        assert np.array_equal(np.signbit(got[real]), np.signbit(want[real]))
        xs = rng.standard_normal(N_PAIRS) * np.exp2(rng.uniform(-150, 130, N_PAIRS))
        _first_mismatch(
            backend.encode(xs),
            [SoftFloat.from_float(BINARY32, float(x)).pattern for x in xs],
            xs, xs, f"{backend.name} wide encode",
        )

    def test_wide_add_mul_match_scalar(self):
        backend = SoftFloatBackend(BINARY32)
        rng = np.random.default_rng(32_005)
        a, b = _sample_pairs(rng, 1 << BINARY32.width, _float_specials(BINARY32))
        fa = [SoftFloat(BINARY32, int(x)) for x in a]
        fb = [SoftFloat(BINARY32, int(y)) for y in b]
        _first_mismatch(
            backend.add(a, b),
            [x.add(y).pattern for x, y in zip(fa, fb)],
            a, b, f"{backend.name} wide add",
        )
        _first_mismatch(
            backend.mul(a, b),
            [x.mul(y).pattern for x, y in zip(fa, fb)],
            a, b, f"{backend.name} wide mul",
        )

    def test_special_square(self):
        backend = SoftFloatBackend(BINARY32)
        specials = _float_specials(BINARY32)
        a, b = map(np.ravel, np.meshgrid(specials, specials))
        fa = [SoftFloat(BINARY32, int(x)) for x in a]
        fb = [SoftFloat(BINARY32, int(y)) for y in b]
        _first_mismatch(
            backend.add(a, b),
            [x.add(y).pattern for x, y in zip(fa, fb)],
            a, b, f"{backend.name} wide special add",
        )
        _first_mismatch(
            backend.mul(a, b),
            [x.mul(y).pattern for x, y in zip(fa, fb)],
            a, b, f"{backend.name} wide special mul",
        )


# ----------------------------------------------------------------------
# LNS
# ----------------------------------------------------------------------
def _lns_specials(fmt):
    """Zero code, ±1.0, ±saturation extremes (largest/smallest magnitudes)."""
    e_bits = fmt.e_bits
    e_mask = (1 << e_bits) - 1
    sign = 1 << e_bits

    def pack(s, e_code):
        return (s << e_bits) | ((e_code - fmt.zero_code) & e_mask)

    return [0, pack(0, 0), pack(1, 0), pack(0, fmt.e_max), pack(1, fmt.e_max),
            pack(0, fmt.e_min), pack(1, fmt.e_min)]


def _lns_obj(fmt, code):
    e_bits = fmt.e_bits
    e_mask = (1 << e_bits) - 1
    return LNS(fmt, int(code) >> e_bits, (int(code) & e_mask) + fmt.zero_code)


def _lns_code(fmt, v):
    if v.is_zero():
        return 0
    e_bits = fmt.e_bits
    e_mask = (1 << e_bits) - 1
    return (v.sign << e_bits) | ((v.e_code - fmt.zero_code) & e_mask)


class TestLNSDifferential:
    @pytest.mark.parametrize("fmt", LNS_FORMATS)
    def test_decode_matches_scalar(self, fmt):
        backend = LNSBackend(fmt)
        codes = np.arange(1 << fmt.width)
        got = backend.decode(codes)
        want = np.array([_lns_obj(fmt, c).to_float() for c in codes])
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("fmt", LNS_FORMATS)
    @pytest.mark.parametrize("table_bits", [10, 0], ids=["pairwise", "via-phi"])
    def test_add_mul_match_scalar(self, fmt, table_bits):
        backend = LNSBackend(fmt, table_bits=table_bits)
        assert backend.strategy == ("pairwise" if table_bits else "via-phi")
        rng = np.random.default_rng(fmt.width * 300 + fmt.frac_bits + table_bits)
        a, b = _sample_pairs(rng, 1 << fmt.width, _lns_specials(fmt))
        la = [_lns_obj(fmt, x) for x in a]
        lb = [_lns_obj(fmt, y) for y in b]
        _first_mismatch(
            backend.add(a, b),
            [_lns_code(fmt, x.add(y)) for x, y in zip(la, lb)],
            a, b, f"{backend.name} {backend.strategy} add",
        )
        _first_mismatch(
            backend.mul(a, b),
            [_lns_code(fmt, x.mul(y)) for x, y in zip(la, lb)],
            a, b, f"{backend.name} mul",
        )

    @pytest.mark.parametrize("fmt", LNS_FORMATS)
    def test_encode_matches_scalar_roundtrip(self, fmt):
        backend = LNSBackend(fmt)
        rng = np.random.default_rng(fmt.width * 301)
        x = np.concatenate(
            [
                rng.normal(scale=s, size=N_PAIRS // 4)
                for s in (0.01, 1.0, 100.0, 1e6)
            ]
            + [np.array([0.0, -0.0, 1.0, -1.0])]
        )
        got = backend.encode(x)
        want = np.array([_lns_code(fmt, LNS.from_float(fmt, float(v))) for v in x])
        _first_mismatch(got, want, x, x, f"{backend.name} encode")
        # The scalar model raises on ±inf; the backend saturates to ±e_max.
        e_bits = fmt.e_bits
        inf_codes = backend.encode(np.array([np.inf, -np.inf]))
        assert [int(c) & ((1 << e_bits) - 1) for c in inf_codes] == [
            (fmt.e_max - fmt.zero_code) & ((1 << e_bits) - 1)
        ] * 2

"""Backend surface not reached by the runner/fuzz suites.

The differential-fuzz harness covers the hot paths (encode/decode/add/mul);
these tests pin down the remaining contract: the approximate-multiplier
backend's int8 pipeline, the softfloats' exact (Kulisch) dot product with
its IEEE special-case ladder, matmul accumulation semantics, and the
constructor error paths.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro.approx import TruncatedMultiplier
from repro.approx.multipliers import ExactMultiplier
from repro.engine.approx_backend import ApproxMultiplierBackend
from repro.engine.backend import OpCounters, timed_op
from repro.engine.posit_backend import PositBackend
from repro.engine.softfloat_backend import SoftFloatBackend
from repro.floats import BINARY16, FP8_E4M3, FloatFormat, SoftFloat
from repro.posit import POSIT8, PositFormat


class TestApproxBackend:
    def test_encode_auto_scale(self):
        backend = ApproxMultiplierBackend(ExactMultiplier())
        x = np.array([-2.0, 0.0, 1.0, 2.0])
        q = backend.encode(x)
        assert q.tolist() == [-127, 0, 64, 127]  # round(1.0 / (2/127)) = 64
        assert backend.last_scale == pytest.approx(2.0 / 127.0)
        # Explicit scale wins; decode inverts it.
        q2 = backend.encode(x, scale=1.0)
        assert q2.tolist() == [-2, 0, 1, 2]
        assert np.array_equal(backend.decode(q2, scale=1.0), x)

    def test_encode_degenerate_inputs(self):
        backend = ApproxMultiplierBackend(ExactMultiplier())
        assert backend.encode(np.zeros(3)).tolist() == [0, 0, 0]
        assert backend.encode(np.array([])).size == 0

    def test_add_is_exact(self):
        backend = ApproxMultiplierBackend(TruncatedMultiplier(cut=4))
        a = np.array([-100, 0, 100])
        b = np.array([27, -1, 27])
        assert backend.add(a, b).tolist() == [-73, -1, 127]

    def test_mul_matches_signed_lut(self):
        mult = TruncatedMultiplier(cut=4)
        backend = ApproxMultiplierBackend(mult)
        rng = np.random.default_rng(0)
        a = rng.integers(-127, 128, size=500)
        b = rng.integers(-127, 128, size=500)
        got = backend.mul(a, b)
        # Sign-magnitude reference straight from the unsigned core.
        want = np.sign(a) * np.sign(b) * mult.multiply(np.abs(a), np.abs(b))
        assert np.array_equal(got, want)

    def test_matmul_and_dot_exact_agree(self):
        backend = ApproxMultiplierBackend(TruncatedMultiplier(cut=4))
        rng = np.random.default_rng(1)
        a = rng.integers(-127, 128, size=(5, 9))
        b = rng.integers(-127, 128, size=(9, 3))
        out = backend.matmul(a, b)
        assert out[2, 1] == backend.dot_exact(a[2], b[:, 1])
        # ExactMultiplier collapses to the true integer product.
        exact = ApproxMultiplierBackend(ExactMultiplier())
        assert np.array_equal(exact.matmul(a, b), a @ b)

    def test_counters_and_repr(self):
        backend = ApproxMultiplierBackend(ExactMultiplier())
        backend.mul(np.array([1]), np.array([2]))
        assert backend.counters.ops["mul"]["calls"] == 1
        assert "exact" in repr(backend)


class TestSoftFloatDotExact:
    def test_exact_accumulation_matches_fractions(self):
        backend = SoftFloatBackend(BINARY16, strategy="via-float")
        rng = np.random.default_rng(2)
        a = rng.integers(0, 1 << 15, size=16)  # positive finite codes
        b = rng.integers(0, 1 << 15, size=16)
        finite = [
            (SoftFloat(BINARY16, int(x)), SoftFloat(BINARY16, int(y)))
            for x, y in zip(a, b)
            if SoftFloat(BINARY16, int(x)).is_finite()
            and SoftFloat(BINARY16, int(y)).is_finite()
        ]
        a = np.array([x.pattern for x, _ in finite])
        b = np.array([y.pattern for _, y in finite])
        want = sum((x.to_fraction() * y.to_fraction() for x, y in finite), Fraction(0))
        assert backend.dot_exact(a, b) == SoftFloat.from_fraction(BINARY16, want).pattern

    def test_special_case_ladder(self):
        fmt = BINARY16
        backend = SoftFloatBackend(fmt, strategy="via-float")
        one = SoftFloat.from_float(fmt, 1.0).pattern
        zero = SoftFloat.zero(fmt).pattern
        inf = SoftFloat.inf(fmt).pattern
        ninf = SoftFloat.inf(fmt, sign=1).pattern
        nan = SoftFloat.nan(fmt).pattern
        qnan = fmt.pattern_quiet_nan
        # NaN anywhere poisons the dot product.
        assert backend.dot_exact([one, nan], [one, one]) == qnan
        # inf * 0 is invalid.
        assert backend.dot_exact([inf], [zero]) == qnan
        # inf - inf is invalid.
        assert backend.dot_exact([inf, ninf], [one, one]) == qnan
        # A single signed infinity dominates any finite accumulation.
        assert backend.dot_exact([ninf, one], [one, one]) == ninf

    def test_special_case_operand_orderings(self):
        # The invalid-operation ladder must not depend on which operand of
        # a pair (or which pair of the vector) carries the special value.
        fmt = BINARY16
        backend = SoftFloatBackend(fmt, strategy="via-float")
        one = SoftFloat.from_float(fmt, 1.0).pattern
        none = SoftFloat.from_float(fmt, -1.0).pattern
        zero = SoftFloat.zero(fmt).pattern
        nzero = SoftFloat.zero(fmt, sign=1).pattern
        inf = SoftFloat.inf(fmt).pattern
        ninf = SoftFloat.inf(fmt, sign=1).pattern
        nan = SoftFloat.nan(fmt).pattern
        qnan = fmt.pattern_quiet_nan

        # inf * 0 in both operand orders, and with a signed zero.
        assert backend.dot_exact([zero], [inf]) == qnan
        assert backend.dot_exact([ninf], [nzero]) == qnan
        # NaN wins even when an infinity was already accumulated.
        assert backend.dot_exact([inf, nan], [one, one]) == qnan
        assert backend.dot_exact([one, inf], [nan, one]) == qnan
        # Mixed-sign infinite partials: -inf from (-inf, +1) then +inf from
        # (+inf, +1), in either order, with finite partials interleaved.
        assert backend.dot_exact([ninf, one, inf], [one, one, one]) == qnan
        assert backend.dot_exact([inf, one, ninf], [one, one, one]) == qnan
        # Sign of an infinite partial follows the product sign rule:
        # (-inf) * (-1) is a +inf partial, so adding +inf agrees.
        assert backend.dot_exact([ninf, inf], [none, one]) == inf
        # Repeated same-sign infinities accumulate to that infinity.
        assert backend.dot_exact([ninf, ninf], [one, one]) == ninf
        # An infinite partial dominates finite partials of opposite sign.
        assert backend.dot_exact([inf, none], [one, one]) == inf

    def test_matmul_rounds_float64_accumulation(self):
        backend = SoftFloatBackend(FP8_E4M3)
        rng = np.random.default_rng(3)
        a = backend.encode(rng.normal(size=(4, 6)))
        b = backend.encode(rng.normal(size=(6, 2)))
        out = backend.matmul(a, b)
        want = backend.encode(backend.decode(a) @ backend.decode(b))
        assert np.array_equal(out, want)

    def test_matmul_rejects_other_accumulators(self):
        backend = SoftFloatBackend(FP8_E4M3)
        with pytest.raises(ValueError):
            backend.matmul(np.zeros((1, 1)), np.zeros((1, 1)), accumulate="exact")


class TestConstructorErrors:
    def test_posit_backend_width_and_strategy(self):
        with pytest.raises(ValueError):
            PositBackend(PositFormat(33, 2))
        with pytest.raises(ValueError):
            PositBackend(POSIT8, strategy="magic")
        # Tabulated strategies cap at 16 bits; only 'wide' goes beyond.
        with pytest.raises(ValueError):
            PositBackend(PositFormat(18, 1), strategy="via-float")
        assert PositBackend(PositFormat(18, 1)).strategy == "wide"

    def test_softfloat_backend_width_and_strategy(self):
        with pytest.raises(ValueError):
            SoftFloatBackend(FloatFormat("fp35", exp_bits=8, frac_bits=26))
        with pytest.raises(ValueError):
            SoftFloatBackend(FP8_E4M3, strategy="magic")
        # Pairwise tables stop at 16 bits, the tabulated codec at 20; a
        # 24-bit format now auto-selects the table-free wide strategy.
        fp24 = FloatFormat("fp24", exp_bits=8, frac_bits=15)
        with pytest.raises(ValueError):
            SoftFloatBackend(fp24, strategy="pairwise")
        with pytest.raises(ValueError):
            SoftFloatBackend(fp24, strategy="via-float")
        assert SoftFloatBackend(fp24).strategy == "wide"
        # Wide float compute runs in float64; precision 26 is the exactness
        # ceiling (2p + 2 <= 53), so a p = 27 format is rejected.
        with pytest.raises(ValueError):
            SoftFloatBackend(
                FloatFormat("fp32e5", exp_bits=5, frac_bits=26), strategy="wide"
            )

    def test_reprs(self):
        assert "posit<8,0>" in repr(PositBackend(POSIT8))
        assert "pairwise" in repr(SoftFloatBackend(FP8_E4M3))


class TestCounterPlumbing:
    def test_timed_op_without_counters_is_a_noop(self):
        with timed_op(None, "op", 3):
            pass

    def test_opcounters_repr_and_merge(self):
        c = OpCounters()
        c.record("mul", 10, 0.5)
        c.merge({"mul": {"calls": 2, "elements": 5, "seconds": 0.25}})
        assert c.ops["mul"] == {"calls": 3, "elements": 15, "seconds": 0.75}
        assert "mul: 3 calls / 15 elems" in repr(c)

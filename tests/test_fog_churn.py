"""Fog under churn: nodes crash and revive, answers never go wrong.

Driven by the engine's deterministic :class:`ChaosPlan` (same seed =>
same crash schedule), so every assertion here is reproducible.  The
contract under churn is *reject-or-exact*: a submission either raises
:class:`FogUnavailable` (every owner of the capability is down) or
returns bytes identical to direct backend execution.  Wrong answers and
silent drops are the only failures; rejection under loss is expected.
"""

import numpy as np
import pytest

from repro.engine import ChaosPlan
from repro.engine.observe import Metrics
from repro.engine.posit_backend import PositBackend
from repro.fog import ChurnDriver, FogTopology, FogUnavailable, name_request
from repro.posit.format import PositFormat
from repro.serve.protocol import Request

pytestmark = pytest.mark.timeout(120)

CRASH_RATE = 0.35  # comfortably above the issue's 0.3 floor


def matmul_request(req_id, a, b, bits=8):
    return Request(
        id=req_id,
        workload="posit_matmul",
        tenant="t",
        bits=bits,
        es=2,
        a=np.asarray(a, dtype=np.float64),
        b=np.asarray(b, dtype=np.float64),
        rows=len(a),
    )


def direct(a, b, bits=8):
    backend = PositBackend(PositFormat(bits, 2), stable_contractions=True)
    return backend.decode(backend.matmul(backend.encode(a), backend.encode(b)))


def run_churn(seed, nodes=6, steps=15, per_step=6, replicas=2):
    """Drive a topology through churned traffic; return observations."""
    rng = np.random.default_rng(seed)
    pairs = [
        (rng.normal(size=(3, 4)), rng.normal(size=(4, 2))) for _ in range(per_step)
    ]
    want = [direct(a, b).tobytes() for a, b in pairs]
    metrics = Metrics()
    wrong = rejected = completed = 0
    with FogTopology(nodes=nodes, replicas=replicas, metrics=metrics) as topo:
        driver = ChurnDriver(topo, ChaosPlan(seed=seed, crash_rate=CRASH_RATE))
        for step in range(steps):
            driver.step(step)
            for j, (a, b) in enumerate(pairs):
                req = matmul_request(f"s{step}r{j}", a, b)
                try:
                    got = topo.submit(req)
                except FogUnavailable:
                    rejected += 1
                    continue
                completed += 1
                if got.tobytes() != want[j]:
                    wrong += 1
        stats = topo.stats()
        churn = driver.stats()
    return {
        "wrong": wrong,
        "rejected": rejected,
        "completed": completed,
        "stats": stats,
        "churn": churn,
        "metrics": metrics,
    }


class TestChurnCorrectness:
    def test_no_wrong_answers_under_heavy_churn(self):
        obs = run_churn(seed=3)
        assert obs["churn"]["crashes"] >= 1, "churn never fired — test is vacuous"
        assert obs["wrong"] == 0, f"{obs['wrong']} wrong answers under churn"
        assert obs["completed"] > 0
        # Accounting: every submission either completed or was rejected.
        assert obs["stats"]["submitted"] == obs["completed"] + obs["rejected"]
        assert obs["stats"]["completed"] == obs["completed"]
        assert obs["stats"]["unavailable"] == obs["rejected"]

    def test_reroutes_observed(self):
        """With replicas=2 and heavy churn, fallback routing must engage."""
        obs = run_churn(seed=3)
        assert obs["stats"]["reroutes"] >= 1
        assert obs["metrics"].counters["fog.reroutes"] >= 1

    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_reject_or_exact_across_seeds(self, seed):
        obs = run_churn(seed=seed, steps=10)
        assert obs["wrong"] == 0
        assert obs["completed"] + obs["rejected"] == obs["stats"]["submitted"]

    def test_churn_is_deterministic(self):
        a = run_churn(seed=7, steps=8)
        b = run_churn(seed=7, steps=8)
        for key in ("wrong", "rejected", "completed"):
            assert a[key] == b[key]
        assert a["churn"] == b["churn"]
        assert a["stats"]["reroutes"] == b["stats"]["reroutes"]


class TestCacheUnderChurn:
    def test_crash_wipes_then_traffic_repopulates(self):
        metrics = Metrics()
        rng = np.random.default_rng(13)
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 2))
        with FogTopology(nodes=4, replicas=2, metrics=metrics) as topo:
            req = matmul_request("r", a, b)
            primary = topo.owners(req.batch_key())[0]
            topo.submit(req, ingress=primary.name)
            assert primary.store.stats()["entries"] == 1
            topo.crash(primary.name)
            topo.revive(primary.name)
            assert primary.store.stats()["entries"] == 0, "crash loses the store"
            # Route fresh traffic in through a non-owner: the interest is
            # forwarded to the revived primary, which re-executes, and the
            # result rides the reverse path back to the ingress store.
            owner_names = {n.name for n in topo.owners(req.batch_key())}
            ingress = next(n for n in topo.nodes if n.name not in owner_names)
            ingress.store.clear()
            got = topo.submit(req, ingress=ingress.name)
            assert got.tobytes() == direct(a, b).tobytes()
            assert primary.store.stats()["entries"] == 1
            assert ingress.store.stats()["entries"] == 1
            assert metrics.counters["fog.repopulations"] >= 1

    def test_min_alive_floor_holds(self):
        """The driver never crashes the topology below ``min_alive``."""
        with FogTopology(nodes=3, replicas=2, metrics=Metrics()) as topo:
            driver = ChurnDriver(
                topo, ChaosPlan(seed=5, crash_rate=1.0), min_alive=1
            )
            for step in range(6):
                driver.step(step)
                assert sum(1 for n in topo.nodes if n.alive) >= 1

    def test_downtime_schedule_revives(self):
        with FogTopology(nodes=4, replicas=2, metrics=Metrics()) as topo:
            driver = ChurnDriver(
                topo, ChaosPlan(seed=9, crash_rate=1.0), downtime_steps=2, min_alive=2
            )
            out0 = driver.step(0)
            assert out0["crashed"], "crash_rate=1.0 must crash something"
            out2 = driver.step(2)
            assert set(out2["revived"]) >= set(out0["crashed"]), (
                "nodes crashed at step 0 revive after downtime_steps=2"
            )


class TestChurnDriverEdgeCases:
    def test_min_alive_equal_to_node_count_disables_churn(self):
        """The floor is honoured even against an always-crash plan: with
        min_alive == nodes, the driver may never take anyone down."""
        with FogTopology(nodes=3, replicas=2, metrics=Metrics()) as topo:
            driver = ChurnDriver(
                topo, ChaosPlan(seed=5, crash_rate=1.0), min_alive=3
            )
            for step in range(5):
                out = driver.step(step)
                assert out["crashed"] == []
                assert all(n.alive for n in topo.nodes)
            assert driver.stats() == {
                "crashes": 0, "revivals": 0, "currently_down": 0,
            }

    def test_adversarial_plan_keeps_serving_at_the_floor(self):
        """crash_rate=1.0, min_alive=1: the one surviving node still
        serves every capability it owns — reject-or-exact, not silence."""
        rng = np.random.default_rng(31)
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 2))
        want = direct(a, b).tobytes()
        completed = rejected = 0
        with FogTopology(nodes=4, replicas=2, metrics=Metrics()) as topo:
            driver = ChurnDriver(
                topo, ChaosPlan(seed=5, crash_rate=1.0), min_alive=1,
                downtime_steps=100,  # nobody comes back: worst case
            )
            for step in range(4):
                driver.step(step)
                assert sum(1 for n in topo.nodes if n.alive) >= 1
                try:
                    got = topo.submit(matmul_request(f"floor{step}", a, b))
                except FogUnavailable:
                    rejected += 1
                    continue
                completed += 1
                assert got.tobytes() == want
        assert completed + rejected == 4

    def test_currently_down_accounting(self):
        with FogTopology(nodes=4, replicas=2, metrics=Metrics()) as topo:
            driver = ChurnDriver(
                topo, ChaosPlan(seed=9, crash_rate=1.0), downtime_steps=2,
                min_alive=2,
            )
            out0 = driver.step(0)
            assert driver.stats()["currently_down"] == len(out0["crashed"])
            # Downtime elapsed: step-0 victims revive — but the always-
            # crash plan takes fresh victims the same step, so the down
            # count tracks the *new* crash set, not zero.
            out2 = driver.step(2)
            assert set(out2["revived"]) >= set(out0["crashed"])
            assert driver.stats()["currently_down"] == len(out2["crashed"])
            assert driver.stats()["revivals"] >= len(out0["crashed"])

    def test_constructor_validation(self):
        with FogTopology(nodes=2, replicas=2, metrics=Metrics()) as topo:
            plan = ChaosPlan(seed=0, crash_rate=0.5)
            with pytest.raises(ValueError, match="downtime_steps"):
                ChurnDriver(topo, plan, downtime_steps=0)
            with pytest.raises(ValueError, match="min_alive"):
                ChurnDriver(topo, plan, min_alive=0)

    def test_revived_store_tampering_is_refused_and_counted(self):
        """The full loss-and-recovery path with a byzantine twist: a node
        crashes (store wiped), revives, repopulates — and then its cached
        bytes rot.  The store's digest re-verification must refuse the
        entry (counted), and the fog must re-execute to the exact bytes."""
        rng = np.random.default_rng(37)
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 2))
        want = direct(a, b).tobytes()
        with FogTopology(nodes=4, replicas=2, metrics=Metrics()) as topo:
            req = matmul_request("tamper", a, b)
            uri = name_request(req).uri()
            primary = topo.owners(req.batch_key())[0]
            topo.submit(req, ingress=primary.name)
            topo.crash(primary.name)
            topo.revive(primary.name)
            assert primary.store.stats()["entries"] == 0
            topo.submit(req, ingress=primary.name)  # repopulate
            assert primary.store.stats()["entries"] == 1
            # Bit rot in the revived store: flip a byte behind the
            # read-only guard, exactly what the pinned digest is for.
            entry = primary.store._entries[uri]
            tampered = entry.result
            tampered.setflags(write=True)
            tampered.flat[0] += 1.0
            before = primary.store.stats()["integrity_failures"]
            got = topo.submit(req, ingress=primary.name)
            assert got.tobytes() == want, "tampered bytes must never be served"
            assert primary.store.stats()["integrity_failures"] == before + 1
            # The refused entry was dropped and the re-execution's good
            # bytes took its place: the next read replays verified content.
            assert primary.store.get(uri) is not None

"""Guard: every example script parses and its imports resolve.

Full example runs take minutes (they train models); this test catches the
cheap failure modes — syntax errors and renamed APIs — on every CI run.
"""

import ast
import importlib
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_parses(path):
    tree = ast.parse(path.read_text(), filename=str(path))
    # Must be runnable as a script.
    assert any(
        isinstance(node, ast.If) and getattr(node.test.left, "id", "") == "__name__"
        for node in tree.body
        if isinstance(node, ast.If)
    ), f"{path.name} lacks a __main__ guard"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_resolve(path):
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and node.module.startswith("repro"):
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path.name}: {node.module}.{alias.name} does not exist"
                )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro"):
                    importlib.import_module(alias.name)

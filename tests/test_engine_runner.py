"""BatchedRunner and the engine-backed posit inference path.

The load-bearing check: :class:`PositQuantizedNetwork` now executes through
:class:`repro.engine.posit_backend.PositBackend`, and its forward pass must
be bit-identical to the original scalar-LUT path (quantize onto the posit
grid, exact float64 products, 53-bit quire-model accumulation, unquantized
bias and activations).  ``_reference_forward`` reimplements that original
path inline from a fresh codec, so any drift in the engine rewiring fails
loudly.
"""

import numpy as np
import pytest

from repro.engine import BatchedRunner, OpCounters, PositBackend
from repro.nn.layers import Conv2D, Dense, ResidualBlock, im2col
from repro.nn.posit_inference import PositQuantizedNetwork
from repro.nn.zoo import kws_cnn1, resnet_mini
from repro.posit import POSIT8, POSIT16
from repro.posit.tensor import PositCodec


def _reference_forward(net, fmt, x):
    """The pre-engine scalar-LUT inference path, reimplemented inline."""
    codec = PositCodec(fmt)  # deliberately fresh: no engine, no registry
    for layer in net.layers:
        if isinstance(layer, Conv2D):
            x = _ref_conv(layer, codec, x)
        elif isinstance(layer, Dense):
            qx = codec.quantize(x)
            x = qx @ codec.quantize(layer.w.data) + layer.b.data
        elif isinstance(layer, ResidualBlock):
            y = _ref_conv(layer.conv1, codec, x)
            y = layer.relu1.forward(y)
            y = _ref_conv(layer.conv2, codec, y)
            x = layer.relu2.forward(y + x)
        else:
            x = layer.forward(x)
    return x


def _ref_conv(conv, codec, x):
    qx = codec.quantize(x)
    qw = codec.quantize(conv.w.data)
    f, c, kh, kw = qw.shape
    cols, oh, ow = im2col(qx, kh, kw, conv.stride, conv.pad)
    out = cols @ qw.reshape(f, -1).T + conv.b.data
    return out.reshape(x.shape[0], oh, ow, f).transpose(0, 3, 1, 2)


class TestBitIdentity:
    @pytest.mark.parametrize("fmt", [POSIT8, POSIT16], ids=str)
    def test_kws_cnn_forward_bit_identical(self, fmt):
        net = kws_cnn1(seed=0)
        rng = np.random.default_rng(10)
        x = rng.normal(size=(3, 1, 31, 20))
        qnet = PositQuantizedNetwork(net, fmt)
        assert np.array_equal(qnet.forward(x), _reference_forward(net, fmt, x))

    def test_resnet_forward_bit_identical(self):
        net = resnet_mini(seed=1)
        rng = np.random.default_rng(11)
        x = rng.normal(size=(2, 3, 16, 16))
        qnet = PositQuantizedNetwork(net, POSIT8)
        assert np.array_equal(qnet.forward(x), _reference_forward(net, POSIT8, x))

    def test_predict_matches_forward(self):
        net = kws_cnn1(seed=2)
        rng = np.random.default_rng(12)
        x = rng.normal(size=(5, 1, 31, 20))
        qnet = PositQuantizedNetwork(net, POSIT8)
        # Not array_equal: BLAS picks different micro-kernels per batch
        # shape, so float64 accumulations differ at the last-ulp level.
        assert np.allclose(qnet.predict(x, batch=2), qnet.forward(x), rtol=1e-12, atol=1e-12)


class TestEngineSharing:
    def test_networks_share_registry_codec(self):
        net = kws_cnn1(seed=3)
        q1 = PositQuantizedNetwork(net, POSIT8)
        q2 = PositQuantizedNetwork(net, POSIT8)
        assert q1.codec is q2.codec  # satellite: module-level codec cache

    def test_explicit_engine_is_adopted(self):
        net = kws_cnn1(seed=4)
        engine = PositBackend(POSIT8)
        qnet = PositQuantizedNetwork(net, POSIT8, engine=engine)
        assert qnet.engine is engine
        assert qnet.codec is engine.codec

    def test_weight_quantization_error_positive(self):
        qnet = PositQuantizedNetwork(kws_cnn1(seed=5), POSIT8)
        err = qnet.weight_quantization_error()
        # Sub-minpos weights clamp to +-minpos (never-round-to-zero), so the
        # worst *relative* error can be enormous; it just must be a finite
        # positive number.
        assert err > 0 and np.isfinite(err)


class TestBatchedRunner:
    def _setup(self, batch_size):
        net = kws_cnn1(seed=6)
        qnet = PositQuantizedNetwork(net, POSIT8)
        return qnet, BatchedRunner(qnet, batch_size=batch_size)

    def test_batching_invariance(self):
        qnet, runner = self._setup(batch_size=2)
        rng = np.random.default_rng(13)
        x = rng.normal(size=(5, 1, 31, 20))
        assert np.allclose(runner.run(x), qnet.forward(x), rtol=1e-12, atol=1e-12)

    def test_stats_shape_and_counters(self):
        _, runner = self._setup(batch_size=2)
        rng = np.random.default_rng(14)
        runner.run(rng.normal(size=(5, 1, 31, 20)))
        stats = runner.stats()
        assert stats["items"] == 5
        assert stats["batches"] == 3  # 2 + 2 + 1
        assert stats["wall_s"] > 0 and stats["items_per_s"] > 0
        assert stats["mean_batch_ms"] > 0
        # The runner adopted the model engine's counters: backend ops show up.
        assert stats["ops"]["quantize"]["elements"] > 0
        assert stats["ops"]["matmul[values]"]["calls"] > 0
        assert stats["table_hits"] >= 0 and stats["table_misses"] >= 0

    def test_reset_clears_counters(self):
        _, runner = self._setup(batch_size=4)
        rng = np.random.default_rng(15)
        runner.run(rng.normal(size=(4, 1, 31, 20)))
        runner.reset()
        stats = runner.stats()
        assert stats["items"] == 0 and stats["batches"] == 0
        assert stats["ops"] == {}

    def test_explicit_counters_override(self):
        net = kws_cnn1(seed=7)
        counters = OpCounters()
        qnet = PositQuantizedNetwork(net, POSIT8)
        runner = BatchedRunner(qnet, batch_size=4, counters=counters)
        assert runner.counters is counters

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            BatchedRunner(object(), batch_size=0)

    def test_plain_sequential_model(self):
        net = kws_cnn1(seed=8)
        runner = BatchedRunner(net, batch_size=3)
        rng = np.random.default_rng(16)
        x = rng.normal(size=(4, 1, 31, 20))
        assert np.allclose(runner.run(x), net.forward(x), rtol=1e-12, atol=1e-12)

"""Shared test configuration."""

import json
import os
import signal
import threading

import pytest
from hypothesis import HealthCheck, settings

# A single moderate profile: the suite is large, so keep per-test example
# counts bounded while still exercising real search depth.
settings.register_profile(
    "repro",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): fail the test if it runs longer than `seconds` "
        "(repo-local SIGALRM fallback for pytest-timeout; a hung asyncio "
        "server fails fast instead of stalling the whole suite)",
    )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Enforce ``@pytest.mark.timeout(seconds)`` on socket/asyncio tests.

    The container has no pytest-timeout, so this implements the same
    signal-based contract: an ``ITIMER_REAL`` alarm raises inside the test
    (interrupting a blocked event loop or socket wait) and the test fails
    with a timeout message instead of hanging CI.  No-ops when the real
    pytest-timeout plugin is installed, on platforms without ``SIGALRM``,
    or off the main thread — exactly the cases the signal trick can't
    serve.
    """
    marker = item.get_closest_marker("timeout")
    if (
        marker is None
        or item.config.pluginmanager.hasplugin("timeout")
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return
    seconds = float(marker.args[0]) if marker.args else 60.0

    def _on_alarm(signum, frame):
        raise TimeoutError(
            f"{item.nodeid} exceeded its {seconds:g}s timeout marker "
            f"(hung server/event loop?)"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Dump fuzz/parity failure seeds to a JSON artifact for the nightly CI.

    Opt-in via ``REPRO_FUZZ_FAILURE_FILE``: when set (the nightly workflow
    sets it), every failing test records its node id, the fuzz volume and
    the failure text, so a red nightly run uploads enough to reproduce —
    the fuzz RNGs are seeded per format, so node id + pair count replays
    the exact failing inputs.
    """
    outcome = yield
    path = os.environ.get("REPRO_FUZZ_FAILURE_FILE")
    if not path:
        return
    rep = outcome.get_result()
    if rep.when != "call" or not rep.failed:
        return
    try:
        records = json.loads(open(path).read()) if os.path.exists(path) else []
    except (OSError, ValueError):
        records = []
    records.append(
        {
            "nodeid": item.nodeid,
            "fuzz_pairs": os.environ.get("REPRO_FUZZ_PAIRS", "2000"),
            "longrepr": str(rep.longrepr)[:20000],
        }
    )
    with open(path, "w") as fh:
        json.dump(records, fh, indent=2)

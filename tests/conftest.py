"""Shared test configuration."""

import json
import os

import pytest
from hypothesis import HealthCheck, settings

# A single moderate profile: the suite is large, so keep per-test example
# counts bounded while still exercising real search depth.
settings.register_profile(
    "repro",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Dump fuzz/parity failure seeds to a JSON artifact for the nightly CI.

    Opt-in via ``REPRO_FUZZ_FAILURE_FILE``: when set (the nightly workflow
    sets it), every failing test records its node id, the fuzz volume and
    the failure text, so a red nightly run uploads enough to reproduce —
    the fuzz RNGs are seeded per format, so node id + pair count replays
    the exact failing inputs.
    """
    outcome = yield
    path = os.environ.get("REPRO_FUZZ_FAILURE_FILE")
    if not path:
        return
    rep = outcome.get_result()
    if rep.when != "call" or not rep.failed:
        return
    try:
        records = json.loads(open(path).read()) if os.path.exists(path) else []
    except (OSError, ValueError):
        records = []
    records.append(
        {
            "nodeid": item.nodeid,
            "fuzz_pairs": os.environ.get("REPRO_FUZZ_PAIRS", "2000"),
            "longrepr": str(rep.longrepr)[:20000],
        }
    )
    with open(path, "w") as fh:
        json.dump(records, fh, indent=2)

"""Shared test configuration."""

from hypothesis import HealthCheck, settings

# A single moderate profile: the suite is large, so keep per-test example
# counts bounded while still exercising real search depth.
settings.register_profile(
    "repro",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

"""Regenerate the golden-vector files in this directory.

Run from the repo root:

    PYTHONPATH=src python tests/golden/generate.py

Every array is produced by the bit-exact *scalar* models
(:class:`repro.posit.Posit`, :class:`repro.floats.SoftFloat`) — never by
the vectorized engine — so the goldens pin today's scalar semantics as an
independent cross-check.  ``tests/test_golden_vectors.py`` replays them
against both the scalar models and the engine backends; a diff in either
means the numerics changed and the change must be deliberate.

The files are small (compressed .npz, ~100 KB total) and checked in, so
the test suite detects regressions without depending on this script.
"""

import math
import pathlib

import numpy as np

from repro.floats import FP8_E4M3, FP8_E5M2, SoftFloat
from repro.posit import POSIT8, Posit

HERE = pathlib.Path(__file__).resolve().parent

#: Seed for the encode golden inputs.  Never change it: the point of a
#: golden file is that the inputs stay frozen.
ENCODE_SEED = 20260806


def posit8_goldens() -> dict:
    fmt = POSIT8
    n = 1 << fmt.nbits
    posits = [Posit(fmt, p) for p in range(n)]
    values = np.array(
        [math.nan if p.is_nar() else p.to_float() for p in posits], dtype=np.float64
    )
    add = np.empty((n, n), dtype=np.uint8)
    mul = np.empty((n, n), dtype=np.uint8)
    for i, a in enumerate(posits):
        for j, b in enumerate(posits):
            add[i, j] = (a + b).pattern
            mul[i, j] = (a * b).pattern

    rng = np.random.default_rng(ENCODE_SEED)
    encode_in = np.concatenate(
        [
            rng.normal(scale=s, size=64) for s in (1e-3, 1.0, 1e3)
        ]
        + [np.array([0.0, -0.0, np.inf, -np.inf, np.nan, 1.0, -1.0, 64.0, 1 / 64])]
    )
    encode_out = np.array(
        [Posit.from_float(fmt, float(v)).pattern for v in encode_in], dtype=np.uint8
    )
    return {
        "values": values,
        "add": add,
        "mul": mul,
        "encode_in": encode_in,
        "encode_out": encode_out,
    }


def fp8_goldens(fmt) -> dict:
    n = 1 << fmt.width
    floats = [SoftFloat(fmt, p) for p in range(n)]
    values = np.array([f.to_float() for f in floats], dtype=np.float64)
    add = np.empty((n, n), dtype=np.uint8)
    mul = np.empty((n, n), dtype=np.uint8)
    for i, a in enumerate(floats):
        for j, b in enumerate(floats):
            add[i, j] = a.add(b).pattern
            mul[i, j] = a.mul(b).pattern

    rng = np.random.default_rng(ENCODE_SEED + fmt.exp_bits)
    encode_in = np.concatenate(
        [rng.normal(scale=s, size=64) for s in (0.01, 1.0, 100.0)]
        + [np.array([0.0, -0.0, np.inf, -np.inf, np.nan, 1.0, -1.0])]
    )
    encode_out = np.array(
        [SoftFloat.from_float(fmt, float(v)).pattern for v in encode_in],
        dtype=np.uint8,
    )
    return {
        "values": values,
        "add": add,
        "mul": mul,
        "encode_in": encode_in,
        "encode_out": encode_out,
    }


def serve_goldens() -> dict:
    """Frozen inputs + outputs for the serving path's coalescing contract.

    Unlike the scalar-model goldens above, these ARE produced by the
    engine — deliberately: they pin the byte-exact output of the
    *stable-contraction* serving path (posit8 ``kws1`` inference, solo,
    in-process), so ``tests/test_serve_identity.py`` can replay the same
    samples solo, coalesced, and across worker counts and require all of
    them to match these bytes.
    """
    from repro.nn.posit_inference import PositQuantizedNetwork
    from repro.nn.zoo import kws_cnn1
    from repro.posit import STD_POSIT8

    rng = np.random.default_rng(ENCODE_SEED + 8000)
    x = rng.normal(size=(8, 1, 31, 20))
    # posit<8,2> — the serving protocol's wire default (bits=8, es=2).
    qnet = PositQuantizedNetwork(
        kws_cnn1(seed=0), STD_POSIT8, stable_contractions=True
    )
    # Solo reference: each sample forwarded alone.
    y = np.concatenate([qnet.forward(x[i : i + 1]) for i in range(len(x))], axis=0)
    return {"x": x, "y": y}


def fog_goldens() -> dict:
    """Frozen inputs + outputs for the fog routing-identity contract.

    Engine-produced, like :func:`serve_goldens`: a batch of posit<8,2>
    matmul operands and their stable-contraction products, computed by
    the backend directly (no fog, no serve).  ``tests/test_fog_identity.py``
    replays each pair through every fog path — local execution, a forced
    one-hop forward, and a content-store cache hit — and requires all of
    them to match these bytes.
    """
    from repro.engine.posit_backend import PositBackend
    from repro.posit.format import PositFormat

    rng = np.random.default_rng(ENCODE_SEED + 9000)
    a = rng.normal(size=(6, 4, 5))
    b = rng.normal(size=(6, 5, 3))
    backend = PositBackend(PositFormat(8, 2), stable_contractions=True)
    y = np.stack(
        [
            backend.decode(backend.matmul(backend.encode(a[i]), backend.encode(b[i])))
            for i in range(len(a))
        ]
    )
    return {"a": a, "b": b, "y": y}


def fused_mlp_goldens() -> dict:
    """Frozen inputs + outputs for the fused execution-strategy contract.

    Engine-produced by the *unfused* path on purpose: a small posit<8,0>
    MLP predicted through the per-layer executors pins the bytes that
    ``tests/test_fused_identity.py`` then demands from every fused
    configuration — single-process plan, split code boundary, and
    shared-memory sharding across workers.  If a fused kernel ever
    rounds differently, the replay fails against these bytes even if
    fused and unfused were changed in the same (wrong) way.
    """
    from repro.nn.layers import Dense, ReLU
    from repro.nn.network import Sequential
    from repro.nn.posit_inference import PositQuantizedNetwork
    from repro.posit import POSIT8

    rng = np.random.default_rng(ENCODE_SEED + 7000)
    net = Sequential(
        [Dense(24, 32, rng, "fc1"), ReLU(), Dense(32, 8, rng, "fc2")],
        input_shape=(24,),
        name="fused-golden-mlp",
    )
    qnet = PositQuantizedNetwork(net, POSIT8)
    x = rng.normal(size=(12, 24))
    y = qnet.predict(x, batch=4)
    w = {f"w{i}": p.data for i, p in enumerate(net.params())}
    return {"x": x, "y": y, **w}


def main() -> None:
    np.savez_compressed(HERE / "posit8.npz", **posit8_goldens())
    print(f"wrote {HERE / 'posit8.npz'}")
    for fmt in (FP8_E4M3, FP8_E5M2):
        path = HERE / f"{fmt.name}.npz"
        np.savez_compressed(path, **fp8_goldens(fmt))
        print(f"wrote {path}")
    np.savez_compressed(HERE / "serve_kws1_posit8.npz", **serve_goldens())
    print(f"wrote {HERE / 'serve_kws1_posit8.npz'}")
    np.savez_compressed(HERE / "fog_posit8_matmul.npz", **fog_goldens())
    print(f"wrote {HERE / 'fog_posit8_matmul.npz'}")
    np.savez_compressed(HERE / "fused_posit8_mlp.npz", **fused_mlp_goldens())
    print(f"wrote {HERE / 'fused_posit8_mlp.npz'}")


if __name__ == "__main__":
    main()

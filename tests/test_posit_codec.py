"""Posit decode/encode correctness, exhaustively where feasible."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.posit import POSIT8, POSIT16, POSIT32, Posit, PositFormat
from repro.posit.codec import decode, encode
from repro.posit.format import STD_POSIT8


class TestFormat:
    def test_paper_conventions(self):
        assert POSIT8.es == 0
        assert POSIT16.es == 1
        assert POSIT32.es == 2

    def test_posit16_dynamic_range(self):
        # The paper: "A 16-bit posit has a dynamic range from 2^-28 to 2^28".
        assert POSIT16.max_scale == 28
        assert POSIT16.min_scale == -28

    def test_useed(self):
        assert POSIT8.useed == 2
        assert POSIT16.useed == 4
        assert POSIT32.useed == 16

    def test_landmark_patterns(self):
        assert POSIT16.pattern_nar == 0x8000
        assert POSIT16.pattern_maxpos == 0x7FFF
        assert POSIT16.pattern_minpos == 0x0001

    def test_invalid_formats(self):
        with pytest.raises(ValueError):
            PositFormat(2, 0)
        with pytest.raises(ValueError):
            PositFormat(8, -1)


class _DuckFormat:
    """Bypasses PositFormat's own validation — what PositCodec/PositTable
    must reject on their own (they accept any nbits/es descriptor)."""

    def __init__(self, nbits, es):
        self.nbits = nbits
        self.es = es


class TestTensorClassValidation:
    """PositCodec/PositTable reject unsupported widths with a clear error."""

    @pytest.mark.parametrize("nbits,es", [(1, 0), (0, 0), (-4, 0), (8, -1)])
    def test_codec_rejects_bad_widths(self, nbits, es):
        from repro.posit.tensor import PositCodec

        with pytest.raises(ValueError, match="unsupported posit"):
            PositCodec(_DuckFormat(nbits, es))

    @pytest.mark.parametrize("nbits,es", [(1, 0), (0, 0), (-4, 0), (8, -1)])
    def test_table_rejects_bad_widths(self, nbits, es):
        from repro.posit.tensor import PositTable

        with pytest.raises(ValueError, match="unsupported posit"):
            PositTable(_DuckFormat(nbits, es))

    def test_codec_rejects_non_integer_fields(self):
        from repro.posit.tensor import PositCodec

        with pytest.raises(ValueError, match="integer nbits/es"):
            PositCodec(_DuckFormat(8.0, 0))
        with pytest.raises(ValueError, match="integer nbits/es"):
            PositCodec(object())

    def test_codec_rejects_too_wide(self):
        from repro.posit.tensor import PositCodec

        with pytest.raises(ValueError, match="at most 16-bit"):
            PositCodec(_DuckFormat(24, 2))

    def test_error_messages_name_the_bad_field(self):
        from repro.posit.tensor import PositCodec

        with pytest.raises(ValueError, match="nbits=1"):
            PositCodec(_DuckFormat(1, 0))
        with pytest.raises(ValueError, match="es=-1"):
            PositCodec(_DuckFormat(8, -1))


class TestDecode:
    def test_zero_and_nar(self):
        assert decode(POSIT16, 0) == (0, 0, 0)
        assert decode(POSIT16, 0x8000) is None

    def test_one(self):
        sign, sig, exp = decode(POSIT16, 0x4000)
        assert (sign, Fraction(sig) * Fraction(2) ** exp) == (0, 1)

    def test_minpos_maxpos(self):
        _, sig, exp = decode(POSIT16, POSIT16.pattern_minpos)
        assert Fraction(sig) * Fraction(2) ** exp == Fraction(2) ** -28
        _, sig, exp = decode(POSIT16, POSIT16.pattern_maxpos)
        assert Fraction(sig) * Fraction(2) ** exp == Fraction(2) ** 28

    def test_known_posit8_values(self):
        # posit8 es=0: 0x40 = 1, 0x60 = 2, 0x50 = 1.5, 0x20 = 0.5
        for pattern, value in [(0x40, 1), (0x60, 2), (0x50, Fraction(3, 2)), (0x20, Fraction(1, 2))]:
            sign, sig, exp = decode(POSIT8, pattern)
            assert sign == 0
            assert Fraction(sig) * Fraction(2) ** exp == value

    def test_negation_symmetry(self):
        # Two's complement of the pattern is exact negation of the value.
        for pattern in range(1, 256):
            if pattern == 0x80:
                continue
            d1 = decode(POSIT8, pattern)
            d2 = decode(POSIT8, (-pattern) & 0xFF)
            s1, m1, e1 = d1
            s2, m2, e2 = d2
            assert (m1, e1) == (m2, e2)
            assert s1 != s2 or m1 == 0


class TestEncodeRoundTrip:
    @pytest.mark.parametrize("fmt", [POSIT8, POSIT16, STD_POSIT8, PositFormat(9, 1), PositFormat(5, 2)])
    def test_exhaustive_round_trip(self, fmt):
        for pattern in range(1 << fmt.nbits):
            d = decode(fmt, pattern)
            if d is None:
                continue
            s, sig, exp = d
            assert encode(fmt, s, sig, exp) == pattern

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_posit32_round_trip(self, pattern):
        d = decode(POSIT32, pattern)
        if d is None:
            return
        s, sig, exp = d
        assert encode(POSIT32, s, sig, exp) == pattern


class TestRounding:
    def test_no_overflow_to_nar(self):
        # 2^100 is far above maxpos: must clamp, never wrap to NaR.
        assert encode(POSIT16, 0, 1, 100) == POSIT16.pattern_maxpos

    def test_no_underflow_to_zero(self):
        assert encode(POSIT16, 0, 1, -100) == POSIT16.pattern_minpos

    def test_negative_clamps(self):
        assert encode(POSIT16, 1, 1, 100) == ((-POSIT16.pattern_maxpos) & 0xFFFF)

    def test_round_to_nearest_even_pattern(self):
        # posit8 es=0 represents 4.0 (0x70) and 4.5 (0x71) adjacently; the
        # midpoint 4.25 is a tie and must go to the even pattern 0x70.
        p40 = Posit.from_float(POSIT8, 4.0).pattern
        p45 = Posit.from_float(POSIT8, 4.5).pattern
        assert (p40, p45) == (0x70, 0x71)
        tie = encode(POSIT8, 0, 17, -2)  # 4.25 exactly
        assert tie == p40

    def test_sticky_breaks_tie_upward(self):
        above_tie = encode(POSIT8, 0, 17, -2, sticky_in=1)  # 4.25 + epsilon
        assert above_tie == 0x71

    def test_nearest_on_small_format(self):
        # Exhaustive nearest-value check on posit<5,1> against brute force.
        fmt = PositFormat(5, 1)
        reals = []
        for pattern in range(1 << 5):
            d = decode(fmt, pattern)
            if d is None:
                continue
            s, sig, exp = d
            v = Fraction(sig) * Fraction(2) ** exp
            reals.append(((-v if s else v), pattern))
        reals.sort()
        # Probe midpoints and quarter points between consecutive posits.
        for (va, pa), (vb, pb) in zip(reals, reals[1:]):
            for num, den in [(1, 4), (1, 2), (3, 4)]:
                x = va + (vb - va) * Fraction(num, den)
                if x == 0:
                    continue
                got = encode(fmt, int(x < 0), abs(x).numerator, 0) if abs(x).denominator == 1 else None
                p = Posit.from_fraction(fmt, x)
                d = abs(p.to_fraction() - x)
                assert d <= min(abs(va - x), abs(vb - x)) or p.pattern in (pa, pb)


class TestQuireWidth:
    def test_wide_enough_for_products(self):
        for fmt in (POSIT8, POSIT16):
            assert fmt.quire_width() > 4 * fmt.max_scale

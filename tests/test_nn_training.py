"""Training, quantization and STE-retraining tests (the Fig. 5 machinery)."""

import numpy as np
import pytest

from repro.approx import ExactMultiplier, TruncatedMultiplier, signed_lut
from repro.datasets import synthetic_images, synthetic_keywords, spectrogram_features
from repro.nn import (
    Adam,
    Dense,
    QuantizedNetwork,
    ReLU,
    SGD,
    Sequential,
    add_background_noise,
    evaluate_accuracy,
    quantize_tensor,
    dequantize,
    random_flip,
    softmax,
    softmax_cross_entropy,
    train,
)
from repro.nn.zoo import kws_cnn1, kws_cnn2, resnet_mini


class TestLosses:
    def test_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        p = softmax(rng.normal(size=(5, 7)))
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_cross_entropy_gradient_numerically(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(4, 3))
        labels = np.array([0, 2, 1, 1])
        _, grad = softmax_cross_entropy(logits, labels)
        eps = 1e-6
        for i in range(4):
            for j in range(3):
                up = logits.copy()
                up[i, j] += eps
                down = logits.copy()
                down[i, j] -= eps
                num = (
                    softmax_cross_entropy(up, labels)[0]
                    - softmax_cross_entropy(down, labels)[0]
                ) / (2 * eps)
                assert abs(grad[i, j] - num) < 1e-6

    def test_perfect_prediction_low_loss(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-6


class TestOptimizers:
    def _quadratic_param(self):
        from repro.nn.layers import Param

        return Param(np.array([5.0, -3.0]))

    def test_sgd_converges_on_quadratic(self):
        p = self._quadratic_param()
        opt = SGD([p], lr=0.1, momentum=0.5)
        for _ in range(100):
            opt.zero_grad()
            p.grad[...] = 2 * p.data
            opt.step()
        assert np.all(np.abs(p.data) < 1e-3)

    def test_adam_converges_on_quadratic(self):
        p = self._quadratic_param()
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            p.grad[...] = 2 * p.data
            opt.step()
        assert np.all(np.abs(p.data) < 1e-3)


class TestQuantization:
    def test_round_trip_error_bounded(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(100,))
        q, scale = quantize_tensor(x)
        err = np.abs(dequantize(q, scale) - x)
        assert err.max() <= scale / 2 + 1e-12

    def test_extremes_hit_127(self):
        x = np.array([-2.0, 0.0, 2.0])
        q, scale = quantize_tensor(x)
        assert q.tolist() == [-127, 0, 127]

    def test_zero_tensor(self):
        q, scale = quantize_tensor(np.zeros(5))
        assert np.all(q == 0) and scale == 1.0

    def test_fixed_scale(self):
        x = np.array([0.5, 1.0])
        q, scale = quantize_tensor(x, scale=1 / 127)
        assert q.tolist() == [64, 127]


class TestQuantizedNetwork:
    @pytest.fixture(scope="class")
    def trained(self):
        x, y = synthetic_images(60, classes=4, size=8, seed=1)
        net = Sequential(
            [
                __import__("repro.nn.layers", fromlist=["Conv2D"]).Conv2D(3, 6, 3, 1, 1),
                ReLU(),
                __import__("repro.nn.layers", fromlist=["Flatten"]).Flatten(),
                Dense(6 * 64, 4),
            ],
            input_shape=(3, 8, 8),
        )
        train(net, x[:200], y[:200], epochs=6, batch=32, lr=2e-3, seed=0)
        return net, x, y

    def test_8bit_close_to_float(self, trained):
        net, x, y = trained
        qn = QuantizedNetwork(net, x[:64])
        f_acc = evaluate_accuracy(net.predict, x[200:], y[200:])
        q_acc = evaluate_accuracy(lambda v: qn.predict(v, None), x[200:], y[200:])
        assert f_acc > 0.7
        assert q_acc >= f_acc - 0.1  # Table I: 8-bit within ~1% of float

    def test_mild_approximation_harmless(self, trained):
        net, x, y = trained
        qn = QuantizedNetwork(net, x[:64])
        lut = signed_lut(TruncatedMultiplier(cut=2))
        q_acc = evaluate_accuracy(lambda v: qn.predict(v, None), x[200:], y[200:])
        a_acc = evaluate_accuracy(lambda v: qn.predict(v, lut), x[200:], y[200:])
        assert a_acc >= q_acc - 0.05

    def test_aggressive_approximation_degrades(self, trained):
        net, x, y = trained
        qn = QuantizedNetwork(net, x[:64])
        lut = signed_lut(TruncatedMultiplier(cut=11))
        q_acc = evaluate_accuracy(lambda v: qn.predict(v, None), x[200:], y[200:])
        a_acc = evaluate_accuracy(lambda v: qn.predict(v, lut), x[200:], y[200:])
        assert a_acc < q_acc  # heavy truncation must hurt before retraining

    def test_ste_retraining_recovers(self, trained):
        net, x, y = trained
        import copy

        net2 = copy.deepcopy(net)
        qn = QuantizedNetwork(net2, x[:64])
        # cut=11 degrades accuracy but leaves enough signal to recover;
        # cut=12 zeroes nearly every int8 product and is unrecoverable,
        # like the paper's worst multipliers that miss the tolerance.
        lut = signed_lut(TruncatedMultiplier(cut=11))
        before = evaluate_accuracy(lambda v: qn.predict(v, lut), x[200:], y[200:])
        opt = Adam(net2.params(), lr=1e-3)
        rng = np.random.default_rng(0)
        for _ in range(60):
            idx = rng.integers(0, 200, size=32)
            qn.train_step(x[idx], y[idx], opt, lut)
        after = evaluate_accuracy(lambda v: qn.predict(v, lut), x[200:], y[200:])
        assert after > before

    def test_exact_lut_equals_none(self, trained):
        net, x, y = trained
        qn = QuantizedNetwork(net, x[:64])
        lut = signed_lut(ExactMultiplier())
        a = qn.predict(x[200:232], lut)
        b = qn.predict(x[200:232], None)
        assert np.allclose(a, b)


class TestAugmentation:
    def test_flip_is_involution_on_mirror(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(10, 3, 8, 8))
        flipped = random_flip(x, np.random.default_rng(0))
        # Every output row is either the original or its mirror.
        for i in range(10):
            assert np.array_equal(flipped[i], x[i]) or np.array_equal(
                flipped[i], x[i, :, :, ::-1]
            )

    def test_noise_level(self):
        rng = np.random.default_rng(4)
        w = np.sin(np.linspace(0, 40, 2048))[None, :].repeat(8, axis=0)
        noisy = add_background_noise(w, volume=0.1, rng=np.random.default_rng(0))
        added = noisy - w
        rms_sig = np.sqrt((w**2).mean())
        rms_noise = np.sqrt((added**2).mean())
        assert 0.05 * rms_sig < rms_noise < 0.2 * rms_sig

    def test_noise_bank_used(self):
        rng = np.random.default_rng(5)
        w = np.sin(np.linspace(0, 20, 256))[None, :].repeat(4, axis=0)
        bank = np.ones((2, 1024))
        noisy = add_background_noise(w, volume=0.5, rng=rng, noise_bank=bank)
        added = noisy - w
        # Bank noise is constant-valued once RMS-normalized: all-equal rows.
        assert np.allclose(added, added[:, :1])
        assert not np.allclose(added, 0)


class TestZoo:
    def test_model_capacity_ordering(self):
        # Table I: KWS-CNN2 is bigger than KWS-CNN1 in params and MACs.
        k1, k2 = kws_cnn1(), kws_cnn2()
        assert k2.param_count() > k1.param_count()
        assert k2.macs() > k1.macs()

    def test_resnet_shapes(self):
        net = resnet_mini()
        rng = np.random.default_rng(6)
        out = net.forward(rng.normal(size=(2, 3, 16, 16)))
        assert out.shape == (2, 10)

    def test_kws_shapes(self):
        wav, y = synthetic_keywords(2, classes=8, seed=0)
        feats = spectrogram_features(wav)
        net = kws_cnn1(input_shape=feats.shape[1:])
        out = net.forward(feats[:4])
        assert out.shape == (4, 8)


class TestDatasets:
    def test_images_deterministic(self):
        a = synthetic_images(5, classes=3, size=8, seed=7)
        b = synthetic_images(5, classes=3, size=8, seed=7)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_images_balanced_and_bounded(self):
        x, y = synthetic_images(10, classes=4, size=8, seed=0)
        assert sorted(np.bincount(y).tolist()) == [10] * 4
        assert np.abs(x).max() <= 1.0

    def test_keywords_learnable(self):
        # A tiny model must beat chance comfortably: the classes are real.
        wav, y = synthetic_keywords(40, classes=4, seed=2)
        feats = spectrogram_features(wav)
        net = kws_cnn1(input_shape=feats.shape[1:], classes=4)
        train(net, feats[:128], y[:128], epochs=4, batch=32, lr=3e-3, seed=0)
        acc = evaluate_accuracy(net.predict, feats[128:], y[128:])
        assert acc > 0.5

    def test_spectrogram_shape(self):
        wav, _ = synthetic_keywords(2, classes=2, samples=2048, seed=0)
        feats = spectrogram_features(wav, frame=128, hop=64, bins=20)
        assert feats.shape == (4, 1, 31, 20)

    def test_spectrogram_normalized(self):
        wav, _ = synthetic_keywords(3, classes=2, seed=1)
        feats = spectrogram_features(wav)
        assert np.allclose(feats.mean(axis=(2, 3)), 0, atol=1e-6)

"""Golden-vector replay: fog routing must be invisible in the bytes.

The fog's core promise extends the serving layer's coalescing contract
one level up: a named computation returns **byte-identical** results
whether it executes locally at its owner, is forwarded a hop to reach
that owner, or is replayed from a content store — and all three must
match a checked-in golden produced by the engine backend directly, so a
regression is caught even if every fog path drifts together.
"""

import pathlib

import numpy as np
import pytest

from repro.engine.observe import Metrics
from repro.fog import FogTopology, name_request
from repro.serve.protocol import Request

GOLDEN = pathlib.Path(__file__).parent / "golden" / "fog_posit8_matmul.npz"

pytestmark = pytest.mark.timeout(120)


def matmul_request(req_id, a, b):
    return Request(
        id=req_id,
        workload="posit_matmul",
        tenant="t",
        bits=8,
        es=2,
        a=np.asarray(a, dtype=np.float64),
        b=np.asarray(b, dtype=np.float64),
        rows=len(a),
    )


def assert_bitexact(got, want, label):
    got = np.asarray(got)
    want = np.asarray(want)
    assert got.shape == want.shape and got.dtype == want.dtype, label
    assert got.tobytes() == want.tobytes(), f"{label}: outputs differ bytewise"


@pytest.fixture(scope="module")
def golden():
    with np.load(GOLDEN) as data:
        return data["a"].copy(), data["b"].copy(), data["y"].copy()


class TestFogGoldenReplay:
    def test_local_execution_matches_golden(self, golden):
        """Ingress == owner: no forwarding, no cache — pure execution."""
        a, b, y = golden
        with FogTopology(nodes=2, replicas=1, metrics=Metrics()) as topo:
            for i in range(len(a)):
                req = matmul_request(f"local{i}", a[i], b[i])
                owner = topo.owners(req.batch_key())[0]
                got = topo.submit(req, ingress=owner.name)
                assert_bitexact(got, y[i], f"local pair {i}")
            assert topo.forwards == 0

    def test_forwarded_one_hop_matches_golden(self, golden):
        """Ingress != owner: the interest crosses exactly one hop."""
        a, b, y = golden
        with FogTopology(nodes=2, replicas=1, metrics=Metrics()) as topo:
            for i in range(len(a)):
                req = matmul_request(f"fwd{i}", a[i], b[i])
                owner = topo.owners(req.batch_key())[0]
                ingress = next(n for n in topo.nodes if n.name != owner.name)
                got = topo.submit(req, ingress=ingress.name)
                assert_bitexact(got, y[i], f"forwarded pair {i}")
            assert topo.forwards == len(a), "every submission took the hop"

    def test_cache_replay_matches_golden(self, golden):
        """Second submission of every name is a store replay, not a rerun."""
        a, b, y = golden
        with FogTopology(nodes=2, replicas=1, metrics=Metrics()) as topo:
            for i in range(len(a)):
                topo.submit(matmul_request(f"warm{i}", a[i], b[i]))
            execs_after_warm = sum(n.executions for n in topo.nodes)
            for i in range(len(a)):
                got = topo.submit(matmul_request(f"replay{i}", a[i], b[i]))
                assert_bitexact(got, y[i], f"cached pair {i}")
            assert sum(n.executions for n in topo.nodes) == execs_after_warm, (
                "cache replay must not re-execute"
            )
            assert topo.cache_hits >= len(a)

    def test_all_paths_agree_after_owner_crash(self, golden):
        """Rerouted execution on the surviving replica is still golden."""
        a, b, y = golden
        with FogTopology(nodes=4, replicas=2, metrics=Metrics()) as topo:
            req0 = matmul_request("probe", a[0], b[0])
            primary = topo.owners(req0.batch_key())[0]
            topo.crash(primary.name)
            for i in range(len(a)):
                got = topo.submit(matmul_request(f"crash{i}", a[i], b[i]))
                assert_bitexact(got, y[i], f"rerouted pair {i}")

    def test_golden_names_are_stable(self, golden):
        """The content name of a golden pair is a pure function of its bytes.

        If this changes, every cached result in a deployed fog is
        silently invalidated — treat a diff here like a wire-format break.
        """
        a, b, _ = golden
        n1 = name_request(matmul_request("x", a[0], b[0]))
        n2 = name_request(matmul_request("y", a[0], b[0]))
        assert n1.uri() == n2.uri()
        assert n1.uri().startswith("/fog/exec/posit_matmul/bits=8;es=2/")

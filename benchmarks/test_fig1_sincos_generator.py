"""Fig. 1: the parametric fixed-point sine/cosine operator.

The figure's point is that the *generator* computes every internal bit
width from the output format ("each bit-width on this figure is computed by
the generator, and very few signals have the same bit width") while the
operator stays faithful.  The reproduction sweeps output precisions and
reports the chosen architecture parameters plus the verified error.
"""

import pytest

from repro.generators import SinCosGenerator


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for p in (8, 10, 12, 14):
        g = SinCosGenerator(out_frac_bits=p)
        step = 7 if p <= 12 else 31
        err = g.max_error_ulps(step=step)
        rows.append((p, g.report, err))
    return rows


def test_fig1_sincos_generator(benchmark, sweep, report):
    g = SinCosGenerator(out_frac_bits=12)
    benchmark(lambda: [g.evaluate(x) for x in range(0, 1 << (g.w + 1), 257)])

    lines = [
        f"{'out bits':>8} {'A bits':>7} {'entry':>6} {'z bits':>7} {'work':>5} "
        f"{'sin terms':>9} {'cos terms':>9} {'max err (ulp)':>14}"
    ]
    for p, rpt, err in sweep:
        lines.append(
            f"{p:>8} {rpt.table_address_bits:>7} {rpt.table_entry_bits:>6} "
            f"{rpt.residual_bits:>7} {rpt.working_bits:>5} {rpt.taylor_terms_sin:>9} "
            f"{rpt.taylor_terms_cos:>9} {err:>14.3f}"
        )
    lines.append("")
    lines.append("all widths derived from the output format; faithful (< 1 ulp) everywhere")
    report("fig1_sincos_generator", lines)

    for p, rpt, err in sweep:
        assert err < 1.0, f"p={p} not faithful: {err} ulp"
    # Architecture scales with precision: wider outputs need bigger tables.
    assert sweep[-1][1].table_address_bits >= sweep[0][1].table_address_bits
    assert sweep[-1][1].working_bits > sweep[0][1].working_bits
    # The parameters are genuinely heterogeneous ("very few signals have the
    # same bit width").
    widths = set(sweep[2][1].widths().values())
    assert len(widths) >= 4

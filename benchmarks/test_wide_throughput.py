"""Throughput: bit-parallel wide codecs vs the scalar posit32/binary32 models.

The point of ``strategy="wide"``: posit<32,2> and binary32 have no tables
(2**32 codes), so before this layer they only existed as per-element scalar
:class:`repro.posit.value.Posit` / :class:`repro.floats.softfloat.SoftFloat`
objects.  The wide codecs run the same decode/encode/multiply math as whole
numpy shift/mask expressions, and this benchmark measures the win on the
ISSUE's 10k-element encode/decode/mul sweep for both formats.

Both paths are bit-exact against each other (checked here on the scalar
subset, and hammered by ``tests/test_differential_fuzz.py``), so the
comparison is pure execution efficiency.  Results go to ``BENCH_wide.json``
at the repo root; the reported ``speedup`` is the *minimum* across the six
format x op cells, and the >= 50x acceptance bar is asserted except in
smoke mode (``REPRO_QUICK=1``), where the scalar sample is too small for a
stable ratio — the honesty convention of ``BENCH_parallel.json``: record,
don't assert, when the environment can't support the measurement.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import quick_mode
from repro.engine import PositBackend, SoftFloatBackend
from repro.floats import BINARY32, SoftFloat
from repro.posit import POSIT32, Posit

REPO_ROOT = Path(__file__).resolve().parent.parent
N = 10_000
SCALAR_N = 60 if quick_mode() else 300
REPS = 3 if quick_mode() else 7
SPEEDUP_BAR = 50.0


def _best(fn, *args):
    """Best-of-REPS wall time for one bulk call (first call pre-warmed)."""
    fn(*args)
    best = float("inf")
    for _ in range(REPS):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def _scalar_best(fn):
    """Best-of-REPS wall time and last result for one scalar sweep."""
    out, best = None, float("inf")
    for _ in range(REPS):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return out, best


def _scalar_posit_ops(xs, codes_a, codes_b):
    enc, t_enc = _scalar_best(
        lambda: [Posit.from_float(POSIT32, float(v)).pattern for v in xs]
    )
    pa = [Posit(POSIT32, int(c)) for c in codes_a]
    pb = [Posit(POSIT32, int(c)) for c in codes_b]
    dec, t_dec = _scalar_best(lambda: [p.to_float() for p in pa])
    mul, t_mul = _scalar_best(
        lambda: [(x * y).pattern for x, y in zip(pa, pb)]
    )
    return (enc, dec, mul), (t_enc, t_dec, t_mul)


def _scalar_float_ops(xs, codes_a, codes_b):
    enc, t_enc = _scalar_best(
        lambda: [SoftFloat.from_float(BINARY32, float(v)).pattern for v in xs]
    )
    fa = [SoftFloat(BINARY32, int(c)) for c in codes_a]
    fb = [SoftFloat(BINARY32, int(c)) for c in codes_b]
    dec, t_dec = _scalar_best(lambda: [f.to_float() for f in fa])
    mul, t_mul = _scalar_best(
        lambda: [x.mul(y).pattern for x, y in zip(fa, fb)]
    )
    return (enc, dec, mul), (t_enc, t_dec, t_mul)


def _measure_format(backend, scalar_ops, rng):
    """One format's sweep: wide elems/s, scalar elems/s, parity, speedups."""
    xs = rng.standard_normal(N) * np.exp2(rng.uniform(-20, 20, N))
    codes_a = backend.encode(xs)
    codes_b = backend.encode(xs[::-1].copy())

    wide_s = {
        "encode": _best(backend.encode, xs),
        "decode": _best(backend.decode, codes_a),
        "mul": _best(backend.mul, codes_a, codes_b),
    }

    (s_enc, s_dec, s_mul), (t_enc, t_dec, t_mul) = scalar_ops(
        xs[:SCALAR_N], codes_a[:SCALAR_N], codes_b[:SCALAR_N]
    )
    scalar_s = {"encode": t_enc, "decode": t_dec, "mul": t_mul}

    # Bit-exact parity on the scalar subset — the speedup must not be
    # bought with wrong answers.
    assert np.array_equal(codes_a[:SCALAR_N].astype(np.int64), s_enc)
    assert np.array_equal(
        backend.decode(codes_a[:SCALAR_N]), s_dec, equal_nan=True
    )
    assert np.array_equal(
        backend.mul(codes_a[:SCALAR_N], codes_b[:SCALAR_N]).astype(np.int64), s_mul
    )

    cells = {}
    for op in ("encode", "decode", "mul"):
        wide_eps = N / wide_s[op]
        scalar_eps = SCALAR_N / scalar_s[op]
        cells[op] = {
            "wide_elems_per_s": wide_eps,
            "scalar_elems_per_s": scalar_eps,
            "speedup": wide_eps / scalar_eps,
        }
    return cells


@pytest.fixture(scope="module")
def measurement():
    rng = np.random.default_rng(32)
    posit_cells = _measure_format(PositBackend(POSIT32), _scalar_posit_ops, rng)
    float_cells = _measure_format(SoftFloatBackend(BINARY32), _scalar_float_ops, rng)
    speedups = [c["speedup"] for cells in (posit_cells, float_cells) for c in cells.values()]
    return {
        "elements": N,
        "scalar_elements": SCALAR_N,
        "reps": REPS,
        "posit32": posit_cells,
        "binary32": float_cells,
        "speedup": min(speedups),  # the regression-gate metric: worst cell
        "speedup_bar": SPEEDUP_BAR,
        "bar_asserted": not quick_mode(),
        "bit_exact_on_scalar_subset": True,
    }


def test_wide_throughput(benchmark, measurement, report):
    backend = PositBackend(POSIT32)
    rng = np.random.default_rng(9)
    xs = rng.standard_normal(N)
    a = backend.encode(xs)
    b = backend.encode(xs[::-1].copy())
    benchmark(lambda: backend.mul(a, b))

    m = measurement
    lines = [
        f"sweep          {m['elements']} elements, scalar sample {m['scalar_elements']}",
    ]
    for fmt_name in ("posit32", "binary32"):
        for op, cell in m[fmt_name].items():
            lines.append(
                f"{fmt_name:9s} {op:7s} {cell['wide_elems_per_s']:14.0f} elems/s"
                f"  ({cell['speedup']:8.1f}x over scalar)"
            )
    bar_note = "asserted" if m["bar_asserted"] else "not asserted (REPRO_QUICK smoke run)"
    lines.append(
        f"min speedup    {m['speedup']:10.1f}x  (bar >= {SPEEDUP_BAR:.0f}x, {bar_note})"
    )
    report("wide_throughput", lines)
    (REPO_ROOT / "BENCH_wide.json").write_text(json.dumps(m, indent=2) + "\n")

    if m["bar_asserted"]:
        assert m["speedup"] >= SPEEDUP_BAR

"""Table I: DNN characteristics — params, MACs, float and 8-bit accuracy.

Paper's rows (full-scale nets on CIFAR / Speech Commands):

    ResNet20   274,442 params   40.8M MACs   91.04 float   90.34 8-bit
    KWS-CNN1    69,982 params    2.5M MACs   91.99 float   91.90 8-bit
    KWS-CNN2   179,404 params    8.6M MACs   92.71 float   92.60 8-bit

Ours are architecture-faithful miniatures on synthetic data; the shape to
reproduce: three models with the same relative ordering of size and MACs,
float accuracy well above chance, and 8-bit accuracy within ~1% of float.
"""

import pytest

from repro.datasets import spectrogram_features, synthetic_images, synthetic_keywords
from repro.nn import QuantizedNetwork, evaluate_accuracy, train
from repro.nn.zoo import kws_cnn1, kws_cnn2, resnet_mini

from conftest import quick_mode


@pytest.fixture(scope="module")
def workloads():
    epochs = 2 if quick_mode() else 5
    out = []

    x, y = synthetic_images(160, classes=10, size=16, seed=0)
    net = resnet_mini()
    train(net, x[:1200], y[:1200], epochs=epochs, batch=64, lr=2e-3, seed=0)
    out.append(("ResNet-mini", "synthetic-CIFAR", net, x[1200:1560], y[1200:1560], x[:128]))

    wav, yk = synthetic_keywords(180, classes=8, seed=0)
    feats = spectrogram_features(wav)
    for builder, name in ((kws_cnn1, "KWS-CNN1"), (kws_cnn2, "KWS-CNN2")):
        net = builder(input_shape=feats.shape[1:])
        train(net, feats[:1100], yk[:1100], epochs=epochs, batch=64, lr=3e-3, seed=0)
        out.append((name, "synthetic-SCD", net, feats[1100:1440], yk[1100:1440], feats[:128]))
    return out


def test_table1_dnn_characteristics(benchmark, workloads, report):
    rows = []
    for name, dataset, net, xte, yte, calib in workloads:
        qn = QuantizedNetwork(net, calib)
        float_acc = evaluate_accuracy(net.predict, xte, yte)
        q8_acc = evaluate_accuracy(lambda v: qn.predict(v, None), xte, yte)
        rows.append((name, dataset, net.param_count(), net.macs(), float_acc, q8_acc))

    # Benchmark quantized inference of the first model.
    name, dataset, net, xte, yte, calib = workloads[0]
    qn = QuantizedNetwork(net, calib)
    benchmark(lambda: qn.predict(xte[:64], None))

    lines = [f"{'DNN':<12} {'Dataset':<16} {'Params':>8} {'MACs':>10} {'Float':>7} {'8-bit':>7}"]
    for name, dataset, params, macs, f, q in rows:
        lines.append(
            f"{name:<12} {dataset:<16} {params:>8,} {macs:>10,} {100*f:>7.2f} {100*q:>7.2f}"
        )
    lines.append("")
    lines.append("paper shape: CNN2 > CNN1 in params/MACs; 8-bit within ~1% of float")
    report("table1_dnn_characteristics", lines)

    by_name = {r[0]: r for r in rows}
    assert by_name["KWS-CNN2"][2] > by_name["KWS-CNN1"][2]  # params ordering
    assert by_name["KWS-CNN2"][3] > by_name["KWS-CNN1"][3]  # MACs ordering
    for name, dataset, params, macs, f, q in rows:
        assert f > 0.6, f"{name} failed to train ({f:.2f})"
        assert q >= f - 0.05, f"{name}: 8-bit dropped too far ({f:.3f} -> {q:.3f})"

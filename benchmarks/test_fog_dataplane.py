"""Fog data-plane benchmark: pipelining, binary framing, collapsing.

Measures the three perf mechanisms of the peer data plane:

1. **Pipelined transport** — throughput of one multiplexed connection at
   1 / 4 / 16 in-flight interests against a node running a worker pool.
   The serial arm is the PR 9 behavior (one outstanding request per
   connection); the speedup is what rid-multiplexing buys.  The >= 3x
   gate is asserted only on >= 4-CPU hosts (``bar_asserted``): on one
   core every arm is compute-bound and the honest speedup is ~1x.
2. **Binary framing** — bytes on the wire for the same interest under
   length-prefixed raw-byte framing vs the legacy base64-in-JSON line.
   Deterministic, so the <= 0.8x budget is asserted everywhere.
3. **Singleflight collapsing** — duplicate-interest collapse rate and
   content-store hit rate under a zipfian working set submitted by
   concurrent clients against a 2-node fabric.

Results go to ``BENCH_fogperf.json`` at the repo root, gated by
``check_regression.py`` (metric ``pipelined_speedup_16``).
"""

import json
import os
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.engine.observe import Metrics
from repro.engine.registry import array_digest
from repro.fog import FogFabric, FogUnavailable
from repro.serve.executor import DeadlineExceeded, EngineExecutor
from repro.serve.protocol import Request, encode_line, interest_frame
from repro.fog.frames import pack_frame

from conftest import quick_mode

REPO_ROOT = Path(__file__).resolve().parent.parent

INFLIGHT_LEVELS = (1, 4, 16)
REQUESTS_PER_ARM = 12 if quick_mode() else 24
ZIPF_SUBMISSIONS = 48 if quick_mode() else 96
ZIPF_NAMES = 8
ZIPF_THREADS = 8
#: Gate: one multiplexed connection at 16 in-flight must beat serial by
#: >= 3x — asserted only where the node pool has cores to overlap on.
SPEEDUP_BAR = 3.0
#: Gate: binary framing must cut the interest wire bytes to <= 0.8x of
#: the base64 line.  Deterministic; always asserted.
BYTES_RATIO_BUDGET = 0.8


def _matmul_request(req_id, a, b):
    return Request(
        id=req_id, workload="posit_matmul", tenant="bench", bits=8, es=2,
        a=a, b=b, rows=len(a),
    )


def _distinct_pairs(seed, count, size=10):
    rng = np.random.default_rng(seed)
    return [
        (rng.normal(size=(size, size)), rng.normal(size=(size, size)))
        for _ in range(count)
    ]


def _drive_inflight(client, requests, inflight):
    """Push ``requests`` through one client with ``inflight`` workers;
    returns (wall_s, responses)."""
    idx_lock = threading.Lock()
    cursor = iter(range(len(requests)))
    responses = [None] * len(requests)

    def worker():
        while True:
            with idx_lock:
                i = next(cursor, None)
            if i is None:
                return
            responses[i] = client.call(
                interest_frame(requests[i], budget_ms=120_000.0, binary=True),
                timeout_s=120.0,
            )

    threads = [threading.Thread(target=worker) for _ in range(inflight)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - t0, responses


@pytest.fixture(scope="module")
def measurement():
    m = {
        "workload": "posit_matmul (posit<8,2>, 128x128 operands)",
        "cpu_count": os.cpu_count(),
        "quick_mode": quick_mode(),
        "requests_per_arm": REQUESTS_PER_ARM,
    }

    # ------------------------------------------------------------------
    # 1. Pipelined vs serial throughput on one multiplexed connection
    # ------------------------------------------------------------------
    fab = FogFabric(
        nodes=1, replicas=1, heartbeat_ms=200.0, metrics=Metrics(),
        node_workers=16,
    )
    throughput = {}
    try:
        assert fab.wait_all_serving(timeout_s=30.0), "fabric never came up"
        client = fab.supervisor.client("n0")
        warm = _matmul_request("probe", np.zeros((2, 2)), np.zeros((2, 2)))
        client.call({"op": "advertise", "batch_key": list(warm.batch_key())})
        # One throwaway exec so the serial arm does not pay the node's
        # one-time posit table compilation.
        resp = client.call(
            interest_frame(warm, budget_ms=120_000.0, binary=True), timeout_s=120.0
        )
        assert resp["ok"]
        for arm, inflight in enumerate(INFLIGHT_LEVELS):
            # Big enough (~4 ms of posit compute each) that the arms
            # measure execution overlap, not Python thread overhead.
            pairs = _distinct_pairs(seed=100 + arm, count=REQUESTS_PER_ARM, size=128)
            requests = [
                _matmul_request(f"a{arm}r{i}", a, b)
                for i, (a, b) in enumerate(pairs)
            ]
            wall, responses = _drive_inflight(client, requests, inflight)
            for i, resp in enumerate(responses):
                assert resp is not None and resp["ok"], f"arm {inflight} call {i}"
                result = np.asarray(resp["result"])
                assert resp["digest"] == array_digest(result), (
                    f"arm {inflight} call {i}: digest mismatch"
                )
            throughput[inflight] = len(requests) / wall
        assert client.pending() == 0
    finally:
        fab.close()

    m["throughput_rps"] = {str(k): v for k, v in throughput.items()}
    m["pipelined_speedup_4"] = throughput[4] / throughput[1]
    m["pipelined_speedup_16"] = throughput[16] / throughput[1]
    m["speedup_bar"] = SPEEDUP_BAR
    m["bar_asserted"] = (os.cpu_count() or 1) >= 4

    # ------------------------------------------------------------------
    # 2. Bytes on the wire: binary framing vs base64-in-JSON
    # ------------------------------------------------------------------
    rng = np.random.default_rng(7)
    wire_req = _matmul_request(
        "wire", rng.normal(size=(16, 16)), rng.normal(size=(16, 16))
    )
    binary_bytes = len(pack_frame(interest_frame(wire_req, budget_ms=1e3, binary=True)))
    base64_bytes = len(encode_line(interest_frame(wire_req, budget_ms=1e3)))
    m["interest_bytes_binary"] = binary_bytes
    m["interest_bytes_base64"] = base64_bytes
    m["bytes_ratio"] = binary_bytes / base64_bytes
    m["bytes_ratio_budget"] = BYTES_RATIO_BUDGET

    # ------------------------------------------------------------------
    # 3. Zipfian load: collapse rate + hit rate on a 2-node fabric
    # ------------------------------------------------------------------
    pairs = _distinct_pairs(seed=3, count=ZIPF_NAMES, size=6)
    executor = EngineExecutor(metrics=Metrics())
    try:
        want = []
        for a, b in pairs:
            req = _matmul_request("ref", a, b)
            result = executor.execute(req.batch_key(), [req])[0]
            if isinstance(result, Exception):
                raise result
            want.append(np.asarray(result).tobytes())
    finally:
        executor.close()
    weights = 1.0 / np.arange(1, ZIPF_NAMES + 1)
    weights /= weights.sum()
    schedule = np.random.default_rng(42).choice(
        ZIPF_NAMES, size=ZIPF_SUBMISSIONS, p=weights
    )
    metrics = Metrics()
    fab = FogFabric(nodes=2, replicas=2, heartbeat_ms=100.0, metrics=metrics)
    wrong = [0]
    rejected = [0]
    try:
        assert fab.wait_all_serving(timeout_s=30.0)
        cursor = iter(range(len(schedule)))
        idx_lock = threading.Lock()

        def zipf_worker(tid):
            while True:
                with idx_lock:
                    i = next(cursor, None)
                if i is None:
                    return
                j = int(schedule[i])
                a, b = pairs[j]
                try:
                    got = fab.submit(_matmul_request(f"z{tid}s{i}", a, b))
                except (FogUnavailable, DeadlineExceeded):
                    with idx_lock:
                        rejected[0] += 1
                    continue
                if got.tobytes() != want[j]:
                    with idx_lock:
                        wrong[0] += 1

        threads = [
            threading.Thread(target=zipf_worker, args=(t,))
            for t in range(ZIPF_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = fab.stats()
    finally:
        fab.close()

    assert wrong[0] == 0, f"{wrong[0]} wrong answers under zipfian load"
    m["zipf_submissions"] = ZIPF_SUBMISSIONS
    m["zipf_names"] = ZIPF_NAMES
    m["zipf_threads"] = ZIPF_THREADS
    m["zipf_rejected"] = rejected[0]
    m["collapsed"] = stats["collapsed"]
    m["collapse_rate"] = stats["collapsed"] / ZIPF_SUBMISSIONS
    m["cache_hits"] = stats["cache_hits"]
    m["hit_rate"] = stats["cache_hits"] / max(1, stats["completed"])
    m["remote_execs"] = stats["remote_execs"]
    return m


def test_fog_dataplane(benchmark, measurement, report):
    m = measurement
    assert m["bytes_ratio"] <= BYTES_RATIO_BUDGET, (
        f"binary framing ships {m['bytes_ratio']:.2f}x of the base64 bytes "
        f"(budget {BYTES_RATIO_BUDGET}x)"
    )
    # Collapsing + caching must do real work under a concurrent zipfian
    # load: duplicates either collapse in flight or hit a content store.
    assert m["collapsed"] + m["cache_hits"] > 0, (
        "zipfian duplicates neither collapsed nor hit caches"
    )
    if m["bar_asserted"]:
        assert m["pipelined_speedup_16"] >= SPEEDUP_BAR, (
            f"16-deep pipelining only {m['pipelined_speedup_16']:.2f}x over "
            f"serial (bar {SPEEDUP_BAR}x on {m['cpu_count']} CPUs)"
        )

    # pytest-benchmark timing on the measured hot path: one pipelined
    # cache-hit interest over the multiplexed client.
    fab = FogFabric(nodes=1, replicas=1, metrics=Metrics())
    try:
        assert fab.wait_all_serving(timeout_s=30.0)
        client = fab.supervisor.client("n0")
        rng = np.random.default_rng(17)
        req = _matmul_request("hot", rng.normal(size=(6, 6)), rng.normal(size=(6, 6)))
        client.call({"op": "advertise", "batch_key": list(req.batch_key())})
        frame = interest_frame(req, budget_ms=60_000.0, binary=True)
        client.call(frame, timeout_s=60.0)  # warm the store
        benchmark(lambda: client.call(frame, timeout_s=60.0))
    finally:
        fab.close()

    report(
        "fog_dataplane",
        [
            f"workload       {m['workload']}",
            f"host           {m['cpu_count']} CPUs "
            f"(quick_mode={m['quick_mode']})",
            f"throughput     "
            + "  ".join(
                f"{k} in-flight: {v:.1f} req/s"
                for k, v in m["throughput_rps"].items()
            ),
            f"pipelining     x4: {m['pipelined_speedup_4']:.2f}x  "
            f"x16: {m['pipelined_speedup_16']:.2f}x "
            f"(bar >= {m['speedup_bar']}x, asserted={m['bar_asserted']})",
            f"wire bytes     binary {m['interest_bytes_binary']} vs "
            f"base64 {m['interest_bytes_base64']} "
            f"= {m['bytes_ratio']:.2f}x (budget <= {m['bytes_ratio_budget']}x)",
            f"zipfian        {m['zipf_submissions']} submissions over "
            f"{m['zipf_names']} names from {m['zipf_threads']} threads: "
            f"{m['collapsed']} collapsed ({m['collapse_rate']:.2f}), "
            f"hit rate {m['hit_rate']:.2f}, {m['remote_execs']} remote execs",
            "identity       OK (byte-exact vs direct engine, digests verified)",
        ],
    )
    (REPO_ROOT / "BENCH_fogperf.json").write_text(json.dumps(m, indent=2) + "\n")

"""Ablation: compressor library for bit-heap reduction.

Design choice probed: which generalized parallel counters the back-end may
use.  FA-only, FA+HA, and the full GPC library (6:3, (2,3), (1,4)) are
compared on stage count (6-LUT FPGAs love 6-input counters — Section II's
target-specific optimization) and LUT-equivalent area.
"""

import pytest

from repro.bitheap import (
    COMPRESSORS,
    FULL_ADDER,
    HALF_ADDER,
    compress_greedy,
    multiplier_heap,
)
from repro.bitheap.compressors import COUNTER_63


LIBRARIES = {
    "FA only": [FULL_ADDER],
    "FA+HA": [FULL_ADDER, HALF_ADDER],
    "full GPC": COMPRESSORS,
    "6:3 + FA/HA": [COUNTER_63, FULL_ADDER, HALF_ADDER],
}


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for w in (8, 16, 24):
        heap = multiplier_heap(w, w)
        entry = {"width": w, "bits": heap.total_bits(), "height": heap.max_height()}
        for name, lib in LIBRARIES.items():
            r = compress_greedy(heap, compressors=lib)
            assert r.final_heap.max_height() <= 2
            entry[name] = (r.stage_count, r.total_area())
        rows.append(entry)
    return rows


def test_ablation_compressors(benchmark, sweep, report):
    heap = multiplier_heap(12, 12)
    benchmark(lambda: compress_greedy(heap, compressors=COMPRESSORS))

    header = f"{'mult':>6} {'bits':>5} {'h':>3} |"
    for name in LIBRARIES:
        header += f" {name + ' (st/area)':>20}"
    lines = [header]
    for entry in sweep:
        line = f"{entry['width']:>4}x{entry['width']:<2} {entry['bits']:>4} {entry['height']:>3} |"
        for name in LIBRARIES:
            st_, area = entry[name]
            line += f" {f'{st_}/{area:.0f}':>20}"
        lines.append(line)
    lines.append("")
    lines.append("wide counters cut stages (compression depth); FA-dominated")
    lines.append("libraries minimize area under the LUT-equivalent cost model")
    report("ablation_compressors", lines)

    for entry in sweep:
        # Every library is value-preserving and reaches the target; the full
        # library never needs more stages than FA-only, and its advantage
        # grows with multiplier size (6 bits per counter vs 3).
        assert entry["full GPC"][0] <= entry["FA only"][0]
    assert sweep[-1]["full GPC"][0] < sweep[-1]["FA only"][0] / 2

"""Benchmark-regression gate: compare fresh BENCH_*.json against baselines.

The CI ``bench-regression`` job copies the checked-in ``BENCH_engine.json``
and ``BENCH_parallel.json`` aside, re-runs the two throughput benchmarks
(which overwrite those files), then invokes this script to compare the
fresh numbers against the baselines.

Absolute items/s are not comparable across machines, so the gate compares
the machine-normalized **speedup** ratios instead:

* ``BENCH_engine.json``: ``speedup`` = engine items/s over the scalar-model
  items/s measured in the same run — the 117x LUT-throughput win.  A drop
  of more than ``--max-regression`` (default 30%) fails the gate.
* ``BENCH_parallel.json``: ``speedup`` = parallel items/s over the
  single-process items/s.  Only enforced when the current run executed on
  a >= 4-CPU host (``bar_asserted`` in the fresh JSON, mirroring the
  benchmark's own gating) — process-pool overhead swamps the signal below
  that, exactly as the benchmark itself skips its assertion.
* ``BENCH_wide.json``: ``speedup`` = the *worst* wide-codec cell
  (posit32/binary32 x encode/decode/mul) over the scalar-object loop.
  Skipped when ``bar_asserted`` is false (REPRO_QUICK smoke runs, whose
  scalar sample is too small for a stable ratio).
* ``BENCH_fused.json``: ``speedup`` = best fused items/s (single-process
  plan or shared-memory workers) over the unfused PR 1 engine path in the
  same run.  Enforced only when ``bar_asserted`` is true (>= 4-CPU host),
  mirroring the benchmark's own >= 5x assertion gate.
* ``BENCH_fog.json``: ``hit_rate`` = cached replays over total submissions
  after repeated passes of a fixed working set.  Deterministic (seeded
  traffic, rendezvous routing), so it is always enforced — a drop means
  the fog's caching or routing changed behaviourally, not that the host
  was slow.
* ``BENCH_resilience.json``: ``availability`` = completed submissions over
  total while live fabric node processes are SIGKILLed mid-load.  Always
  enforced: graceful degradation makes the expected value ~1.0 regardless
  of host speed, so a drop means failure handling (supervision, breakers,
  degradation) regressed, not the machine.
* ``BENCH_fogperf.json``: ``pipelined_speedup_16`` = one multiplexed peer
  connection at 16 in-flight interests over strictly serial calls.
  Enforced only when ``bar_asserted`` is true (>= 4-CPU host) — on one
  core every arm is compute-bound and the ratio carries no signal.

Exit status 0 = within budget, 1 = regression (or unreadable inputs).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: (name, baseline filename, metric key, gate-condition key or None)
CHECKS = (
    ("engine", "BENCH_engine.json", "speedup", None),
    ("parallel", "BENCH_parallel.json", "speedup", "bar_asserted"),
    ("wide", "BENCH_wide.json", "speedup", "bar_asserted"),
    ("serve", "BENCH_serve.json", "efficiency", "bar_asserted"),
    ("fused", "BENCH_fused.json", "speedup", "bar_asserted"),
    ("fog", "BENCH_fog.json", "hit_rate", None),
    ("resilience", "BENCH_resilience.json", "availability", None),
    ("fogperf", "BENCH_fogperf.json", "pipelined_speedup_16", "bar_asserted"),
)


def compare(
    name: str,
    baseline: dict,
    current: dict,
    metric: str,
    max_regression: float,
    gate_key: str = None,
) -> tuple:
    """Returns ``(ok, message)`` for one benchmark comparison."""
    if gate_key is not None and not current.get(gate_key, False):
        return True, (
            f"{name}: skipped ({gate_key} is false in the current run — "
            f"host has {current.get('cpu_count', '?')} CPUs)"
        )
    base = float(baseline[metric])
    cur = float(current[metric])
    if base <= 0:
        return True, f"{name}: baseline {metric} <= 0, nothing to compare"
    ratio = cur / base
    floor = 1.0 - max_regression
    verdict = "OK" if ratio >= floor else "REGRESSION"
    msg = (
        f"{name}: {metric} {cur:.2f}x vs baseline {base:.2f}x "
        f"({ratio:.2%} of baseline, floor {floor:.0%}) — {verdict}"
    )
    return ratio >= floor, msg


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        required=True,
        help="directory holding the checked-in BENCH_*.json baselines",
    )
    parser.add_argument(
        "--current-dir",
        type=Path,
        default=REPO_ROOT,
        help="directory holding the freshly generated BENCH_*.json files",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="maximum allowed fractional throughput drop (default 0.30)",
    )
    args = parser.parse_args(argv)

    ok = True
    for name, filename, metric, gate_key in CHECKS:
        base_path = args.baseline_dir / filename
        cur_path = args.current_dir / filename
        if not base_path.exists():
            print(f"{name}: no baseline at {base_path}, skipping")
            continue
        if not cur_path.exists():
            print(f"{name}: current run produced no {cur_path} — FAIL")
            ok = False
            continue
        try:
            baseline = json.loads(base_path.read_text())
            current = json.loads(cur_path.read_text())
        except (OSError, ValueError) as err:
            print(f"{name}: unreadable input ({err}) — FAIL")
            ok = False
            continue
        good, msg = compare(name, baseline, current, metric, args.max_regression, gate_key)
        print(msg)
        ok = ok and good
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

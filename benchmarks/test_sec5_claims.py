"""Section V's remaining quantitative claims.

* a 16-bit posit converts to a 58-bit signed fixed-point value (the add
  datapath observation);
* 16-bit float dynamic range is ~6e-5 .. 7e4, with an effective
  multiply-safe range of only 1/256 .. 256;
* IEEE comparison needs 22 predicate variants with NaN special cases,
  posit comparison is the integer comparator (NaR == NaR, NaR < all);
* reciprocation is symmetric for posits (exact on the power-of-two ring
  positions);
* the posit hardware cost table (see also Fig. 8's benchmark).
"""

import math
from fractions import Fraction


from repro.circuits import gate_cost
from repro.floats import ALL_PREDICATES, BINARY16, FP8_E4M3, SoftFloat
from repro.floats.compare import relation
from repro.hwcost import build_float_comparator, build_integer_comparator
from repro.posit import POSIT16, Posit


def test_sec5_claims(benchmark, report):
    # --- 58-bit fixed-point conversion -----------------------------------
    def all_posits_fixed():
        worst = 0
        for pattern in range(0, 1 << 16, 9):
            p = Posit(POSIT16, pattern)
            if p.is_nar():
                continue
            scaled = p.to_fraction() * (1 << 28)
            assert scaled.denominator == 1
            worst = max(worst, abs(int(scaled)))
        return worst

    worst = benchmark(all_posits_fixed)
    bits_needed = worst.bit_length() + 1  # plus sign

    # --- float16 effective range ------------------------------------------
    min_normal, max_finite = BINARY16.min_normal, BINARY16.max_finite
    # Multiply-safe sub-range [1/r, r]: products of two values must neither
    # overflow nor vanish (subnormals count as representable), so
    # r^2 <= max_finite and r^-2 >= min_subnormal.
    r_overflow = math.sqrt(max_finite)
    r_underflow = 1 / math.sqrt(BINARY16.min_subnormal)
    r_safe = min(r_overflow, r_underflow)

    # --- comparison predicates ------------------------------------------
    nan = SoftFloat.nan(BINARY16)
    one = SoftFloat.from_float(BINARY16, 1.0)
    nar = Posit.nar(POSIT16)

    # --- reciprocal symmetry ----------------------------------------------
    recip_exact = all(
        Posit.from_float(POSIT16, 2.0**k).reciprocal().to_fraction() == Fraction(2) ** -k
        for k in range(-14, 15)
    )

    # --- comparison-unit circuits ----------------------------------------
    int_cmp = build_integer_comparator(8)
    float_cmp = build_float_comparator(FP8_E4M3)

    lines = [
        f"posit16 as fixed point: worst |value * 2^28| needs {bits_needed} bits "
        "(paper: 58-bit signed fixed point)",
        "",
        "comparison units (8-bit, both exhaustively verified):",
        f"  integer/posit comparator: {len(int_cmp.gates)} gates "
        f"(area {gate_cost(int_cmp):.0f})",
        f"  float relation unit:      {len(float_cmp.gates)} gates "
        f"(area {gate_cost(float_cmp):.0f})",
        "",
        f"binary16 range: {min_normal:.2e} .. {max_finite:.2e} "
        "(paper: about 6e-5 to 7e4)",
        f"multiply-safe sub-range: 1/{r_safe:.0f} .. {r_safe:.0f} "
        "(paper: 1/256 to a little less than 256)",
        "",
        f"IEEE comparison predicates implemented: {len(ALL_PREDICATES)} (paper: 22)",
        f"  NaN vs NaN quiet-equal: {ALL_PREDICATES['compareQuietEqual'](nan, nan)}",
        f"  posit NaR == NaR: {nar == nar};  NaR < 1.0: {nar < Posit.one(POSIT16)}",
        "",
        f"posit reciprocal exact on all powers of two 2^-14..2^14: {recip_exact}",
    ]
    report("sec5_claims", lines)

    assert bits_needed <= 58
    assert 5e-5 < min_normal < 7e-5 and 6e4 < max_finite < 7e4
    assert 255 < r_safe < 256
    assert len(ALL_PREDICATES) == 22
    assert not ALL_PREDICATES["compareQuietEqual"](nan, nan)
    assert relation(nan, one) == "un"
    assert nar == nar and nar < Posit.one(POSIT16)
    assert recip_exact
    # "Substantial circuit logic is needed for the comparison of two floats"
    # while posits reuse the integer comparator unchanged.
    assert gate_cost(float_cmp) > 1.5 * gate_cost(int_cmp)

"""Load benchmark for the serving layer: concurrent clients, real sockets.

Simulated edge clients hammer a live :class:`repro.serve.ReproServer` over
TCP and measure what a deployment would: client-observed p50/p99 latency,
sustained QPS, and the rejection rate under deliberate overload.  A chaos
segment then repeats the load against a crash-injected worker pool and
asserts the zero-drop ledger (every accepted request answered).

The regression-gated metric is ``efficiency`` — served QPS divided by the
QPS of the same samples run *sequentially, solo* through the quantized
network in-process.  That normalizes away host speed (both sides run on
the same machine in the same process group) and measures exactly what the
serving layer adds: batching amortization minus protocol/asyncio
overhead.  Results go to ``BENCH_serve.json`` at the repo root, gated by
``check_regression.py``.
"""

import asyncio
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.engine import ChaosPlan
from repro.engine.observe import Metrics
from repro.nn.posit_inference import PositQuantizedNetwork
from repro.nn.zoo import kws_cnn1
from repro.posit import STD_POSIT8
from repro.serve import ReproServer, ServeClient, ServeConfig

from conftest import quick_mode

REPO_ROOT = Path(__file__).resolve().parent.parent

CLIENTS = 16
PER_CLIENT = 4 if quick_mode() else 12
MULTI_CORE = (os.cpu_count() or 1) >= 4
#: Gate: batching must recover at least half of direct sequential QPS
#: (asserted on multi-core hosts; single-core boxes record it unasserted).
EFFICIENCY_BAR = 0.5


def _percentile(values, q):
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


async def _client_run(address, samples, latencies, deadline_ms=None):
    """One simulated edge device: pipeline its samples, record latencies."""
    client = await ServeClient.connect(*address)
    responses = []
    try:
        for x in samples:
            payload = dict(workload="nn_predict", model="kws1", x=x.tolist())
            if deadline_ms is not None:
                payload["deadline_ms"] = deadline_ms
            t0 = time.perf_counter()
            resp = await client.request(timeout=120.0, **payload)
            latencies.append((time.perf_counter() - t0) * 1e3)
            responses.append(resp)
    finally:
        await client.close()
    return responses


async def _serve_load(config, samples_per_client, deadline_ms=None, metrics=None):
    """Run the full client fleet against one server; returns measurements."""
    metrics = metrics if metrics is not None else Metrics()
    latencies = []
    async with ReproServer(config, metrics=metrics) as server:
        t0 = time.perf_counter()
        replies = await asyncio.gather(
            *[
                _client_run(server.address, samples, latencies, deadline_ms)
                for samples in samples_per_client
            ]
        )
        wall = time.perf_counter() - t0
        stats = server.describe()
    flat = [r for shard in replies for r in shard]
    return {
        "responses": flat,
        "latencies_ms": latencies,
        "wall_s": wall,
        "server": stats,
    }


@pytest.fixture(scope="module")
def measurement():
    rng = np.random.default_rng(20260808)
    total = CLIENTS * PER_CLIENT
    samples = rng.normal(size=(total, 1, 31, 20))
    shards = [samples[i::CLIENTS] for i in range(CLIENTS)]

    # ------------------------------------------------------------------
    # Direct baseline: the same samples, sequential solo forwards — what
    # an edge client doing local inference (no batching) would get.
    # ------------------------------------------------------------------
    qnet = PositQuantizedNetwork(kws_cnn1(seed=0), STD_POSIT8, stable_contractions=True)
    qnet.forward(samples[0:1])  # warm the kernel tables
    t0 = time.perf_counter()
    for i in range(total):
        qnet.forward(samples[i : i + 1])
    direct_wall = time.perf_counter() - t0
    direct_qps = total / direct_wall

    # ------------------------------------------------------------------
    # Served load: 16 concurrent clients against one in-process server.
    # ------------------------------------------------------------------
    config = ServeConfig(
        max_batch=16, max_delay_ms=2.0, queue_limit=256,
        default_deadline_ms=120_000.0,
    )
    load = asyncio.run(_serve_load(config, shards))
    assert all(r["ok"] for r in load["responses"])
    assert load["server"]["accepted"] == load["server"]["responded"] == total
    served_qps = total / load["wall_s"]
    coalesced = max(r["batch_rows"] for r in load["responses"])

    # ------------------------------------------------------------------
    # Overload segment: a tiny queue forces backpressure; the rejection
    # rate is the fraction turned away with retry_after instead of queued
    # into unbounded latency.
    # ------------------------------------------------------------------
    overload_cfg = ServeConfig(
        max_batch=4, max_delay_ms=5.0, queue_limit=4,
        default_deadline_ms=120_000.0,
    )
    overload = asyncio.run(_serve_load(overload_cfg, shards))
    rejected = sum(
        1
        for r in overload["responses"]
        if not r["ok"] and r["error"] == "rejected"
    )
    answered = len(overload["responses"])
    assert answered == total, "backpressure must answer, never drop"

    # ------------------------------------------------------------------
    # Chaos segment: crash-injected worker pool, zero-drop ledger.
    # ------------------------------------------------------------------
    chaos_cfg = ServeConfig(
        max_batch=16, max_delay_ms=2.0, queue_limit=256, workers=2,
        chaos=ChaosPlan(seed=2, crash_rate=0.35),
        default_deadline_ms=120_000.0,
    )
    chaos_shards = [s[: max(2, PER_CLIENT // 2)] for s in shards]
    chaos_total = sum(len(s) for s in chaos_shards)
    chaos = asyncio.run(_serve_load(chaos_cfg, chaos_shards))
    chaos_ok = sum(1 for r in chaos["responses"] if r["ok"])
    assert chaos["server"]["accepted"] == chaos["server"]["responded"]
    assert len(chaos["responses"]) == chaos_total
    assert chaos_ok == chaos_total, "chaos degraded requests must still succeed"

    return {
        "workload": "nn_predict/kws1",
        "format": str(STD_POSIT8),
        "clients": CLIENTS,
        "requests": total,
        "cpu_count": os.cpu_count(),
        "quick_mode": quick_mode(),
        "p50_ms": _percentile(load["latencies_ms"], 50),
        "p99_ms": _percentile(load["latencies_ms"], 99),
        "sustained_qps": served_qps,
        "direct_qps": direct_qps,
        "efficiency": served_qps / direct_qps,
        "efficiency_bar": EFFICIENCY_BAR,
        "bar_asserted": MULTI_CORE,
        "max_batch_rows_seen": coalesced,
        "batches": load["server"]["batcher"]["batches"],
        "rejection_rate": rejected / answered,
        "overload": {
            "queue_limit": overload_cfg.queue_limit,
            "requests": answered,
            "rejected": rejected,
            "p99_ms": _percentile(overload["latencies_ms"], 99),
        },
        "chaos": {
            "workers": 2,
            "crash_rate": 0.35,
            "requests": chaos_total,
            "ok": chaos_ok,
            "accepted": chaos["server"]["accepted"],
            "responded": chaos["server"]["responded"],
            "dropped": chaos["server"]["accepted"] - chaos["server"]["responded"],
            "p99_ms": _percentile(chaos["latencies_ms"], 99),
        },
    }


def test_serve_load(benchmark, measurement, report):
    m = measurement
    if m["bar_asserted"]:
        assert m["efficiency"] >= EFFICIENCY_BAR, (
            f"serving efficiency {m['efficiency']:.2f} below bar {EFFICIENCY_BAR}"
        )
    assert m["chaos"]["dropped"] == 0

    # pytest-benchmark timing on the hot serving kernel (one coalesced
    # forward), stable on any host; the socket numbers come from the
    # module-scope measurement.
    qnet = PositQuantizedNetwork(kws_cnn1(seed=0), STD_POSIT8, stable_contractions=True)
    rng = np.random.default_rng(7)
    batch = rng.normal(size=(16, 1, 31, 20))
    qnet.forward(batch[:1])
    benchmark(lambda: qnet.forward(batch))

    bar_note = (
        "asserted" if m["bar_asserted"] else f"not asserted ({m['cpu_count']} CPU host)"
    )
    report(
        "serve_load",
        [
            f"workload       {m['workload']} ({m['format']})",
            f"clients        {m['clients']} concurrent, {m['requests']} requests",
            f"p50 / p99      {m['p50_ms']:8.2f} / {m['p99_ms']:8.2f} ms",
            f"sustained      {m['sustained_qps']:10.2f} req/s served",
            f"direct solo    {m['direct_qps']:10.2f} req/s sequential",
            f"efficiency     {m['efficiency']:10.2f}x  (bar >= {EFFICIENCY_BAR}x, {bar_note})",
            f"coalescing     up to {m['max_batch_rows_seen']} rows/batch over {m['batches']} batches",
            f"overload       {m['overload']['rejected']}/{m['overload']['requests']} rejected "
            f"(queue_limit {m['overload']['queue_limit']})",
            f"chaos          {m['chaos']['ok']}/{m['chaos']['requests']} ok, "
            f"{m['chaos']['dropped']} dropped (crash_rate {m['chaos']['crash_rate']})",
        ],
    )
    (REPO_ROOT / "BENCH_serve.json").write_text(json.dumps(m, indent=2) + "\n")

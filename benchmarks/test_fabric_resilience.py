"""Fabric benchmark: availability and latency under process-kill churn.

Measures what the cross-process fabric claims to buy an edge deployment:
**availability under real failures**.  A 3-node fabric serves a fixed
working set of named computations while live node processes are
periodically SIGKILLed; every completed answer is byte-checked against
the direct engine, every failure must surface as a typed rejection, and
the supervisor must restore full capability afterwards.

The regression-gated metric is ``availability`` — the fraction of
submissions that completed (gate: >= 0.95).  Graceful degradation is the
mechanism: when a kill leaves a capability briefly ownerless, the fabric
serves it locally (counted, byte-identical) rather than failing it.

Results go to ``BENCH_resilience.json`` at the repo root, gated by
``check_regression.py``.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.engine.observe import Metrics
from repro.fog import FogFabric, FogUnavailable
from repro.serve.executor import DeadlineExceeded, EngineExecutor
from repro.serve.protocol import Request

from conftest import quick_mode

REPO_ROOT = Path(__file__).resolve().parent.parent

STEPS = 6 if quick_mode() else 12
KILL_EVERY = 3  # SIGKILL a live node at every 3rd step
WORKING_SET = 4 if quick_mode() else 6
NODES = 3
REPLICAS = 2
#: Gate: at least 95% of submissions under kill churn must complete.
AVAILABILITY_BAR = 0.95


def _matmul_request(req_id, a, b):
    return Request(
        id=req_id, workload="posit_matmul", tenant="bench", bits=8, es=2,
        a=a, b=b, rows=len(a),
    )


def _working_set(seed, count=WORKING_SET):
    rng = np.random.default_rng(seed)
    pairs = [(rng.normal(size=(4, 6)), rng.normal(size=(6, 3))) for _ in range(count)]
    executor = EngineExecutor(metrics=Metrics())
    try:
        want = []
        for a, b in pairs:
            req = _matmul_request("ref", a, b)
            result = executor.execute(req.batch_key(), [req])[0]
            if isinstance(result, Exception):
                raise result
            want.append(np.asarray(result).tobytes())
    finally:
        executor.close()
    return pairs, want


@pytest.fixture(scope="module")
def measurement():
    pairs, want = _working_set(seed=20260808)
    metrics = Metrics()
    fab = FogFabric(
        nodes=NODES, replicas=REPLICAS, heartbeat_ms=40.0, miss_budget=2,
        retry_backoff_base_ms=5.0, restart_backoff_base_s=0.02,
        metrics=metrics,
    )
    completed = rejected = wrong = kills = 0
    latencies_ms = []
    try:
        assert fab.wait_all_serving(timeout_s=30.0), "fabric never came up"
        t_load = time.perf_counter()
        for step in range(STEPS):
            if step % KILL_EVERY == KILL_EVERY - 1:
                serving = fab.supervisor.serving_names()
                if len(serving) > 1 and fab.kill(serving[step % len(serving)]):
                    kills += 1
            for j, (a, b) in enumerate(pairs):
                t0 = time.perf_counter()
                try:
                    got = fab.submit(_matmul_request(f"s{step}j{j}", a, b))
                except (FogUnavailable, DeadlineExceeded):
                    rejected += 1
                    continue
                latencies_ms.append((time.perf_counter() - t0) * 1e3)
                completed += 1
                if got.tobytes() != want[j]:
                    wrong += 1
        load_wall_s = time.perf_counter() - t_load

        # Recovery: how long until the supervisor restores every node.
        t0 = time.perf_counter()
        recovered = fab.wait_all_serving(timeout_s=60.0)
        recovery_s = time.perf_counter() - t0
        stats = fab.stats()
    finally:
        fab.close()

    total = STEPS * len(pairs)
    assert wrong == 0, f"{wrong} wrong answers under kill churn"
    assert completed + rejected == total, "silent drop"
    assert kills >= 1, "the kill schedule never fired"
    assert recovered, "supervisor failed to restore full capability"
    availability = completed / total

    lat = np.asarray(latencies_ms)
    return {
        "workload": "posit_matmul (posit<8,2>, stable contractions)",
        "nodes": NODES,
        "replicas": REPLICAS,
        "working_set": len(pairs),
        "steps": STEPS,
        "requests": total,
        "cpu_count": os.cpu_count(),
        "quick_mode": quick_mode(),
        "availability": availability,
        "availability_bar": AVAILABILITY_BAR,
        "bar_asserted": True,
        "completed": completed,
        "rejected": rejected,
        "wrong": wrong,
        "kills": kills,
        "restarts": int(metrics.counters.get("fabric.restarts", 0)),
        "warm_carries": int(metrics.counters.get("fabric.warm_carries", 0)),
        "degraded_local": stats["degraded_local"],
        "cache_hits": stats["cache_hits"],
        "remote_execs": stats["remote_execs"],
        "retries": stats["retries"],
        "p50_ms": float(np.percentile(lat, 50)),
        "p99_ms": float(np.percentile(lat, 99)),
        "max_ms": float(lat.max()),
        "load_wall_s": load_wall_s,
        "recovery_s": recovery_s,
    }


def test_fabric_resilience(benchmark, measurement, report):
    m = measurement
    assert m["wrong"] == 0
    assert m["availability"] >= AVAILABILITY_BAR, (
        f"fabric availability {m['availability']:.3f} below bar "
        f"{AVAILABILITY_BAR} under kill churn"
    )
    assert m["kills"] >= 1 and m["restarts"] >= 1

    # pytest-benchmark timing on the hot fabric path: one cached
    # submission crossing the process boundary (name + interest + replay).
    pairs, _ = _working_set(seed=7, count=1)
    metrics = Metrics()
    fab = FogFabric(nodes=2, replicas=2, metrics=metrics)
    try:
        assert fab.wait_all_serving(timeout_s=30.0)
        a, b = pairs[0]
        fab.submit(_matmul_request("warm", a, b))
        benchmark(lambda: fab.submit(_matmul_request("hot", a, b)))
    finally:
        fab.close()

    report(
        "fabric_resilience",
        [
            f"workload       {m['workload']}",
            f"fabric         {m['nodes']} node processes, replicas={m['replicas']}",
            f"load           {m['working_set']} names x {m['steps']} steps "
            f"= {m['requests']} submissions, {m['kills']} SIGKILLs",
            f"availability   {m['availability']:.3f} "
            f"(bar >= {m['availability_bar']}; {m['completed']} completed, "
            f"{m['rejected']} rejected, {m['wrong']} wrong)",
            f"latency        p50 {m['p50_ms']:.1f} ms  p99 {m['p99_ms']:.1f} ms  "
            f"max {m['max_ms']:.1f} ms",
            f"recovery       {m['restarts']} restarts, "
            f"{m['warm_carries']} warm carries, all serving again in "
            f"{m['recovery_s']:.2f}s after load",
            f"degradation    {m['degraded_local']} local executions "
            f"(counted, byte-identical), {m['cache_hits']} cache hits, "
            f"{m['retries']} retries",
            f"identity       OK (byte-exact vs direct engine)",
        ],
    )
    (REPO_ROOT / "BENCH_resilience.json").write_text(json.dumps(m, indent=2) + "\n")

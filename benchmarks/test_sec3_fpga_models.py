"""Section III claims: DSP decomposition, soft-logic TFLOPs, packing rates.

Numbers reproduced: the Agilex-class device delivers ~25 TFLOPs from its
DSP blocks in the half-precision modes (2 lanes x mul+add x 750 MHz x
~9000 DSPs); low-precision soft logic adds 100+ TFLOPs; typical soft
arithmetic packs 60-70% vs ~80% for random logic; the Brainwave-style
80/20 datapath/control split reaches ~92-94%; the fractal packer's seeded
search improves on a single first-fit pass.
"""

import pytest

from repro.fpga import (
    AGILEX_MODES,
    BRAINWAVE,
    RANDOM_LOGIC,
    TYPICAL_SOFT_ARITHMETIC,
    CarrySegment,
    DSPBlock,
    agilex_device,
    fractal_pack,
    pack_segments,
)
from repro.floats import BINARY16, SoftFloat


@pytest.fixture(scope="module")
def packing_runs():
    segments = [CarrySegment(f"m{i}", 3 + (i * 5) % 11) for i in range(60)]
    first = pack_segments(segments, 16, 34, seed=0)
    best = fractal_pack(segments, 16, 34, seeds=48)
    return first, best


def test_sec3_fpga_models(benchmark, packing_runs, report):
    dev = agilex_device()
    first, best = packing_runs

    segments = [CarrySegment(f"m{i}", 3 + (i * 5) % 11) for i in range(60)]
    benchmark(lambda: pack_segments(segments, 16, 34, seed=1))

    # Behavioural DSP check: the decomposed mode really computes fp16.
    block = DSPBlock(AGILEX_MODES["fp16"])
    a = SoftFloat.from_float(BINARY16, 1.5).pattern
    b = SoftFloat.from_float(BINARY16, -2.0).pattern
    c = SoftFloat.from_float(BINARY16, 0.5).pattern
    lanes = block.multiply_add([a, a], [b, b], [c, c])
    lane_value = SoftFloat(BINARY16, lanes[0]).to_float()

    lines = ["DSP-block peak throughput (8960 DSPs @ 750 MHz):"]
    for name, mode in AGILEX_MODES.items():
        lines.append(f"  {name:<9} {mode.lanes} lane(s) -> {dev.peak_tflops(mode):5.1f} TFLOPs")
    lines.append(f"  behavioural fp16 lane check: 1.5 * -2.0 + 0.5 = {lane_value}")
    lines.append("")
    lines.append(
        f"soft-logic estimate: {dev.soft_logic_tflops(900_000, 10, 600e6):.0f} TFLOPs "
        "(900k ALMs, ~10 ALMs/op, 600 MHz)"
    )
    lines.append("")
    lines.append("logic utilization models:")
    for model in (TYPICAL_SOFT_ARITHMETIC, RANDOM_LOGIC, BRAINWAVE):
        lines.append(f"  {model.name:<24} {model.overall_packing():.1%}")
    lines.append("")
    lines.append(
        f"fractal packing: seed 0 -> {first.splits} splits, util {first.utilization:.1%}; "
        f"best of 48 seeds -> {best.splits} splits, util {best.utilization:.1%}"
    )
    report("sec3_fpga_models", lines)

    assert 25.0 <= dev.peak_tflops(AGILEX_MODES["fp16"]) <= 28.0
    assert lane_value == -2.5
    assert dev.soft_logic_tflops(900_000, 10, 600e6) >= 100.0
    assert 0.60 <= TYPICAL_SOFT_ARITHMETIC.overall_packing() <= 0.70
    assert RANDOM_LOGIC.overall_packing() == pytest.approx(0.80)
    assert 0.92 <= BRAINWAVE.overall_packing() <= 0.94
    assert best.metric() <= first.metric()

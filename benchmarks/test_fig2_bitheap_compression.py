"""Fig. 2: bit-heap-centric operator generation.

The figure's architecture separates the *description* of a summation (the
bit heap) from target-optimized compression.  The reproduction compresses
multiplier and squarer heaps with two back-ends — classic FA/HA greedy and
the ILP-flavoured heuristic over a GPC library (the [12] improvement) — and
shows the heap abstraction serving several different operators.
"""

import pytest

from repro.bitheap import (
    FULL_ADDER,
    HALF_ADDER,
    build_bitheap_multiplier,
    compress_greedy,
    compress_heuristic,
    multiplier_heap,
    squarer_heap,
)
from repro.circuits import gate_cost


@pytest.fixture(scope="module")
def comparisons():
    rows = []
    for name, heap in [
        ("mul 8x8", multiplier_heap(8, 8)),
        ("mul 12x12", multiplier_heap(12, 12)),
        ("mul 16x16", multiplier_heap(16, 16)),
        ("square 8", squarer_heap(8)),
        ("square 12", squarer_heap(12)),
    ]:
        base = compress_greedy(heap, compressors=[FULL_ADDER, HALF_ADDER])
        best = compress_heuristic(heap)
        rows.append((name, heap, base, best))
    return rows


def test_fig2_bitheap_compression(benchmark, comparisons, report):
    benchmark(lambda: compress_greedy(multiplier_heap(12, 12)))

    lines = [
        f"{'operator':<10} {'bits':>5} {'height':>6} | {'FA/HA area':>10} {'stages':>6} | "
        f"{'GPC area':>8} {'stages':>6} {'saving':>7}"
    ]
    for name, heap, base, best in comparisons:
        saving = 1 - best.total_area() / base.total_area()
        lines.append(
            f"{name:<10} {heap.total_bits():>5} {heap.max_height():>6} | "
            f"{base.total_area():>10.1f} {base.stage_count:>6} | "
            f"{best.total_area():>8.1f} {best.stage_count:>6} {saving:>6.1%}"
        )
    # Close the loop: synthesize one multiplier to real gates and verify.
    circ = build_bitheap_multiplier(6, 6)
    mismatches = sum(
        1
        for x in range(64)
        for y in range(0, 64, 3)
        if circ.evaluate_buses(a=x, b=y)["p"] != x * y
    )
    lines.append("")
    lines.append(
        f"synthesized 6x6 multiplier from the heap: {len(circ.gates)} gates "
        f"(area {gate_cost(circ):.0f}), verification mismatches: {mismatches}"
    )
    lines.append("")
    lines.append("same heap abstraction drives multipliers and squarers (Fig. 2's")
    lines.append("decoupling); back-ends are interchangeable and value-preserving.")
    lines.append("The GPC library matches FA/HA area (FA is already ratio-optimal")
    lines.append("under this cost model) while cutting compression stages sharply —")
    lines.append("the depth advantage 6-LUT counters buy on FPGAs (Sec. II).")
    report("fig2_bitheap_compression", lines)

    for name, heap, base, best in comparisons:
        assert base.final_heap.max_height() <= 2
        assert best.final_heap.max_height() <= 2
        # The pluggable back-ends stay within a small area band of each
        # other, and the GPC library never needs more stages.
        assert best.total_area() <= base.total_area() * 1.15
        assert best.stage_count <= base.stage_count
    # The stage advantage grows with size (16x16: 15 stages -> ~6).
    big_base, big_best = comparisons[2][2], comparisons[2][3]
    assert big_best.stage_count <= big_base.stage_count / 2

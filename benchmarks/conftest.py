"""Shared benchmark infrastructure.

Every benchmark regenerates one table or figure of the paper and writes the
reproduced rows/series to ``benchmarks/results/<name>.txt`` (and prints them
when run with ``-s``), alongside the timing numbers pytest-benchmark
collects.
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir, request):
    """Write (and echo) a reproduction report for the current benchmark."""

    def _write(name: str, lines):
        text = "\n".join(lines if not isinstance(lines, str) else [lines])
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n--- {name} ---")
        print(text)
        return path

    return _write


def quick_mode() -> bool:
    """REPRO_QUICK=1 shrinks the heavy Fig. 5 sweep for smoke runs."""
    return os.environ.get("REPRO_QUICK", "0") == "1"

"""Shared benchmark infrastructure.

Every benchmark regenerates one table or figure of the paper and writes the
reproduced rows/series to ``benchmarks/results/<name>.txt`` (and prints them
when run with ``-s``), alongside the timing numbers pytest-benchmark
collects.

``--trace-out=PATH`` enables the engine's tracer for the whole benchmark
session and exports the buffered span events as JSONL when it ends, so any
``BENCH_*.json`` run can ship a flame-ready trace of where the time went.
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--trace-out",
        action="store",
        default=None,
        metavar="PATH",
        help="enable engine tracing and export span events as JSONL to PATH",
    )


@pytest.fixture(scope="session", autouse=True)
def _engine_trace(request):
    """Session-wide tracer lifecycle behind the ``--trace-out`` knob."""
    path = request.config.getoption("--trace-out")
    if not path:
        yield
        return
    from repro.engine import enable_tracing, get_tracer

    tracer = enable_tracing()
    yield
    n = tracer.export_jsonl(path)
    print(f"\n--trace-out: wrote {n} span events to {path}")
    get_tracer().enabled = False


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir, request):
    """Write (and echo) a reproduction report for the current benchmark."""

    def _write(name: str, lines):
        text = "\n".join(lines if not isinstance(lines, str) else [lines])
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n--- {name} ---")
        print(text)
        return path

    return _write


def quick_mode() -> bool:
    """REPRO_QUICK=1 shrinks the heavy Fig. 5 sweep for smoke runs."""
    return os.environ.get("REPRO_QUICK", "0") == "1"


try:
    import pytest_benchmark  # noqa: F401
except ImportError:
    # Without pytest-benchmark the ``benchmark`` fixture below stands in:
    # it runs the workload once (so correctness asserts still execute) and
    # skips the statistics.  The BENCH_*.json numbers every benchmark file
    # writes come from its own wall-clock measurements, not this fixture,
    # so CI can gate regressions without installing the plugin.
    @pytest.fixture
    def benchmark():
        def _run(fn, *args, **kwargs):
            return fn(*args, **kwargs)

        return _run

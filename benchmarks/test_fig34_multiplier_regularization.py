"""Figs. 3-4: 3x3 soft-multiplier regularization.

Fig. 3 is the unbalanced pencil-and-paper partial-product array; Fig. 4 the
regularized two-level form with auxiliary functions that maps to "a single
3 ALM carry chain, with a single out of band ALM ... 6 independent inputs
over the 4 ALMs".  The reproduction checks bit-exact equivalence over all
64 operand pairs and reports both mappings' statistics.
"""

import pytest

from repro.bitheap import partial_product_table
from repro.fpga import naive_mapping_stats, regularize_3x3


@pytest.fixture(scope="module")
def mappings():
    return regularize_3x3(), naive_mapping_stats()


def test_fig34_multiplier_regularization(benchmark, mappings, report):
    mul, naive = mappings

    benchmark(lambda: [mul.multiply(a, b) for a in range(8) for b in range(8)])

    mismatches = [(a, b) for a in range(8) for b in range(8) if mul.multiply(a, b) != a * b]
    stats = mul.stats()

    lines = ["Fig. 3 partial products by column:"]
    for col, pps in partial_product_table(3, 3).items():
        lines.append(f"  col {col}: {', '.join(pps)}")
    lines.append("")
    lines.append(f"{'mapping':<22} {'rows':>4} {'max col':>8} {'col inputs':>11} {'ALMs':>5}")
    for s in (naive, stats):
        lines.append(
            f"{s.name:<22} {s.rows:>4} {s.max_column_height:>8} "
            f"{f'{s.min_column_inputs}..{s.max_column_inputs}':>11} {s.total_alms:>5}"
        )
    lines.append("")
    lines.append(f"exhaustive equivalence (64 cases): {'PASS' if not mismatches else mismatches}")
    lines.append(
        f"regularized: {stats.chain_alms}-ALM chain + {stats.out_of_band_alms} "
        f"out-of-band ALM, {stats.independent_inputs} independent inputs"
    )
    report("fig34_multiplier_regularization", lines)

    assert not mismatches
    assert naive.max_column_height == 3 and naive.max_column_inputs == 6
    assert stats.rows == 2 and stats.balanced
    assert stats.chain_alms == 3 and stats.out_of_band_alms == 1

"""Fault resilience: DNN accuracy vs activation bit-flip rate per format.

The Table-II-style robustness comparison the fault layer exists for: a
trained float classifier runs with its activations round-tripped through
each format's codec while :class:`repro.engine.faults.FaultPlan` flips one
random bit per hit code (``activation_rate`` per element, seeded and
deterministic).  Sweeping the rate for posit8, FP8 (E4M3) and binary16
measures how much classification accuracy each number format loses to the
same soft-error pressure — narrow formats concentrate meaning in fewer
bits, so a single flip costs them more, while posit tapering changes
*which* magnitudes are fragile.

Results go to ``BENCH_faults.json`` at the repo root and
``benchmarks/results/fault_resilience.txt``.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.datasets import synthetic_images
from repro.engine import FaultPlan, FormatFaultModel, PositBackend, SoftFloatBackend
from repro.floats import BINARY16, FP8_E4M3
from repro.nn.train import evaluate_accuracy, train
from repro.nn.zoo import resnet_mini
from repro.posit import POSIT8

REPO_ROOT = Path(__file__).resolve().parent.parent
QUICK = os.environ.get("REPRO_QUICK") == "1"

SEED = 0
FLIP_RATES = [0.0, 1e-3, 1e-2, 5e-2]
N_PER_CLASS = 6 if QUICK else 24
EPOCHS = 2 if QUICK else 10


def _backends():
    return {
        "posit8": PositBackend(POSIT8, strategy="via-float"),
        "fp8_e4m3": SoftFloatBackend(FP8_E4M3, strategy="via-float"),
        "binary16": SoftFloatBackend(BINARY16, strategy="via-float"),
    }


@pytest.fixture(scope="module")
def measurement():
    x, y = synthetic_images(2 * N_PER_CLASS, classes=10, size=16, seed=SEED)
    n_train = 10 * N_PER_CLASS
    rng = np.random.default_rng(SEED)
    order = rng.permutation(len(x))
    xtr, ytr = x[order[:n_train]], y[order[:n_train]]
    xte, yte = x[order[n_train:]], y[order[n_train:]]

    net = resnet_mini(seed=SEED)
    train(net, xtr, ytr, epochs=EPOCHS, batch=32, seed=SEED)
    float_acc = evaluate_accuracy(net.forward, xte, yte)

    formats = {}
    for name, backend in _backends().items():
        accs = {}
        for rate in FLIP_RATES:
            plan = FaultPlan(seed=SEED, activation_rate=rate)
            model = FormatFaultModel(net, backend, plan)
            accs[str(rate)] = evaluate_accuracy(model.forward, xte, yte)
        formats[name] = accs

    return {
        "model": "resnet-mini",
        "dataset": f"synthetic-images ({n_train} train / {len(xte)} test)",
        "seed": SEED,
        "flip_rates": FLIP_RATES,
        "float_accuracy": float_acc,
        "formats": formats,
        "quick": QUICK,
    }


def test_fault_resilience_table(measurement, report):
    m = measurement
    header = "format     " + "".join(f"  rate={r:<8g}" for r in m["flip_rates"])
    lines = [
        f"model        {m['model']}  ({m['dataset']})",
        f"float acc    {m['float_accuracy']:.3f}",
        header,
    ]
    for name, accs in m["formats"].items():
        row = "".join(f"  {accs[str(r)]:<13.3f}" for r in m["flip_rates"])
        lines.append(f"{name:<11}{row}")
    report("fault_resilience", lines)
    (REPO_ROOT / "BENCH_faults.json").write_text(json.dumps(m, indent=2) + "\n")

    chance = 0.1
    for name, accs in m["formats"].items():
        fault_free = accs[str(FLIP_RATES[0])]
        # Fault-free quantized inference must track the float baseline...
        assert fault_free >= m["float_accuracy"] - 0.25, (name, fault_free)
        # ...and injected flips may degrade accuracy but never "improve"
        # it beyond noise, nor drive it meaningfully below chance.
        worst = min(accs.values())
        assert worst >= chance - 0.05, (name, worst)
        assert accs[str(FLIP_RATES[-1])] <= fault_free + 0.15, (name, accs)


def test_fault_injection_is_deterministic(measurement):
    """The whole table is reproducible: same plan, same accuracy, bit for bit."""
    backend = _backends()["posit8"]
    x, y = synthetic_images(2, classes=10, size=16, seed=SEED + 1)
    net = resnet_mini(seed=SEED)
    plan = FaultPlan(seed=SEED, activation_rate=0.01)
    y1 = FormatFaultModel(net, backend, plan).forward(x)
    y2 = FormatFaultModel(net, backend, plan).forward(x)
    assert np.array_equal(y1, y2, equal_nan=True)

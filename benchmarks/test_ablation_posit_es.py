"""Ablation: the posit exponent-size parameter ``es``.

Design choice probed: the paper-era posit16 uses es = 1.  Sweeping es for
16-bit posits shows the trade: smaller es -> taller accuracy peak but
narrower dynamic range; larger es -> flatter triangle covering more
decades.  (The 2022 standard later settled on es = 2 everywhere.)
"""

from fractions import Fraction

import pytest

from repro.analysis import decimal_accuracy_posit, dynamic_range_decades
from repro.posit import PositFormat


@pytest.fixture(scope="module")
def sweep():
    rows = []
    probe = Fraction(10007, 9973)
    for es in (0, 1, 2, 3):
        fmt = PositFormat(16, es)
        peak = decimal_accuracy_posit(fmt, probe)
        at_1e3 = decimal_accuracy_posit(fmt, probe * 1000)
        at_1e6 = decimal_accuracy_posit(fmt, probe * 10**6)
        rows.append((es, fmt, peak, at_1e3, at_1e6, dynamic_range_decades(fmt)))
    return rows


def test_ablation_posit_es(benchmark, sweep, report):
    fmt = PositFormat(16, 1)
    probe = Fraction(10007, 9973)
    benchmark(
        lambda: [decimal_accuracy_posit(fmt, probe * Fraction(10) ** k) for k in range(-6, 7)]
    )

    lines = [
        f"{'es':>3} {'useed':>6} {'peak acc':>9} {'acc@1e3':>8} {'acc@1e6':>8} {'decades':>8}"
    ]
    for es, fmt, peak, a3, a6, decades in sweep:
        lines.append(
            f"{es:>3} {fmt.useed:>6} {peak:>9.2f} {a3:>8.2f} {a6:>8.2f} {decades:>8.1f}"
        )
    lines.append("")
    lines.append("smaller es: taller, narrower accuracy triangle; larger es: flatter,")
    lines.append("wider. The paper's posit16 (es=1) spans ~17 decades.")
    report("ablation_posit_es", lines)

    # Peak accuracy falls as es grows (fraction bits traded for range)...
    peaks = [r[2] for r in sweep]
    assert peaks[0] >= peaks[1] >= peaks[2] >= peaks[3] - 0.1
    # ...while dynamic range grows strictly.
    decades = [r[5] for r in sweep]
    assert decades == sorted(decades)
    assert decades[1] == pytest.approx(16.9, abs=0.2)  # the paper's es=1 case
    # Far-from-1 accuracy favors larger es.
    assert sweep[3][4] > sweep[0][4]

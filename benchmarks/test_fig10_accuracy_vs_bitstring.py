"""Fig. 10: accuracy as a function of the bit string, 16-bit formats.

Claims reproduced: posit16 has nearly fixed-point-like accuracy over most
codes while covering ~17 decades of dynamic range; binary16 normals cover
9 decades; bfloat16 covers ~76 decades at under 3 decimal digits; fixed
point covers < 5 decades.
"""

from fractions import Fraction

import pytest

from repro.analysis import accuracy_vs_bitstring, dynamic_range_decades
from repro.fixedpoint import QFormat
from repro.floats import BFLOAT16, BINARY16, SoftFloat
from repro.posit import POSIT16, Posit


@pytest.fixture(scope="module")
def curves():
    def posit_value(pat):
        p = Posit(POSIT16, pat)
        return None if p.is_nar() else p.to_fraction()

    def float_value(fmt):
        def get(pat):
            sf = SoftFloat(fmt, pat)
            return sf.to_fraction() if sf.is_finite() else None

        return get

    def fixed_value(pat):
        return Fraction(pat, 1 << 8)  # Q7.8 positive codes

    return {
        "posit16": accuracy_vs_bitstring(posit_value, range(1, 0x8000)),
        "binary16": accuracy_vs_bitstring(float_value(BINARY16), range(0x0400, 0x7C00)),
        "bfloat16": accuracy_vs_bitstring(float_value(BFLOAT16), range(0x0080, 0x7F80)),
        "fixed Q7.8": accuracy_vs_bitstring(fixed_value, range(1, 0x8000)),
    }


def test_fig10_accuracy_vs_bitstring(benchmark, curves, report):
    def posit_value(pat):
        p = Posit(POSIT16, pat)
        return None if p.is_nar() else p.to_fraction()

    benchmark(lambda: accuracy_vs_bitstring(posit_value, range(1, 0x8000, 64)))

    q = QFormat(7, 8)
    ranges = {
        "posit16": dynamic_range_decades(POSIT16),
        "binary16 (normal)": dynamic_range_decades(BINARY16),
        "bfloat16": dynamic_range_decades(BFLOAT16),
        "fixed Q7.8": dynamic_range_decades(q),
    }

    lines = ["dynamic ranges (decades):"]
    for name, d in ranges.items():
        lines.append(f"  {name:<18} {d:6.1f}")
    lines.append("")
    lines.append("peak / median decimal accuracy along positive codes:")
    import statistics

    for name, curve in curves.items():
        accs = [a for _, a in curve]
        lines.append(
            f"  {name:<12} peak {max(accs):5.2f}  median {statistics.median(accs):5.2f}"
        )
    lines.append("")
    lines.append("paper: posit ~17 decades, float16 9, bfloat16 ~76, fixed < 5;")
    lines.append("posits approach fixed-point accuracy at far larger dynamic range")
    report("fig10_accuracy_vs_bitstring", lines)

    assert 16.5 <= ranges["posit16"] <= 17.0
    assert round(ranges["binary16 (normal)"]) == 9
    assert 75 <= ranges["bfloat16"] <= 78
    assert ranges["fixed Q7.8"] < 5

    import statistics

    med = {n: statistics.median([a for _, a in c]) for n, c in curves.items()}
    # bfloat16 stays under 3 decimals; posit16's typical accuracy beats both
    # 16-bit float formats.
    assert med["bfloat16"] < 3.0
    assert med["posit16"] > med["bfloat16"]
    assert max(a for _, a in curves["posit16"]) > max(a for _, a in curves["binary16"])

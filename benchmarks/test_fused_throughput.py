"""Throughput: the fused code-space path vs the PR 1 engine path.

The fused plan (:mod:`repro.engine.fused`) removes the unfused DNN path's
dominant cost — the boundary-searchsorted encode inside every layer-entry
quantize (>50% of the profile on 8-bit KWS models) — by planning the
network once: a direct float64-bits encode LUT at each quantization
boundary, table-gather decodes into reused scratch buffers, pre-encoded
weights, and activations travelling between quantized layers as posit
codes.  With workers, those codes (1/8th the bytes of float64) move
through shared memory instead of pickled float chunks.

Because the fused plan is **bit-identical** to the unfused network — this
module asserts it on every configuration it times — the speedup below is
pure execution efficiency, never a numerics change.

Results go to ``BENCH_fused.json`` at the repo root: items/s for the
unfused single-process baseline (the PR 1 engine path), the fused
single-process plan, and the fused multi-worker shared-memory path;
``speedup`` is best-fused over unfused-baseline.  The ISSUE acceptance
bar (>= 5x end-to-end) applies **on a multi-core host**, where the
single-process fused gain (~2x from killing the encode) compounds with
parallel sharding; on < 4 CPUs the honest sub-bar number is recorded with
``bar_asserted: false`` and the regression gate skips it.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.engine import BatchedRunner, ParallelRunner
from repro.nn.posit_inference import PositQuantizedNetwork
from repro.nn.zoo import kws_cnn1
from repro.posit import POSIT8

from conftest import quick_mode

REPO_ROOT = Path(__file__).resolve().parent.parent
FMT = POSIT8
ITEMS = 64 if quick_mode() else 192
BATCH = 16
REPEATS = 2 if quick_mode() else 5
WORKERS = max(2, min(4, os.cpu_count() or 1))
MULTI_CORE = (os.cpu_count() or 1) >= 4
SPEEDUP_BAR = 5.0


def _best_wall(fn, x) -> float:
    """Best-of-N wall clock for one full pass over ``x`` (N small; the
    best run is the least-perturbed one on a noisy shared host)."""
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        fn(x)
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def measurement(tmp_path_factory):
    net = kws_cnn1(seed=0)
    qnet = PositQuantizedNetwork(net, FMT)
    plan = qnet.fused_plan()
    rng = np.random.default_rng(42)
    x = rng.normal(size=(ITEMS, 1, 31, 20))

    # Unfused single-process baseline — the PR 1 engine path.
    unfused = BatchedRunner(qnet, batch_size=BATCH)
    unfused.run(x[:BATCH])  # warm tables outside the timed region
    y_ref = unfused.run(x)
    unfused_wall = _best_wall(unfused.run, x)

    # Fused, single process: same batches through the compiled plan.
    fused = BatchedRunner(plan, batch_size=BATCH)
    fused.run(x[:BATCH])  # warm the encode LUT + scratch buffers
    y_fused = fused.run(x)
    assert np.array_equal(y_fused, y_ref), "fused single-process diverged"
    fused_wall = _best_wall(fused.run, x)

    # Fused, multi-worker: codes through shared memory, outputs in place.
    cache_dir = tmp_path_factory.mktemp("kernel-cache")
    with ParallelRunner(
        plan, workers=WORKERS, batch_size=BATCH, cache_dir=cache_dir
    ) as runner:
        runner.run(x[:BATCH])  # pool spawn + worker compile warmup
        y_par = runner.run(x)
        assert np.array_equal(y_par, y_ref), "fused parallel diverged"
        runner.reset()
        par_wall = _best_wall(runner.run, x)
        pstats = runner.stats()
    assert pstats["fallbacks"] == 0, "fused parallel path fell back in-process"

    unfused_ips = ITEMS / unfused_wall
    fused_ips = ITEMS / fused_wall
    par_ips = ITEMS / par_wall
    best_ips = max(fused_ips, par_ips)
    return {
        "model": "kws-cnn1",
        "format": str(FMT),
        "items": ITEMS,
        "batch_size": BATCH,
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "unfused_items_per_s": unfused_ips,
        "fused_items_per_s": fused_ips,
        "fused_parallel_items_per_s": par_ips,
        "fused_single_speedup": fused_ips / unfused_ips,
        "speedup": best_ips / unfused_ips,
        "speedup_bar": SPEEDUP_BAR,
        "bar_asserted": MULTI_CORE,
        "bit_identical": True,
        "fallbacks": pstats["fallbacks"],
        "encode_kind": plan.kernels.encode_kind,
        "decode_kind": plan.kernels.decode_kind,
    }


def test_fused_throughput(benchmark, measurement, report):
    m = measurement
    # pytest-benchmark timing on the fused single-process forward (stable
    # on any host); the comparative numbers come from the module fixture.
    qnet = PositQuantizedNetwork(kws_cnn1(seed=0), FMT)
    plan = qnet.fused_plan()
    batch = np.random.default_rng(7).normal(size=(BATCH, 1, 31, 20))
    benchmark(lambda: plan.forward(batch))

    bar_note = (
        "asserted" if m["bar_asserted"] else f"not asserted ({m['cpu_count']} CPU host)"
    )
    report(
        "fused_throughput",
        [
            f"model            {m['model']} ({m['format']})",
            f"kernels          encode={m['encode_kind']} decode={m['decode_kind']}",
            f"unfused (PR 1)   {m['unfused_items_per_s']:10.2f} items/s",
            f"fused 1-proc     {m['fused_items_per_s']:10.2f} items/s "
            f"({m['fused_single_speedup']:.2f}x)",
            f"fused {m['workers']} workers   {m['fused_parallel_items_per_s']:10.2f} items/s",
            f"speedup          {m['speedup']:10.2f}x  (bar >= {SPEEDUP_BAR}x, {bar_note})",
            f"bit-identical    {m['bit_identical']}",
        ],
    )
    (REPO_ROOT / "BENCH_fused.json").write_text(json.dumps(m, indent=2) + "\n")

    if MULTI_CORE:
        assert m["speedup"] >= SPEEDUP_BAR

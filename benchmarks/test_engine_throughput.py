"""Throughput: engine-backed posit inference vs per-element scalar evaluation.

The tentpole claim of :mod:`repro.engine`: precomputing a format's behaviour
into cached tables and running tensor arithmetic as bulk numpy operations
makes posit DNN inference orders of magnitude faster than evaluating the
scalar :class:`repro.posit.value.Posit` model per element (the "slow but
correct" baseline every softfloat-style emulation starts from).

Both paths compute the same math — quantize onto the posit grid, exact
products, float64 (quire-model) accumulation — so the comparison is pure
execution efficiency.  Results go to ``BENCH_engine.json`` at the repo root
(items/sec for both paths and the speedup) and the run asserts the >= 10x
acceptance bar.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.engine import BatchedRunner
from repro.nn.layers import Conv2D, Dense, im2col
from repro.nn.posit_inference import PositQuantizedNetwork
from repro.nn.zoo import kws_cnn1
from repro.posit import POSIT8, Posit

REPO_ROOT = Path(__file__).resolve().parent.parent
FMT = POSIT8
SCALAR_ITEMS = 2
ENGINE_ITEMS = 64


# ----------------------------------------------------------------------
# Scalar baseline: the same inference math, one Posit op per element
# ----------------------------------------------------------------------
def _scalar_quantize(arr):
    flat = arr.ravel()
    out = np.empty_like(flat)
    for i, v in enumerate(flat):
        out[i] = Posit.from_float(FMT, float(v)).to_float()
    return out.reshape(arr.shape)


def _scalar_matmul(a, b):
    m, k = a.shape
    k2, n = b.shape
    out = np.zeros((m, n))
    for i in range(m):
        ai = a[i]
        for j in range(n):
            acc = 0.0  # python float = float64: same quire model
            for p in range(k):
                acc += ai[p] * b[p, j]
            out[i, j] = acc
    return out


def _scalar_forward(net, x, qweights):
    for layer in net.layers:
        if isinstance(layer, Conv2D):
            qx = _scalar_quantize(x)
            qw = qweights[id(layer)]
            f, c, kh, kw = qw.shape
            cols, oh, ow = im2col(qx, kh, kw, layer.stride, layer.pad)
            out = _scalar_matmul(cols, qw.reshape(f, -1).T) + layer.b.data
            x = out.reshape(x.shape[0], oh, ow, f).transpose(0, 3, 1, 2)
        elif isinstance(layer, Dense):
            qx = _scalar_quantize(x)
            x = _scalar_matmul(qx, qweights[id(layer)]) + layer.b.data
        else:
            x = layer.forward(x)
    return x


@pytest.fixture(scope="module")
def measurement():
    net = kws_cnn1(seed=0)
    rng = np.random.default_rng(42)
    x = rng.normal(size=(ENGINE_ITEMS, 1, 31, 20))

    # Scalar path: quantize every element through the scalar Posit model,
    # accumulate every MAC in a python loop.  A couple of items suffice.
    qweights = {
        id(l): _scalar_quantize(l.w.data)
        for l in net.layers
        if isinstance(l, (Conv2D, Dense))
    }
    t0 = time.perf_counter()
    y_scalar = _scalar_forward(net, x[:SCALAR_ITEMS], qweights)
    scalar_s = time.perf_counter() - t0
    scalar_ips = SCALAR_ITEMS / scalar_s

    # Engine path: cached-LUT codec, bulk numpy execution, micro-batched.
    qnet = PositQuantizedNetwork(net, FMT)
    runner = BatchedRunner(qnet, batch_size=32)
    runner.run(x[:4])  # warm the kernel registry outside the timed region
    runner.reset()
    y_engine = runner.run(x)
    stats = runner.stats()
    engine_ips = stats["items_per_s"]

    # Same math: scalar and engine outputs agree (summation order differs).
    assert np.allclose(y_engine[:SCALAR_ITEMS], y_scalar, rtol=1e-9, atol=1e-9)

    return {
        "model": "kws-cnn1",
        "format": str(FMT),
        "scalar_items": SCALAR_ITEMS,
        "engine_items": int(stats["items"]),
        "scalar_items_per_s": scalar_ips,
        "engine_items_per_s": engine_ips,
        "speedup": engine_ips / scalar_ips,
        "engine_wall_s": stats["wall_s"],
        "table_misses": stats["table_misses"],
        "table_hits": stats["table_hits"],
    }


def test_engine_throughput(benchmark, measurement, report):
    net = kws_cnn1(seed=0)
    qnet = PositQuantizedNetwork(net, FMT)
    rng = np.random.default_rng(7)
    batch = rng.normal(size=(32, 1, 31, 20))
    benchmark(lambda: qnet.forward(batch))

    m = measurement
    report(
        "engine_throughput",
        [
            f"model          {m['model']} ({m['format']})",
            f"scalar path    {m['scalar_items_per_s']:10.2f} items/s",
            f"engine path    {m['engine_items_per_s']:10.2f} items/s",
            f"speedup        {m['speedup']:10.1f}x  (acceptance bar: >= 10x)",
        ],
    )
    (REPO_ROOT / "BENCH_engine.json").write_text(json.dumps(m, indent=2) + "\n")

    assert m["speedup"] >= 10.0

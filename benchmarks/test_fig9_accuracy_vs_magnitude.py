"""Fig. 9: decimal accuracy as a function of magnitude, 16-bit formats.

Shapes reproduced: float16 trapezoid (flat plateau, subnormal taper, hard
cutoffs), bfloat16 a lower/wider trapezoid, fixed point a one-sided ramp,
posit16 an isosceles triangle centered at magnitude 1 that *beats the
floats in the common range* and loses outside it.
"""


import pytest

from repro.analysis import (
    accuracy_vs_magnitude,
    decimal_accuracy_fixed,
    decimal_accuracy_float,
    decimal_accuracy_posit,
)
from repro.fixedpoint import QFormat
from repro.floats import BFLOAT16, BINARY16
from repro.posit import POSIT16

SPAN = (-9.0, 9.0, 37)


@pytest.fixture(scope="module")
def curves():
    q = QFormat(7, 8)  # 16-bit signed fixed point
    return {
        "binary16": accuracy_vs_magnitude(lambda x: decimal_accuracy_float(BINARY16, x), *SPAN),
        "bfloat16": accuracy_vs_magnitude(lambda x: decimal_accuracy_float(BFLOAT16, x), *SPAN),
        "posit16": accuracy_vs_magnitude(lambda x: decimal_accuracy_posit(POSIT16, x), *SPAN),
        "fixed Q7.8": accuracy_vs_magnitude(lambda x: decimal_accuracy_fixed(q, x), *SPAN),
    }


def test_fig9_accuracy_vs_magnitude(benchmark, curves, report):
    benchmark(
        lambda: accuracy_vs_magnitude(
            lambda x: decimal_accuracy_posit(POSIT16, x), -6, 6, 13
        )
    )

    names = list(curves)
    lines = [f"{'log10|x|':>8} | " + " ".join(f"{n:>10}" for n in names)]
    n_points = len(curves["binary16"])
    for i in range(0, n_points, 2):
        lg = curves["binary16"][i][0]
        lines.append(
            f"{lg:>8.1f} | " + " ".join(f"{curves[n][i][1]:>10.2f}" for n in names)
        )
    report("fig9_accuracy_vs_magnitude", lines)

    mid = n_points // 2  # magnitude ~1
    f16 = [v for _, v in curves["binary16"]]
    bf16 = [v for _, v in curves["bfloat16"]]
    p16 = [v for _, v in curves["posit16"]]
    fx = [v for _, v in curves["fixed Q7.8"]]

    # Posit triangle: peak at the center, dominating both float formats there.
    assert p16[mid] == max(p16)
    assert p16[mid] > f16[mid] and p16[mid] > bf16[mid]
    # Floats flat in the plateau, zero far outside; posit still nonzero there.
    assert f16[mid] == pytest.approx(f16[mid + 3], abs=0.6)
    assert f16[-1] == 0.0 and f16[0] == 0.0
    assert p16[4] > 0.0 and p16[-5] > 0.0
    # bfloat16: lower accuracy than binary16 in the plateau, wider coverage.
    assert bf16[mid] < f16[mid]
    assert bf16[2] > 0.0 and bf16[-3] > 0.0
    # Fixed point: one-sided ramp with a cliff past its max value.
    peak = fx.index(max(fx))
    assert all(a <= b + 0.4 for a, b in zip(fx[:peak], fx[1:peak + 1]))
    assert fx[-1] == 0.0

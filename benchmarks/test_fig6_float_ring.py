"""Fig. 6: the 16-bit float ring.

Claims reproduced: ~6% of patterns are trap-to-software (subnormals,
infinities, NaNs); values reverse direction on the negative half (two
monotone segments); the "theorems are valid" arc — operand pairs whose
product neither overflows nor underflows — covers *less than half* the
ring for multiplication.
"""

import math

import pytest

from repro.analysis import float_ring, monotone_runs, trap_fraction
from repro.floats import BINARY16, SoftFloat


@pytest.fixture(scope="module")
def ring():
    return float_ring(BINARY16)


def _theorem_valid_fraction():
    """Fraction of the ring inside the multiply-safe arc.

    The rounding-error theorem for a product needs the exact result inside
    the normal range for *any* pair drawn from the arc, i.e. operand
    magnitudes within [sqrt(min_normal), sqrt(max_finite)].  Fig. 6 marks
    these arcs: they cover less than half of the 2^16 patterns.
    """
    lo = math.sqrt(BINARY16.min_normal)
    hi = math.sqrt(BINARY16.max_finite)
    ok = 0
    for pattern in range(1 << 16):
        sf = SoftFloat(BINARY16, pattern)
        if not sf.is_finite():
            continue
        v = abs(sf.to_float())
        if lo <= v <= hi:
            ok += 1
    return ok / (1 << 16)


def test_fig6_float_ring(benchmark, ring, report):
    benchmark(lambda: float_ring(BINARY16, stride=16))

    kinds = {}
    for e in ring:
        kinds[e.kind] = kinds.get(e.kind, 0) + 1
    trap = trap_fraction(ring)
    runs = monotone_runs(ring)
    valid = _theorem_valid_fraction()

    lines = ["binary16 pattern census on the two's-complement ring:"]
    for kind in ("normal", "subnormal", "zero", "inf", "nan"):
        lines.append(f"  {kind:<10} {kinds.get(kind, 0):>6} ({kinds.get(kind, 0) / 65536:.2%})")
    lines.append("")
    lines.append(f"trap-to-software fraction: {trap:.2%}   (paper: 'about 6 percent')")
    lines.append(f"monotone value segments:   {runs}       (positive half up, negative half down)")
    lines.append(
        f"multiply-safe 'theorems valid' arc: {valid:.1%} of patterns "
        "(paper: less than half)"
    )
    report("fig6_float_ring", lines)

    assert 0.055 <= trap <= 0.07
    assert runs == 2
    assert valid < 0.5

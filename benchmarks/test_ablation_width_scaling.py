"""Ablation: how posit and float multiplier costs scale with width.

The Fig. 8 comparison is an 8-bit snapshot; this sweep builds the verified
datapath generators at 8, 12 and 16 bits (posit es per the paper-era
convention, floats with comparable range splits) and tracks gate count and
depth.  The posit/float ratio is driven by the tapered significand: a
posit's max fraction grows with nbits-es, a float's stays at its fixed
field width.
"""

import pytest

from repro.floats import BINARY16, FP8_E4M3, FloatFormat
from repro.hwcost import build_float_multiplier, build_posit_multiplier
from repro.posit import PositFormat

PAIRS = [
    (PositFormat(8, 0), FP8_E4M3),
    (PositFormat(12, 1), FloatFormat("fp12", exp_bits=5, frac_bits=6)),
    (PositFormat(16, 1), BINARY16),
]


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for posit_fmt, float_fmt in PAIRS:
        p = build_posit_multiplier(posit_fmt)
        fn = build_float_multiplier(float_fmt, full_ieee=False)
        ff = build_float_multiplier(float_fmt, full_ieee=True)
        rows.append(
            {
                "width": posit_fmt.nbits,
                "posit": (len(p.gates), p.depth()),
                "normal": (len(fn.gates), fn.depth()),
                "full": (len(ff.gates), ff.depth()),
                "posit_sig": posit_fmt.nbits - posit_fmt.es,
                "float_sig": float_fmt.frac_bits + 1,
            }
        )
    return rows


def test_ablation_width_scaling(benchmark, sweep, report):
    benchmark(lambda: build_posit_multiplier(PositFormat(8, 0)))

    lines = [
        f"{'bits':>5} {'sig p/f':>8} | {'normals-only':>14} {'posit':>12} {'full IEEE':>12}"
        "   (gates/depth)"
    ]
    for row in sweep:
        lines.append(
            f"{row['width']:>5} {row['posit_sig']:>4}/{row['float_sig']:<3} | "
            f"{row['normal'][0]:>8}/{row['normal'][1]:<5} "
            f"{row['posit'][0]:>7}/{row['posit'][1]:<4} "
            f"{row['full'][0]:>7}/{row['full'][1]:<4}"
        )
    lines.append("")
    lines.append("posit cost tracks its wider (tapered) significand; the posit-to-")
    lines.append("normals-only ratio stays roughly flat across widths")
    report("ablation_width_scaling", lines)

    # Costs grow with width for every design.
    for key in ("posit", "normal", "full"):
        gates = [row[key][0] for row in sweep]
        assert gates == sorted(gates)
    # Ordering at every width: normals-only < posit; full IEEE > normals-only.
    for row in sweep:
        assert row["normal"][0] < row["posit"][0]
        assert row["normal"][0] < row["full"][0]
    # The posit/normals-only ratio stays within a stable band.
    ratios = [row["posit"][0] / row["normal"][0] for row in sweep]
    assert max(ratios) / min(ratios) < 2.0

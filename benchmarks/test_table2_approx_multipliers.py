"""Table II: the approximate-multiplier library (MRE / MAE / energy saving).

Paper's rows (EvoApprox8B picks): MRE 0.03..19.45%, MAE 0.2..343.9,
energy saving 0.02..68.08%.  Our stand-in designs ladder the same ranges;
shape checks assert the monotone error-vs-energy trade-off.
"""

import pytest

from repro.approx import TABLE2_SET, characterize, table2


@pytest.fixture(scope="module")
def rows():
    return table2()


def test_table2_rows(benchmark, rows, report):
    benchmark(characterize, TABLE2_SET[4])

    lines = [f"{'multiplier':<12} {'MRE [%]':>8} {'MAE':>9} {'WCE':>7} {'Energy Saving [%]':>18}"]
    for r in rows:
        lines.append(
            f"{r.name:<12} {r.mre_percent:>8.2f} {r.mae:>9.1f} {r.wce:>7} "
            f"{r.energy_saving_percent:>18.2f}"
        )
    lines.append("")
    lines.append("paper (Table II): MRE 0.03..19.45%, MAE 0.2..343.9, saving 0.02..68.08%")
    lines.append(
        f"ours:             MRE {rows[0].mre_percent:.2f}..{rows[-1].mre_percent:.2f}%, "
        f"MAE {rows[0].mae:.1f}..{max(r.mae for r in rows):.1f}, "
        f"saving {min(r.energy_saving_percent for r in rows):.2f}.."
        f"{max(r.energy_saving_percent for r in rows):.2f}%"
    )
    report("table2_approx_multipliers", lines)

    # Shape assertions: ten designs, error-sorted, energy ladder upward.
    assert len(rows) == 10
    assert rows[0].mre_percent < 0.5 and rows[-1].mre_percent > 15
    assert rows[-1].energy_saving_percent > 8 * rows[0].energy_saving_percent

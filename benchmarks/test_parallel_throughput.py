"""Throughput: multi-worker sharded inference vs the single-process runner.

The parallel layer (:mod:`repro.engine.parallel`) shards batches across a
spawn process pool whose workers load prebuilt kernel tables from the
registry's disk cache.  Because chunk boundaries stay batch-aligned and
each worker runs the exact micro-batches the single-process
:class:`BatchedRunner` would, the output is **bit-identical** — so this
benchmark is pure execution efficiency, like ``test_engine_throughput``.

Results go to ``BENCH_parallel.json`` at the repo root: items/s for the
single-process and parallel paths, the speedup, per-worker stats and the
host's CPU count.  The ISSUE acceptance bar (>= 2.5x) applies **on a
multi-core host**; on boxes with < 4 CPUs the process-pool overhead cannot
be amortized and the bar is recorded but not asserted.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.engine import BatchedRunner, ParallelRunner
from repro.nn.posit_inference import PositQuantizedNetwork
from repro.nn.zoo import kws_cnn1
from repro.posit import POSIT8

REPO_ROOT = Path(__file__).resolve().parent.parent
FMT = POSIT8
ITEMS = 192
BATCH = 16
# Always use >= 2 workers so the sharded path (pool + disk-cache loads) is
# what gets measured, even on single-core hosts where it can't win.
WORKERS = max(2, min(4, os.cpu_count() or 1))
MULTI_CORE = (os.cpu_count() or 1) >= 4
SPEEDUP_BAR = 2.5


@pytest.fixture(scope="module")
def measurement(tmp_path_factory):
    net = kws_cnn1(seed=0)
    qnet = PositQuantizedNetwork(net, FMT)
    rng = np.random.default_rng(42)
    x = rng.normal(size=(ITEMS, 1, 31, 20))

    # Single-process baseline (tables already cached in the registry).
    single = BatchedRunner(qnet, batch_size=BATCH)
    single.run(x[:BATCH])  # warm tables outside the timed region
    single.reset()
    y_single = single.run(x)
    sstats = single.stats()

    # Parallel path: pool spawn + table flush happen in _ensure_pool on the
    # first run; warm it first so the steady-state number is what serving
    # would see, then time a fresh run.
    cache_dir = tmp_path_factory.mktemp("kernel-cache")
    with ParallelRunner(
        qnet, workers=WORKERS, batch_size=BATCH, cache_dir=cache_dir
    ) as runner:
        runner.run(x[:BATCH])  # pool + worker model warmup
        runner.reset()
        t0 = time.perf_counter()
        y_par = runner.run(x)
        par_wall = time.perf_counter() - t0
        pstats = runner.stats()

    # The whole point: sharding must not change a single bit.
    assert np.array_equal(y_single, y_par)
    assert pstats["fallbacks"] == 0, "parallel path fell back in-process"

    single_ips = sstats["items_per_s"]
    par_ips = ITEMS / par_wall
    return {
        "model": "kws-cnn1",
        "format": str(FMT),
        "items": ITEMS,
        "batch_size": BATCH,
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "single_items_per_s": single_ips,
        "parallel_items_per_s": par_ips,
        "speedup": par_ips / single_ips,
        "speedup_bar": SPEEDUP_BAR,
        "bar_asserted": MULTI_CORE,
        "bit_identical": True,
        "fallbacks": pstats["fallbacks"],
        "table_disk_loads": pstats["table_disk_loads"],
        "per_worker": [
            {"pid": w["pid"], "items": w["items"], "items_per_s": w["items_per_s"]}
            for w in pstats["per_worker"]
        ],
    }


def test_parallel_throughput(benchmark, measurement, report):
    m = measurement
    # pytest-benchmark timing on the single-process path (stable on any
    # host); the parallel numbers come from the module-scope measurement.
    net = kws_cnn1(seed=0)
    qnet = PositQuantizedNetwork(net, FMT)
    rng = np.random.default_rng(7)
    batch = rng.normal(size=(BATCH, 1, 31, 20))
    benchmark(lambda: qnet.forward(batch))

    bar_note = "asserted" if m["bar_asserted"] else f"not asserted ({m['cpu_count']} CPU host)"
    report(
        "parallel_throughput",
        [
            f"model          {m['model']} ({m['format']})",
            f"workers        {m['workers']} (host has {m['cpu_count']} CPUs)",
            f"single proc    {m['single_items_per_s']:10.2f} items/s",
            f"parallel       {m['parallel_items_per_s']:10.2f} items/s",
            f"speedup        {m['speedup']:10.2f}x  (bar >= {SPEEDUP_BAR}x, {bar_note})",
            f"bit-identical  {m['bit_identical']}",
            f"disk loads     {m['table_disk_loads']} (workers reused cached tables)",
        ],
    )
    (REPO_ROOT / "BENCH_parallel.json").write_text(json.dumps(m, indent=2) + "\n")

    if MULTI_CORE:
        assert m["speedup"] >= SPEEDUP_BAR

"""Section II claims: specialization, sharing, tables, and fusion pay off.

Not a single figure, but the quantitative backbone of the
application-specific-arithmetic section: constant multipliers beat generic
ones, squarers halve the partial products, bipartite tables compress plain
tabulation, sharing reduces MCM adder counts, and fused operators are
faithful where composed ones are not.
"""

from fractions import Fraction

import pytest

from repro.generators import (
    BipartiteTable,
    ConstantMultiplier,
    FusedNorm,
    MultipartiteTable,
    MultipleConstantMultiplier,
    PlainTable,
    Squarer,
    shift_add_cost,
)


def _recip(x: Fraction) -> Fraction:
    return 1 / (1 + x)


@pytest.fixture(scope="module")
def data():
    consts = [45, 90, 105, 75, 27]
    mcm = MultipleConstantMultiplier(consts)
    plain = PlainTable(_recip, in_bits=12, out_frac_bits=10)
    bi = BipartiteTable(_recip, in_bits=12, out_frac_bits=10)
    mu = MultipartiteTable(_recip, in_bits=14, out_frac_bits=11)
    bi14 = BipartiteTable(_recip, in_bits=14, out_frac_bits=11)
    fused = FusedNorm(in_frac_bits=6, out_frac_bits=10)
    return {
        "mcm": mcm,
        "consts": consts,
        "plain": plain,
        "bi": bi,
        "mu14": mu,
        "bi14": bi14,
        "fused": fused,
        "fused_err": fused.max_error_ulps(fused=True, limit=20),
        "composed_err": fused.max_error_ulps(fused=False, limit=20),
    }


def test_sec2_operator_generators(benchmark, data, report):
    benchmark(lambda: BipartiteTable(_recip, in_bits=10, out_frac_bits=8))

    cm = ConstantMultiplier(1234, 16)
    sq = Squarer(8)
    mcm = data["mcm"]

    lines = [
        "operator specialization:",
        f"  x*1234: {cm.adders} adders vs {cm.generic_multiplier_cost} generic rows",
        f"  x*255:  {shift_add_cost(255)} adder (256 - 1)",
        f"  8-bit squarer: {sq.partial_products()} PPs vs {sq.generic_partial_products()} "
        f"({sq.savings():.0%} saved); compressed area {sq.compressed_area():.0f} vs "
        f"{sq.generic_compressed_area():.0f}",
        "",
        "operator sharing (MCM):",
        f"  constants {data['consts']}: {mcm.adder_count()} adders shared vs "
        f"{mcm.naive_adder_count()} unshared",
        "",
        "computing just right (1/(1+x)):",
        f"  plain 12->10:       {data['plain'].table_bits():>7} table bits",
        f"  bipartite 12->10:   {data['bi'].table_bits():>7} table bits (faithful)",
        f"  bipartite 14->11:   {data['bi14'].table_bits():>7} table bits",
        f"  multipartite 14->11:{data['mu14'].table_bits():>7} table bits",
        "",
        "operator fusion x/sqrt(x^2+y^2):",
        f"  fused max error:    {data['fused_err']:.2f} ulp",
        f"  composed max error: {data['composed_err']:.2f} ulp",
    ]
    report("sec2_operator_generators", lines)

    assert cm.adders < cm.generic_multiplier_cost
    assert sq.savings() > 0.4
    assert mcm.adder_count() < mcm.naive_adder_count()
    assert data["bi"].table_bits() < data["plain"].table_bits() / 2
    assert data["mu14"].table_bits() <= data["bi14"].table_bits()
    assert data["fused_err"] < 1.0 < data["composed_err"]

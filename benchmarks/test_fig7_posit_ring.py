"""Fig. 7: the 16-bit posit ring.

Claims reproduced: exactly two exception values, both with all 0 bits after
the first bit; value order equals two's-complement integer order (one
monotone segment all the way around); the easy-decode arcs (exactly two
regime bits) cover half the ring; and the NaR test is a short OR tree
("no more than six logic levels even for 64-bit posits").
"""

import math

import pytest

from repro.analysis import monotone_runs, posit_ring, trap_fraction, two_regime_fraction
from repro.circuits import Circuit
from repro.posit import POSIT16


@pytest.fixture(scope="module")
def ring():
    return posit_ring(POSIT16)


def _nar_detector_depth(nbits: int) -> int:
    """Gate depth of the NaR detector: sign AND NOR(everything else)."""
    c = Circuit(f"nar{nbits}")
    bits = c.input_bus("x", nbits)
    # Balanced OR tree over the low bits, then NOR + AND with the sign.
    level = bits[:-1]
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(c.or_(level[i], level[i + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    c.outputs(is_nar=c.and_(bits[-1], c.not_(level[0])))
    return c.depth()


def test_fig7_posit_ring(benchmark, ring, report):
    benchmark(lambda: posit_ring(POSIT16, stride=16))

    specials = [e for e in ring if e.kind in ("zero", "nar")]
    runs = monotone_runs(ring)
    arcs = two_regime_fraction(POSIT16)
    depth16 = _nar_detector_depth(16)
    depth64 = _nar_detector_depth(64)

    lines = [
        f"exception values: {len(specials)} "
        f"(patterns {[hex(e.pattern) for e in specials]})",
        f"trap fraction: {trap_fraction(ring):.5%} (one pattern of 65536)",
        f"monotone value segments around the ring: {runs}",
        f"two-regime-bit (easy decode) arc coverage: {arcs:.1%}",
        f"NaR detector depth: {depth16} gate levels at 16 bits, {depth64} at 64",
        "",
        "paper: two exceptions, integer-order comparison, OR tree <= 6 levels @64b",
    ]
    report("fig7_posit_ring", lines)

    assert len(specials) == 2
    for e in specials:
        assert e.pattern & (POSIT16.pattern_nar - 1) == 0
    assert runs == 1
    assert abs(arcs - 0.5) < 0.01
    assert depth64 <= 2 + math.ceil(math.log2(63))  # OR tree + NOT/AND

"""Fig. 8: the 8-bit posit multiplier (Yonemoto).

The reproduction builds the complete gate-level posit8 multiplier — decode
by two's-complement conditional negate + count-leading-signs, encode by
arithmetic-shift regime construction — verifies it bit-exactly against the
software posit over all 65536 operand pairs, and reports its cost next to
same-width float multipliers.
"""

import numpy as np
import pytest

from repro.floats import FP8_E4M3
from repro.hwcost import adder_comparison, build_posit_multiplier, hardware_comparison
from repro.posit import POSIT8, Posit


@pytest.fixture(scope="module")
def circuit():
    return build_posit_multiplier(POSIT8)


@pytest.fixture(scope="module")
def reference_table():
    table = np.empty((256, 256), dtype=np.int64)
    for i in range(256):
        a = Posit(POSIT8, i)
        for j in range(256):
            table[i, j] = (a * Posit(POSIT8, j)).pattern
    return table


def test_fig8_posit_multiplier(benchmark, circuit, reference_table, report):
    pa, pb = np.meshgrid(np.arange(256), np.arange(256))
    pa, pb = pa.ravel(), pb.ravel()

    out = benchmark(lambda: circuit.evaluate_vector(a=pa, b=pb)["p"])
    mismatches = int(np.count_nonzero(out != reference_table[pa, pb]))

    rows = hardware_comparison(POSIT8, FP8_E4M3)
    add_rows = adder_comparison(POSIT8, FP8_E4M3)
    lines = [
        f"gate-level posit8 multiplier: {circuit}",
        f"exhaustive check vs software posit: {65536 - mismatches}/65536 exact",
        "",
        "multipliers:",
        f"{'design':<24} {'gates':>6} {'sig-mult':>9} {'overhead':>9} {'depth':>6}",
    ]
    for r in rows:
        lines.append(
            f"{r.design:<24} {r.gates:>6} {r.sig_mult_gates:>9} {r.overhead_gates:>9} {r.depth:>6}"
        )
    lines.append("")
    lines.append("adders (all exhaustively verified too):")
    lines.append(f"{'design':<24} {'gates':>6} {'depth':>6}")
    for r in add_rows:
        lines.append(f"{r.design:<24} {r.gates:>6} {r.depth:>6}")
    lines.append("")
    lines.append("paper: posit HW slightly above normals-only floats, below full IEEE;")
    lines.append("measured: posit above normals-only (matches); posit overhead exceeds")
    lines.append("even full IEEE at 8 bits with these textbook components (see EXPERIMENTS.md)")
    report("fig8_posit_multiplier", lines)

    assert mismatches == 0
    normal, posit, full = rows
    assert posit.gates > normal.gates  # the direction the paper concedes
    assert full.gates > normal.gates  # full IEEE pays for subnormals/NaN

"""Fig. 5: task accuracy of three DNNs across approximate multipliers,
retrained with and without data augmentation.

Paper's observations reproduced as shape checks:

* accuracy degrades as multiplier error grows, and STE retraining recovers
  it for all but the most aggressive multipliers;
* the accuracy tolerance (1% for image classification, 5% for keyword
  spotting, relative to the 8-bit baseline) is reached for the milder part
  of the multiplier ladder;
* retraining *without* augmentation compensates approximation error better
  than retraining with it ("data augmentation worsens the accuracy
  degradation in approximate DNNs").

Full sweep: REPRO_FIG5_FULL=1 (10 multipliers); quick smoke: REPRO_QUICK=1.
"""

import copy
import os

import numpy as np
import pytest

from repro.approx import TABLE2_SET, characterize, signed_lut
from repro.datasets import spectrogram_features, synthetic_images, synthetic_keywords
from repro.nn import (
    Adam,
    QuantizedNetwork,
    add_background_noise,
    evaluate_accuracy,
    random_flip,
    train,
)
from repro.nn.zoo import kws_cnn1, kws_cnn2, resnet_mini

from conftest import quick_mode


def _mult_indices():
    if os.environ.get("REPRO_FIG5_FULL", "0") == "1":
        return list(range(10))
    if quick_mode():
        return [1, 8]
    return [1, 4, 7, 8]


def _retrain(net, qn, lut, xtr, ytr, augment, steps, rng, waveforms=None, spect=None):
    opt = Adam(net.params(), lr=5e-4)
    for _ in range(steps):
        idx = rng.integers(0, len(xtr), size=48)
        xb = xtr[idx]
        if augment is not None:
            xb = augment(idx, xb, rng)
        qn.train_step(xb, ytr[idx], opt, lut)


class _Workload:
    def __init__(self, name, net, xtr, ytr, xte, yte, calib, tolerance, augment):
        self.name = name
        self.net = net
        self.xtr, self.ytr, self.xte, self.yte = xtr, ytr, xte, yte
        self.calib = calib
        self.tolerance = tolerance
        self.augment = augment


@pytest.fixture(scope="module")
def workloads():
    epochs = 2 if quick_mode() else 4
    out = []

    # --- image classification -----------------------------------------
    x, y = synthetic_images(150, classes=10, size=16, seed=0)
    xtr, ytr, xte, yte = x[:1100], y[:1100], x[1100:1400], y[1100:1400]
    net = resnet_mini()
    train(net, xtr, ytr, epochs=epochs, batch=64, lr=2e-3, seed=0)

    def flip_aug(idx, xb, rng):
        return random_flip(xb, rng)

    out.append(_Workload("ResNet-mini", net, xtr, ytr, xte, yte, xtr[:96], 0.01, flip_aug))

    # --- keyword spotting -----------------------------------------------
    wav, yk = synthetic_keywords(170, classes=8, seed=0)
    feats = spectrogram_features(wav)
    tr, te = 1100, 1360
    # Pre-compute augmented (noisy) feature variants for efficiency.
    rng = np.random.default_rng(11)
    noisy_feats = [
        spectrogram_features(add_background_noise(wav[:tr], volume=0.10, rng=rng))
        for _ in range(2)
    ]

    def noise_aug_factory():
        def noise_aug(idx, xb, rng_):
            bank = noisy_feats[int(rng_.integers(0, len(noisy_feats)))]
            return bank[idx]

        return noise_aug

    for builder, name in ((kws_cnn1, "KWS-CNN1"), (kws_cnn2, "KWS-CNN2")):
        net = builder(input_shape=feats.shape[1:])
        train(net, feats[:tr], yk[:tr], epochs=epochs, batch=64, lr=3e-3, seed=0)
        out.append(
            _Workload(
                name, net, feats[:tr], yk[:tr], feats[tr:te], yk[tr:te],
                feats[:96], 0.05, noise_aug_factory(),
            )
        )
    return out


def test_fig5_approx_retraining(benchmark, workloads, report):
    steps = 12 if quick_mode() else 36
    indices = _mult_indices()

    lines = [
        f"{'DNN':<12} {'multiplier':<10} {'MRE%':>6} {'base8':>6} {'approx':>7} "
        f"{'retrain':>8} {'retr+aug':>9} {'tol?':>5}"
    ]
    results = []
    for wl in workloads:
        qn = QuantizedNetwork(wl.net, wl.calib)
        base8 = evaluate_accuracy(lambda v: qn.predict(v, None), wl.xte, wl.yte)
        for mi in indices:
            mult = TABLE2_SET[mi]
            metrics = characterize(mult)
            lut = signed_lut(mult)
            approx_acc = evaluate_accuracy(lambda v: qn.predict(v, lut), wl.xte, wl.yte)

            accs = {}
            for aug_name, aug in (("plain", None), ("aug", wl.augment)):
                net2 = copy.deepcopy(wl.net)
                qn2 = QuantizedNetwork(net2, wl.calib)
                rng = np.random.default_rng(7)
                _retrain(net2, qn2, lut, wl.xtr, wl.ytr, aug, steps, rng)
                accs[aug_name] = evaluate_accuracy(
                    lambda v: qn2.predict(v, lut), wl.xte, wl.yte
                )
            reached = accs["plain"] >= base8 - wl.tolerance
            results.append(
                (wl.name, metrics, base8, approx_acc, accs["plain"], accs["aug"], reached)
            )
            lines.append(
                f"{wl.name:<12} {metrics.name:<10} {metrics.mre_percent:>6.2f} "
                f"{100*base8:>6.1f} {100*approx_acc:>7.1f} {100*accs['plain']:>8.1f} "
                f"{100*accs['aug']:>9.1f} {'yes' if reached else 'no':>5}"
            )

    # Benchmark one approximate forward pass.
    wl = workloads[-1]
    qn = QuantizedNetwork(wl.net, wl.calib)
    lut = signed_lut(TABLE2_SET[4])
    benchmark(lambda: qn.predict(wl.xte[:64], lut))

    lines.append("")
    lines.append("shape: error ladder degrades accuracy; retraining recovers the")
    lines.append("milder multipliers to tolerance. The paper's augmentation effect")
    lines.append("(aug worsens approximate retraining, 'specially for speech') shows")
    lines.append("on the KWS nets at the harsher multipliers; the underfit image")
    lines.append("miniature still benefits from augmentation (see EXPERIMENTS.md).")
    report("fig5_approx_retraining", lines)

    # --- shape assertions -------------------------------------------------
    by_net = {}
    for name, metrics, base8, approx_acc, plain, aug, reached in results:
        by_net.setdefault(name, []).append((metrics.mre_percent, approx_acc, plain, aug, reached, base8))

    for name, rows in by_net.items():
        rows.sort()
        # Mildest multiplier barely hurts; harshest hurts clearly (pre-retrain).
        assert rows[0][1] >= rows[0][5] - 0.12, f"{name}: mild multiplier already broke it"
        assert rows[-1][1] <= rows[-1][5], f"{name}: harsh multiplier did not degrade"
        # Retraining recovers at least the milder half to tolerance.
        assert rows[0][4], f"{name}: tolerance missed even for the mildest multiplier"
        # Retraining helps the harsh multiplier vs no retraining.
        assert rows[-1][2] >= rows[-1][1] - 0.02, f"{name}: retraining hurt"

    # The augmentation effect the paper emphasizes for speech: on the KWS
    # workloads, at the harsher (top-half error) multipliers, retraining
    # without augmentation compensates at least as well as with it.
    kws = [
        (metrics.mre_percent, plain, aug)
        for name, metrics, _, _, plain, aug, _ in results
        if name.startswith("KWS")
    ]
    kws.sort()
    harsh = kws[len(kws) // 2 :]
    assert np.mean([p for _, p, _ in harsh]) >= np.mean([a for _, _, a in harsh]) - 0.01

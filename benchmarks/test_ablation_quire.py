"""Ablation: exact accumulation (quire / Kulisch) vs naive summation.

Design choice probed: the quire costs a wide register (145 bits for
posit16, vs 112 for a binary16 Kulisch register) — what does it buy?
Accumulation error of naive 16-bit dot products grows with length, while
the exact accumulators round once regardless of n.
"""

import random
from fractions import Fraction

import pytest

from repro.floats import BINARY16, KulischAccumulator, SoftFloat
from repro.posit import POSIT16, Posit, Quire


def _trial(n, seed):
    rng = random.Random(seed)
    xs = [rng.gauss(0, 1) for _ in range(n)]
    ys = [rng.gauss(0, 1) for _ in range(n)]
    exact = sum(Fraction(x) * Fraction(y) for x, y in zip(xs, ys))

    def rel(got):
        if exact == 0:
            return abs(got)
        return float(abs(Fraction(got) - exact) / abs(exact))

    f = SoftFloat.zero(BINARY16)
    for x, y in zip(xs, ys):
        f = f + SoftFloat.from_float(BINARY16, x) * SoftFloat.from_float(BINARY16, y)

    p = Posit.zero(POSIT16)
    for x, y in zip(xs, ys):
        p = p + Posit.from_float(POSIT16, x) * Posit.from_float(POSIT16, y)

    q = Quire(POSIT16).dot(
        [Posit.from_float(POSIT16, x) for x in xs],
        [Posit.from_float(POSIT16, y) for y in ys],
    )
    k = KulischAccumulator(BINARY16).dot(
        [SoftFloat.from_float(BINARY16, x) for x in xs],
        [SoftFloat.from_float(BINARY16, y) for y in ys],
    )
    return rel(f.to_float()), rel(p.to_float()), rel(q.to_float()), rel(k.to_float())


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for n in (8, 32, 128, 512):
        sums = [0.0] * 4
        trials = 4
        for seed in range(trials):
            errs = _trial(n, seed)
            sums = [s + e for s, e in zip(sums, errs)]
        rows.append((n, [s / trials for s in sums]))
    return rows


def test_ablation_quire(benchmark, sweep, report):
    benchmark(lambda: _trial(32, 99))

    lines = [
        f"{'n':>5} {'naive f16':>11} {'naive p16':>11} {'quire p16':>11} {'kulisch f16':>12}"
    ]
    for n, (f, p, q, k) in sweep:
        lines.append(f"{n:>5} {f:>11.2e} {p:>11.2e} {q:>11.2e} {k:>12.2e}")
    lines.append("")
    lines.append(
        f"register widths: posit16 quire {POSIT16.quire_width()} bits, "
        f"binary16 Kulisch {KulischAccumulator.register_width(BINARY16)} bits"
    )
    lines.append("exact accumulators: error independent of n (single final rounding)")
    report("ablation_quire", lines)

    # Naive float error grows from short to long dot products; quire doesn't.
    first, last = sweep[0][1], sweep[-1][1]
    assert last[0] > first[0]
    assert last[2] < last[0] and last[2] < last[1]
    # The exact accumulators stay at the final-rounding level (< 1 ulp rel).
    assert last[2] < 2.0**-11
    assert last[3] < 2.0**-10

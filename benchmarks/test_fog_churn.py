"""Fog benchmark: cache-hit scaling and correctness under churn.

Measures what the fog layer claims to buy an edge deployment:

1. **Hit-rate growth** — repeated named computations over a fixed working
   set should converge to near-pure cache replay.  Measured per round on
   a 4-node topology; the final round's hit rate is the regression-gated
   metric (deterministic: routing, caching, and traffic are all seeded).
2. **Scaling** — the same working set on 2/4/8 nodes: total hit rate and
   forwarding cost as ownership spreads out.
3. **Churn** — a 6-node topology under ``ChaosPlan(crash_rate=0.35)``:
   every completed answer is checked byte-for-byte against the direct
   backend, rejections are counted, reroutes must engage.

Results go to ``BENCH_fog.json`` at the repo root, gated by
``check_regression.py`` (metric: ``hit_rate``).
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.engine import ChaosPlan
from repro.engine.observe import Metrics
from repro.engine.posit_backend import PositBackend
from repro.fog import ChurnDriver, FogTopology, FogUnavailable
from repro.posit import PositFormat
from repro.serve.protocol import Request

from conftest import quick_mode

REPO_ROOT = Path(__file__).resolve().parent.parent

WORKING_SET = 8 if quick_mode() else 16
ROUNDS = 4 if quick_mode() else 6
CHURN_STEPS = 8 if quick_mode() else 15
CRASH_RATE = 0.35
#: Gate: after ROUNDS passes over the working set, at least 60% of all
#: submissions must have been cache replays (the first pass is all misses,
#: so perfect behaviour converges to (ROUNDS-1)/ROUNDS).
HIT_RATE_BAR = 0.6


def _matmul_request(req_id, a, b):
    return Request(
        id=req_id, workload="posit_matmul", tenant="bench", bits=8, es=2,
        a=a, b=b, rows=len(a),
    )


def _working_set(seed, count=WORKING_SET):
    rng = np.random.default_rng(seed)
    pairs = [(rng.normal(size=(4, 6)), rng.normal(size=(6, 3))) for _ in range(count)]
    backend = PositBackend(PositFormat(8, 2), stable_contractions=True)
    want = [
        backend.decode(backend.matmul(backend.encode(a), backend.encode(b))).tobytes()
        for a, b in pairs
    ]
    return pairs, want


def _run_rounds(nodes, pairs, want, rounds=ROUNDS):
    """Drive `rounds` passes of the working set; returns per-round hits."""
    per_round = []
    wrong = 0
    with FogTopology(nodes=nodes, replicas=2, metrics=Metrics()) as topo:
        for r in range(rounds):
            before = topo.cache_hits
            for j, (a, b) in enumerate(pairs):
                got = topo.submit(_matmul_request(f"r{r}j{j}", a, b))
                if got.tobytes() != want[j]:
                    wrong += 1
            per_round.append(topo.cache_hits - before)
        stats = topo.stats()
    return {
        "per_round_hits": per_round,
        "wrong": wrong,
        "submitted": stats["submitted"],
        "cache_hits": stats["cache_hits"],
        "forwards": stats["forwards"],
        "executions": sum(n["executions"] for n in stats["nodes"].values()),
    }


@pytest.fixture(scope="module")
def measurement():
    pairs, want = _working_set(seed=20260808)
    total = len(pairs) * ROUNDS

    # ------------------------------------------------------------------
    # Hit-rate growth on the reference 4-node topology.
    # ------------------------------------------------------------------
    t0 = time.perf_counter()
    ref = _run_rounds(4, pairs, want)
    ref_wall = time.perf_counter() - t0
    assert ref["wrong"] == 0
    hit_rate = ref["cache_hits"] / total
    hit_rate_by_round = [h / len(pairs) for h in ref["per_round_hits"]]

    # ------------------------------------------------------------------
    # Scaling: same working set across 2/4/8 nodes.
    # ------------------------------------------------------------------
    scaling = {}
    for n in (2, 4, 8):
        obs = _run_rounds(n, pairs, want)
        assert obs["wrong"] == 0
        scaling[str(n)] = {
            "hit_rate": obs["cache_hits"] / total,
            "forwards": obs["forwards"],
            "executions": obs["executions"],
        }

    # ------------------------------------------------------------------
    # Churn: 6 nodes, ChaosPlan crash_rate=0.35, reject-or-exact.
    # ------------------------------------------------------------------
    metrics = Metrics()
    churn_wrong = churn_rejected = churn_completed = 0
    with FogTopology(nodes=6, replicas=2, metrics=metrics) as topo:
        driver = ChurnDriver(topo, ChaosPlan(seed=3, crash_rate=CRASH_RATE))
        for step in range(CHURN_STEPS):
            driver.step(step)
            for j, (a, b) in enumerate(pairs[:6]):
                try:
                    got = topo.submit(_matmul_request(f"c{step}j{j}", a, b))
                except FogUnavailable:
                    churn_rejected += 1
                    continue
                churn_completed += 1
                if got.tobytes() != want[j]:
                    churn_wrong += 1
        churn_stats = topo.stats()
        churn_events = driver.stats()
    assert churn_wrong == 0, "churn produced wrong answers"
    assert churn_events["crashes"] >= 1, "churn never fired"
    assert churn_stats["reroutes"] >= 1, "no reroute engaged under churn"

    return {
        "workload": "posit_matmul (posit<8,2>, stable contractions)",
        "working_set": len(pairs),
        "rounds": ROUNDS,
        "requests": total,
        "cpu_count": os.cpu_count(),
        "quick_mode": quick_mode(),
        "hit_rate": hit_rate,
        "hit_rate_bar": HIT_RATE_BAR,
        "bar_asserted": True,
        "hit_rate_by_round": hit_rate_by_round,
        "identity_ok": ref["wrong"] == 0,
        "wall_s": ref_wall,
        "scaling": scaling,
        "churn": {
            "nodes": 6,
            "replicas": 2,
            "crash_rate": CRASH_RATE,
            "seed": 3,
            "steps": CHURN_STEPS,
            "submitted": churn_stats["submitted"],
            "completed": churn_completed,
            "rejected": churn_rejected,
            "wrong": churn_wrong,
            "reroutes": churn_stats["reroutes"],
            "crashes": churn_events["crashes"],
            "revivals": churn_events["revivals"],
            "cache_hits": churn_stats["cache_hits"],
        },
    }


def test_fog_churn(benchmark, measurement, report):
    m = measurement
    assert m["identity_ok"]
    assert m["hit_rate"] >= HIT_RATE_BAR, (
        f"fog hit rate {m['hit_rate']:.2f} below bar {HIT_RATE_BAR}"
    )
    # Growth: every post-warmup round replays better than the first.
    first, rest = m["hit_rate_by_round"][0], m["hit_rate_by_round"][1:]
    assert all(r > first for r in rest), m["hit_rate_by_round"]
    assert m["churn"]["wrong"] == 0

    # pytest-benchmark timing on the hot fog path: one cached submission
    # (name + lookup + integrity re-verify), the steady-state cost.
    pairs, _ = _working_set(seed=20260808, count=1)
    topo = FogTopology(nodes=4, replicas=2, metrics=Metrics())
    try:
        a, b = pairs[0]
        topo.submit(_matmul_request("warm", a, b))
        benchmark(lambda: topo.submit(_matmul_request("hot", a, b)))
    finally:
        topo.close()

    by_round = "  ".join(f"{r:.2f}" for r in m["hit_rate_by_round"])
    scale = "  ".join(
        f"{n}n={s['hit_rate']:.2f}" for n, s in sorted(m["scaling"].items())
    )
    c = m["churn"]
    report(
        "fog_churn",
        [
            f"workload       {m['workload']}",
            f"working set    {m['working_set']} names x {m['rounds']} rounds "
            f"= {m['requests']} submissions",
            f"hit rate       {m['hit_rate']:.2f} total (bar >= {m['hit_rate_bar']})",
            f"by round       {by_round}",
            f"scaling        {scale}",
            f"churn          {c['completed']}/{c['submitted']} completed, "
            f"{c['rejected']} rejected, {c['wrong']} wrong "
            f"(crash_rate {c['crash_rate']}, {c['crashes']} crashes)",
            f"reroutes       {c['reroutes']} (replicas={c['replicas']})",
            f"identity       {'OK' if m['identity_ok'] else 'FAILED'} "
            f"(byte-exact vs direct backend)",
        ],
    )
    (REPO_ROOT / "BENCH_fog.json").write_text(json.dumps(m, indent=2) + "\n")

"""Rounding of exact values into a floating-point format.

All arithmetic in :mod:`repro.floats` computes exact intermediate results as
``(-1)**sign * sig * 2**exp`` with an unbounded integer significand, then
calls :func:`round_pack` exactly once.  This is the software analogue of the
guard/round/sticky datapath of a hardware FPU and guarantees correct rounding
in all five IEEE 754 directions.
"""

from __future__ import annotations

import enum

from .._bits import shift_right_sticky
from .format import FloatFormat

__all__ = ["RoundingMode", "round_pack"]


class RoundingMode(enum.Enum):
    """The five IEEE 754-2008 rounding directions."""

    NEAREST_EVEN = "rne"
    TOWARD_ZERO = "rtz"
    TOWARD_NEGATIVE = "rdn"
    TOWARD_POSITIVE = "rup"
    NEAREST_AWAY = "rna"


def _round_increment(mode: RoundingMode, sign: int, lsb: int, guard: int, sticky: int) -> int:
    """Decide whether a truncated significand must be incremented."""
    if mode is RoundingMode.NEAREST_EVEN:
        return int(guard and (sticky or lsb))
    if mode is RoundingMode.NEAREST_AWAY:
        return int(guard)
    if mode is RoundingMode.TOWARD_ZERO:
        return 0
    if mode is RoundingMode.TOWARD_NEGATIVE:
        return int(sign and (guard or sticky))
    if mode is RoundingMode.TOWARD_POSITIVE:
        return int((not sign) and (guard or sticky))
    raise ValueError(f"unknown rounding mode {mode!r}")


def round_pack(
    fmt: FloatFormat,
    sign: int,
    sig: int,
    exp: int,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    sticky_in: int = 0,
) -> int:
    """Round the exact value ``(-1)**sign * sig * 2**exp`` into ``fmt``.

    Args:
        fmt: Target format.
        sign: 0 or 1.
        sig: Non-negative exact significand (unbounded integer).
        exp: Power-of-two scale of ``sig``.
        mode: Rounding direction.
        sticky_in: Set when ``sig`` is already a truncation of a longer exact
            value (e.g. from division); ORed into the sticky bit.

    Returns:
        The ``fmt.width``-bit pattern of the rounded result, handling
        normal/subnormal boundaries, overflow to infinity or the largest
        finite value (direction-dependent), and underflow to zero.
    """
    if sig == 0 and not sticky_in:
        return fmt.sign_bit if sign else 0

    # Position of the value's leading bit: value in [2**msb_exp, 2**(msb_exp+1)).
    msb_exp = sig.bit_length() - 1 + exp

    if msb_exp < fmt.emin:
        # Subnormal range (or underflow): fixed scale 2**(emin - frac_bits).
        target_exp = fmt.emin - fmt.frac_bits
        biased = 0
    else:
        # Normal candidate: keep precision bits.
        target_exp = msb_exp - fmt.frac_bits
        biased = msb_exp - fmt.emin + 1

    shift = target_exp - exp
    # Shift one position less than needed so the LSB of `kept` is the guard
    # bit, with everything below compressed into sticky.
    kept, sticky = shift_right_sticky(sig, shift - 1)
    guard = kept & 1
    kept >>= 1
    sticky |= sticky_in

    kept += _round_increment(mode, sign, kept & 1, guard, sticky)

    if biased == 0:
        if kept >> fmt.frac_bits:
            # Rounded up into the smallest normal.
            biased = 1
            kept = 0
        frac = kept & fmt.frac_mask
    else:
        if kept >> fmt.precision:
            # Carry out of the significand: 1.11..1 rounded to 10.0..0.
            kept >>= 1
            biased += 1
        frac = kept & fmt.frac_mask

    if biased >= fmt.exp_mask:
        # Overflow: to infinity or to the largest finite value, depending on
        # direction (RTZ and the away-from-overflow directed modes saturate).
        saturate = mode is RoundingMode.TOWARD_ZERO or (
            mode is RoundingMode.TOWARD_NEGATIVE and not sign
        ) or (mode is RoundingMode.TOWARD_POSITIVE and sign)
        pattern = fmt.pattern_max_finite if saturate else fmt.pattern_inf
        return pattern | (fmt.sign_bit if sign else 0)

    pattern = (biased << fmt.frac_bits) | frac
    return pattern | (fmt.sign_bit if sign else 0)

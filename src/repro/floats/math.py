"""Correctly rounded elementary functions for SoftFloat.

The float counterpart of :mod:`repro.posit.math`, sharing its
rational-arithmetic kernels: compute the function to far more precision
than the target format can distinguish, then round once through the
standard packing path.  Exhaustively verified for 8-bit formats in the
test suite.
"""

from __future__ import annotations

import math

from ..posit.math import (
    _frac_atan,
    _frac_cos,
    _frac_exp,
    _frac_ln2,
    _frac_log,
    _frac_sin,
    _frac_tanh,
)
from .format import FloatFormat
from .softfloat import SoftFloat

__all__ = ["float_exp", "float_log", "float_log2", "float_sin", "float_cos", "float_atan", "float_tanh"]


def _working_bits(fmt: FloatFormat) -> int:
    return 4 * fmt.precision + 2 * fmt.exp_bits + 32


def float_exp(x: SoftFloat) -> SoftFloat:
    """Correctly rounded exp (overflows to +inf, underflows to 0/subnormal)."""
    fmt = x.fmt
    if x.is_nan():
        return SoftFloat.nan(fmt)
    if x.is_inf():
        return SoftFloat.zero(fmt) if x.sign else SoftFloat.inf(fmt)
    if x.is_zero():
        return SoftFloat.from_float(fmt, 1.0)
    v = x.to_fraction()
    ln2 = math.log(2.0)
    # Saturation guards keep intermediate powers sane.
    if float(v) > (fmt.emax + 2) * ln2:
        return SoftFloat.inf(fmt)
    if float(v) < (fmt.emin - fmt.frac_bits - 2) * ln2:
        return SoftFloat.zero(fmt)
    return SoftFloat.from_fraction(fmt, _frac_exp(v, _working_bits(fmt)))


def float_log(x: SoftFloat) -> SoftFloat:
    """Correctly rounded natural log (log of negatives/NaN -> NaN)."""
    fmt = x.fmt
    if x.is_nan() or (x.sign and not x.is_zero()):
        return SoftFloat.nan(fmt)
    if x.is_zero():
        return SoftFloat.inf(fmt, sign=1)
    if x.is_inf():
        return SoftFloat.inf(fmt)
    return SoftFloat.from_fraction(fmt, _frac_log(x.to_fraction(), _working_bits(fmt)))


def float_log2(x: SoftFloat) -> SoftFloat:
    fmt = x.fmt
    if x.is_nan() or (x.sign and not x.is_zero()):
        return SoftFloat.nan(fmt)
    if x.is_zero():
        return SoftFloat.inf(fmt, sign=1)
    if x.is_inf():
        return SoftFloat.inf(fmt)
    bits = _working_bits(fmt)
    return SoftFloat.from_fraction(
        fmt, _frac_log(x.to_fraction(), bits) / _frac_ln2(bits)
    )


def _lift_finite(kernel):
    def wrapped(x: SoftFloat) -> SoftFloat:
        fmt = x.fmt
        if x.is_nan() or x.is_inf():
            return SoftFloat.nan(fmt)
        return SoftFloat.from_fraction(fmt, kernel(x.to_fraction(), _working_bits(fmt)))

    return wrapped


float_sin = _lift_finite(_frac_sin)
float_cos = _lift_finite(_frac_cos)
float_atan = _lift_finite(_frac_atan)


def float_tanh(x: SoftFloat) -> SoftFloat:
    fmt = x.fmt
    if x.is_nan():
        return SoftFloat.nan(fmt)
    if x.is_inf():
        return SoftFloat.from_float(fmt, -1.0 if x.sign else 1.0)
    v = x.to_fraction()
    if abs(float(v)) > _working_bits(fmt):
        return SoftFloat.from_float(fmt, -1.0 if x.sign else 1.0)
    return SoftFloat.from_fraction(fmt, _frac_tanh(v, _working_bits(fmt)))

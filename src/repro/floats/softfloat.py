"""Bit-exact software floating point for arbitrary formats.

:class:`SoftFloat` is an immutable value = (format, bit pattern).  All
operations decode to exact integers, compute exactly, and round once through
:func:`repro.floats.rounding.round_pack` — the same structure as a hardware
FPU datapath, which is what makes this model usable as a reference for the
hardware-cost comparisons of Section V.
"""

from __future__ import annotations

import enum
import math
from fractions import Fraction
from typing import Optional, Tuple

from .._bits import isqrt_rem, mask
from .format import FloatFormat
from .rounding import RoundingMode, round_pack

__all__ = ["FloatClass", "SoftFloat"]


class FloatClass(enum.Enum):
    """IEEE 754 `class` operation results (the ones relevant to storage)."""

    ZERO = "zero"
    SUBNORMAL = "subnormal"
    NORMAL = "normal"
    INFINITE = "infinite"
    QUIET_NAN = "quiet_nan"
    SIGNALING_NAN = "signaling_nan"


class SoftFloat:
    """An immutable floating-point value in a parametric binary format."""

    __slots__ = ("fmt", "pattern")

    def __init__(self, fmt: FloatFormat, pattern: int):
        if not 0 <= pattern < (1 << fmt.width):
            raise ValueError(f"pattern {pattern:#x} out of range for {fmt}")
        object.__setattr__(self, "fmt", fmt)
        object.__setattr__(self, "pattern", pattern)

    def __setattr__(self, *a):  # pragma: no cover - immutability guard
        raise AttributeError("SoftFloat is immutable")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, fmt: FloatFormat, sign: int = 0) -> "SoftFloat":
        return cls(fmt, fmt.sign_bit if sign else 0)

    @classmethod
    def inf(cls, fmt: FloatFormat, sign: int = 0) -> "SoftFloat":
        return cls(fmt, fmt.pattern_inf | (fmt.sign_bit if sign else 0))

    @classmethod
    def nan(cls, fmt: FloatFormat) -> "SoftFloat":
        return cls(fmt, fmt.pattern_quiet_nan)

    @classmethod
    def max_finite(cls, fmt: FloatFormat, sign: int = 0) -> "SoftFloat":
        return cls(fmt, fmt.pattern_max_finite | (fmt.sign_bit if sign else 0))

    @classmethod
    def min_subnormal(cls, fmt: FloatFormat, sign: int = 0) -> "SoftFloat":
        return cls(fmt, fmt.pattern_min_subnormal | (fmt.sign_bit if sign else 0))

    @classmethod
    def from_float(
        cls,
        fmt: FloatFormat,
        value: float,
        mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    ) -> "SoftFloat":
        """Convert a Python float (binary64) into ``fmt``, rounding once."""
        if math.isnan(value):
            return cls.nan(fmt)
        sign = int(math.copysign(1.0, value) < 0)
        if math.isinf(value):
            return cls.inf(fmt, sign)
        if value == 0.0:
            return cls.zero(fmt, sign)
        mantissa, exp2 = math.frexp(abs(value))  # mantissa in [0.5, 1)
        sig = int(mantissa * (1 << 53))
        return cls(fmt, round_pack(fmt, sign, sig, exp2 - 53, mode))

    @classmethod
    def from_exact(
        cls,
        fmt: FloatFormat,
        sign: int,
        sig: int,
        exp: int,
        mode: RoundingMode = RoundingMode.NEAREST_EVEN,
        sticky: int = 0,
    ) -> "SoftFloat":
        """Round the exact value ``(-1)**sign * sig * 2**exp`` into ``fmt``."""
        return cls(fmt, round_pack(fmt, sign, sig, exp, mode, sticky))

    @classmethod
    def from_fraction(
        cls,
        fmt: FloatFormat,
        value: Fraction,
        mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    ) -> "SoftFloat":
        """Correctly round an exact rational into ``fmt``."""
        if value == 0:
            return cls.zero(fmt)
        sign = int(value < 0)
        num, den = abs(value).numerator, abs(value).denominator
        # Scale the numerator so the integer quotient has ample precision.
        extra = fmt.precision + 3 + max(0, den.bit_length() - num.bit_length())
        q, r = divmod(num << extra, den)
        return cls(fmt, round_pack(fmt, sign, q, -extra, mode, sticky_in=int(r != 0)))

    # ------------------------------------------------------------------
    # Field access and classification
    # ------------------------------------------------------------------
    @property
    def sign(self) -> int:
        return self.pattern >> (self.fmt.width - 1)

    @property
    def biased_exponent(self) -> int:
        return (self.pattern >> self.fmt.frac_bits) & self.fmt.exp_mask

    @property
    def fraction(self) -> int:
        return self.pattern & self.fmt.frac_mask

    def classify(self) -> FloatClass:
        e, f = self.biased_exponent, self.fraction
        if e == self.fmt.exp_mask:
            if f == 0:
                return FloatClass.INFINITE
            if f >> (self.fmt.frac_bits - 1):
                return FloatClass.QUIET_NAN
            return FloatClass.SIGNALING_NAN
        if e == 0:
            return FloatClass.ZERO if f == 0 else FloatClass.SUBNORMAL
        return FloatClass.NORMAL

    def is_nan(self) -> bool:
        return self.classify() in (FloatClass.QUIET_NAN, FloatClass.SIGNALING_NAN)

    def is_inf(self) -> bool:
        return self.classify() is FloatClass.INFINITE

    def is_zero(self) -> bool:
        return self.classify() is FloatClass.ZERO

    def is_subnormal(self) -> bool:
        return self.classify() is FloatClass.SUBNORMAL

    def is_finite(self) -> bool:
        return self.biased_exponent != self.fmt.exp_mask

    def decode(self) -> Optional[Tuple[int, int, int]]:
        """Decode a finite value to exact ``(sign, sig, exp)``.

        The value equals ``(-1)**sign * sig * 2**exp``; returns ``None`` for
        NaN and infinity.  A zero decodes to ``sig == 0``.
        """
        cls = self.classify()
        if cls in (FloatClass.INFINITE, FloatClass.QUIET_NAN, FloatClass.SIGNALING_NAN):
            return None
        e, f = self.biased_exponent, self.fraction
        if e == 0:
            return self.sign, f, self.fmt.emin - self.fmt.frac_bits
        return self.sign, f | (1 << self.fmt.frac_bits), e - self.fmt.bias - self.fmt.frac_bits

    def to_fraction(self) -> Fraction:
        """Exact rational value (raises on NaN/inf)."""
        decoded = self.decode()
        if decoded is None:
            raise ValueError(f"{self!r} has no rational value")
        sign, sig, exp = decoded
        v = Fraction(sig) * (Fraction(2) ** exp)
        return -v if sign else v

    def to_float(self) -> float:
        """Convert to a Python float (exact whenever binary64 can hold it)."""
        cls = self.classify()
        if cls in (FloatClass.QUIET_NAN, FloatClass.SIGNALING_NAN):
            return math.nan
        if cls is FloatClass.INFINITE:
            return -math.inf if self.sign else math.inf
        sign, sig, exp = self.decode()
        value = math.ldexp(sig, exp)
        return -value if sign else value

    def convert(self, fmt: FloatFormat, mode: RoundingMode = RoundingMode.NEAREST_EVEN) -> "SoftFloat":
        """Convert to another format, rounding once (NaN stays NaN)."""
        cls = self.classify()
        if cls in (FloatClass.QUIET_NAN, FloatClass.SIGNALING_NAN):
            return SoftFloat.nan(fmt)
        if cls is FloatClass.INFINITE:
            return SoftFloat.inf(fmt, self.sign)
        sign, sig, exp = self.decode()
        if sig == 0:
            return SoftFloat.zero(fmt, sign)
        return SoftFloat.from_exact(fmt, sign, sig, exp, mode)

    # ------------------------------------------------------------------
    # Arithmetic (correctly rounded)
    # ------------------------------------------------------------------
    def _require_same_format(self, other: "SoftFloat"):
        if self.fmt != other.fmt:
            raise ValueError(f"format mismatch: {self.fmt} vs {other.fmt}")

    def add(self, other: "SoftFloat", mode: RoundingMode = RoundingMode.NEAREST_EVEN) -> "SoftFloat":
        """IEEE addition with a single rounding."""
        self._require_same_format(other)
        fmt = self.fmt
        if self.is_nan() or other.is_nan():
            return SoftFloat.nan(fmt)
        if self.is_inf() or other.is_inf():
            if self.is_inf() and other.is_inf():
                if self.sign != other.sign:
                    return SoftFloat.nan(fmt)  # inf - inf
                return SoftFloat.inf(fmt, self.sign)
            return SoftFloat.inf(fmt, self.sign if self.is_inf() else other.sign)

        sa, ma, ea = self.decode()
        sb, mb, eb = other.decode()
        # Exact signed sum on a common scale.
        e = min(ea, eb)
        total = (ma if not sa else -ma) * (1 << (ea - e)) + (mb if not sb else -mb) * (1 << (eb - e))
        if total == 0:
            # Exact cancellation (or 0 + 0): sign depends on the direction.
            if sa == sb:
                return SoftFloat.zero(fmt, sa)
            sign = 1 if mode is RoundingMode.TOWARD_NEGATIVE else 0
            return SoftFloat.zero(fmt, sign)
        sign = int(total < 0)
        return SoftFloat.from_exact(fmt, sign, abs(total), e, mode)

    def sub(self, other: "SoftFloat", mode: RoundingMode = RoundingMode.NEAREST_EVEN) -> "SoftFloat":
        return self.add(other.negate(), mode)

    def mul(self, other: "SoftFloat", mode: RoundingMode = RoundingMode.NEAREST_EVEN) -> "SoftFloat":
        """IEEE multiplication with a single rounding."""
        self._require_same_format(other)
        fmt = self.fmt
        if self.is_nan() or other.is_nan():
            return SoftFloat.nan(fmt)
        sign = self.sign ^ other.sign
        if self.is_inf() or other.is_inf():
            if self.is_zero() or other.is_zero():
                return SoftFloat.nan(fmt)  # inf * 0
            return SoftFloat.inf(fmt, sign)
        _, ma, ea = self.decode()
        _, mb, eb = other.decode()
        if ma == 0 or mb == 0:
            return SoftFloat.zero(fmt, sign)
        return SoftFloat.from_exact(fmt, sign, ma * mb, ea + eb, mode)

    def div(self, other: "SoftFloat", mode: RoundingMode = RoundingMode.NEAREST_EVEN) -> "SoftFloat":
        """IEEE division with a single rounding (sticky from the remainder)."""
        self._require_same_format(other)
        fmt = self.fmt
        if self.is_nan() or other.is_nan():
            return SoftFloat.nan(fmt)
        sign = self.sign ^ other.sign
        if self.is_inf():
            return SoftFloat.nan(fmt) if other.is_inf() else SoftFloat.inf(fmt, sign)
        if other.is_inf():
            return SoftFloat.zero(fmt, sign)
        _, ma, ea = self.decode()
        _, mb, eb = other.decode()
        if mb == 0:
            return SoftFloat.nan(fmt) if ma == 0 else SoftFloat.inf(fmt, sign)
        if ma == 0:
            return SoftFloat.zero(fmt, sign)
        # Pre-shift so the quotient carries precision + guard information.
        extra = fmt.precision + 3 + max(0, mb.bit_length() - ma.bit_length())
        q, r = divmod(ma << extra, mb)
        return SoftFloat.from_exact(fmt, sign, q, ea - eb - extra, mode, sticky=int(r != 0))

    def sqrt(self, mode: RoundingMode = RoundingMode.NEAREST_EVEN) -> "SoftFloat":
        """IEEE square root with a single rounding."""
        fmt = self.fmt
        if self.is_nan():
            return SoftFloat.nan(fmt)
        if self.is_zero():
            return self
        if self.sign:
            return SoftFloat.nan(fmt)
        if self.is_inf():
            return self
        _, m, e = self.decode()
        # Normalize to an even exponent with ample significand width.
        shift = 2 * fmt.precision + 4
        if (e - shift) % 2:
            shift += 1  # keep the result exponent integral
        s, r = isqrt_rem(m << shift)
        return SoftFloat.from_exact(fmt, 0, s, (e - shift) // 2, mode, sticky=int(r != 0))

    def fma(
        self,
        other: "SoftFloat",
        addend: "SoftFloat",
        mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    ) -> "SoftFloat":
        """Fused multiply-add: ``self * other + addend`` with one rounding."""
        self._require_same_format(other)
        self._require_same_format(addend)
        fmt = self.fmt
        if self.is_nan() or other.is_nan() or addend.is_nan():
            return SoftFloat.nan(fmt)
        prod_sign = self.sign ^ other.sign
        if self.is_inf() or other.is_inf():
            if self.is_zero() or other.is_zero():
                return SoftFloat.nan(fmt)
            if addend.is_inf() and addend.sign != prod_sign:
                return SoftFloat.nan(fmt)
            return SoftFloat.inf(fmt, prod_sign)
        if addend.is_inf():
            return SoftFloat.inf(fmt, addend.sign)
        _, ma, ea = self.decode()
        _, mb, eb = other.decode()
        sc, mc, ec = addend.decode()
        prod = ma * mb
        e = min(ea + eb, ec)
        total = (prod if not prod_sign else -prod) * (1 << (ea + eb - e)) + (
            mc if not sc else -mc
        ) * (1 << (ec - e))
        if total == 0:
            if prod == 0 and mc == 0:
                # 0*0 + 0: IEEE sign rules for the sum of signed zeros.
                if prod_sign == sc:
                    return SoftFloat.zero(fmt, sc)
                return SoftFloat.zero(fmt, int(mode is RoundingMode.TOWARD_NEGATIVE))
            if prod == 0:
                return SoftFloat.zero(fmt, sc)
            if mc == 0 and prod_sign == sc:
                return SoftFloat.zero(fmt, sc)
            return SoftFloat.zero(fmt, int(mode is RoundingMode.TOWARD_NEGATIVE))
        return SoftFloat.from_exact(fmt, int(total < 0), abs(total), e, mode)

    def negate(self) -> "SoftFloat":
        """Flip the sign bit (valid for every operand, including NaN)."""
        return SoftFloat(self.fmt, self.pattern ^ self.fmt.sign_bit)

    def abs(self) -> "SoftFloat":
        return SoftFloat(self.fmt, self.pattern & ~self.fmt.sign_bit & mask(self.fmt.width))

    # Operator sugar (default rounding).
    def __add__(self, other):
        return self.add(other)

    def __sub__(self, other):
        return self.sub(other)

    def __mul__(self, other):
        return self.mul(other)

    def __truediv__(self, other):
        return self.div(other)

    def __neg__(self):
        return self.negate()

    def __abs__(self):
        return self.abs()

    # ------------------------------------------------------------------
    # Comparison (IEEE quiet predicates; NaN is unordered)
    # ------------------------------------------------------------------
    def _ordered_key(self) -> Optional[Fraction]:
        if self.is_nan():
            return None
        if self.is_inf():
            big = Fraction(2) ** (self.fmt.emax + self.fmt.width + 1)
            return -big if self.sign else big
        return self.to_fraction()

    def __eq__(self, other):
        if not isinstance(other, SoftFloat):
            return NotImplemented
        a, b = self._ordered_key(), other._ordered_key()
        if a is None or b is None:
            return False  # NaN != everything, including itself
        return a == b  # +0 == -0

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __lt__(self, other):
        a, b = self._ordered_key(), other._ordered_key()
        if a is None or b is None:
            return False
        return a < b

    def __le__(self, other):
        a, b = self._ordered_key(), other._ordered_key()
        if a is None or b is None:
            return False
        return a <= b

    def __gt__(self, other):
        a, b = self._ordered_key(), other._ordered_key()
        if a is None or b is None:
            return False
        return a > b

    def __ge__(self, other):
        a, b = self._ordered_key(), other._ordered_key()
        if a is None or b is None:
            return False
        return a >= b

    def __hash__(self):
        return hash((self.fmt, self.pattern))

    def __repr__(self):
        return f"SoftFloat({self.fmt.name}, {self.pattern:#0{2 + (self.fmt.width + 3) // 4}x} = {self.to_float()!r})"

"""Floating-point format descriptors.

A format is fully described by its exponent and fraction field widths; every
derived constant (bias, extremal exponents, interesting bit patterns) follows
from those two numbers, which is what makes the "tailor the format to the
application" approach of Section II practical.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._bits import mask

__all__ = [
    "FloatFormat",
    "BINARY16",
    "BINARY32",
    "BINARY64",
    "BFLOAT16",
    "FP19",
    "FP8_E4M3",
    "FP8_E5M2",
]


@dataclass(frozen=True)
class FloatFormat:
    """An IEEE-754-style binary interchange format ``{1, exp_bits, frac_bits}``.

    Attributes:
        name: Human-readable format name.
        exp_bits: Width of the biased exponent field.
        frac_bits: Width of the trailing significand (fraction) field.
    """

    name: str
    exp_bits: int
    frac_bits: int

    def __post_init__(self):
        if self.exp_bits < 2:
            raise ValueError("a float format needs at least 2 exponent bits")
        if self.frac_bits < 1:
            raise ValueError("a float format needs at least 1 fraction bit")

    # ------------------------------------------------------------------
    # Derived constants
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Total storage width in bits (sign + exponent + fraction)."""
        return 1 + self.exp_bits + self.frac_bits

    @property
    def precision(self) -> int:
        """Significand precision in bits, including the hidden bit."""
        return self.frac_bits + 1

    @property
    def bias(self) -> int:
        """Exponent bias."""
        return (1 << (self.exp_bits - 1)) - 1

    @property
    def emax(self) -> int:
        """Largest unbiased exponent of a normal number."""
        return self.bias

    @property
    def emin(self) -> int:
        """Smallest unbiased exponent of a normal number."""
        return 1 - self.bias

    @property
    def exp_mask(self) -> int:
        return mask(self.exp_bits)

    @property
    def frac_mask(self) -> int:
        return mask(self.frac_bits)

    @property
    def sign_bit(self) -> int:
        """Mask selecting the sign bit in a stored pattern."""
        return 1 << (self.width - 1)

    # ------------------------------------------------------------------
    # Landmark bit patterns (positive sign)
    # ------------------------------------------------------------------
    @property
    def pattern_inf(self) -> int:
        """Pattern of +infinity."""
        return self.exp_mask << self.frac_bits

    @property
    def pattern_quiet_nan(self) -> int:
        """Canonical quiet NaN pattern (MSB of the fraction set)."""
        return self.pattern_inf | (1 << (self.frac_bits - 1))

    @property
    def pattern_max_finite(self) -> int:
        """Pattern of the largest finite positive value."""
        return ((self.exp_mask - 1) << self.frac_bits) | self.frac_mask

    @property
    def pattern_min_normal(self) -> int:
        """Pattern of the smallest positive normal value."""
        return 1 << self.frac_bits

    @property
    def pattern_min_subnormal(self) -> int:
        """Pattern of the smallest positive subnormal value."""
        return 1

    # ------------------------------------------------------------------
    # Landmark magnitudes, as (significand, exponent) pairs meaning
    # significand * 2**exponent
    # ------------------------------------------------------------------
    @property
    def max_finite(self) -> float:
        """Value of the largest finite number, as a Python float."""
        sig = (1 << self.precision) - 1
        import math

        return math.ldexp(sig, self.emax - self.frac_bits)

    @property
    def min_normal(self) -> float:
        import math

        return math.ldexp(1, self.emin)

    @property
    def min_subnormal(self) -> float:
        import math

        return math.ldexp(1, self.emin - self.frac_bits)

    def dynamic_range_decades(self) -> float:
        """Orders of magnitude between the smallest and largest *normal* value.

        Fig. 10 of the paper quotes 9 decades for binary16 normals and about
        76 for bfloat16.
        """
        import math

        return math.log10(self.max_finite) - math.log10(self.min_normal)

    def __str__(self) -> str:
        return f"{self.name}{{1,{self.exp_bits},{self.frac_bits}}}"


BINARY16 = FloatFormat("binary16", exp_bits=5, frac_bits=10)
BINARY32 = FloatFormat("binary32", exp_bits=8, frac_bits=23)
BINARY64 = FloatFormat("binary64", exp_bits=11, frac_bits=52)
#: Google's bfloat16: binary32 range at 8-bit precision.
BFLOAT16 = FloatFormat("bfloat16", exp_bits=8, frac_bits=7)
#: Intel Agilex DSP-block FP19 {1, 8, 10}: binary32 range, binary16 fraction.
FP19 = FloatFormat("fp19", exp_bits=8, frac_bits=10)
FP8_E4M3 = FloatFormat("fp8_e4m3", exp_bits=4, frac_bits=3)
FP8_E5M2 = FloatFormat("fp8_e5m2", exp_bits=5, frac_bits=2)

"""IEEE 754 comparison predicates.

Section V of the paper points out that the IEEE 754 standard requires 22
different comparison operations because NaN compares "unordered" to
everything (including itself) while negative and positive zero compare
equal.  This module implements the four mutually exclusive relations
(less / equal / greater / unordered) and derives the full predicate table
from them, plus the ``totalOrder`` predicate that *does* give floats a
total order on bit patterns (the property posits get for free from two's
complement, cf. Fig. 7).
"""

from __future__ import annotations

from typing import Callable, Dict

from .softfloat import SoftFloat

__all__ = [
    "relation",
    "compare_quiet_equal",
    "compare_quiet_not_equal",
    "compare_quiet_unordered",
    "compare_quiet_less",
    "compare_quiet_less_equal",
    "compare_quiet_greater",
    "compare_quiet_greater_equal",
    "compare_signaling_less",
    "compare_signaling_less_equal",
    "compare_signaling_greater",
    "compare_signaling_greater_equal",
    "total_order",
    "ALL_PREDICATES",
]


def relation(a: SoftFloat, b: SoftFloat) -> str:
    """Return the IEEE relation between two values.

    One of ``"lt"``, ``"eq"``, ``"gt"``, ``"un"`` (unordered).  ``+0`` and
    ``-0`` are equal; NaN is unordered against everything.
    """
    ka, kb = a._ordered_key(), b._ordered_key()
    if ka is None or kb is None:
        return "un"
    if ka < kb:
        return "lt"
    if ka > kb:
        return "gt"
    return "eq"


def _quiet(accept) -> Callable[[SoftFloat, SoftFloat], bool]:
    def predicate(a: SoftFloat, b: SoftFloat) -> bool:
        return relation(a, b) in accept

    return predicate


def _signaling(accept) -> Callable[[SoftFloat, SoftFloat], bool]:
    def predicate(a: SoftFloat, b: SoftFloat) -> bool:
        rel = relation(a, b)
        if rel == "un":
            raise FloatingPointError("invalid: unordered operands in signaling comparison")
        return rel in accept

    return predicate


compare_quiet_equal = _quiet({"eq"})
compare_quiet_not_equal = _quiet({"lt", "gt", "un"})
compare_quiet_unordered = _quiet({"un"})
compare_quiet_ordered = _quiet({"lt", "eq", "gt"})
compare_quiet_less = _quiet({"lt"})
compare_quiet_less_equal = _quiet({"lt", "eq"})
compare_quiet_greater = _quiet({"gt"})
compare_quiet_greater_equal = _quiet({"gt", "eq"})
compare_quiet_less_unordered = _quiet({"lt", "un"})
compare_quiet_greater_unordered = _quiet({"gt", "un"})
compare_quiet_not_less = _quiet({"gt", "eq", "un"})
compare_quiet_not_greater = _quiet({"lt", "eq", "un"})

compare_signaling_equal = _signaling({"eq"})
compare_signaling_not_equal = _signaling({"lt", "gt"})
compare_signaling_less = _signaling({"lt"})
compare_signaling_less_equal = _signaling({"lt", "eq"})
compare_signaling_greater = _signaling({"gt"})
compare_signaling_greater_equal = _signaling({"gt", "eq"})
compare_signaling_not_less = _signaling({"gt", "eq"})
compare_signaling_not_greater = _signaling({"lt", "eq"})
compare_signaling_less_greater = _signaling({"lt", "gt"})
compare_signaling_not_less_greater = _signaling({"eq"})


def total_order(a: SoftFloat, b: SoftFloat) -> bool:
    """IEEE 754 ``totalOrder(a, b)``: a <= b in the total ordering.

    Orders ``-NaN < -inf < ... < -0 < +0 < ... < +inf < +NaN``: exactly the
    sign-magnitude pattern order, in contrast to the two's-complement
    integer order that posits use (Fig. 6 vs Fig. 7).
    """
    if a.fmt != b.fmt:
        raise ValueError("totalOrder requires matching formats")
    width = a.fmt.width

    def key(x: SoftFloat) -> int:
        # Map sign-magnitude patterns onto a monotone integer scale.
        if x.sign:
            return -(x.pattern & ((1 << (width - 1)) - 1))
        return x.pattern + 1

    return key(a) <= key(b)


#: The 22 comparison predicates IEEE 754-2008 defines (table 5.1 / 5.3.).
ALL_PREDICATES: Dict[str, Callable[[SoftFloat, SoftFloat], bool]] = {
    "compareQuietEqual": compare_quiet_equal,
    "compareQuietNotEqual": compare_quiet_not_equal,
    "compareQuietUnordered": compare_quiet_unordered,
    "compareQuietOrdered": compare_quiet_ordered,
    "compareQuietLess": compare_quiet_less,
    "compareQuietLessEqual": compare_quiet_less_equal,
    "compareQuietGreater": compare_quiet_greater,
    "compareQuietGreaterEqual": compare_quiet_greater_equal,
    "compareQuietLessUnordered": compare_quiet_less_unordered,
    "compareQuietGreaterUnordered": compare_quiet_greater_unordered,
    "compareQuietNotLess": compare_quiet_not_less,
    "compareQuietNotGreater": compare_quiet_not_greater,
    "compareSignalingEqual": compare_signaling_equal,
    "compareSignalingNotEqual": compare_signaling_not_equal,
    "compareSignalingLess": compare_signaling_less,
    "compareSignalingLessEqual": compare_signaling_less_equal,
    "compareSignalingGreater": compare_signaling_greater,
    "compareSignalingGreaterEqual": compare_signaling_greater_equal,
    "compareSignalingNotLess": compare_signaling_not_less,
    "compareSignalingNotGreater": compare_signaling_not_greater,
    "compareSignalingLessGreater": compare_signaling_less_greater,
    "compareSignalingNotLessGreater": compare_signaling_not_less_greater,
}

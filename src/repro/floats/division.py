"""FMA-based division: the Section II opening example.

"A good illustration is how the fused multiply-and-add became the
floating-point unit of choice at the turn of the century: it could replace
an adder and a multiplier, but also enable efficient and flexible
implementations of division, square root, elementary functions."

This module implements Markstein-style Newton-Raphson division on top of
:meth:`SoftFloat.fma`: a reciprocal seed from a small table, quadratically
converging FMA refinement steps, and the final residual-correction step
that makes the quotient *correctly rounded* — the trick IA-64 shipped [6].
Operand/quotient combinations outside the analysis (overflow, subnormal
quotients or residuals, dividends in the bottom normal octave) fall back
to the datapath divider, mirroring IA-64's software traps.

Verified: 0 mismatches vs the correctly rounded datapath over >26k random
binary16 operand pairs.  Caveat: at very low precision (fp8's 4-bit
significand) the correction step's error analysis no longer holds and
~1.5% of quotients miss by one ULP — tiny formats should use a direct
divider anyway.
"""

from __future__ import annotations

from typing import List, Tuple

from .format import FloatFormat
from .softfloat import SoftFloat

__all__ = ["newton_raphson_divide", "reciprocal_seed", "iterations_needed"]

#: Seed table: 2^k entries of 1/x for x in [1, 2), indexed by the top
#: fraction bits — the classic frcpa-style lookup.
_SEED_BITS = 5


def reciprocal_seed(fmt: FloatFormat, b: SoftFloat) -> SoftFloat:
    """Table-seeded reciprocal estimate, accurate to ~2^-(SEED_BITS+1)."""
    sign, sig, exp = b.decode()
    # Normalize: b = m * 2^e with m in [1, 2).
    msb = sig.bit_length() - 1
    e = exp + msb
    top = (sig << _SEED_BITS) >> msb if msb >= 0 else sig << (_SEED_BITS - msb)
    index = top & ((1 << _SEED_BITS) - 1)
    m_mid = 1.0 + (index + 0.5) / (1 << _SEED_BITS)
    approx = (1.0 / m_mid) * 2.0**-e
    if sign:
        approx = -approx
    return SoftFloat.from_float(fmt, approx)


def iterations_needed(fmt: FloatFormat) -> int:
    """Newton iterations to reach full precision from the table seed.

    Accuracy doubles per iteration; the +3 guard bits give the Markstein
    correction step the near-correctly-rounded reciprocal its correctness
    argument needs (12 bits for an 11-bit format is exactly on the
    boundary and loses tie cases).
    """
    bits = _SEED_BITS + 1
    iters = 0
    while bits < fmt.precision + 3:
        bits *= 2
        iters += 1
    return iters


def newton_raphson_divide(
    a: SoftFloat, b: SoftFloat, trace: bool = False
) -> Tuple[SoftFloat, List[float]]:
    """Compute ``a / b`` with FMA-only arithmetic.

    Returns ``(quotient, error_trace)``; the trace records the relative
    error of the reciprocal estimate after each refinement (empty unless
    ``trace``).  Special operands fall back to the datapath division
    (hardware does the same: specials bypass the iteration).
    """
    fmt = a.fmt
    if (
        a.is_nan()
        or b.is_nan()
        or a.is_inf()
        or b.is_inf()
        or a.is_zero()
        or b.is_zero()
    ):
        return a.div(b), []

    one = SoftFloat.from_float(fmt, 1.0)
    y = reciprocal_seed(fmt, b)
    errors: List[float] = []

    for _ in range(iterations_needed(fmt)):
        # e = 1 - b*y ;  y = y + y*e   (both FMA-shaped)
        e = b.negate().fma(y, one)
        y = y.fma(e, y)
        if trace and not y.is_nan():
            true_recip = 1.0 / b.to_float()
            errors.append(abs(y.to_float() - true_recip) / abs(true_recip))

    # Markstein final step: q = a*y; r = a - b*q; q' = q + r*y.
    q = a.mul(y)
    r = b.negate().fma(q, a)
    q = r.fma(y, q)

    # Quotients that overflow or land in the subnormal range — or whose
    # residual underflowed (losing the correction's precision) — break the
    # step's error analysis: exactly the cases IA-64 trapped to software
    # (the Fig. 6 "trap" regions).  Fall back to the datapath.
    if (
        not q.is_finite()
        or q.is_subnormal()
        or q.is_zero()
        or r.is_subnormal()
        or a.biased_exponent <= 1  # dividend at the bottom of the normal
        # range: the residual cannot carry a full ULP of information
    ):
        return a.div(b), errors
    return q, errors

"""Parametric IEEE-754-style binary floating point, in exact integer arithmetic.

This package provides a bit-exact software model of binary floating-point
formats parameterized by exponent and fraction widths, in the spirit of the
formats discussed in the paper: binary16 (IEEE half), bfloat16 (Google),
FP19 {1, 8, 10} (Intel Agilex DSP), binary32 and binary64.

The model supports the full IEEE 754 behaviour that Section V of the paper
contrasts with posits: subnormals ("trap to software" regions of Fig. 6),
signed zeros, infinities, NaN with its unordered comparisons, and the five
rounding directions.

>>> from repro.floats import BINARY16, SoftFloat
>>> x = SoftFloat.from_float(BINARY16, 1.5)
>>> y = SoftFloat.from_float(BINARY16, 2.25)
>>> (x * y).to_float()
3.375
"""

from .format import (
    FloatFormat,
    BINARY16,
    BINARY32,
    BINARY64,
    BFLOAT16,
    FP19,
    FP8_E4M3,
    FP8_E5M2,
)
from .rounding import RoundingMode
from .softfloat import FloatClass, SoftFloat
from .kulisch import KulischAccumulator
from .math import (
    float_exp,
    float_log,
    float_log2,
    float_sin,
    float_cos,
    float_atan,
    float_tanh,
)
from .division import newton_raphson_divide, reciprocal_seed, iterations_needed
from .compare import (
    compare_quiet_equal,
    compare_quiet_unordered,
    compare_signaling_less,
    compare_signaling_less_equal,
    compare_quiet_greater,
    compare_quiet_less,
    total_order,
    ALL_PREDICATES,
)

__all__ = [
    "FloatFormat",
    "BINARY16",
    "BINARY32",
    "BINARY64",
    "BFLOAT16",
    "FP19",
    "FP8_E4M3",
    "FP8_E5M2",
    "RoundingMode",
    "FloatClass",
    "SoftFloat",
    "compare_quiet_equal",
    "compare_quiet_unordered",
    "compare_signaling_less",
    "compare_signaling_less_equal",
    "compare_quiet_greater",
    "compare_quiet_less",
    "total_order",
    "ALL_PREDICATES",
    "KulischAccumulator",
    "float_exp",
    "float_log",
    "float_log2",
    "float_sin",
    "float_cos",
    "float_atan",
    "float_tanh",
    "newton_raphson_divide",
    "reciprocal_seed",
    "iterations_needed",
]

"""Kulisch accumulator: exact dot products for floats.

The float-side counterpart of the posit quire: a fixed-point register wide
enough to hold any product of two floats exactly, so a dot product rounds
only once.  Kulisch accumulators predate the quire by decades and are the
reference point for the paper's "16-bit posit converts to 58-bit fixed
point" discussion — a binary16 Kulisch register needs
``2*(emax - emin + precision) + guard`` bits (~80 more than the quire-like
58 once infinities are excluded).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable

from .format import FloatFormat
from .softfloat import SoftFloat

__all__ = ["KulischAccumulator"]


class KulischAccumulator:
    """Exact accumulator of float products, rounded once on extraction."""

    def __init__(self, fmt: FloatFormat):
        self.fmt = fmt
        # LSB weight: the square of the smallest subnormal.
        self.frac_scale = 2 * (fmt.frac_bits - fmt.emin)
        self._acc = 0
        self._special = None  # None | 'nan' | '+inf' | '-inf'

    @staticmethod
    def register_width(fmt: FloatFormat, guard_bits: int = 31) -> int:
        """Bits a hardware register needs (finite operands, +guard)."""
        span = 2 * (fmt.emax + 1) + 2 * (fmt.frac_bits - fmt.emin)
        return 1 + guard_bits + span

    def clear(self) -> "KulischAccumulator":
        self._acc = 0
        self._special = None
        return self

    def add_product(self, a: SoftFloat, b: SoftFloat) -> "KulischAccumulator":
        if a.is_nan() or b.is_nan():
            self._special = "nan"
            return self
        if a.is_inf() or b.is_inf():
            if a.is_zero() or b.is_zero():
                self._special = "nan"
                return self
            sign = a.sign ^ b.sign
            inf = "-inf" if sign else "+inf"
            if self._special not in (None, inf):
                self._special = "nan"  # opposing infinities
            else:
                self._special = inf
            return self
        da, db = a.decode(), b.decode()
        sa, ma, ea = da
        sb, mb, eb = db
        if ma == 0 or mb == 0:
            return self
        term = (ma * mb) << (ea + eb + self.frac_scale)
        self._acc += -term if sa ^ sb else term
        return self

    def dot(self, xs: Iterable[SoftFloat], ys: Iterable[SoftFloat]) -> SoftFloat:
        for x, y in zip(xs, ys):
            self.add_product(x, y)
        return self.to_float()

    def to_fraction(self) -> Fraction:
        if self._special is not None:
            raise ValueError(f"accumulator holds {self._special}")
        return Fraction(self._acc) / (Fraction(2) ** self.frac_scale)

    def to_float(self) -> SoftFloat:
        if self._special == "nan":
            return SoftFloat.nan(self.fmt)
        if self._special == "+inf":
            return SoftFloat.inf(self.fmt, 0)
        if self._special == "-inf":
            return SoftFloat.inf(self.fmt, 1)
        if self._acc == 0:
            return SoftFloat.zero(self.fmt)
        return SoftFloat.from_exact(
            self.fmt, int(self._acc < 0), abs(self._acc), -self.frac_scale
        )

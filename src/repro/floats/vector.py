"""Bit-parallel IEEE-style codecs: field arithmetic instead of value tables.

:class:`repro.engine.softfloat_backend.SoftFloatCodec` tabulates every code
of a <= 20-bit format; binary32 has 2**32 codes, so this module computes the
same decode/encode maps arithmetically on whole numpy arrays: split sign /
biased exponent / fraction on decode, and on encode round the 53-bit float64
significand straight at the target precision with nearest/ties-to-even,
gradual underflow, overflow to infinity at ``max_finite + ulp/2``, signed
zero, and the canonical (positive) quiet NaN — bit-identical to the scalar
:class:`repro.floats.softfloat.SoftFloat` model.

The trick that keeps encode branch-free: assemble the magnitude pattern as
``kept + (max(be, 1) - 1) << frac_bits`` where ``kept`` is the rounded
significand *including* its hidden bit and ``be`` the biased exponent.  A
subnormal result (``be < 1``) takes extra right-shift in the cut so its
hidden bit vanishes; a significand carry (``kept`` reaching ``2**precision``)
bumps the exponent field arithmetically; and an exponent bumped past the
top lands at or above the infinity pattern, which the overflow clamp turns
into ±inf — exactly IEEE round-to-nearest-even behaviour in one addition.
"""

from __future__ import annotations

import numpy as np

from .format import FloatFormat

__all__ = [
    "MAX_WIDE_WIDTH",
    "check_wide_format",
    "vector_decode",
    "vector_encode",
]

#: Widest float format the bit-parallel codec supports.
MAX_WIDE_WIDTH = 32


def check_wide_format(fmt: FloatFormat) -> None:
    """Reject formats whose values float64 cannot hold exactly.

    Exact decode (and hence correct encode) needs every finite value of the
    format to be a float64: precision within 53 bits and the exponent range
    inside float64's (normals up to 2**1024, subnormals down to 2**-1074).
    """
    if fmt.width > MAX_WIDE_WIDTH:
        raise ValueError(
            f"wide float codecs support at most {MAX_WIDE_WIDTH}-bit "
            f"formats, got {fmt}"
        )
    if fmt.precision > 53 or fmt.emax > 1023 or fmt.emin - fmt.frac_bits < -1074:
        raise ValueError(
            f"{fmt} exceeds float64's exact range; the wide codec cannot "
            "represent its values exactly"
        )


def vector_decode(fmt: FloatFormat, codes: np.ndarray) -> np.ndarray:
    """Exact float64 value of each code (all NaN patterns -> +nan)."""
    check_wide_format(fmt)
    codes = np.asarray(codes).astype(np.int64) & np.int64((1 << fmt.width) - 1)
    sign = codes >> (fmt.width - 1)
    exp = (codes >> fmt.frac_bits) & fmt.exp_mask
    frac = codes & fmt.frac_mask
    # Normals: (2**frac_bits + frac) * 2**(exp - bias - frac_bits);
    # subnormals (exp field 0): frac * 2**(emin - frac_bits), incl. +-0.
    mag = np.ldexp(
        ((1 << fmt.frac_bits) + frac).astype(np.float64),
        (exp - fmt.bias - fmt.frac_bits).astype(np.int32),
    )
    mag = np.where(
        exp == 0, np.ldexp(frac.astype(np.float64), fmt.emin - fmt.frac_bits), mag
    )
    values = np.where(sign == 1, -mag, mag)
    top = exp == fmt.exp_mask
    values = np.where(top & (frac == 0), np.where(sign == 1, -np.inf, np.inf), values)
    return np.where(top & (frac != 0), np.nan, values)


def vector_encode(fmt: FloatFormat, x: np.ndarray) -> np.ndarray:
    """Round a float64 array to codes: IEEE nearest, ties to even."""
    check_wide_format(fmt)
    x = np.asarray(x, dtype=np.float64)
    finite = np.isfinite(x)
    xf = np.where(finite, x, 0.0)
    m, e2 = np.frexp(np.abs(xf))
    # |m| in [0.5, 1): m * 2**53 is an exactly representable integer.
    sig = np.ldexp(m, 53).astype(np.int64)
    be = e2.astype(np.int64) - 1 + fmt.bias  # biased exponent if normal

    # Cut the 53-bit significand at the target precision; results in the
    # subnormal range (be < 1) lose 1 - be further bits.  A cut of 62
    # already discards every significand bit, so deeper underflow clips.
    cut = np.clip((53 - fmt.precision) + np.maximum(0, 1 - be), 0, 62)
    kept = sig >> cut
    rem = sig & ((np.int64(1) << cut) - 1)
    half = np.int64(1) << np.clip(cut - 1, 0, 62)
    kept = kept + ((rem > half) | ((rem == half) & ((kept & 1) == 1))).astype(
        np.int64
    )

    # Hidden bit + exponent merge: subnormals (be <= 1 term vanishes),
    # significand carries, and overflow past the top all fall out of the
    # one addition; anything at or above the infinity pattern clamps.
    mag = kept + ((np.maximum(be, 1) - 1) << fmt.frac_bits)
    mag = np.where(xf == 0.0, np.int64(0), mag)
    mag = np.where(mag >= fmt.pattern_inf, np.int64(fmt.pattern_inf), mag)

    signbits = np.signbit(x).astype(np.int64) << (fmt.width - 1)
    out = mag | signbits
    out = np.where(np.isinf(x), np.int64(fmt.pattern_inf) | signbits, out)
    return np.where(np.isnan(x), np.int64(fmt.pattern_quiet_nan), out)

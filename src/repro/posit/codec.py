"""Posit encode/decode: the two's-complement heart of the format.

Decoding follows Fig. 7's structure: negate (two's complement) when the sign
bit is set, count the leading run of identical bits (the regime), then read
the ``es`` exponent bits and the fraction.  Encoding constructs the
*extended* (unbounded-precision) encoding of the exact input value and cuts
it at ``nbits`` with round-to-nearest, ties to the even encoding — the
de-facto rounding of SoftPosit and the posit standard.  Posits never
underflow to zero or overflow to NaR: results clamp to minpos/maxpos.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .._bits import count_leading_signs, mask
from .format import PositFormat

__all__ = ["decode", "encode", "PositDecoded"]

#: Exact decoded value: ``(sign, sig, exp)`` meaning ``(-1)**sign * sig * 2**exp``
#: with ``sig`` a positive integer.  ``None`` encodes NaR and ``(0, 0, 0)`` zero.
PositDecoded = Optional[Tuple[int, int, int]]


def decode(fmt: PositFormat, pattern: int) -> PositDecoded:
    """Decode a posit bit pattern into its exact value.

    Returns ``None`` for NaR, ``(0, 0, 0)`` for zero, and ``(sign, sig, exp)``
    with ``sig > 0`` otherwise.
    """
    pattern &= mask(fmt.nbits)
    if pattern == 0:
        return (0, 0, 0)
    if pattern == fmt.pattern_nar:
        return None

    sign = pattern >> (fmt.nbits - 1)
    if sign:
        pattern = (-pattern) & mask(fmt.nbits)

    body_width = fmt.nbits - 1
    body = pattern & mask(body_width)
    run = count_leading_signs(body, body_width)
    first = (body >> (body_width - 1)) & 1
    k = run - 1 if first else -run

    # Bits left after the regime run and its terminating bit (may be
    # negative when the regime fills the word; missing bits read as 0).
    rem_width = body_width - run - 1
    rem = body & mask(max(0, rem_width))

    if rem_width <= 0:
        e = 0
        frac = 0
        f_width = 0
    elif rem_width <= fmt.es:
        # Truncated exponent field: missing low bits are zero.
        e = rem << (fmt.es - rem_width)
        frac = 0
        f_width = 0
    else:
        f_width = rem_width - fmt.es
        e = rem >> f_width
        frac = rem & mask(f_width)

    scale = k * (1 << fmt.es) + e
    sig = (1 << f_width) | frac
    return (sign, sig, scale - f_width)


def encode(
    fmt: PositFormat,
    sign: int,
    sig: int,
    exp: int,
    sticky_in: int = 0,
) -> int:
    """Round the exact value ``(-1)**sign * sig * 2**exp`` to a posit pattern.

    Args:
        fmt: Target posit format.
        sign: 0 or 1 (ignored when ``sig`` is 0).
        sig: Non-negative exact significand.
        exp: Power-of-two scale.
        sticky_in: Set when ``sig`` truncates a longer exact value (division,
            square root); ORed into the sticky bit of the rounding.

    Returns:
        The ``nbits``-wide pattern.  Values above ``maxpos`` (below
        ``minpos``) clamp to ``maxpos`` (``minpos``) per the posit standard:
        no overflow to NaR, no underflow to zero.
    """
    if sig == 0:
        if sticky_in:
            # An underflowed magnitude is still non-zero: clamp to minpos.
            pattern = fmt.pattern_minpos
            return (-pattern) & mask(fmt.nbits) if sign else pattern
        return 0

    scale = sig.bit_length() - 1 + exp
    if scale >= fmt.max_scale:
        pattern = fmt.pattern_maxpos
        return (-pattern) & mask(fmt.nbits) if sign else pattern
    if scale < fmt.min_scale:
        pattern = fmt.pattern_minpos
        return (-pattern) & mask(fmt.nbits) if sign else pattern

    k, e = divmod(scale, 1 << fmt.es)

    # Regime field: k >= 0 -> (k+1) ones and a terminating zero;
    # k < 0 -> (-k) zeros and a terminating one.
    if k >= 0:
        regime = mask(k + 1) << 1
        r_width = k + 2
    else:
        regime = 1
        r_width = -k + 1

    f_width = sig.bit_length() - 1
    frac = sig & mask(f_width)

    body = (((regime << fmt.es) | e) << f_width) | frac
    total = r_width + fmt.es + f_width
    target = fmt.nbits - 1

    if total <= target:
        kept = body << (target - total)
        if sticky_in:
            # Exactly representable prefix but extra sticky information:
            # round-to-nearest keeps the truncation (sticky alone is < 1/2 ulp).
            pass
    else:
        cut = total - target
        kept = body >> cut
        rem = body & mask(cut)
        half = 1 << (cut - 1)
        guard = int(rem >= half)
        sticky = int((rem & (half - 1)) != 0) | sticky_in
        if guard and (sticky or (kept & 1)):
            kept += 1

    # Safety clamps: rounding up past maxpos must not reach NaR, and a
    # nonzero value must not round to the zero pattern.
    if kept >= (1 << target):
        kept = fmt.pattern_maxpos
    elif kept == 0:
        kept = fmt.pattern_minpos

    return (-kept) & mask(fmt.nbits) if sign else kept

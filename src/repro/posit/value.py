"""The :class:`Posit` value type and its correctly rounded arithmetic.

Every operation decodes operands into exact integers, computes exactly, and
encodes once through :func:`repro.posit.codec.encode` — one rounding per
operation, like the hardware datapaths of Section V.

NaR ("Not a Real") is the single exception value: it propagates through all
arithmetic, compares equal to itself and less than every real posit (the
paper: "NaR is treated as equal to itself and less than all other numbers"),
which lets posits reuse the integer comparison unit unchanged.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Optional, Tuple

from .._bits import from_twos_complement, isqrt_rem, mask
from .codec import decode, encode
from .format import PositFormat

__all__ = ["Posit"]


class Posit:
    """An immutable posit value = (format, bit pattern)."""

    __slots__ = ("fmt", "pattern")

    def __init__(self, fmt: PositFormat, pattern: int):
        if not 0 <= pattern < (1 << fmt.nbits):
            raise ValueError(f"pattern {pattern:#x} out of range for {fmt}")
        object.__setattr__(self, "fmt", fmt)
        object.__setattr__(self, "pattern", pattern)

    def __setattr__(self, *a):  # pragma: no cover - immutability guard
        raise AttributeError("Posit is immutable")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, fmt: PositFormat) -> "Posit":
        """The zero posit (pattern 0)."""
        return cls(fmt, 0)

    @classmethod
    def nar(cls, fmt: PositFormat) -> "Posit":
        """Not-a-Real: the single exception value (pattern 10...0)."""
        return cls(fmt, fmt.pattern_nar)

    @classmethod
    def maxpos(cls, fmt: PositFormat) -> "Posit":
        """The largest positive posit, 2**max_scale."""
        return cls(fmt, fmt.pattern_maxpos)

    @classmethod
    def minpos(cls, fmt: PositFormat) -> "Posit":
        """The smallest positive posit, 2**min_scale."""
        return cls(fmt, fmt.pattern_minpos)

    @classmethod
    def one(cls, fmt: PositFormat) -> "Posit":
        """The posit 1.0 (pattern 010...0)."""
        return cls(fmt, 1 << (fmt.nbits - 2))

    @classmethod
    def from_float(cls, fmt: PositFormat, value: float) -> "Posit":
        """Round a Python float to the nearest posit (NaN/inf become NaR)."""
        if math.isnan(value) or math.isinf(value):
            return cls.nar(fmt)
        if value == 0.0:
            return cls.zero(fmt)
        sign = int(value < 0)
        mantissa, exp2 = math.frexp(abs(value))
        sig = int(mantissa * (1 << 53))
        return cls(fmt, encode(fmt, sign, sig, exp2 - 53))

    @classmethod
    def from_exact(
        cls, fmt: PositFormat, sign: int, sig: int, exp: int, sticky: int = 0
    ) -> "Posit":
        """Round the exact value ``(-1)**sign * sig * 2**exp`` to a posit."""
        return cls(fmt, encode(fmt, sign, sig, exp, sticky))

    @classmethod
    def from_fraction(cls, fmt: PositFormat, value: Fraction) -> "Posit":
        """Correctly round an exact rational to a posit."""
        if value == 0:
            return cls.zero(fmt)
        sign = int(value < 0)
        num, den = abs(value).numerator, abs(value).denominator
        extra = fmt.nbits + 2 * fmt.max_scale + 8 + max(0, den.bit_length() - num.bit_length())
        q, r = divmod(num << extra, den)
        return cls(fmt, encode(fmt, sign, q, -extra, sticky_in=int(r != 0)))

    @classmethod
    def from_int(cls, fmt: PositFormat, value: int) -> "Posit":
        """Round an integer to the nearest posit."""
        if value == 0:
            return cls.zero(fmt)
        return cls(fmt, encode(fmt, int(value < 0), abs(value), 0))

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def is_nar(self) -> bool:
        """True for the NaR exception pattern."""
        return self.pattern == self.fmt.pattern_nar

    def is_zero(self) -> bool:
        """True for the zero pattern."""
        return self.pattern == 0

    def decode(self) -> Optional[Tuple[int, int, int]]:
        """Exact ``(sign, sig, exp)``; ``None`` for NaR, ``(0,0,0)`` for zero."""
        return decode(self.fmt, self.pattern)

    def to_fraction(self) -> Fraction:
        """Exact rational value (raises on NaR)."""
        decoded = self.decode()
        if decoded is None:
            raise ValueError("NaR has no rational value")
        sign, sig, exp = decoded
        v = Fraction(sig) * (Fraction(2) ** exp)
        return -v if sign else v

    def to_float(self) -> float:
        """Value as a Python float (NaR becomes NaN); exact when in range."""
        decoded = self.decode()
        if decoded is None:
            return math.nan
        sign, sig, exp = decoded
        try:
            value = math.ldexp(sig, exp)
        except OverflowError:
            value = math.inf
        return -value if sign else value

    @property
    def sign(self) -> int:
        """Sign bit of the pattern (NaR reads as 1)."""
        return self.pattern >> (self.fmt.nbits - 1)

    def regime(self) -> Optional[int]:
        """The regime value ``k`` (None for zero/NaR)."""
        decoded = self.decode()
        if decoded is None or decoded[1] == 0:
            return None
        _, sig, exp = decoded
        scale = sig.bit_length() - 1 + exp
        return scale >> self.fmt.es

    def explain(self) -> str:
        """Human-readable field breakdown of the pattern (Fig. 7's anatomy).

        >>> from repro.posit import Posit, POSIT8
        >>> print(Posit(POSIT8, 0x50).explain())
        posit<8,0> 0x50 = 0b01010000
          sign    0  (+)
          regime  10 -> k = 0
          frac    10000  (1.5)
          value   1.5 = 1.5 * 2^0
        """
        fmt = self.fmt
        bits = f"{self.pattern:0{fmt.nbits}b}"
        header = f"{fmt} {self.pattern:#0{2 + (fmt.nbits + 3) // 4}x} = 0b{bits}"
        if self.is_nar():
            return f"{header}\n  NaR (the single exception value)"
        if self.is_zero():
            return f"{header}\n  zero"
        sign = self.sign
        mag = (-self.pattern) & mask(fmt.nbits) if sign else self.pattern
        body = f"{mag & mask(fmt.nbits - 1):0{fmt.nbits - 1}b}"
        first = body[0]
        run = len(body) - len(body.lstrip(first))
        k = run - 1 if first == "1" else -run
        after = body[min(run + 1, len(body)):]
        e_field = after[: fmt.es]
        frac = after[fmt.es :]
        _, sig, exp = self.decode()
        scale = sig.bit_length() - 1 + exp
        significand = sig / (1 << (sig.bit_length() - 1))
        lines = [header]
        lines.append(f"  sign    {sign}  ({'-' if sign else '+'})")
        lines.append(f"  regime  {body[:run + 1]} -> k = {k}")
        if fmt.es:
            lines.append(f"  exp     {e_field or '(truncated: 0)'}")
        lines.append(f"  frac    {frac or '(empty)'}  ({significand})")
        lines.append(f"  value   {self.to_float()} = {'-' if sign else ''}{significand} * 2^{scale}")
        return "\n".join(lines)

    def convert(self, fmt: PositFormat) -> "Posit":
        """Convert to another posit format, rounding once."""
        decoded = self.decode()
        if decoded is None:
            return Posit.nar(fmt)
        sign, sig, exp = decoded
        if sig == 0:
            return Posit.zero(fmt)
        return Posit.from_exact(fmt, sign, sig, exp)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _require_same_format(self, other: "Posit"):
        if self.fmt != other.fmt:
            raise ValueError(f"format mismatch: {self.fmt} vs {other.fmt}")

    def add(self, other: "Posit") -> "Posit":
        """Correctly rounded addition (exact sum, one rounding)."""
        self._require_same_format(other)
        fmt = self.fmt
        da, db = self.decode(), other.decode()
        if da is None or db is None:
            return Posit.nar(fmt)
        sa, ma, ea = da
        sb, mb, eb = db
        if ma == 0:
            return Posit(fmt, other.pattern)
        if mb == 0:
            return Posit(fmt, self.pattern)
        e = min(ea, eb)
        total = (ma if not sa else -ma) * (1 << (ea - e)) + (mb if not sb else -mb) * (
            1 << (eb - e)
        )
        if total == 0:
            return Posit.zero(fmt)
        return Posit.from_exact(fmt, int(total < 0), abs(total), e)

    def sub(self, other: "Posit") -> "Posit":
        """Correctly rounded subtraction via two's-complement negation."""
        return self.add(other.negate())

    def mul(self, other: "Posit") -> "Posit":
        """Correctly rounded multiplication (exact product, one rounding)."""
        self._require_same_format(other)
        fmt = self.fmt
        da, db = self.decode(), other.decode()
        if da is None or db is None:
            return Posit.nar(fmt)
        sa, ma, ea = da
        sb, mb, eb = db
        if ma == 0 or mb == 0:
            return Posit.zero(fmt)
        return Posit.from_exact(fmt, sa ^ sb, ma * mb, ea + eb)

    def div(self, other: "Posit") -> "Posit":
        """Correctly rounded division (sticky from the remainder); x/0 is NaR."""
        self._require_same_format(other)
        fmt = self.fmt
        da, db = self.decode(), other.decode()
        if da is None or db is None:
            return Posit.nar(fmt)
        sa, ma, ea = da
        sb, mb, eb = db
        if mb == 0:
            return Posit.nar(fmt)  # x / 0 is NaR (posits have no infinity)
        if ma == 0:
            return Posit.zero(fmt)
        extra = fmt.nbits + 2 * fmt.max_scale + 8 + max(0, mb.bit_length() - ma.bit_length())
        q, r = divmod(ma << extra, mb)
        return Posit.from_exact(fmt, sa ^ sb, q, ea - eb - extra, sticky=int(r != 0))

    def sqrt(self) -> "Posit":
        """Correctly rounded square root (negative arguments give NaR)."""
        fmt = self.fmt
        decoded = self.decode()
        if decoded is None:
            return Posit.nar(fmt)
        sign, m, e = decoded
        if m == 0:
            return Posit.zero(fmt)
        if sign:
            return Posit.nar(fmt)
        shift = 2 * fmt.nbits + 2 * fmt.max_scale + 8
        if (e - shift) % 2:
            shift += 1
        s, r = isqrt_rem(m << shift)
        return Posit.from_exact(fmt, 0, s, (e - shift) // 2, sticky=int(r != 0))

    def fma(self, other: "Posit", addend: "Posit") -> "Posit":
        """Fused multiply-add ``self * other + addend`` with one rounding."""
        self._require_same_format(other)
        self._require_same_format(addend)
        fmt = self.fmt
        da, db, dc = self.decode(), other.decode(), addend.decode()
        if da is None or db is None or dc is None:
            return Posit.nar(fmt)
        sa, ma, ea = da
        sb, mb, eb = db
        sc, mc, ec = dc
        prod = ma * mb
        pexp = ea + eb
        if prod == 0:
            return Posit(fmt, addend.pattern)
        if mc == 0:
            return Posit.from_exact(fmt, sa ^ sb, prod, pexp)
        e = min(pexp, ec)
        total = (prod if not (sa ^ sb) else -prod) * (1 << (pexp - e)) + (
            mc if not sc else -mc
        ) * (1 << (ec - e))
        if total == 0:
            return Posit.zero(fmt)
        return Posit.from_exact(fmt, int(total < 0), abs(total), e)

    def negate(self) -> "Posit":
        """Two's-complement negation of the pattern: exact for every posit.

        The paper: "negation with 2's complement also works without
        exception" — NaR and zero are their own negations.
        """
        return Posit(self.fmt, (-self.pattern) & mask(self.fmt.nbits))

    def abs(self) -> "Posit":
        """Magnitude (NaR stays NaR)."""
        return self.negate() if self.sign and not self.is_nar() else self

    def reciprocal(self) -> "Posit":
        """Correctly rounded 1/x (exact for powers of two by ring symmetry)."""
        return Posit.one(self.fmt).div(self)

    def __add__(self, other):
        return self.add(other)

    def __sub__(self, other):
        return self.sub(other)

    def __mul__(self, other):
        return self.mul(other)

    def __truediv__(self, other):
        return self.div(other)

    def __neg__(self):
        return self.negate()

    def __abs__(self):
        return self.abs()

    # ------------------------------------------------------------------
    # Comparison: exactly signed-integer comparison on the patterns.
    # ------------------------------------------------------------------
    def _int_key(self) -> int:
        """The two's-complement integer whose order is the posit order."""
        return from_twos_complement(self.pattern, self.fmt.nbits)

    def __eq__(self, other):
        if not isinstance(other, Posit):
            return NotImplemented
        self._require_same_format(other)
        return self.pattern == other.pattern

    def __lt__(self, other):
        self._require_same_format(other)
        return self._int_key() < other._int_key()

    def __le__(self, other):
        self._require_same_format(other)
        return self._int_key() <= other._int_key()

    def __gt__(self, other):
        self._require_same_format(other)
        return self._int_key() > other._int_key()

    def __ge__(self, other):
        self._require_same_format(other)
        return self._int_key() >= other._int_key()

    def __hash__(self):
        return hash((self.fmt, self.pattern))

    def __repr__(self):
        if self.is_nar():
            return f"Posit({self.fmt}, NaR)"
        return f"Posit({self.fmt}, {self.pattern:#0{2 + (self.fmt.nbits + 3) // 4}x} = {self.to_float()!r})"

"""Correctly rounded elementary functions for posits.

The posit standard requires elementary functions to be correctly rounded
(they are deterministic, bit-reproducible across implementations — one of
the format's selling points for edge deployment).  This module computes
``exp``, ``log``, ``log2``, ``sin``, ``cos``, ``atan`` and ``tanh`` through
high-precision rational arithmetic with enough guard precision to round
once, using the same :func:`repro.posit.codec.encode` path as the basic
operations.

The working precision is chosen from the format (``nbits + max_scale``
extra bits), far beyond the half-ulp ambiguity band of any posit value;
hard-to-round cases would need correctness proofs in a production library,
here the exhaustive posit8/posit16 tests directly compare against mpmath-
grade rational references.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Callable

from .format import PositFormat
from .value import Posit

__all__ = ["posit_exp", "posit_log", "posit_log2", "posit_sin", "posit_cos", "posit_atan", "posit_tanh", "posit_sqrt"]


def _working_bits(fmt: PositFormat) -> int:
    return 4 * fmt.nbits + 2 * fmt.max_scale + 32


def _frac_exp(x: Fraction, bits: int) -> Fraction:
    """exp(x) by argument reduction + Taylor, to ~2**-bits relative error."""
    # Reduce x = k*ln2 + r with |r| <= ln2/2 using a rational ln2.
    ln2 = _frac_ln2(bits + 16)
    k = round(float(x / ln2))
    r = x - k * ln2
    # Taylor on |r| <= 0.35: term count ~ bits / log2(1/0.35).
    total = Fraction(1)
    term = Fraction(1)
    n = 1
    limit = Fraction(1, 1 << (bits + 8))
    while True:
        term = term * r / n
        total += term
        n += 1
        if abs(term) < limit:
            break
    return total * Fraction(2) ** k


def _frac_ln2(bits: int) -> Fraction:
    """ln 2 via atanh series: ln 2 = 2 atanh(1/3)."""
    x = Fraction(1, 3)
    total = Fraction(0)
    term = x
    n = 1
    limit = Fraction(1, 1 << (bits + 8))
    while term > limit:
        total += term / n
        term *= x * x
        n += 2
    return 2 * total


def _frac_log(x: Fraction, bits: int) -> Fraction:
    """ln(x) for x > 0: scale into [1, 2), then atanh series."""
    if x <= 0:
        raise ValueError("log of non-positive value")
    k = 0
    while x >= 2:
        x /= 2
        k += 1
    while x < 1:
        x *= 2
        k -= 1
    # ln(x) = 2 atanh((x-1)/(x+1)), argument <= 1/3 on [1, 2).
    z = (x - 1) / (x + 1)
    total = Fraction(0)
    term = z
    n = 1
    limit = Fraction(1, 1 << (bits + 8))
    while abs(term) > limit:
        total += term / n
        term *= z * z
        n += 2
    return 2 * total + k * _frac_ln2(bits)


def _frac_pi(bits: int) -> Fraction:
    """pi via Machin's formula with rational arithmetic."""

    def atan_inv(m: int) -> Fraction:
        x = Fraction(1, m)
        total = Fraction(0)
        term = x
        n = 1
        limit = Fraction(1, 1 << (bits + 16))
        while abs(term) > limit:
            total += term / n
            term *= -x * x
            n += 2
        return total

    return 16 * atan_inv(5) - 4 * atan_inv(239)


def _frac_sin(x: Fraction, bits: int) -> Fraction:
    pi = _frac_pi(bits + x.numerator.bit_length() + 8)
    # Reduce modulo 2*pi, then Taylor (fine for the posit ranges tested).
    k = round(float(x / (2 * pi)))
    r = x - 2 * k * pi
    total = Fraction(0)
    term = r
    n = 1
    limit = Fraction(1, 1 << (bits + 8))
    while abs(term) > limit:
        total += term
        term *= -r * r / ((n + 1) * (n + 2))
        n += 2
    return total


def _frac_cos(x: Fraction, bits: int) -> Fraction:
    pi = _frac_pi(bits + x.numerator.bit_length() + 8)
    k = round(float(x / (2 * pi)))
    r = x - 2 * k * pi
    total = Fraction(0)
    term = Fraction(1)
    n = 0
    limit = Fraction(1, 1 << (bits + 8))
    while abs(term) > limit:
        total += term
        term *= -r * r / ((n + 1) * (n + 2))
        n += 2
    return total


def _frac_atan(x: Fraction, bits: int) -> Fraction:
    if x < 0:
        return -_frac_atan(-x, bits)
    if x > 1:
        return _frac_pi(bits) / 2 - _frac_atan(1 / x, bits)
    if x > Fraction(1, 2):
        # atan(x) = pi/4 + atan((x-1)/(x+1)) keeps the series argument small.
        return _frac_pi(bits) / 4 + _frac_atan((x - 1) / (x + 1), bits)
    total = Fraction(0)
    term = x
    n = 1
    limit = Fraction(1, 1 << (bits + 8))
    while abs(term) > limit:
        total += term / n
        term *= -x * x
        n += 2
    return total


def _frac_tanh(x: Fraction, bits: int) -> Fraction:
    if x == 0:
        return Fraction(0)
    e2x = _frac_exp(2 * x, bits + 8)
    return (e2x - 1) / (e2x + 1)


def _lift(fn: Callable[[Fraction, int], Fraction], domain_check=None):
    def wrapped(p: Posit) -> Posit:
        decoded = p.decode()
        if decoded is None:
            return Posit.nar(p.fmt)
        sign, sig, exp = decoded
        x = p.to_fraction()
        if domain_check is not None and not domain_check(x):
            return Posit.nar(p.fmt)
        bits = _working_bits(p.fmt)
        return Posit.from_fraction(p.fmt, fn(x, bits))

    return wrapped


def posit_exp(p: Posit) -> Posit:
    """Correctly rounded exp (NaR propagates; saturates like every posit op)."""
    decoded = p.decode()
    if decoded is None:
        return Posit.nar(p.fmt)
    if p.is_zero():
        return Posit.one(p.fmt)
    x = p.to_fraction()
    # Saturation guards: avoid astronomically large intermediate powers.
    ln2_f = math.log(2.0)
    if float(x) > (p.fmt.max_scale + 1) * ln2_f:
        return Posit.maxpos(p.fmt)
    if float(x) < (p.fmt.min_scale - 1) * ln2_f:
        return Posit.minpos(p.fmt)
    return _lift(_frac_exp)(p)


def posit_log(p: Posit) -> Posit:
    """Correctly rounded natural log (non-positive arguments give NaR)."""
    return _lift(_frac_log, domain_check=lambda x: x > 0)(p)


def posit_log2(p: Posit) -> Posit:
    """Correctly rounded base-2 log."""
    decoded = p.decode()
    if decoded is None:
        return Posit.nar(p.fmt)
    x = p.to_fraction()
    if x <= 0:
        return Posit.nar(p.fmt)
    bits = _working_bits(p.fmt)
    return Posit.from_fraction(p.fmt, _frac_log(x, bits) / _frac_ln2(bits))


def posit_sin(p: Posit) -> Posit:
    """Correctly rounded sine (argument reduced with high-precision pi)."""
    return _lift(_frac_sin)(p)


def posit_cos(p: Posit) -> Posit:
    """Correctly rounded cosine."""
    decoded = p.decode()
    if decoded is None:
        return Posit.nar(p.fmt)
    if p.is_zero():
        return Posit.one(p.fmt)
    return _lift(_frac_cos)(p)


def posit_atan(p: Posit) -> Posit:
    """Correctly rounded arctangent."""
    return _lift(_frac_atan)(p)


def posit_tanh(p: Posit) -> Posit:
    """Correctly rounded tanh (saturates to +-1 for large arguments)."""
    decoded = p.decode()
    if decoded is None:
        return Posit.nar(p.fmt)
    x = p.to_fraction()
    # tanh saturates to +-1 far before the series costs anything: past
    # ~0.5 * working-bits * ln2 the result rounds to +-1 in any posit format.
    if abs(float(x)) > _working_bits(p.fmt):
        one = Posit.one(p.fmt)
        return one if x > 0 else one.negate()
    return _lift(_frac_tanh)(p)


def posit_sqrt(p: Posit) -> Posit:
    """Alias for the datapath square root (already correctly rounded)."""
    return p.sqrt()

"""Posit format descriptors."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PositFormat",
    "POSIT8",
    "POSIT16",
    "POSIT32",
    "POSIT64",
    "STD_POSIT8",
    "STD_POSIT16",
    "STD_POSIT32",
    "STD_POSIT64",
]


@dataclass(frozen=True)
class PositFormat:
    """A posit format ``posit<nbits, es>``.

    A posit bit string is ``sign | regime | exponent (es bits) | fraction``,
    where the regime is a unary run of identical bits.  The *useed* is
    ``2**2**es``; each extra regime bit scales the value by useed, which is
    what produces the tapered-accuracy triangle of Fig. 9.

    Attributes:
        nbits: Total width in bits (>= 3 per the standard's minimum of 2 is
            degenerate; we require >= 3 so at least a regime fits).
        es: Number of exponent bits.
    """

    nbits: int
    es: int

    def __post_init__(self):
        if self.nbits < 3:
            raise ValueError("posit formats need at least 3 bits")
        if self.es < 0:
            raise ValueError("es must be non-negative")

    @property
    def useed(self) -> int:
        """``2**2**es``, the regime scaling factor."""
        return 1 << (1 << self.es)

    @property
    def max_scale(self) -> int:
        """``log2(maxpos)``: the scale of the largest positive posit."""
        return (self.nbits - 2) * (1 << self.es)

    @property
    def min_scale(self) -> int:
        """``log2(minpos)``: the scale of the smallest positive posit."""
        return -self.max_scale

    @property
    def pattern_nar(self) -> int:
        """Not-a-Real: ``10...0``, the top of the ring in Fig. 7."""
        return 1 << (self.nbits - 1)

    @property
    def pattern_maxpos(self) -> int:
        """Largest positive posit: ``011...1``."""
        return (1 << (self.nbits - 1)) - 1

    @property
    def pattern_minpos(self) -> int:
        """Smallest positive posit: ``00...01``."""
        return 1

    @property
    def max_fraction_bits(self) -> int:
        """Fraction bits available in the best case (two regime bits)."""
        return max(0, self.nbits - 3 - self.es)

    def quire_width(self) -> int:
        """Storage width of the quire for this format.

        The quire must hold any sum of products exactly: products span
        ``2**(2*min_scale) .. 2**(2*max_scale)``, plus carry guard bits to
        absorb at most ``2**guard`` accumulations.  The 2022 posit standard
        fixes the width at ``16 * nbits``; we reproduce that for the
        standard es=2 formats and generalize otherwise.
        """
        guard = 31
        return 1 + guard + 4 * self.max_scale + 1

    def __str__(self) -> str:
        return f"posit<{self.nbits},{self.es}>"


#: The paper (2020) predates the 2022 posit standard and follows the original
#: Gustafson/Yonemoto conventions (as in SoftPosit): es = 0/1/2/3 for
#: 8/16/32/64-bit posits.  In particular the paper's posit16 has dynamic
#: range 2**-28 .. 2**28 — that is es = 1.
POSIT8 = PositFormat(8, 0)
POSIT16 = PositFormat(16, 1)
POSIT32 = PositFormat(32, 2)
POSIT64 = PositFormat(64, 3)

#: The 2022 posit standard fixes es = 2 at every width; provided for
#: completeness and cross-checks.
STD_POSIT8 = PositFormat(8, 2)
STD_POSIT16 = PositFormat(16, 2)
STD_POSIT32 = PositFormat(32, 2)
STD_POSIT64 = PositFormat(64, 2)

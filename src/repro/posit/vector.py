"""Bit-parallel posit codecs: field-extraction decode/encode on whole arrays.

The tabulated codecs (:mod:`repro.posit.tensor`) stop at 16 bits because a
``2**nbits`` value table stops being buildable; this module removes that
ceiling by doing what posit hardware does, vectorized over numpy int64
arrays: two's-complement the sign away, count the regime run (a CLZ after
conditionally inverting the body), split off the ``es`` exponent bits and
the fraction, and reassemble on encode with round-to-nearest, ties to the
even *encoding* — never materializing the unbounded extended body the
scalar :func:`repro.posit.codec.encode` builds.

Everything here is bit-exact with the scalar model by construction:

* decode extracts the same ``(sign, sig, exp)`` integer fields, so the
  float64 values are exact (a <= 32-bit posit significand has <= 30 bits,
  far inside float64's 53);
* encode replicates the scalar cut/guard/sticky arithmetic on int64 lanes,
  including the posit clamps (no underflow to zero, no overflow to NaR);
* :func:`add_codes`/:func:`mul_codes` compute in *integer* significand
  arithmetic — products of two <= 30-bit significands and guard-extended
  aligned sums both fit in int64 — because float64 round-tripping is NOT
  bit-exact at 32 bits (a posit<32,2> product has 56 significant bits; the
  innocuous-double-rounding condition ``53 >= 2p + 2`` fails at p = 28).

Performance notes, measured on benchmark-sized (10k-element) arrays:

* ``np.where`` costs several plain kernels, so lane selection is written
  as arithmetic blends (``lo + cond * (hi - lo)``, exact on int64) and
  exceptional lanes (zero, NaR, clamps) are patched with boolean-mask
  assignment;
* a freshly allocated temporary costs ~4x a compute kernel at this size
  (page faults on first touch), so the kernels run in-place on a small
  set of live buffers (``out=``, augmented assignment), retiring each
  temporary into the next intermediate instead of building one big
  dataflow expression.
"""

from __future__ import annotations

import numpy as np

from .format import PositFormat

__all__ = [
    "MAX_WIDE_NBITS",
    "check_wide_format",
    "vector_decode_fields",
    "vector_decode",
    "vector_encode_fields",
    "vector_encode",
    "add_codes",
    "mul_codes",
]

#: Widest posit the bit-parallel kernels support: every intermediate
#: (aligned sums with 32 guard bits, full significand products) must fit
#: in a signed int64 lane.
MAX_WIDE_NBITS = 32

#: Largest exponent-field width: ``e << f_width`` must stay below 2**63
#: for the widest significands the add kernel produces.
_MAX_WIDE_ES = 3

#: Guard bits appended to the larger addend before alignment; the smaller
#: operand's shifted-out tail is folded into a sticky bit.
_GUARD_BITS = 32

_ONE = np.int64(1)


def check_wide_format(fmt: PositFormat) -> None:
    """Reject formats whose intermediates would overflow an int64 lane."""
    if fmt.nbits > MAX_WIDE_NBITS:
        raise ValueError(
            f"wide posit kernels support at most {MAX_WIDE_NBITS}-bit formats, "
            f"got {fmt}"
        )
    if fmt.es > _MAX_WIDE_ES:
        raise ValueError(
            f"wide posit kernels support es <= {_MAX_WIDE_ES}, got {fmt}"
        )


def _bit_length(a: np.ndarray) -> np.ndarray:
    """Per-element ``int.bit_length()`` of a non-negative int64 array.

    ``frexp`` gives the bit length exactly for anything below 2**53; above
    that, float64 rounding can bump a value up to the next power of two and
    overstate the length by one, which ``a >> (e - 1) == 0`` detects.
    (``a == 0`` lands at ``e - 1 + exact = -1``; the maximum snaps it to 0.)
    """
    e = np.frexp(a.astype(np.float64))[1].astype(np.int64)
    t = e - 1
    np.clip(t, 0, 63, out=t)
    np.right_shift(a, t, out=t)
    e += t != 0
    e -= 1
    np.maximum(e, 0, out=e)
    return e


def _bit_length53(a: np.ndarray) -> np.ndarray:
    """`_bit_length` for arrays known to be below 2**53 (frexp is exact)."""
    return np.frexp(a.astype(np.float64))[1].astype(np.int64)


def _decode_fields_raw(fmt: PositFormat, codes: np.ndarray):
    """Field extraction without invalid-lane cleanup.

    Returns ``(sign, sig, exp, zero, nar, mag)``.  Zero/NaR lanes carry
    harmless junk fields (``sig = 1`` with a deep-underflow exponent) that
    callers override; ``mag`` is the two's-complement magnitude pattern.
    All returned arrays are freshly allocated (callers may mutate them).
    """
    check_wide_format(fmt)
    nbits, es = fmt.nbits, fmt.es
    word = np.int64((1 << nbits) - 1)
    codes = np.asarray(codes, dtype=np.int64) & word
    zero = codes == 0
    nar = codes == fmt.pattern_nar

    sign = codes >> (nbits - 1)
    # Two's-complement magnitude as a blend: sign 1 -> (~codes + 1) & word.
    mag = -sign
    mag ^= codes
    mag += sign
    mag &= word
    body_width = nbits - 1
    body_mask = np.int64((1 << body_width) - 1)
    body = mag & body_mask

    # Regime: a CLZ of the body after inverting lanes that lead with 1s.
    first = body >> (body_width - 1)  # body < 2**body_width: 0 or 1
    t = first * body_mask
    t ^= body
    run = _bit_length53(t)
    np.subtract(body_width, run, out=run)
    k = run + run  # k = first * (2*run - 1) - run: run - 1 or -run
    k -= 1
    k *= first
    k -= run

    # Bits left after the regime run and its terminating bit (may be
    # negative when the regime fills the word; missing bits read as 0).
    rem_width = np.subtract(body_width - 1, run, out=run)
    rw = np.maximum(rem_width, 0)
    rem = _ONE << rw
    rem -= 1
    rem &= body
    f_width = rem_width  # retire rem_width's buffer
    f_width -= es
    np.maximum(f_width, 0, out=f_width)
    # Exponent field = the top min(es, rw) bits of rem, zero-padded to es
    # bits: (rem << es) >> rw covers both the full and truncated cases.
    e = rem << es
    e >>= rw
    frac = _ONE << f_width
    frac -= 1
    frac &= rem

    sig = _ONE << f_width
    sig |= frac
    exp = k  # retire k's buffer: exp = k * 2**es + e - f_width
    exp *= np.int64(1 << es)
    exp += e
    exp -= f_width
    return sign, sig, exp, zero, nar, mag


def vector_decode_fields(fmt: PositFormat, codes: np.ndarray):
    """Exact ``(sign, sig, exp, zero_mask, nar_mask)`` fields of code arrays.

    The array analogue of :func:`repro.posit.codec.decode`: each valid lane
    satisfies ``value = (-1)**sign * sig * 2**exp`` with ``sig > 0``.
    Zero/NaR lanes read ``(0, 0, 0)`` and are flagged in the masks.
    """
    sign, sig, exp, zero, nar, _ = _decode_fields_raw(fmt, codes)
    invalid = zero | nar
    sign[invalid] = 0
    sig[invalid] = 0
    exp[invalid] = 0
    return sign, sig, exp, zero, nar


def vector_decode(
    fmt: PositFormat, codes: np.ndarray, out: np.ndarray = None
) -> np.ndarray:
    """Exact float64 value of each code (NaR -> NaN), bit-parallel.

    ``out`` (optional) receives the values in place — a float64 array of
    the same shape as ``codes``.  The integer fields are fully extracted
    before ``out`` is written, so ``out`` may even alias the storage
    behind ``codes`` (e.g. a float64 view of the same buffer); the fused
    inference path leans on this to recycle one scratch buffer per stage
    instead of paying a page-faulting fresh allocation per call.
    """
    sign, sig, exp, zero, nar, _ = _decode_fields_raw(fmt, codes)
    if out is not None:
        if out.shape != np.shape(codes) or out.dtype != np.float64:
            raise ValueError(
                f"out must be a float64 array of shape {np.shape(codes)}, "
                f"got {out.dtype} {out.shape}"
            )
    # sig has <= nbits - 2 bits and |exp| <= max_scale + nbits: exact.
    val = np.ldexp(sig.astype(np.float64), exp.astype(np.int32), out=out)
    sign *= -2  # exact sign flip: multiply by +1 (sign 0) or -1 (sign 1)
    sign += 1
    val *= sign
    val[zero] = 0.0
    val[nar] = np.nan
    return val


def _encode_fields(fmt, sign, sig, exp, sticky, L):
    """Shared encode core; ``L`` is ``_bit_length(sig)`` and is consumed.

    ``sign``/``sig``/``exp`` are only read; ``L`` and the temporaries are
    mutated freely.
    """
    nbits, es = fmt.nbits, fmt.es
    target = nbits - 1
    word = np.int64((1 << nbits) - 1)
    has_sticky = not (np.isscalar(sticky) and sticky == 0)

    scale = L - 1
    scale += exp
    over = scale >= fmt.max_scale
    under = scale < fmt.min_scale

    # k = floor(scale / 2**es): arithmetic right shift floors negatives
    # too, and the remainder pops out of the mask.
    k = scale >> es
    e = scale  # retire scale's buffer: e = scale mod 2**es
    e &= np.int64((1 << es) - 1)
    # Regime: k >= 0 -> (k+1) ones and a terminating zero; k < 0 -> (-k)
    # zeros and a terminating one, blended by p.  Shift counts are clipped
    # so the clamped (over/under) lanes, whose k is unbounded, stay defined.
    p = k >= 0
    regime = k + 1
    np.clip(regime, 0, 62, out=regime)
    np.left_shift(_ONE, regime, out=regime)
    regime -= 1
    regime <<= 1
    regime -= 1  # ((1 << (k+1)) - 1) << 1, minus 1 for the blend
    regime *= p
    regime += 1
    r_width = k + k  # r_width = p * (2k + 1) + (1 - k)
    r_width += 1
    r_width *= p
    r_width += 1
    r_width -= k

    f_width = L  # retire L's buffer
    f_width -= 1
    np.maximum(f_width, 0, out=f_width)
    frac = _ONE << f_width
    frac -= 1
    frac &= sig
    rest = np.left_shift(e, f_width, out=e)  # es + f_width bits below regime
    rest |= frac

    # In-range lanes have r_width <= target, so avail >= 0; cut is how many
    # low bits of ``rest`` fall off the end of the word.
    avail = np.subtract(target, r_width, out=r_width)
    np.clip(avail, 0, target, out=avail)
    cut = f_width  # retire f_width's buffer
    cut += es
    cut -= avail
    pos = cut > 0
    pos_cut = np.clip(cut, 0, 62)
    hi = rest >> pos_cut
    lo = -cut
    np.clip(lo, 0, 62, out=lo)
    np.left_shift(rest, lo, out=lo)
    hi -= lo  # blend: tail = lo + pos * (hi - lo)
    hi *= pos
    tail = hi
    tail += lo
    kept = np.left_shift(regime, avail, out=regime)
    kept |= tail

    # Round to nearest, ties to the even encoding, on the cut-off bits.
    rem = np.left_shift(_ONE, pos_cut, out=pos_cut)
    rem -= 1
    rem &= rest
    half = cut  # retire cut's buffer (its > 0 mask lives in ``pos``)
    half -= 1
    np.clip(half, 0, 62, out=half)
    np.left_shift(_ONE, half, out=half)
    guard = rem >= half
    guard &= pos
    half -= 1
    rem &= half
    inc = (kept & _ONE) != 0
    sticky_bit = rem != 0
    if has_sticky:
        sticky_in = np.not_equal(sticky, 0)
        sticky_bit |= sticky_in
    inc |= sticky_bit
    inc &= guard
    kept += inc

    # Safety clamps: rounding up past maxpos must not reach NaR, and a
    # nonzero value must not round to the zero pattern.  ``over`` is
    # applied first so it beats a zero ``kept`` (maxpos != 0 keeps the
    # second mask clear of clamped lanes).
    over |= kept >= (_ONE << target)
    kept[over] = np.int64(fmt.pattern_maxpos)
    under |= kept == 0
    kept[under] = np.int64(fmt.pattern_minpos)
    # An underflowed magnitude (sig 0 but sticky set) is still non-zero.
    zs = sig == 0
    kept[zs] = 0
    if has_sticky:
        zs &= sticky_in
        kept[zs] = np.int64(fmt.pattern_minpos)

    sign = np.asarray(sign, dtype=np.int64)
    out = -sign  # (kept ^ -sign) + sign: conditional two's-complement
    out ^= kept
    out += sign
    out &= word
    return out


def vector_encode_fields(
    fmt: PositFormat, sign, sig, exp, sticky=0
) -> np.ndarray:
    """Round ``(-1)**sign * sig * 2**exp`` lanes to posit patterns.

    The array analogue of :func:`repro.posit.codec.encode` — nearest, ties
    to the even encoding, clamp to minpos/maxpos, never round a nonzero
    value to zero — restructured so no lane needs more than 63 bits:
    instead of building the full extended body, the regime is placed at its
    final position (``regime << avail``) and only the exponent+fraction
    tail ``rest`` is cut, with guard/sticky taken from the cut bits.

    ``sig`` must stay below ``2**(62 - es)`` (all in-repo producers do:
    float64 significands have 53 bits, wide products <= 60, guarded sums
    <= 62).  ``sticky`` marks lanes whose true magnitude exceeds
    ``sig * 2**exp`` by less than one unit in the last place of ``sig``.
    """
    check_wide_format(fmt)
    sig = np.asarray(sig, dtype=np.int64)
    exp = np.asarray(exp, dtype=np.int64)
    return _encode_fields(fmt, sign, sig, exp, sticky, _bit_length(sig))


def vector_encode(fmt: PositFormat, x: np.ndarray) -> np.ndarray:
    """Round a float64 array to posit codes (NaN/inf -> NaR), bit-parallel."""
    check_wide_format(fmt)
    x = np.asarray(x, dtype=np.float64)
    nonfinite = np.isfinite(x)
    np.logical_not(nonfinite, out=nonfinite)
    xf = x.copy()
    xf[nonfinite] = 0.0
    sign = np.signbit(xf).astype(np.int64)
    np.abs(xf, out=xf)
    m, e2 = np.frexp(xf)
    # |m| in [0.5, 1) has at most 53 significant bits: m * 2**53 is an
    # exactly representable integer, so L is 53 on every nonzero lane —
    # no per-element bit_length needed on this path.
    m *= 9007199254740992.0  # 2**53
    sig = m.astype(np.int64)
    exp = e2.astype(np.int64)
    exp -= 53
    L = (sig != 0) * np.int64(53)
    out = _encode_fields(fmt, sign, sig, exp, 0, L)
    out[nonfinite] = np.int64(fmt.pattern_nar)
    return out


def mul_codes(fmt: PositFormat, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Correctly rounded elementwise posit multiply on code arrays.

    Pure integer: significand products of <= 30-bit operands fit int64
    exactly, so there is a single rounding — float64 round-tripping would
    double-round at 32 bits.
    """
    sa, ma, ea, za, naa, _ = _decode_fields_raw(fmt, a)
    sb, mb, eb, zb, nab, _ = _decode_fields_raw(fmt, b)
    sa ^= sb
    ma *= mb
    ea += eb
    out = _encode_fields(fmt, sa, ma, ea, 0, _bit_length(ma))
    za |= zb
    out[za] = 0
    naa |= nab
    out[naa] = np.int64(fmt.pattern_nar)
    return out


def add_codes(fmt: PositFormat, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Correctly rounded elementwise posit add on code arrays.

    Integer alignment with :data:`_GUARD_BITS` guard bits: the larger
    operand (positive posit patterns order by magnitude, so the comparison
    is on the magnitude patterns) is shifted up by the guard, the smaller
    aligned under it, and any shifted-out tail becomes a sticky bit.  When
    that tail is subtracted, the true difference lies strictly inside
    ``(total - 1, total)``, which ``sig = total - 1, sticky = 1`` encodes —
    the encoder's guard/sticky logic then rounds identically to the scalar
    model's unbounded-integer arithmetic.
    """
    check_wide_format(fmt)
    nbits, es = fmt.nbits, fmt.es
    word = np.int64((1 << nbits) - 1)
    a = np.asarray(a, dtype=np.int64) & word
    b = np.asarray(b, dtype=np.int64) & word
    sa, ma, ea, za, naa, maga = _decode_fields_raw(fmt, a)
    sb, mb, eb, zb, nab, magb = _decode_fields_raw(fmt, b)

    # Normalize significands to the format's widest length P so equal
    # scales imply comparable integers.  Decoded sigs never exceed P bits,
    # so the shifts need no clipping.
    P = max(1, nbits - 2 - es)
    sh = _bit_length53(ma)
    np.subtract(P, sh, out=sh)
    np.left_shift(ma, sh, out=ma)
    ea -= sh
    sh = _bit_length53(mb)
    np.subtract(P, sh, out=sh)
    np.left_shift(mb, sh, out=mb)
    eb -= sh

    # hi = the larger-magnitude operand, as arithmetic blends over h.
    h = maga >= magb
    sig_hi = ma - mb
    sig_hi *= h
    sig_hi += mb
    sig_lo = mb - ma
    sig_lo *= h
    sig_lo += ma
    exp_hi = ea - eb
    exp_hi *= h
    exp_hi += eb
    exp_lo = eb - ea
    exp_lo *= h
    exp_lo += ea
    sgn_hi = sa - sb
    sgn_hi *= h
    sgn_hi += sb
    sgn_lo = sb - sa
    sgn_lo *= h
    sgn_lo += sa

    # Alignment distance: >= 0 on valid lanes (|hi| >= |lo|); invalid
    # lanes are overridden below, the maximum just keeps shifts in range.
    d = np.subtract(exp_hi, exp_lo, out=exp_lo)
    np.maximum(d, 0, out=d)
    near = d <= _GUARD_BITS
    sig_hi <<= _GUARD_BITS
    dg = d - _GUARD_BITS
    np.clip(dg, 0, 62, out=dg)
    lo_far = sig_lo >> dg
    up = np.subtract(_GUARD_BITS, d, out=d)
    np.clip(up, 0, 62, out=up)
    lo_s = np.left_shift(sig_lo, up, out=up)
    lo_s -= lo_far  # blend: near -> shifted up, far -> shifted down
    lo_s *= near
    lo_s += lo_far
    tail = np.left_shift(_ONE, dg, out=dg)
    tail -= 1
    tail &= sig_lo
    sticky = tail != 0
    np.logical_not(near, out=near)
    sticky &= near  # only far lanes shift bits out

    same = sgn_hi == sgn_lo
    u = same * np.int64(2)  # +1 when adding, -1 when subtracting
    u -= 1
    lo_s *= u
    total = sig_hi
    total += lo_s
    # Subtracting a truncated lo leaves the true difference in
    # (total - 1, total); sticky lanes always have total >= 1 here.
    nsame = np.logical_not(same, out=same)
    nsame &= sticky
    total -= nsame
    exp_out = exp_hi
    exp_out -= _GUARD_BITS

    out = _encode_fields(fmt, sgn_hi, total, exp_out, sticky, _bit_length(total))
    # x + 0 returns the other operand's pattern verbatim; NaR absorbs all.
    out[zb] = a[zb]
    out[za] = b[za]
    naa |= nab
    out[naa] = np.int64(fmt.pattern_nar)
    return out

"""Vectorized posit quantization and LUT arithmetic for tensors.

For formats up to 16 bits the full code-to-value table fits in memory, so
encoding an array is a binary search over the sorted real values plus the
posit rounding rules (ties to even pattern, never round a nonzero value to
zero, clamp to minpos/maxpos).  This is the building block for
posit-quantized neural-network inference (:mod:`repro.nn.posit_inference`).

For 8-bit formats, :class:`PositTable8` additionally tabulates the full
add/mul behaviour (two 256x256 tables — what a software emulation library
like SoftPosit effectively plays with at this width), giving bulk posit8
arithmetic at numpy speed, plus quire-backed exact dot products.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .format import PositFormat
from .quire import Quire
from .value import Posit

__all__ = ["PositCodec", "PositTable8"]


class PositCodec:
    """Bulk encode/decode between float arrays and posit codes."""

    def __init__(self, fmt: PositFormat):
        if fmt.nbits > 16:
            raise ValueError("tabulated codec supports at most 16-bit posits")
        self.fmt = fmt
        n = 1 << fmt.nbits

        #: value of every code; NaR gets NaN.
        values = np.empty(n, dtype=np.float64)
        for pattern in range(n):
            p = Posit(fmt, pattern)
            values[pattern] = np.nan if p.is_nar() else p.to_float()
        self.values = values

        real = ~np.isnan(values)
        order = np.argsort(values[real], kind="stable")
        self._sorted_values = values[real][order]
        self._sorted_codes = np.arange(n)[real][order]
        # Index of the zero code in the sorted arrays.
        self._zero_pos = int(np.searchsorted(self._sorted_values, 0.0))

    # ------------------------------------------------------------------
    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Exact float64 values of the given codes (NaR -> NaN)."""
        return self.values[np.asarray(codes, dtype=np.int64)]

    def encode(self, x: np.ndarray) -> np.ndarray:
        """Round a float array to posit codes, following posit semantics."""
        x = np.asarray(x, dtype=np.float64)
        flat = x.ravel()
        out = np.empty(flat.shape, dtype=np.int64)

        sv, sc = self._sorted_values, self._sorted_codes
        hi_idx = np.searchsorted(sv, flat)  # first value >= x
        hi_idx = np.clip(hi_idx, 1, len(sv) - 1)
        lo_idx = hi_idx - 1

        lo_val, hi_val = sv[lo_idx], sv[hi_idx]
        lo_code, hi_code = sc[lo_idx], sc[hi_idx]

        d_lo = np.abs(flat - lo_val)
        d_hi = np.abs(hi_val - flat)
        pick_hi = d_hi < d_lo
        tie = d_hi == d_lo
        # Ties to the even pattern.
        pick_hi = np.where(tie, (lo_code & 1) == 1, pick_hi)
        out = np.where(pick_hi, hi_code, lo_code)

        # Never round a nonzero value to zero: bump to the adjacent code.
        nz = flat != 0
        zero_sel = (out == 0) & nz
        if np.any(zero_sel):
            bumped = np.where(flat > 0, sc[self._zero_pos + 1], sc[self._zero_pos - 1])
            out = np.where(zero_sel, bumped, out)

        # Saturate outside the representable range.
        out = np.where(flat >= sv[-1], sc[-1], out)
        out = np.where(flat <= sv[0], sc[0], out)
        out = np.where(flat == 0.0, 0, out)
        out = np.where(np.isnan(flat), self.fmt.pattern_nar, out)
        return out.reshape(x.shape)

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Round-trip: the posit-grid value nearest to each element."""
        return self.decode(self.encode(x))

    def quantization_error(self, x: np.ndarray) -> float:
        """Max relative error of representing ``x`` on this posit grid."""
        q = self.quantize(x)
        nz = x != 0
        if not np.any(nz):
            return 0.0
        return float(np.max(np.abs((q[nz] - x[nz]) / x[nz])))


class PositTable8:
    """Exhaustive-table arithmetic for an 8-bit posit format.

    ``add`` and ``mul`` operate elementwise on uint8 code arrays through
    256x256 behaviour tables (built once from the bit-exact model);
    ``dot`` runs an exact quire per output element.
    """

    def __init__(self, fmt: PositFormat):
        if fmt.nbits != 8:
            raise ValueError("PositTable8 requires an 8-bit posit format")
        self.fmt = fmt
        self.codec = PositCodec(fmt)
        posits = [Posit(fmt, p) for p in range(256)]
        self.add_table = np.empty((256, 256), dtype=np.uint8)
        self.mul_table = np.empty((256, 256), dtype=np.uint8)
        for i, a in enumerate(posits):
            for j in range(i, 256):
                s = (a + posits[j]).pattern
                m = (a * posits[j]).pattern
                self.add_table[i, j] = s
                self.add_table[j, i] = s  # both ops commute
                self.mul_table[i, j] = m
                self.mul_table[j, i] = m

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise correctly rounded posit addition on code arrays."""
        return self.add_table[np.asarray(a), np.asarray(b)]

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise correctly rounded posit multiplication on codes."""
        return self.mul_table[np.asarray(a), np.asarray(b)]

    def dot(self, a_codes: np.ndarray, b_codes: np.ndarray) -> int:
        """Exact (quire) dot product of two code vectors, rounded once."""
        q = Quire(self.fmt)
        for pa, pb in zip(np.asarray(a_codes).ravel(), np.asarray(b_codes).ravel()):
            q.add_product(Posit(self.fmt, int(pa)), Posit(self.fmt, int(pb)))
        return q.to_posit().pattern

    def dot_sequential(self, a_codes: np.ndarray, b_codes: np.ndarray) -> int:
        """Baseline dot product with per-step rounding (no quire)."""
        acc = 0  # posit code for zero
        a_flat = np.asarray(a_codes).ravel()
        b_flat = np.asarray(b_codes).ravel()
        prods = self.mul_table[a_flat, b_flat]
        for p in prods:
            acc = int(self.add_table[acc, int(p)])
        return acc

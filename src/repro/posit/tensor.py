"""Vectorized posit quantization and LUT arithmetic for tensors.

For formats up to 16 bits the full code-to-value table fits in memory, so
encoding an array is a binary search over the sorted real values plus the
posit rounding rules (ties to even pattern, never round a nonzero value to
zero, clamp to minpos/maxpos).  This is the building block for
posit-quantized neural-network inference (:mod:`repro.nn.posit_inference`).

For narrow formats, :class:`PositTable` additionally tabulates the full
add/mul behaviour (two ``2**nbits x 2**nbits`` tables — what a software
emulation library like SoftPosit effectively plays with at these widths),
giving bulk posit arithmetic at numpy speed, plus quire-backed exact dot
products.  :class:`PositTable8` is the 8-bit specialization kept for
backward compatibility.

Table construction is O(4**nbits) scalar posit operations; build once and
reuse.  :mod:`repro.engine.registry` memoizes construction per format and
can persist the tables to disk.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .format import PositFormat
from .quire import Quire
from .value import Posit

__all__ = ["PositCodec", "PositTable", "PositTable8"]


def _validate_posit_format(fmt, max_nbits: int = 16) -> None:
    """Reject unsupported widths up front, before any table construction.

    :class:`PositFormat` itself validates on construction, but these
    classes accept any duck-typed descriptor with ``nbits``/``es``; a bad
    one used to surface as an opaque failure deep inside the O(4**nbits)
    build loops.
    """
    nbits = getattr(fmt, "nbits", None)
    es = getattr(fmt, "es", None)
    if not isinstance(nbits, int) or not isinstance(es, int):
        raise ValueError(
            f"posit format descriptor needs integer nbits/es, got {fmt!r}"
        )
    if nbits < 2:
        raise ValueError(f"unsupported posit width nbits={nbits}: need nbits >= 2")
    if es < 0:
        raise ValueError(f"unsupported posit exponent field es={es}: need es >= 0")
    if nbits > max_nbits:
        raise ValueError(
            f"tabulated posit arithmetic supports at most {max_nbits}-bit "
            f"formats, got nbits={nbits}"
        )


class PositCodec:
    """Bulk encode/decode between float arrays and posit codes.

    ``values`` and ``boundaries`` may be prebuilt tables (e.g. loaded from
    the engine's kernel cache) to skip the scalar construction loops.
    """

    def __init__(
        self,
        fmt: PositFormat,
        values: Optional[np.ndarray] = None,
        boundaries: Optional[np.ndarray] = None,
    ):
        _validate_posit_format(fmt)
        self.fmt = fmt
        n = 1 << fmt.nbits

        if values is None:
            #: value of every code; NaR gets NaN.
            values = np.empty(n, dtype=np.float64)
            for pattern in range(n):
                p = Posit(fmt, pattern)
                values[pattern] = np.nan if p.is_nar() else p.to_float()
        else:
            values = np.asarray(values, dtype=np.float64)
            if values.shape != (n,):
                raise ValueError(f"prebuilt value table must have shape ({n},)")
        self.values = values

        real = ~np.isnan(values)
        order = np.argsort(values[real], kind="stable")
        self._sorted_values = values[real][order]
        self._sorted_codes = np.arange(n)[real][order]
        # Index of the zero code in the sorted arrays.
        self._zero_pos = int(np.searchsorted(self._sorted_values, 0.0))

        if boundaries is None:
            boundaries = self._build_boundaries()
        else:
            boundaries = np.asarray(boundaries, dtype=np.float64)
            if boundaries.shape != (len(self._sorted_values) - 1,):
                raise ValueError("prebuilt boundary table has wrong shape")
        #: Rounding boundary between each pair of value-adjacent codes.
        self.boundaries = boundaries

    def _build_boundaries(self) -> np.ndarray:
        """The exact rounding boundary between every adjacent code pair.

        Posit rounding is round-to-nearest-even on the *bit string* (guard
        and sticky bits beyond the truncated pattern), not on the real
        value: in regime ranges where fraction bits are squeezed out the
        grid is geometric and the halfway point is NOT the arithmetic
        midpoint.  The boundary between adjacent ``nbits``-bit patterns is
        exactly the value of the odd pattern between them in the
        ``nbits + 1``-bit format (same es), which float64 holds exactly for
        every format this codec supports.
        """
        fmt = self.fmt
        ext = PositFormat(fmt.nbits + 1, fmt.es)
        n = 1 << fmt.nbits
        half = n >> 1
        ext_mask = (1 << (fmt.nbits + 1)) - 1
        bounds = np.empty(len(self._sorted_codes) - 1, dtype=np.float64)
        for i, code in enumerate(self._sorted_codes[:-1]):
            key = int(code) - (n if code >= half else 0)  # two's-complement order
            bounds[i] = Posit(ext, (2 * key + 1) & ext_mask).to_float()
        return bounds

    # ------------------------------------------------------------------
    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Exact float64 values of the given codes (NaR -> NaN)."""
        return self.values[np.asarray(codes, dtype=np.int64)]

    def encode(self, x: np.ndarray) -> np.ndarray:
        """Round a float array to posit codes, bit-exact with the scalar model."""
        x = np.asarray(x, dtype=np.float64)
        flat = x.ravel()

        sc, b = self._sorted_codes, self.boundaries
        # Values strictly between boundaries round to the enclosed code;
        # values beyond the extreme boundaries clamp to -maxpos/maxpos.
        idx = np.searchsorted(b, flat, side="right")
        out = sc[idx]

        # Exactly on a boundary: tie to the even pattern of the two codes.
        lo = sc[np.maximum(idx - 1, 0)]
        tie = (idx > 0) & (flat == b[np.maximum(idx - 1, 0)])
        out = np.where(tie & ((out & 1) == 1), lo, out)

        # Never round a nonzero value to zero: bump to the adjacent code.
        nz = flat != 0
        zero_sel = (out == 0) & nz
        if np.any(zero_sel):
            bumped = np.where(flat > 0, sc[self._zero_pos + 1], sc[self._zero_pos - 1])
            out = np.where(zero_sel, bumped, out)

        # NaN and +-inf map to NaR like the scalar ``Posit.from_float``
        # (posits have no infinities — only *reals* round to maxpos).
        out = np.where(flat == 0.0, 0, out)
        out = np.where(~np.isfinite(flat), self.fmt.pattern_nar, out)
        return out.reshape(x.shape)

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Round-trip: the posit-grid value nearest to each element."""
        return self.decode(self.encode(x))

    def quantization_error(self, x: np.ndarray) -> float:
        """Max relative error of representing ``x`` on this posit grid."""
        q = self.quantize(x)
        nz = x != 0
        if not np.any(nz):
            return 0.0
        return float(np.max(np.abs((q[nz] - x[nz]) / x[nz])))


class PositTable:
    """Exhaustive-table arithmetic for a narrow posit format.

    ``add`` and ``mul`` operate elementwise on code arrays through
    ``2**nbits x 2**nbits`` behaviour tables (built once from the bit-exact
    scalar model); ``dot`` runs an exact quire per output element.

    ``tables`` may be a prebuilt ``(add_table, mul_table)`` pair (e.g. from
    the engine's kernel cache) to skip the O(4**nbits) construction loop.
    ``max_bits`` guards against accidentally requesting a table build that
    would take hours (12 bits is already 16.7M scalar operation pairs).
    """

    def __init__(
        self,
        fmt: PositFormat,
        tables: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        codec: Optional[PositCodec] = None,
        max_bits: int = 10,
    ):
        _validate_posit_format(fmt)
        if fmt.nbits > max_bits and tables is None:
            raise ValueError(
                f"refusing to build {1 << fmt.nbits}x{1 << fmt.nbits} behaviour "
                f"tables for {fmt}; pass prebuilt tables or raise max_bits"
            )
        self.fmt = fmt
        self.codec = codec if codec is not None else PositCodec(fmt)
        n = 1 << fmt.nbits
        dtype = np.uint8 if fmt.nbits <= 8 else np.uint16
        if tables is not None:
            add_table, mul_table = tables
            self.add_table = np.asarray(add_table, dtype=dtype)
            self.mul_table = np.asarray(mul_table, dtype=dtype)
            if self.add_table.shape != (n, n) or self.mul_table.shape != (n, n):
                raise ValueError(f"prebuilt tables must have shape ({n}, {n})")
            return
        posits = [Posit(fmt, p) for p in range(n)]
        self.add_table = np.empty((n, n), dtype=dtype)
        self.mul_table = np.empty((n, n), dtype=dtype)
        for i, a in enumerate(posits):
            for j in range(i, n):
                s = (a + posits[j]).pattern
                m = (a * posits[j]).pattern
                self.add_table[i, j] = s
                self.add_table[j, i] = s  # both ops commute
                self.mul_table[i, j] = m
                self.mul_table[j, i] = m

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise correctly rounded posit addition on code arrays."""
        return self.add_table[np.asarray(a), np.asarray(b)]

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise correctly rounded posit multiplication on codes."""
        return self.mul_table[np.asarray(a), np.asarray(b)]

    def dot(self, a_codes: np.ndarray, b_codes: np.ndarray) -> int:
        """Exact (quire) dot product of two code vectors, rounded once."""
        q = Quire(self.fmt)
        for pa, pb in zip(np.asarray(a_codes).ravel(), np.asarray(b_codes).ravel()):
            q.add_product(Posit(self.fmt, int(pa)), Posit(self.fmt, int(pb)))
        return q.to_posit().pattern

    def dot_sequential(self, a_codes: np.ndarray, b_codes: np.ndarray) -> int:
        """Baseline dot product with per-step rounding (no quire)."""
        acc = 0  # posit code for zero
        a_flat = np.asarray(a_codes).ravel()
        b_flat = np.asarray(b_codes).ravel()
        prods = self.mul_table[a_flat, b_flat]
        for p in prods:
            acc = int(self.add_table[acc, int(p)])
        return acc


class PositTable8(PositTable):
    """Backward-compatible 8-bit specialization of :class:`PositTable`."""

    def __init__(self, fmt: PositFormat, **kwargs):
        if fmt.nbits != 8:
            raise ValueError("PositTable8 requires an 8-bit posit format")
        super().__init__(fmt, **kwargs)

"""Posit arithmetic (Type III unum), built on two's-complement principles.

Section V of the paper presents posits as a drop-in replacement for IEEE 754
floats, with exactly two exception values (zero and NaR), a total order that
coincides with two's-complement integer comparison (Fig. 7), tapered
accuracy (Figs. 9-10), and hardware costs between "normals-only" floats and
full IEEE compliance.

This package implements:

* arbitrary ``(nbits, es)`` posit formats (:class:`PositFormat`), including
  the standard Posit8/16/32 configurations;
* bit-exact decode/encode with the posit standard's rounding (round to
  nearest, ties to even encoding; no underflow to zero, no overflow to NaR);
* correctly rounded add/sub/mul/div/sqrt/FMA;
* the quire, an exact fixed-point accumulator for dot products;
* conversions to/from floats, integers and exact rationals.

>>> from repro.posit import Posit, POSIT16
>>> x = Posit.from_float(POSIT16, 3.0)
>>> y = Posit.from_float(POSIT16, 1.5)
>>> (x * y).to_float()
4.5
"""

from .format import (
    PositFormat,
    POSIT8,
    POSIT16,
    POSIT32,
    POSIT64,
    STD_POSIT8,
    STD_POSIT16,
    STD_POSIT32,
    STD_POSIT64,
)
from .value import Posit
from .quire import Quire
from .math import (
    posit_exp,
    posit_log,
    posit_log2,
    posit_sin,
    posit_cos,
    posit_atan,
    posit_tanh,
    posit_sqrt,
)

__all__ = [
    "PositFormat",
    "POSIT8",
    "POSIT16",
    "POSIT32",
    "POSIT64",
    "STD_POSIT8",
    "STD_POSIT16",
    "STD_POSIT32",
    "STD_POSIT64",
    "Posit",
    "Quire",
    "posit_exp",
    "posit_log",
    "posit_log2",
    "posit_sin",
    "posit_cos",
    "posit_atan",
    "posit_tanh",
    "posit_sqrt",
]

"""The quire: an exact fixed-point accumulator for posit dot products.

The paper notes a 16-bit posit spans ``2**-28 .. 2**28`` and "can thus be
converted to a signed fixed-point representation with 58 bits"; the quire
extends that observation to sums of *products*, making dot products and
matrix multiplications exact until the single final rounding.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable

from .format import PositFormat
from .value import Posit

__all__ = ["Quire"]


class Quire:
    """Exact accumulator of posit products.

    Internally the value is an unbounded integer scaled by
    ``2**(2 * min_scale)`` — wide enough to hold any product of two posits
    exactly.  A hardware quire has finite carry guard bits
    (:meth:`PositFormat.quire_width`); :attr:`overflowed` reports whether a
    hardware quire of that width would have wrapped.
    """

    __slots__ = ("fmt", "_acc", "_nar", "_ops")

    def __init__(self, fmt: PositFormat):
        self.fmt = fmt
        self._acc = 0  # integer, scaled by 2**frac_scale
        self._nar = False
        self._ops = 0

    @property
    def frac_scale(self) -> int:
        """The accumulator's LSB weight is ``2**-frac_scale``."""
        return 2 * self.fmt.max_scale

    def clear(self) -> "Quire":
        """Reset to zero (also clears the NaR state)."""
        self._acc = 0
        self._nar = False
        self._ops = 0
        return self

    def is_nar(self) -> bool:
        """True once any NaR operand has poisoned the accumulator."""
        return self._nar

    @property
    def overflowed(self) -> bool:
        """Would a hardware quire of ``quire_width()`` bits have overflowed?"""
        limit = 1 << (self.fmt.quire_width() - 1)
        return not -limit <= self._acc < limit

    # ------------------------------------------------------------------
    # Accumulation
    # ------------------------------------------------------------------
    def add_product(self, a: Posit, b: Posit) -> "Quire":
        """Accumulate ``a * b`` exactly (no rounding)."""
        da, db = a.decode(), b.decode()
        if da is None or db is None:
            self._nar = True
            return self
        sa, ma, ea = da
        sb, mb, eb = db
        if ma == 0 or mb == 0:
            return self
        prod = ma * mb
        shift = ea + eb + self.frac_scale
        if shift < 0:
            raise AssertionError("quire scale underflow: product below minpos**2")
        term = prod << shift
        self._acc += -term if sa ^ sb else term
        self._ops += 1
        return self

    def add_posit(self, a: Posit) -> "Quire":
        """Accumulate a single posit exactly."""
        return self.add_product(a, Posit.one(self.fmt))

    def sub_product(self, a: Posit, b: Posit) -> "Quire":
        """Accumulate ``-(a * b)`` exactly."""
        return self.add_product(a.negate(), b)

    def dot(self, xs: Iterable[Posit], ys: Iterable[Posit]) -> Posit:
        """Exact dot product of two posit vectors, rounded once at the end."""
        for x, y in zip(xs, ys):
            self.add_product(x, y)
        return self.to_posit()

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------
    def to_fraction(self) -> Fraction:
        """Exact rational value of the accumulator (raises when NaR)."""
        if self._nar:
            raise ValueError("NaR quire has no rational value")
        return Fraction(self._acc) / (Fraction(2) ** self.frac_scale)

    def to_posit(self) -> Posit:
        """Round the exact accumulator to a posit (the only rounding)."""
        if self._nar:
            return Posit.nar(self.fmt)
        if self._acc == 0:
            return Posit.zero(self.fmt)
        return Posit.from_exact(
            self.fmt, int(self._acc < 0), abs(self._acc), -self.frac_scale
        )

    def __repr__(self):
        if self._nar:
            return f"Quire({self.fmt}, NaR)"
        return f"Quire({self.fmt}, {float(self.to_fraction())!r} after {self._ops} products)"

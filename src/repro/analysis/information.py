"""Information-per-bit of number formats (Section V).

"Depending on the applications, posits often maximize information-per-bit
in the Shannon sense, compared to the other formats."  Operationally: draw
values from an application's distribution, encode them, and measure the
Shannon entropy of the resulting code distribution.  A format whose codes
are used more uniformly extracts more information from its bits; formats
that burn patterns on NaNs or unreachable magnitudes waste them.
"""

from __future__ import annotations

from typing import Dict, Union

import numpy as np

from ..fixedpoint import FixedPoint, QFormat
from ..floats import FloatFormat, SoftFloat
from ..posit import PositFormat
from ..posit.tensor import PositCodec

__all__ = ["code_entropy", "information_per_bit", "format_information_comparison"]

AnyFormat = Union[FloatFormat, PositFormat, QFormat]


def _encode_samples(fmt: AnyFormat, samples: np.ndarray) -> np.ndarray:
    if isinstance(fmt, PositFormat):
        return PositCodec(fmt).encode(samples)
    if isinstance(fmt, FloatFormat):
        return np.array(
            [SoftFloat.from_float(fmt, float(x)).pattern for x in samples], dtype=np.int64
        )
    if isinstance(fmt, QFormat):
        return np.array(
            [FixedPoint.from_float(fmt, float(x)).pattern for x in samples], dtype=np.int64
        )
    raise TypeError(f"unsupported format {fmt!r}")


def code_entropy(fmt: AnyFormat, samples: np.ndarray) -> float:
    """Shannon entropy (bits) of the code distribution for these samples."""
    codes = _encode_samples(fmt, np.asarray(samples, dtype=np.float64))
    _, counts = np.unique(codes, return_counts=True)
    p = counts / counts.sum()
    return float(-(p * np.log2(p)).sum())


def information_per_bit(fmt: AnyFormat, samples: np.ndarray) -> float:
    """Entropy of the code distribution divided by the storage width."""
    width = fmt.width if not isinstance(fmt, PositFormat) else fmt.nbits
    return code_entropy(fmt, samples) / width


def format_information_comparison(
    samples: np.ndarray, formats: Dict[str, AnyFormat]
) -> Dict[str, float]:
    """Information-per-bit of several formats on the same sample set."""
    return {name: information_per_bit(fmt, samples) for name, fmt in formats.items()}

"""Cross-format accuracy and structure studies (Figs. 6, 7, 9, 10).

* :mod:`repro.analysis.ring` — the ring plots: how float and posit bit
  patterns map onto the two's-complement integer ring, the float
  "trap to software" fraction, and the monotonicity structure.
* :mod:`repro.analysis.accuracy` — decimal-accuracy curves as a function
  of magnitude (Fig. 9) and of the bit string (Fig. 10).
* :mod:`repro.analysis.ranges` — dynamic ranges and information-per-bit.
"""

from .ring import (
    float_ring,
    posit_ring,
    RingEntry,
    trap_fraction,
    monotone_runs,
    two_regime_fraction,
)
from .accuracy import (
    decimal_accuracy_float,
    decimal_accuracy_posit,
    decimal_accuracy_fixed,
    accuracy_vs_magnitude,
    accuracy_vs_bitstring,
)
from .ranges import dynamic_range_decades, format_summary
from .information import code_entropy, information_per_bit, format_information_comparison

__all__ = [
    "float_ring",
    "posit_ring",
    "RingEntry",
    "trap_fraction",
    "monotone_runs",
    "two_regime_fraction",
    "decimal_accuracy_float",
    "decimal_accuracy_posit",
    "decimal_accuracy_fixed",
    "accuracy_vs_magnitude",
    "accuracy_vs_bitstring",
    "dynamic_range_decades",
    "format_summary",
    "code_entropy",
    "information_per_bit",
    "format_information_comparison",
]

"""Dynamic ranges and format summaries (the numbers quoted around Fig. 10)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

from ..fixedpoint import QFormat
from ..floats import FloatFormat
from ..posit import PositFormat

__all__ = ["dynamic_range_decades", "format_summary", "FormatSummary"]


def dynamic_range_decades(fmt: Union[FloatFormat, PositFormat, QFormat]) -> float:
    """Orders of magnitude between the smallest and largest positive value.

    Floats are measured over their *normal* range (the paper: "9 orders of
    magnitude for IEEE 754 Standard 16-bit floats in the normal range").
    """
    if isinstance(fmt, FloatFormat):
        return math.log10(fmt.max_finite) - math.log10(fmt.min_normal)
    if isinstance(fmt, PositFormat):
        return 2 * fmt.max_scale * math.log10(2.0)
    if isinstance(fmt, QFormat):
        if fmt.max_raw < 1:
            return 0.0
        return math.log10(fmt.max_raw)  # max/min = max_raw / 1 ulp units
    raise TypeError(f"unsupported format {fmt!r}")


@dataclass
class FormatSummary:
    name: str
    width: int
    dynamic_range_decades: float
    max_decimal_accuracy: float
    exception_patterns: int


def format_summary(fmt: Union[FloatFormat, PositFormat, QFormat]) -> FormatSummary:
    """Headline numbers for one format."""
    if isinstance(fmt, FloatFormat):
        # Peak accuracy: relative error 2^-(p+1) at the center of the range.
        acc = (fmt.frac_bits + 1) * math.log10(2.0)
        # Exceptions: both all-0 and all-1 exponent blocks.
        exceptions = 2 * (1 << (fmt.frac_bits + 1))
        return FormatSummary(fmt.name, fmt.width, dynamic_range_decades(fmt), acc, exceptions)
    if isinstance(fmt, PositFormat):
        acc = (fmt.max_fraction_bits + 1) * math.log10(2.0)
        return FormatSummary(str(fmt), fmt.nbits, dynamic_range_decades(fmt), acc, 2)
    if isinstance(fmt, QFormat):
        acc = math.log10(max(2, fmt.max_raw))
        return FormatSummary(str(fmt), fmt.width, dynamic_range_decades(fmt), acc, 0)
    raise TypeError(f"unsupported format {fmt!r}")

"""Ring-plot structure of 16-bit floats and posits (Figs. 6-7).

Both figures place every 16-bit pattern on the two's-complement integer
ring (0 at the bottom, 0111...1 before the top, 100...0 at the top) and ask
how the format's *values* behave along it: floats reverse direction on the
negative half and devote ~6% of patterns to trap-to-software regions
(subnormals, infinities, NaN); posits are monotone all the way around with
exactly two exception patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional

from .._bits import from_twos_complement
from ..floats import FloatClass, FloatFormat, SoftFloat
from ..posit import Posit, PositFormat

__all__ = ["RingEntry", "float_ring", "posit_ring", "trap_fraction", "monotone_runs"]


@dataclass
class RingEntry:
    """One pattern on the ring."""

    pattern: int
    ring_position: int  # the two's-complement integer the pattern spells
    kind: str  # 'normal', 'subnormal', 'zero', 'inf', 'nan', 'real', 'nar'
    value: Optional[Fraction]  # None for non-real entries


def float_ring(fmt: FloatFormat, stride: int = 1) -> List[RingEntry]:
    """Classify every ``stride``-th float pattern on the integer ring."""
    out = []
    for pattern in range(0, 1 << fmt.width, stride):
        sf = SoftFloat(fmt, pattern)
        cls = sf.classify()
        kind = {
            FloatClass.ZERO: "zero",
            FloatClass.SUBNORMAL: "subnormal",
            FloatClass.NORMAL: "normal",
            FloatClass.INFINITE: "inf",
            FloatClass.QUIET_NAN: "nan",
            FloatClass.SIGNALING_NAN: "nan",
        }[cls]
        value = sf.to_fraction() if sf.is_finite() else None
        out.append(
            RingEntry(pattern, from_twos_complement(pattern, fmt.width), kind, value)
        )
    return out


def posit_ring(fmt: PositFormat, stride: int = 1) -> List[RingEntry]:
    """Classify every ``stride``-th posit pattern on the integer ring."""
    out = []
    for pattern in range(0, 1 << fmt.nbits, stride):
        p = Posit(fmt, pattern)
        if p.is_nar():
            kind, value = "nar", None
        elif p.is_zero():
            kind, value = "zero", Fraction(0)
        else:
            kind, value = "real", p.to_fraction()
        out.append(
            RingEntry(pattern, from_twos_complement(pattern, fmt.nbits), kind, value)
        )
    return out


def trap_fraction(entries: List[RingEntry]) -> float:
    """Fraction of patterns in trap-to-software regions.

    For floats: subnormals + infinities + NaNs (exponent all-0 with nonzero
    fraction, or all-1) — "calculations run orders of magnitude slower for
    about 6 percent of the possible values".  For posits: NaR only.
    """
    slow = sum(1 for e in entries if e.kind in ("subnormal", "inf", "nan", "nar"))
    return slow / len(entries)


def monotone_runs(entries: List[RingEntry]) -> int:
    """Number of maximal monotone segments of value along the ring.

    Posits give exactly 1 (values only increase with ring position: the
    total order *is* the integer order, Fig. 7); floats give 2 (values
    increase on the positive half but run backwards on the negative half,
    Fig. 6).  Equal adjacent values (the two signed zeros) do not break a
    segment; non-real entries are skipped.
    """
    real = [e for e in sorted(entries, key=lambda e: e.ring_position) if e.value is not None]
    if len(real) < 2:
        return min(len(real), 1)
    runs = 1
    direction = 0  # +1 increasing, -1 decreasing, 0 unknown yet
    for prev, cur in zip(real, real[1:]):
        if cur.value == prev.value:
            continue
        step = 1 if cur.value > prev.value else -1
        if direction == 0:
            direction = step
        elif step != direction:
            runs += 1
            direction = step
    return runs


def two_regime_fraction(fmt: PositFormat) -> float:
    """Fraction of posit patterns with exactly two regime bits.

    These are the shaded arcs of Fig. 7: patterns that "can be decoded as
    easily as floats, because there are exactly two regime bits and a
    count-leading-zero-or-one operation is not needed".
    """
    count = 0
    total = 1 << fmt.nbits
    for pattern in range(total):
        p = Posit(fmt, pattern)
        if p.is_nar() or p.is_zero():
            continue
        k = p.regime()
        if k in (0, -1):  # regimes '10' and '01'
            count += 1
    return count / total

"""Decimal-accuracy curves (Figs. 9-10).

Decimal accuracy of representing a real ``x`` in a format is
``-log10(relative rounding error)`` — the number of correct decimal digits
the format keeps.  Plotted against ``log10 |x|`` this gives the shapes the
paper describes: a trapezoid for floats ("flat accuracy except for the
subnormal range"), an upward ramp for fixed point, and an isosceles
triangle centered at magnitude 1 for posits.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Callable, List, Optional, Tuple

from ..fixedpoint import FixedPoint, QFormat
from ..floats import FloatFormat, SoftFloat
from ..posit import Posit, PositFormat

__all__ = [
    "decimal_accuracy_float",
    "decimal_accuracy_posit",
    "decimal_accuracy_fixed",
    "accuracy_vs_magnitude",
    "accuracy_vs_bitstring",
]


def _decimal_accuracy(exact: Fraction, rounded: Fraction) -> float:
    """-log10 of the relative error (inf -> capped at 17 digits)."""
    if exact == 0:
        return 0.0
    err = abs(rounded - exact) / abs(exact)
    if err == 0:
        return 17.0
    return min(17.0, -math.log10(float(err)))


def decimal_accuracy_float(fmt: FloatFormat, x: Fraction) -> float:
    """Decimal accuracy of rounding ``x`` into a float format.

    Values that overflow or underflow score 0 (no useful digits).
    """
    sf = SoftFloat.from_fraction(fmt, x)
    if not sf.is_finite():
        return 0.0
    rounded = sf.to_fraction()
    if rounded == 0 and x != 0:
        return 0.0
    return _decimal_accuracy(x, rounded)


def decimal_accuracy_posit(fmt: PositFormat, x: Fraction) -> float:
    p = Posit.from_fraction(fmt, x)
    if p.is_nar():
        return 0.0
    rounded = p.to_fraction()
    if rounded == 0 and x != 0:
        return 0.0
    acc = _decimal_accuracy(x, rounded)
    # Saturated values carry no relative-accuracy guarantee.
    if p.pattern in (fmt.pattern_maxpos, fmt.pattern_minpos) and acc < 1:
        return max(acc, 0.0)
    return acc


def decimal_accuracy_fixed(fmt: QFormat, x: Fraction) -> float:
    fp = FixedPoint.from_fraction(fmt, x)
    rounded = fp.to_fraction()
    if rounded == 0 and x != 0:
        return 0.0
    max_value = Fraction(fmt.max_raw) * Fraction(2) ** (-fmt.frac_bits)
    if abs(x) > max_value:
        return 0.0  # saturated: no accuracy guarantee
    return _decimal_accuracy(x, rounded)


def accuracy_vs_magnitude(
    accuracy_fn: Callable[[Fraction], float],
    log10_min: float = -10.0,
    log10_max: float = 10.0,
    points: int = 121,
) -> List[Tuple[float, float]]:
    """Sample a decimal-accuracy curve over magnitudes 10^min .. 10^max.

    Each magnitude is probed with a bundle of mantissas to average away
    the sawtooth of individual roundings (the paper's smooth curves).
    """
    out = []
    # Odd-prime mantissa ratios: essentially never exactly representable,
    # so the curve measures typical rounding (the paper's smooth plots)
    # rather than lucky grid hits.
    mantissas = [Fraction(p, 9973) for p in (10007, 12011, 14009, 16007, 18013)]
    for i in range(points):
        lg = log10_min + (log10_max - log10_min) * i / (points - 1)
        # Fraction(float) is exact, so the probe magnitudes are well defined.
        base = Fraction(10.0**lg)
        accs = [accuracy_fn(m * base) for m in mantissas]
        out.append((float(lg), sum(accs) / len(accs)))
    return out


def accuracy_vs_bitstring(
    value_of_pattern: Callable[[int], Optional[Fraction]],
    patterns: range,
) -> List[Tuple[int, float]]:
    """Fig. 10: accuracy achieved *at* each positive code of a format.

    At a representable value the rounding error is zero, so the meaningful
    quantity is the accuracy of representing the *neighbourhood*: half the
    gap to the next code up, relative to the value — the best case an
    input landing in this code's bin can expect.
    """
    out = []
    prev: Optional[Tuple[int, Fraction]] = None
    values = []
    for pattern in patterns:
        v = value_of_pattern(pattern)
        if v is not None and v > 0:
            values.append((pattern, v))
    values.sort(key=lambda t: t[1])
    for (p1, v1), (p2, v2) in zip(values, values[1:]):
        gap = (v2 - v1) / 2
        if v1 == 0:
            continue
        rel = gap / v1
        acc = min(17.0, -math.log10(float(rel))) if rel > 0 else 17.0
        out.append((p1, acc))
    return out

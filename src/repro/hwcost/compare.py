"""The hardware cost table behind Section V's conclusion."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..circuits import Circuit, cost_report
from ..floats import FloatFormat
from ..posit import PositFormat
from .float_units import build_float_multiplier
from .posit_units import build_posit_multiplier

__all__ = ["ComparisonRow", "hardware_comparison"]


@dataclass
class ComparisonRow:
    """One multiplier design point.

    ``sig_mult_gates`` counts the significand array multiplier alone;
    ``overhead_gates`` is everything else — decode, exponent/regime
    handling, normalization, rounding, exception logic.  Separating the two
    is what makes the comparison *fair* in the paper's sense: a posit
    carries more significand bits than a same-width float (tapered
    precision), so its raw multiplier array is necessarily bigger; the
    format-complexity argument of Section V is about the overhead.
    """

    design: str
    gates: int
    gate_area: float
    depth: int
    luts: int
    sig_bits: int
    sig_mult_gates: int

    @property
    def overhead_gates(self) -> int:
        return self.gates - self.sig_mult_gates

    @classmethod
    def from_circuit(
        cls, circuit: Circuit, sig_bits: int, has_multiplier_array: bool = True
    ) -> "ComparisonRow":
        rpt = cost_report(circuit)
        return cls(
            design=circuit.name,
            gates=rpt.gates,
            gate_area=rpt.gate_area,
            depth=rpt.depth,
            luts=rpt.luts,
            sig_bits=sig_bits,
            sig_mult_gates=_sig_multiplier_gates(sig_bits) if has_multiplier_array else 0,
        )


def _sig_multiplier_gates(width: int) -> int:
    """Gate count of a bare ``width x width`` array multiplier."""
    from ..circuits import Circuit as _C, array_multiplier

    c = _C("sigmul")
    a = c.input_bus("a", width)
    b = c.input_bus("b", width)
    c.output_bus("p", array_multiplier(c, a, b))
    return len(c.gates)


def adder_comparison(
    posit_fmt: PositFormat, float_fmt: FloatFormat
) -> List[ComparisonRow]:
    """Same three-way comparison for the addition datapath.

    The paper's Section V devotes its pseudo-code to the *conditional*
    structure sign-magnitude addition forces; posits pay instead for the
    regime decode/encode shifters around a plain two's-complement add.
    """
    from .float_adder import build_float_adder
    from .posit_adder import build_posit_adder

    if posit_fmt.nbits != float_fmt.width:
        raise ValueError("compare equal storage widths")
    float_sig = float_fmt.frac_bits + 1
    posit_sig = posit_fmt.nbits - posit_fmt.es
    return [
        ComparisonRow.from_circuit(
            build_float_adder(float_fmt, full_ieee=False), float_sig, has_multiplier_array=False
        ),
        ComparisonRow.from_circuit(
            build_posit_adder(posit_fmt), posit_sig, has_multiplier_array=False
        ),
        ComparisonRow.from_circuit(
            build_float_adder(float_fmt, full_ieee=True), float_sig, has_multiplier_array=False
        ),
    ]


def hardware_comparison(
    posit_fmt: PositFormat, float_fmt: FloatFormat
) -> List[ComparisonRow]:
    """Build the three same-width multipliers and report their costs.

    The paper's claim, checked by the benchmarks: on the *overhead* (all
    logic except the significand array) the posit sits between the
    normals-only float and the full-IEEE float, which pays for subnormal
    normalization and gradual underflow.
    """
    if posit_fmt.nbits != float_fmt.width:
        raise ValueError("compare equal storage widths")
    float_sig = float_fmt.frac_bits + 1
    posit_sig = posit_fmt.nbits - posit_fmt.es  # F = m + 1 - es
    rows = [
        ComparisonRow.from_circuit(
            build_float_multiplier(float_fmt, full_ieee=False), float_sig
        ),
        ComparisonRow.from_circuit(build_posit_multiplier(posit_fmt), posit_sig),
        ComparisonRow.from_circuit(
            build_float_multiplier(float_fmt, full_ieee=True), float_sig
        ),
    ]
    return rows

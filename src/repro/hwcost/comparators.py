"""Comparison-unit circuits: floats need one, posits don't (Section V).

"The IEEE 754 Standard requires 22 different kinds of comparison operations
because of the NaN exceptions ... Substantial circuit logic is needed for
the comparison of two floats.  In contrast ... there is no need for a posit
comparison unit separate from the one used for integers."

:func:`build_float_comparator` produces the lt/eq/unordered relation of two
IEEE values (NaN detection, +-0 equality, sign-magnitude ordering);
:func:`build_integer_comparator` is the plain two's-complement comparator
that serves both integers *and* posits (NaR, as the most negative pattern,
orders itself below everything and equal to itself for free).
"""

from __future__ import annotations

from typing import List

from ..circuits import Circuit
from ..circuits.components import ripple_carry_adder
from ..circuits.netlist import Net
from ..floats import FloatFormat

__all__ = ["build_float_comparator", "build_integer_comparator"]


def _and_all(c: Circuit, nets) -> Net:
    nets = list(nets)
    return nets[0] if len(nets) == 1 else c.and_(*nets)


def _magnitude_less(c: Circuit, a: List[Net], b: List[Net]) -> Net:
    """a < b as unsigned words, via a - b borrow."""
    # a - b: a + ~b + 1; borrow-out == 0 means a < b.
    nb = [c.not_(x) for x in b]
    _, carry = ripple_carry_adder(c, a, nb, cin=c.const(1))
    return c.not_(carry)


def build_integer_comparator(width: int) -> Circuit:
    """Signed two's-complement comparator: outputs lt and eq.

    This single unit also compares posits correctly (Fig. 7): NaR
    (10...0) is the most negative integer, so ``NaR < everything`` and
    ``NaR == NaR`` need no special cases.
    """
    c = Circuit(f"int{width}_cmp")
    a = c.input_bus("a", width)
    b = c.input_bus("b", width)
    # Signed compare: flip the sign bits and compare unsigned.
    a2 = a[:-1] + [c.not_(a[-1])]
    b2 = b[:-1] + [c.not_(b[-1])]
    lt = _magnitude_less(c, a2, b2)
    eq_bits = [c.xnor(x, y) for x, y in zip(a, b)]
    c.outputs(lt=lt, eq=_and_all(c, eq_bits))
    return c


def build_float_comparator(fmt: FloatFormat) -> Circuit:
    """IEEE float relation unit: outputs lt, eq, unordered.

    Handles the Section V pain points explicitly: NaN operands make the
    pair unordered, and the two zero patterns compare equal despite
    differing in the sign bit.
    """
    c = Circuit(f"{fmt.name}_cmp")
    e, f = fmt.exp_bits, fmt.frac_bits
    n = fmt.width
    a = c.input_bus("a", n)
    b = c.input_bus("b", n)

    def classify(bits):
        frac = bits[:f]
        exp = bits[f : f + e]
        exp_ones = _and_all(c, exp)
        frac_zero = c.nor(*frac)
        exp_zero = c.nor(*exp)
        return {
            "sign": bits[-1],
            "is_nan": c.and_(exp_ones, c.not_(frac_zero)),
            "is_zero": c.and_(exp_zero, frac_zero),
            "mag": bits[:-1],  # exponent+fraction compare as an integer
        }

    da, db = classify(a), classify(b)
    unordered = c.or_(da["is_nan"], db["is_nan"])
    both_zero = c.and_(da["is_zero"], db["is_zero"])

    mag_lt = _magnitude_less(c, da["mag"], db["mag"])
    mag_gt = _magnitude_less(c, db["mag"], da["mag"])
    mag_eq = _and_all(c, [c.xnor(x, y) for x, y in zip(da["mag"], db["mag"])])

    sa, sb = da["sign"], db["sign"]
    both_neg = c.and_(sa, sb)
    # lt: (a negative, b not, not both zero) OR (same sign, magnitude order
    # with direction flipped for negatives).
    neg_pos = c.and_(sa, c.not_(sb))
    same_sign = c.xnor(sa, sb)
    dir_lt = c.mux(both_neg, mag_lt, mag_gt)  # negatives reverse direction
    lt_same = c.and_(same_sign, dir_lt)
    lt = c.and_(
        c.or_(c.and_(neg_pos, c.not_(both_zero)), lt_same),
        c.not_(unordered),
    )
    eq = c.and_(
        c.or_(c.and_(mag_eq, same_sign), both_zero),
        c.not_(unordered),
    )
    c.outputs(lt=lt, eq=eq, unordered=unordered)
    return c

"""Gate-level IEEE-style float multipliers, in two compliance levels.

Section V: "comparisons of posit and float hardware complexity need to be
careful to note whether the float hardware actually supports IEEE 754 or if
the compliance is limited to normal floats only."  The two builders here
make that difference measurable:

* ``build_float_multiplier(fmt, full_ieee=False)`` — the *normals-only*
  datapath processors actually harden: no subnormal inputs (treated as
  zero), results below the normal range flush to zero, no NaN/infinity
  logic.  This is the fast path of the "Trap to Software" picture in
  Fig. 6.
* ``build_float_multiplier(fmt, full_ieee=True)`` — full IEEE 754:
  subnormal operand normalization (a leading-zero counter and left
  shifter), gradual underflow on the output (right shifter with sticky
  collection), infinities, NaN propagation, and signed zeros.

Both are verified bit-exactly against :class:`repro.floats.SoftFloat` in
the test suite (exhaustively for 8-bit formats, on their respective input
domains).
"""

from __future__ import annotations

from typing import List

from ..circuits import Circuit
from ..circuits.components import (
    array_multiplier,
    barrel_shifter,
    leading_zero_counter,
    mux_word,
    ripple_carry_adder,
)
from ..circuits.netlist import Net
from ..floats import FloatFormat

__all__ = ["build_float_decoder", "build_float_multiplier"]


def _const_word(c: Circuit, value: int, width: int) -> List[Net]:
    return [c.const((value >> i) & 1) for i in range(width)]


def _pad(c: Circuit, word, width: int) -> List[Net]:
    return list(word) + [c.const(0)] * (width - len(word))


def _sign_extend(word, width: int) -> List[Net]:
    return list(word) + [word[-1]] * (width - len(word))


def _or_all(c: Circuit, nets) -> Net:
    nets = list(nets)
    if not nets:
        return c.const(0)
    return nets[0] if len(nets) == 1 else c.or_(*nets)


def _and_all(c: Circuit, nets) -> Net:
    nets = list(nets)
    return nets[0] if len(nets) == 1 else c.and_(*nets)


def build_float_decoder(fmt: FloatFormat, full_ieee: bool = True) -> Circuit:
    """Stand-alone float decoder (field split + classification +
    subnormal normalization when ``full_ieee``)."""
    c = Circuit(f"{fmt.name}_decode{'_full' if full_ieee else '_normal'}")
    e, f = fmt.exp_bits, fmt.frac_bits
    bits = c.input_bus("x", fmt.width)
    frac = bits[:f]
    exp = bits[f : f + e]
    sign = bits[-1]

    exp_zero = c.nor(*exp)
    exp_ones = _and_all(c, exp)
    frac_zero = c.nor(*frac)
    c.outputs(
        sign=sign,
        is_zero=c.and_(exp_zero, frac_zero),
        is_inf=c.and_(exp_ones, frac_zero),
        is_nan=c.and_(exp_ones, c.not_(frac_zero)),
        is_sub=c.and_(exp_zero, c.not_(frac_zero)),
    )
    hidden = c.not_(exp_zero)
    sig = frac + [hidden]
    if full_ieee:
        lzc = leading_zero_counter(c, sig)
        sig = barrel_shifter(c, sig, lzc, left=True)
    c.output_bus("sig", sig)
    c.output_bus("exp", exp)
    return c


def build_float_multiplier(fmt: FloatFormat, full_ieee: bool = True) -> Circuit:
    """Combinational float multiplier (RNE), normals-only or full IEEE."""
    c = Circuit(f"{fmt.name}_mul_{'full' if full_ieee else 'normal'}")
    e, f = fmt.exp_bits, fmt.frac_bits
    n = fmt.width
    S = e + 3  # signed exponent datapath width

    a_bits = c.input_bus("a", n)
    b_bits = c.input_bus("b", n)

    def decode(bits):
        frac = bits[:f]
        exp = bits[f : f + e]
        sign = bits[-1]
        exp_zero = c.nor(*exp)
        exp_ones = _and_all(c, exp)
        frac_zero = c.nor(*frac)
        hidden = c.not_(exp_zero)
        sig = frac + [hidden]  # f+1 bits, LSB-first
        # Effective exponent: max(exp, 1) so subnormals read as emin.
        exp_eff = [c.or_(exp[0], exp_zero)] + exp[1:]
        if full_ieee:
            lzc = leading_zero_counter(c, sig)
            sig = barrel_shifter(c, sig, lzc, left=True)
            exp_signed, _ = ripple_carry_adder(
                c,
                _pad(c, exp_eff, S),
                [c.not_(x) for x in _pad(c, lzc, S)],
                cin=c.const(1),
            )  # exp_eff - lzc
        else:
            exp_signed = _pad(c, exp_eff, S)
        return {
            "sign": sign,
            "exp": exp_signed,
            "sig": sig,
            "is_zero": c.and_(exp_zero, frac_zero if full_ieee else c.const(1)),
            "zero_or_sub": exp_zero,
            "is_inf": c.and_(exp_ones, frac_zero),
            "is_nan": c.and_(exp_ones, c.not_(frac_zero)),
        }

    da, db = decode(a_bits), decode(b_bits)

    # Significand product: (f+1) x (f+1) -> 2f+2 bits.
    prod = array_multiplier(c, da["sig"], db["sig"])
    ovf = prod[2 * f + 1]

    # Fraction window below the leading one (2f+1 bits, LSB-first).
    window = [c.mux(ovf, c.const(0), prod[0])]
    for j in range(1, 2 * f + 1):
        window.append(c.mux(ovf, prod[j - 1], prod[j]))

    # Result exponent (biased): Ea + Eb - bias + ovf.
    esum, _ = ripple_carry_adder(c, da["exp"], db["exp"])
    neg_bias = _const_word(c, (-fmt.bias) & ((1 << S) - 1), S)
    esum, _ = ripple_carry_adder(c, esum, neg_bias)
    esum, _ = ripple_carry_adder(c, esum, _pad(c, [ovf], S))
    e_neg_or_zero = c.or_(esum[-1], c.nor(*esum))  # Eres <= 0

    # ---------------- normal path ----------------------------------------
    frac_norm = window[f + 1 :]  # top f bits (LSB-first slice)
    guard_n = window[f]
    sticky_n = _or_all(c, window[:f])
    inc_n = c.and_(guard_n, c.or_(sticky_n, frac_norm[0]))
    frac_n_rounded, carry_n = ripple_carry_adder(c, frac_norm, _pad(c, [inc_n], f))
    exp_n, _ = ripple_carry_adder(c, esum, _pad(c, [carry_n], S))

    # Overflow to infinity: exp_n >= 2^e - 1 (and not negative).
    ge_inf = c.and_(
        c.not_(exp_n[-1]),
        c.or_(_or_all(c, exp_n[e:-1]), _and_all(c, exp_n[:e])),
    )

    if full_ieee:
        # ------------- subnormal (gradual underflow) path ----------------
        # V = 1.window as a 2f+2-bit word; shift right by t = 1 - Eres.
        V = window + [c.const(1)]
        width_v = 2 * f + 2
        t_full, _ = ripple_carry_adder(
            c,
            _const_word(c, 1, S),
            [c.not_(x) for x in esum],
            cin=c.const(1),
        )  # 1 - esum
        t_max = f + 3
        t_bits = t_max.bit_length()
        t_high = _or_all(c, t_full[t_bits:-1])
        # When Eres <= 0, t >= 1; clamp t to t_max.
        t_sel = mux_word(c, t_high, t_full[:t_bits], _const_word(c, t_max, t_bits))
        shifted = barrel_shifter(c, V, t_sel, left=False)
        # Sticky from the bits the right shift dropped: mark them with a
        # left-shifted all-ones mask.
        ones = [c.const(1)] * width_v
        keep_mask = barrel_shifter(c, ones, t_sel, left=True)
        dropped = [c.and_(v, c.not_(k)) for v, k in zip(V, keep_mask)]
        sticky_dropped = _or_all(c, dropped)

        # Subnormal fraction = (1.window << f) >> t, i.e. bits f+1..2f of the
        # shifted word; the bit below (index f) is the guard.
        frac_s = shifted[f + 1 : 2 * f + 1]
        guard_s = shifted[f]
        sticky_s = c.or_(_or_all(c, shifted[:f]), sticky_dropped)
        inc_s = c.and_(guard_s, c.or_(sticky_s, frac_s[0]))
        frac_s_rounded, carry_s = ripple_carry_adder(c, frac_s, _pad(c, [inc_s], f))
        exp_s = _pad(c, [carry_s], e)  # rounds up into the smallest normal

        frac_field = mux_word(c, e_neg_or_zero, frac_n_rounded, frac_s_rounded)
        exp_field = mux_word(c, e_neg_or_zero, exp_n[:e], exp_s)
    else:
        # Normals-only: flush results below the normal range to zero.
        zero_f = _const_word(c, 0, f)
        frac_field = mux_word(c, e_neg_or_zero, frac_n_rounded, zero_f)
        exp_field = mux_word(c, e_neg_or_zero, exp_n[:e], _const_word(c, 0, e))

    # Overflow to infinity (normal path only; subnormal path cannot).
    use_inf = c.and_(ge_inf, c.not_(e_neg_or_zero))
    frac_field = mux_word(c, use_inf, frac_field, _const_word(c, 0, f))
    exp_field = mux_word(c, use_inf, exp_field, _const_word(c, (1 << e) - 1, e))

    sign_out = c.xor(da["sign"], db["sign"])

    # Specials.
    zero_in = (
        c.or_(da["is_zero"], db["is_zero"])
        if full_ieee
        else c.or_(da["zero_or_sub"], db["zero_or_sub"])
    )
    result = frac_field + exp_field + [sign_out]
    zero_word = _const_word(c, 0, f) + _const_word(c, 0, e) + [sign_out]
    result = mux_word(c, zero_in, result, zero_word)

    if full_ieee:
        inf_in = c.or_(da["is_inf"], db["is_inf"])
        nan_in = c.or_(
            c.or_(da["is_nan"], db["is_nan"]),
            c.and_(inf_in, zero_in),  # inf * 0
        )
        inf_word = _const_word(c, 0, f) + _const_word(c, (1 << e) - 1, e) + [sign_out]
        result = mux_word(c, inf_in, result, inf_word)
        qnan = fmt.pattern_quiet_nan
        nan_word = [c.const((qnan >> i) & 1) for i in range(n)]
        result = mux_word(c, nan_in, result, nan_word)

    c.output_bus("p", result)
    return c

"""Gate-level posit datapaths (Fig. 8).

The multiplier follows the design insights Section V credits to Yonemoto:

* operands are decoded with **two's-complement** conditional negation — no
  separate circuitry for negative values, no sign/magnitude re-encoding;
* the regime is a **count-leading-signs** ("the OR tree takes no more than
  six logic levels"), feeding one barrel shifter that exposes the exponent
  and fraction fields at fixed positions;
* the encode side rebuilds the regime with a single **arithmetic right
  shift**: the seed word starts ``10`` for non-negative regimes and ``01``
  for negative ones, so the shifter's MSB-replication manufactures the
  regime run for free;
* rounding is round-to-nearest-even on the encoding with guard/sticky, and
  saturation (never NaR, never zero) costs two small detectors.

Every circuit is verified bit-exactly against :class:`repro.posit.Posit`
(exhaustively for 8-bit formats in the test suite).
"""

from __future__ import annotations

from typing import List

from ..circuits import Circuit
from ..circuits.components import (
    barrel_shifter,
    conditional_negate,
    leading_sign_counter,
    mux_word,
    ripple_carry_adder,
    array_multiplier,
)
from ..circuits.netlist import Net
from ..posit import PositFormat

__all__ = ["build_posit_decoder", "build_posit_multiplier"]


def _const_word(c: Circuit, value: int, width: int) -> List[Net]:
    return [c.const((value >> i) & 1) for i in range(width)]


def _pad(c: Circuit, word: List[Net], width: int) -> List[Net]:
    """Zero-extend an LSB-first word."""
    return list(word) + [c.const(0)] * (width - len(word))


def _sign_extend(c: Circuit, word: List[Net], width: int) -> List[Net]:
    return list(word) + [word[-1]] * (width - len(word))


def _add_signed(c: Circuit, a: List[Net], b: List[Net], width: int) -> List[Net]:
    s, _ = ripple_carry_adder(c, _sign_extend(c, a, width), _sign_extend(c, b, width))
    return s


def _negate_word(c: Circuit, a: List[Net]) -> List[Net]:
    inv = [c.not_(x) for x in a]
    one = _const_word(c, 1, len(a))
    s, _ = ripple_carry_adder(c, inv, one)
    return s


def _decode_operand(c: Circuit, bits: List[Net], fmt: PositFormat, tag: str):
    """Shared decode logic; returns a dict of decoded signals.

    ``bits`` is the LSB-first posit pattern.  Outputs:
    ``sign``, ``is_zero``, ``is_nar``, ``scale`` (signed, LSB-first,
    scale_bits wide), ``sig`` (significand 1.f, LSB-first, F bits with the
    hidden 1 at the MSB).
    """
    n = fmt.nbits
    m = n - 1
    es = fmt.es

    sign = bits[-1]
    low_any = c.or_(*bits[:-1]) if m > 1 else bits[0]
    is_zero = c.nor(low_any, sign)
    is_nar = c.and_(sign, c.not_(low_any))

    mag = conditional_negate(c, bits, sign)
    body = mag[:m]  # LSB-first body

    run = leading_sign_counter(c, body)  # count of leading identical bits
    first = body[-1]

    # Shift the body left by run+1: removes regime + terminator, leaving
    # [exp | frac] aligned at the top.
    sh_bits = max(1, (m + 1).bit_length())
    one = _const_word(c, 1, sh_bits)
    run_p1, _ = ripple_carry_adder(c, _pad(c, run, sh_bits), one)
    shifted = barrel_shifter(c, body, run_p1, left=True)

    # Exponent field: the top es bits of `shifted` (zero when truncated).
    exp_bits = [shifted[m - 1 - i] for i in range(es)] if es else []

    # Significand 1.f: hidden one + the remaining top bits of `shifted`.
    F = m + 1 - es  # 1 + max fraction width (padded with zeros)
    frac = [shifted[m - 1 - es - i] for i in range(F - 1)]
    sig = list(reversed(frac)) + [c.const(1)]  # LSB-first, MSB = hidden 1

    # k = first ? run - 1 : -run  (signed scale_bits wide)
    scale_bits = (2 * fmt.max_scale + 2).bit_length() + 2
    run_w = _pad(c, run, scale_bits)
    minus_one = _const_word(c, (1 << scale_bits) - 1, scale_bits)
    k_pos = _add_signed(c, run_w, minus_one, scale_bits)
    k_neg = _negate_word(c, run_w)
    k = mux_word(c, first, k_neg, k_pos)

    # scale = (k << es) | exp_bits
    if es:
        scale = list(reversed(exp_bits)) + k[: scale_bits - es]
    else:
        scale = k
    return {
        "sign": sign,
        "is_zero": is_zero,
        "is_nar": is_nar,
        "scale": scale,
        "sig": sig,
        "scale_bits": scale_bits,
        "F": F,
    }


def build_posit_decoder(fmt: PositFormat) -> Circuit:
    """A stand-alone posit decoder circuit (for cost accounting)."""
    c = Circuit(f"posit{fmt.nbits}e{fmt.es}_decode")
    bits = c.input_bus("x", fmt.nbits)
    d = _decode_operand(c, bits, fmt, "x")
    c.outputs(sign=d["sign"], is_zero=d["is_zero"], is_nar=d["is_nar"])
    c.output_bus("scale", d["scale"])
    c.output_bus("sig", d["sig"])
    return c


def build_posit_multiplier(fmt: PositFormat) -> Circuit:
    """Complete combinational posit multiplier, bit-exact vs the software model."""
    c = Circuit(f"posit{fmt.nbits}e{fmt.es}_mul")
    n, m, es = fmt.nbits, fmt.nbits - 1, fmt.es
    a_bits = c.input_bus("a", n)
    b_bits = c.input_bus("b", n)

    da = _decode_operand(c, a_bits, fmt, "a")
    db = _decode_operand(c, b_bits, fmt, "b")
    F = da["F"]
    scale_bits = da["scale_bits"]

    # --- significand product -----------------------------------------
    prod = array_multiplier(c, da["sig"], db["sig"])  # 2F bits
    ovf = prod[2 * F - 1]

    # fraction window below the leading 1 (width 2F-1, LSB-first):
    # with overflow the fraction is prod[2F-2..0]; without, prod[2F-3..0]
    # padded with a zero LSB.
    frac_window = [c.mux(ovf, c.const(0), prod[0])]
    for j in range(1, 2 * F - 1):
        frac_window.append(c.mux(ovf, prod[j - 1], prod[j]))

    # --- scale: sa + sb + ovf ------------------------------------------
    scale = _add_signed(c, da["scale"], db["scale"], scale_bits)
    ovf_word = _pad(c, [ovf], scale_bits)
    scale, _ = ripple_carry_adder(c, scale, ovf_word)

    # --- encode ---------------------------------------------------------
    # k = scale >> es (arithmetic), e = scale & (2^es - 1)
    e_bits = scale[:es]
    k = scale[es:]
    k_sign = k[-1]

    # shift = k >= 0 ? k : ~k   (= |k| - [k<0]); conditional invert.
    shift_full = [c.xor(x, k_sign) for x in k]

    # Clamp the shift at m+2 (anything longer has saturated anyway).
    sh_max = m + 2
    sh_bits = sh_max.bit_length()
    high = shift_full[sh_bits:]
    any_high = c.or_(*high) if len(high) > 1 else (high[0] if high else c.const(0))
    max_word = _const_word(c, sh_max, sh_bits)
    shift = mux_word(c, any_high, shift_full[:sh_bits], max_word)

    # Seed word (LSB-first), width W: [ ... frac | e | r0 r1 ]
    #   r1 = NOT k_sign (MSB: arithmetic shift replicates it -> regime run)
    #   r0 = k_sign     (the regime terminator)
    W = m + es + 2 * F + 4
    seed: List[Net] = [c.const(0)] * W
    payload = list(frac_window)  # LSB-first fraction
    for i, net in enumerate(payload):
        seed[W - 2 - es - len(payload) + i] = net
    for i in range(es):
        seed[W - 2 - es + i] = e_bits[i]
    seed[W - 2] = k_sign
    seed[W - 1] = c.not_(k_sign)

    shifted = barrel_shifter(c, seed, shift, arithmetic=True)

    # body = top m bits; guard the next; sticky the rest.
    body = [shifted[W - m + i] for i in range(m)]  # LSB-first
    guard = shifted[W - m - 1]
    sticky = c.or_(*shifted[: W - m - 1])

    # RNE increment.
    inc = c.and_(guard, c.or_(sticky, body[0]))
    inc_word = _pad(c, [inc], m)
    rounded, carry = ripple_carry_adder(c, body, inc_word)

    # Saturations: carry-out -> maxpos; all-zero -> minpos.
    ones_word = _const_word(c, fmt.pattern_maxpos, m)
    rounded = mux_word(c, carry, rounded, ones_word)
    any_bit = c.or_(*rounded)
    minpos_word = _const_word(c, 1, m)
    rounded = mux_word(c, any_bit, minpos_word, rounded)

    # --- sign and specials -----------------------------------------------
    out_sign = c.xor(da["sign"], db["sign"])
    magnitude = rounded + [c.const(0)]  # n bits, positive
    signed_out = conditional_negate(c, magnitude, out_sign)

    is_zero = c.or_(da["is_zero"], db["is_zero"])
    is_nar = c.or_(da["is_nar"], db["is_nar"])

    zero_word = _const_word(c, 0, n)
    nar_word = _const_word(c, fmt.pattern_nar, n)
    result = mux_word(c, is_zero, signed_out, zero_word)
    result = mux_word(c, is_nar, result, nar_word)
    c.output_bus("p", result)
    return c

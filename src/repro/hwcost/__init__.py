"""Fair hardware comparison of posits vs IEEE floats (Section V).

Gate-level datapaths for both number systems, built on
:mod:`repro.circuits` and verified bit-exactly against the software models:

* :mod:`repro.hwcost.posit_units` — posit decoder and the full posit
  multiplier in the spirit of Yonemoto's 8-bit circuit (Fig. 8):
  two's-complement decode (no sign/magnitude split), regime handling via a
  leading-sign count, and an encode path whose regime construction is a
  single arithmetic shift.
* :mod:`repro.hwcost.float_units` — IEEE-style float multipliers in two
  compliance levels: "normals only" (the fast path processors actually
  build in hardware) and "full IEEE" (subnormals, infinities, NaN).
* :mod:`repro.hwcost.compare` — the cost table behind the paper's
  conclusion: "Posit hardware is slightly more expensive than normals-only
  float hardware, but substantially simpler and faster than hardware that
  fully supports all aspects of the IEEE 754 Standard."
"""

from .posit_units import build_posit_multiplier, build_posit_decoder
from .posit_adder import build_posit_adder
from .float_units import build_float_multiplier, build_float_decoder
from .float_adder import build_float_adder
from .compare import hardware_comparison, adder_comparison, ComparisonRow
from .comparators import build_float_comparator, build_integer_comparator

__all__ = [
    "build_posit_multiplier",
    "build_posit_decoder",
    "build_posit_adder",
    "build_float_multiplier",
    "build_float_decoder",
    "build_float_adder",
    "hardware_comparison",
    "adder_comparison",
    "ComparisonRow",
    "build_float_comparator",
    "build_integer_comparator",
]

"""Gate-level IEEE-style float adders (normals-only and full IEEE).

The float counterpart of :mod:`repro.hwcost.posit_adder`, completing the
Section V cost comparison on the addition side.  The paper's point about
float addition is the *conditional* structure sign-magnitude forces (the
sign/magnitude/compare pseudo-code of Section V): this datapath carries it
as the swap/negate/abs sequence, plus — in the full-IEEE variant — gradual
underflow and the NaN/infinity cases.

Subnormal inputs need no pre-normalization for addition: a subnormal's
significand (hidden bit 0) at the fixed exponent ``emin`` is already on
the common grid the aligner uses, so the full-IEEE adder's extra cost over
normals-only is the output-side gradual underflow and the exception logic.
"""

from __future__ import annotations

from typing import List

from ..circuits import Circuit
from ..circuits.components import (
    barrel_shifter,
    conditional_negate,
    leading_zero_counter,
    mux_word,
    ripple_carry_adder,
)
from ..circuits.netlist import Net
from ..floats import FloatFormat

__all__ = ["build_float_adder"]


def _const_word(c: Circuit, value: int, width: int) -> List[Net]:
    return [c.const((value >> i) & 1) for i in range(width)]


def _pad(c: Circuit, word, width: int) -> List[Net]:
    return list(word) + [c.const(0)] * (width - len(word))


def _negate_word(c: Circuit, a: List[Net]) -> List[Net]:
    inv = [c.not_(x) for x in a]
    s, _ = ripple_carry_adder(c, inv, _const_word(c, 1, len(a)))
    return s


def _or_all(c: Circuit, nets) -> Net:
    nets = list(nets)
    if not nets:
        return c.const(0)
    return nets[0] if len(nets) == 1 else c.or_(*nets)


def _and_all(c: Circuit, nets) -> Net:
    nets = list(nets)
    return nets[0] if len(nets) == 1 else c.and_(*nets)


def build_float_adder(fmt: FloatFormat, full_ieee: bool = True) -> Circuit:
    """Combinational float adder (RNE), normals-only or full IEEE."""
    c = Circuit(f"{fmt.name}_add_{'full' if full_ieee else 'normal'}")
    e, f = fmt.exp_bits, fmt.frac_bits
    n = fmt.width
    S = e + 3

    a_bits = c.input_bus("a", n)
    b_bits = c.input_bus("b", n)

    def decode(bits):
        frac = bits[:f]
        exp = bits[f : f + e]
        sign = bits[-1]
        exp_zero = c.nor(*exp)
        exp_ones = _and_all(c, exp)
        frac_zero = c.nor(*frac)
        hidden = c.not_(exp_zero)
        sig = frac + [hidden]  # f+1 bits; exact for subnormals too
        exp_eff = [c.or_(exp[0], exp_zero)] + exp[1:]
        return {
            "sign": sign,
            "exp": _pad(c, exp_eff, S),
            "sig": sig,
            "is_zero": c.and_(exp_zero, frac_zero),
            "zero_or_sub": exp_zero,
            "is_inf": c.and_(exp_ones, frac_zero),
            "is_nan": c.and_(exp_ones, c.not_(frac_zero)),
        }

    da, db = decode(a_bits), decode(b_bits)
    if not full_ieee:
        # Normals-only: subnormal inputs read as zero (FTZ on input).
        for d, bits in ((da, a_bits), (db, b_bits)):
            d["is_zero"] = d["zero_or_sub"]
            flush = d["zero_or_sub"]
            d["sig"] = mux_word(c, flush, d["sig"], _const_word(c, 0, f + 1))

    # ------------------------------------------------------------------
    # Swap by effective exponent.
    d_word, _ = ripple_carry_adder(c, da["exp"], _negate_word(c, db["exp"]))
    a_smaller = d_word[-1]
    big_sig = mux_word(c, a_smaller, da["sig"], db["sig"])
    small_sig = mux_word(c, a_smaller, db["sig"], da["sig"])
    big_sign = c.mux(a_smaller, da["sign"], db["sign"])
    small_sign = c.mux(a_smaller, db["sign"], da["sign"])
    big_exp = mux_word(c, a_smaller, da["exp"], db["exp"])
    abs_d = mux_word(c, a_smaller, d_word, _negate_word(c, d_word))

    # ------------------------------------------------------------------
    # Wide alignment window.
    F1 = f + 1
    G = f + 3
    W = F1 + G
    big_wide = [c.const(0)] * G + list(big_sig)
    small_wide = [c.const(0)] * G + list(small_sig)

    sh_max = W
    sh_bits = sh_max.bit_length()
    high = abs_d[sh_bits:]
    any_high = _or_all(c, high)
    shift = mux_word(c, any_high, abs_d[:sh_bits], _const_word(c, sh_max, sh_bits))

    ones = [c.const(1)] * W
    keep_mask = barrel_shifter(c, ones, shift, left=True)
    dropped = [c.and_(v, c.not_(k)) for v, k in zip(small_wide, keep_mask)]
    sticky_align = _or_all(c, dropped)
    small_aligned = barrel_shifter(c, small_wide, shift, left=False)

    # ------------------------------------------------------------------
    # Signed add + absolute value.
    WS = W + 2
    big_s = conditional_negate(c, _pad(c, big_wide, WS), big_sign)
    small_s = conditional_negate(c, _pad(c, small_aligned, WS), small_sign)
    total, _ = ripple_carry_adder(c, big_s, small_s)
    total_neg = total[-1]
    magnitude = conditional_negate(c, total, total_neg)
    is_exact_zero = c.and_(c.nor(*magnitude), c.not_(sticky_align))
    out_sign = total_neg

    # ------------------------------------------------------------------
    # Normalize.
    lzc = leading_zero_counter(c, magnitude)
    norm = barrel_shifter(c, magnitude, lzc, left=True)
    # Exponent of the leading one: bit i of `magnitude` weighs
    # 2^(big_exp - bias - f + i - G), hidden reference index = f + G.
    offset = f + G
    const_part = _const_word(c, (WS - 1 - offset) & ((1 << S) - 1), S)
    e_out, _ = ripple_carry_adder(c, big_exp, const_part)
    e_out, _ = ripple_carry_adder(c, e_out, _negate_word(c, _pad(c, lzc, S)))

    # Fraction window below the hidden one (f bits), then guard, then rest.
    frac_n = [norm[WS - 1 - f + i] for i in range(f)]  # LSB-first
    guard_n = norm[WS - 2 - f]
    sticky_n = c.or_(_or_all(c, norm[: WS - 2 - f]), sticky_align)
    inc_n = c.and_(guard_n, c.or_(sticky_n, frac_n[0]))
    frac_n_rounded, carry_n = ripple_carry_adder(c, frac_n, _pad(c, [inc_n], f))
    e_rounded, _ = ripple_carry_adder(c, e_out, _pad(c, [carry_n], S))

    e_neg_or_zero = c.or_(e_out[-1], c.nor(*e_out))
    ge_inf = c.and_(
        c.not_(e_rounded[-1]),
        c.or_(_or_all(c, e_rounded[e:-1]), _and_all(c, e_rounded[:e])),
    )

    if full_ieee:
        # Gradual underflow: shift the normalized significand right by
        # t = 1 - e_out and take the subnormal fraction window.
        V = norm  # hidden at WS-1
        t_full, _ = ripple_carry_adder(
            c, _const_word(c, 1, S), [c.not_(x) for x in e_out], cin=c.const(1)
        )
        t_max = f + 3
        t_bits = t_max.bit_length()
        t_high = _or_all(c, t_full[t_bits:-1])
        t_sel = mux_word(c, t_high, t_full[:t_bits], _const_word(c, t_max, t_bits))
        ones_v = [c.const(1)] * WS
        keep_v = barrel_shifter(c, ones_v, t_sel, left=True)
        dropped_v = [c.and_(v, c.not_(k)) for v, k in zip(V, keep_v)]
        sticky_dropped = _or_all(c, dropped_v)
        shifted_v = barrel_shifter(c, V, t_sel, left=False)
        # Subnormal fraction: f bits directly below the (shifted) hidden.
        frac_s = [shifted_v[WS - 1 - f + i] for i in range(f)]
        guard_s = shifted_v[WS - 2 - f]
        sticky_s = c.or_(
            c.or_(_or_all(c, shifted_v[: WS - 2 - f]), sticky_dropped), sticky_align
        )
        inc_s = c.and_(guard_s, c.or_(sticky_s, frac_s[0]))
        frac_s_rounded, carry_s = ripple_carry_adder(c, frac_s, _pad(c, [inc_s], f))
        exp_s = _pad(c, [carry_s], e)

        frac_field = mux_word(c, e_neg_or_zero, frac_n_rounded, frac_s_rounded)
        exp_field = mux_word(c, e_neg_or_zero, e_rounded[:e], exp_s)
    else:
        frac_field = mux_word(c, e_neg_or_zero, frac_n_rounded, _const_word(c, 0, f))
        exp_field = mux_word(c, e_neg_or_zero, e_rounded[:e], _const_word(c, 0, e))

    use_inf = c.and_(ge_inf, c.not_(e_neg_or_zero))
    frac_field = mux_word(c, use_inf, frac_field, _const_word(c, 0, f))
    exp_field = mux_word(c, use_inf, exp_field, _const_word(c, (1 << e) - 1, e))

    result = frac_field + exp_field + [out_sign]

    # Exact zero: IEEE sign rules (RNE: +0 unless both addends negative).
    zero_sign = c.and_(da["sign"], db["sign"])
    zero_word = _const_word(c, 0, f + e) + [zero_sign]
    result = mux_word(c, is_exact_zero, result, zero_word)

    # Zero operands pass the other through.
    result = mux_word(c, da["is_zero"], result, b_bits)
    result = mux_word(c, db["is_zero"], result, a_bits)
    both_zero = c.and_(da["is_zero"], db["is_zero"])
    result = mux_word(c, both_zero, result, zero_word)

    if full_ieee:
        inf_a, inf_b = da["is_inf"], db["is_inf"]
        any_inf = c.or_(inf_a, inf_b)
        inf_sign = c.mux(inf_a, db["sign"], da["sign"])
        inf_word = _const_word(c, 0, f) + _const_word(c, (1 << e) - 1, e) + [inf_sign]
        result = mux_word(c, any_inf, result, inf_word)
        opposing = c.and_(c.and_(inf_a, inf_b), c.xor(da["sign"], db["sign"]))
        nan_in = c.or_(c.or_(da["is_nan"], db["is_nan"]), opposing)
        qnan = fmt.pattern_quiet_nan
        nan_word = [c.const((qnan >> i) & 1) for i in range(n)]
        result = mux_word(c, nan_in, result, nan_word)

    c.output_bus("s", result)
    return c

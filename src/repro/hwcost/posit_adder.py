"""Gate-level posit adder (Section V's addition discussion).

"The add or subtract logic simply needs to perform an arithmetic shift on
the fraction that preserves the sign, add or subtract as integers, and
convert the result back to posit form."  The datapath here:

1. two's-complement decode of both operands (shared with the multiplier);
2. operand swap so the larger *scale* drives the alignment;
3. right-align the smaller significand (barrel shift over a wide window;
   a clamp turns far-shifted operands into a sticky bit);
4. signed integer add/subtract, absolute value by conditional negation;
5. leading-zero count + left shift to renormalize;
6. the same arithmetic-shift regime encoder as the multiplier, with
   round-to-nearest-even and the no-zero/no-NaR saturations.

Verified bit-exactly against :class:`repro.posit.Posit` addition over all
65536 posit8 operand pairs (and subtraction via two's-complement input
negation, which costs nothing — the paper's point).
"""

from __future__ import annotations

from typing import List

from ..circuits import Circuit
from ..circuits.components import (
    barrel_shifter,
    conditional_negate,
    leading_zero_counter,
    mux_word,
    ripple_carry_adder,
)
from ..circuits.netlist import Net
from ..posit import PositFormat
from .posit_units import _decode_operand, _const_word, _pad, _negate_word

__all__ = ["build_posit_adder"]


def build_posit_adder(fmt: PositFormat) -> Circuit:
    """Complete combinational posit adder, bit-exact vs the software model."""
    c = Circuit(f"posit{fmt.nbits}e{fmt.es}_add")
    n, m, es = fmt.nbits, fmt.nbits - 1, fmt.es
    a_bits = c.input_bus("a", n)
    b_bits = c.input_bus("b", n)

    da = _decode_operand(c, a_bits, fmt, "a")
    db = _decode_operand(c, b_bits, fmt, "b")
    F = da["F"]
    scale_bits = da["scale_bits"]

    # ------------------------------------------------------------------
    # Swap so `big` has the larger scale (comparison via subtraction).
    # d = scale_a - scale_b (signed).
    neg_sb = _negate_word(c, db["scale"])
    d_word, _ = ripple_carry_adder(c, da["scale"], neg_sb)
    a_smaller = d_word[-1]  # sign of the difference

    big_sig = mux_word(c, a_smaller, da["sig"], db["sig"])
    small_sig = mux_word(c, a_smaller, db["sig"], da["sig"])
    big_sign = c.mux(a_smaller, da["sign"], db["sign"])
    small_sign = c.mux(a_smaller, db["sign"], da["sign"])
    big_scale = mux_word(c, a_smaller, da["scale"], db["scale"])

    # |d| = d if d >= 0 else -d.
    abs_d = mux_word(c, a_smaller, d_word, _negate_word(c, d_word))

    # ------------------------------------------------------------------
    # Wide alignment window: big aligned at the top, small shifted right
    # by |d|.  Width W = F (big) + F + 3 (alignment room + guard/sticky).
    G = F + 3
    W = F + G
    big_wide = [c.const(0)] * G + list(big_sig)  # big << G
    small_wide = [c.const(0)] * G + list(small_sig)

    # Clamp far shifts to W: that flushes the whole small operand out of
    # the window, leaving it as pure sticky (shifts in [W, 2^sh_bits) that
    # escape the clamp flush everything too, so the datapath stays exact).
    sh_max = W
    sh_bits = sh_max.bit_length()
    high = abs_d[sh_bits:]
    any_high = c.or_(*high) if len(high) > 1 else (high[0] if high else c.const(0))
    shift = mux_word(c, any_high, abs_d[:sh_bits], _const_word(c, sh_max, sh_bits))

    # Sticky for the bits the right shift drops: mask trick.
    ones = [c.const(1)] * W
    keep_mask = barrel_shifter(c, ones, shift, left=True)
    dropped = [c.and_(v, c.not_(k)) for v, k in zip(small_wide, keep_mask)]
    sticky_align = c.or_(*dropped)

    small_aligned = barrel_shifter(c, small_wide, shift, left=False)

    # ------------------------------------------------------------------
    # Signed addition: width W+2 two's complement.
    WS = W + 2
    big_s = conditional_negate(c, _pad(c, big_wide, WS), big_sign)
    small_s = conditional_negate(c, _pad(c, small_aligned, WS), small_sign)
    total, _ = ripple_carry_adder(c, big_s, small_s)
    total_neg = total[-1]
    magnitude = conditional_negate(c, total, total_neg)

    is_exact_zero = c.nor(*magnitude)
    out_sign = total_neg

    # ------------------------------------------------------------------
    # Normalize: value = magnitude * 2^(big_scale - G); leading one at
    # index (W) means scale_out = big_scale + 1 (carry), at index (W-1)
    # means big_scale, etc.  Left-shift so the MSB sits at index WS-1,
    # then scale_out = big_scale + (W + 1) - (WS - 1 - msb_index)...
    lzc = leading_zero_counter(c, magnitude)  # 0..WS
    norm = barrel_shifter(c, magnitude, lzc, left=True)
    # After the shift the hidden 1 is at index WS-1; the fraction window
    # for the encoder is the next 2F-1 bits (plus a sticky LSB).
    frac_window: List[Net] = [
        norm[WS - 1 - 1 - i] for i in range(2 * F - 2)
    ]
    # Collapse everything below into one sticky bit, OR the alignment sticky.
    low = norm[: WS - 1 - (2 * F - 2)]
    sticky_low = c.or_(c.or_(*low) if len(low) > 1 else (low[0] if low else c.const(0)), sticky_align)
    frac_window.append(sticky_low)
    frac_window.reverse()  # LSB-first for the encoder

    # scale_out = big_scale + (W + 1) - lzc - G
    #           = big_scale + (F + 1... ) ; derive: leading one at index
    # (WS-1-lzc) has weight 2^(WS-1-lzc) in `magnitude`, and magnitude is
    # scaled by 2^(big_scale - G - (F-1))?  Work it out against the decode
    # convention: big_sig's hidden 1 sits at index F-1 and represents a
    # significand in [1, 2); in `big_wide` it moved to index F-1+G with
    # value weight 2^(big_scale).  So bit index i in `magnitude` weighs
    # 2^(big_scale + i - (F - 1 + G)).
    offset = F - 1 + G  # index that weighs exactly 2^big_scale
    # leading-one index = WS - 1 - lzc  ->  scale_out = big_scale + (WS-1-lzc-offset)
    const_part = _const_word(c, (WS - 1 - offset) & ((1 << scale_bits) - 1), scale_bits)
    lzc_ext = _pad(c, lzc, scale_bits)
    scale_out, _ = ripple_carry_adder(c, big_scale, const_part)
    neg_lzc = _negate_word(c, lzc_ext)
    scale_out, _ = ripple_carry_adder(c, scale_out, neg_lzc)

    # ------------------------------------------------------------------
    # Encode: same seed/arithmetic-shift/round path as the multiplier.
    e_bits = scale_out[:es]
    k = scale_out[es:]
    k_sign = k[-1]
    shift_full = [c.xor(x, k_sign) for x in k]
    enc_max = m + 2
    enc_bits = enc_max.bit_length()
    high2 = shift_full[enc_bits:]
    any_high2 = c.or_(*high2) if len(high2) > 1 else (high2[0] if high2 else c.const(0))
    enc_shift = mux_word(c, any_high2, shift_full[:enc_bits], _const_word(c, enc_max, enc_bits))

    WE = m + es + 2 * F + 4
    seed: List[Net] = [c.const(0)] * WE
    payload = list(frac_window)
    for i, net in enumerate(payload):
        seed[WE - 2 - es - len(payload) + i] = net
    for i in range(es):
        seed[WE - 2 - es + i] = e_bits[i]
    seed[WE - 2] = k_sign
    seed[WE - 1] = c.not_(k_sign)

    shifted = barrel_shifter(c, seed, enc_shift, arithmetic=True)
    body = [shifted[WE - m + i] for i in range(m)]
    guard = shifted[WE - m - 1]
    sticky = c.or_(*shifted[: WE - m - 1])
    inc = c.and_(guard, c.or_(sticky, body[0]))
    rounded, carry = ripple_carry_adder(c, body, _pad(c, [inc], m))
    rounded = mux_word(c, carry, rounded, _const_word(c, fmt.pattern_maxpos, m))
    any_bit = c.or_(*rounded)
    rounded = mux_word(c, any_bit, _const_word(c, 1, m), rounded)

    magnitude_out = rounded + [c.const(0)]
    signed_out = conditional_negate(c, magnitude_out, out_sign)

    # ------------------------------------------------------------------
    # Specials: NaR dominates; zero operands pass the other through; exact
    # cancellation gives zero.
    zero_word = _const_word(c, 0, n)
    nar_word = _const_word(c, fmt.pattern_nar, n)
    result = mux_word(c, is_exact_zero, signed_out, zero_word)
    result = mux_word(c, da["is_zero"], result, b_bits)
    result = mux_word(c, db["is_zero"], result, a_bits)
    both_zero = c.and_(da["is_zero"], db["is_zero"])
    result = mux_word(c, both_zero, result, zero_word)
    is_nar = c.or_(da["is_nar"], db["is_nar"])
    result = mux_word(c, is_nar, result, nar_word)
    c.output_bus("s", result)
    return c

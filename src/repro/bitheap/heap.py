"""The bit-heap data structure."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

__all__ = ["WeightedBit", "BitHeap"]


@dataclass(frozen=True)
class WeightedBit:
    """One bit of weight ``2**column``.

    ``source`` names where the bit came from (e.g. ``"p[2,1]"`` for a
    partial product, matching Fig. 3's notation); ``value`` optionally binds
    a concrete 0/1 for simulation, and ``uid`` keeps bits distinct in sets.
    """

    column: int
    source: str = ""
    uid: int = field(default_factory=itertools.count().__next__)
    value: Optional[int] = None


class BitHeap:
    """A multiset of weighted bits plus a signed constant.

    The heap is the *specification* of a summation; compression
    (:mod:`repro.bitheap.compress`) turns it into hardware.  Keeping the two
    apart is the architecture of Fig. 2.
    """

    def __init__(self, name: str = "bitheap"):
        self.name = name
        self.columns: Dict[int, List[WeightedBit]] = {}
        self.constant: int = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_bit(self, column: int, source: str = "", value: Optional[int] = None) -> WeightedBit:
        """Add one bit of weight ``2**column``."""
        bit = WeightedBit(column, source, value=value)
        self.columns.setdefault(column, []).append(bit)
        return bit

    def add_bits(self, bits: Iterable[WeightedBit]) -> None:
        for b in bits:
            self.columns.setdefault(b.column, []).append(b)

    def add_word(self, value_bits: int, width: int, shift: int = 0, source: str = "") -> List[WeightedBit]:
        """Add an unsigned word: bit ``i`` of ``value_bits`` at column ``shift + i``.

        Only positions whose bit *may* be 1 get heap bits when a concrete
        ``value_bits`` is given — a heap with bound values is a simulation.
        """
        out = []
        for i in range(width):
            out.append(self.add_bit(shift + i, source=f"{source}[{i}]", value=(value_bits >> i) & 1))
        return out

    def add_symbolic_word(self, width: int, shift: int = 0, source: str = "") -> List[WeightedBit]:
        """Add ``width`` unknown bits starting at column ``shift``."""
        return [self.add_bit(shift + i, source=f"{source}[{i}]") for i in range(width)]

    def add_constant(self, value: int) -> "BitHeap":
        """Fold a signed constant into the heap (free at synthesis time)."""
        self.constant += value
        return self

    def add_signed_word(self, width: int, shift: int = 0, source: str = "") -> List[WeightedBit]:
        """Add a two's-complement word using the standard sign-extension
        trick: complement the sign bit and add a constant, so the heap needs
        no negatively weighted bits."""
        bits = [self.add_bit(shift + i, source=f"{source}[{i}]") for i in range(width - 1)]
        bits.append(self.add_bit(shift + width - 1, source=f"~{source}[{width - 1}]"))
        self.add_constant(-(1 << (shift + width - 1)))
        return bits

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def height(self, column: int) -> int:
        return len(self.columns.get(column, []))

    def max_height(self) -> int:
        return max((len(v) for v in self.columns.values()), default=0)

    def occupied_columns(self) -> List[int]:
        return sorted(c for c, v in self.columns.items() if v)

    def width(self) -> int:
        cols = self.occupied_columns()
        return (cols[-1] - cols[0] + 1) if cols else 0

    def total_bits(self) -> int:
        return sum(len(v) for v in self.columns.values())

    def histogram(self) -> Dict[int, int]:
        """Column -> height, the profile drawn as dot diagrams in FloPoCo."""
        return {c: len(v) for c, v in sorted(self.columns.items()) if v}

    def value(self) -> int:
        """Evaluate the heap when every bit has a bound value."""
        total = self.constant
        for col, bits in self.columns.items():
            for b in bits:
                if b.value is None:
                    raise ValueError(f"bit {b.source or b.uid} in column {col} is unbound")
                total += b.value << col
        return total

    def copy(self) -> "BitHeap":
        clone = BitHeap(self.name)
        clone.constant = self.constant
        for col, bits in self.columns.items():
            clone.columns[col] = list(bits)
        return clone

    def ascii_art(self) -> str:
        """Dot diagram of the heap (columns left = most significant)."""
        cols = self.occupied_columns()
        if not cols:
            return "(empty heap)"
        lo, hi = cols[0], cols[-1]
        height = self.max_height()
        lines = []
        for row in range(height):
            line = "".join(
                "x" if self.height(c) > row else "." for c in range(hi, lo - 1, -1)
            )
            lines.append(line)
        header = "".join(str(c % 10) for c in range(hi, lo - 1, -1))
        return "\n".join([header] + lines)

    def __repr__(self):
        return (
            f"BitHeap({self.name!r}, {self.total_bits()} bits over "
            f"{self.width()} columns, max height {self.max_height()})"
        )

"""Bit-heap to netlist synthesis: the right-hand side of Fig. 2.

The heap describes *what* to sum; a compression back-end decides *how*;
this module turns the chosen compression into gates on a
:class:`repro.circuits.Circuit` — completing the figure's pipeline from
operator description to target hardware.

Each :class:`~repro.bitheap.compressors.Compressor` placement becomes a
small counter circuit (full/half adders for 3:2 and 2:2, an internal adder
tree for wider GPCs), and the final height-2 heap becomes one ripple
carry-propagate adder.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..circuits import Circuit
from ..circuits.netlist import Net
from .compress import CompressionResult, compress_greedy
from .heap import BitHeap
from .ppgen import partial_product_array, squarer_heap

__all__ = ["synthesize_compression", "build_bitheap_multiplier", "build_bitheap_squarer"]


def _counter_circuit(c: Circuit, ins_by_offset: List[List[Net]], out_columns: int) -> List[Net]:
    """Generic GPC: sum input bits at their offsets into ``out_columns`` bits.

    Uses an internal full/half-adder reduction — for the library's counters
    (<= 6 inputs over <= 2 columns) this is exactly the LUT-internal logic.
    """
    columns: Dict[int, List[Net]] = {
        off: list(bits) for off, bits in enumerate(ins_by_offset)
    }
    col = 0
    outputs: List[Net] = []
    while col < out_columns:
        bits = columns.get(col, [])
        while len(bits) > 1:
            if len(bits) >= 3:
                a, b, d = bits.pop(), bits.pop(), bits.pop()
                s, cy = c.full_adder(a, b, d)
            else:
                a, b = bits.pop(), bits.pop()
                s, cy = c.half_adder(a, b)
            bits.append(s)
            columns.setdefault(col + 1, []).append(cy)
        outputs.append(bits[0] if bits else c.const(0))
        col += 1
    return outputs  # LSB-first, one bit per column


def synthesize_compression(
    c: Circuit,
    result: CompressionResult,
    bit_nets: Dict[int, Net],
) -> List[Net]:
    """Emit gates for a compression result.

    ``bit_nets`` maps the *initial* heap bits' ``uid`` to driving nets; the
    placements' produced bits get nets as their counters are emitted.
    Returns the final sum word (LSB-first), aligned at the heap's lowest
    occupied column.
    """
    nets = dict(bit_nets)

    for stage in result.stages:
        for placement in stage:
            comp = placement.compressor
            # Group consumed bits by column offset.
            ins_by_offset: List[List[Net]] = [[] for _ in comp.inputs]
            cursor = 0
            for off, need in enumerate(comp.inputs):
                for _ in range(need):
                    bit = placement.consumed[cursor]
                    cursor += 1
                    ins_by_offset[off].append(nets[bit.uid])
            outs = _counter_circuit(c, ins_by_offset, len(comp.outputs))
            for off, bit in zip(range(len(comp.outputs)), placement.produced):
                nets[bit.uid] = outs[off]

    # Final carry-propagate adder over the height-<=2 heap.
    final = result.final_heap
    cols = final.occupied_columns()
    if not cols:
        return [c.const(0)]
    lo, hi = cols[0], cols[-1]
    out: List[Net] = []
    carry: Optional[Net] = None
    for col in range(lo, hi + 1):
        bits = [nets[b.uid] for b in final.columns.get(col, [])]
        if carry is not None:
            bits.append(carry)
        if not bits:
            out.append(c.const(0))
            carry = None
        elif len(bits) == 1:
            out.append(bits[0])
            carry = None
        elif len(bits) == 2:
            s, carry = c.half_adder(bits[0], bits[1])
            out.append(s)
        else:  # 3 bits: two heap bits + carry
            s, carry = c.full_adder(bits[0], bits[1], bits[2])
            out.append(s)
    if carry is not None:
        out.append(carry)
    # Align to column 0 if the heap started higher.
    return [c.const(0)] * lo + out


def build_bitheap_multiplier(
    wa: int,
    wb: int,
    backend: Callable[[BitHeap], CompressionResult] = compress_greedy,
) -> Circuit:
    """An unsigned multiplier generated through the bit-heap pipeline."""
    c = Circuit(f"bitheap_mul{wa}x{wb}")
    a = c.input_bus("a", wa)
    b = c.input_bus("b", wb)
    heap = partial_product_array(wa, wb)
    bit_nets: Dict[int, Net] = {}
    bits = [bit for col in heap.columns.values() for bit in col]
    for bit in bits:
        # Sources look like "p[j,i]": recover the operand bits.
        j, i = map(int, bit.source[2:-1].split(","))
        bit_nets[bit.uid] = c.and_(a[i], b[j])
    result = backend(heap)
    c.output_bus("p", synthesize_compression(c, result, bit_nets)[: wa + wb])
    return c


def build_bitheap_squarer(
    w: int,
    backend: Callable[[BitHeap], CompressionResult] = compress_greedy,
) -> Circuit:
    """A specialized squarer generated through the bit-heap pipeline."""
    c = Circuit(f"bitheap_square{w}")
    a = c.input_bus("a", w)
    heap = squarer_heap(w)
    bit_nets: Dict[int, Net] = {}
    for col in heap.columns.values():
        for bit in col:
            if bit.source.startswith("a[") and "]a[" not in bit.source:
                i = int(bit.source[2:-1])
                bit_nets[bit.uid] = c.buf(a[i])
            else:
                left, right = bit.source.split("]a[")
                i = int(left[2:])
                j = int(right[:-1])
                bit_nets[bit.uid] = c.and_(a[i], a[j])
    result = backend(heap)
    out = synthesize_compression(c, result, bit_nets)
    c.output_bus("p", (out + [c.const(0)] * (2 * w))[: 2 * w])
    return c

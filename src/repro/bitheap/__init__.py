"""Bit heaps: arbitrary sums of weighted bits (Section II-D, Fig. 2).

A bit heap generalizes the partial-product arrays of multiplier design: an
operator's summation is described as a multiset of (weight, bit) pairs,
*decoupled* from the hardware that eventually compresses it.  FloPoCo has
used this abstraction since 2013 to capture sums of products, polynomials,
and table-based filters; this package reproduces the abstraction, the
partial-product front-ends (Fig. 3), and compression back-ends (greedy
Dadda-style and an ILP-flavoured exhaustive-per-stage heuristic in the
spirit of Kumm & Kappauf's compressor-tree synthesis).

>>> from repro.bitheap import BitHeap
>>> heap = BitHeap("demo")
>>> for i in range(4):
...     _ = heap.add_constant(5 << i)
>>> heap.max_height() >= 2
True
"""

from .heap import BitHeap, WeightedBit
from .compressors import Compressor, COMPRESSORS, FULL_ADDER, HALF_ADDER, LUT6_42
from .compress import CompressionResult, compress_greedy, compress_heuristic, final_adder_width
from .ppgen import (
    partial_product_array,
    partial_product_table,
    multiplier_heap,
    squarer_heap,
)
from .synthesize import (
    synthesize_compression,
    build_bitheap_multiplier,
    build_bitheap_squarer,
)

__all__ = [
    "BitHeap",
    "WeightedBit",
    "Compressor",
    "COMPRESSORS",
    "FULL_ADDER",
    "HALF_ADDER",
    "LUT6_42",
    "CompressionResult",
    "compress_greedy",
    "compress_heuristic",
    "final_adder_width",
    "partial_product_array",
    "partial_product_table",
    "multiplier_heap",
    "squarer_heap",
    "synthesize_compression",
    "build_bitheap_multiplier",
    "build_bitheap_squarer",
]

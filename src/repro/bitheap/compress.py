"""Bit-heap compression: turning a heap into stages of counters + one adder.

Two back-ends, both value-preserving by construction (every compressor
replaces bits by their exact binary sum):

* :func:`compress_greedy` — Dadda-flavoured: per stage, repeatedly apply the
  strongest compressor that is fully fed, until every column has height at
  most 2; finish with one carry-propagate adder.
* :func:`compress_heuristic` — per-stage exhaustive cover in the spirit of
  the ILP formulation of [12] (Kumm & Kappauf): per stage, choose the set of
  compressor placements that minimizes ``area + lambda * residual_height``
  via branch-and-bound over column positions (columns are scanned most
  occupied first).

The result records stages, cost and the final adder width, and — when the
heap's bits carry concrete values — asserts exactness against the heap's
arithmetic value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .compressors import COMPRESSORS, HALF_ADDER, Compressor
from .heap import BitHeap, WeightedBit

__all__ = ["CompressionResult", "compress_greedy", "compress_heuristic", "final_adder_width"]


@dataclass
class Placement:
    """A compressor instance applied at a base column."""

    compressor: Compressor
    column: int
    consumed: List[WeightedBit] = field(default_factory=list)
    produced: List[WeightedBit] = field(default_factory=list)


@dataclass
class CompressionResult:
    """Outcome of compressing a bit heap."""

    name: str
    stages: List[List[Placement]]
    final_heap: BitHeap
    lut_area: float
    initial_bits: int
    initial_height: int

    @property
    def stage_count(self) -> int:
        return len(self.stages)

    @property
    def final_adder_bits(self) -> int:
        return final_adder_width(self.final_heap)

    def total_area(self) -> float:
        """Compression area plus one LUT-equivalent per final adder bit."""
        return self.lut_area + self.final_adder_bits

    def __str__(self):
        return (
            f"{self.name}: {self.initial_bits} bits (h={self.initial_height}) -> "
            f"{self.stage_count} stages, area {self.lut_area:.1f} + "
            f"{self.final_adder_bits}-bit adder"
        )


def final_adder_width(heap: BitHeap) -> int:
    """Width of the carry-propagate adder consuming a height-<=2 heap."""
    cols = heap.occupied_columns()
    if not cols:
        return 0
    two_high = [c for c in cols if heap.height(c) >= 2]
    if not two_high:
        return 0
    return cols[-1] - two_high[0] + 1


def _apply(heap: BitHeap, comp: Compressor, column: int) -> Placement:
    """Consume input bits, compute the (possibly symbolic) outputs."""
    placement = Placement(comp, column)
    total = 0
    symbolic = False
    for offset, need in enumerate(comp.inputs):
        col_bits = heap.columns.get(column + offset, [])
        if len(col_bits) < need:
            raise ValueError(f"column {column + offset} lacks {need} bits")
        taken = col_bits[:need]
        del col_bits[:need]
        placement.consumed.extend(taken)
        for b in taken:
            if b.value is None:
                symbolic = True
            else:
                total += b.value << offset
    for offset, count in enumerate(comp.outputs):
        for _ in range(count):
            value = None if symbolic else (total >> offset) & 1
            placement.produced.append(
                heap.add_bit(column + offset, source=f"{comp.name}@{column}", value=value)
            )
    return placement


def _feedable(heap: BitHeap, comp: Compressor, column: int) -> bool:
    return all(
        heap.height(column + offset) >= need for offset, need in enumerate(comp.inputs)
    )


def compress_greedy(
    heap: BitHeap,
    compressors: Optional[List[Compressor]] = None,
    target_height: int = 2,
) -> CompressionResult:
    """Dadda-style greedy compression.

    Per stage, scan compressors by descending :attr:`Compressor.strength`
    and columns low-to-high, placing every fully fed instance whose column
    is above the target height; stop when the whole heap fits the final
    adder.
    """
    # Strongest first; among equals prefer wider counters (they cut the
    # heap's height — and stage count — faster at the same area ratio).
    compressors = sorted(
        compressors or COMPRESSORS, key=lambda c: (-c.strength, -c.input_count)
    )
    work = heap.copy()
    initial_bits, initial_height = work.total_bits(), work.max_height()
    stages: List[List[Placement]] = []
    area = 0.0

    while work.max_height() > target_height:
        stage: List[Placement] = []
        # Snapshot heights: a stage is combinational, bits produced in this
        # stage are not available to it.
        heights = {c: work.height(c) for c in work.occupied_columns()}
        budget = {c: h for c, h in heights.items()}
        for comp in compressors:
            for col in sorted(budget):
                while all(
                    budget.get(col + off, 0) >= need
                    for off, need in enumerate(comp.inputs)
                ) and any(
                    budget.get(col + off, 0) > target_height
                    for off in range(len(comp.inputs))
                ):
                    stage.append(_apply(work, comp, col))
                    area += comp.area
                    for off, need in enumerate(comp.inputs):
                        budget[col + off] = budget.get(col + off, 0) - need
        if not stage:
            # Nothing fully fed above target: finish tall columns with HAs.
            for col in sorted(budget):
                while budget.get(col, 0) > target_height:
                    stage.append(_apply(work, HALF_ADDER, col))
                    area += HALF_ADDER.area
                    budget[col] -= 2
            if not stage:
                break
        stages.append(stage)

    return CompressionResult(
        name=f"greedy({heap.name})",
        stages=stages,
        final_heap=work,
        lut_area=area,
        initial_bits=initial_bits,
        initial_height=initial_height,
    )


def compress_heuristic(
    heap: BitHeap,
    compressors: Optional[List[Compressor]] = None,
    target_height: int = 2,
    residual_weight: float = 0.7,
    beam: int = 64,
) -> CompressionResult:
    """Per-stage optimized compression (ILP-flavoured beam search).

    For each stage, enumerates candidate placement sets with a beam search
    over (placements, remaining height profile), scoring
    ``area + residual_weight * sum(max(0, height - target))``.  This mirrors
    the per-stage ILP of [12] at a fraction of the run time; on multiplier
    heaps it consistently beats the greedy back-end's area.
    """
    compressors = sorted(
        compressors or COMPRESSORS, key=lambda c: (-c.strength, -c.input_count)
    )
    work = heap.copy()
    initial_bits, initial_height = work.total_bits(), work.max_height()
    stages: List[List[Placement]] = []
    area = 0.0

    while work.max_height() > target_height:
        heights = {c: work.height(c) for c in work.occupied_columns()}

        def residual(budget: Dict[int, int], incoming: Dict[int, int]) -> float:
            """Excess height of the *next* stage: leftover + produced bits."""
            cols = set(budget) | set(incoming)
            return sum(
                max(0, budget.get(c, 0) + incoming.get(c, 0) - target_height)
                for c in cols
            )

        def rank(state) -> float:
            score, _plan, budget, incoming = state
            return score + residual_weight * residual(budget, incoming)

        # State: (area, plan, budget, incoming) — `budget` counts bits still
        # consumable this stage; `incoming` counts bits produced by chosen
        # compressors, available only in the next stage.
        State = Tuple[float, List[Tuple[Compressor, int]], Dict[int, int], Dict[int, int]]
        states: List[State] = [(0.0, [], dict(heights), {})]

        for col in sorted(heights):
            # Expand every state by zero or more placements at this column.
            frontier = states
            complete: List[State] = []
            while frontier:
                next_frontier: List[State] = []
                for score, plan, budget, incoming in frontier:
                    complete.append((score, plan, budget, incoming))  # stop here
                    for comp in compressors:
                        feedable = all(
                            budget.get(col + off, 0) >= need
                            for off, need in enumerate(comp.inputs)
                        )
                        useful = any(
                            budget.get(col + off, 0) > target_height
                            for off in range(len(comp.inputs))
                        )
                        if feedable and useful:
                            b2, i2 = dict(budget), dict(incoming)
                            for off, need in enumerate(comp.inputs):
                                b2[col + off] = b2.get(col + off, 0) - need
                            for off, count in enumerate(comp.outputs):
                                i2[col + off] = i2.get(col + off, 0) + count
                            next_frontier.append(
                                (score + comp.area, plan + [(comp, col)], b2, i2)
                            )
                next_frontier.sort(key=rank)
                frontier = next_frontier[:beam]
            complete.sort(key=rank)
            states = complete[:beam]

        states.sort(key=rank)
        best_plan = states[0][1]
        if not best_plan:
            # Fall back to greedy for a stalled profile.
            tail = compress_greedy(work, compressors, target_height)
            stages.extend(tail.stages)
            area += tail.lut_area
            work = tail.final_heap
            break
        stage = [_apply(work, comp, col) for comp, col in best_plan]
        area += sum(comp.area for comp, _ in best_plan)
        stages.append(stage)

    return CompressionResult(
        name=f"heuristic({heap.name})",
        stages=stages,
        final_heap=work,
        lut_area=area,
        initial_bits=initial_bits,
        initial_height=initial_height,
    )

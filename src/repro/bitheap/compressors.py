"""Compressor definitions for bit-heap reduction.

A generalized parallel counter (GPC) consumes a column pattern of input bits
and produces output bits at increasing weights.  The classic 3:2 (full
adder) and 2:2 (half adder) compressors are joined by a 6:3 counter and a
(1,4;1,5]-style LUT6 4:2 arrangement — the "pre-computed tables of 64
entries" that Section II says FPGAs implement extremely efficiently, and
the raw material of the ILP-based compressor-tree synthesis of [12].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["Compressor", "FULL_ADDER", "HALF_ADDER", "COUNTER_63", "LUT6_42", "COMPRESSORS"]


@dataclass(frozen=True)
class Compressor:
    """A generalized parallel counter.

    Attributes:
        name: Identifier.
        inputs: Bits consumed per column, LSB column first — ``(3,)`` is a
            full adder, ``(2, 3)`` consumes 2 bits at weight w and 3 at w+1.
        outputs: Bits produced per column starting at the input LSB weight —
            always one bit per column for the counters used here.
        area: Cost in LUT6-equivalents (FPGA view).
    """

    name: str
    inputs: Tuple[int, ...]
    outputs: Tuple[int, ...]
    area: float

    @property
    def input_count(self) -> int:
        return sum(self.inputs)

    @property
    def output_count(self) -> int:
        return sum(self.outputs)

    @property
    def strength(self) -> float:
        """Bits eliminated per unit area — the greedy selection metric."""
        return (self.input_count - self.output_count) / self.area

    def max_sum(self) -> int:
        return sum(n * (1 << c) for c, n in enumerate(self.inputs))

    def check(self) -> None:
        """A compressor must be able to represent its maximal input sum."""
        capacity = sum(n * (1 << c) for c, n in enumerate(self.outputs))
        if capacity < self.max_sum():
            raise ValueError(f"{self.name}: outputs cannot represent max input sum")


#: Full adder: 3 bits -> sum + carry.  One ALM carry position on FPGAs.
FULL_ADDER = Compressor("3:2", inputs=(3,), outputs=(1, 1), area=1.0)
#: Half adder: 2 bits -> sum + carry.
HALF_ADDER = Compressor("2:2", inputs=(2,), outputs=(1, 1), area=0.5)
#: 6:3 counter: a 6-input column fits exactly one LUT6 per output bit.
COUNTER_63 = Compressor("6:3", inputs=(6,), outputs=(1, 1, 1), area=3.0)
#: (2,3) GPC covering two adjacent columns in one fracturable LUT6 pair.
LUT6_42 = Compressor("(2,3)", inputs=(3, 2), outputs=(1, 1, 1), area=2.0)
#: (1,4,1) style GPC: efficient on 6-LUT FPGAs.
GPC_1415 = Compressor("(1,4)", inputs=(4, 1), outputs=(1, 1, 1), area=2.0)

COMPRESSORS: List[Compressor] = [FULL_ADDER, HALF_ADDER, COUNTER_63, LUT6_42, GPC_1415]

for _c in COMPRESSORS:
    _c.check()

"""Partial-product front-ends for bit heaps.

:func:`partial_product_array` builds exactly the Fig. 3 layout: for a
``wa x wb`` multiplier, partial product ``p[j,i] = a_i AND b_j`` lands in
column ``i + j``.  The column-height imbalance this creates (2 to 6
independent inputs per column for the 3x3 case) is the motivation for the
multiplier regularization of Section III / Fig. 4.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .heap import BitHeap

__all__ = [
    "partial_product_array",
    "partial_product_table",
    "multiplier_heap",
    "squarer_heap",
]


def partial_product_table(wa: int, wb: int) -> Dict[int, List[str]]:
    """Column -> partial product names, the textual form of Fig. 3.

    >>> partial_product_table(3, 3)[2]
    ['p[0,2]', 'p[1,1]', 'p[2,0]']
    """
    table: Dict[int, List[str]] = {}
    for j in range(wb):
        for i in range(wa):
            table.setdefault(i + j, []).append(f"p[{j},{i}]")
    return {c: sorted(v) for c, v in sorted(table.items())}


def partial_product_array(
    wa: int, wb: int, a: Optional[int] = None, b: Optional[int] = None, name: str = ""
) -> BitHeap:
    """Bit heap of an unsigned ``wa x wb`` multiplier.

    With concrete operands the heap is a simulation whose
    :meth:`~repro.bitheap.heap.BitHeap.value` equals ``a * b``; without, it
    is the symbolic specification handed to a compressor back-end.
    """
    heap = BitHeap(name or f"mul{wa}x{wb}")
    for j in range(wb):
        for i in range(wa):
            value = None
            if a is not None and b is not None:
                value = ((a >> i) & 1) & ((b >> j) & 1)
            heap.add_bit(i + j, source=f"p[{j},{i}]", value=value)
    return heap


def multiplier_heap(wa: int, wb: int) -> BitHeap:
    """Symbolic multiplier heap (alias with the conventional name)."""
    return partial_product_array(wa, wb)


def squarer_heap(w: int, a: Optional[int] = None) -> BitHeap:
    """Bit heap of an unsigned squarer — the operator *specialization* of
    Section II-A: ``a_i * a_j + a_j * a_i`` folds to ``a_i * a_j`` one
    column higher, and ``a_i * a_i = a_i``, so a square needs roughly half
    the partial products of a generic multiplier.
    """
    heap = BitHeap(f"square{w}")
    for i in range(w):
        ai = None if a is None else (a >> i) & 1
        # Diagonal: a_i AND a_i = a_i at column 2i.
        heap.add_bit(2 * i, source=f"a[{i}]", value=ai)
        for j in range(i + 1, w):
            value = None
            if a is not None:
                value = ((a >> i) & 1) & ((a >> j) & 1)
            # Symmetric pair promoted one column: 2 * a_i a_j = a_i a_j << 1.
            heap.add_bit(i + j + 1, source=f"a[{i}]a[{j}]", value=value)
    return heap

"""Logic-utilization models (Section III).

"While a design consisting of random logic can top 80% logic utilization,
soft arithmetic is more typically 60%-70% full. ... This approach is
validated by the Brainwave design, where 92% logic utilization was
achieved.  This architecture has two components: control comprises 20% of
the design at a packing rate of about 80%, and the datapath, which contains
80% of the design with 97% packing."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["UtilizationModel", "BRAINWAVE", "TYPICAL_SOFT_ARITHMETIC", "RANDOM_LOGIC"]


@dataclass(frozen=True)
class UtilizationModel:
    """A design as (share-of-design, packing-rate) components.

    ``share`` is each component's fraction of the design's logic;
    ``packing`` is the fraction of the ALMs claimed by that component that
    hold useful logic.
    """

    name: str
    components: Tuple[Tuple[str, float, float], ...]  # (name, share, packing)

    def __post_init__(self):
        total = sum(share for _, share, _ in self.components)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"component shares must sum to 1, got {total}")

    def overall_packing(self) -> float:
        """Design-wide packing rate: logic-weighted mean of the components."""
        return sum(share * packing for _, share, packing in self.components)

    def area_needed(self, logic_alms: float) -> float:
        """Physical ALMs needed to place ``logic_alms`` of useful logic."""
        return sum(
            (share * logic_alms) / packing for _, share, packing in self.components
        )

    def fits(self, logic_alms: float, device_alms: float) -> bool:
        return self.area_needed(logic_alms) <= device_alms


#: The Brainwave decomposition quoted by the paper: 0.2*0.80 + 0.8*0.97 = 0.936,
#: i.e. ~92-94% overall utilization (the paper rounds to 92%).
BRAINWAVE = UtilizationModel(
    "brainwave",
    components=(("control", 0.20, 0.80), ("datapath", 0.80, 0.97)),
)

#: Conventional soft arithmetic: 60-70% fits; we model the midpoint.
TYPICAL_SOFT_ARITHMETIC = UtilizationModel(
    "typical-soft-arithmetic",
    components=(("arithmetic", 1.0, 0.65),),
)

#: Random (non-arithmetic) logic tops ~80%.
RANDOM_LOGIC = UtilizationModel("random-logic", components=(("logic", 1.0, 0.80),))

"""Multiplier regularization: Fig. 3 -> Fig. 4.

The pencil-and-paper 3x3 multiplier produces three partial-product rows
whose column heights are grossly unbalanced (Fig. 3) — a poor match for the
two-input ripple-carry structure of FPGA carry chains.  The paper's
regularization extracts the third bit of the deep columns into *out-of-band*
auxiliary functions computed in a single extra ALM, leaving a two-row array
(Fig. 4) that maps onto one short carry chain with balanced logic and
routing: "6 independent inputs over the 4 ALMs".

Note on Fig. 4's exact cell contents: the published table is ambiguous
(its ``AUX2 xor p12`` cell is not arithmetically consistent with the prose).
We implement the mathematically forced assignment —

* ``AUX1 = p02 xor p11``   (redundant sum of column 2),
* ``AUX2 = (p02 and p11) xor p12``   (redundant sum of column 3, folding in
  the column-2 redundant carry ``a2 b0 a1 b1`` described in the prose),
* ``AUX3 = p02 and p11 and p12``   (redundant carry into column 4) —

and verify it bit-exactly against ``a * b`` over all 64 input pairs.  All
three auxiliary functions share the same four inputs ``{a2, a1, b0, b1}``,
which is why a single fracturable ALM suffices, exactly as the paper says.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..bitheap import BitHeap, partial_product_array
from .alm import ALMBudget

__all__ = ["MappingStats", "RegularizedMultiplier", "regularize_3x3", "naive_mapping_stats"]


@dataclass
class MappingStats:
    """Resource/structure statistics of a soft-multiplier mapping."""

    name: str
    rows: int
    max_column_height: int
    min_column_inputs: int
    max_column_inputs: int
    chain_alms: int
    out_of_band_alms: int
    independent_inputs: int

    @property
    def total_alms(self) -> int:
        return self.chain_alms + self.out_of_band_alms

    @property
    def balanced(self) -> bool:
        """A mapping is balanced when no column needs more than 2 rows."""
        return self.max_column_height <= 2


def _pp(a: int, b: int, i: int, j: int) -> int:
    """Partial product ``p[j,i]`` = bit i of a AND bit j of b (Fig. 3 naming)."""
    return ((a >> i) & 1) & ((b >> j) & 1)


class RegularizedMultiplier:
    """The Fig. 4 two-level 3x3 multiplier with auxiliary functions."""

    WIDTH = 3

    def rows(self, a: int, b: int) -> Tuple[List[int], List[int]]:
        """Evaluate the two partial-product rows for concrete operands.

        Returns (PP0, PP1) as bit lists for columns 0..5.  Their sum equals
        ``a * b`` (checked exhaustively in the tests and benchmarks).
        """
        p = lambda j, i: _pp(a, b, i, j)
        aux1 = p(0, 2) ^ p(1, 1)
        carry2 = p(0, 2) & p(1, 1)
        aux2 = carry2 ^ p(1, 2)
        aux3 = carry2 & p(1, 2)
        pp0 = [p(0, 0), p(0, 1), p(2, 0), p(2, 1), p(2, 2), 0]
        pp1 = [0, p(1, 0), aux1, aux2, aux3, 0]
        return pp0, pp1

    def multiply(self, a: int, b: int) -> int:
        """Compute the product through the regularized structure."""
        pp0, pp1 = self.rows(a, b)
        total = 0
        carry = 0
        for col in range(6):
            s = pp0[col] + pp1[col] + carry
            total |= (s & 1) << col
            carry = s >> 1
        return total

    def heap(self, a: int = None, b: int = None) -> BitHeap:
        """The regularized structure as a (possibly concrete) bit heap."""
        heap = BitHeap("fig4_mul3x3")
        if a is None or b is None:
            for col, name in enumerate(["p[0,0]", "p[0,1]", "p[2,0]", "p[2,1]", "p[2,2]"]):
                heap.add_bit(col, source=name)
            for col, name in [(1, "p[1,0]"), (2, "AUX1"), (3, "AUX2"), (4, "AUX3")]:
                heap.add_bit(col, source=name)
            return heap
        pp0, pp1 = self.rows(a, b)
        for col in range(5):  # PP0 occupies columns 0..4
            heap.add_bit(col, source=f"pp0[{col}]", value=pp0[col])
        for col in (1, 2, 3, 4):  # PP1 occupies columns 1..4
            heap.add_bit(col, source=f"pp1[{col}]", value=pp1[col])
        return heap

    def alm_budget(self) -> ALMBudget:
        """ALM placement of the Fig. 4 mapping.

        One out-of-band ALM computes the auxiliary functions (all three
        share inputs {a2, a1, b0, b1}); three chain ALMs add columns
        (1,2), (3,4) and the carry out — two adder positions per ALM.
        """
        budget = ALMBudget()
        aux_support = frozenset({"a2", "a1", "b0", "b1"})
        budget.place("AUX1", aux_support)
        budget.place("AUX2", aux_support)  # shares the same fracturable ALM
        # The carry chain: 6 add positions / 2 per ALM = 3 ALMs.
        budget.place("chain[0]", frozenset({"a0", "b0", "a1", "b1"}), on_chain=True)
        budget.place("chain[1]", frozenset({"a2", "b0", "a1", "b1"}), on_chain=True)
        budget.place("chain[2]", frozenset({"a2", "b1", "b2"}), on_chain=True)
        return budget

    def stats(self) -> MappingStats:
        budget = self.alm_budget()
        heights: Dict[int, int] = {}
        sym = self.heap()
        for col in sym.occupied_columns():
            heights[col] = sym.height(col)
        return MappingStats(
            name="fig4-regularized-3x3",
            rows=2,
            max_column_height=max(heights.values()),
            min_column_inputs=min(heights.values()),
            max_column_inputs=max(heights.values()),
            chain_alms=budget.chain_count,
            out_of_band_alms=budget.count - budget.chain_count,
            independent_inputs=6,  # a0..a2, b0..b2
        )


def regularize_3x3() -> RegularizedMultiplier:
    """Construct the Fig. 4 regularized 3x3 multiplier."""
    return RegularizedMultiplier()


def naive_mapping_stats() -> MappingStats:
    """Statistics of the naive Fig. 3 mapping, for comparison.

    Three rows; column 2 holds three partial products, so a two-input
    carry chain cannot absorb the array directly ("this arrangement leads
    to three inputs after the second column"), and per-column independent
    inputs vary from 2 to 6.
    """
    heap = partial_product_array(3, 3)
    heights = {c: heap.height(c) for c in heap.occupied_columns()}

    # Independent inputs per column: the distinct operand bits feeding it.
    def column_inputs(col: int) -> int:
        signals = set()
        for j in range(3):
            for i in range(3):
                if i + j == col:
                    signals.add(f"a{i}")
                    signals.add(f"b{j}")
        return len(signals)

    per_col = [column_inputs(c) for c in heap.occupied_columns()]
    # A naive ripple mapping needs one adder row per extra partial product
    # row: 2 chain passes of ~4 positions each => ~4 ALMs on chains, plus
    # the AND-plane LUTs.
    return MappingStats(
        name="fig3-naive-3x3",
        rows=3,
        max_column_height=max(heights.values()),
        min_column_inputs=min(per_col),
        max_column_inputs=max(per_col),
        chain_alms=4,
        out_of_band_alms=2,
        independent_inputs=6,
    )

"""Embedded DSP-block floating-point model (Section III).

"Each Intel Agilex DSP Block contains a FP32 multiplier-adder pair that can
be decomposed into two smaller precision pairs; FP16, bfloat16, and a third
FP19 {1,8,10} format ... One member of the new Agilex device family
contains almost 9000 DSPs; at a clock rate of 750 MHz this provides up to
25 TFLOPs performance."

The model is structural: a DSP mode declares the format, the number of
multiplier-adder lanes, and whether the lane's datapath fits the hard
multiplier array (checked from the format's significand width against the
FP32 array the block physically contains).  The behavioural part reuses
:mod:`repro.floats`, so decomposed modes compute real bit-exact arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..floats import BFLOAT16, BINARY16, BINARY32, FP19, FloatFormat, SoftFloat

__all__ = ["DSPMode", "DSPBlock", "DeviceModel", "AGILEX_MODES", "agilex_device"]


@dataclass(frozen=True)
class DSPMode:
    """One configuration of the embedded DSP block."""

    name: str
    fmt: FloatFormat
    lanes: int

    @property
    def flops_per_cycle(self) -> int:
        """Each lane performs one multiply and one add per cycle."""
        return 2 * self.lanes

    def significand_fits_half_array(self) -> bool:
        """True when two lanes of this format fit the FP32 multiplier array.

        The FP32 array multiplies 24-bit significands; splitting it into two
        independent halves supports significands of at most 12 bits.
        """
        return self.fmt.precision <= (BINARY32.frac_bits + 1) // 2


#: The Agilex DSP block's floating-point modes (Section III).
AGILEX_MODES: Dict[str, DSPMode] = {
    "fp32": DSPMode("fp32", BINARY32, lanes=1),
    "fp16": DSPMode("fp16", BINARY16, lanes=2),
    "bfloat16": DSPMode("bfloat16", BFLOAT16, lanes=2),
    "fp19": DSPMode("fp19", FP19, lanes=2),
}


class DSPBlock:
    """A behavioural DSP block: mode-selectable multiplier-adder lanes."""

    def __init__(self, mode: DSPMode):
        self.mode = mode

    def multiply_add(self, a_patterns, b_patterns, c_patterns) -> List[int]:
        """One cycle: per lane, compute ``round(a * b) + c`` in the lane format.

        Patterns are integers in the mode's format; the result list has one
        entry per lane.  (The hard block rounds between the multiplier and
        adder — it is *not* an FMA, matching the hardware.)
        """
        lanes = self.mode.lanes
        if not (len(a_patterns) == len(b_patterns) == len(c_patterns) == lanes):
            raise ValueError(f"{self.mode.name} mode has {lanes} lanes")
        fmt = self.mode.fmt
        out = []
        for pa, pb, pc in zip(a_patterns, b_patterns, c_patterns):
            a, b, c = SoftFloat(fmt, pa), SoftFloat(fmt, pb), SoftFloat(fmt, pc)
            out.append((a.mul(b).add(c)).pattern)
        return out

    def dot2(self, a_patterns, b_patterns) -> int:
        """Two-lane dot product accumulated into one lane-format value."""
        fmt = self.mode.fmt
        acc = SoftFloat.zero(fmt)
        for pa, pb in zip(a_patterns, b_patterns):
            acc = acc + SoftFloat(fmt, pa) * SoftFloat(fmt, pb)
        return acc.pattern


@dataclass(frozen=True)
class DeviceModel:
    """Whole-device peak-throughput arithmetic."""

    name: str
    dsp_count: int
    clock_hz: float

    def peak_tflops(self, mode: DSPMode) -> float:
        """Peak TFLOPs in the given DSP mode."""
        return self.dsp_count * mode.flops_per_cycle * self.clock_hz / 1e12

    def soft_logic_tflops(self, alms: int, alms_per_op: float, clock_hz: float = None) -> float:
        """Soft-logic compute: ALM budget / cost-per-operator * 2 flops.

        Section III: "new FPGA EDA flows can implement 100 TFLOPs+ of soft
        logic-based compute power" for very low precisions.
        """
        clock = clock_hz if clock_hz is not None else self.clock_hz
        operators = alms / alms_per_op
        return operators * 2 * clock / 1e12


def agilex_device() -> DeviceModel:
    """The Agilex family member the paper quotes: ~9000 DSPs at 750 MHz.

    In fp16/bfloat16/fp19 mode each DSP does 2 lanes x (mul + add) =
    4 flops/cycle: 8960 * 4 * 0.75e9 = 26.9 TFLOPs raw, marketed as
    "up to 25 TFLOPs".
    """
    return DeviceModel("agilex-large", dsp_count=8960, clock_hz=750e6)

"""Adaptive Logic Module (ALM) resource model.

An Intel-style ALM contains a fracturable 6-input LUT (usable as two
smaller functions with shared inputs), two bits of arithmetic (two
full-adder positions on the dedicated carry chain), and two flip-flops.
This is the unit the paper counts when it says the regularized 3x3
multiplier is "a single 3 ALM carry chain, with a single out of band ALM".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

__all__ = ["ALM", "ALMBudget"]


@dataclass
class ALM:
    """One adaptive logic module instance.

    Attributes:
        functions: Logic functions implemented, each a (name, support) pair
            where support is the set of input signal names.  At most two
            functions with a combined support of <= 8 distinct inputs
            (<= 6 for a single function) — the fracturability constraint.
        on_chain: True when the ALM occupies a carry-chain position.
    """

    functions: List[Tuple[str, frozenset]] = field(default_factory=list)
    on_chain: bool = False

    MAX_SINGLE_SUPPORT = 6
    MAX_SHARED_SUPPORT = 8

    def can_add(self, support: frozenset) -> bool:
        if len(self.functions) >= 2:
            return False
        combined = support.union(*(s for _, s in self.functions)) if self.functions else support
        if not self.functions:
            return len(support) <= self.MAX_SINGLE_SUPPORT
        return len(combined) <= self.MAX_SHARED_SUPPORT and all(
            len(s) <= self.MAX_SINGLE_SUPPORT for _, s in self.functions + [("", support)]
        )

    def add(self, name: str, support: frozenset) -> None:
        if not self.can_add(support):
            raise ValueError(f"function {name} does not fit this ALM")
        self.functions.append((name, frozenset(support)))

    @property
    def input_count(self) -> int:
        if not self.functions:
            return 0
        return len(frozenset().union(*(s for _, s in self.functions)))


class ALMBudget:
    """Greedy packer of named logic functions into as few ALMs as possible."""

    def __init__(self):
        self.alms: List[ALM] = []

    def place(self, name: str, support, on_chain: bool = False) -> ALM:
        """Place a function, preferring to share an existing compatible ALM."""
        support = frozenset(support)
        if not on_chain:
            for alm in self.alms:
                if not alm.on_chain and alm.can_add(support):
                    alm.add(name, support)
                    return alm
        alm = ALM(on_chain=on_chain)
        alm.add(name, support)
        self.alms.append(alm)
        return alm

    @property
    def count(self) -> int:
        return len(self.alms)

    @property
    def chain_count(self) -> int:
        return sum(1 for a in self.alms if a.on_chain)

    @property
    def total_inputs(self) -> int:
        """Distinct signals feeding the whole budget."""
        signals = set()
        for alm in self.alms:
            for _, s in alm.functions:
                signals |= s
        return len(signals)

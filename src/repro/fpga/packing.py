"""Fractal-synthesis-style carry-chain packing (Section III).

Soft-logic arithmetic produces *many short logical carry-chain segments*
that must be packed into the FPGA's fixed physical chains.  Straightforward
placement leaves arrays 60-70% full; the paper describes a re-synthesis
step in the clustering/packing stage:

* treat the problem as combined logic + carry-chain bin packing;
* if a segment does not fit the space available, **decompose** it (split
  into sub-segments re-joined through out-of-band logic);
* place split-off sub-segments in remaining gaps;
* finish with a **hard depopulation** that pins the arrangement;
* iterate **exhaustively over seeds** rather than simulated annealing,
  keeping only each seed and its metrics — the best solution is re-created
  from its seed, which slashes RAM/disk and run time.

:func:`pack_segments` is a single deterministic pass given a seed;
:func:`fractal_pack` is the seed-iterated driver.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = ["CarrySegment", "PhysicalChain", "PackingResult", "pack_segments", "fractal_pack"]

#: ALM positions that must separate two unrelated segments on one chain
#: ("the segments need to be arithmetically separated from each other,
#: typically by the insertion of non-functions").
SEPARATION = 1

#: Extra chain position consumed at each split point: the split-off
#: sub-segment needs its carry re-entered through soft logic.
SPLIT_OVERHEAD = 1


@dataclass(frozen=True)
class CarrySegment:
    """A logical run of ``length`` consecutive carry-chain ALM positions."""

    name: str
    length: int

    def __post_init__(self):
        if self.length < 1:
            raise ValueError("segments need at least one position")


@dataclass
class PhysicalChain:
    """One physical carry chain of fixed capacity (one LAB column run)."""

    index: int
    capacity: int
    placements: List[Tuple[str, int]] = field(default_factory=list)  # (name, length)
    used: int = 0

    def room(self) -> int:
        gap = SEPARATION if self.placements else 0
        return self.capacity - self.used - gap

    def place(self, name: str, length: int) -> None:
        gap = SEPARATION if self.placements else 0
        if length + gap > self.capacity - self.used:
            raise ValueError(f"segment {name} does not fit chain {self.index}")
        self.used += length + gap
        self.placements.append((name, length))


@dataclass
class PackingResult:
    """Outcome of one packing run (possibly re-created from its seed)."""

    seed: int
    chains_used: int
    positions_used: int
    positions_total: int
    splits: int
    unplaced: int
    chains: Optional[List[PhysicalChain]] = None

    @property
    def utilization(self) -> float:
        """Fraction of provided carry positions holding useful arithmetic."""
        if self.positions_total == 0:
            return 0.0
        return self.positions_used / self.positions_total

    def metric(self) -> Tuple[int, int, float]:
        """Lexicographic quality: fewer unplaced, fewer chains, fewer splits."""
        return (self.unplaced, self.chains_used, self.splits)


def pack_segments(
    segments: Sequence[CarrySegment],
    chain_capacity: int,
    chain_count: int,
    seed: int = 0,
    keep_chains: bool = True,
) -> PackingResult:
    """One deterministic packing pass.

    The seed shuffles the segment order (the paper: "a seed function to
    initialize each iteration"); packing is then first-fit with segment
    decomposition: a segment that fits nowhere is split to the largest
    available gap (paying :data:`SPLIT_OVERHEAD`), and its remainder re-queued.
    """
    rng = random.Random(seed)
    order = list(segments)
    rng.shuffle(order)

    chains = [PhysicalChain(i, chain_capacity) for i in range(chain_count)]
    splits = 0
    unplaced = 0
    queue: List[CarrySegment] = list(order)

    while queue:
        seg = queue.pop(0)
        target = next((c for c in chains if c.room() >= seg.length), None)
        if target is not None:
            target.place(seg.name, seg.length)
            continue
        # Decompose: fill the biggest gap, re-queue the remainder.
        best = max(chains, key=lambda c: c.room(), default=None)
        if best is None or best.room() <= SPLIT_OVERHEAD:
            unplaced += 1
            continue
        head_len = best.room() - SPLIT_OVERHEAD
        if head_len < 1 or seg.length - head_len < 1:
            unplaced += 1
            continue
        best.place(f"{seg.name}.head", head_len + SPLIT_OVERHEAD)
        queue.append(CarrySegment(f"{seg.name}.tail", seg.length - head_len))
        splits += 1

    used = sum(
        sum(length for name, length in c.placements if not name.endswith(".pad"))
        for c in chains
    )
    # Hard depopulation: pad the tail gap of every used chain so the back
    # end cannot rearrange sub-segments.
    for c in chains:
        if c.placements and c.capacity - c.used > 0:
            pad = c.capacity - c.used
            c.placements.append((f"chain{c.index}.pad", pad))
            c.used = c.capacity

    return PackingResult(
        seed=seed,
        chains_used=sum(1 for c in chains if any(not n.endswith(".pad") for n, _ in c.placements)),
        positions_used=used,
        positions_total=chain_capacity * chain_count,
        splits=splits,
        unplaced=unplaced,
        chains=chains if keep_chains else None,
    )


def fractal_pack(
    segments: Sequence[CarrySegment],
    chain_capacity: int,
    chain_count: int,
    seeds: int = 32,
) -> PackingResult:
    """Seed-iterated packing: try ``seeds`` deterministic passes, track only
    (seed, metrics), then re-create the winner from its seed.

    This reproduces the paper's run-time observation: no per-solution state
    is kept, "only a list of seeds and their final metrics are tracked.
    The best solution can be quickly re-created using the chosen seed."
    """
    best_seed, best_metric = None, None
    for seed in range(seeds):
        result = pack_segments(segments, chain_capacity, chain_count, seed, keep_chains=False)
        if best_metric is None or result.metric() < best_metric:
            best_seed, best_metric = seed, result.metric()
    return pack_segments(segments, chain_capacity, chain_count, best_seed, keep_chains=True)

"""FPGA-based arithmetic (Section III).

Models the three soft-logic techniques the paper describes for turning an
FPGA into "the most flexible, and amongst the highest performing AI
platform":

* **Multiplier regularization** (:mod:`repro.fpga.regularize`): refactoring
  the unbalanced partial-product array of a small multiplier (Fig. 3) into a
  two-level form with out-of-band auxiliary functions (Fig. 4) that maps to
  a single two-input carry chain — balanced logic and routing.
* **Fractal-synthesis-style packing** (:mod:`repro.fpga.packing`): the
  combined re-synthesis / clustering / packing step that bin-packs many
  short logical carry-chain segments into fixed physical chains, with
  segment decomposition, hard depopulation, and seeded exhaustive iteration
  that tracks only seeds and metrics.
* **DSP-block decomposition** (:mod:`repro.fpga.dsp`): the Agilex-style
  embedded FP32 multiplier-adder pair that splits into two smaller-precision
  pairs (FP16 / bfloat16 / FP19), and the device-level TFLOPs arithmetic.
* **Utilization models** (:mod:`repro.fpga.utilization`): why soft
  arithmetic typically fits at 60-70% while Brainwave-style designs reach
  92%.
"""

from .alm import ALM, ALMBudget
from .regularize import (
    RegularizedMultiplier,
    regularize_3x3,
    naive_mapping_stats,
    MappingStats,
)
from .packing import (
    CarrySegment,
    PhysicalChain,
    PackingResult,
    pack_segments,
    fractal_pack,
)
from .dsp import DSPBlock, DSPMode, DeviceModel, AGILEX_MODES, agilex_device
from .utilization import UtilizationModel, BRAINWAVE, TYPICAL_SOFT_ARITHMETIC, RANDOM_LOGIC

__all__ = [
    "ALM",
    "ALMBudget",
    "RegularizedMultiplier",
    "regularize_3x3",
    "naive_mapping_stats",
    "MappingStats",
    "CarrySegment",
    "PhysicalChain",
    "PackingResult",
    "pack_segments",
    "fractal_pack",
    "DSPBlock",
    "DSPMode",
    "DeviceModel",
    "AGILEX_MODES",
    "agilex_device",
    "UtilizationModel",
    "BRAINWAVE",
    "TYPICAL_SOFT_ARITHMETIC",
    "RANDOM_LOGIC",
]

"""Process-wide kernel registry: build each format's tables exactly once.

Behaviour tables are expensive to build (O(4**nbits) scalar operations for
a pairwise table) but tiny to store (a 256x256 uint8 pair is 128 KiB), so
the registry memoizes construction per format key and can optionally
persist the arrays as ``.npz`` files so tables build once per *machine*,
not once per process.

Disk persistence is opt-in: set the ``REPRO_ENGINE_CACHE`` environment
variable to a directory, call :func:`enable_disk_cache`, or construct a
private :class:`KernelRegistry` with ``cache_dir`` (as the tests do with a
tmp dir).  Nothing is written to disk by default.

The registry also hosts the shared codec/table accessors that the rest of
the repo uses (:func:`get_codec`, :func:`get_posit_tables`), so repeated
quantized-network construction stops rebuilding identical 256x256 tables.
"""

from __future__ import annotations

import os
import re
import threading
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Set

import numpy as np

from ..posit.format import PositFormat
from ..posit.tensor import PositCodec, PositTable
from .observe import METRICS, TRACER

__all__ = [
    "KernelRegistry",
    "REGISTRY",
    "enable_disk_cache",
    "get_codec",
    "get_posit_tables",
]

#: Builders return a dict of named numpy arrays — the only thing the
#: registry stores or persists.  Wrapper objects (codecs, tables) are
#: reconstructed from the arrays by the accessor functions below.
TableBuilder = Callable[[], Dict[str, np.ndarray]]


def _slug(key: tuple) -> str:
    """A filesystem-safe filename stem for a format key."""
    text = "_".join(str(part) for part in key)
    return re.sub(r"[^A-Za-z0-9._-]+", "-", text)


class KernelRegistry:
    """Memoizing (and optionally persisting) store of kernel tables.

    ``get(key, builder)`` returns the table dict for ``key``, building it at
    most once per process and round-tripping it through ``cache_dir`` when
    one is configured.  ``hits``/``misses`` count memo lookups —
    the "table hits/misses" of the engine's observability counters.
    """

    def __init__(self, cache_dir: Optional[os.PathLike] = None):
        self._memo: Dict[tuple, Dict[str, np.ndarray]] = {}
        self._objects: Dict[tuple, object] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.disk_loads = 0
        self.disk_writes = 0
        #: Per-directory set of keys known to be on disk already — what
        #: makes repeated ``flush_to_disk`` calls no-ops on unchanged tables.
        self._flushed: Dict[str, Set[tuple]] = {}
        env = os.environ.get("REPRO_ENGINE_CACHE")
        self.cache_dir: Optional[Path] = Path(cache_dir or env) if (cache_dir or env) else None

    # ------------------------------------------------------------------
    def get(self, key: tuple, builder: TableBuilder) -> Dict[str, np.ndarray]:
        """The table dict for ``key``; built (or loaded from disk) once."""
        with self._lock:
            if key in self._memo:
                self.hits += 1
                METRICS.inc("registry.hits")
                return self._memo[key]
            self.misses += 1
            METRICS.inc("registry.misses")
            t0 = time.perf_counter()
            tables = self._load(key)
            if tables is None:
                with TRACER.span("registry.build", key=_slug(key)):
                    tables = builder()
                self._store(key, tables)
                METRICS.inc(
                    "registry.bytes_built", sum(a.nbytes for a in tables.values())
                )
            else:
                self.disk_loads += 1
                METRICS.inc("registry.disk_loads")
                METRICS.inc(
                    "registry.bytes_loaded", sum(a.nbytes for a in tables.values())
                )
                METRICS.observe("registry.disk_load_s", time.perf_counter() - t0)
            self._memo[key] = tables
            return tables

    def get_object(self, key: tuple, factory: Callable[[], object]) -> object:
        """Memoize an arbitrary object (codec wrappers, backends) per key."""
        with self._lock:
            if key in self._objects:
                self.hits += 1
                return self._objects[key]
            self.misses += 1
        obj = factory()  # build outside the lock: factories may call get()
        with self._lock:
            return self._objects.setdefault(key, obj)

    # ------------------------------------------------------------------
    def _path(self, key: tuple) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return Path(self.cache_dir) / f"{_slug(key)}.npz"

    def _load(self, key: tuple) -> Optional[Dict[str, np.ndarray]]:
        path = self._path(key)
        if path is None or not path.exists():
            return None
        try:
            with np.load(path) as data:
                return {name: data[name] for name in data.files}
        except (OSError, ValueError):
            return None  # corrupt cache entry: rebuild

    def _store(self, key: tuple, tables: Dict[str, np.ndarray]) -> None:
        path = self._path(key)
        if path is None:
            return
        self._write(path, tables)
        self.disk_writes += 1
        METRICS.inc("registry.disk_writes")
        self._flushed.setdefault(str(Path(self.cache_dir)), set()).add(key)

    @staticmethod
    def _write(path: Path, tables: Dict[str, np.ndarray]) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".npz.tmp")
        with open(tmp, "wb") as fh:  # file object: savez won't append .npz
            np.savez_compressed(fh, **tables)
        os.replace(tmp, path)  # atomic against concurrent builders

    def flush_to_disk(self, cache_dir: Optional[os.PathLike] = None) -> int:
        """Persist every resident table dict as ``.npz`` under ``cache_dir``.

        ``cache_dir`` defaults to the registry's own cache directory.  This
        is how the parallel execution layer shares kernel tables across
        processes: the parent flushes whatever it has built, then spawned
        workers point their registry at the same directory and *load* the
        prebuilt tables instead of re-running the O(4**nbits) builders.

        Idempotent: entries already flushed to (or found on) ``target`` are
        remembered per directory, so repeated calls with no new resident
        tables — e.g. every :class:`~repro.engine.parallel.ParallelRunner`
        construction against one shared cache — do no disk work at all.
        Actual writes tick the ``disk_writes`` metric in :meth:`stats`.

        Returns the number of entries written (existing files are kept).
        """
        target = Path(cache_dir) if cache_dir is not None else self.cache_dir
        if target is None:
            raise ValueError("flush_to_disk needs a cache_dir (none configured)")
        with self._lock:
            resident = list(self._memo.items())
            flushed = self._flushed.setdefault(str(target), set())
            pending = [(k, t) for k, t in resident if k not in flushed]
        if not pending:
            return 0
        written = 0
        with TRACER.span("registry.flush_to_disk", dir=str(target), entries=len(pending)):
            for key, tables in pending:
                path = target / f"{_slug(key)}.npz"
                if not path.exists():
                    self._write(path, tables)
                    written += 1
                    self.disk_writes += 1
                    METRICS.inc("registry.disk_writes")
                    METRICS.inc(
                        "registry.bytes_flushed",
                        sum(a.nbytes for a in tables.values()),
                    )
                with self._lock:
                    flushed.add(key)
        return written

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_loads": self.disk_loads,
            "disk_writes": self.disk_writes,
            "resident_tables": len(self._memo),
        }

    def clear(self) -> None:
        """Drop all in-process memoized tables (disk cache untouched)."""
        with self._lock:
            self._memo.clear()
            self._objects.clear()
            self._flushed.clear()
            self.hits = self.misses = self.disk_loads = self.disk_writes = 0


#: The process-wide registry every backend uses unless given a private one.
REGISTRY = KernelRegistry()


def enable_disk_cache(path: os.PathLike) -> None:
    """Point the process-wide registry at an on-disk ``.npz`` cache dir."""
    REGISTRY.cache_dir = Path(path)


# ----------------------------------------------------------------------
# Shared accessors (the module-level codec/table cache)
# ----------------------------------------------------------------------
def get_codec(fmt: PositFormat, registry: Optional[KernelRegistry] = None) -> PositCodec:
    """The shared :class:`PositCodec` for ``fmt``, built once per process.

    Keyed by ``(nbits, es)``: every ``PositQuantizedNetwork`` and posit
    backend constructed for the same format reuses one codec (and its
    sorted value tables) instead of re-running the scalar decode loop.
    """
    reg = registry if registry is not None else REGISTRY
    key = ("posit", fmt.nbits, fmt.es, "codec")

    def factory() -> PositCodec:
        def build() -> Dict[str, np.ndarray]:
            codec = PositCodec(fmt)
            return {"values": codec.values, "boundaries": codec.boundaries}

        tables = reg.get(("posit", fmt.nbits, fmt.es, "values"), build)
        return PositCodec(fmt, values=tables["values"], boundaries=tables["boundaries"])

    return reg.get_object(key, factory)


def get_posit_tables(
    fmt: PositFormat,
    registry: Optional[KernelRegistry] = None,
    max_bits: int = 10,
) -> PositTable:
    """The shared pairwise add/mul :class:`PositTable` for ``fmt``."""
    reg = registry if registry is not None else REGISTRY
    key = ("posit", fmt.nbits, fmt.es, "pairwise")

    def factory() -> PositTable:
        tables = reg.get(
            ("posit", fmt.nbits, fmt.es, "addmul"),
            lambda: _build_posit_pair_tables(fmt, max_bits),
        )
        return PositTable(
            fmt,
            tables=(tables["add"], tables["mul"]),
            codec=get_codec(fmt, reg),
        )

    return reg.get_object(key, factory)


def _build_posit_pair_tables(fmt: PositFormat, max_bits: int) -> Dict[str, np.ndarray]:
    table = PositTable(fmt, max_bits=max_bits)
    return {"add": table.add_table, "mul": table.mul_table}

"""Process-wide kernel registry: build each format's tables exactly once.

Behaviour tables are expensive to build (O(4**nbits) scalar operations for
a pairwise table) but tiny to store (a 256x256 uint8 pair is 128 KiB), so
the registry memoizes construction per format key and can optionally
persist the arrays as ``.npz`` files so tables build once per *machine*,
not once per process.

Disk persistence is opt-in: set the ``REPRO_ENGINE_CACHE`` environment
variable to a directory, call :func:`enable_disk_cache`, or construct a
private :class:`KernelRegistry` with ``cache_dir`` (as the tests do with a
tmp dir).  Nothing is written to disk by default.

The registry also hosts the shared codec/table accessors that the rest of
the repo uses (:func:`get_codec`, :func:`get_posit_tables`), so repeated
quantized-network construction stops rebuilding identical 256x256 tables.
"""

from __future__ import annotations

import hashlib
import os
import re
import threading
import time
import zipfile
import zlib
from pathlib import Path
from typing import Callable, Dict, Optional, Set

import numpy as np

from ..posit.format import PositFormat
from ..posit.tensor import PositCodec, PositTable
from .observe import METRICS, TRACER

__all__ = [
    "ENCODE_TABLE_TOP_BITS",
    "KernelRegistry",
    "REGISTRY",
    "array_digest",
    "enable_disk_cache",
    "get_codec",
    "get_encode_table",
    "get_posit_tables",
]

#: Builders return a dict of named numpy arrays — the only thing the
#: registry stores or persists.  Wrapper objects (codecs, tables) are
#: reconstructed from the arrays by the accessor functions below.
TableBuilder = Callable[[], Dict[str, np.ndarray]]


def _slug(key: tuple) -> str:
    """A filesystem-safe filename stem for a format key."""
    text = "_".join(str(part) for part in key)
    return re.sub(r"[^A-Za-z0-9._-]+", "-", text)


#: Name of the integrity-digest array embedded in every flushed ``.npz``.
DIGEST_KEY = "__sha256__"

#: Exceptions that mean "this cache file cannot be parsed right now" —
#: either a half-written file from a concurrent writer (transient, cured by
#: the retry loop) or true corruption (quarantined after retries).
_LOAD_ERRORS = (OSError, ValueError, EOFError, KeyError, zipfile.BadZipFile, zlib.error)

#: Bounded exponential backoff for disk races: attempt, sleep, retry.
_IO_RETRIES = 3
_IO_BACKOFF_S = 0.01


def _io_backoff_s(attempt: int, token: str) -> float:
    """Jittered exponential disk-retry delay, pure function of its inputs.

    Lockstep backoff re-collides the very writers it is meant to separate:
    N processes that hit the same half-written file sleep the same
    ``base * 2**attempt`` and retry together.  The jitter factor in
    ``[0.5, 1.5)`` derives from ``crc32(token | attempt)`` — ``token`` is
    per-caller (pid + thread id), so colliding writers spread out, yet the
    schedule stays deterministic for tests.
    """
    h = zlib.crc32(f"{token}|{attempt}".encode()) & 0xFFFFFFFF
    return _IO_BACKOFF_S * (2 ** int(attempt)) * (0.5 + h / 2**32)


def _io_token() -> str:
    """The per-caller jitter token: this process and thread."""
    return f"{os.getpid()}.{threading.get_ident()}"


def _digest(tables: Dict[str, np.ndarray]) -> bytes:
    """sha256 over the sorted (name, dtype, shape, bytes) of every table."""
    h = hashlib.sha256()
    for name in sorted(tables):
        arr = np.ascontiguousarray(tables[name])
        h.update(name.encode())
        h.update(str(arr.dtype).encode())
        h.update(repr(arr.shape).encode())
        h.update(arr.tobytes())
    return h.digest()


def array_digest(arr: np.ndarray) -> str:
    """Hex sha256 content name of one array: dtype + shape + bytes.

    The building block of content addressing across the repo: the same
    scheme the disk cache's embedded integrity digest uses per table, so a
    tensor (or a kernel table) has exactly one name everywhere — two arrays
    share a digest iff they are bit-identical with the same dtype and shape.
    """
    a = np.ascontiguousarray(arr)
    h = hashlib.sha256()
    h.update(str(a.dtype).encode())
    h.update(repr(a.shape).encode())
    h.update(a.tobytes())
    return h.hexdigest()


class KernelRegistry:
    """Memoizing (and optionally persisting) store of kernel tables.

    ``get(key, builder)`` returns the table dict for ``key``, building it at
    most once per process and round-tripping it through ``cache_dir`` when
    one is configured.  ``hits``/``misses`` count memo lookups —
    the "table hits/misses" of the engine's observability counters.
    """

    def __init__(self, cache_dir: Optional[os.PathLike] = None, fault_plan=None):
        self._memo: Dict[tuple, Dict[str, np.ndarray]] = {}
        self._objects: Dict[tuple, object] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.disk_loads = 0
        self.disk_writes = 0
        #: Disk entries rejected on load (bad checksum / truncated / stale /
        #: failed validation) and quarantined — each one also increments the
        #: ``registry.disk_integrity_failures`` metric.
        self.integrity_failures = 0
        #: Disk writes that failed even after retries (cache stays memory-only).
        self.disk_errors = 0
        #: Optional :class:`repro.engine.faults.FaultPlan` corrupting tables
        #: at ``get()`` time.  The memo (and anything flushed to disk) stays
        #: pristine; corruption is re-derived per call from the plan + table
        #: contents, so it is bit-identical in every process.
        self.fault_plan = fault_plan
        #: Per-directory set of keys known to be on disk already — what
        #: makes repeated ``flush_to_disk`` calls no-ops on unchanged tables.
        self._flushed: Dict[str, Set[tuple]] = {}
        env = os.environ.get("REPRO_ENGINE_CACHE")
        self.cache_dir: Optional[Path] = Path(cache_dir or env) if (cache_dir or env) else None

    # ------------------------------------------------------------------
    def get(
        self,
        key: tuple,
        builder: TableBuilder,
        validate: Optional[Callable[[Dict[str, np.ndarray]], bool]] = None,
    ) -> Dict[str, np.ndarray]:
        """The table dict for ``key``; built (or loaded from disk) once.

        ``validate`` is an optional structural check applied to disk-loaded
        tables (shape/dtype sanity); entries that fail it are quarantined
        and rebuilt like any other integrity failure.  When a
        :attr:`fault_plan` is attached, the returned dict is a corrupted
        *copy* — the memoized tables themselves stay pristine.
        """
        with self._lock:
            if key in self._memo:
                self.hits += 1
                METRICS.inc("registry.hits")
                return self._faulted(key, self._memo[key])
            self.misses += 1
            METRICS.inc("registry.misses")
            t0 = time.perf_counter()
            tables = self._load(key, validate)
            if tables is None:
                with TRACER.span("registry.build", key=_slug(key)):
                    tables = builder()
                self._store(key, tables)
                METRICS.inc(
                    "registry.bytes_built", sum(a.nbytes for a in tables.values())
                )
            else:
                self.disk_loads += 1
                METRICS.inc("registry.disk_loads")
                METRICS.inc(
                    "registry.bytes_loaded", sum(a.nbytes for a in tables.values())
                )
                METRICS.observe("registry.disk_load_s", time.perf_counter() - t0)
            self._memo[key] = tables
            return self._faulted(key, tables)

    def _faulted(self, key: tuple, tables: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Apply the attached fault plan (if any) to a pristine table dict."""
        plan = self.fault_plan
        if plan is None or getattr(plan, "lut_rate", 0.0) <= 0.0:
            return tables
        return plan.corrupt_tables(_slug(key), tables)

    def get_object(self, key: tuple, factory: Callable[[], object]) -> object:
        """Memoize an arbitrary object (codec wrappers, backends) per key."""
        with self._lock:
            if key in self._objects:
                self.hits += 1
                return self._objects[key]
            self.misses += 1
        obj = factory()  # build outside the lock: factories may call get()
        with self._lock:
            return self._objects.setdefault(key, obj)

    # ------------------------------------------------------------------
    def _path(self, key: tuple) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return Path(self.cache_dir) / f"{_slug(key)}.npz"

    def _load(
        self,
        key: tuple,
        validate: Optional[Callable[[Dict[str, np.ndarray]], bool]] = None,
    ) -> Optional[Dict[str, np.ndarray]]:
        """Load + integrity-check a cache entry; None means "rebuild".

        Parse failures are retried with bounded exponential backoff (a
        concurrent writer may be mid-``os.replace``); a file that still
        won't parse — or parses but fails its embedded sha256 digest,
        lacks one entirely (stale, pre-integrity format), or fails the
        structural ``validate`` hook — is quarantined and rebuilt.
        """
        path = self._path(key)
        if path is None or not path.exists():
            return None
        tables = None
        for attempt in range(_IO_RETRIES):
            try:
                with np.load(path) as data:
                    tables = {name: data[name] for name in data.files}
                break
            except _LOAD_ERRORS:
                if attempt + 1 < _IO_RETRIES:
                    time.sleep(_io_backoff_s(attempt, _io_token()))
        if tables is None:
            return self._integrity_failure(key, path, "unreadable")
        stored = tables.pop(DIGEST_KEY, None)
        if stored is None:
            return self._integrity_failure(key, path, "stale")
        if bytes(np.asarray(stored, dtype=np.uint8).tobytes()) != _digest(tables):
            return self._integrity_failure(key, path, "checksum")
        if validate is not None:
            try:
                ok = bool(validate(tables))
            except Exception:
                ok = False
            if not ok:
                return self._integrity_failure(key, path, "shape")
        return tables

    def _integrity_failure(self, key: tuple, path: Path, cause: str) -> None:
        """Quarantine a bad cache file, count it, and signal a rebuild."""
        self.integrity_failures += 1
        METRICS.inc("registry.disk_integrity_failures")
        METRICS.inc(f"registry.disk_integrity_failures.{cause}")
        quarantined = path.with_suffix(".npz.corrupt")
        try:
            os.replace(path, quarantined)
        except OSError:
            quarantined = None  # unreadable/unwritable dir: leave it be
        if TRACER.enabled:
            TRACER.record(
                "registry.integrity_failure",
                ts=time.perf_counter() - TRACER.epoch,
                dur=0.0,
                attrs={
                    "key": _slug(key),
                    "cause": cause,
                    "quarantined": str(quarantined) if quarantined else None,
                },
            )
        return None

    def _store(self, key: tuple, tables: Dict[str, np.ndarray]) -> None:
        path = self._path(key)
        if path is None:
            return
        if self._write(path, tables):
            self.disk_writes += 1
            METRICS.inc("registry.disk_writes")
        self._flushed.setdefault(str(Path(self.cache_dir)), set()).add(key)

    def _write(self, path: Path, tables: Dict[str, np.ndarray]) -> bool:
        """Atomically write ``tables`` (+ embedded sha256) to ``path``.

        The temp name is unique per writer (pid + thread), so two parallel
        workers flushing the same key never stomp each other's half-written
        bytes; ``os.replace`` makes the final rename atomic.  Transient
        I/O errors are retried with bounded exponential backoff; a write
        that still fails is counted (``disk_errors``) and swallowed — the
        cache degrades to memory-only rather than killing the run.
        """
        payload = dict(tables)
        payload[DIGEST_KEY] = np.frombuffer(_digest(tables), dtype=np.uint8)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
        for attempt in range(_IO_RETRIES):
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                with open(tmp, "wb") as fh:  # file object: savez won't append .npz
                    np.savez_compressed(fh, **payload)
                os.replace(tmp, path)  # atomic against concurrent builders
                return True
            except OSError:
                try:
                    tmp.unlink()
                except OSError:
                    pass
                if attempt + 1 < _IO_RETRIES:
                    time.sleep(_io_backoff_s(attempt, _io_token()))
        self.disk_errors += 1
        METRICS.inc("registry.disk_errors")
        return False

    def flush_to_disk(self, cache_dir: Optional[os.PathLike] = None) -> int:
        """Persist every resident table dict as ``.npz`` under ``cache_dir``.

        ``cache_dir`` defaults to the registry's own cache directory.  This
        is how the parallel execution layer shares kernel tables across
        processes: the parent flushes whatever it has built, then spawned
        workers point their registry at the same directory and *load* the
        prebuilt tables instead of re-running the O(4**nbits) builders.

        Idempotent: entries already flushed to (or found on) ``target`` are
        remembered per directory, so repeated calls with no new resident
        tables — e.g. every :class:`~repro.engine.parallel.ParallelRunner`
        construction against one shared cache — do no disk work at all.
        Actual writes tick the ``disk_writes`` metric in :meth:`stats`.

        Returns the number of entries written (existing files are kept).
        """
        target = Path(cache_dir) if cache_dir is not None else self.cache_dir
        if target is None:
            raise ValueError("flush_to_disk needs a cache_dir (none configured)")
        with self._lock:
            resident = list(self._memo.items())
            flushed = self._flushed.setdefault(str(target), set())
            pending = [(k, t) for k, t in resident if k not in flushed]
        if not pending:
            return 0
        written = 0
        with TRACER.span("registry.flush_to_disk", dir=str(target), entries=len(pending)):
            for key, tables in pending:
                path = target / f"{_slug(key)}.npz"
                if not path.exists():
                    if self._write(path, tables):
                        written += 1
                        self.disk_writes += 1
                        METRICS.inc("registry.disk_writes")
                        METRICS.inc(
                            "registry.bytes_flushed",
                            sum(a.nbytes for a in tables.values()),
                        )
                with self._lock:
                    flushed.add(key)
        return written

    # ------------------------------------------------------------------
    # Content naming (the fog layer's kernel provenance hook)
    # ------------------------------------------------------------------
    def content_digest(self, key: tuple) -> Optional[str]:
        """Hex sha256 content name of the resident table dict for ``key``.

        ``None`` when ``key`` has no resident tables yet — content names
        exist only for tables that have actually been built or loaded, so a
        name can never refer to bytes this process has not seen.  The digest
        is the same one :meth:`_write` embeds in the ``.npz`` disk cache,
        which makes it a cross-process kernel identity: two nodes citing the
        same digest are provably executing over bit-identical tables.
        """
        with self._lock:
            tables = self._memo.get(key)
        if tables is None:
            return None
        return _digest(tables).hex()

    def content_names(self) -> Dict[str, str]:
        """``{format-key slug: hex digest}`` for every resident table dict.

        The registry's advertisement surface: :mod:`repro.fog` nodes publish
        these so routing and result caching can name the exact kernel bytes
        a computation ran over.
        """
        with self._lock:
            keys = list(self._memo)
        return {_slug(key): self.content_digest(key) for key in keys}

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_loads": self.disk_loads,
            "disk_writes": self.disk_writes,
            "integrity_failures": self.integrity_failures,
            "disk_errors": self.disk_errors,
            "resident_tables": len(self._memo),
        }

    def clear(self) -> None:
        """Drop all in-process memoized tables (disk cache untouched)."""
        with self._lock:
            self._memo.clear()
            self._objects.clear()
            self._flushed.clear()
            self.hits = self.misses = self.disk_loads = self.disk_writes = 0
            self.integrity_failures = self.disk_errors = 0


#: The process-wide registry every backend uses unless given a private one.
REGISTRY = KernelRegistry()


def enable_disk_cache(path: os.PathLike) -> None:
    """Point the process-wide registry at an on-disk ``.npz`` cache dir."""
    REGISTRY.cache_dir = Path(path)


# ----------------------------------------------------------------------
# Shared accessors (the module-level codec/table cache)
# ----------------------------------------------------------------------
def get_codec(fmt: PositFormat, registry: Optional[KernelRegistry] = None) -> PositCodec:
    """The shared :class:`PositCodec` for ``fmt``, built once per process.

    Keyed by ``(nbits, es)``: every ``PositQuantizedNetwork`` and posit
    backend constructed for the same format reuses one codec (and its
    sorted value tables) instead of re-running the scalar decode loop.
    """
    reg = registry if registry is not None else REGISTRY
    key = ("posit", fmt.nbits, fmt.es, "codec")

    def factory() -> PositCodec:
        def build() -> Dict[str, np.ndarray]:
            codec = PositCodec(fmt)
            return {"values": codec.values, "boundaries": codec.boundaries}

        def valid(tables: Dict[str, np.ndarray]) -> bool:
            values = tables.get("values")
            boundaries = tables.get("boundaries")
            if values is None or boundaries is None or values.ndim != 1:
                return False
            # One boundary between each adjacent pair of *finite* values
            # (NaR stores as NaN and is excluded from the rounding grid).
            finite = int(np.count_nonzero(~np.isnan(values)))
            return values.shape == (1 << fmt.nbits,) and boundaries.shape == (finite - 1,)

        tables = reg.get(("posit", fmt.nbits, fmt.es, "values"), build, validate=valid)
        return PositCodec(fmt, values=tables["values"], boundaries=tables["boundaries"])

    return reg.get_object(key, factory)


def get_posit_tables(
    fmt: PositFormat,
    registry: Optional[KernelRegistry] = None,
    max_bits: int = 10,
) -> PositTable:
    """The shared pairwise add/mul :class:`PositTable` for ``fmt``."""
    reg = registry if registry is not None else REGISTRY
    key = ("posit", fmt.nbits, fmt.es, "pairwise")

    def factory() -> PositTable:
        def valid(tables: Dict[str, np.ndarray]) -> bool:
            add, mul = tables.get("add"), tables.get("mul")
            n = 1 << fmt.nbits
            return (
                add is not None
                and mul is not None
                and add.shape == (n, n)
                and mul.shape == (n, n)
            )

        tables = reg.get(
            ("posit", fmt.nbits, fmt.es, "addmul"),
            lambda: _build_posit_pair_tables(fmt, max_bits),
            validate=valid,
        )
        return PositTable(
            fmt,
            tables=(tables["add"], tables["mul"]),
            codec=get_codec(fmt, reg),
        )

    return reg.get_object(key, factory)


def _build_posit_pair_tables(fmt: PositFormat, max_bits: int) -> Dict[str, np.ndarray]:
    table = PositTable(fmt, max_bits=max_bits)
    return {"add": table.add_table, "mul": table.mul_table}


# ----------------------------------------------------------------------
# Direct float64-bits -> posit-code encode tables (the fused path's LUT)
# ----------------------------------------------------------------------
#: Fraction bits of a float64 kept verbatim in an encode-table key.  The
#: key is ``sign(1) | biased exp(11) | top fraction bits | sticky(1)`` —
#: 21 bits, a 2 MiB uint8 table per <= 8-bit format.
ENCODE_TABLE_TOP_BITS = 8

#: Widest format an encode table covers.  The correctness condition is
#: that no posit rounding boundary distinguishes two doubles sharing a
#: key: boundaries of an ``nbits``-bit posit are values of the
#: ``(nbits+1)``-bit format, whose significands carry at most ``nbits - 1``
#: bits — i.e. <= 7 fraction bits for ``nbits <= 8``, strictly inside the
#: 8 kept bits, so every boundary is itself a key representative (tail
#: zero, sticky clear) and no truncation interval straddles one.
ENCODE_TABLE_MAX_BITS = 8


def get_encode_table(
    fmt: PositFormat, registry: Optional["KernelRegistry"] = None
) -> np.ndarray:
    """The shared float64-bits -> posit-code encode LUT for ``fmt``.

    Indexed by ``key = (bits >> 44) << 1 | (low 44 bits != 0)`` of the
    float64 bit pattern; the entry is exactly
    ``get_codec(fmt).encode(x)`` for every double mapping to that key
    (built by encoding one representative per key through the codec, so
    parity with the baseline encoder holds by construction plus the
    boundary argument above).  Registry-memoized and ``.npz``-cacheable
    like every other kernel table — this is the table the CI kernel-cache
    step keeps warm across runs.
    """
    if fmt.nbits > ENCODE_TABLE_MAX_BITS:
        raise ValueError(
            f"encode tables cover formats up to {ENCODE_TABLE_MAX_BITS} bits "
            f"(boundary significands must fit the kept fraction bits), got {fmt}"
        )
    reg = registry if registry is not None else REGISTRY
    f = ENCODE_TABLE_TOP_BITS
    nkey = 1 << (1 + 11 + f + 1)
    # Resolved up front: the registry lock is not reentrant, so the codec
    # (itself a registry entry) must not be fetched from inside build().
    codec = get_codec(fmt, reg)

    def build() -> Dict[str, np.ndarray]:
        keys = np.arange(nkey, dtype=np.uint64)
        top = keys >> np.uint64(1)
        sticky = keys & np.uint64(1)
        # Representative double per key: kept bits verbatim, sticky classes
        # get one tail bit set (any nonzero tail rounds identically).
        rep_bits = (top << np.uint64(52 - f)) | (sticky << np.uint64(52 - f - 1))
        reps = rep_bits.view(np.float64)
        return {"encode": codec.encode(reps).astype(np.uint8)}

    def valid(tables: Dict[str, np.ndarray]) -> bool:
        table = tables.get("encode")
        return (
            table is not None
            and table.dtype == np.uint8
            and table.shape == (nkey,)
        )

    return reg.get(("posit", fmt.nbits, fmt.es, "encode-lut"), build, validate=valid)[
        "encode"
    ]

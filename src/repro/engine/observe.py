"""repro.engine.observe — tracing, metrics and profiling hooks for the engine.

Two cooperating pieces, both designed around a *zero-overhead-when-off*
contract so they can stay permanently wired into the hot paths:

* :class:`Tracer` — structured span events (monotonic timestamps, op name,
  format, shape, worker pid, nesting depth) collected into a bounded
  in-memory ring buffer with JSONL export.  ``tracer.span(...)`` returns a
  shared no-op context manager while tracing is disabled, so instrumented
  code pays only one attribute read per span site.
* :class:`Metrics` — a registry of named counters, gauges and (log-bucketed)
  histograms.  It subsumes the original flat ``OpCounters`` table: every
  ``record_op`` updates the per-op calls/elements/seconds triple *and* a
  per-op latency histogram, and snapshots merge across
  :class:`repro.engine.parallel.ParallelRunner` workers exactly like the
  old op dicts did.

The process-wide instances (:data:`TRACER`, :data:`METRICS`) are what the
engine modules — :mod:`~repro.engine.kernels`, :mod:`~repro.engine.registry`,
:mod:`~repro.engine.runner`, :mod:`~repro.engine.parallel`, the backend
``timed_op`` sites, :mod:`repro.nn.posit_inference` and
:mod:`repro.approx.simulate` — record into.  Enable tracing with
:func:`enable_tracing` (or ``REPRO_TRACE=1``), inspect with
:func:`Tracer.events`, export with :func:`Tracer.export_jsonl`, and render
a human-readable run summary with :func:`report`.

Quickstart::

    from repro.engine import BatchedRunner, enable_tracing, get_tracer, report

    enable_tracing()
    runner = BatchedRunner(qnet, batch_size=32)
    runner.run(x)
    print(report(runner.stats()))
    get_tracer().export_jsonl("trace.jsonl")
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Sequence

__all__ = [
    "Tracer",
    "Metrics",
    "Histogram",
    "TRACER",
    "METRICS",
    "get_tracer",
    "get_metrics",
    "enable_tracing",
    "disable_tracing",
    "load_jsonl",
    "report",
]


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class _NilSpan:
    """The shared no-op span: what ``span()`` returns while tracing is off."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NIL_SPAN = _NilSpan()


class _Span:
    """A live span: records one event into its tracer on exit."""

    __slots__ = ("tracer", "name", "attrs", "seq", "parent", "depth", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self):
        self.seq, self.parent, self.depth = self.tracer._push()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        dur = time.perf_counter() - self._t0
        self.tracer._pop(self, self._t0, dur)
        return False


class Tracer:
    """Span-based tracing into a bounded ring buffer of structured events.

    Each event is a plain dict — ``seq`` (per-process ordinal), ``name``,
    ``ts`` (seconds since this tracer's epoch, monotonic), ``dur``
    (seconds), ``depth``/``parent`` (nesting, per thread), ``pid`` and a
    free-form ``attrs`` mapping (format, shape, table hit/miss, ...) — so
    the ring buffer round-trips losslessly through JSONL.

    The disabled path is the contract that lets instrumentation live in hot
    loops: ``span()`` returns one shared no-op context manager without
    allocating a span object or touching any lock.
    """

    def __init__(self, capacity: int = 65536, enabled: bool = False):
        self.enabled = enabled
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._seq = 0
        self.epoch = time.perf_counter()

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs):
        """A context manager timing one named region (no-op when disabled)."""
        if not self.enabled:
            return _NIL_SPAN
        return _Span(self, name, attrs)

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self):
        stack = self._stack()
        with self._lock:
            self._seq += 1
            seq = self._seq
        parent = stack[-1] if stack else None
        depth = len(stack)
        stack.append(seq)
        return seq, parent, depth

    def _pop(self, span: _Span, t0: float, dur: float) -> None:
        stack = self._stack()
        if stack and stack[-1] == span.seq:
            stack.pop()
        self.record(
            span.name,
            ts=t0 - self.epoch,
            dur=dur,
            depth=span.depth,
            parent=span.parent,
            seq=span.seq,
            attrs=span.attrs,
        )

    def record(
        self,
        name: str,
        ts: float,
        dur: float,
        depth: int = 0,
        parent: Optional[int] = None,
        seq: Optional[int] = None,
        attrs: Optional[dict] = None,
    ) -> None:
        """Append one completed-span event (used by spans and absorb paths)."""
        if not self.enabled:
            return
        if seq is None:
            with self._lock:
                self._seq += 1
                seq = self._seq
        event = {
            "seq": seq,
            "name": name,
            "ts": float(ts),
            "dur": float(dur),
            "depth": int(depth),
            "parent": parent,
            "pid": os.getpid(),
            "attrs": _jsonable(attrs or {}),
        }
        with self._lock:
            self._events.append(event)

    # ------------------------------------------------------------------
    def events(self) -> List[dict]:
        """A copy of the buffered events, oldest first."""
        with self._lock:
            return list(self._events)

    def drain(self) -> List[dict]:
        """Pop and return all buffered events (what workers ship home)."""
        with self._lock:
            events = list(self._events)
            self._events.clear()
        return events

    def absorb(self, events: Sequence[dict]) -> None:
        """Fold events recorded elsewhere (worker processes) into the buffer."""
        if not events:
            return
        with self._lock:
            self._events.extend(events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._seq = 0

    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """The buffered events as one JSON object per line."""
        return "\n".join(json.dumps(e, sort_keys=True) for e in self.events())

    def export_jsonl(self, path) -> int:
        """Write the buffer as JSONL; returns the number of events written."""
        events = self.events()
        with open(path, "w") as fh:
            for event in events:
                fh.write(json.dumps(event, sort_keys=True) + "\n")
        return len(events)

    def __repr__(self):
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, {len(self._events)}/{self.capacity} events)"


def load_jsonl(path) -> List[dict]:
    """Parse a trace JSONL file back into its list of event dicts."""
    events = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def _jsonable(attrs: dict) -> dict:
    """Coerce span attributes to JSON-serializable primitives."""
    out = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        elif isinstance(value, (tuple, list)):
            out[key] = [int(v) if hasattr(v, "__index__") else v for v in value]
        elif getattr(value, "shape", ()):
            out[key] = [int(n) for n in value.shape]  # arrays reduce to shape
        elif hasattr(value, "__index__"):
            out[key] = int(value)
        elif hasattr(value, "item"):
            out[key] = value.item()  # 0-d numpy scalar (incl. floats)
        else:
            out[key] = str(value)
    return out


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
#: Default histogram buckets: log-spaced seconds, 1 microsecond to 100 s.
DEFAULT_BOUNDS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0)


class Histogram:
    """A fixed-bucket histogram (upper bounds + overflow), merge-friendly."""

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BOUNDS):
        bounds = tuple(float(b) for b in bounds)
        if list(bounds) != sorted(bounds) or not bounds:
            raise ValueError("histogram bounds must be sorted and non-empty")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        self.counts[idx] += 1
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    def merge(self, snap: Dict[str, object]) -> None:
        if tuple(snap["bounds"]) != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, n in enumerate(snap["counts"]):
            self.counts[i] += int(n)
        self.count += int(snap["count"])
        self.sum += float(snap["sum"])
        if snap.get("min") is not None:
            self.min = min(self.min, float(snap["min"]))
        if snap.get("max") is not None:
            self.max = max(self.max, float(snap["max"]))

    def __repr__(self):
        return f"Histogram(count={self.count}, mean={self.mean():.3g})"


class Metrics:
    """Named counters, gauges and histograms — the engine's metric registry.

    Subsumes the original ``OpCounters`` table: :meth:`record_op` maintains
    the per-op ``{calls, elements, seconds}`` triple the rest of the repo
    reads through :class:`repro.engine.backend.OpCounters` *and* feeds a
    per-op latency histogram (``op.<name>.seconds``).  Snapshots are plain
    JSON-able dicts and :meth:`merge` folds a snapshot from another process
    (a :class:`~repro.engine.parallel.ParallelRunner` worker) into this
    registry: counters and op triples add, gauges take the incoming value,
    histograms merge bucket-wise.
    """

    def __init__(self):
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._ops: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float, bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(bounds)
        hist.observe(value)

    def record_op(self, op: str, elements: int, seconds: float) -> None:
        """One executed engine op: update the triple and its latency histogram."""
        entry = self._ops.setdefault(op, {"calls": 0, "elements": 0, "seconds": 0.0})
        entry["calls"] += 1
        entry["elements"] += int(elements)
        entry["seconds"] += float(seconds)
        self.observe(f"op.{op}.seconds", seconds)

    # ------------------------------------------------------------------
    def op_table(self) -> Dict[str, Dict[str, float]]:
        """Deep copy of the per-op ``{calls, elements, seconds}`` table."""
        return {op: dict(entry) for op, entry in self._ops.items()}

    def snapshot(self) -> Dict[str, object]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {name: h.snapshot() for name, h in self.histograms.items()},
            "ops": self.op_table(),
        }

    def merge(self, snap: Dict[str, object]) -> None:
        """Fold a :meth:`snapshot` from another Metrics into this one."""
        for name, value in snap.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snap.get("gauges", {}).items():
            self.gauges[name] = value
        for name, hsnap in snap.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram(hsnap["bounds"])
            hist.merge(hsnap)
        self.merge_ops(snap.get("ops", {}))

    def merge_ops(self, ops: Dict[str, Dict[str, float]]) -> None:
        """Fold a bare op table (the legacy ``OpCounters`` snapshot shape)."""
        for op, entry in ops.items():
            mine = self._ops.setdefault(op, {"calls": 0, "elements": 0, "seconds": 0.0})
            mine["calls"] += entry.get("calls", 0)
            mine["elements"] += int(entry.get("elements", 0))
            mine["seconds"] += float(entry.get("seconds", 0.0))

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self._ops.clear()

    def clear_ops(self) -> None:
        """Clear the op table and its latency histograms, keep the rest."""
        self._ops.clear()
        for name in [n for n in self.histograms if n.startswith("op.")]:
            del self.histograms[name]

    # ------------------------------------------------------------------
    def to_prometheus(self, prefix: str = "repro_") -> str:
        """Render the registry in the Prometheus text exposition format.

        Counters become ``<prefix><name>_total``, gauges ``<prefix><name>``,
        and every histogram emits the standard series — ``_bucket`` lines
        with **cumulative** counts per ``le`` upper bound (ending in
        ``le="+Inf"`` equal to the total count), plus ``_sum`` and
        ``_count``.  The per-op table exports as three labelled counters
        (``op_calls_total{op=...}`` etc).  Dots and other non-identifier
        characters in metric names collapse to ``_``; this is what the
        serving layer's ``/metrics`` scrape endpoint returns.
        """
        lines: List[str] = []

        def emit(name: str, mtype: str, *samples) -> None:
            lines.append(f"# TYPE {name} {mtype}")
            for labels, value in samples:
                if isinstance(value, float) and value == int(value):
                    value = int(value)
                lines.append(f"{name}{labels} {value}")

        for name in sorted(self.counters):
            emit(
                _prom_name(prefix, name) + "_total",
                "counter",
                ("", self.counters[name]),
            )
        for name in sorted(self.gauges):
            emit(_prom_name(prefix, name), "gauge", ("", self.gauges[name]))
        for name in sorted(self.histograms):
            hist = self.histograms[name]
            base = _prom_name(prefix, name)
            cumulative = 0
            buckets = []
            for bound, count in zip(hist.bounds, hist.counts):
                cumulative += count
                buckets.append((f'{{le="{bound:g}"}}', cumulative))
            buckets.append(('{le="+Inf"}', hist.count))
            emit(base + "_bucket", "histogram", *buckets)
            lines.append(f"{base}_sum {hist.sum}")
            lines.append(f"{base}_count {hist.count}")
        if self._ops:
            for field in ("calls", "elements", "seconds"):
                emit(
                    f"{prefix}op_{field}_total",
                    "counter",
                    *(
                        (f'{{op="{op}"}}', self._ops[op][field])
                        for op in sorted(self._ops)
                    ),
                )
        return "\n".join(lines) + "\n"

    def __repr__(self):
        return (
            f"Metrics({len(self.counters)} counters, {len(self.gauges)} gauges, "
            f"{len(self.histograms)} histograms, {len(self._ops)} ops)"
        )


def _prom_name(prefix: str, name: str) -> str:
    """``serve.latency_s`` -> ``<prefix>serve_latency_s`` (Prometheus-legal)."""
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return prefix + safe


# ----------------------------------------------------------------------
# Process-wide instances and toggles
# ----------------------------------------------------------------------
TRACER = Tracer(enabled=os.environ.get("REPRO_TRACE", "0") not in ("", "0"))
METRICS = Metrics()


def get_tracer() -> Tracer:
    """The process-wide tracer every instrumented engine module records to."""
    return TRACER


def get_metrics() -> Metrics:
    """The process-wide metrics registry (registry/cache-level metrics)."""
    return METRICS


def enable_tracing(capacity: Optional[int] = None) -> Tracer:
    """Turn the process-wide tracer on (optionally resizing its buffer)."""
    if capacity is not None and capacity != TRACER.capacity:
        TRACER.capacity = capacity
        with TRACER._lock:
            TRACER._events = deque(TRACER._events, maxlen=capacity)
    TRACER.enabled = True
    return TRACER


def disable_tracing() -> Tracer:
    """Turn the process-wide tracer off (buffered events are kept)."""
    TRACER.enabled = False
    return TRACER


# ----------------------------------------------------------------------
# Pretty-printed run report
# ----------------------------------------------------------------------
def report(
    stats: Optional[Dict[str, object]] = None,
    metrics: Optional[Metrics] = None,
    tracer: Optional[Tracer] = None,
) -> str:
    """Render runner ``stats()`` (and global metrics/trace state) as text.

    ``stats`` is the dict returned by ``BatchedRunner.stats()`` /
    ``ParallelRunner.stats()``; ``metrics`` defaults to the process-wide
    registry and ``tracer`` to the process-wide tracer.  Returns a
    multi-line string (print it).
    """
    metrics = metrics if metrics is not None else METRICS
    tracer = tracer if tracer is not None else TRACER
    lines: List[str] = ["=== engine run report ==="]

    if stats:
        lines.append(
            f"throughput     {stats.get('items', 0)} items in "
            f"{stats.get('batches', 0)} batches, "
            f"{stats.get('items_per_s', 0.0):.2f} items/s "
            f"({stats.get('mean_batch_ms', 0.0):.3f} ms/batch)"
        )
        if "workers" in stats:
            causes = stats.get("fallback_causes") or {}
            cause_text = (
                " [" + ", ".join(f"{k}={causes[k]}" for k in sorted(causes)) + "]"
                if causes
                else ""
            )
            lines.append(
                f"workers        {stats['workers']} "
                f"({len(stats.get('per_worker', []))} active, "
                f"{stats.get('fallbacks', 0)} fallbacks{cause_text})"
            )
        for w in stats.get("per_worker", []):
            lines.append(
                f"  worker {w['pid']:>7}  {w['items']:>6} items  "
                f"{w['items_per_s']:.2f} items/s"
            )
        lines.append(
            f"kernel tables  {stats.get('table_hits', 0)} hits / "
            f"{stats.get('table_misses', 0)} misses"
            + (
                f" / {stats['table_disk_loads']} disk loads"
                if "table_disk_loads" in stats
                else ""
            )
        )
        ops = stats.get("ops", {})
        if ops:
            lines.append("per-op counters:")
            lines.append(
                f"  {'op':<20} {'calls':>8} {'elements':>14} "
                f"{'seconds':>10} {'mean ms':>9}"
            )
            for op in sorted(ops):
                entry = ops[op]
                calls = int(entry["calls"])
                mean_ms = 1e3 * entry["seconds"] / calls if calls else 0.0
                lines.append(
                    f"  {op:<20} {calls:>8} {int(entry['elements']):>14} "
                    f"{entry['seconds']:>10.4f} {mean_ms:>9.4f}"
                )
        mstats = stats.get("metrics", {})
        hists = mstats.get("histograms", {}) if isinstance(mstats, dict) else {}
        if hists:
            lines.append("latency histograms (non-op):")
            for name in sorted(hists):
                if name.startswith("op."):
                    continue
                snap = hists[name]
                mean = snap["sum"] / snap["count"] if snap["count"] else 0.0
                lines.append(
                    f"  {name:<28} n={snap['count']:<7} mean={mean:.3g}s "
                    f"max={snap['max'] if snap['max'] is not None else 0:.3g}s"
                )

    reg = metrics.snapshot()
    fault_names = [
        n for n in reg["counters"] if n.startswith(("faults.", "poison."))
    ]
    fabric_names = [
        n for n in reg["counters"] if n.startswith(("fog.", "fabric."))
    ]
    grouped = set(fault_names) | set(fabric_names)
    plain_names = [n for n in reg["counters"] if n not in grouped]
    if plain_names:
        lines.append("registry counters:")
        for name in sorted(plain_names):
            lines.append(f"  {name:<28} {reg['counters'][name]:g}")
    if fabric_names:
        lines.append("fog & fabric (breakers, heartbeats, hedges, degradation):")
        for name in sorted(fabric_names):
            lines.append(f"  {name:<28} {reg['counters'][name]:g}")
    if fault_names:
        lines.append("faults & poison:")
        for name in sorted(fault_names):
            lines.append(f"  {name:<28} {reg['counters'][name]:g}")

    if tracer.enabled or tracer.events():
        lines.append(
            f"trace          {len(tracer.events())} events buffered "
            f"({'enabled' if tracer.enabled else 'disabled'}) — "
            "export with get_tracer().export_jsonl(path)"
        )
    return "\n".join(lines)

"""Fused code-space inference: plan a whole network once, then execute it
without re-deriving any per-layer decisions.

The unfused path (:mod:`repro.nn.posit_inference`) quantizes every
quantized layer's input on entry — a correctly rounded *encode* (boundary
binary search) followed by a *decode* back to grid values.  Profiling the
end-to-end DNN path shows that encode dominating the wall clock (>50% on
the 8-bit KWS models).  :class:`FusedPlan` removes it from the hot loop,
PAPER §II's FloPoCo paradigm applied in software — generate exactly the
datapath the computation needs instead of round-tripping through generic
machinery:

* **Plan once.**  ``FusedPlan.compile(network, fmt)`` walks the float
  :class:`~repro.nn.network.Sequential` a single time and emits a flat
  stage list: an encode stage feeding each quantized layer, a
  decode–matmul–accumulate–bias stage per convolution / dense layer, and
  passthrough stages for the unquantized interludes (ReLU, pooling,
  flatten).  Weights are pre-encoded once at compile time.
* **Operator specialization.**  Each stage's codec kernels come from
  :meth:`repro.engine.posit_backend.PositBackend.codec_kernels` — a
  direct float64-bits encode LUT plus value-table gather below the table
  ceiling, the bit-parallel wide kernels of :mod:`repro.posit.vector`
  above it — every one byte-equal to the default codec.
* **Code space across quantization boundaries.**  Between one quantized
  layer's interludes and the next quantized layer, activations travel as
  posit *codes* (one fast encode at the boundary, one table gather at the
  consumer) — 1/8th the bytes of float64 for 8-bit formats, which is also
  what the parallel layer ships through shared memory instead of pickling
  float arrays.  Accumulation stays quire-style exact (float64 holds every
  product of <= 16-bit posits exactly; 53-bit accumulation, one posit
  rounding at the next encode), identical to the unfused engine.

**Fused is a pure execution strategy, never a numerics change**: for any
input, ``plan.forward(x)`` is byte-equal to the unfused
``PositQuantizedNetwork.forward(x)`` built over the same backend.  The
argument, boundary by boundary: the stage-exit encode runs where the
unfused quantize's encode half runs (after all interludes), the stage-entry
decode is the quantize's decode half, and the specialized kernels are
bit-exact with the codec.  Residual blocks are the one structural
exception — their shortcut adds the *unquantized* block input, so they
take a float entry and quantize internally (through the same fast
kernels), exactly like the unfused executor.

Not supported (by design): fault injection and poison audits.  Those
hooks exist to perturb the unfused datapath; a plan compiled against a
fault-carrying backend or registry raises instead of silently diverging.

Plans hold per-stage scratch buffers (decode targets are reused across
calls via the codecs' ``out=`` hooks), so a plan instance is not
thread-safe; the serving layer's single dispatch thread and one-plan-per-
worker-process parallel sharding both satisfy that.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .backend import OpCounters, timed_op
from .posit_backend import CodecKernels, PositBackend
from .registry import REGISTRY, KernelRegistry

__all__ = ["FusedPlan", "FusedStage"]


class _Scratch:
    """Named reusable buffers, reallocated only when a shape changes.

    A freshly allocated temporary costs ~4x a compute kernel at benchmark
    sizes (page faults on first touch — the same measurement that shaped
    :mod:`repro.posit.vector`), so each stage recycles its decode target
    across calls.  Buffers are handed out by name; a shape or dtype
    mismatch (new batch size) simply reallocates that slot.
    """

    __slots__ = ("bufs",)

    def __init__(self):
        self.bufs: Dict[str, np.ndarray] = {}

    def take(self, name: str, shape, dtype) -> np.ndarray:
        buf = self.bufs.get(name)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            self.bufs[name] = buf
        return buf


def _conv_apply(backend: PositBackend, conv, qw: np.ndarray, qx: np.ndarray) -> np.ndarray:
    """One convolution over already-quantized grid values.

    Same operation sequence as the unfused ``_PConv`` executor (im2col,
    float64 contraction, bias, NHWC->NCHW) so the float arithmetic — and
    therefore every output byte — is identical.
    """
    from ..nn.layers import im2col

    f, c, kh, kw = qw.shape
    cols, oh, ow = im2col(qx, kh, kw, conv.stride, conv.pad)
    out = backend.matmul_values(cols, qw.reshape(f, -1).T) + conv.b.data
    return out.reshape(qx.shape[0], oh, ow, f).transpose(0, 3, 1, 2)


class FusedStage:
    """One compiled op of a :class:`FusedPlan`.

    ``entry`` names the representation the stage consumes: ``"codes"``
    (posit code array — the stage's first act is a table-gather decode) or
    ``"float"`` (unquantized float64).  Compile inserts an encode stage
    wherever a float producer feeds a codes consumer, which is exactly
    where the unfused path's quantize ran.
    """

    kind = "?"
    entry = "float"
    name = ""

    def run(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def describe(self) -> dict:
        return {"kind": self.kind, "entry": self.entry, "name": self.name}


class _EncodeStage(FusedStage):
    kind = "encode"
    entry = "float"

    def __init__(self, backend: PositBackend, kernels: CodecKernels):
        self.backend = backend
        self.kernels = kernels
        self.name = f"encode[{kernels.encode_kind}]"

    def run(self, x: np.ndarray) -> np.ndarray:
        with timed_op(self.backend.counters, "fused.encode", x.size, fmt=self.backend.name):
            return self.kernels.encode(x)


class _ConvStage(FusedStage):
    kind = "conv"
    entry = "codes"

    def __init__(self, conv, backend: PositBackend, kernels: CodecKernels):
        self.conv = conv
        self.backend = backend
        self.kernels = kernels
        self.scratch = _Scratch()
        #: Weights pre-encoded once at compile time; ``qw`` is their decoded
        #: grid values — bit-identical to the unfused executor's quantize.
        self.wcodes = kernels.encode(conv.w.data)
        self.qw = kernels.decode(self.wcodes)
        self.name = conv.w.name.rsplit(".", 1)[0] or "conv"

    def run(self, codes: np.ndarray) -> np.ndarray:
        with timed_op(self.backend.counters, "fused.decode", codes.size, fmt=self.backend.name):
            qx = self.kernels.decode(
                codes, out=self.scratch.take("qx", codes.shape, np.float64)
            )
        return _conv_apply(self.backend, self.conv, self.qw, qx)

    def describe(self) -> dict:
        info = super().describe()
        info["decode"] = self.kernels.decode_kind
        info["weight_codes"] = int(self.wcodes.size)
        return info


class _DenseStage(FusedStage):
    kind = "dense"
    entry = "codes"

    def __init__(self, dense, backend: PositBackend, kernels: CodecKernels):
        self.dense = dense
        self.backend = backend
        self.kernels = kernels
        self.scratch = _Scratch()
        self.wcodes = kernels.encode(dense.w.data)
        self.qw = kernels.decode(self.wcodes)
        self.name = dense.w.name.rsplit(".", 1)[0] or "dense"

    def run(self, codes: np.ndarray) -> np.ndarray:
        with timed_op(self.backend.counters, "fused.decode", codes.size, fmt=self.backend.name):
            qx = self.kernels.decode(
                codes, out=self.scratch.take("qx", codes.shape, np.float64)
            )
        return self.backend.matmul_values(qx, self.qw) + self.dense.b.data

    def describe(self) -> dict:
        info = super().describe()
        info["decode"] = self.kernels.decode_kind
        info["weight_codes"] = int(self.wcodes.size)
        return info


class _ResidualStage(FusedStage):
    """conv-relu-conv + shortcut.  Float entry: the shortcut adds the
    *unquantized* block input, so no boundary encode may precede it; the
    internal convolutions quantize through the fast kernels instead."""

    kind = "residual"
    entry = "float"

    def __init__(self, block, backend: PositBackend, kernels: CodecKernels):
        self.block = block
        self.backend = backend
        self.kernels = kernels
        self.scratch = _Scratch()
        self.wcodes1 = kernels.encode(block.conv1.w.data)
        self.qw1 = kernels.decode(self.wcodes1)
        self.wcodes2 = kernels.encode(block.conv2.w.data)
        self.qw2 = kernels.decode(self.wcodes2)
        self.name = block.conv1.w.name.rsplit(".", 2)[0] or "residual"

    def _quantize(self, x: np.ndarray, slot: str) -> np.ndarray:
        k = self.kernels
        with timed_op(self.backend.counters, "fused.quantize", x.size, fmt=self.backend.name):
            codes = k.encode(x)
            return k.decode(codes, out=self.scratch.take(slot, codes.shape, np.float64))

    def run(self, x: np.ndarray) -> np.ndarray:
        block = self.block
        y = _conv_apply(self.backend, block.conv1, self.qw1, self._quantize(x, "q1"))
        y = block.relu1.forward(y)
        y = _conv_apply(self.backend, block.conv2, self.qw2, self._quantize(y, "q2"))
        return block.relu2.forward(y + x)


class _LayerStage(FusedStage):
    """Unquantized interlude (ReLU, pooling, flatten, ...): the float
    layer's own forward, verbatim — byte-identity by construction."""

    kind = "layer"
    entry = "float"

    def __init__(self, layer):
        self.layer = layer
        self.name = type(layer).__name__

    def run(self, x: np.ndarray) -> np.ndarray:
        return self.layer.forward(x)


class FusedPlan:
    """A compiled, code-space execution plan for one network + format.

    Build with :meth:`compile`; run with :meth:`forward` (drop-in for any
    ``forward(x)`` model, e.g. under a
    :class:`~repro.engine.runner.BatchedRunner`) or split the input
    boundary with :meth:`encode_input` / :meth:`forward_codes` — what the
    parallel layer does to ship encoded activations through shared memory.
    """

    def __init__(self, net, fmt, backend: PositBackend, kernels: CodecKernels, stages):
        self.net = net
        self.fmt = fmt
        #: The backend whose counters/codec/contraction mode this plan uses
        #: (exposed as ``engine`` so runners adopt its counters).
        self.engine = backend
        self.kernels = kernels
        self.stages: List[FusedStage] = list(stages)
        self.stable_contractions = backend.stable_contractions
        self.code_dtype = np.dtype(kernels.code_dtype)
        #: ``"codes"`` when the first stage is an input encode (every
        #: network whose first layer is quantized) — the shared-memory
        #: transport eligibility flag.
        self.input_rep = (
            "codes" if self.stages and self.stages[0].kind == "encode" else "float"
        )
        #: Per-sample output shape (float64 logits — no trailing encode).
        self.output_shape = tuple(net.output_shape())

    # ------------------------------------------------------------------
    @classmethod
    def compile(
        cls,
        net,
        fmt,
        *,
        backend: Optional[PositBackend] = None,
        registry: Optional[KernelRegistry] = None,
        stable_contractions: bool = False,
        counters: Optional[OpCounters] = None,
    ) -> "FusedPlan":
        """Plan ``net`` (a float :class:`~repro.nn.network.Sequential`) once.

        ``backend`` may be a preconstructed :class:`PositBackend` (sharing
        counters and the stable-contraction flag with an existing unfused
        network); by default one is built over the process-wide registry.
        A :class:`~repro.nn.posit_inference.PositQuantizedNetwork` may be
        passed as ``net`` — its float network, format and backend are used.
        """
        from ..nn.layers import Conv2D, Dense, ResidualBlock

        if hasattr(net, "net") and hasattr(net, "engine"):  # a quantized network
            qnet = net
            if getattr(qnet, "fault_plan", None) is not None or getattr(
                qnet, "poison_audit", False
            ):
                raise ValueError(
                    "fused execution is a pure execution strategy; fault "
                    "injection and poison audits need the unfused path"
                )
            net, fmt = qnet.net, qnet.fmt
            backend = backend if backend is not None else qnet.engine
        if backend is None:
            backend = PositBackend(
                fmt,
                counters=counters,
                registry=registry,
                stable_contractions=stable_contractions,
            )
        reg = backend.registry if backend.registry is not None else (
            registry if registry is not None else REGISTRY
        )
        if backend.fault_plan is not None or reg.fault_plan is not None:
            raise ValueError(
                "cannot compile a fused plan against a fault-carrying "
                "backend/registry: fused execution would not reproduce the "
                "injected corruption (use the unfused path)"
            )
        kernels = backend.codec_kernels()

        ops: List[FusedStage] = []
        for layer in net.layers:
            if isinstance(layer, Conv2D):
                ops.append(_ConvStage(layer, backend, kernels))
            elif isinstance(layer, Dense):
                ops.append(_DenseStage(layer, backend, kernels))
            elif isinstance(layer, ResidualBlock):
                ops.append(_ResidualStage(layer, backend, kernels))
            else:
                ops.append(_LayerStage(layer))
        stages: List[FusedStage] = []
        for op in ops:
            if op.entry == "codes":
                # The boundary encode sits exactly where the unfused
                # quantize's encode half ran: after every interlude, at
                # the quantized layer's entry.
                stages.append(_EncodeStage(backend, kernels))
            stages.append(op)
        return cls(net, fmt, backend, kernels, stages)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Float samples in, float64 logits out — byte-equal to unfused."""
        cur = np.asarray(x, dtype=np.float64)
        with timed_op(self.engine.counters, "fused.forward", cur.size, fmt=self.engine.name):
            for stage in self.stages:
                cur = stage.run(cur)
        return cur

    def encode_input(self, x: np.ndarray) -> np.ndarray:
        """The input boundary's code array (what shared memory carries).

        Elementwise, so ``encode_input(x)[s:e] == encode_input(x[s:e])`` —
        span slicing after one whole-array encode is identical to
        per-chunk encoding, which is what makes sharding exact.
        """
        if self.input_rep != "codes":
            raise ValueError(
                f"network {self.net.name!r} takes a float entry "
                "(first layer is not quantized); use forward()"
            )
        return self.stages[0].run(np.asarray(x, dtype=np.float64))

    def forward_codes(self, codes: np.ndarray) -> np.ndarray:
        """Run from pre-encoded input codes (see :meth:`encode_input`)."""
        if self.input_rep != "codes":
            raise ValueError("plan has a float entry; use forward()")
        cur = codes
        with timed_op(
            self.engine.counters, "fused.forward", codes.size, fmt=self.engine.name
        ):
            for stage in self.stages[1:]:
                cur = stage.run(cur)
        return cur

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> List[dict]:
        """One dict per stage: kind, entry representation, kernel choices."""
        return [stage.describe() for stage in self.stages]

    def __repr__(self):
        kinds = "/".join(s.kind for s in self.stages)
        return (
            f"FusedPlan({self.net.name!r}, {self.engine.name}, "
            f"{len(self.stages)} stages: {kinds})"
        )

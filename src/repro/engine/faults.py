"""repro.engine.faults — deterministic fault injection for the engine.

The paper's core argument (Sections IV-V) is that edge arithmetic must
stay accurate *under imperfection*: approximate multipliers, narrow posit
formats, retraining around error.  This module turns imperfection into a
first-class, measurable experiment — ApproxTrain simulates erroneous
multipliers inside DNN inference, AxOSyn treats error injection as a
design-space axis; here the same idea is applied to the execution engine
itself as **seeded soft-error injection**:

* :class:`FaultPlan` — a picklable specification of bit-flip faults at
  three sites: kernel LUT tables (``lut_rate``), backend op outputs
  (``op_rate``) and DNN activations re-encoded through a format's codec
  (``activation_rate``).  It plugs into
  :class:`~repro.engine.registry.KernelRegistry`, every backend,
  :class:`~repro.engine.runner.BatchedRunner` and
  :class:`~repro.nn.posit_inference.PositQuantizedNetwork`.
* :class:`ChaosPlan` — deterministic worker-failure injection (crashes,
  slowdowns) for :class:`~repro.engine.parallel.ParallelRunner` chaos
  tests.
* :class:`FormatFaultModel` — runs a float network with activations
  round-tripped through any codec backend and bit-flipped at a configured
  rate: the harness behind the posit-vs-float resilience table
  (``benchmarks/test_fault_resilience.py``).

Determinism is the load-bearing property: every injection site derives its
RNG from ``(plan.seed, site name, a content hash of the array being
corrupted)``, never from call order or process identity.  The same plan
applied to the same data therefore produces **bit-identical** corruption
across runs, across processes, and across ``workers=N`` sharding — chunk
boundaries are batch-aligned, so each micro-batch's bytes (and hence its
faults) are the same no matter which worker executes it.
"""

from __future__ import annotations

import hashlib
import os
import time
import zlib
from typing import Dict, Iterable, Optional

import numpy as np

from .observe import METRICS, TRACER

__all__ = ["FaultPlan", "ChaosPlan", "FormatFaultModel", "apply_code_faults"]


def _content_key(arr: np.ndarray) -> int:
    """A fast, process-independent fingerprint of an array's bytes+shape."""
    a = np.ascontiguousarray(arr)
    return zlib.crc32(a.tobytes()) ^ zlib.crc32(repr(a.shape).encode())


def _check_rate(name: str, rate: float) -> float:
    rate = float(rate)
    if not (0.0 <= rate <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {rate}")
    return rate


class FaultPlan:
    """Seeded, deterministic bit-flip fault specification.

    Parameters:
        seed: Root seed; every injection site mixes it with the site name
            and the corrupted array's content hash.
        lut_rate: Fraction of kernel-table *entries* bit-flipped when the
            plan is attached to a :class:`KernelRegistry`.  Only tables
            whose npz array name is in ``lut_tables`` are touched, so
            codec value/boundary tables stay pristine by default.
        op_rate: Per-element probability of flipping one random bit in the
            code array a backend op (``add``/``mul``/``matmul``) returns.
        activation_rate: Per-element probability of flipping one random
            bit in an activation's *format encoding* between DNN layers
            (and in the raw float64 words on the generic
            :class:`BatchedRunner` path).
        lut_tables: npz array names eligible for ``lut_rate`` corruption.
        ops: Optional restriction of ``op_rate`` to these op names.

    Plans are immutable in spirit and picklable by construction — the
    parallel layer ships them to spawn workers verbatim.
    """

    __slots__ = ("seed", "lut_rate", "op_rate", "activation_rate", "lut_tables", "ops")

    def __init__(
        self,
        seed: int = 0,
        lut_rate: float = 0.0,
        op_rate: float = 0.0,
        activation_rate: float = 0.0,
        lut_tables: Iterable[str] = ("add", "mul", "lut"),
        ops: Optional[Iterable[str]] = None,
    ):
        self.seed = int(seed)
        self.lut_rate = _check_rate("lut_rate", lut_rate)
        self.op_rate = _check_rate("op_rate", op_rate)
        self.activation_rate = _check_rate("activation_rate", activation_rate)
        self.lut_tables = frozenset(lut_tables) if lut_tables is not None else None
        self.ops = frozenset(ops) if ops is not None else None

    # ------------------------------------------------------------------
    def _rng(self, site: str, content: int) -> np.random.Generator:
        digest = hashlib.sha256(f"{self.seed}|{site}|{content}".encode()).digest()
        return np.random.default_rng(np.frombuffer(digest[:16], dtype=np.uint64))

    def flip_bits(self, arr: np.ndarray, width: int, rate: float, site: str) -> np.ndarray:
        """A copy of integer ``arr`` with one random bit (below ``width``)
        flipped in ~``rate`` of its elements; ``arr`` itself if nothing flips.

        Pure function of ``(plan, site, arr)`` — same inputs, same flips,
        in any process.
        """
        arr = np.asarray(arr)
        if rate <= 0.0 or arr.size == 0:
            return arr
        width = max(1, min(int(width), arr.dtype.itemsize * 8))
        rng = self._rng(site, _content_key(arr))
        hit = rng.random(arr.size) < rate
        n = int(np.count_nonzero(hit))
        if n == 0:
            return arr
        out = arr.copy()
        flat = out.reshape(-1)
        positions = rng.integers(0, width, size=n)
        idx = np.flatnonzero(hit)
        if arr.dtype.kind == "u":
            mask = (np.ones(n, dtype=np.uint64) << positions.astype(np.uint64)).astype(arr.dtype)
            flat[idx] ^= mask
        else:
            mask = np.ones(n, dtype=np.int64) << positions
            flat[idx] = (flat[idx].astype(np.int64) ^ mask).astype(arr.dtype)
        METRICS.inc("faults.bits_flipped", n)
        if TRACER.enabled:
            TRACER.record(
                "fault.flip",
                ts=time.perf_counter() - TRACER.epoch,
                dur=0.0,
                attrs={"site": site, "flips": n, "elements": int(arr.size)},
            )
        return out

    # ------------------------------------------------------------------
    # Kernel-table corruption (registry site)
    # ------------------------------------------------------------------
    def corrupt_table(self, site: str, name: str, arr: np.ndarray) -> np.ndarray:
        """One kernel table with ``lut_rate`` of its entries bit-flipped.

        The flip width is the bit length of the table's largest magnitude,
        so corrupted *code* tables still hold valid codes (a flipped
        ``n``-bit code indexes the next lookup without going out of range)
        while corrupted *product* tables perturb within the product width.
        """
        arr = np.asarray(arr)
        if self.lut_rate <= 0.0 or arr.dtype.kind not in "iu" or arr.size == 0:
            return arr
        width = max(1, int(np.abs(arr).max()).bit_length())
        out = self.flip_bits(arr, width, self.lut_rate, f"lut.{site}.{name}")
        if out is not arr:
            METRICS.inc("faults.lut_tables")
        return out

    def corrupt_tables(self, site: str, tables: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Corrupted copy of a registry table dict (eligible names only)."""
        if self.lut_rate <= 0.0:
            return tables
        return {
            name: (
                self.corrupt_table(site, name, arr)
                if self.lut_tables is None or name in self.lut_tables
                else arr
            )
            for name, arr in tables.items()
        }

    # ------------------------------------------------------------------
    # Activation corruption (nn / runner sites)
    # ------------------------------------------------------------------
    def corrupt_activations(self, x: np.ndarray, backend, site: str) -> np.ndarray:
        """Flip bits in the *format encoding* of an activation tensor.

        Encodes ``x`` through ``backend``, flips each element's code with
        probability ``activation_rate`` (one random bit within the
        format's code width), and decodes back — the soft-error model a
        narrow-format accelerator's activation SRAM would exhibit.
        Returns ``x`` untouched when the rate is zero.
        """
        if self.activation_rate <= 0.0:
            return x
        codes = backend.encode(x)
        width = getattr(backend, "code_bits", codes.dtype.itemsize * 8)
        flipped = self.flip_bits(codes, width, self.activation_rate, site)
        n_hit = int(np.count_nonzero(flipped != codes))
        if n_hit:
            METRICS.inc("faults.activations", n_hit)
        return backend.decode(flipped)

    def corrupt_floats(self, x: np.ndarray, site: str) -> np.ndarray:
        """Flip bits in raw float64 words at ``activation_rate``.

        The format-agnostic soft-error model for arbitrary models running
        under :class:`~repro.engine.runner.BatchedRunner`: any of the 64
        bits (sign, exponent, mantissa) may flip, so NaN/inf poisoning is
        reachable — exactly what the poison audit is for.
        """
        x = np.asarray(x)
        if self.activation_rate <= 0.0 or x.size == 0 or x.dtype.kind != "f":
            return x
        words = np.ascontiguousarray(x, dtype=np.float64).view(np.uint64)
        flipped = self.flip_bits(words, 64, self.activation_rate, site)
        if flipped is words:
            return x
        return flipped.view(np.float64).reshape(x.shape)

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "lut_rate": self.lut_rate,
            "op_rate": self.op_rate,
            "activation_rate": self.activation_rate,
            "lut_tables": sorted(self.lut_tables) if self.lut_tables is not None else None,
            "ops": sorted(self.ops) if self.ops is not None else None,
        }

    def __repr__(self):
        return (
            f"FaultPlan(seed={self.seed}, lut_rate={self.lut_rate}, "
            f"op_rate={self.op_rate}, activation_rate={self.activation_rate})"
        )


def apply_code_faults(plan: Optional[FaultPlan], backend_name: str, op: str, codes: np.ndarray, width: int):
    """None-safe backend hook: corrupt an op's output codes per ``plan``.

    Every backend calls this on the result of ``add``/``mul``/``matmul``;
    with no plan (the default) it is a two-comparison no-op.
    """
    if plan is None or plan.op_rate <= 0.0:
        return codes
    if plan.ops is not None and op not in plan.ops:
        return codes
    return plan.flip_bits(codes, width, plan.op_rate, f"op.{backend_name}.{op}")


# ----------------------------------------------------------------------
# Chaos: deterministic worker-failure injection
# ----------------------------------------------------------------------
class ChaosPlan:
    """Seeded worker-failure injection for parallel chaos testing.

    Decisions are a pure function of ``(seed, chunk index, attempt)``, so
    a chaos run is reproducible: the same chunks crash or stall every
    time.  ``attempts`` optionally restricts chaos to specific attempt
    numbers (e.g. ``(0,)`` makes every chunk fail once and then succeed on
    retry — the canonical retry-recovery test).

    Applied worker-side by :func:`repro.engine.parallel._worker_run`;
    ``crash`` hard-exits the worker process (breaking the pool, like a
    real segfault/OOM kill), ``slow`` sleeps ``slow_s`` seconds (tripping
    per-task timeouts when ``slow_s`` exceeds them).
    """

    __slots__ = ("seed", "crash_rate", "slow_rate", "slow_s", "attempts")

    def __init__(
        self,
        seed: int = 0,
        crash_rate: float = 0.0,
        slow_rate: float = 0.0,
        slow_s: float = 0.25,
        attempts: Optional[Iterable[int]] = None,
    ):
        self.seed = int(seed)
        self.crash_rate = _check_rate("crash_rate", crash_rate)
        self.slow_rate = _check_rate("slow_rate", slow_rate)
        if self.crash_rate + self.slow_rate > 1.0:
            raise ValueError("crash_rate + slow_rate must not exceed 1")
        self.slow_s = float(slow_s)
        self.attempts = tuple(attempts) if attempts is not None else None

    def decide(self, chunk_idx: int, attempt: int = 0) -> Optional[str]:
        """``"crash"``, ``"slow"`` or ``None`` for this (chunk, attempt)."""
        if self.attempts is not None and attempt not in self.attempts:
            return None
        rng = np.random.default_rng((self.seed, int(chunk_idx), int(attempt)))
        r = float(rng.random())
        if r < self.crash_rate:
            return "crash"
        if r < self.crash_rate + self.slow_rate:
            return "slow"
        return None

    def apply(self, chunk_idx: int, attempt: int = 0) -> Optional[str]:
        """Execute the decision worker-side (may not return)."""
        action = self.decide(chunk_idx, attempt)
        if action == "crash":
            os._exit(23)
        if action == "slow":
            time.sleep(self.slow_s)
        return action

    def apply_to_process(self, pid: int, chunk_idx: int, attempt: int = 0) -> Optional[str]:
        """Execute the decision against a *real* OS process by pid.

        The fabric-scale analogue of :meth:`apply`: ``crash`` SIGKILLs the
        process (the failure a supervisor must detect and restart),
        ``slow`` SIGSTOPs it for ``slow_s`` seconds then SIGCONTs (the
        stall a heartbeat detector must mark suspect — and forgive when
        the process resumes).  A pid that is already gone is a no-op:
        chaos raced the supervisor's restart, which is fine.
        """
        import signal as _signal

        action = self.decide(chunk_idx, attempt)
        if action is None:
            return None
        try:
            if action == "crash":
                os.kill(int(pid), _signal.SIGKILL)
                METRICS.inc("faults.process_kills")
            elif action == "slow":
                os.kill(int(pid), _signal.SIGSTOP)
                METRICS.inc("faults.process_stalls")
                try:
                    time.sleep(self.slow_s)
                finally:
                    os.kill(int(pid), _signal.SIGCONT)
        except ProcessLookupError:
            return None
        return action

    def __repr__(self):
        return (
            f"ChaosPlan(seed={self.seed}, crash_rate={self.crash_rate}, "
            f"slow_rate={self.slow_rate}, slow_s={self.slow_s})"
        )


# ----------------------------------------------------------------------
# Per-format DNN resilience harness
# ----------------------------------------------------------------------
class FormatFaultModel:
    """A float network with activations quantized through ``backend`` and
    bit-flipped per ``plan`` — the per-format soft-error resilience model.

    After every layer, activations are encoded into the backend's code
    space, each code flips one random bit with probability
    ``plan.activation_rate``, and the codes decode back to values.  With
    ``plan=None`` (or rate 0) this is plain activation quantization — the
    fault-free baseline the resilience table compares against.

    Works with any codec-style backend (posit, softfloat, LNS): the
    measured accuracy difference across formats at equal flip rates is
    the Table-II-style resilience comparison
    (``benchmarks/test_fault_resilience.py``).
    """

    def __init__(self, net, backend, plan: Optional[FaultPlan] = None):
        self.net = net
        self.backend = backend
        self.plan = plan
        self.code_bits = getattr(backend, "code_bits", None)

    def forward(self, x: np.ndarray) -> np.ndarray:
        backend = self.backend
        for i, layer in enumerate(self.net.layers):
            x = layer.forward(x)
            codes = backend.encode(x)
            if self.plan is not None and self.plan.activation_rate > 0.0:
                width = self.code_bits if self.code_bits is not None else codes.dtype.itemsize * 8
                codes = self.plan.flip_bits(
                    codes, width, self.plan.activation_rate, f"format-fault.{i}"
                )
            x = backend.decode(codes)
        return x

    __call__ = forward

    def __repr__(self):
        rate = self.plan.activation_rate if self.plan is not None else 0.0
        return f"FormatFaultModel({self.backend.name}, activation_rate={rate})"

"""LNS backend: bulk logarithmic-number-system arithmetic on packed codes.

A code packs an :class:`repro.lns.LNS` value into ``width = 2 + int_bits +
frac_bits`` bits as ``sign << e_bits | (e_code - zero_code)`` (offset
binary, so code 0 is the value zero).

Multiplication and division are *exact integer adds* of exponent codes —
fully vectorized with no tables at any width, the LNS selling point.
Addition goes through the Gaussian logarithms: for narrow formats (<= 10
code bits) an exhaustive pairwise table built from the scalar model; for
wider formats a vectorized replication of the scalar ``phi+``/``phi-``
formula (same float64 ``log2``, same halfway rounding).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..lns.format import LNSFormat
from ..lns.value import LNS
from .backend import OpCounters, timed_op
from .faults import apply_code_faults
from .kernels import pairwise_lut
from .registry import REGISTRY, KernelRegistry

__all__ = ["LNSBackend"]


def _build_lns_tables(fmt: LNSFormat) -> dict:
    """Value table plus pairwise add table from the scalar LNS model."""
    n = 1 << fmt.width
    e_bits = fmt.e_bits
    e_mask = (1 << e_bits) - 1
    values = np.empty(n, dtype=np.float64)
    objs = []
    for code in range(n):
        sign = code >> e_bits
        e_code = (code & e_mask) + fmt.zero_code
        v = LNS(fmt, sign, e_code)
        objs.append(v)
        values[code] = v.to_float()
    add = np.empty((n, n), dtype=np.uint8 if fmt.width <= 8 else np.uint16)
    for i, a in enumerate(objs):
        for j, b in enumerate(objs):  # phi- is order-sensitive only via sign
            s = a.add(b)
            code = 0 if s.is_zero() else (s.sign << e_bits) | ((s.e_code - fmt.zero_code) & e_mask)
            add[i, j] = code
    return {"values": values, "add": add}


class LNSBackend:
    """Vectorized LNS arithmetic on packed sign+exponent codes."""

    def __init__(
        self,
        fmt: LNSFormat,
        counters: Optional[OpCounters] = None,
        registry: Optional[KernelRegistry] = None,
        table_bits: int = 10,
        fault_plan=None,
    ):
        if fmt.width > 16:
            raise ValueError("LNSBackend supports at most 16 code bits")
        self.fmt = fmt
        self.name = f"lns<{fmt.int_bits}.{fmt.frac_bits}>"
        self.key = ("lns", fmt.int_bits, fmt.frac_bits)
        self.counters = counters if counters is not None else OpCounters()
        self._registry = registry if registry is not None else REGISTRY
        self._e_bits = fmt.e_bits
        self._e_mask = (1 << fmt.e_bits) - 1
        self._code_dtype = np.uint8 if fmt.width <= 8 else np.uint16
        if fmt.width <= table_bits:
            tables = self._registry.get(
                ("lns", fmt.int_bits, fmt.frac_bits, "tables"),
                lambda: _build_lns_tables(fmt),
            )
            self.values, self.add_table = tables["values"], tables["add"]
            self.strategy = "pairwise"
        else:
            self.values = self._build_values()
            self.add_table = None
            self.strategy = "via-phi"
        #: Width of one code word — the bit-flip domain for fault injection.
        self.code_bits = fmt.width
        #: Optional :class:`repro.engine.faults.FaultPlan` corrupting op outputs.
        self.fault_plan = fault_plan

    def _fault(self, op: str, codes: np.ndarray) -> np.ndarray:
        return apply_code_faults(self.fault_plan, self.name, op, codes, self.code_bits)

    def _build_values(self) -> np.ndarray:
        n = 1 << self.fmt.width
        values = np.empty(n, dtype=np.float64)
        for code in range(n):
            sign = code >> self._e_bits
            e_code = (code & self._e_mask) + self.fmt.zero_code
            values[code] = LNS(self.fmt, sign, e_code).to_float()
        return values

    # ------------------------------------------------------------------
    # Packing helpers
    # ------------------------------------------------------------------
    def _unpack(self, codes: np.ndarray):
        codes = np.asarray(codes, dtype=np.int64)
        return codes >> self._e_bits, (codes & self._e_mask) + self.fmt.zero_code

    def _pack(self, sign: np.ndarray, e_code: np.ndarray) -> np.ndarray:
        zero = e_code == self.fmt.zero_code
        code = (np.where(zero, 0, sign) << self._e_bits) | (
            (e_code - self.fmt.zero_code) & self._e_mask
        )
        return code.astype(self._code_dtype)

    # ------------------------------------------------------------------
    # Codec
    # ------------------------------------------------------------------
    def encode(self, x: np.ndarray) -> np.ndarray:
        """Round floats onto the LNS grid (nearest exponent code)."""
        x = np.asarray(x, dtype=np.float64)
        with timed_op(self.counters, "encode", x.size, fmt=self.name):
            sign = (x < 0).astype(np.int64)
            mag = np.abs(x)
            finite_nz = (mag > 0) & np.isfinite(x)
            with np.errstate(divide="ignore", invalid="ignore"):
                e = np.log2(np.where(finite_nz, mag, 1.0)) * (1 << self.fmt.frac_bits)
            code = np.round(e).astype(np.int64)  # half to even, like the scalar
            code = np.clip(code, self.fmt.e_min, self.fmt.e_max)  # saturate, never zero
            code = np.where(np.isinf(x), self.fmt.e_max, code)  # +-inf saturate
            nz = finite_nz | np.isinf(x)
            e_code = np.where(nz, code, self.fmt.zero_code)
            return self._pack(np.where(nz, sign, 0), e_code)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        codes = np.asarray(codes, dtype=np.int64)
        with timed_op(self.counters, "decode", codes.size, fmt=self.name):
            return self.values[codes]

    def quantize(self, x: np.ndarray) -> np.ndarray:
        return self.decode(self.encode(x))

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Exact log-domain multiplication: integer add of exponent codes."""
        a, b = np.broadcast_arrays(np.asarray(a), np.asarray(b))
        with timed_op(self.counters, "mul", a.size, fmt=self.name):
            sa, ea = self._unpack(a)
            sb, eb = self._unpack(b)
            zero = (ea == self.fmt.zero_code) | (eb == self.fmt.zero_code)
            code = np.clip(ea + eb, self.fmt.e_min, self.fmt.e_max)
            e_code = np.where(zero, self.fmt.zero_code, code)
            return self._fault("mul", self._pack(sa ^ sb, e_code))

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Gaussian-log addition; pairwise table when available."""
        a, b = np.broadcast_arrays(np.asarray(a), np.asarray(b))
        with timed_op(self.counters, "add", a.size, fmt=self.name):
            if self.add_table is not None:
                return self._fault(
                    "add", pairwise_lut(self.add_table, a, b).astype(self._code_dtype)
                )
            return self._fault("add", self._add_via_phi(a, b))

    def _add_via_phi(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorized replica of the scalar phi+/phi- addition."""
        fmt = self.fmt
        sa, ea = self._unpack(a)
        sb, eb = self._unpack(b)
        a_zero = ea == fmt.zero_code
        b_zero = eb == fmt.zero_code

        swap = eb > ea
        big_s, big_e = np.where(swap, sb, sa), np.where(swap, eb, ea)
        small_e = np.where(swap, ea, eb)
        d = (big_e - small_e) / (1 << fmt.frac_bits)

        same = sa == sb
        with np.errstate(divide="ignore"):
            delta_plus = np.log2(1.0 + 2.0**-d)
            delta_minus = np.log2(np.maximum(1.0 - 2.0**-d, 0.0))
        step_plus = np.round(delta_plus * (1 << fmt.frac_bits)).astype(np.int64)
        step_minus = np.round(
            np.where(np.isfinite(delta_minus), delta_minus, 0.0) * (1 << fmt.frac_bits)
        ).astype(np.int64)

        code_plus = np.minimum(big_e + step_plus, fmt.e_max)
        code_minus = np.maximum(big_e + step_minus, fmt.e_min)
        cancel = ~same & (big_e == small_e)

        e_out = np.where(same, code_plus, code_minus)
        e_out = np.where(cancel, fmt.zero_code, e_out)
        e_out = np.where(a_zero, eb, np.where(b_zero, ea, e_out))
        s_out = np.where(a_zero, sb, np.where(b_zero, sa, big_s))
        return self._pack(s_out, e_out)

    def matmul(self, a: np.ndarray, b: np.ndarray, accumulate: str = "float64") -> np.ndarray:
        """``(M, K) @ (K, N)``: exact log-domain products, linear-domain
        float64 accumulation, one re-encode (the log-CNN accelerator model)."""
        a, b = np.asarray(a), np.asarray(b)
        if accumulate != "float64":
            raise ValueError("LNSBackend supports accumulate='float64' only")
        with timed_op(self.counters, "matmul[float64]", a.shape[0] * a.shape[1] * b.shape[1], fmt=self.name):
            out = self.decode(a) @ self.decode(b)
            return self._fault("matmul", self.encode(out))

    def dot_exact(self, a: np.ndarray, b: np.ndarray) -> int:
        """Float64-accumulated dot product, rounded once onto the grid."""
        a_flat = np.asarray(a).ravel()
        b_flat = np.asarray(b).ravel()
        with timed_op(self.counters, "dot_exact", a_flat.size, fmt=self.name):
            total = float(np.dot(self.values[a_flat.astype(np.int64)],
                                 self.values[b_flat.astype(np.int64)]))
            return int(self.encode(np.asarray([total]))[0])

    def __repr__(self):
        return f"LNSBackend({self.name}, strategy={self.strategy!r})"

"""Vectorized LUT kernels: bulk arithmetic as integer table indexing.

These are the execution primitives shared by every backend: elementwise
pairwise-table lookup, tiled LUT matrix multiplication with exact integer
accumulation (the ApproxTrain pattern), and a rounded-accumulation matmul
that applies the format's addition table after every product (modelling a
datapath *without* a quire/Kulisch accumulator).

All kernels are pure functions of their table and index arrays — no format
knowledge — so posits, softfloats, LNS and approximate multipliers all run
through the same code.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .observe import TRACER

__all__ = [
    "pairwise_lut",
    "lut_matmul",
    "rounded_matmul",
    "stable_matmul",
    "shard_rows",
    "nonfinite_count",
]


def nonfinite_count(x: np.ndarray) -> int:
    """How many elements of ``x`` are NaN or infinite (0 for integer arrays).

    The poison-audit primitive: posit NaR decodes to NaN, float overflow
    decodes to inf, and both propagate through contractions — counting them
    per layer is how :mod:`repro.nn.posit_inference` traces poisoning.
    """
    x = np.asarray(x)
    if x.dtype.kind not in "fc":
        return 0
    return int(x.size - np.count_nonzero(np.isfinite(x)))


def shard_rows(total: int, shards: int) -> List[Tuple[int, int]]:
    """Deterministic partition of ``range(total)`` into contiguous spans.

    The parallel execution layer shards matmul rows (and runner batches)
    with this: spans are maximal-first balanced blocks in index order, so
    concatenating per-span results reproduces the unsharded output
    bit-for-bit regardless of which worker computed which span.
    """
    if total < 0:
        raise ValueError("total must be >= 0")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if total == 0:
        return []
    shards = min(shards, total)
    base, extra = divmod(total, shards)
    spans = []
    start = 0
    for i in range(shards):
        stop = start + base + (1 if i < extra else 0)
        spans.append((start, stop))
        start = stop
    return spans


def pairwise_lut(table: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise ``table[a, b]`` with broadcasting.

    ``table`` is a 2-D behaviour table; ``a``/``b`` are integer code (or
    index) arrays.  This is the whole elementwise kernel: one fused fancy
    index at numpy speed.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    return table[a, b]


def lut_matmul(
    lut: np.ndarray,
    a_idx: np.ndarray,
    b_idx: np.ndarray,
    chunk: int = 64,
    dtype=np.int64,
) -> np.ndarray:
    """``A @ B`` where every scalar product comes from a behaviour table.

    ``a_idx`` is (M, K) and ``b_idx`` is (K, N); each product is
    ``lut[a_idx[m, k], b_idx[k, n]]`` and accumulation is exact integer
    (``dtype``).  The contraction is tiled over K in ``chunk``-wide slabs so
    the (M, N, chunk) product block stays cache-sized instead of
    materializing all M*N*K products at once.
    """
    a_idx = np.asarray(a_idx)
    b_idx = np.asarray(b_idx)
    m, k = a_idx.shape
    k2, n = b_idx.shape
    if k != k2:
        raise ValueError(f"shape mismatch ({m}, {k}) @ ({k2}, {n})")
    with TRACER.span("kernel.lut_matmul", shape=(m, k, n), chunk=chunk):
        out = np.zeros((m, n), dtype=dtype)
        bt = np.ascontiguousarray(b_idx.T)
        for start in range(0, k, chunk):
            stop = min(start + chunk, k)
            prods = lut[a_idx[:, None, start:stop], bt[None, :, start:stop]]
            out += prods.sum(axis=2, dtype=dtype)
        return out


def stable_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a @ b`` with a batch-composition-independent accumulation order.

    BLAS ``@`` picks different kernels (and hence different float64
    summation orders) for different row counts, so ``(x @ w)[i]`` is *not*
    byte-equal to ``x[i:i+1] @ w`` in general.  The serving layer coalesces
    rows from unrelated requests into one batch and promises each request a
    result byte-equal to solo execution, so its contractions run through
    this kernel instead: non-optimized ``einsum`` reduces over K in a fixed
    C-order loop per output element, making every output row a pure
    function of its own input row.  Costs ~5x BLAS at serving sizes —
    still vectorized, and far cheaper than the coalescing win it enables.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return np.einsum("ik,kj->ij", a, b, optimize=False)


def rounded_matmul(
    add_table: np.ndarray,
    mul_table: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    zero_code: int = 0,
    bias: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``A @ B`` on code arrays with the format's rounding after every add.

    The anti-quire baseline: each of the K accumulation steps rounds
    through ``add_table``, so the result exhibits the swamping/cancellation
    error a MAC datapath without an exact accumulator would produce.  One
    vectorized table lookup per contraction step — K indexing passes over
    an (M, N) accumulator rather than M*N*K scalar ops.

    ``bias`` (length N, codes) seeds the accumulator instead of
    ``zero_code``.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"shape mismatch ({m}, {k}) @ ({k2}, {n})")
    with TRACER.span("kernel.rounded_matmul", shape=(m, k, n)):
        if bias is not None:
            acc = np.broadcast_to(np.asarray(bias), (m, n)).copy()
        else:
            acc = np.full((m, n), zero_code, dtype=add_table.dtype)
        for j in range(k):
            prods = mul_table[a[:, j, None], b[None, j, :]]
            acc = add_table[acc, prods]
        return acc
